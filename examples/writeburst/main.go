// Writeburst: demonstrates DARP's write-refresh parallelization on a
// write-heavy workload. Write batches drain in writeback mode; DARP
// schedules per-bank refreshes under those drains so reads stall less
// (paper §4.2.2, Fig. 9).
//
//	go run ./examples/writeburst
package main

import (
	"fmt"
	"log"

	"dsarp/internal/core"
	"dsarp/internal/sim"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

func main() {
	// Three cores run the write-heaviest benchmark in the library (45%
	// stores) plus one strided reader: lots of dirty evictions and frequent
	// writeback mode, at a load where latency is still exposed (a fully
	// saturated bus hides refresh behind queueing).
	lbm, err := workload.ByName("lbm.sweep")
	if err != nil {
		log.Fatal(err)
	}
	milc, err := workload.ByName("milc.lattice")
	if err != nil {
		log.Fatal(err)
	}
	wl := workload.Workload{Name: "writeburst", Benchmarks: []trace.Profile{
		lbm, lbm, lbm, milc,
	}}

	fmt.Println("3x lbm.sweep (45% stores) + milc.lattice on 32Gb DRAM:")
	fmt.Printf("%-10s %9s %12s %14s %16s\n",
		"policy", "sum IPC", "avg rd lat", "wrmode time", "refresh slots")
	for _, k := range []core.Kind{core.KindREFpb, core.KindDARPOoO, core.KindDARP, core.KindNoRef} {
		res, err := sim.Run(sim.Config{
			Workload:  wl,
			Mechanism: k,
			Density:   timing.Gb32,
			Seed:      5,
			Warmup:    50_000,
			Measure:   200_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for _, v := range res.IPC {
			sum += v
		}
		fmt.Printf("%-10s %9.3f %12.1f %13.1f%% %16d\n",
			res.Mechanism, sum, res.Sched.AvgReadLatency(),
			100*float64(res.Sched.WriteModeCycles)/float64(2*res.MeasuredCycles),
			res.Sched.RefreshSlots)
	}
	fmt.Println("\nDARP schedules refreshes into write drains and idle command",
		"slots instead of stalling reads, closing most of the gap to NoREF.")
}
