// Quickstart: simulate one memory-intensive workload under commodity
// all-bank refresh (REFab) and under the paper's combined mechanism
// (DSARP), and report the performance recovered.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsarp/internal/core"
	"dsarp/internal/sim"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

func main() {
	// A deterministic 8-core mix of memory-intensive benchmarks.
	wl := workload.IntensiveMixes(1, 8, 7)[0]

	run := func(k core.Kind) sim.Result {
		res, err := sim.Run(sim.Config{
			Workload:  wl,
			Mechanism: k,
			Density:   timing.Gb32, // near-future chips, where refresh hurts most
			Seed:      7,
			Warmup:    50_000,
			Measure:   200_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	sum := func(r sim.Result) float64 {
		var s float64
		for _, v := range r.IPC {
			s += v
		}
		return s
	}

	ideal := run(core.KindNoRef)
	refab := run(core.KindREFab)
	dsarp := run(core.KindDSARP)

	fmt.Printf("workload %s on 32Gb DDR3-1333, 8 cores\n\n", wl.Name)
	fmt.Printf("%-8s %10s %14s %16s\n", "policy", "sum IPC", "vs REFab", "refresh ops")
	for _, r := range []sim.Result{refab, dsarp, ideal} {
		fmt.Printf("%-8s %10.3f %+13.1f%% %16d\n",
			r.Mechanism, sum(r), (sum(r)/sum(refab)-1)*100, r.DRAM.RefABs+r.DRAM.RefPBs)
	}
	fmt.Printf("\nDSARP recovers %.0f%% of the refresh-induced loss.\n",
		100*(sum(dsarp)-sum(refab))/(sum(ideal)-sum(refab)))
}
