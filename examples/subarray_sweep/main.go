// Subarray sweep: SARP's benefit as a function of subarrays per bank
// (paper Table 5). With one subarray a refresh occupies the whole bank and
// SARP degenerates to plain per-bank refresh; with more subarrays the
// probability that a request collides with the refreshing subarray falls as
// 1/subarrays.
//
//	go run ./examples/subarray_sweep
package main

import (
	"fmt"
	"log"
	"strings"

	"dsarp/internal/core"
	"dsarp/internal/sim"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

func main() {
	wl := workload.IntensiveMixes(1, 8, 11)[0]

	fmt.Printf("workload %s, 32Gb, SARPpb vs REFpb:\n\n", wl.Name)
	fmt.Printf("%-12s %10s %10s %8s\n", "subarrays", "REFpb IPC", "SARP IPC", "gain")
	for _, subs := range []int{1, 2, 4, 8, 16, 32, 64} {
		ipc := map[core.Kind]float64{}
		for _, k := range []core.Kind{core.KindREFpb, core.KindSARPpb} {
			res, err := sim.Run(sim.Config{
				Workload:         wl,
				Mechanism:        k,
				Density:          timing.Gb32,
				SubarraysPerBank: subs,
				Seed:             11,
				Warmup:           40_000,
				Measure:          160_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, v := range res.IPC {
				ipc[k] += v
			}
		}
		gain := (ipc[core.KindSARPpb]/ipc[core.KindREFpb] - 1) * 100
		bar := strings.Repeat("#", int(gain*4))
		fmt.Printf("%-12d %10.3f %10.3f %+7.1f%% %s\n",
			subs, ipc[core.KindREFpb], ipc[core.KindSARPpb], gain, bar)
	}
}
