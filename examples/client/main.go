// Command client demonstrates the dsarpd HTTP API: it submits a small
// sweep (the Table 2 task set at a reduced scale by default), follows the
// job's SSE progress stream, and prints per-task outcomes — showing which
// results were freshly computed and which came from the server's
// content-addressed store. Run it twice against the same server to watch
// the second sweep complete without a single simulation.
//
// Usage:
//
//	dsarpd &                      # terminal 1
//	go run ./examples/client      # terminal 2, twice
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"dsarp/internal/exp"
	"dsarp/internal/timing"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "dsarpd base URL")
	n := flag.Int("n", 0, "submit only the first n specs (0 = all)")
	flag.Parse()
	if err := run(*addr, *n); err != nil {
		fmt.Fprintf(os.Stderr, "client: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, n int) error {
	// Enumerate the Table 2 task set at a small scale. The runner is used
	// only to build specs — every simulation happens server-side.
	opts := exp.Defaults()
	opts.PerCategory = 1
	opts.Cores = 2
	opts.Warmup = 5_000
	opts.Measure = 20_000
	opts.Densities = []timing.Density{timing.Gb8}
	specs := exp.NewRunner(opts).Table2Specs()
	if n > 0 && n < len(specs) {
		specs = specs[:n]
	}

	body, err := json.Marshal(map[string]any{"name": "example-table2", "specs": specs})
	if err != nil {
		return err
	}
	resp, err := http.Post(addr+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := readAll(resp)
		return fmt.Errorf("sweep rejected: %s: %s", resp.Status, msg)
	}
	var sweep struct {
		ID        string `json:"id"`
		Total     int    `json:"total"`
		EventsURL string `json:"events_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		return err
	}
	fmt.Printf("job %s accepted: %d tasks\n", sweep.ID, sweep.Total)

	// Follow the SSE progress stream until the job's done event.
	events, err := http.Get(addr + sweep.EventsURL)
	if err != nil {
		return err
	}
	defer events.Body.Close()
	if events.StatusCode != http.StatusOK {
		msg, _ := readAll(events)
		return fmt.Errorf("event stream: %s: %s", events.Status, msg)
	}
	computed, cached := 0, 0
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev struct {
			Type   string `json:"type"`
			Label  string `json:"label"`
			Source string `json:"source"`
			Error  string `json:"error"`
			Done   int    `json:"done"`
			Total  int    `json:"total"`
		}
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return err
		}
		if ev.Type == "done" {
			break
		}
		if ev.Error != "" {
			fmt.Printf("[%3d/%3d] FAILED %s: %s\n", ev.Done, ev.Total, ev.Label, ev.Error)
			continue
		}
		if ev.Source == "computed" {
			computed++
		} else {
			cached++
		}
		fmt.Printf("[%3d/%3d] %-8s %s\n", ev.Done, ev.Total, ev.Source, ev.Label)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Printf("done: %d computed, %d served from cache\n", computed, cached)
	fmt.Printf("results: %s/v1/jobs/%s/results\n", addr, sweep.ID)
	return nil
}

func readAll(resp *http.Response) (string, error) {
	var b bytes.Buffer
	_, err := b.ReadFrom(resp.Body)
	return b.String(), err
}
