// Command client demonstrates the dsarpd HTTP API in two modes.
//
// Sweep demo (default): submits a small sweep (the Table 2 task set at a
// reduced scale), follows the job's SSE progress stream, and prints
// per-task outcomes — showing which results were freshly computed and
// which came from the server's content-addressed store. Run it twice
// against the same server to watch the second sweep complete without a
// single simulation.
//
//	dsarpd &                      # terminal 1
//	go run ./examples/client      # terminal 2, twice
//
// Fleet mode (-experiment): reproduces one registry experiment across N
// dsarpd workers sharing a store directory. The client enumerates the
// experiment's specs locally, splits them round-robin across the workers
// as plain sweeps, waits for every shard, fetches the per-task results,
// and assembles the rendered table locally — byte-identical to running
// the experiment on one machine, because the table is a pure function of
// the per-spec results:
//
//	dsarpd -addr :8080 -store /tmp/fleet &   # worker 1
//	dsarpd -addr :8081 -store /tmp/fleet &   # worker 2 (same store!)
//	go run ./examples/client -experiment table2 \
//	    -addrs http://localhost:8080,http://localhost:8081
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/timing"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "dsarpd base URL (sweep demo)")
	addrs := flag.String("addrs", "", "comma-separated dsarpd base URLs (fleet mode; defaults to -addr)")
	experiment := flag.String("experiment", "", "reproduce this registry experiment across the workers (see cmd/experiments -list)")
	n := flag.Int("n", 0, "submit only the first n specs (0 = all; sweep demo)")
	flag.Parse()

	var err error
	if *experiment != "" {
		workers := strings.Split(*addrs, ",")
		if *addrs == "" {
			workers = []string{*addr}
		}
		err = fleet(workers, *experiment)
	} else {
		err = sweepDemo(*addr, *n)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "client: %v\n", err)
		os.Exit(1)
	}
}

// demoOpts is the reduced scale both modes enumerate at. The runner built
// from it is used only for spec enumeration and assembly — every
// simulation happens server-side. Specs are fully resolved, so workers
// honor this scale regardless of their own -warmup/-measure defaults.
func demoOpts() exp.Options {
	opts := exp.Defaults()
	opts.PerCategory = 1
	opts.Cores = 2
	opts.Warmup = 5_000
	opts.Measure = 20_000
	opts.Densities = []timing.Density{timing.Gb8}
	return opts
}

// fleet splits one experiment's specs across the workers and assembles
// the table locally from the fetched results.
func fleet(workers []string, name string) error {
	r := exp.NewRunner(demoOpts())
	e, ok := exp.LookupExperiment(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	specs := e.Specs(r)
	fmt.Printf("experiment %s: %d specs across %d workers\n", name, len(specs), len(workers))

	// Round-robin sharding. Any split works: results are keyed by content,
	// and the shared store dedups across workers even when shards race on
	// overlapping alone-run specs.
	shards := make([][]exp.SimSpec, len(workers))
	for i, s := range specs {
		w := i % len(workers)
		shards[w] = append(shards[w], s)
	}

	type shardJob struct {
		worker string
		specs  []exp.SimSpec
		id     string
	}
	var jobs []shardJob
	for w, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		body, err := json.Marshal(map[string]any{
			"name":  fmt.Sprintf("fleet-%s-%d", name, w),
			"specs": shard,
		})
		if err != nil {
			return err
		}
		resp, err := http.Post(workers[w]+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("worker %s: %w", workers[w], err)
		}
		var sweep struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sweep)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("worker %s rejected shard: %s", workers[w], resp.Status)
		}
		if err != nil {
			return err
		}
		fmt.Printf("  worker %s: job %s (%d specs)\n", workers[w], sweep.ID, len(shard))
		jobs = append(jobs, shardJob{worker: workers[w], specs: shard, id: sweep.ID})
	}

	// Wait for every shard, then fold its per-task results into one map.
	results := exp.Results{}
	for _, j := range jobs {
		if err := waitDone(j.worker, j.id); err != nil {
			return err
		}
		resp, err := http.Get(j.worker + "/v1/jobs/" + j.id + "/results")
		if err != nil {
			return err
		}
		var body struct {
			Results []struct {
				Index  int             `json:"index"`
				Error  string          `json:"error"`
				Result json.RawMessage `json:"result"`
			} `json:"results"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		for _, out := range body.Results {
			if out.Error != "" {
				return fmt.Errorf("worker %s task %d: %s", j.worker, out.Index, out.Error)
			}
			res, err := exp.DecodeResult(out.Result)
			if err != nil {
				return err
			}
			results.Add(j.specs[out.Index], res)
		}
		fmt.Printf("  worker %s: job %s done\n", j.worker, j.id)
	}

	table, err := e.Assemble(r, results)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(table.String())
	return nil
}

// waitDone polls a job until it reports state "done".
func waitDone(worker, id string) error {
	for {
		resp, err := http.Get(worker + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			// e.g. 404 after a worker restart: job state is in-memory on
			// the daemon. Fail fast instead of polling forever.
			msg, _ := readAll(resp)
			resp.Body.Close()
			return fmt.Errorf("worker %s job %s: %s: %s", worker, id, resp.Status, strings.TrimSpace(msg))
		}
		var st struct {
			State  string `json:"state"`
			Errors int    `json:"errors"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if st.State == "done" {
			if st.Errors > 0 {
				return fmt.Errorf("worker %s job %s: %d tasks failed", worker, id, st.Errors)
			}
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// sweepDemo is the original walkthrough: one sweep, SSE progress.
func sweepDemo(addr string, n int) error {
	specs := exp.NewRunner(demoOpts()).Table2Specs()
	if n > 0 && n < len(specs) {
		specs = specs[:n]
	}

	body, err := json.Marshal(map[string]any{"name": "example-table2", "specs": specs})
	if err != nil {
		return err
	}
	resp, err := http.Post(addr+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := readAll(resp)
		return fmt.Errorf("sweep rejected: %s: %s", resp.Status, msg)
	}
	var sweep struct {
		ID        string `json:"id"`
		Total     int    `json:"total"`
		EventsURL string `json:"events_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		return err
	}
	fmt.Printf("job %s accepted: %d tasks\n", sweep.ID, sweep.Total)

	// Follow the SSE progress stream until the job's done event.
	events, err := http.Get(addr + sweep.EventsURL)
	if err != nil {
		return err
	}
	defer events.Body.Close()
	if events.StatusCode != http.StatusOK {
		msg, _ := readAll(events)
		return fmt.Errorf("event stream: %s: %s", events.Status, msg)
	}
	computed, cached := 0, 0
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev struct {
			Type   string `json:"type"`
			Label  string `json:"label"`
			Source string `json:"source"`
			Error  string `json:"error"`
			Done   int    `json:"done"`
			Total  int    `json:"total"`
		}
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return err
		}
		if ev.Type == "done" {
			break
		}
		if ev.Error != "" {
			fmt.Printf("[%3d/%3d] FAILED %s: %s\n", ev.Done, ev.Total, ev.Label, ev.Error)
			continue
		}
		if ev.Source == "computed" {
			computed++
		} else {
			cached++
		}
		fmt.Printf("[%3d/%3d] %-8s %s\n", ev.Done, ev.Total, ev.Source, ev.Label)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Printf("done: %d computed, %d served from cache\n", computed, cached)
	fmt.Printf("results: %s/v1/jobs/%s/results\n", addr, sweep.ID)
	return nil
}

func readAll(resp *http.Response) (string, error) {
	var b bytes.Buffer
	_, err := b.ReadFrom(resp.Body)
	return b.String(), err
}
