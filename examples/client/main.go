// Command client demonstrates the dsarpd HTTP API in two modes.
//
// Sweep demo (default): submits a small sweep (the Table 2 task set at a
// reduced scale), follows the job's SSE progress stream, and prints
// per-task outcomes — showing which results were freshly computed and
// which came from the server's content-addressed store. Run it twice
// against the same server to watch the second sweep complete without a
// single simulation.
//
//	dsarpd &                      # terminal 1
//	go run ./examples/client      # terminal 2, twice
//
// Fleet mode (-experiment): reproduces one registry experiment across N
// dsarpd workers through the internal/fleet orchestrator. The client
// enumerates the experiment's specs locally, dispatches each ring-affine
// (preferring the workers that own the spec's key in the fleet's
// rendezvous ring, falling back to the least-loaded live worker),
// retries transient failures (backpressure, timeouts, worker death)
// against the survivors, and assembles the rendered table locally —
// byte-identical to running the experiment on one machine, because the
// table is a pure function of the per-spec results. The workers need not
// share a store directory; results travel back over HTTP, and workers
// started with -peers replicate them so the warm state survives losing
// any worker:
//
//	dsarpd -addr :8080 -store /tmp/w1 &   # worker 1
//	dsarpd -addr :8081 -store /tmp/w2 &   # worker 2
//	go run ./examples/client -experiment table2 \
//	    -addrs http://localhost:8080,http://localhost:8081
//
// For the full-featured CLI (journals, resumable runs, a local result
// store) see cmd/fleet.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"

	"dsarp/internal/exp"
	fleetpkg "dsarp/internal/fleet"
	"dsarp/internal/timing"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "dsarpd base URL (sweep demo)")
	addrs := flag.String("addrs", "", "comma-separated dsarpd base URLs (fleet mode; defaults to -addr)")
	experiment := flag.String("experiment", "", "reproduce this registry experiment across the workers (see cmd/experiments -list)")
	n := flag.Int("n", 0, "submit only the first n specs (0 = all; sweep demo)")
	flag.Parse()

	var err error
	if *experiment != "" {
		workers := strings.Split(*addrs, ",")
		if *addrs == "" {
			workers = []string{*addr}
		}
		err = fleet(workers, *experiment)
	} else {
		err = sweepDemo(*addr, *n)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "client: %v\n", err)
		os.Exit(1)
	}
}

// demoOpts is the reduced scale both modes enumerate at. The runner built
// from it is used only for spec enumeration and assembly — every
// simulation happens server-side. Specs are fully resolved, so workers
// honor this scale regardless of their own -warmup/-measure defaults.
func demoOpts() exp.Options {
	opts := exp.Defaults()
	opts.PerCategory = 1
	opts.Cores = 2
	opts.Warmup = 5_000
	opts.Measure = 20_000
	opts.Densities = []timing.Density{timing.Gb8}
	return opts
}

// fleet reproduces one experiment across the workers through the
// orchestrator: least-loaded dispatch, health checks, and transient-
// failure retries come with it — a worker can die mid-run and the
// survivors finish the job.
func fleet(workers []string, name string) error {
	r := exp.NewRunner(demoOpts())
	if _, ok := exp.LookupExperiment(name); !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	o, err := fleetpkg.New(fleetpkg.Config{
		Workers: workers,
		Log:     slog.New(slog.NewTextHandler(os.Stdout, nil)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("experiment %s across %d workers\n", name, len(workers))
	table, err := o.RunExperiment(context.Background(), r, name)
	if err != nil {
		return err
	}
	st := o.Stats()
	fmt.Printf("  done: %d dispatched (%d computed, %d affine), %d retries\n",
		st.Dispatched, st.Computed, st.Affine, st.Retries)
	if line, ok := o.ReplicationSummary(context.Background()); ok {
		fmt.Printf("  %s\n", line)
	}
	fmt.Println()
	fmt.Print(table.String())
	return nil
}

// sweepDemo is the original walkthrough: one sweep, SSE progress.
func sweepDemo(addr string, n int) error {
	specs := exp.NewRunner(demoOpts()).Table2Specs()
	if n > 0 && n < len(specs) {
		specs = specs[:n]
	}

	body, err := json.Marshal(map[string]any{"name": "example-table2", "specs": specs})
	if err != nil {
		return err
	}
	resp, err := http.Post(addr+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := readAll(resp)
		return fmt.Errorf("sweep rejected: %s: %s", resp.Status, msg)
	}
	var sweep struct {
		ID        string `json:"id"`
		Total     int    `json:"total"`
		EventsURL string `json:"events_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		return err
	}
	fmt.Printf("job %s accepted: %d tasks\n", sweep.ID, sweep.Total)

	// Follow the SSE progress stream until the job's done event.
	events, err := http.Get(addr + sweep.EventsURL)
	if err != nil {
		return err
	}
	defer events.Body.Close()
	if events.StatusCode != http.StatusOK {
		msg, _ := readAll(events)
		return fmt.Errorf("event stream: %s: %s", events.Status, msg)
	}
	computed, cached := 0, 0
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev struct {
			Type   string `json:"type"`
			Label  string `json:"label"`
			Source string `json:"source"`
			Error  string `json:"error"`
			Done   int    `json:"done"`
			Total  int    `json:"total"`
		}
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return err
		}
		if ev.Type == "done" {
			break
		}
		if ev.Error != "" {
			fmt.Printf("[%3d/%3d] FAILED %s: %s\n", ev.Done, ev.Total, ev.Label, ev.Error)
			continue
		}
		if ev.Source == "computed" {
			computed++
		} else {
			cached++
		}
		fmt.Printf("[%3d/%3d] %-8s %s\n", ev.Done, ev.Total, ev.Source, ev.Label)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Printf("done: %d computed, %d served from cache\n", computed, cached)
	fmt.Printf("results: %s/v1/jobs/%s/results\n", addr, sweep.ID)
	return nil
}

func readAll(resp *http.Response) (string, error) {
	var b bytes.Buffer
	_, err := b.ReadFrom(resp.Body)
	return b.String(), err
}
