// Density sweep: how each refresh mechanism scales as DRAM chips grow from
// 8 Gb to 32 Gb (the paper's central claim: DSARP's advantage grows with
// density). Produces a Fig. 12/13-style table for one workload.
//
//	go run ./examples/density_sweep
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dsarp/internal/core"
	"dsarp/internal/sim"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

func main() {
	wl := workload.Mixes(1, 8, 21)[3] // a 75%-intensive mix
	mechanisms := []core.Kind{
		core.KindREFab, core.KindREFpb, core.KindElastic,
		core.KindDARP, core.KindSARPpb, core.KindDSARP, core.KindNoRef,
	}
	densities := []timing.Density{timing.Gb8, timing.Gb16, timing.Gb32}

	sumIPC := map[core.Kind]map[timing.Density]float64{}
	for _, k := range mechanisms {
		sumIPC[k] = map[timing.Density]float64{}
		for _, d := range densities {
			res, err := sim.Run(sim.Config{
				Workload:  wl,
				Mechanism: k,
				Density:   d,
				Seed:      21,
				Warmup:    40_000,
				Measure:   160_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, v := range res.IPC {
				sumIPC[k][d] += v
			}
		}
	}

	fmt.Printf("workload %s: throughput normalized to REFab per density\n\n", wl.Name)
	w := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', 0)
	fmt.Fprint(w, "mechanism")
	for _, d := range densities {
		fmt.Fprintf(w, "\t%s", d)
	}
	fmt.Fprintln(w)
	for _, k := range mechanisms {
		fmt.Fprintf(w, "%s", k)
		for _, d := range densities {
			fmt.Fprintf(w, "\t%.3f", sumIPC[k][d]/sumIPC[core.KindREFab][d])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\nExpected shape: every mechanism's edge over REFab widens with",
		"density, and DSARP tracks NoREF most closely.")
}
