package workload

import (
	"fmt"
	"math/rand"

	"dsarp/internal/trace"
)

// Workload is a multiprogrammed mix: one benchmark per core.
type Workload struct {
	Name       string
	Category   int // percentage of memory-intensive benchmarks (0..100)
	Benchmarks []trace.Profile
}

// Categories are the paper's five intensity buckets (§5).
func Categories() []int { return []int{0, 25, 50, 75, 100} }

// Mixes builds the paper's randomly mixed workloads: perCategory workloads
// in each of the five categories, each with cores benchmarks, where a
// category-C workload draws C% of its slots from the intensive subset. The
// construction is deterministic in seed.
func Mixes(perCategory, cores int, seed int64) []Workload {
	rng := rand.New(rand.NewSource(seed))
	intensive := Intensive()
	nonIntensive := NonIntensive()
	var out []Workload
	id := 0
	for _, cat := range Categories() {
		nInt := cat * cores / 100
		for w := 0; w < perCategory; w++ {
			mix := make([]trace.Profile, 0, cores)
			for i := 0; i < nInt; i++ {
				mix = append(mix, intensive[rng.Intn(len(intensive))])
			}
			for i := nInt; i < cores; i++ {
				mix = append(mix, nonIntensive[rng.Intn(len(nonIntensive))])
			}
			rng.Shuffle(len(mix), func(i, j int) { mix[i], mix[j] = mix[j], mix[i] })
			out = append(out, Workload{
				Name:       fmt.Sprintf("mix%02d.cat%d", id, cat),
				Category:   cat,
				Benchmarks: mix,
			})
			id++
		}
	}
	return out
}

// IntensiveMixes builds all-intensive workloads for the sensitivity studies
// (§6.2-6.4 use 16 randomly selected memory-intensive workloads).
func IntensiveMixes(count, cores int, seed int64) []Workload {
	rng := rand.New(rand.NewSource(seed))
	intensive := Intensive()
	out := make([]Workload, 0, count)
	for w := 0; w < count; w++ {
		mix := make([]trace.Profile, cores)
		for i := range mix {
			mix[i] = intensive[rng.Intn(len(intensive))]
		}
		out = append(out, Workload{
			Name:       fmt.Sprintf("intmix%02d", w),
			Category:   100,
			Benchmarks: mix,
		})
	}
	return out
}
