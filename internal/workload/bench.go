// Package workload defines the synthetic benchmark library and the random
// workload mixes of the paper's evaluation (§5): benchmarks modeled after
// the SPEC CPU2006 / STREAM / TPC / HPCC-RandomAccess suite, classified as
// memory-intensive (MPKI >= 10) or non-intensive, combined into 100
// workloads across five intensity categories (0/25/50/75/100% intensive).
package workload

import (
	"fmt"

	"dsarp/internal/trace"
)

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Library returns the synthetic benchmark suite. Names carry the workload
// family they are modeled after; parameters are chosen so measured LLC MPKI
// lands in the intended class for the paper's 512 KB/core LLC slice.
func Library() []trace.Profile {
	return []trace.Profile{
		// --- Memory-intensive (MPKI >= 10) ---
		{Name: "stream.triad", MPKI: 48, APKI: 50, FootprintBytes: 16 * mb,
			WriteFrac: 0.35, Pattern: trace.Stream},
		{Name: "rand.access", MPKI: 33, APKI: 35, FootprintBytes: 64 * mb,
			WriteFrac: 0.25, Pattern: trace.Random, BurstLen: 1, MaxOutstanding: 6},
		{Name: "mcf.chase", MPKI: 38, APKI: 40, FootprintBytes: 32 * mb,
			WriteFrac: 0.20, Pattern: trace.Chase, BurstLen: 2, MaxOutstanding: 2},
		{Name: "libq.scan", MPKI: 28, APKI: 30, FootprintBytes: 8 * mb,
			WriteFrac: 0.05, Pattern: trace.Stream},
		{Name: "lbm.sweep", MPKI: 24, APKI: 26, FootprintBytes: 24 * mb,
			WriteFrac: 0.45, Pattern: trace.Strided, StrideLines: 2},
		{Name: "milc.lattice", MPKI: 19, APKI: 22, FootprintBytes: 16 * mb,
			WriteFrac: 0.30, Pattern: trace.Strided, StrideLines: 4, MaxOutstanding: 6},
		{Name: "soplex.solve", MPKI: 16, APKI: 32, FootprintBytes: 12 * mb,
			WriteFrac: 0.25, Pattern: trace.Zipf, BurstLen: 4, MaxOutstanding: 4},
		{Name: "gems.fdtd", MPKI: 14, APKI: 17, FootprintBytes: 20 * mb,
			WriteFrac: 0.30, Pattern: trace.Strided, StrideLines: 8},
		{Name: "tpcc.oltp", MPKI: 12, APKI: 26, FootprintBytes: 32 * mb,
			WriteFrac: 0.30, Pattern: trace.Zipf, BurstLen: 3, MaxOutstanding: 3},
		{Name: "tpch.scan", MPKI: 11, APKI: 14, FootprintBytes: 48 * mb,
			WriteFrac: 0.10, Pattern: trace.Random, BurstLen: 16, MaxOutstanding: 4},

		// --- Memory-non-intensive (MPKI < 10) ---
		// These stay close to CPU-bound, as the paper's low-MPKI SPEC
		// benchmarks are: small footprints that mostly fit the 512 KB LLC
		// slice and sparse access streams.
		{Name: "astar.path", MPKI: 1.5, APKI: 3, FootprintBytes: 1 * mb,
			WriteFrac: 0.25, Pattern: trace.Random, BurstLen: 2, MaxOutstanding: 4},
		{Name: "gcc.compile", MPKI: 0.8, APKI: 3, FootprintBytes: 768 * kb,
			WriteFrac: 0.35, Pattern: trace.Zipf, BurstLen: 4},
		{Name: "sjeng.search", MPKI: 0.5, APKI: 2.5, FootprintBytes: 640 * kb,
			WriteFrac: 0.20, Pattern: trace.Random, BurstLen: 1},
		{Name: "h264.encode", MPKI: 0.35, APKI: 2, FootprintBytes: 576 * kb,
			WriteFrac: 0.30, Pattern: trace.Stream},
		{Name: "gobmk.eval", MPKI: 0.25, APKI: 2, FootprintBytes: 512 * kb,
			WriteFrac: 0.30, Pattern: trace.Zipf, BurstLen: 2},
		{Name: "calculix.fe", MPKI: 0.15, APKI: 1.5, FootprintBytes: 448 * kb,
			WriteFrac: 0.30, Pattern: trace.Strided, StrideLines: 2},
		{Name: "namd.md", MPKI: 0.08, APKI: 1.5, FootprintBytes: 320 * kb,
			WriteFrac: 0.25, Pattern: trace.Stream},
		{Name: "povray.render", MPKI: 0.02, APKI: 1, FootprintBytes: 192 * kb,
			WriteFrac: 0.30, Pattern: trace.Zipf, BurstLen: 2},
	}
}

// ByName returns the library profile with the given name.
func ByName(name string) (trace.Profile, error) {
	for _, p := range Library() {
		if p.Name == name {
			return p, nil
		}
	}
	return trace.Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Intensive returns the memory-intensive subset of the library.
func Intensive() []trace.Profile { return filter(true) }

// NonIntensive returns the memory-non-intensive subset of the library.
func NonIntensive() []trace.Profile { return filter(false) }

func filter(intensive bool) []trace.Profile {
	var out []trace.Profile
	for _, p := range Library() {
		if p.Intensive() == intensive {
			out = append(out, p)
		}
	}
	return out
}
