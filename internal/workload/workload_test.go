package workload

import (
	"reflect"
	"testing"
)

func TestLibraryClassBalance(t *testing.T) {
	in, non := Intensive(), NonIntensive()
	if len(in) < 8 {
		t.Errorf("intensive library too small: %d", len(in))
	}
	if len(non) < 6 {
		t.Errorf("non-intensive library too small: %d", len(non))
	}
	for _, p := range in {
		if p.MPKI < 10 {
			t.Errorf("%s in intensive set with MPKI %v", p.Name, p.MPKI)
		}
	}
	for _, p := range non {
		if p.MPKI >= 10 {
			t.Errorf("%s in non-intensive set with MPKI %v", p.Name, p.MPKI)
		}
	}
}

func TestLibraryNamesUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Library() {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark name %q", p.Name)
		}
		seen[p.Name] = true
		got, err := ByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("ByName(%q) = %v, %v", p.Name, got.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestMixesStructure(t *testing.T) {
	const perCat, cores = 20, 8
	ws := Mixes(perCat, cores, 42)
	if len(ws) != perCat*len(Categories()) {
		t.Fatalf("got %d workloads, want %d", len(ws), perCat*len(Categories()))
	}
	counts := map[int]int{}
	for _, w := range ws {
		counts[w.Category]++
		if len(w.Benchmarks) != cores {
			t.Fatalf("%s has %d benchmarks, want %d", w.Name, len(w.Benchmarks), cores)
		}
		intensive := 0
		for _, b := range w.Benchmarks {
			if b.Intensive() {
				intensive++
			}
		}
		if want := w.Category * cores / 100; intensive != want {
			t.Errorf("%s: %d intensive slots, want %d", w.Name, intensive, want)
		}
	}
	for _, c := range Categories() {
		if counts[c] != perCat {
			t.Errorf("category %d%%: %d workloads, want %d", c, counts[c], perCat)
		}
	}
}

func TestMixesDeterministic(t *testing.T) {
	a := Mixes(5, 8, 7)
	b := Mixes(5, 8, 7)
	if !reflect.DeepEqual(a, b) {
		t.Error("Mixes not deterministic for equal seeds")
	}
	c := Mixes(5, 8, 8)
	if reflect.DeepEqual(a, c) {
		t.Error("Mixes identical across different seeds")
	}
}

func TestIntensiveMixesAllIntensive(t *testing.T) {
	ws := IntensiveMixes(16, 8, 3)
	if len(ws) != 16 {
		t.Fatalf("got %d workloads", len(ws))
	}
	for _, w := range ws {
		for _, b := range w.Benchmarks {
			if !b.Intensive() {
				t.Errorf("%s contains non-intensive %s", w.Name, b.Name)
			}
		}
	}
}
