// Package cpu models the out-of-order cores of the evaluated system: 4 GHz,
// 3-wide issue, 128-entry instruction window, 8 MSHRs per core (paper
// Table 1). The model is the standard trace-driven window model: the core
// retires up to issue-width instructions per CPU cycle, cannot retire past
// an incomplete load, cannot run more than the window size ahead of
// retirement, and cannot have more loads outstanding than its MSHRs (or the
// benchmark's own memory-level-parallelism cap for dependent chains).
package cpu

import "dsarp/internal/trace"

// Config sets the core microarchitecture parameters.
type Config struct {
	Width  int // issue/retire width per CPU cycle
	Window int // instruction window (ROB) size
	MSHRs  int // maximum outstanding load misses
	// CPUPerDRAM is the clock ratio: CPU cycles per DRAM bus cycle
	// (4 GHz / 666 MHz = 6 for DDR3-1333).
	CPUPerDRAM int
}

// DefaultConfig mirrors Table 1 of the paper.
func DefaultConfig() Config {
	return Config{Width: 3, Window: 128, MSHRs: 8, CPUPerDRAM: 6}
}

// Memory is the core's load/store port (the LLC slice). Access returns
// false when the access cannot be admitted this cycle; the core retries.
type Memory interface {
	Access(now int64, addr uint64, write bool, onDone func(now int64)) bool
}

type loadEntry struct {
	pos  int64 // instruction position of the load
	done bool
	// onDone marks the entry complete; built once per entry and reused via
	// the core's free list, so issuing a load allocates nothing in steady
	// state. Safe to reuse: an entry is only recycled after retirement,
	// which requires done (the callback has already fired and cannot fire
	// again).
	onDone func(now int64)
}

// Core is one trace-driven core.
type Core struct {
	cfg    Config
	id     int
	gen    trace.Generator
	mem    Memory
	base   uint64 // physical address offset isolating this core's footprint
	maxOut int

	issued      int64 // instructions dispatched
	retired     int64
	cpuCycles   int64
	outstanding int
	loads       []*loadEntry // in program order
	freeLoads   []*loadEntry // retired entries awaiting reuse

	next     trace.Access
	nextPos  int64
	haveNext bool

	stats Stats
}

// Stats counts core progress.
type Stats struct {
	Retired      int64
	CPUCycles    int64
	Loads        int64
	Stores       int64
	MemStallBeat int64 // dispatch beats lost to memory backpressure
}

// IPC is retired instructions per CPU cycle.
func (s Stats) IPC() float64 {
	if s.CPUCycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.CPUCycles)
}

// New builds a core running the given benchmark trace. base offsets the
// benchmark's footprint in physical memory so multiprogrammed cores do not
// share data (the paper's workloads are multiprogrammed, not multithreaded).
func New(id int, cfg Config, gen trace.Generator, maxOutstanding int, base uint64, mem Memory) *Core {
	if maxOutstanding <= 0 || maxOutstanding > cfg.MSHRs {
		maxOutstanding = cfg.MSHRs
	}
	return &Core{cfg: cfg, id: id, gen: gen, mem: mem, base: base, maxOut: maxOutstanding}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Stats returns progress counters.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Retired = c.retired
	s.CPUCycles = c.cpuCycles
	return s
}

// Tick advances the core by the configured number of CPU cycles per DRAM
// cycle. now is the current DRAM cycle (used for memory callbacks).
//
// Two stall states are fully determined by core-local fields and can only
// be broken by a load-completion callback, which never fires between the
// sub-cycles of one Tick — so they fast-forward the whole DRAM cycle while
// accumulating exactly the counters the cycle-by-cycle loop would:
//
//  1. Retirement blocked on an incomplete load at the window head with the
//     instruction window full: every CPU cycle is pure wait.
//  2. Retirement blocked the same way, window not full, but the next
//     instruction is a load and the MSHRs are full: every CPU cycle waits
//     and records one memory-stall beat (the dispatch loop's first action
//     would be the failed MSHR check).
func (c *Core) Tick(now int64) {
	if len(c.loads) > 0 && c.loads[0].pos == c.retired && !c.loads[0].done {
		if c.issued-c.retired >= int64(c.cfg.Window) {
			c.cpuCycles += int64(c.cfg.CPUPerDRAM)
			return
		}
		if c.haveNext && c.issued == c.nextPos && !c.next.Write && c.outstanding >= c.maxOut {
			c.cpuCycles += int64(c.cfg.CPUPerDRAM)
			c.stats.MemStallBeat += int64(c.cfg.CPUPerDRAM)
			return
		}
	}
	for i := 0; i < c.cfg.CPUPerDRAM; i++ {
		c.cpuTick(now)
	}
}

func (c *Core) cpuTick(now int64) {
	c.cpuCycles++

	// Retire: up to Width instructions, stopping at an incomplete load.
	for n := 0; n < c.cfg.Width && c.retired < c.issued; {
		if len(c.loads) > 0 && c.loads[0].pos == c.retired {
			if !c.loads[0].done {
				break
			}
			c.freeLoads = append(c.freeLoads, c.loads[0])
			c.loads = c.loads[1:]
		}
		c.retired++
		n++
	}

	// Dispatch: up to Width instructions, bounded by the window.
	for d := 0; d < c.cfg.Width; {
		if c.issued-c.retired >= int64(c.cfg.Window) {
			break
		}
		if !c.haveNext {
			c.next = c.gen.Next()
			c.nextPos = c.issued + int64(c.next.Gap)
			c.haveNext = true
		}
		if c.issued < c.nextPos {
			// Non-memory instructions up to the access or the beat budget.
			adv := int64(c.cfg.Width - d)
			if room := int64(c.cfg.Window) - (c.issued - c.retired); adv > room {
				adv = room
			}
			if left := c.nextPos - c.issued; adv > left {
				adv = left
			}
			c.issued += adv
			d += int(adv)
			continue
		}
		// Memory instruction.
		addr := c.base + c.next.Addr
		if c.next.Write {
			if !c.mem.Access(now, addr, true, nil) {
				c.stats.MemStallBeat++
				break
			}
			c.stats.Stores++
		} else {
			if c.outstanding >= c.maxOut {
				c.stats.MemStallBeat++
				break
			}
			var ld *loadEntry
			if n := len(c.freeLoads); n > 0 {
				ld = c.freeLoads[n-1]
				c.freeLoads = c.freeLoads[:n-1]
				ld.pos, ld.done = c.issued, false
			} else {
				ld = &loadEntry{pos: c.issued}
				ld.onDone = func(int64) {
					ld.done = true
					c.outstanding--
				}
			}
			if !c.mem.Access(now, addr, false, ld.onDone) {
				c.freeLoads = append(c.freeLoads, ld)
				c.stats.MemStallBeat++
				break
			}
			c.outstanding++
			c.loads = append(c.loads, ld)
			c.stats.Loads++
		}
		c.issued++
		d++
		c.haveNext = false
	}
}
