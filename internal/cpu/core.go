// Package cpu models the out-of-order cores of the evaluated system: 4 GHz,
// 3-wide issue, 128-entry instruction window, 8 MSHRs per core (paper
// Table 1). The model is the standard trace-driven window model: the core
// retires up to issue-width instructions per CPU cycle, cannot retire past
// an incomplete load, cannot run more than the window size ahead of
// retirement, and cannot have more loads outstanding than its MSHRs (or the
// benchmark's own memory-level-parallelism cap for dependent chains).
package cpu

import (
	"math"

	"dsarp/internal/fifo"
	"dsarp/internal/trace"
)

// Config sets the core microarchitecture parameters.
type Config struct {
	Width  int // issue/retire width per CPU cycle
	Window int // instruction window (ROB) size
	MSHRs  int // maximum outstanding load misses
	// CPUPerDRAM is the clock ratio: CPU cycles per DRAM bus cycle
	// (4 GHz / 666 MHz = 6 for DDR3-1333).
	CPUPerDRAM int
}

// DefaultConfig mirrors Table 1 of the paper.
func DefaultConfig() Config {
	return Config{Width: 3, Window: 128, MSHRs: 8, CPUPerDRAM: 6}
}

// Memory is the core's load/store port (the LLC slice). Access returns
// false when the access cannot be admitted this cycle; the core retries.
// tag identifies the requesting load (its instruction position) so a
// restored snapshot can re-link pending completion callbacks to the
// right load entry; stores pass 0.
type Memory interface {
	Access(now int64, addr uint64, write bool, tag uint64, onDone func(now int64)) bool
}

type loadEntry struct {
	pos  int64 // instruction position of the load
	done bool
	// onDone marks the entry complete; built once per entry and reused via
	// the core's free list, so issuing a load allocates nothing in steady
	// state. Safe to reuse: an entry is only recycled after retirement,
	// which requires done (the callback has already fired and cannot fire
	// again).
	onDone func(now int64)
}

// Core is one trace-driven core.
type Core struct {
	cfg    Config
	id     int
	gen    trace.Generator
	mem    Memory
	base   uint64 // physical address offset isolating this core's footprint
	maxOut int
	// burstQuantum is Width*CPUPerDRAM: instructions dispatched per DRAM
	// cycle during a compute burst (0 disables bursts for degenerate
	// configs with Window < Width).
	burstQuantum int64

	issued      int64 // instructions dispatched
	retired     int64
	cpuCycles   int64
	outstanding int
	// loads[loadHead:] are the in-flight load entries in program order. The
	// head index replaces pop-front reslicing: advancing a slice start while
	// appending at the end makes every append see an exhausted capacity and
	// reallocate, which was the stepped cycle's only steady-state heap
	// traffic. The head compacts the slice in place instead (amortized O(1),
	// zero allocations).
	loads     []*loadEntry
	loadHead  int
	freeLoads []*loadEntry // retired entries awaiting reuse

	next     trace.Access
	nextPos  int64
	haveNext bool

	// Memoized NextEvent answer and skip trajectory. The next-event cycle,
	// the trajectory mode, the blocking load position, and the absolute CPU
	// cycle at which memory-stall beats begin are all derived purely from
	// core state and invariant under Skip (which moves the state along the
	// exact trajectory they were derived from) — so the memo survives skips
	// and is only dropped when the state actually forks: a Tick ran, or a
	// load-completion callback arrived.
	evCached     int64
	evValid      bool
	trajMode     int8  // stallNone/stallWindow/stallMSHR at classification
	trajB        int64 // first incomplete load position (-1 none)
	trajBeatFrom int64 // absolute cpuCycles before the first beat tick

	stats Stats
}

// Stats counts core progress.
type Stats struct {
	Retired      int64
	CPUCycles    int64
	Loads        int64
	Stores       int64
	MemStallBeat int64 // dispatch beats lost to memory backpressure
}

// IPC is retired instructions per CPU cycle.
func (s Stats) IPC() float64 {
	if s.CPUCycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.CPUCycles)
}

// New builds a core running the given benchmark trace. base offsets the
// benchmark's footprint in physical memory so multiprogrammed cores do not
// share data (the paper's workloads are multiprogrammed, not multithreaded).
func New(id int, cfg Config, gen trace.Generator, maxOutstanding int, base uint64, mem Memory) *Core {
	if maxOutstanding <= 0 || maxOutstanding > cfg.MSHRs {
		maxOutstanding = cfg.MSHRs
	}
	c := &Core{cfg: cfg, id: id, gen: gen, mem: mem, base: base, maxOut: maxOutstanding}
	if cfg.Window >= cfg.Width {
		c.burstQuantum = int64(cfg.Width * cfg.CPUPerDRAM)
	}
	return c
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Stats returns progress counters.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Retired = c.retired
	s.CPUCycles = c.cpuCycles
	return s
}

// Tick advances the core by the configured number of CPU cycles per DRAM
// cycle. now is the current DRAM cycle (used for memory callbacks).
//
// Tick first consults its own NextEvent: when the next slice access (or
// generator draw) provably lies beyond this DRAM cycle, the whole cycle is
// the linear trajectory Skip replays — the same substitution the selective
// stepper makes from outside, now made inside Tick so the blind-stepping
// saturation fallback gets it too. This subsumes the dedicated stall fast
// paths: a stalled core classifies as stallWindow/stallMSHR and replays its
// wait counters in O(1), with the NextEvent memo carrying across cycles
// until a load-completion callback forks the state. When the access attempt
// falls inside this cycle at sub-tick k, the k-1 pure sub-ticks before it
// advance by the same closed form and only the remainder runs the
// cycle-accurate loop.
func (c *Core) Tick(now int64) {
	if c.NextEvent(now) > now {
		c.Skip(1)
		return
	}
	// trajMode and trajB are fresh from the NextEvent classification above.
	if c.trajMode == stallNone && c.haveNext && c.burstQuantum != 0 &&
		(c.trajB < 0 || c.nextPos < c.trajB+int64(c.cfg.Window)) {
		if k := c.attemptTick() - 1; k > 0 {
			if k > int64(c.cfg.CPUPerDRAM) {
				k = int64(c.cfg.CPUPerDRAM)
			}
			c.advanceCPUTicks(k)
			c.evValid = false
			for i := int64(0); i < int64(c.cfg.CPUPerDRAM)-k; i++ {
				c.cpuTick(now)
			}
			return
		}
	}
	c.evValid = false
	for i := 0; i < c.cfg.CPUPerDRAM; i++ {
		c.cpuTick(now)
	}
}

// Stall states recognized by Tick's fast paths and the skip machinery.
const (
	stallNone   = iota
	stallWindow // retirement blocked, instruction window full
	stallMSHR   // retirement blocked, next instruction a load, MSHRs full
)

// popLoad removes the oldest in-flight load entry (the caller has already
// moved it to the free list).
func (c *Core) popLoad() {
	c.loads, c.loadHead = fifo.PopFront(c.loads, c.loadHead)
}

// stallState classifies the core per the exact conditions of Tick's two
// fast paths. Both states are functions of core-local fields that only a
// load-completion callback can change, so they persist across any window in
// which no memory callback fires.
func (c *Core) stallState() int {
	if c.loadHead < len(c.loads) && c.loads[c.loadHead].pos == c.retired && !c.loads[c.loadHead].done {
		if c.issued-c.retired >= int64(c.cfg.Window) {
			return stallWindow
		}
		if c.haveNext && c.issued == c.nextPos && !c.next.Write && c.outstanding >= c.maxOut {
			return stallMSHR
		}
	}
	return stallNone
}

// The fast-forward machinery below exploits that, absent memory callbacks
// and slice interactions, the retire and dispatch loops obey a closed form.
// With b the position of the oldest incomplete load (retirement can pop
// completed loads for free but stops dead at b), P the position of the next
// memory instruction, W the width, and N the window, after t CPU ticks:
//
//	R(t) = min(R0 + W*t, b)                      (b = +inf when no load pends)
//	I(t) = min(I0 + W*t, P, b + N)
//
// (dispatch can never outrun the window anchored at the pinned retirement,
// and the per-tick saturation collapses into the min). Everything the core
// does before its next slice access — the only interaction the rest of the
// system can observe — follows from these two lines, so NextEvent can name
// the exact cycle of that access and Skip can replay any prefix in O(1).

// firstIncomplete returns the position of the oldest incomplete load, or -1.
// Load entries are kept in program order, and in the common case the oldest
// entry is the incomplete one, so the scan terminates immediately.
func (c *Core) firstIncomplete() int64 {
	for _, ld := range c.loads[c.loadHead:] {
		if !ld.done {
			return ld.pos
		}
	}
	return -1
}

// attemptTick returns the 1-based CPU tick in which the dispatch loop first
// attempts the memory instruction at nextPos: the tick where I(t) reaches P
// with loop budget left (a full-width arrival defers to the next tick), but
// no earlier than retirement has freed enough window room for the loop to
// get past its window check (gap = P - R(t) < N). The caller must have
// established P < b + N — which also guarantees b > P - N, so the pin at b
// never keeps retirement from reaching the required P - N + 1 and the
// unpinned retirement trajectory alone decides when the room opens.
func (c *Core) attemptTick() int64 {
	w := int64(c.cfg.Width)
	at := int64(1)
	if l := c.nextPos - c.issued; l > 0 {
		tArr := (l + w - 1) / w
		at = tArr
		if l-w*(tArr-1) == w {
			at = tArr + 1
		}
	}
	// Window room: R(t) must exceed P - N before the memory branch runs.
	if need := c.nextPos - int64(c.cfg.Window) + 1 - c.retired; need > 0 {
		if tOpen := (need + w - 1) / w; tOpen > at {
			at = tOpen
		}
	}
	return at
}

// NextEvent returns the earliest cycle >= now at which Tick could do
// anything beyond the linear accounting Skip replays — that is, the cycle
// of the core's next slice access. A core that will stall before reaching
// one (window full behind an incomplete load, or its next load facing full
// MSHRs) cannot wake itself — only a load-completion callback out of the
// cache or the memory controller can, and the clock-skipping engine bounds
// every skip by those components' own events — so it reports no deadline at
// all. Part of the engine's NextEvent contract (see sim).
func (c *Core) NextEvent(now int64) int64 {
	if c.evValid {
		return c.evCached
	}
	c.evCached = c.nextEvent(now)
	c.evValid = true
	return c.evCached
}

// nextEvent classifies the core's trajectory (caching the parameters Skip
// replays from) and returns the next event cycle.
func (c *Core) nextEvent(now int64) int64 {
	c.trajB = -1
	c.trajBeatFrom = math.MaxInt64
	c.trajMode = int8(c.stallState())
	switch c.trajMode {
	case stallWindow, stallMSHR:
		return math.MaxInt64
	}
	if !c.haveNext || c.burstQuantum == 0 {
		return now // about to draw from the generator: unpredictable
	}
	b := c.firstIncomplete()
	c.trajB = b
	if b < 0 {
		// Pure compute: full-width dispatch straight toward the access.
		if l := c.nextPos - c.issued; l >= c.burstQuantum {
			return now + l/c.burstQuantum
		}
		return now
	}
	if c.nextPos >= b+int64(c.cfg.Window) {
		return math.MaxInt64 // will fill the window behind the load and stall
	}
	if !c.next.Write && c.outstanding >= c.maxOut {
		// Will reach the load and sit on full MSHRs, burning one beat per
		// CPU cycle from the attempt tick on.
		c.trajBeatFrom = c.cpuCycles + c.attemptTick() - 1
		return math.MaxInt64
	}
	if k := (c.attemptTick() - 1) / int64(c.cfg.CPUPerDRAM); k > 0 {
		return now + k
	}
	return now
}

// Skip replays the accounting of `cycles` elided Ticks (within the window
// NextEvent granted): CPU cycles always accrue; retirement and dispatch
// advance per the closed form above; memory-stall beats accrue from the
// tick the dispatch loop first parks on a full-MSHR load; and completed
// loads that retirement passed are popped exactly as the per-cycle retire
// loop would (an entry whose position equals the final retired count has
// not been retired yet and stays).
func (c *Core) Skip(cycles int64) {
	if !c.evValid {
		c.nextEvent(0) // classify the trajectory (result cycle unused)
	}
	c.advanceCPUTicks(cycles * int64(c.cfg.CPUPerDRAM))
}

// advanceCPUTicks replays n elided CPU ticks along the classified
// trajectory (the caller must have run nextEvent since the last state
// fork). Tick uses it for the pure sub-ticks before an in-cycle access
// attempt; Skip for whole elided DRAM cycles.
func (c *Core) advanceCPUTicks(n int64) {
	before := c.cpuCycles
	c.cpuCycles += n
	switch c.trajMode {
	case stallWindow:
		return
	case stallMSHR:
		c.stats.MemStallBeat += n
		return
	}
	w := int64(c.cfg.Width)
	b := c.trajB
	if b < 0 {
		gap := c.issued - c.retired
		c.issued += w * n
		if gap < w {
			c.retired += gap + w*(n-1)
		} else {
			c.retired += w * n
		}
	} else {
		if from := c.trajBeatFrom; from < c.cpuCycles {
			if from < before {
				from = before
			}
			c.stats.MemStallBeat += c.cpuCycles - from
		}
		if r := c.retired + w*n; r < b {
			c.retired = r
		} else {
			c.retired = b
		}
		i := c.issued + w*n
		if i > c.nextPos {
			i = c.nextPos
		}
		if lim := b + int64(c.cfg.Window); i > lim {
			i = lim
		}
		c.issued = i
	}
	for c.loadHead < len(c.loads) && c.loads[c.loadHead].pos < c.retired {
		c.freeLoads = append(c.freeLoads, c.loads[c.loadHead])
		c.popLoad()
	}
}

func (c *Core) cpuTick(now int64) {
	c.cpuCycles++

	// Retire: up to Width instructions, stopping at an incomplete load.
	// With no loads awaiting retirement the loop is a bounded increment.
	if c.loadHead == len(c.loads) {
		if adv := c.issued - c.retired; adv > 0 {
			if adv > int64(c.cfg.Width) {
				adv = int64(c.cfg.Width)
			}
			c.retired += adv
		}
	} else {
		for n := 0; n < c.cfg.Width && c.retired < c.issued; {
			if c.loadHead < len(c.loads) && c.loads[c.loadHead].pos == c.retired {
				if !c.loads[c.loadHead].done {
					break
				}
				c.freeLoads = append(c.freeLoads, c.loads[c.loadHead])
				c.popLoad()
			}
			c.retired++
			n++
		}
	}

	// Dispatch: up to Width instructions, bounded by the window.
	for d := 0; d < c.cfg.Width; {
		if c.issued-c.retired >= int64(c.cfg.Window) {
			break
		}
		if !c.haveNext {
			c.next = c.gen.Next()
			c.nextPos = c.issued + int64(c.next.Gap)
			c.haveNext = true
		}
		if c.issued < c.nextPos {
			// Non-memory instructions up to the access or the beat budget.
			adv := int64(c.cfg.Width - d)
			if room := int64(c.cfg.Window) - (c.issued - c.retired); adv > room {
				adv = room
			}
			if left := c.nextPos - c.issued; adv > left {
				adv = left
			}
			c.issued += adv
			d += int(adv)
			continue
		}
		// Memory instruction.
		addr := c.base + c.next.Addr
		if c.next.Write {
			if !c.mem.Access(now, addr, true, 0, nil) {
				c.stats.MemStallBeat++
				break
			}
			c.stats.Stores++
		} else {
			if c.outstanding >= c.maxOut {
				c.stats.MemStallBeat++
				break
			}
			var ld *loadEntry
			if n := len(c.freeLoads); n > 0 {
				ld = c.freeLoads[n-1]
				c.freeLoads = c.freeLoads[:n-1]
				ld.pos, ld.done = c.issued, false
			} else {
				ld = &loadEntry{pos: c.issued}
				ld.onDone = func(int64) {
					ld.done = true
					c.outstanding--
					c.evValid = false
				}
			}
			if !c.mem.Access(now, addr, false, uint64(ld.pos), ld.onDone) {
				c.freeLoads = append(c.freeLoads, ld)
				c.stats.MemStallBeat++
				break
			}
			c.outstanding++
			c.loads = append(c.loads, ld)
			c.stats.Loads++
		}
		c.issued++
		d++
		c.haveNext = false
	}
}
