package cpu

import (
	"testing"

	"dsarp/internal/trace"
)

// scriptGen replays a fixed access list, then repeats the last entry with a
// huge gap (effectively no more memory traffic).
type scriptGen struct {
	accesses []trace.Access
	i        int
}

func (g *scriptGen) Name() string { return "script" }

func (g *scriptGen) Next() trace.Access {
	if g.i < len(g.accesses) {
		a := g.accesses[g.i]
		g.i++
		return a
	}
	return trace.Access{Gap: 1 << 30}
}

// fakeMem answers accesses with controllable latency (in Tick granularity).
type fakeMem struct {
	reject  bool
	pending []func(int64)
	loads   int
	stores  int
}

func (m *fakeMem) Access(now int64, addr uint64, write bool, tag uint64, onDone func(int64)) bool {
	if m.reject {
		return false
	}
	if write {
		m.stores++
		return true
	}
	m.loads++
	m.pending = append(m.pending, onDone)
	return true
}

func (m *fakeMem) completeAll(now int64) {
	for _, f := range m.pending {
		f(now)
	}
	m.pending = nil
}

func cfg() Config { return Config{Width: 3, Window: 16, MSHRs: 4, CPUPerDRAM: 2} }

func TestPureComputeRetiresAtWidth(t *testing.T) {
	m := &fakeMem{}
	c := New(0, cfg(), &scriptGen{}, 0, 0, m)
	for i := int64(0); i < 50; i++ {
		c.Tick(i)
	}
	st := c.Stats()
	// 50 DRAM ticks * 2 CPU cycles * width 3, minus pipeline fill slack.
	if st.Retired < int64(50*2*3-10) {
		t.Errorf("compute-bound retired %d, want ~%d", st.Retired, 50*2*3)
	}
	if got := st.IPC(); got < 2.5 || got > 3.0 {
		t.Errorf("IPC = %v, want ~3", got)
	}
}

func TestLoadBlocksRetirementUntilData(t *testing.T) {
	m := &fakeMem{}
	g := &scriptGen{accesses: []trace.Access{{Gap: 0, Addr: 64}}}
	c := New(0, cfg(), g, 0, 0, m)
	for i := int64(0); i < 20; i++ {
		c.Tick(i)
	}
	st := c.Stats()
	if m.loads != 1 {
		t.Fatalf("loads issued = %d", m.loads)
	}
	// The load is instruction 0: nothing can retire past it; the window
	// fills and dispatch stops at Window instructions.
	if st.Retired != 0 {
		t.Errorf("retired %d past an incomplete load at position 0", st.Retired)
	}
	m.completeAll(20)
	for i := int64(20); i < 40; i++ {
		c.Tick(i)
	}
	if c.Stats().Retired == 0 {
		t.Error("retirement never resumed after the load returned")
	}
}

func TestWindowLimitsRunahead(t *testing.T) {
	m := &fakeMem{}
	g := &scriptGen{accesses: []trace.Access{{Gap: 0, Addr: 64}}}
	c := New(0, cfg(), g, 0, 0, m)
	for i := int64(0); i < 100; i++ {
		c.Tick(i)
	}
	// With the head load incomplete, at most Window instructions are in
	// flight; loads beyond it cannot issue.
	if got := c.Stats().Loads; got != 1 {
		t.Errorf("loads = %d, want 1 (window blocked)", got)
	}
}

func TestMSHRLimit(t *testing.T) {
	m := &fakeMem{}
	// 8 independent loads, no gaps: only MSHRs(4) may be outstanding.
	var acc []trace.Access
	for i := 0; i < 8; i++ {
		acc = append(acc, trace.Access{Gap: 0, Addr: uint64(i * 64)})
	}
	g := &scriptGen{accesses: acc}
	c := New(0, cfg(), g, 0, 0, m)
	for i := int64(0); i < 20; i++ {
		c.Tick(i)
	}
	if m.loads != 4 {
		t.Errorf("outstanding loads = %d, want MSHR limit 4", m.loads)
	}
	m.completeAll(20)
	for i := int64(20); i < 60; i++ {
		c.Tick(i)
	}
	m.completeAll(60)
	for i := int64(60); i < 80; i++ {
		c.Tick(i)
	}
	if m.loads != 8 {
		t.Errorf("total loads = %d, want 8", m.loads)
	}
}

func TestMaxOutstandingOverride(t *testing.T) {
	m := &fakeMem{}
	var acc []trace.Access
	for i := 0; i < 4; i++ {
		acc = append(acc, trace.Access{Gap: 0, Addr: uint64(i * 64)})
	}
	c := New(0, cfg(), &scriptGen{accesses: acc}, 1, 0, m) // dependent chain: MLP 1
	for i := int64(0); i < 20; i++ {
		c.Tick(i)
	}
	if m.loads != 1 {
		t.Errorf("dependent chain issued %d loads at once, want 1", m.loads)
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	m := &fakeMem{}
	g := &scriptGen{accesses: []trace.Access{{Gap: 0, Addr: 64, Write: true}}}
	c := New(0, cfg(), g, 0, 0, m)
	for i := int64(0); i < 20; i++ {
		c.Tick(i)
	}
	st := c.Stats()
	if m.stores != 1 {
		t.Fatalf("stores = %d", m.stores)
	}
	if st.Retired < 50 {
		t.Errorf("store should not stall retirement: retired %d", st.Retired)
	}
}

func TestBackpressureStallsDispatch(t *testing.T) {
	m := &fakeMem{reject: true}
	g := &scriptGen{accesses: []trace.Access{{Gap: 0, Addr: 64}}}
	c := New(0, cfg(), g, 0, 0, m)
	for i := int64(0); i < 10; i++ {
		c.Tick(i)
	}
	if m.loads != 0 {
		t.Fatal("load issued despite rejection")
	}
	if c.Stats().MemStallBeat == 0 {
		t.Error("backpressure stalls not counted")
	}
	m.reject = false
	for i := int64(10); i < 20; i++ {
		c.Tick(i)
	}
	if m.loads != 1 {
		t.Error("load not retried after backpressure cleared")
	}
}

func TestBaseOffsetsAddresses(t *testing.T) {
	var got uint64
	m := &fakeMem{}
	g := &scriptGen{accesses: []trace.Access{{Gap: 0, Addr: 0x40}}}
	c := New(3, cfg(), g, 0, 0x1000, &capturingMem{inner: m, addr: &got})
	c.Tick(0)
	if got != 0x1040 {
		t.Errorf("address = %#x, want base+addr = 0x1040", got)
	}
}

type capturingMem struct {
	inner *fakeMem
	addr  *uint64
}

func (m *capturingMem) Access(now int64, addr uint64, write bool, tag uint64, onDone func(int64)) bool {
	*m.addr = addr
	return m.inner.Access(now, addr, write, tag, onDone)
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.Width != 3 || c.Window != 128 || c.MSHRs != 8 || c.CPUPerDRAM != 6 {
		t.Errorf("default core config diverges from Table 1: %+v", c)
	}
}
