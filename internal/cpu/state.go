package cpu

import (
	"fmt"

	"dsarp/internal/snap"
)

// AppendState writes the core's mutable state: progress counters, the
// in-flight load entries in program order, the buffered next access, and
// the trace generator's stream position. The NextEvent memo and skip
// trajectory are derived state and deliberately omitted — LoadState drops
// them and the next NextEvent recomputes identical answers from the same
// fields, so resumed runs step exactly like cold ones.
func (c *Core) AppendState(w *snap.Writer) {
	w.I64(c.issued)
	w.I64(c.retired)
	w.I64(c.cpuCycles)
	w.I64(c.stats.Loads)
	w.I64(c.stats.Stores)
	w.I64(c.stats.MemStallBeat)
	w.Bool(c.haveNext)
	w.Int(c.next.Gap)
	w.U64(c.next.Addr)
	w.Bool(c.next.Write)
	w.I64(c.nextPos)
	live := c.loads[c.loadHead:]
	w.Int(len(live))
	for _, ld := range live {
		w.I64(ld.pos)
		w.Bool(ld.done)
	}
	gen, ok := c.gen.(snap.Codec)
	if !ok {
		panic(fmt.Sprintf("cpu: generator %T does not serialize", c.gen))
	}
	gen.AppendState(w)
}

// LoadState restores the state written by AppendState onto a freshly
// constructed core with the same configuration and generator. Load
// completion callbacks are rebuilt here; the cache slice re-links its
// pending deliveries to them via CompletionFor.
func (c *Core) LoadState(r *snap.Reader) error {
	c.issued = r.I64()
	c.retired = r.I64()
	c.cpuCycles = r.I64()
	c.stats.Loads = r.I64()
	c.stats.Stores = r.I64()
	c.stats.MemStallBeat = r.I64()
	c.haveNext = r.Bool()
	c.next.Gap = r.Int()
	c.next.Addr = r.U64()
	c.next.Write = r.Bool()
	c.nextPos = r.I64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	// The list holds completed-but-unretired loads too (retirement is in
	// order), so it is bounded by the instruction window, not the MSHRs.
	if n < 0 || n > c.cfg.Window {
		return fmt.Errorf("cpu: snapshot has %d in-flight loads, window is %d", n, c.cfg.Window)
	}
	c.loads = c.loads[:0]
	c.loadHead = 0
	c.freeLoads = nil
	c.outstanding = 0
	for i := 0; i < n; i++ {
		ld := &loadEntry{pos: r.I64(), done: r.Bool()}
		ld.onDone = func(int64) {
			ld.done = true
			c.outstanding--
			c.evValid = false
		}
		if !ld.done {
			c.outstanding++
		}
		c.loads = append(c.loads, ld)
	}
	if c.outstanding > c.maxOut {
		return fmt.Errorf("cpu: snapshot has %d outstanding misses, core allows %d", c.outstanding, c.maxOut)
	}
	c.evValid = false
	gen, ok := c.gen.(snap.Codec)
	if !ok {
		return fmt.Errorf("cpu: generator %T does not serialize", c.gen)
	}
	if err := gen.LoadState(r); err != nil {
		return err
	}
	return r.Err()
}

// CompletionFor returns the completion callback of the in-flight load
// tagged with the given instruction position, for re-linking a restored
// cache slice's pending deliveries. It is an error to ask for a load that
// is not in flight: a snapshot that references one is corrupt.
func (c *Core) CompletionFor(tag uint64) (func(now int64), error) {
	for _, ld := range c.loads[c.loadHead:] {
		if uint64(ld.pos) == tag && !ld.done {
			return ld.onDone, nil
		}
	}
	return nil, fmt.Errorf("cpu: core %d has no in-flight load at position %d", c.id, tag)
}
