package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"dsarp/internal/store"
)

// The journal is an append-only JSONL file recording one run's state
// transitions: a header pinning the run's identity (name plus every spec
// key, in order), then one line per event — dispatched@worker, done(key),
// failed(key, error), and a resume marker each time an orchestrator
// reopens the file. Replaying it after a crash tells a fresh orchestrator
// which specs are already durable somewhere (done), which permanently
// failed, and which were merely in flight (safe to re-dispatch: results
// are content-addressed, so dispatching a spec twice is idempotent).
//
// Only line-level durability is assumed: every append is fsynced, and a
// torn final line (a crash mid-append) is ignored on replay. Every other
// malformed line is an error — a journal is tiny and precious, and a hole
// in the middle means something other than this code wrote to it.
type journalEntry struct {
	Type string `json:"type"` // "run" | "resume" | "dispatched" | "done" | "failed"
	// Header fields.
	Name   string   `json:"name,omitempty"`
	Schema string   `json:"schema,omitempty"`
	Keys   []string `json:"keys,omitempty"`
	// Event fields.
	Key    string `json:"key,omitempty"`
	Worker string `json:"worker,omitempty"`
	Error  string `json:"error,omitempty"`
}

const (
	entryRun        = "run"
	entryResume     = "resume"
	entryDispatched = "dispatched"
	entryDone       = "done"
	entryFailed     = "failed"
)

// journalState is the replayed view of a prior run: the terminal state
// each spec key last reached. Dispatched-but-not-done specs appear in
// neither map — they are pending again.
type journalState struct {
	done   map[store.Key]bool
	failed map[store.Key]string
}

type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (or creates) the journal at path for the run
// identified by name, schema, and keys. A fresh or effectively-empty file
// gets a run header; an existing journal must carry a matching header —
// resuming a journal written for a different spec set would silently mix
// two runs' results, so it is refused. The replayed state of a resumed
// journal is returned alongside.
func openJournal(path, name, schema string, keys []store.Key) (*journal, journalState, error) {
	state := journalState{done: map[store.Key]bool{}, failed: map[store.Key]string{}}
	entries, err := readJournal(path)
	if err != nil {
		return nil, state, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, state, fmt.Errorf("fleet: journal: %w", err)
	}
	j := &journal{f: f}
	if len(entries) == 0 {
		hex := make([]string, len(keys))
		for i, k := range keys {
			hex[i] = k.String()
		}
		if err := j.append(journalEntry{Type: entryRun, Name: name, Schema: schema, Keys: hex}); err != nil {
			f.Close()
			return nil, state, err
		}
		return j, state, nil
	}
	head := entries[0]
	if head.Type != entryRun {
		f.Close()
		return nil, state, fmt.Errorf("fleet: journal %s does not start with a run header", path)
	}
	if err := matchHeader(head, name, schema, keys); err != nil {
		f.Close()
		return nil, state, fmt.Errorf("fleet: journal %s belongs to a different run (%v); delete it or pass a different -journal", path, err)
	}
	for _, e := range entries[1:] {
		k, err := store.ParseKey(e.Key)
		if err != nil {
			continue // resume markers and historical headers carry no key
		}
		switch e.Type {
		case entryDone:
			state.done[k] = true
			delete(state.failed, k)
		case entryFailed:
			state.failed[k] = e.Error
			delete(state.done, k)
		}
	}
	if err := j.append(journalEntry{Type: entryResume, Name: name}); err != nil {
		f.Close()
		return nil, state, err
	}
	return j, state, nil
}

func matchHeader(head journalEntry, name, schema string, keys []store.Key) error {
	if head.Name != name {
		return fmt.Errorf("run name %q != %q", head.Name, name)
	}
	if head.Schema != schema {
		return fmt.Errorf("schema %q != %q", head.Schema, schema)
	}
	if len(head.Keys) != len(keys) {
		return fmt.Errorf("%d specs != %d", len(head.Keys), len(keys))
	}
	for i, k := range keys {
		if head.Keys[i] != k.String() {
			return fmt.Errorf("spec %d key mismatch", i)
		}
	}
	return nil
}

// readJournal parses the journal at path. A missing file is an empty
// journal; a torn final line (crash mid-append) is dropped; any other
// malformed line is an error.
func readJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: journal: %w", err)
	}
	defer f.Close()
	var (
		entries []journalEntry
		lines   int
		torn    = -1
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // headers carry every spec key
	for sc.Scan() {
		lines++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if torn >= 0 {
				return nil, fmt.Errorf("fleet: journal %s: malformed line %d: %w", path, torn, err)
			}
			torn = lines
			continue
		}
		if torn >= 0 {
			// A parseable line after a malformed one: the damage is not a
			// torn tail.
			return nil, fmt.Errorf("fleet: journal %s: malformed line %d mid-file", path, torn)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: journal %s: %w", path, err)
	}
	return entries, nil
}

// append marshals one entry, writes it, and fsyncs: each line corresponds
// to at least one completed network round-trip, so per-line durability is
// cheap relative to what it records.
func (j *journal) append(e journalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fleet: journal: %w", err)
	}
	return nil
}

func (j *journal) dispatched(k store.Key, worker string) error {
	return j.append(journalEntry{Type: entryDispatched, Key: k.String(), Worker: worker})
}

func (j *journal) done(k store.Key, worker string) error {
	return j.append(journalEntry{Type: entryDone, Key: k.String(), Worker: worker})
}

func (j *journal) failed(k store.Key, msg string) error {
	return j.append(journalEntry{Type: entryFailed, Key: k.String(), Error: msg})
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
