package fleet

import (
	"encoding/json"
	"fmt"

	"dsarp/internal/journal"
	"dsarp/internal/store"
)

// The run journal is an append-only JSONL file (see internal/journal for
// the durability mechanics: fsync per line, torn final lines tolerated,
// mid-file corruption refused) recording one run's state transitions: a
// header pinning the run's identity (name plus every spec key, in order),
// then one line per event — dispatched@worker, done(key), failed(key,
// error), and a resume marker each time an orchestrator reopens the file.
// Replaying it after a crash tells a fresh orchestrator which specs are
// already durable somewhere (done), which permanently failed, and which
// were merely in flight (safe to re-dispatch: results are
// content-addressed, so dispatching a spec twice is idempotent).
type journalEntry struct {
	Type string `json:"type"` // "run" | "resume" | "dispatched" | "done" | "failed"
	// Header fields.
	Name   string   `json:"name,omitempty"`
	Schema string   `json:"schema,omitempty"`
	Keys   []string `json:"keys,omitempty"`
	// Event fields.
	Key    string `json:"key,omitempty"`
	Worker string `json:"worker,omitempty"`
	Error  string `json:"error,omitempty"`
}

const (
	entryRun        = "run"
	entryResume     = "resume"
	entryDispatched = "dispatched"
	entryDone       = "done"
	entryFailed     = "failed"
)

// journalState is the replayed view of a prior run: the terminal state
// each spec key last reached. Dispatched-but-not-done specs appear in
// neither map — they are pending again.
type journalState struct {
	done   map[store.Key]bool
	failed map[store.Key]string
}

type runJournal struct {
	f *journal.File
}

// openJournal opens (or creates) the journal at path for the run
// identified by name, schema, and keys. A fresh or effectively-empty file
// gets a run header; an existing journal must carry a matching header —
// resuming a journal written for a different spec set would silently mix
// two runs' results, so it is refused. The replayed state of a resumed
// journal is returned alongside.
func openJournal(path, name, schema string, keys []store.Key) (*runJournal, journalState, error) {
	state := journalState{done: map[store.Key]bool{}, failed: map[store.Key]string{}}
	entries, err := readJournal(path)
	if err != nil {
		return nil, state, err
	}
	f, err := journal.OpenAppend(path)
	if err != nil {
		return nil, state, fmt.Errorf("fleet: %w", err)
	}
	j := &runJournal{f: f}
	if len(entries) == 0 {
		hex := make([]string, len(keys))
		for i, k := range keys {
			hex[i] = k.String()
		}
		if err := j.append(journalEntry{Type: entryRun, Name: name, Schema: schema, Keys: hex}); err != nil {
			f.Close()
			return nil, state, err
		}
		return j, state, nil
	}
	head := entries[0]
	if head.Type != entryRun {
		f.Close()
		return nil, state, fmt.Errorf("fleet: journal %s does not start with a run header", path)
	}
	if err := matchHeader(head, name, schema, keys); err != nil {
		f.Close()
		return nil, state, fmt.Errorf("fleet: journal %s belongs to a different run (%v); delete it or pass a different -journal", path, err)
	}
	for _, e := range entries[1:] {
		k, err := store.ParseKey(e.Key)
		if err != nil {
			continue // resume markers and historical headers carry no key
		}
		switch e.Type {
		case entryDone:
			state.done[k] = true
			delete(state.failed, k)
		case entryFailed:
			state.failed[k] = e.Error
			delete(state.done, k)
		}
	}
	if err := j.append(journalEntry{Type: entryResume, Name: name}); err != nil {
		f.Close()
		return nil, state, err
	}
	return j, state, nil
}

func matchHeader(head journalEntry, name, schema string, keys []store.Key) error {
	if head.Name != name {
		return fmt.Errorf("run name %q != %q", head.Name, name)
	}
	if head.Schema != schema {
		return fmt.Errorf("schema %q != %q", head.Schema, schema)
	}
	if len(head.Keys) != len(keys) {
		return fmt.Errorf("%d specs != %d", len(head.Keys), len(keys))
	}
	for i, k := range keys {
		if head.Keys[i] != k.String() {
			return fmt.Errorf("spec %d key mismatch", i)
		}
	}
	return nil
}

// readJournal parses the journal at path into fleet entries. The shared
// reader handles the file mechanics (missing file, torn tail, mid-file
// corruption); a line that is valid JSON but not a fleet entry shape
// still unmarshals (unknown fields are ignored) and is skipped by replay.
func readJournal(path string) ([]journalEntry, error) {
	lines, err := journal.Read(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	entries := make([]journalEntry, 0, len(lines))
	for i, raw := range lines {
		var e journalEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("fleet: journal %s: line %d: %w", path, i+1, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func (j *runJournal) append(e journalEntry) error {
	if err := j.f.Append(e); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return nil
}

func (j *runJournal) dispatched(k store.Key, worker string) error {
	return j.append(journalEntry{Type: entryDispatched, Key: k.String(), Worker: worker})
}

func (j *runJournal) done(k store.Key, worker string) error {
	return j.append(journalEntry{Type: entryDone, Key: k.String(), Worker: worker})
}

func (j *runJournal) failed(k store.Key, msg string) error {
	return j.append(journalEntry{Type: entryFailed, Key: k.String(), Error: msg})
}

func (j *runJournal) Close() error { return j.f.Close() }
