package fleet

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/serve"
)

// TestChaosWorkerKilledMidRun is the acceptance scenario: a three-worker
// registry experiment where one worker is killed mid-run by the chaos
// harness (the in-process stand-in for -chaos kill=N on dsarpd) and
// restarted shortly after. The run must complete with zero lost specs
// and a table byte-identical to a single-node golden.
func TestChaosWorkerKilledMidRun(t *testing.T) {
	opts := tinyOpts()
	// A fast machine can drain the whole 24-spec run before the victim's
	// request counter reaches KillAfter (the kill then never fires and the
	// test exercises nothing). Longer simulations keep the run alive well
	// past the kill threshold — the 100ms health probes alone reach it —
	// and past the 300ms supervisor restart, so the death is genuinely
	// mid-run on any hardware.
	opts.Measure = 300_000
	golden, err := exp.NewRunner(opts).RunExperiment("fig7")
	if err != nil {
		t.Fatal(err)
	}

	w1 := startWorker(t, opts)
	w2 := startWorker(t, opts)
	victim := startWorker(t, opts)
	var killFired atomic.Bool
	// After a handful of /v1 requests (probes count too — that is the
	// point: death strikes wherever it strikes) the victim dies abruptly
	// and a supervisor stand-in restarts it 300ms later, chaos disarmed.
	chaos := &serve.Chaos{
		KillAfter: 3,
		Kill: func() {
			killFired.Store(true)
			go func() {
				victim.kill()
				time.Sleep(300 * time.Millisecond)
				victim.start(nil)
			}()
		},
	}
	victim.kill()
	victim.start(chaos)

	cfg := testConfig(w1.url(), w2.url(), victim.url())
	cfg.Journal = filepath.Join(t.TempDir(), "run.journal")
	o := mustOrch(t, cfg)
	r := exp.NewRunner(opts) // enumeration scale only; runs no sims

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := o.RunExperiment(ctx, r, "fig7")
	if err != nil {
		t.Fatalf("RunExperiment under chaos: %v", err)
	}
	if !killFired.Load() {
		t.Fatal("chaos kill never fired; the test exercised nothing")
	}
	if got.String() != golden.String() {
		t.Errorf("table diverged from single-node golden under worker death:\ngot:\n%s\nwant:\n%s", got, golden)
	}
	if st := o.Stats(); st.Failed != 0 {
		t.Errorf("lost %d specs to permanent failure; want 0", st.Failed)
	}
}

// TestChaosFaultInjection floods all three workers with probabilistic
// faults — 500s, dropped connections, stalled responses — and demands
// the orchestrator still produce the exact single-node table. No spec
// may be lost to a transient fault.
func TestChaosFaultInjection(t *testing.T) {
	opts := tinyOpts()
	golden, err := exp.NewRunner(opts).RunExperiment("fig7")
	if err != nil {
		t.Fatal(err)
	}

	var workers []*testWorker
	for i := 0; i < 3; i++ {
		tw := startWorker(t, opts)
		tw.kill()
		tw.start(&serve.Chaos{
			FailProb:  0.15,
			DropProb:  0.10,
			StallProb: 0.10,
			Stall:     50 * time.Millisecond,
			Seed:      int64(1 + i),
		})
		workers = append(workers, tw)
	}

	cfg := testConfig(workers[0].url(), workers[1].url(), workers[2].url())
	cfg.RequestTimeout = 30 * time.Second
	o := mustOrch(t, cfg)
	r := exp.NewRunner(opts)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := o.RunExperiment(ctx, r, "fig7")
	if err != nil {
		t.Fatalf("RunExperiment under fault injection: %v", err)
	}
	if got.String() != golden.String() {
		t.Errorf("table diverged from single-node golden under fault injection:\ngot:\n%s\nwant:\n%s", got, golden)
	}
	if st := o.Stats(); st.Failed != 0 {
		t.Errorf("lost %d specs to permanent failure; want 0", st.Failed)
	}
}
