package fleet

import (
	"context"
	"net/http"
	"testing"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/ring"
	"dsarp/internal/serve"
	"dsarp/internal/store"
)

// waitReplicated blocks until every key is present on all of its ring
// owners — i.e. the cold run's asynchronous push fan-out has finished —
// probing through the same GET /v1/results/{key} endpoint peers use.
func waitReplicated(t *testing.T, urls []string, keys map[store.Key]bool, replicas int) {
	t.Helper()
	rg := ring.New(urls)
	deadline := time.Now().Add(60 * time.Second)
	for k := range keys {
		for _, owner := range rg.Owners(k, replicas) {
			for {
				resp, err := http.Get(owner + "/v1/results/" + k.String())
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
				}
				if time.Now().After(deadline) {
					t.Fatalf("key %s never replicated to owner %s", k, owner)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}
}

// TestShardFailoverSurvivesWorkerLoss pins the headline guarantee of the
// replicated warm-store tier: with R=2 on three workers, permanently
// killing any single worker after a cold run loses zero warm state — a
// warm rerun on the two survivors computes ZERO simulations and
// assembles a byte-identical table. The survivors cover every key either
// locally (ring-affine dispatch placed it there) or by hedge-fetching
// from the other survivor through the worker ring.
func TestShardFailoverSurvivesWorkerLoss(t *testing.T) {
	opts := tinyOpts()
	golden, err := exp.NewRunner(opts).RunExperiment("fig7")
	if err != nil {
		t.Fatal(err)
	}

	workers := startPeerWorkers(t, opts, 3, 2, nil)
	urls := []string{workers[0].url(), workers[1].url(), workers[2].url()}

	// Cold run across all three workers.
	o := mustOrch(t, testConfig(urls...))
	r := exp.NewRunner(opts) // enumeration/assembly only; runs nothing
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	table, err := o.RunExperiment(ctx, r, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	if table.String() != golden.String() {
		t.Fatalf("cold fleet table diverged from single-node golden")
	}
	if o.Stats().Computed == 0 {
		t.Fatal("cold run reported zero computed specs; the source decode is broken")
	}

	// Replication is asynchronous: wait until every key sits on both of
	// its owners before pulling a worker out from under the fleet.
	e, _ := exp.LookupExperiment("fig7")
	keys := uniqueKeys(e.Specs(r))
	waitReplicated(t, urls, keys, 2)

	// Kill one worker permanently — no restart, its store is gone for
	// good as far as the fleet can tell.
	const victim = 1
	workers[victim].kill()
	survivors := []*testWorker{workers[0], workers[2]}
	survivorURLs := []string{urls[0], urls[2]}

	simsBefore := survivors[0].simsRun() + survivors[1].simsRun()
	o2 := mustOrch(t, testConfig(survivorURLs...))
	table2, err := o2.RunExperiment(ctx, exp.NewRunner(opts), "fig7")
	if err != nil {
		t.Fatalf("warm rerun on survivors: %v", err)
	}
	if table2.String() != golden.String() {
		t.Errorf("survivor table diverged from golden:\ngot:\n%s\nwant:\n%s", table2, golden)
	}
	if c := o2.Stats().Computed; c != 0 {
		t.Errorf("warm rerun computed %d specs; R=2 over 3 workers must survive one loss with 0", c)
	}
	// Belt and braces: the workers' own counters agree no simulation ran.
	simsAfter := waitSimsQuiesce(t, survivors[0]) + waitSimsQuiesce(t, survivors[1])
	if d := simsAfter - simsBefore; d != 0 {
		t.Errorf("survivors executed %d simulations during the warm rerun, want 0", d)
	}
	if _, ok := o2.ReplicationSummary(context.Background()); !ok {
		t.Error("survivors expose no replication stats; /v1/stats section missing")
	}
}

// TestChaosPeerReplication drives the peer protocol through the same
// chaos middleware as client traffic: every /v1/results fetch and push
// is subject to spurious 500s, severed connections, and stalls on all
// three ring members, while the fleet runs an experiment. Transient peer
// faults must cost only retries and fetch-misses — zero lost specs, and
// a byte-identical table.
func TestChaosPeerReplication(t *testing.T) {
	opts := tinyOpts()
	golden, err := exp.NewRunner(opts).RunExperiment("fig7")
	if err != nil {
		t.Fatal(err)
	}

	workers := startPeerWorkers(t, opts, 3, 2, func(i int) *serve.Chaos {
		return &serve.Chaos{
			FailProb:  0.15,
			DropProb:  0.10,
			StallProb: 0.10,
			Stall:     50 * time.Millisecond,
			Seed:      int64(1 + i),
		}
	})

	cfg := testConfig(workers[0].url(), workers[1].url(), workers[2].url())
	cfg.RequestTimeout = 30 * time.Second
	o := mustOrch(t, cfg)
	r := exp.NewRunner(opts)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := o.RunExperiment(ctx, r, "fig7")
	if err != nil {
		t.Fatalf("RunExperiment under peer-path chaos: %v", err)
	}
	if got.String() != golden.String() {
		t.Errorf("table diverged from single-node golden under peer-path chaos:\ngot:\n%s\nwant:\n%s", got, golden)
	}
	if st := o.Stats(); st.Failed != 0 {
		t.Errorf("lost %d specs to permanent failure; want 0", st.Failed)
	}
}
