package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"dsarp/internal/store"
)

// stubWorker serves just enough of the dsarpd surface for health probes:
// /healthz and a /v1/stats body with a controllable degraded flag.
func stubWorker(t *testing.T, degraded bool, queueFree int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if degraded {
			fmt.Fprintln(w, "degraded: store: injected")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"queue_free":%d,"queue_cap":64,"draining":false,"degraded":%v}`,
			queueFree, degraded)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestDegradedWorkerDeprioritized: a degraded worker stays alive but
// loses dispatch priority — pickWorker prefers any healthy worker even
// one carrying more load, and falls back to the degraded worker only
// when no healthy one remains.
func TestDegradedWorkerDeprioritized(t *testing.T) {
	// Degraded worker reports an empty queue (least loaded); healthy one
	// reports a backlog of 60. Load alone would pick the degraded worker.
	deg := stubWorker(t, true, 64)
	healthy := stubWorker(t, false, 4)
	o := mustOrch(t, testConfig(deg.URL, healthy.URL))

	ctx := context.Background()
	o.probeAll(ctx)

	wDeg, wHealthy := o.workers[0], o.workers[1]
	if !wDeg.isAlive() {
		t.Fatal("degraded worker probed as dead; degraded must remain alive")
	}
	if !wDeg.isDegraded() {
		t.Fatal("probe did not parse degraded=true from /v1/stats")
	}
	if wHealthy.isDegraded() {
		t.Fatal("healthy worker misparsed as degraded")
	}

	// Degraded beats healthy on load and may even own the key: health
	// still wins — ring affinity only ever reorders healthy workers.
	key := store.KeyOf([]byte("degraded-test"))
	for i := 0; i < 5; i++ {
		w, err := o.pickWorker(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if w != wHealthy {
			t.Fatalf("pickWorker chose the degraded worker over a healthy one (loads: deg=%d healthy=%d)",
				wDeg.load(), wHealthy.load())
		}
	}

	// Healthy worker dies: the degraded worker is better than nothing.
	wHealthy.mu.Lock()
	wHealthy.alive = false
	wHealthy.mu.Unlock()
	w, err := o.pickWorker(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if w != wDeg {
		t.Fatal("with no healthy worker, pickWorker must fall back to the degraded one")
	}

	// Recovery: the worker stops reporting degraded (e.g. after a restart
	// on a fixed disk) and regains full priority.
	rec := stubWorker(t, false, 64)
	wDeg.mu.Lock()
	wDeg.url = rec.URL
	wDeg.mu.Unlock()
	o.probeAll(ctx)
	if wDeg.isDegraded() {
		t.Fatal("probe did not clear degraded after the worker recovered")
	}
}
