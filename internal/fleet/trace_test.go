package fleet

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/serve"
	"dsarp/internal/telemetry"
)

// TestTraceOfRecordUnderChaos is the observability acceptance scenario: a
// three-worker fig7 run under fault injection, flight-recorded. The trace
// must reconstruct every spec's full attempt chain — each chain ends in
// exactly one terminal span whose source is a real serving tier, every
// retry is attributed to a cause — while the assembled table stays
// byte-identical to the single-node golden.
func TestTraceOfRecordUnderChaos(t *testing.T) {
	opts := tinyOpts()
	golden, err := exp.NewRunner(opts).RunExperiment("fig7")
	if err != nil {
		t.Fatal(err)
	}

	workers := startPeerWorkers(t, opts, 3, 2, func(i int) *serve.Chaos {
		return &serve.Chaos{FailProb: 0.15, DropProb: 0.10, Seed: int64(1 + i)}
	})

	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	rec, err := telemetry.NewRecorder(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(workers[0].url(), workers[1].url(), workers[2].url())
	cfg.RequestTimeout = 30 * time.Second
	cfg.Trace = rec
	o := mustOrch(t, cfg)
	r := exp.NewRunner(opts)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := o.RunExperiment(ctx, r, "fig7")
	if err != nil {
		t.Fatalf("RunExperiment under fault injection: %v", err)
	}
	if got.String() != golden.String() {
		t.Errorf("table diverged from single-node golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	spans, err := telemetry.ReadTrace(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	report, err := telemetry.BuildReport(spans)
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}
	fig7, ok := exp.LookupExperiment("fig7")
	if !ok {
		t.Fatal("fig7 not in experiment registry")
	}
	specs := fig7.Specs(r)
	if report.Name != "fig7" || report.Total != len(specs) {
		t.Errorf("run header = %q/%d, want fig7/%d", report.Name, report.Total, len(specs))
	}
	if len(report.Chains) != len(specs) {
		t.Fatalf("trace holds %d spec chains, want %d", len(report.Chains), len(specs))
	}
	seen := map[string]bool{}
	validSource := map[string]bool{"computed": true, "store": true, "memory": true, "peer": true}
	for _, c := range report.Chains {
		if seen[c.Spec] {
			t.Errorf("spec %s appears in two chains", c.Spec)
		}
		seen[c.Spec] = true
		if c.Terminal == nil {
			t.Errorf("spec %s (%s) has no terminal span", c.Spec, c.Label)
			continue
		}
		if c.Terminal.Status == "failed" || !validSource[c.Terminal.Source] {
			t.Errorf("spec %s terminal = status %q source %q, want ok with a serving tier",
				c.Spec, c.Terminal.Status, c.Terminal.Source)
		}
		if len(c.Attempts) == 0 {
			t.Errorf("spec %s has a terminal but no attempts", c.Spec)
		}
		last := c.Attempts[len(c.Attempts)-1]
		if last.Status != "ok" {
			t.Errorf("spec %s final attempt status = %q, want ok", c.Spec, last.Status)
		}
		for i, a := range c.Attempts {
			if a.Attempt != i+1 {
				t.Errorf("spec %s attempt %d numbered %d", c.Spec, i+1, a.Attempt)
			}
			if i < len(c.Attempts)-1 && a.Status == "ok" {
				t.Errorf("spec %s attempt %d is ok but was retried", c.Spec, i+1)
			}
		}
	}
	for _, s := range specs {
		if !seen[s.Key().String()] {
			t.Errorf("spec %s %s missing from trace", s.Name, s.Mechanism)
		}
	}
	// Every recorded retry must carry a recognized cause, and the trace's
	// per-cause tally must agree with the orchestrator's own counters.
	causes := report.RetryCauses()
	validCause := map[string]bool{
		"conn": true, "timeout": true, "429": true, "503": true,
		"5xx": true, "http": true, "malformed": true,
	}
	var traced int64
	for cause, n := range causes {
		if !validCause[cause] {
			t.Errorf("retry cause %q is not a recognized classification", cause)
		}
		traced += int64(n)
	}
	st := o.Stats()
	if traced != st.Retries {
		t.Errorf("trace records %d retries, orchestrator counted %d", traced, st.Retries)
	}
	for cause, n := range st.RetryCauses {
		if int64(causes[cause]) != n {
			t.Errorf("cause %q: trace=%d stats=%d", cause, causes[cause], n)
		}
	}
	if st.Failed != 0 {
		t.Errorf("lost %d specs to permanent failure; want 0", st.Failed)
	}
}
