// Package fleet orchestrates an experiment run end-to-end against N
// dsarpd workers, with no shared-filesystem assumption at the dispatch
// layer: every spec travels as JSON over POST /v1/sim and every result
// comes back in the response body.
//
// The orchestrator owns the run's fault story:
//
//   - workers are health-checked (GET /healthz for liveness, GET /v1/stats
//     for queue depth) and each spec is dispatched to the least-loaded
//     live worker;
//   - 429 (honoring Retry-After), 5xx, timeouts, dropped connections, and
//     worker death are transient: the spec is re-dispatched — to a
//     survivor when its worker died — under capped exponential backoff
//     with jitter;
//   - 400 and 413 are permanent: they fail the spec, not the run, and are
//     reported together when the run finishes;
//   - job state (pending → dispatched@worker → done | failed) is
//     journaled to an append-only file, so an orchestrator restart
//     resumes from the journal plus warm-store probes instead of
//     recomputing.
//
// Because every result is a pure content-addressed function of its spec,
// re-dispatching is always safe: a worker that already holds the result
// serves it from its store, and the assembled table is byte-identical to
// a single-node run however many retries, deaths, and restarts happened
// in between.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/ring"
	"dsarp/internal/sim"
	"dsarp/internal/store"
	"dsarp/internal/telemetry"
)

// Config assembles an Orchestrator.
type Config struct {
	// Workers are the dsarpd base URLs ("http://host:port"). At least one
	// is required; any single one may die and restart mid-run.
	Workers []string
	// Client performs all HTTP requests (default: http.DefaultTransport
	// behind a fresh client; per-request timeouts come from
	// RequestTimeout/ProbeTimeout).
	Client *http.Client
	// RequestTimeout bounds one dispatch attempt, simulation included
	// (default 10m). A worker stalled past it is treated as dead and the
	// spec re-dispatched — safe, because results are content-addressed.
	RequestTimeout time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// HealthInterval is the probe period (default 1s).
	HealthInterval time.Duration
	// BaseBackoff/MaxBackoff shape the capped exponential backoff applied
	// to transient failures (defaults 250ms / 5s), jittered by ±50%. A
	// server-sent Retry-After overrides the computed delay when larger.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts caps transient retries per spec; 0 means retry until
	// the context is cancelled (worker death is expected to be temporary;
	// the context carries the run-level deadline).
	MaxAttempts int
	// Concurrency bounds specs in flight across the fleet (default
	// 4 × len(Workers)).
	Concurrency int
	// Replicas is the warm-store replication factor the workers were
	// started with (default 2). Dispatch is ring-affine: each spec
	// prefers its key's owners under rendezvous hashing over Workers, so
	// warm state accumulates exactly where a future read-through will
	// look. Purely a placement preference — correctness never depends on
	// it, and any live worker still serves any spec.
	Replicas int
	// Journal, if non-empty, is the append-only run journal. An existing
	// journal for the same run resumes it; one for a different run is
	// refused.
	Journal string
	// Store, if non-nil, is an orchestrator-local result store: fetched
	// results are persisted to it, and specs already present are not
	// dispatched at all (the warm-resume fast path).
	Store *store.Store
	// Seed makes backoff jitter reproducible (tests).
	Seed int64
	// Log, if non-nil, receives progress and fault-path narration as
	// structured records; every line carries run/trace plus the relevant
	// spec-key and worker attrs.
	Log *slog.Logger
	// Trace, if non-nil, is the run's flight recorder: the orchestrator
	// mints a trace ID, stamps every dispatch with it (the X-Dsarp-Trace
	// header carries it to the workers), and appends one span per state
	// transition — the file -trace-report replays.
	Trace *telemetry.Recorder
	// Progress, if positive, is the heartbeat period: a progress line
	// (done/total, computed vs warm split, retries, failures, ETA) is
	// logged at that interval instead of silence until the final summary.
	Progress time.Duration
}

// Stats are the orchestrator's run counters.
type Stats struct {
	LocalHits  int64 // specs satisfied by the local store, never dispatched
	Dispatched int64 // specs satisfied by a worker round-trip
	Computed   int64 // dispatched specs the worker actually simulated (source "computed")
	Affine     int64 // dispatches that landed on one of the spec's ring owners
	Retries    int64 // transient failures that led to a re-dispatch
	Failed     int64 // specs that failed permanently
	// Transitions counts worker health flips (up->down and down->up)
	// observed by probes and dispatch-time death discoveries.
	Transitions int64
	// RetryCauses splits Retries by classified cause: conn, timeout,
	// 429, 503, 5xx, malformed, http.
	RetryCauses map[string]int64
}

// worker is the orchestrator's view of one dsarpd.
type worker struct {
	url string

	mu       sync.Mutex
	alive    bool
	probed   bool // at least one probe completed (avoid "down" logs at startup)
	degraded bool // worker self-reports degraded (read-only store / journal loss)
	backlog  int  // worker-reported queued+running tasks (best effort)
	inflight int  // this orchestrator's outstanding dispatches
}

// load orders workers for dispatch: our own in-flight requests plus the
// backlog the worker last reported (which covers other clients too).
func (w *worker) load() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inflight + w.backlog
}

func (w *worker) isAlive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive
}

func (w *worker) isDegraded() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.degraded
}

// Orchestrator dispatches specs across a fleet of dsarpd workers. Safe
// for one Run at a time.
type Orchestrator struct {
	cfg     Config
	client  *http.Client
	workers []*worker
	byURL   map[string]*worker
	ring    *ring.Ring // placement over the normalized worker URLs
	log     *slog.Logger
	trace   *telemetry.Recorder
	traceID string // minted per Run, sent as X-Dsarp-Trace on every dispatch

	rngMu sync.Mutex
	rng   *rand.Rand

	localHits   atomic.Int64
	dispatched  atomic.Int64
	computed    atomic.Int64
	affine      atomic.Int64
	retries     atomic.Int64
	failedN     atomic.Int64
	transitions atomic.Int64

	causeMu     sync.Mutex
	retryCauses map[string]int64

	ewmaMu       sync.Mutex
	dispatchEWMA float64 // EWMA of one successful dispatch round-trip, seconds
}

// New validates the config and builds an Orchestrator.
func New(cfg Config) (*Orchestrator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Minute
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 250 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4 * len(cfg.Workers)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	o := &Orchestrator{
		cfg:         cfg,
		client:      cfg.Client,
		log:         cfg.Log,
		trace:       cfg.Trace,
		retryCauses: map[string]int64{},
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	if o.client == nil {
		o.client = &http.Client{}
	}
	if o.log == nil {
		o.log = telemetry.DiscardLogger()
	}
	o.byURL = make(map[string]*worker, len(cfg.Workers))
	for _, u := range cfg.Workers {
		w := &worker{url: strings.TrimRight(u, "/")}
		o.workers = append(o.workers, w)
		o.byURL[w.url] = w
	}
	urls := make([]string, 0, len(o.byURL))
	for u := range o.byURL {
		urls = append(urls, u)
	}
	// Normalized URLs double as ring member IDs, the same convention
	// dsarpd -self/-peers uses, so orchestrator affinity and worker
	// replication agree on placement without a separate naming scheme.
	o.ring = ring.New(urls)
	return o, nil
}

// Stats returns the orchestrator's counters.
func (o *Orchestrator) Stats() Stats {
	o.causeMu.Lock()
	causes := make(map[string]int64, len(o.retryCauses))
	for k, v := range o.retryCauses {
		causes[k] = v
	}
	o.causeMu.Unlock()
	return Stats{
		LocalHits:   o.localHits.Load(),
		Dispatched:  o.dispatched.Load(),
		Computed:    o.computed.Load(),
		Affine:      o.affine.Load(),
		Retries:     o.retries.Load(),
		Failed:      o.failedN.Load(),
		Transitions: o.transitions.Load(),
		RetryCauses: causes,
	}
}

// noteRetry books one transient failure under its classified cause.
func (o *Orchestrator) noteRetry(cause string) {
	o.retries.Add(1)
	o.causeMu.Lock()
	o.retryCauses[cause]++
	o.causeMu.Unlock()
}

// noteDispatchSecs feeds one successful dispatch round-trip into the
// EWMA behind the progress heartbeat's ETA.
func (o *Orchestrator) noteDispatchSecs(secs float64) {
	o.ewmaMu.Lock()
	if o.dispatchEWMA == 0 {
		o.dispatchEWMA = secs
	} else {
		o.dispatchEWMA = 0.7*o.dispatchEWMA + 0.3*secs
	}
	o.ewmaMu.Unlock()
}

// span stamps the run's trace ID onto s and records it; a no-op without
// a flight recorder.
func (o *Orchestrator) span(s telemetry.Span) {
	if o.trace == nil {
		return
	}
	s.Trace = o.traceID
	o.trace.Record(s)
}

// SpecError is one spec's permanent failure.
type SpecError struct {
	Index int
	Label string
	Key   store.Key
	Err   error
}

func (e SpecError) Error() string {
	return fmt.Sprintf("spec %d (%s): %v", e.Index, e.Label, e.Err)
}

// RunError reports the specs that failed permanently. The run itself
// completed: every other spec's result is in the returned Results.
type RunError struct {
	Failed []SpecError
}

func (e *RunError) Error() string {
	msgs := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		msgs[i] = f.Error()
	}
	return fmt.Sprintf("fleet: %d specs failed permanently: %s", len(e.Failed), strings.Join(msgs, "; "))
}

// Run dispatches every spec and returns the result map Assemble consumes.
// Specs must be canonical (registry enumerations are). On permanent spec
// failures the partial Results are returned together with a *RunError; on
// context cancellation the error wraps ctx.Err() and the journal (if
// configured) holds everything needed to resume.
func (o *Orchestrator) Run(ctx context.Context, name string, specs []exp.SimSpec) (exp.Results, error) {
	o.traceID = telemetry.NewTraceID()
	o.log = o.log.With("run", name, "trace", o.traceID)
	o.span(telemetry.Span{Kind: telemetry.SpanRun, Name: name, Schema: exp.SchemaVersion, Total: len(specs)})
	keys := make([]store.Key, len(specs))
	for i, s := range specs {
		keys[i] = s.Key()
	}

	var (
		j     *runJournal
		state = journalState{done: map[store.Key]bool{}, failed: map[store.Key]string{}}
	)
	if o.cfg.Journal != "" {
		var err error
		j, state, err = openJournal(o.cfg.Journal, name, exp.SchemaVersion, keys)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		if len(state.done)+len(state.failed) > 0 {
			o.log.Info("resuming from journal",
				"done", len(state.done), "failed", len(state.failed),
				"pending", len(specs)-len(state.done)-len(state.failed))
		}
	}

	results := make(exp.Results, len(specs))
	var resMu sync.Mutex

	// Warm-resume pass: a spec whose result is already in the local store
	// is done before the first byte hits the network. Journal entries
	// marking a spec done on some worker do not exempt it from dispatch —
	// without the payload the table cannot be assembled — but its
	// re-dispatch is a warm store hit on that worker, not a recompute.
	var pending []int
	for i := range specs {
		if o.cfg.Store != nil {
			if data, ok := o.cfg.Store.Get(keys[i]); ok {
				if res, err := exp.DecodeResult(data); err == nil {
					resMu.Lock()
					results[keys[i]] = res
					resMu.Unlock()
					o.localHits.Add(1)
					o.span(telemetry.Span{Kind: telemetry.SpanResult, Spec: keys[i].String(),
						Label: specLabel(specs[i]), Source: "local-store"})
					if j != nil && !state.done[keys[i]] {
						j.done(keys[i], "local-store")
					}
					continue
				}
			}
		}
		pending = append(pending, i)
	}
	o.log.Info("run start", "specs", len(specs), "warm", len(specs)-len(pending), "workers", len(o.workers))

	if len(pending) > 0 {
		hctx, hcancel := context.WithCancel(ctx)
		defer hcancel()
		o.probeAll(hctx) // synchronous first probe so dispatch starts informed
		go o.healthLoop(hctx)
		if o.cfg.Progress > 0 {
			go o.heartbeat(hctx, len(specs))
		}

		var (
			wg      sync.WaitGroup
			failMu  sync.Mutex
			failed  []SpecError
			queue   = make(chan int)
			workers = min(o.cfg.Concurrency, len(pending))
		)
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range queue {
					res, raw, err := o.runSpec(ctx, j, specs[idx], keys[idx])
					switch {
					case err == nil:
						resMu.Lock()
						results[keys[idx]] = res
						resMu.Unlock()
						if o.cfg.Store != nil {
							o.cfg.Store.Put(keys[idx], raw)
						}
					case ctx.Err() != nil:
						// Cancelled mid-spec: reported once, below.
					default:
						o.failedN.Add(1)
						failMu.Lock()
						failed = append(failed, SpecError{
							Index: idx, Label: specLabel(specs[idx]), Key: keys[idx], Err: err,
						})
						failMu.Unlock()
					}
				}
			}()
		}
	feed:
		for _, idx := range pending {
			select {
			case queue <- idx:
			case <-ctx.Done():
				break feed
			}
		}
		close(queue)
		wg.Wait()

		if err := ctx.Err(); err != nil {
			resume := ""
			if j != nil {
				resume = fmt.Sprintf(" (journal %s resumes this run)", o.cfg.Journal)
			}
			return results, fmt.Errorf("fleet: run %s interrupted: %w%s", name, err, resume)
		}
		if len(failed) > 0 {
			sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
			return results, &RunError{Failed: failed}
		}
	}
	return results, nil
}

// RunExperiment reproduces one registry experiment on the fleet:
// enumerate with the runner's scale, dispatch every spec, assemble the
// table locally. The runner executes no simulations.
func (o *Orchestrator) RunExperiment(ctx context.Context, r *exp.Runner, name string) (fmt.Stringer, error) {
	e, ok := exp.LookupExperiment(name)
	if !ok {
		return nil, fmt.Errorf("fleet: unknown experiment %q", name)
	}
	res, err := o.Run(ctx, name, e.Specs(r))
	if err != nil {
		return nil, err
	}
	return e.Assemble(r, res)
}

// runSpec drives one spec to a terminal state: retry transient failures
// against the spec's ring owners (falling back through the fleet), give
// up only on permanent errors (or MaxAttempts, or context cancellation).
func (o *Orchestrator) runSpec(ctx context.Context, j *runJournal, spec exp.SimSpec, key store.Key) (sim.Result, []byte, error) {
	label := specLabel(spec)
	for attempt := 0; ; attempt++ {
		w, err := o.pickWorker(ctx, key)
		if err != nil {
			return sim.Result{}, nil, err
		}
		if j != nil {
			j.dispatched(key, w.url)
		}
		start := time.Now()
		res, raw, src, resumedFrom, retryAfter, cause, err := o.post(ctx, w, spec)
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if err == nil {
			o.span(telemetry.Span{Kind: telemetry.SpanAttempt, Spec: key.String(), Label: label,
				Attempt: attempt + 1, Worker: w.url, Status: "ok", Millis: ms})
			o.span(telemetry.Span{Kind: telemetry.SpanResult, Spec: key.String(), Label: label,
				Worker: w.url, Source: src, ResumedFrom: resumedFrom})
			if j != nil {
				j.done(key, w.url)
			}
			o.noteDispatchSecs(time.Since(start).Seconds())
			o.dispatched.Add(1)
			if src == "computed" {
				o.computed.Add(1)
			}
			return res, raw, nil
		}
		o.span(telemetry.Span{Kind: telemetry.SpanAttempt, Spec: key.String(), Label: label,
			Attempt: attempt + 1, Worker: w.url, Status: cause, Millis: ms})
		var perm *permanentError
		if errors.As(err, &perm) {
			o.log.Warn("spec failed permanently", "spec", label, "key", key.String(), "worker", w.url, "err", err)
			o.span(telemetry.Span{Kind: telemetry.SpanResult, Spec: key.String(), Label: label,
				Worker: w.url, Status: "failed", Error: err.Error()})
			if j != nil {
				j.failed(key, err.Error())
			}
			return sim.Result{}, nil, err
		}
		if ctx.Err() != nil {
			return sim.Result{}, nil, ctx.Err()
		}
		o.noteRetry(cause)
		if o.cfg.MaxAttempts > 0 && attempt+1 >= o.cfg.MaxAttempts {
			err = fmt.Errorf("fleet: gave up after %d attempts: %w", o.cfg.MaxAttempts, err)
			o.span(telemetry.Span{Kind: telemetry.SpanResult, Spec: key.String(), Label: label,
				Worker: w.url, Status: "failed", Error: err.Error()})
			if j != nil {
				j.failed(key, err.Error())
			}
			return sim.Result{}, nil, err
		}
		delay := o.backoff(attempt)
		if retryAfter > delay {
			delay = retryAfter
		}
		o.log.Info("retrying", "spec", label, "key", key.String(), "worker", w.url,
			"cause", cause, "err", err, "delay", delay.Round(time.Millisecond))
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return sim.Result{}, nil, ctx.Err()
		}
	}
}

// heartbeat logs a progress line every cfg.Progress until ctx ends:
// done/total, the computed vs warm split, retry and failure counts, and
// an ETA extrapolated from the per-dispatch round-trip EWMA across the
// configured concurrency.
func (o *Orchestrator) heartbeat(ctx context.Context, total int) {
	t := time.NewTicker(o.cfg.Progress)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			warm := o.localHits.Load()
			disp := o.dispatched.Load()
			comp := o.computed.Load()
			failed := o.failedN.Load()
			done := warm + disp + failed
			attrs := []any{
				"done", done, "total", total,
				"computed", comp, "warm", warm + disp - comp,
				"retries", o.retries.Load(), "failed", failed,
			}
			o.ewmaMu.Lock()
			perDispatch := o.dispatchEWMA
			o.ewmaMu.Unlock()
			if remaining := int64(total) - done; remaining > 0 && perDispatch > 0 {
				eta := time.Duration(float64(remaining) * perDispatch / float64(o.cfg.Concurrency) * float64(time.Second))
				attrs = append(attrs, "eta", eta.Round(time.Second))
			}
			o.log.Info("progress", attrs...)
		}
	}
}

// permanentError marks failures that retrying cannot fix (400, 413): the
// spec itself is at fault, not the fleet.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// post performs one dispatch attempt. The error classification is the
// heart of the fault story:
//
//	nil                         success; result decoded
//	*permanentError             400/413 — fail the spec
//	anything else               transient — back off and re-dispatch
//
// A returned retryAfter > 0 is the worker's own wait estimate (429/503).
// On success the worker-reported source ("computed", "store", "memory",
// "peer") comes back too — the fleet's measure of cache effectiveness.
// On failure, cause names the class for the retry tally and the trace:
// conn, timeout, 429, 503, 5xx, http, malformed, or permanent.
func (o *Orchestrator) post(ctx context.Context, w *worker, spec exp.SimSpec) (_ sim.Result, _ []byte, src string, resumedFrom int64, retryAfter time.Duration, cause string, _ error) {
	w.mu.Lock()
	w.inflight++
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.inflight--
		w.mu.Unlock()
	}()

	body, err := json.Marshal(spec)
	if err != nil {
		return sim.Result{}, nil, "", 0, 0, "permanent", &permanentError{fmt.Errorf("marshal spec: %w", err)}
	}
	rctx, cancel := context.WithTimeout(ctx, o.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.url+"/v1/sim", strings.NewReader(string(body)))
	if err != nil {
		return sim.Result{}, nil, "", 0, 0, "permanent", &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	if o.traceID != "" {
		req.Header.Set(telemetry.TraceHeader, o.traceID)
	}
	resp, err := o.client.Do(req)
	if err != nil {
		// Connection refused, reset, timeout: the worker is gone or
		// wedged. Mark it dead now instead of waiting for the next probe.
		o.markDead(w, err)
		cause = "conn"
		if errors.Is(err, context.DeadlineExceeded) {
			cause = "timeout"
		}
		return sim.Result{}, nil, "", 0, 0, cause, fmt.Errorf("worker %s: %w", w.url, err)
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		var sr struct {
			Key         string          `json:"key"`
			Source      string          `json:"source"`
			ResumedFrom int64           `json:"resumed_from"`
			Result      json.RawMessage `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return sim.Result{}, nil, "", 0, 0, "malformed", fmt.Errorf("worker %s: malformed response: %w", w.url, err)
		}
		res, err := exp.DecodeResult(sr.Result)
		if err != nil {
			return sim.Result{}, nil, "", 0, 0, "malformed", fmt.Errorf("worker %s: undecodable result: %w", w.url, err)
		}
		return res, sr.Result, sr.Source, sr.ResumedFrom, 0, "", nil
	case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		return sim.Result{}, nil, "", 0, 0, "permanent", &permanentError{fmt.Errorf("worker %s: %s: %s", w.url, resp.Status, errorBody(resp))}
	case http.StatusTooManyRequests:
		// Backpressure: the worker is alive, just full. Honor its wait
		// estimate and count its load so the next pick prefers a sibling.
		return sim.Result{}, nil, "", 0, retryAfterOf(resp), "429", fmt.Errorf("worker %s: %s", w.url, resp.Status)
	case http.StatusServiceUnavailable:
		// Draining: it will be gone shortly. Prefer survivors.
		o.markDead(w, errors.New(resp.Status))
		return sim.Result{}, nil, "", 0, retryAfterOf(resp), "503", fmt.Errorf("worker %s: %s", w.url, resp.Status)
	default:
		cause = "http"
		if resp.StatusCode >= 500 {
			cause = "5xx"
		}
		return sim.Result{}, nil, "", 0, 0, cause, fmt.Errorf("worker %s: %s: %s", w.url, resp.Status, errorBody(resp))
	}
}

// retryAfterOf parses a Retry-After header, capped so a confused server
// cannot stall the run.
func retryAfterOf(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return min(time.Duration(secs)*time.Second, 30*time.Second)
}

func errorBody(resp *http.Response) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return e.Error
	}
	return "(no error body)"
}

// backoff returns the capped exponential delay for the given attempt,
// jittered to ±50% so a fleet-wide failure does not resynchronize every
// pending spec into one thundering retry.
func (o *Orchestrator) backoff(attempt int) time.Duration {
	d := o.cfg.BaseBackoff << min(attempt, 16)
	if d > o.cfg.MaxBackoff || d <= 0 {
		d = o.cfg.MaxBackoff
	}
	o.rngMu.Lock()
	f := 0.5 + o.rng.Float64()
	o.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// pickWorker returns the best live worker for the key, waiting (and
// re-probing) while the whole fleet is down. The order is ring-affine:
//
//  1. the key's owners (rendezvous order) that are alive and healthy —
//     dispatching there lands the result exactly where the workers'
//     own replication ring and any future read-through will look;
//  2. the least-loaded live healthy non-owner (warm state still reaches
//     the owners via the worker's async push);
//  3. degraded owners, then the least-loaded degraded worker — they
//     compute correctly but can't persist, so every result they serve
//     is a future cache miss; last resort only.
func (o *Orchestrator) pickWorker(ctx context.Context, key store.Key) (*worker, error) {
	warned := false
	for {
		if w := o.pickOnce(key); w != nil {
			if o.ring.IsOwner(key, o.cfg.Replicas, w.url) {
				o.affine.Add(1)
			}
			return w, nil
		}
		if !warned {
			o.log.Warn("all workers down; waiting for one to come back", "workers", len(o.workers))
			warned = true
		}
		select {
		case <-time.After(o.cfg.HealthInterval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		o.probeAll(ctx)
	}
}

// pickOnce applies the affinity order against the current health view;
// nil means the whole fleet is down right now.
func (o *Orchestrator) pickOnce(key store.Key) *worker {
	owners := o.ring.Owners(key, o.cfg.Replicas)
	for _, u := range owners {
		if w := o.byURL[u]; w.isAlive() && !w.isDegraded() {
			return w
		}
	}
	var best, bestDegraded *worker
	for _, w := range o.workers {
		if !w.isAlive() {
			continue
		}
		if w.isDegraded() {
			if bestDegraded == nil || w.load() < bestDegraded.load() {
				bestDegraded = w
			}
			continue
		}
		if best == nil || w.load() < best.load() {
			best = w
		}
	}
	if best != nil {
		return best
	}
	for _, u := range owners {
		if w := o.byURL[u]; w.isAlive() {
			return w
		}
	}
	return bestDegraded
}

// healthLoop re-probes every worker at HealthInterval until ctx ends.
func (o *Orchestrator) healthLoop(ctx context.Context) {
	t := time.NewTicker(o.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			o.probeAll(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// probeAll health-checks every worker concurrently.
func (o *Orchestrator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range o.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			o.probe(ctx, w)
		}(w)
	}
	wg.Wait()
}

// probe checks one worker: /healthz decides liveness, /v1/stats (best
// effort) refreshes the backlog estimate behind least-loaded dispatch.
func (o *Orchestrator) probe(ctx context.Context, w *worker) {
	pctx, cancel := context.WithTimeout(ctx, o.cfg.ProbeTimeout)
	defer cancel()
	ok := o.getOK(pctx, w.url+"/healthz", nil)
	backlog := 0
	degraded := false
	if ok {
		var stats struct {
			QueueFree int  `json:"queue_free"`
			QueueCap  int  `json:"queue_cap"`
			Draining  bool `json:"draining"`
			Degraded  bool `json:"degraded"`
		}
		if o.getOK(pctx, w.url+"/v1/stats", &stats) {
			backlog = stats.QueueCap - stats.QueueFree
			degraded = stats.Degraded
			if stats.Draining {
				ok = false // refusing new work: as good as down for dispatch
			}
		}
	}
	w.mu.Lock()
	wasAlive, hadProbe, wasDegraded := w.alive, w.probed, w.degraded
	w.alive, w.probed = ok, true
	if ok {
		w.backlog = backlog
		w.degraded = degraded
	}
	w.mu.Unlock()
	if ok != wasAlive || !hadProbe {
		if hadProbe {
			o.transitions.Add(1)
		}
		if ok {
			o.log.Info("worker is up", "worker", w.url)
		} else {
			o.log.Warn("worker is down", "worker", w.url)
		}
	}
	if ok && degraded != wasDegraded {
		if degraded {
			o.log.Warn("worker is degraded; deprioritizing", "worker", w.url)
		} else {
			o.log.Info("worker recovered from degraded", "worker", w.url)
		}
	}
}

// getOK fetches url and optionally decodes its JSON body, reporting
// success.
func (o *Orchestrator) getOK(ctx context.Context, url string, v any) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := o.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	if v != nil && json.NewDecoder(resp.Body).Decode(v) != nil {
		return false
	}
	return true
}

// ReplicationSummary polls every reachable worker's /v1/stats and folds
// the replication sections into one line ("" and false when no worker
// reports one, i.e. the fleet runs without a peer tier). Best effort:
// dead workers are skipped, since the numbers are observability, not
// state.
func (o *Orchestrator) ReplicationSummary(ctx context.Context) (string, bool) {
	type repl struct {
		FetchHits       int64 `json:"fetch_hits"`
		FetchMisses     int64 `json:"fetch_misses"`
		PushOK          int64 `json:"push_ok"`
		PushFails       int64 `json:"push_fails"`
		CorruptRejected int64 `json:"corrupt_rejected"`
		Replicas        int   `json:"replicas"`
	}
	var agg repl
	reporting := 0
	for _, w := range o.workers {
		var stats struct {
			Replication *repl `json:"replication"`
		}
		pctx, cancel := context.WithTimeout(ctx, o.cfg.ProbeTimeout)
		ok := o.getOK(pctx, w.url+"/v1/stats", &stats)
		cancel()
		if !ok || stats.Replication == nil {
			continue
		}
		reporting++
		agg.FetchHits += stats.Replication.FetchHits
		agg.FetchMisses += stats.Replication.FetchMisses
		agg.PushOK += stats.Replication.PushOK
		agg.PushFails += stats.Replication.PushFails
		agg.CorruptRejected += stats.Replication.CorruptRejected
		agg.Replicas = stats.Replication.Replicas
	}
	if reporting == 0 {
		return "", false
	}
	return fmt.Sprintf("replication: R=%d across %d/%d workers, peer fetch %d hit / %d miss, push %d ok / %d failed, %d corrupt rejected",
		agg.Replicas, reporting, len(o.workers), agg.FetchHits, agg.FetchMisses, agg.PushOK, agg.PushFails, agg.CorruptRejected), true
}

// markDead records a dispatch-time discovery that a worker is gone; the
// health loop revives it when it answers probes again.
func (o *Orchestrator) markDead(w *worker, err error) {
	w.mu.Lock()
	was := w.alive
	w.alive = false
	w.mu.Unlock()
	if was {
		o.transitions.Add(1)
		o.log.Warn("worker marked down", "worker", w.url, "err", err)
	}
}

func specLabel(s exp.SimSpec) string {
	label := s.Name + " " + s.Mechanism + " " + strconv.Itoa(s.DensityGb) + "Gb"
	if s.Variant != "" {
		label += " " + s.Variant
	}
	return label
}
