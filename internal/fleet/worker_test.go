package fleet

import (
	"context"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/serve"
	"dsarp/internal/store"
	"dsarp/internal/timing"
)

// tinyOpts is the fast single-simulation scale shared by every fleet
// test (mirrors the serving layer's test scale).
func tinyOpts() exp.Options {
	return exp.Options{
		PerCategory: 1,
		Sensitivity: 1,
		Cores:       2,
		Warmup:      2_000,
		Measure:     8_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8},
	}
}

// testWorker is one in-process dsarpd: a serve.Server behind a real TCP
// listener, its own store directory (worker-local persistence), killable
// abruptly — no drain, active connections severed — and restartable on
// the same address with a fresh runner, the way a supervisor would
// restart a SIGKILLed daemon.
type testWorker struct {
	t            *testing.T
	dir          string
	opts         exp.Options
	serveWorkers int
	maxQueue     int
	// peer, when set, joins every incarnation of this worker to the
	// replicated warm-store tier (startPeerWorkers fills it in).
	peer *serve.PeerConfig

	mu      sync.Mutex
	addr    string
	pending net.Listener // pre-bound listener for the next start (peer fleets)
	httpSrv *http.Server
	servers []*serve.Server
	runners []*exp.Runner
}

// startWorker brings up a worker on a fresh port with its own store dir.
func startWorker(t *testing.T, opts exp.Options) *testWorker {
	return startWorkerQueue(t, opts, 2, 64)
}

// startWorkerQueue is startWorker with an explicit simulation-worker
// count and queue capacity (backpressure tests want a one-slot queue).
func startWorkerQueue(t *testing.T, opts exp.Options, serveWorkers, maxQueue int) *testWorker {
	t.Helper()
	tw := &testWorker{t: t, dir: t.TempDir(), opts: opts,
		serveWorkers: serveWorkers, maxQueue: maxQueue}
	tw.start(nil)
	registerWorkerCleanup(t, tw)
	return tw
}

func registerWorkerCleanup(t *testing.T, tw *testWorker) {
	t.Cleanup(func() {
		tw.kill()
		// Let background simulation goroutines drain so the race detector
		// and tempdir cleanup see a quiet process.
		tw.mu.Lock()
		servers := tw.servers
		tw.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		for _, s := range servers {
			s.Drain(ctx)
		}
	})
}

// startPeerWorkers brings up n workers joined into one replication ring
// with factor replicas. Listeners are bound before any server starts —
// ring membership needs every member's URL up front — and each worker
// gets the same flat member list, self included, the way a deployment
// would template one -peers value for the whole fleet. chaosFor (nil for
// none) supplies each worker's fault injection.
func startPeerWorkers(t *testing.T, opts exp.Options, n, replicas int, chaosFor func(i int) *serve.Chaos) []*testWorker {
	t.Helper()
	workers := make([]*testWorker, n)
	urls := make([]string, n)
	for i := range workers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = &testWorker{t: t, dir: t.TempDir(), opts: opts,
			serveWorkers: 2, maxQueue: 64, pending: l}
		workers[i].addr = l.Addr().String()
		urls[i] = "http://" + workers[i].addr
	}
	for i, tw := range workers {
		tw.peer = &serve.PeerConfig{
			Self:     urls[i],
			Peers:    urls,
			Replicas: replicas,
			// Test-speed push retries; chaos-injected failures must be
			// ridden out well inside the test deadline.
			PushBaseBackoff: 20 * time.Millisecond,
			PushMaxBackoff:  200 * time.Millisecond,
			Seed:            int64(i),
		}
		var chaos *serve.Chaos
		if chaosFor != nil {
			chaos = chaosFor(i)
		}
		tw.start(chaos)
		registerWorkerCleanup(t, tw)
	}
	return workers
}

// start launches a fresh serve.Server over the worker's store directory,
// reusing the previous address after a kill.
func (tw *testWorker) start(chaos *serve.Chaos) {
	tw.t.Helper()
	tw.mu.Lock()
	defer tw.mu.Unlock()
	l := tw.pending
	tw.pending = nil
	if l == nil {
		addr := tw.addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		// The previous listener may linger for a beat after Close; retry
		// briefly when rebinding the same port.
		for deadline := time.Now().Add(5 * time.Second); ; {
			l, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				tw.t.Fatalf("rebind %s: %v", addr, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	tw.addr = l.Addr().String()

	st, err := store.Open(tw.dir, store.Options{Generation: exp.SchemaVersion})
	if err != nil {
		tw.t.Fatal(err)
	}
	opts := tw.opts
	opts.Store = st
	opts.EphemeralResults = true
	r := exp.NewRunner(opts)
	srv := serve.New(serve.Config{Runner: r, Workers: tw.serveWorkers, MaxQueue: tw.maxQueue, Chaos: chaos, Peer: tw.peer})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(l)
	tw.httpSrv = hs
	tw.servers = append(tw.servers, srv)
	tw.runners = append(tw.runners, r)
}

// kill severs the worker abruptly: listener and every active connection
// closed, no drain, no goodbye — the in-process stand-in for SIGKILL.
// (In-flight simulations keep running inside the process; their specs are
// re-dispatched by the orchestrator regardless, which is exactly the
// idempotence the content-addressed store guarantees.)
func (tw *testWorker) kill() {
	tw.mu.Lock()
	hs := tw.httpSrv
	tw.httpSrv = nil
	tw.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
}

func (tw *testWorker) url() string {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return "http://" + tw.addr
}

// simsRun sums simulations executed across every incarnation of this
// worker.
func (tw *testWorker) simsRun() int64 {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	var n int64
	for _, r := range tw.runners {
		n += r.SimsRun()
	}
	return n
}
