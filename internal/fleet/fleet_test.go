package fleet

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/store"
)

func testConfig(urls ...string) Config {
	return Config{
		Workers:        urls,
		RequestTimeout: 2 * time.Minute,
		ProbeTimeout:   time.Second,
		HealthInterval: 100 * time.Millisecond,
		BaseBackoff:    20 * time.Millisecond,
		MaxBackoff:     300 * time.Millisecond,
		Seed:           1,
	}
}

func mustOrch(t *testing.T, cfg Config) *Orchestrator {
	t.Helper()
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func tinySpec(name string) exp.SimSpec {
	return exp.SimSpec{
		Name:           name,
		BenchmarkNames: []string{"h264.encode"},
		Mechanism:      "REFab",
		DensityGb:      8,
		Seed:           7,
	}
}

// TestRunExperimentMatchesLocal: a two-worker fleet reproduces a registry
// experiment byte-identically to a single-node local run, with every spec
// accounted for.
func TestRunExperimentMatchesLocal(t *testing.T) {
	opts := tinyOpts()
	local := exp.NewRunner(opts)
	golden, err := local.RunExperiment("fig7")
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := startWorker(t, opts), startWorker(t, opts)
	o := mustOrch(t, testConfig(w1.url(), w2.url()))
	r := exp.NewRunner(opts) // enumeration/assembly only; runs nothing
	table, err := o.RunExperiment(context.Background(), r, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	if table.String() != golden.String() {
		t.Errorf("fleet table diverged from local run:\n got:\n%s\nwant:\n%s", table, golden)
	}
	if n := r.SimsRun(); n != 0 {
		t.Errorf("assembly runner executed %d simulations, want 0", n)
	}
	e, _ := exp.LookupExperiment("fig7")
	st := o.Stats()
	if got, want := st.Dispatched+st.LocalHits, int64(len(e.Specs(r))); got != want {
		t.Errorf("%d specs satisfied, enumeration has %d", got, want)
	}
	if st.Failed != 0 {
		t.Errorf("%d permanent failures on a healthy fleet", st.Failed)
	}
}

// TestPermanentFailureFailsSpecNotRun: a 400 fails only the offending
// spec; every other spec still completes and is returned.
func TestPermanentFailureFailsSpecNotRun(t *testing.T) {
	w := startWorker(t, tinyOpts())
	o := mustOrch(t, testConfig(w.url()))

	bad := tinySpec("bad")
	bad.Mechanism = "MAGIC" // the worker's PrepareSpec rejects this: 400
	specs := []exp.SimSpec{tinySpec("ok-a"), bad, tinySpec("ok-b")}
	res, err := o.Run(context.Background(), "mixed", specs)

	var runErr *RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if len(runErr.Failed) != 1 || runErr.Failed[0].Index != 1 {
		t.Fatalf("failed = %+v, want exactly spec 1", runErr.Failed)
	}
	if !strings.Contains(runErr.Failed[0].Err.Error(), "400") {
		t.Errorf("failure not classified as a 400: %v", runErr.Failed[0].Err)
	}
	for _, i := range []int{0, 2} {
		if _, ok := res[specs[i].Key()]; !ok {
			t.Errorf("spec %d missing from results despite being valid", i)
		}
	}
	if o.Stats().Retries != 0 {
		t.Errorf("permanent failure was retried %d times", o.Stats().Retries)
	}
}

// TestBackpressure429IsTransient: a worker with a one-slot queue bounces
// concurrent dispatches with 429 + Retry-After; the orchestrator honors
// the wait and completes every spec anyway.
func TestBackpressure429IsTransient(t *testing.T) {
	tw := startWorkerQueue(t, tinyOpts(), 1, 1)

	cfg := testConfig(tw.url())
	cfg.Concurrency = 4
	o := mustOrch(t, cfg)
	specs := []exp.SimSpec{tinySpec("bp-a"), tinySpec("bp-b"), tinySpec("bp-c"), tinySpec("bp-d")}
	for i := range specs {
		// Distinct saturating runs long enough to hold the single queue
		// slot while the other dispatchers arrive.
		specs[i].BenchmarkNames = []string{"stream.triad"}
		specs[i].Seed = int64(100 + i)
		specs[i].Measure = 300_000
	}
	res, err := o.Run(context.Background(), "backpressure", specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) {
		t.Errorf("%d results, want %d", len(res), len(specs))
	}
	if o.Stats().Retries == 0 {
		t.Error("no retries recorded; the one-slot queue should have bounced concurrent dispatches")
	}
}

// TestWorkerDeathRedispatchesToSurvivor: killing a worker mid-run loses
// nothing — its specs are re-dispatched to the survivor.
func TestWorkerDeathRedispatchesToSurvivor(t *testing.T) {
	opts := tinyOpts()
	w1, w2 := startWorker(t, opts), startWorker(t, opts)
	o := mustOrch(t, testConfig(w1.url(), w2.url()))

	// Kill w2 shortly after the run starts; never restart it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		w2.kill()
	}()

	r := exp.NewRunner(opts)
	table, err := o.RunExperiment(context.Background(), r, "fig7")
	<-done
	if err != nil {
		t.Fatal(err)
	}
	golden, err := exp.NewRunner(opts).RunExperiment("fig7")
	if err != nil {
		t.Fatal(err)
	}
	if table.String() != golden.String() {
		t.Error("table diverged after worker death")
	}
}

// TestJournalRoundTrip pins the journal contract: fresh header, state
// replay on reopen, torn-tail tolerance, and refusal of a foreign run.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	specA, specB := tinySpec("a"), tinySpec("b")
	keys := []store.Key{specA.Key(), specB.Key()}

	j, state, err := openJournal(path, "run1", exp.SchemaVersion, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(state.done)+len(state.failed) != 0 {
		t.Fatalf("fresh journal has state: %+v", state)
	}
	j.dispatched(keys[0], "http://w1")
	j.done(keys[0], "http://w1")
	j.dispatched(keys[1], "http://w2")
	j.failed(keys[1], "boom")
	j.Close()

	// Reopen: done and failed replayed; dispatched-without-done is
	// pending (absent from both maps).
	j2, state, err := openJournal(path, "run1", exp.SchemaVersion, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !state.done[keys[0]] || state.failed[keys[0]] != "" {
		t.Errorf("key A state wrong: %+v", state)
	}
	if state.failed[keys[1]] != "boom" || state.done[keys[1]] {
		t.Errorf("key B state wrong: %+v", state)
	}
	// A later done supersedes the failure (a resumed run retried it).
	j2.done(keys[1], "http://w1")
	j2.Close()
	_, state, err = openJournal(path, "run1", exp.SchemaVersion, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !state.done[keys[1]] || len(state.failed) != 0 {
		t.Errorf("retried spec still failed: %+v", state)
	}

	// Torn tail: a crash mid-append leaves half a line; replay ignores it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"done","key":"deadbe`)
	f.Close()
	_, state, err = openJournal(path, "run1", exp.SchemaVersion, keys)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if !state.done[keys[0]] || !state.done[keys[1]] {
		t.Errorf("state lost after torn tail: %+v", state)
	}

	// A journal for a different spec set is refused, not silently mixed.
	if _, _, err := openJournal(path, "run1", exp.SchemaVersion, keys[:1]); err == nil {
		t.Error("journal accepted a mismatched spec set")
	}
	if _, _, err := openJournal(path, "run2", exp.SchemaVersion, keys); err == nil {
		t.Error("journal accepted a mismatched run name")
	}
}

// TestJournalResume: an interrupted run resumes from the journal plus the
// local store — the second orchestrator re-simulates nothing, and total
// fleet work equals one cold run.
func TestJournalResume(t *testing.T) {
	opts := tinyOpts()
	w := startWorker(t, opts)
	journalPath := filepath.Join(t.TempDir(), "resume.journal")
	localDir := t.TempDir()

	r := exp.NewRunner(opts)
	e, ok := exp.LookupExperiment("fig7")
	if !ok {
		t.Fatal("no fig7")
	}
	specs := e.Specs(r)
	if len(specs) < 4 {
		t.Fatalf("fig7 has only %d specs; resume test needs a few", len(specs))
	}

	// Phase 1: cancel once the worker has computed a few results.
	st1, err := store.Open(localDir, store.Options{Generation: exp.SchemaVersion})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(w.url())
	cfg.Journal = journalPath
	cfg.Store = st1
	cfg.Concurrency = 2
	o1 := mustOrch(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel only once three results have actually landed in the
		// orchestrator's local store — that is the durable progress the
		// resumed run gets to reuse (a sim the worker ran whose response
		// never arrived is recoverable but not guaranteed local).
		for {
			persisted := 0
			for k := range uniqueKeys(specs) {
				if st1.Contains(k) {
					persisted++
				}
			}
			if persisted >= 3 {
				cancel()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	_, err = o1.Run(ctx, "fig7", specs)
	if err == nil {
		t.Fatal("phase 1 finished before it could be interrupted; lower the cancel threshold")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1 error = %v, want context.Canceled", err)
	}

	// Phase 2: a fresh orchestrator over the same journal and local store
	// completes the run.
	simsBefore := waitSimsQuiesce(t, w)
	st2, err := store.Open(localDir, store.Options{Generation: exp.SchemaVersion})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(w.url())
	cfg2.Journal = journalPath
	cfg2.Store = st2
	o2 := mustOrch(t, cfg2)
	res, err := o2.Run(context.Background(), "fig7", specs)
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Assemble(r, res)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := exp.NewRunner(opts).RunExperiment("fig7")
	if err != nil {
		t.Fatal(err)
	}
	if table.String() != golden.String() {
		t.Error("resumed run's table diverged from a single-node run")
	}

	// Resume must be cheaper than a cold run: the worker simulated
	// strictly less in phase 2 than the whole run needs, and nothing was
	// ever simulated twice across both phases.
	unique := int64(len(uniqueKeys(specs)))
	phase2 := w.simsRun() - simsBefore
	if phase2 >= unique {
		t.Errorf("phase 2 ran %d sims, not strictly less than a cold run's %d", phase2, unique)
	}
	if total := w.simsRun(); total != unique {
		t.Errorf("fleet simulated %d total across both phases, want exactly %d (no recompute)", total, unique)
	}
	if hits := o2.Stats().LocalHits; hits < 3 {
		t.Errorf("phase 2 local store hits = %d, want >= 3 (phase 1 persisted at least that many)", hits)
	}
}

// waitSimsQuiesce waits for the worker's in-flight simulations (which an
// aborted HTTP request does not cancel) to settle, returning the stable
// count.
func waitSimsQuiesce(t *testing.T, w *testWorker) int64 {
	t.Helper()
	prev := w.simsRun()
	for i := 0; i < 200; i++ {
		time.Sleep(25 * time.Millisecond)
		cur := w.simsRun()
		if cur == prev && i > 2 {
			return cur
		}
		prev = cur
	}
	return prev
}

func uniqueKeys(specs []exp.SimSpec) map[store.Key]bool {
	m := map[store.Key]bool{}
	for _, s := range specs {
		m[s.Key()] = true
	}
	return m
}

// TestBackoffCappedAndJittered pins the retry delay envelope.
func TestBackoffCappedAndJittered(t *testing.T) {
	o := mustOrch(t, testConfig("http://unused"))
	o.cfg.BaseBackoff = 100 * time.Millisecond
	o.cfg.MaxBackoff = time.Second
	for attempt := 0; attempt < 20; attempt++ {
		base := o.cfg.BaseBackoff << attempt
		if base > o.cfg.MaxBackoff || base <= 0 {
			base = o.cfg.MaxBackoff
		}
		for i := 0; i < 50; i++ {
			d := o.backoff(attempt)
			if d < base/2 || d > base*3/2 {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base/2, base*3/2)
			}
		}
	}
}

// TestNoWorkersRejected: an orchestrator needs at least one worker.
func TestNoWorkersRejected(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty worker list")
	}
}
