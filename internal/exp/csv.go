package exp

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"dsarp/internal/core"
)

// CSVWritable is implemented by experiment results that can export their
// data series for external plotting.
type CSVWritable interface {
	CSV() (header []string, rows [][]string)
}

// MultiCSV is implemented by bundled results (Fig12Set) whose panels
// export to separate CSV files.
type MultiCSV interface {
	CSVParts() []CSVWritable
}

// WriteCSV writes a result's data to dir/name.csv.
func WriteCSV(dir, name string, r CSVWritable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header, rows := r.CSV()
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSV implements CSVWritable for the tRFCab trend (Fig. 5).
func (f Fig5Result) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{ftoa(p.DensityGb), ftoa(p.Projection1), ftoa(p.Projection2)})
	}
	return []string{"density_gb", "projection1_ns", "projection2_ns"}, rows
}

// CSV implements CSVWritable for the REFab loss breakdown (Fig. 6).
func (f Fig6Result) CSV() ([]string, [][]string) {
	header := []string{"density"}
	for _, c := range f.Categories {
		header = append(header, fmt.Sprintf("cat%d_loss_pct", c))
	}
	header = append(header, "gmean_loss_pct")
	var rows [][]string
	for _, r := range f.Rows {
		row := []string{r.Density.String()}
		for _, c := range f.Categories {
			row = append(row, ftoa(r.ByCategory[c]))
		}
		row = append(row, ftoa(r.Overall))
		rows = append(rows, row)
	}
	return header, rows
}

// CSV implements CSVWritable for the REFab/REFpb comparison (Fig. 7).
func (f Fig7Result) CSV() ([]string, [][]string) {
	var rows [][]string
	for i, d := range f.Densities {
		rows = append(rows, []string{d.String(), ftoa(f.LossAB[i]), ftoa(f.LossPB[i])})
	}
	return []string{"density", "refab_loss_pct", "refpb_loss_pct"}, rows
}

// CSV implements CSVWritable for the sorted curves (Fig. 12).
func (f Fig12Result) CSV() ([]string, [][]string) {
	header := []string{"workload"}
	for _, k := range Fig12Mechanisms() {
		header = append(header, k.String()+"_norm_ws")
	}
	var rows [][]string
	for _, c := range f.Curves {
		row := []string{c.Workload}
		for _, k := range Fig12Mechanisms() {
			row = append(row, ftoa(c.Norm[k]))
		}
		rows = append(rows, row)
	}
	return header, rows
}

// CSV implements CSVWritable for the all-mechanism averages (Fig. 13).
func (f Fig13Result) CSV() ([]string, [][]string) {
	return kindSeriesCSV(f.Densities, Fig13Mechanisms(), f.Improve, "improve_pct")
}

// CSV implements CSVWritable for energy per access (Fig. 14).
func (f Fig14Result) CSV() ([]string, [][]string) {
	return kindSeriesCSV(f.Densities, Fig14Mechanisms(), f.EPA, "epa_nj")
}

// CSV implements CSVWritable for the FGR comparison (Fig. 16).
func (f Fig16Result) CSV() ([]string, [][]string) {
	return kindSeriesCSV(f.Densities, Fig16Mechanisms(), f.Norm, "norm_ws")
}

// CSV implements CSVWritable for the pausing extension.
func (p PausingResult) CSV() ([]string, [][]string) {
	return kindSeriesCSV(p.Densities, PausingMechanisms(), p.Norm, "norm_ws")
}

func kindSeriesCSV[D fmt.Stringer](densities []D, kinds []core.Kind, series map[core.Kind][]float64, unit string) ([]string, [][]string) {
	header := []string{"mechanism"}
	for _, d := range densities {
		header = append(header, d.String()+"_"+unit)
	}
	var rows [][]string
	for _, k := range kinds {
		row := []string{k.String()}
		for i := range densities {
			row = append(row, ftoa(series[k][i]))
		}
		rows = append(rows, row)
	}
	return header, rows
}

// CSV implements CSVWritable for Table 2.
func (t Table2Result) CSV() ([]string, [][]string) {
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{r.Density.String(), r.Mechanism.String(),
			ftoa(r.MaxPB), ftoa(r.MaxAB), ftoa(r.GmeanPB), ftoa(r.GmeanAB)})
	}
	return []string{"density", "mechanism", "max_vs_pb_pct", "max_vs_ab_pct",
		"gmean_vs_pb_pct", "gmean_vs_ab_pct"}, rows
}

// CSV implements CSVWritable for Table 4.
func (t Table4Result) CSV() ([]string, [][]string) {
	var rows [][]string
	for i, f := range t.TFAW {
		rows = append(rows, []string{strconv.Itoa(f), ftoa(t.Improve[i])})
	}
	return []string{"tfaw_cycles", "sarppb_improve_pct"}, rows
}

// CSV implements CSVWritable for Table 5.
func (t Table5Result) CSV() ([]string, [][]string) {
	var rows [][]string
	for i, s := range t.Subarrays {
		rows = append(rows, []string{strconv.Itoa(s), ftoa(t.Improve[i])})
	}
	return []string{"subarrays_per_bank", "sarppb_improve_pct"}, rows
}
