package exp

import (
	"errors"
	"testing"
	"time"

	"dsarp/internal/timing"
)

// watchdogSpec is a deliberately long simulation so the 1ns budget always
// expires while it is still running.
func watchdogSpec() SimSpec {
	return SimSpec{
		Name:           "watchdog",
		BenchmarkNames: []string{"h264.encode"},
		Mechanism:      "REFab",
		DensityGb:      8,
		Seed:           7,
		Warmup:         50_000,
		Measure:        2_000_000,
	}
}

// TestSimTimeoutAborts: with a vanishing wall-clock budget, RunSpec
// surfaces ErrSimTimeout, executes no lasting work (nothing cached or
// stored), and a runner without the budget still computes the same spec.
func TestSimTimeoutAborts(t *testing.T) {
	opts := Options{
		PerCategory: 1, Sensitivity: 1, Cores: 2,
		Warmup: 2_000, Measure: 8_000, Seed: 42,
		Densities:  []timing.Density{timing.Gb8},
		SimTimeout: time.Nanosecond,
		Store:      openStore(t),
	}
	r := NewRunner(opts)
	_, _, err := r.RunSpec(watchdogSpec())
	if !errors.Is(err, ErrSimTimeout) {
		t.Fatalf("RunSpec under 1ns budget = %v, want ErrSimTimeout", err)
	}
	if n := r.SimsRun(); n != 0 {
		t.Errorf("aborted run counted as %d completed sims", n)
	}
	if opts.Store.Len() != 0 {
		t.Error("aborted run left an entry in the store")
	}

	// A retry on a runner with headroom (same store) computes cleanly:
	// the abort poisoned nothing.
	opts.SimTimeout = 0
	spec := watchdogSpec()
	spec.Measure = 8_000 // small enough to finish promptly
	r2 := NewRunner(opts)
	if _, src, err := r2.RunSpec(spec); err != nil || src != SourceComputed {
		t.Fatalf("retry = src %v err %v, want clean compute", src, err)
	}
}

// TestSimTimeoutSparesCachedResults: the budget covers simulation work
// only — a warm store serves instantly however small the timeout.
func TestSimTimeoutSparesCachedResults(t *testing.T) {
	st := openStore(t)
	warmOpts := Options{
		PerCategory: 1, Sensitivity: 1, Cores: 2,
		Warmup: 2_000, Measure: 8_000, Seed: 42,
		Densities: []timing.Density{timing.Gb8},
		Store:     st,
	}
	spec := watchdogSpec()
	spec.Measure = 8_000
	if _, _, err := NewRunner(warmOpts).RunSpec(spec); err != nil {
		t.Fatal(err)
	}

	warmOpts.SimTimeout = time.Nanosecond
	r := NewRunner(warmOpts)
	if _, src, err := r.RunSpec(spec); err != nil || src != SourceStore {
		t.Fatalf("warm hit under 1ns budget = src %v err %v, want store hit", src, err)
	}
}
