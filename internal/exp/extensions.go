package exp

import (
	"fmt"
	"strings"

	"dsarp/internal/core"
	"dsarp/internal/stats"
	"dsarp/internal/timing"
)

// PausingResult compares refresh pausing (Nair et al., HPCA 2013 — the §7
// related mechanism, implemented as an extension) with the paper's
// mechanisms, normalized to REFab.
type PausingResult struct {
	Densities []timing.Density
	Norm      map[core.Kind][]float64
}

// PausingMechanisms are the columns of the pausing comparison.
func PausingMechanisms() []core.Kind {
	return []core.Kind{core.KindREFab, core.KindPause, core.KindDARP,
		core.KindDSARP, core.KindNoRef}
}

func pausingSpecs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, wl := range r.mixes {
			l.addWS(r, wl, core.KindREFab, d, "")
		}
		for _, k := range PausingMechanisms() {
			for _, wl := range r.mixes {
				l.addWS(r, wl, k, d, "")
			}
		}
	}
	return l.list()
}

func assemblePausing(r *Runner, res Results) PausingResult {
	out := PausingResult{Densities: r.opts.Densities, Norm: map[core.Kind][]float64{}}
	for _, d := range r.opts.Densities {
		ab := res.wsSeries(r, r.mixes, core.KindREFab, d, "")
		for _, k := range PausingMechanisms() {
			ws := res.wsSeries(r, r.mixes, k, d, "")
			out.Norm[k] = append(out.Norm[k], stats.Gmean(stats.Ratios(ws, ab)))
		}
	}
	return out
}

func assemblePausingAny(r *Runner, res Results) fmt.Stringer { return assemblePausing(r, res) }

// PausingComparison evaluates refresh pausing against DARP/DSARP. Expected
// shape: pausing beats REFab (it yields to demand at row-granular pausing
// points) but falls short of DSARP, which overlaps rather than merely
// reorders refresh work.
func (r *Runner) PausingComparison() PausingResult {
	res, ok := r.RunAll(pausingSpecs(r))
	if !ok {
		return PausingResult{}
	}
	return assemblePausing(r, res)
}

func (p PausingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — refresh pausing vs the paper's mechanisms (WS / REFab):\n%-9s", "mech")
	for _, d := range p.Densities {
		fmt.Fprintf(&b, " %7s", d)
	}
	b.WriteByte('\n')
	for _, k := range PausingMechanisms() {
		fmt.Fprintf(&b, "%-9s", k)
		for i := range p.Densities {
			fmt.Fprintf(&b, " %7.3f", p.Norm[k][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
