package exp

import (
	"strings"
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/timing"
)

// tinyOpts keeps experiment tests fast: one workload per category, short
// windows, two densities.
func tinyOpts() Options {
	return Options{
		PerCategory: 1,
		Sensitivity: 1,
		Cores:       4,
		Warmup:      10_000,
		Measure:     40_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8, timing.Gb32},
	}
}

func TestFig5MatchesTimingPackage(t *testing.T) {
	r := NewRunner(tinyOpts())
	f := r.Fig5()
	if len(f.Points) == 0 {
		t.Fatal("no trend points")
	}
	last := f.Points[len(f.Points)-1]
	if last.DensityGb != 64 || last.Projection2 != 1610 {
		t.Errorf("trend endpoint = %+v, want 64Gb at 1610ns", last)
	}
	if !strings.Contains(f.String(), "Projection2") {
		t.Error("Fig5 String lacks headers")
	}
}

func TestFig7Shape(t *testing.T) {
	r := NewRunner(tinyOpts())
	f := r.Fig7()
	for i := range f.Densities {
		if f.LossAB[i] <= 0 {
			t.Errorf("%v: REFab shows no loss", f.Densities[i])
		}
		if f.LossPB[i] >= f.LossAB[i] {
			t.Errorf("%v: REFpb (%.1f%%) should lose less than REFab (%.1f%%)",
				f.Densities[i], f.LossPB[i], f.LossAB[i])
		}
	}
	// Loss grows with density.
	if f.LossAB[len(f.LossAB)-1] <= f.LossAB[0] {
		t.Errorf("REFab loss should grow with density: %v", f.LossAB)
	}
}

func TestFig13Ordering(t *testing.T) {
	r := NewRunner(tinyOpts())
	f := r.Fig13()
	last := len(f.Densities) - 1 // 32Gb: the clearest separation
	noref := f.Improve[core.KindNoRef][last]
	dsarp := f.Improve[core.KindDSARP][last]
	refpb := f.Improve[core.KindREFpb][last]
	elastic := f.Improve[core.KindElastic][last]
	if !(noref >= dsarp && dsarp > elastic) {
		t.Errorf("ordering broken: NoREF=%.1f DSARP=%.1f Elastic=%.1f", noref, dsarp, elastic)
	}
	if refpb <= elastic {
		t.Errorf("REFpb (%.1f) should beat Elastic (%.1f) at 32Gb", refpb, elastic)
	}
}

func TestTable2Positive(t *testing.T) {
	r := NewRunner(tinyOpts())
	tab := r.Table2()
	if len(tab.Rows) != len(tinyOpts().Densities)*len(Table2Mechanisms()) {
		t.Fatalf("row count = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row.GmeanAB <= 0 {
			t.Errorf("%v/%v: no improvement over REFab (%.2f%%)", row.Density, row.Mechanism, row.GmeanAB)
		}
		if row.MaxAB < row.GmeanAB {
			t.Errorf("%v/%v: max < gmean", row.Density, row.Mechanism)
		}
	}
}

func TestFig16FGRWorseThanREFab(t *testing.T) {
	r := NewRunner(tinyOpts())
	f := r.Fig16()
	last := len(f.Densities) - 1
	if f.Norm[core.KindREFab][last] != 1.0 {
		t.Fatalf("REFab must normalize to 1, got %v", f.Norm[core.KindREFab][last])
	}
	if f.Norm[core.KindFGR4x][last] >= 1.0 {
		t.Errorf("FGR4x should underperform REFab, got %.3f", f.Norm[core.KindFGR4x][last])
	}
	if f.Norm[core.KindDSARP][last] <= 1.0 {
		t.Errorf("DSARP should outperform REFab, got %.3f", f.Norm[core.KindDSARP][last])
	}
	if f.Norm[core.KindDSARP][last] <= f.Norm[core.KindFGR2x][last] {
		t.Error("DSARP should beat FGR")
	}
}

func TestTable5TrendTiny(t *testing.T) {
	r := NewRunner(tinyOpts())
	tab := r.Table5()
	if tab.Improve[0] > 1.5 {
		t.Errorf("1 subarray should show ~no gain, got %.1f%%", tab.Improve[0])
	}
	if tab.Improve[len(tab.Improve)-1] <= tab.Improve[0] {
		t.Errorf("gain should grow with subarrays: %v", tab.Improve)
	}
}

func TestRunCaching(t *testing.T) {
	opts := tinyOpts()
	runs := 0
	opts.Progress = func(done, _ int, _ string) { runs = done }
	r := NewRunner(opts)
	wl := r.Mixes()[0]
	r.run(wl, core.KindREFab, timing.Gb8, "", nil)
	after := runs
	r.run(wl, core.KindREFab, timing.Gb8, "", nil) // cached
	if runs != after {
		t.Error("identical run not served from cache")
	}
	r.run(wl, core.KindREFab, timing.Gb8, "other", nil) // distinct variant
	if runs != after+1 {
		t.Error("variant should miss the cache")
	}
}

func TestAloneIPCCached(t *testing.T) {
	r := NewRunner(tinyOpts())
	prof := r.Mixes()[0].Benchmarks[0]
	a := r.aloneIPC(prof)
	b := r.aloneIPC(prof)
	if a != b || a <= 0 {
		t.Errorf("alone IPC unstable or nonpositive: %v vs %v", a, b)
	}
}

func TestStringersProduceTables(t *testing.T) {
	r := NewRunner(tinyOpts())
	outputs := []string{
		r.Fig5().String(),
		r.Fig7().String(),
		r.Fig12(timing.Gb8).String(),
		r.Table2().String(),
	}
	for i, s := range outputs {
		if len(strings.Split(s, "\n")) < 3 {
			t.Errorf("output %d suspiciously short:\n%s", i, s)
		}
	}
}
