package exp

import (
	"fmt"
	"sort"
	"strings"

	"dsarp/internal/core"
	"dsarp/internal/stats"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// --- Fig. 5: refresh latency trend ---

// Fig5Result is the tRFCab scaling trend (paper Fig. 5).
type Fig5Result struct{ Points []timing.TrendPoint }

// Fig5 regenerates the refresh latency trend: two linear projections of
// tRFCab versus chip density.
func (r *Runner) Fig5() Fig5Result { return Fig5Result{Points: timing.TRFCTrend()} }

func (f Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — tRFCab (ns) vs density:\n%8s %12s %12s\n", "Gb", "Projection1", "Projection2")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%8.0f %12.1f %12.1f\n", p.DensityGb, p.Projection1, p.Projection2)
	}
	return b.String()
}

// --- Fig. 6 / Fig. 7: performance loss due to refresh ---

// LossRow is one density's performance losses versus the no-refresh ideal.
type LossRow struct {
	Density    timing.Density
	ByCategory map[int]float64 // category -> loss %
	Overall    float64         // gmean loss % across all workloads
}

// Fig6Result is the REFab performance degradation breakdown (paper Fig. 6).
type Fig6Result struct {
	Categories []int
	Rows       []LossRow
}

// Fig6 measures the performance loss of all-bank refresh against an ideal
// refresh-free system, per intensity category and density.
func (r *Runner) Fig6() Fig6Result {
	out := Fig6Result{Categories: workload.Categories()}
	for _, d := range r.opts.Densities {
		// Fan out all (workload x mechanism) runs, then assemble the
		// per-category ratios in the deterministic workload order.
		ratio := make([]float64, len(r.mixes))
		r.forEach(len(r.mixes), func(i int) {
			wl := r.mixes[i]
			ab := r.WS(wl, core.KindREFab, d, "", nil)
			ideal := r.WS(wl, core.KindNoRef, d, "", nil)
			ratio[i] = ab / ideal
		})
		row := LossRow{Density: d, ByCategory: map[int]float64{}}
		var all []float64
		for _, cat := range out.Categories {
			var ratios []float64
			for i, wl := range r.mixes {
				if wl.Category != cat {
					continue
				}
				ratios = append(ratios, ratio[i])
			}
			row.ByCategory[cat] = (1 - stats.Gmean(ratios)) * 100
			all = append(all, ratios...)
		}
		row.Overall = (1 - stats.Gmean(all)) * 100
		out.Rows = append(out.Rows, row)
	}
	return out
}

func (f Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — performance loss due to REFab vs ideal (%%):\n%8s", "density")
	for _, c := range f.Categories {
		fmt.Fprintf(&b, " %6d%%", c)
	}
	fmt.Fprintf(&b, " %7s\n", "gmean")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%8s", row.Density)
		for _, c := range f.Categories {
			fmt.Fprintf(&b, " %7.1f", row.ByCategory[c])
		}
		fmt.Fprintf(&b, " %7.1f\n", row.Overall)
	}
	return b.String()
}

// Fig7Result compares REFab and REFpb losses (paper Fig. 7).
type Fig7Result struct {
	Densities []timing.Density
	LossAB    []float64
	LossPB    []float64
}

// Fig7 measures average performance loss of REFab and REFpb vs the ideal.
func (r *Runner) Fig7() Fig7Result {
	out := Fig7Result{Densities: r.opts.Densities}
	for _, d := range r.opts.Densities {
		ab := make([]float64, len(r.mixes))
		pb := make([]float64, len(r.mixes))
		r.forEach(len(r.mixes), func(i int) {
			wl := r.mixes[i]
			ideal := r.WS(wl, core.KindNoRef, d, "", nil)
			ab[i] = r.WS(wl, core.KindREFab, d, "", nil) / ideal
			pb[i] = r.WS(wl, core.KindREFpb, d, "", nil) / ideal
		})
		out.LossAB = append(out.LossAB, (1-stats.Gmean(ab))*100)
		out.LossPB = append(out.LossPB, (1-stats.Gmean(pb))*100)
	}
	return out
}

func (f Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — performance loss vs ideal (%%):\n%8s %8s %8s\n", "density", "REFab", "REFpb")
	for i, d := range f.Densities {
		fmt.Fprintf(&b, "%8s %8.1f %8.1f\n", d, f.LossAB[i], f.LossPB[i])
	}
	return b.String()
}

// --- Fig. 12: sorted per-workload improvement curves ---

// Fig12Mechanisms are the mechanisms plotted in the paper's Fig. 12.
func Fig12Mechanisms() []core.Kind {
	return []core.Kind{core.KindREFpb, core.KindDARP, core.KindSARPpb, core.KindDSARP}
}

// Fig12Curve is one workload's normalized WS under each mechanism.
type Fig12Curve struct {
	Workload string
	Norm     map[core.Kind]float64 // WS / WS(REFab)
}

// Fig12Result is one density's sorted curves.
type Fig12Result struct {
	Density timing.Density
	Curves  []Fig12Curve // sorted by DARP improvement, as in the paper
}

// Fig12 computes per-workload WS normalized to REFab for REFpb, DARP,
// SARPpb and DSARP at one density, sorted by DARP improvement.
func (r *Runner) Fig12(d timing.Density) Fig12Result {
	out := Fig12Result{Density: d}
	out.Curves = make([]Fig12Curve, len(r.mixes))
	r.forEach(len(r.mixes), func(i int) {
		wl := r.mixes[i]
		ab := r.WS(wl, core.KindREFab, d, "", nil)
		c := Fig12Curve{Workload: wl.Name, Norm: map[core.Kind]float64{}}
		for _, k := range Fig12Mechanisms() {
			c.Norm[k] = r.WS(wl, k, d, "", nil) / ab
		}
		out.Curves[i] = c
	})
	sort.Slice(out.Curves, func(i, j int) bool {
		return out.Curves[i].Norm[core.KindDARP] < out.Curves[j].Norm[core.KindDARP]
	})
	return out
}

func (f Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 (%s) — WS normalized to REFab, sorted by DARP:\n%-16s", f.Density, "workload")
	for _, k := range Fig12Mechanisms() {
		fmt.Fprintf(&b, " %8s", k)
	}
	b.WriteByte('\n')
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "%-16s", c.Workload)
		for _, k := range Fig12Mechanisms() {
			fmt.Fprintf(&b, " %8.3f", c.Norm[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// --- Fig. 13: average improvement of all mechanisms ---

// Fig13Mechanisms are the bars of the paper's Fig. 13.
func Fig13Mechanisms() []core.Kind {
	return []core.Kind{core.KindREFpb, core.KindElastic, core.KindDARP,
		core.KindSARPab, core.KindSARPpb, core.KindDSARP, core.KindNoRef}
}

// Fig13Result is the average WS improvement over REFab per mechanism.
type Fig13Result struct {
	Densities []timing.Density
	WSab      []float64               // absolute REFab WS per density
	Improve   map[core.Kind][]float64 // % over REFab, indexed by density
}

// Fig13 computes the gmean WS improvement of every mechanism over REFab.
func (r *Runner) Fig13() Fig13Result {
	out := Fig13Result{Densities: r.opts.Densities, Improve: map[core.Kind][]float64{}}
	for _, d := range r.opts.Densities {
		ab := r.wsSeries(r.mixes, core.KindREFab, d, "", nil)
		out.WSab = append(out.WSab, stats.Mean(ab))
		for _, k := range Fig13Mechanisms() {
			ws := r.wsSeries(r.mixes, k, d, "", nil)
			imp := stats.PctImprovement(stats.Gmean(stats.Ratios(ws, ab)))
			out.Improve[k] = append(out.Improve[k], imp)
		}
	}
	return out
}

func (f Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — WS improvement over REFab (%%):\n%-9s", "mech")
	for _, d := range f.Densities {
		fmt.Fprintf(&b, " %7s", d)
	}
	b.WriteByte('\n')
	for _, k := range Fig13Mechanisms() {
		fmt.Fprintf(&b, "%-9s", k)
		for i := range f.Densities {
			fmt.Fprintf(&b, " %7.1f", f.Improve[k][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(REFab absolute WS per density:")
	for i, d := range f.Densities {
		fmt.Fprintf(&b, " %s=%.2f", d, f.WSab[i])
	}
	fmt.Fprintf(&b, ")\n")
	return b.String()
}

// --- Fig. 14: energy per access ---

// Fig14Mechanisms are the bars of the paper's Fig. 14.
func Fig14Mechanisms() []core.Kind {
	return []core.Kind{core.KindREFab, core.KindREFpb, core.KindElastic, core.KindDARP,
		core.KindSARPab, core.KindSARPpb, core.KindDSARP, core.KindNoRef}
}

// Fig14Result is energy per access by mechanism and density.
type Fig14Result struct {
	Densities      []timing.Density
	EPA            map[core.Kind][]float64 // nJ per access
	DSARPReduction []float64               // % vs REFab, the paper's callout
}

// Fig14 computes mean DRAM energy per access for every mechanism.
func (r *Runner) Fig14() Fig14Result {
	out := Fig14Result{Densities: r.opts.Densities, EPA: map[core.Kind][]float64{}}
	for di, d := range r.opts.Densities {
		for _, k := range Fig14Mechanisms() {
			vals := make([]float64, len(r.mixes))
			r.forEach(len(r.mixes), func(i int) {
				vals[i] = r.run(r.mixes[i], k, d, "", nil).EnergyPerAccess()
			})
			out.EPA[k] = append(out.EPA[k], stats.Mean(vals))
		}
		red := (1 - out.EPA[core.KindDSARP][di]/out.EPA[core.KindREFab][di]) * 100
		out.DSARPReduction = append(out.DSARPReduction, red)
	}
	return out
}

func (f Fig14Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14 — energy per access (nJ):\n%-9s", "mech")
	for _, d := range f.Densities {
		fmt.Fprintf(&b, " %7s", d)
	}
	b.WriteByte('\n')
	for _, k := range Fig14Mechanisms() {
		fmt.Fprintf(&b, "%-9s", k)
		for i := range f.Densities {
			fmt.Fprintf(&b, " %7.2f", f.EPA[k][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "DSARP reduction vs REFab (%%):")
	for i, d := range f.Densities {
		fmt.Fprintf(&b, " %s=%.1f", d, f.DSARPReduction[i])
	}
	b.WriteByte('\n')
	return b.String()
}

// --- Fig. 15: DSARP improvement by memory intensity ---

// Fig15Result is DSARP's WS gain by intensity category.
type Fig15Result struct {
	Categories []int
	Densities  []timing.Density
	OverAB     map[int][]float64 // category -> per-density % over REFab
	OverPB     map[int][]float64
}

// Fig15 computes DSARP's improvement over both baselines per category.
func (r *Runner) Fig15() Fig15Result {
	out := Fig15Result{
		Categories: workload.Categories(),
		Densities:  r.opts.Densities,
		OverAB:     map[int][]float64{},
		OverPB:     map[int][]float64{},
	}
	for _, d := range r.opts.Densities {
		abR := make([]float64, len(r.mixes))
		pbR := make([]float64, len(r.mixes))
		r.forEach(len(r.mixes), func(i int) {
			wl := r.mixes[i]
			ds := r.WS(wl, core.KindDSARP, d, "", nil)
			abR[i] = ds / r.WS(wl, core.KindREFab, d, "", nil)
			pbR[i] = ds / r.WS(wl, core.KindREFpb, d, "", nil)
		})
		for _, cat := range out.Categories {
			var ab, pb []float64
			for i, wl := range r.mixes {
				if wl.Category != cat {
					continue
				}
				ab = append(ab, abR[i])
				pb = append(pb, pbR[i])
			}
			out.OverAB[cat] = append(out.OverAB[cat], stats.PctImprovement(stats.Gmean(ab)))
			out.OverPB[cat] = append(out.OverPB[cat], stats.PctImprovement(stats.Gmean(pb)))
		}
	}
	return out
}

func (f Fig15Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 15 — DSARP WS improvement by intensity (%%):\n")
	for _, base := range []string{"REFab", "REFpb"} {
		fmt.Fprintf(&b, "vs %s:\n%10s", base, "category")
		for _, d := range f.Densities {
			fmt.Fprintf(&b, " %7s", d)
		}
		b.WriteByte('\n')
		for _, c := range f.Categories {
			fmt.Fprintf(&b, "%9d%%", c)
			vals := f.OverAB[c]
			if base == "REFpb" {
				vals = f.OverPB[c]
			}
			for i := range f.Densities {
				fmt.Fprintf(&b, " %7.1f", vals[i])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// --- Fig. 16: DDR4 FGR and adaptive refresh ---

// Fig16Mechanisms are the bars of the paper's Fig. 16.
func Fig16Mechanisms() []core.Kind {
	return []core.Kind{core.KindREFab, core.KindFGR2x, core.KindFGR4x, core.KindAR, core.KindDSARP}
}

// Fig16Result is WS normalized to REFab.
type Fig16Result struct {
	Densities []timing.Density
	Norm      map[core.Kind][]float64
}

// Fig16 compares fine granularity refresh and adaptive refresh with DSARP.
func (r *Runner) Fig16() Fig16Result {
	out := Fig16Result{Densities: r.opts.Densities, Norm: map[core.Kind][]float64{}}
	for _, d := range r.opts.Densities {
		ab := r.wsSeries(r.mixes, core.KindREFab, d, "", nil)
		for _, k := range Fig16Mechanisms() {
			ws := r.wsSeries(r.mixes, k, d, "", nil)
			out.Norm[k] = append(out.Norm[k], stats.Gmean(stats.Ratios(ws, ab)))
		}
	}
	return out
}

func (f Fig16Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 16 — WS normalized to REFab:\n%-9s", "mech")
	for _, d := range f.Densities {
		fmt.Fprintf(&b, " %7s", d)
	}
	b.WriteByte('\n')
	for _, k := range Fig16Mechanisms() {
		fmt.Fprintf(&b, "%-9s", k)
		for i := range f.Densities {
			fmt.Fprintf(&b, " %7.3f", f.Norm[k][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
