package exp

import (
	"fmt"
	"sort"
	"strings"

	"dsarp/internal/core"
	"dsarp/internal/stats"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// Like tables.go, every figure here is registered declaratively: a specs
// enumeration, a pure assembly from a Results map, and the legacy Runner
// method as a thin wrapper over the two.

// --- Fig. 5: refresh latency trend ---

// Fig5Result is the tRFCab scaling trend (paper Fig. 5).
type Fig5Result struct{ Points []timing.TrendPoint }

// fig5Specs is empty: the trend is analytic, no simulation backs it. The
// registry still carries it so every published artifact has one uniform
// enumerate→assemble shape (a fleet run of fig5 is a zero-spec job).
func fig5Specs(*Runner) []SimSpec { return nil }

func assembleFig5Any(*Runner, Results) fmt.Stringer {
	return Fig5Result{Points: timing.TRFCTrend()}
}

// Fig5 regenerates the refresh latency trend: two linear projections of
// tRFCab versus chip density.
func (r *Runner) Fig5() Fig5Result { return Fig5Result{Points: timing.TRFCTrend()} }

func (f Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — tRFCab (ns) vs density:\n%8s %12s %12s\n", "Gb", "Projection1", "Projection2")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%8.0f %12.1f %12.1f\n", p.DensityGb, p.Projection1, p.Projection2)
	}
	return b.String()
}

// --- Fig. 6 / Fig. 7: performance loss due to refresh ---

// LossRow is one density's performance losses versus the no-refresh ideal.
type LossRow struct {
	Density    timing.Density
	ByCategory map[int]float64 // category -> loss %
	Overall    float64         // gmean loss % across all workloads
}

// Fig6Result is the REFab performance degradation breakdown (paper Fig. 6).
type Fig6Result struct {
	Categories []int
	Rows       []LossRow
}

func fig6Specs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, wl := range r.mixes {
			l.addWS(r, wl, core.KindREFab, d, "")
			l.addWS(r, wl, core.KindNoRef, d, "")
		}
	}
	return l.list()
}

func assembleFig6(r *Runner, res Results) Fig6Result {
	out := Fig6Result{Categories: workload.Categories()}
	for _, d := range r.opts.Densities {
		ratio := make([]float64, len(r.mixes))
		for i, wl := range r.mixes {
			ab := res.ws(r, wl, core.KindREFab, d, "")
			ideal := res.ws(r, wl, core.KindNoRef, d, "")
			ratio[i] = ab / ideal
		}
		row := LossRow{Density: d, ByCategory: map[int]float64{}}
		var all []float64
		for _, cat := range out.Categories {
			var ratios []float64
			for i, wl := range r.mixes {
				if wl.Category != cat {
					continue
				}
				ratios = append(ratios, ratio[i])
			}
			row.ByCategory[cat] = (1 - stats.Gmean(ratios)) * 100
			all = append(all, ratios...)
		}
		row.Overall = (1 - stats.Gmean(all)) * 100
		out.Rows = append(out.Rows, row)
	}
	return out
}

func assembleFig6Any(r *Runner, res Results) fmt.Stringer { return assembleFig6(r, res) }

// Fig6 measures the performance loss of all-bank refresh against an ideal
// refresh-free system, per intensity category and density.
func (r *Runner) Fig6() Fig6Result {
	res, ok := r.RunAll(fig6Specs(r))
	if !ok {
		return Fig6Result{}
	}
	return assembleFig6(r, res)
}

func (f Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — performance loss due to REFab vs ideal (%%):\n%8s", "density")
	for _, c := range f.Categories {
		fmt.Fprintf(&b, " %6d%%", c)
	}
	fmt.Fprintf(&b, " %7s\n", "gmean")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%8s", row.Density)
		for _, c := range f.Categories {
			fmt.Fprintf(&b, " %7.1f", row.ByCategory[c])
		}
		fmt.Fprintf(&b, " %7.1f\n", row.Overall)
	}
	return b.String()
}

// Fig7Result compares REFab and REFpb losses (paper Fig. 7).
type Fig7Result struct {
	Densities []timing.Density
	LossAB    []float64
	LossPB    []float64
}

func fig7Specs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, wl := range r.mixes {
			l.addWS(r, wl, core.KindNoRef, d, "")
			l.addWS(r, wl, core.KindREFab, d, "")
			l.addWS(r, wl, core.KindREFpb, d, "")
		}
	}
	return l.list()
}

func assembleFig7(r *Runner, res Results) Fig7Result {
	out := Fig7Result{Densities: r.opts.Densities}
	for _, d := range r.opts.Densities {
		ab := make([]float64, len(r.mixes))
		pb := make([]float64, len(r.mixes))
		for i, wl := range r.mixes {
			ideal := res.ws(r, wl, core.KindNoRef, d, "")
			ab[i] = res.ws(r, wl, core.KindREFab, d, "") / ideal
			pb[i] = res.ws(r, wl, core.KindREFpb, d, "") / ideal
		}
		out.LossAB = append(out.LossAB, (1-stats.Gmean(ab))*100)
		out.LossPB = append(out.LossPB, (1-stats.Gmean(pb))*100)
	}
	return out
}

func assembleFig7Any(r *Runner, res Results) fmt.Stringer { return assembleFig7(r, res) }

// Fig7 measures average performance loss of REFab and REFpb vs the ideal.
func (r *Runner) Fig7() Fig7Result {
	res, ok := r.RunAll(fig7Specs(r))
	if !ok {
		return Fig7Result{}
	}
	return assembleFig7(r, res)
}

func (f Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — performance loss vs ideal (%%):\n%8s %8s %8s\n", "density", "REFab", "REFpb")
	for i, d := range f.Densities {
		fmt.Fprintf(&b, "%8s %8.1f %8.1f\n", d, f.LossAB[i], f.LossPB[i])
	}
	return b.String()
}

// --- Fig. 12: sorted per-workload improvement curves ---

// Fig12Mechanisms are the mechanisms plotted in the paper's Fig. 12.
func Fig12Mechanisms() []core.Kind {
	return []core.Kind{core.KindREFpb, core.KindDARP, core.KindSARPpb, core.KindDSARP}
}

// Fig12Curve is one workload's normalized WS under each mechanism.
type Fig12Curve struct {
	Workload string
	Norm     map[core.Kind]float64 // WS / WS(REFab)
}

// Fig12Result is one density's sorted curves.
type Fig12Result struct {
	Density timing.Density
	Curves  []Fig12Curve // sorted by DARP improvement, as in the paper
}

func fig12Specs(r *Runner, d timing.Density) []SimSpec {
	l := newSpecList()
	for _, wl := range r.mixes {
		l.addWS(r, wl, core.KindREFab, d, "")
		for _, k := range Fig12Mechanisms() {
			l.addWS(r, wl, k, d, "")
		}
	}
	return l.list()
}

func assembleFig12(r *Runner, res Results, d timing.Density) Fig12Result {
	out := Fig12Result{Density: d}
	out.Curves = make([]Fig12Curve, len(r.mixes))
	for i, wl := range r.mixes {
		ab := res.ws(r, wl, core.KindREFab, d, "")
		c := Fig12Curve{Workload: wl.Name, Norm: map[core.Kind]float64{}}
		for _, k := range Fig12Mechanisms() {
			c.Norm[k] = res.ws(r, wl, k, d, "") / ab
		}
		out.Curves[i] = c
	}
	sort.Slice(out.Curves, func(i, j int) bool {
		return out.Curves[i].Norm[core.KindDARP] < out.Curves[j].Norm[core.KindDARP]
	})
	return out
}

// Fig12 computes per-workload WS normalized to REFab for REFpb, DARP,
// SARPpb and DSARP at one density, sorted by DARP improvement.
func (r *Runner) Fig12(d timing.Density) Fig12Result {
	res, ok := r.RunAll(fig12Specs(r, d))
	if !ok {
		return Fig12Result{Density: d}
	}
	return assembleFig12(r, res, d)
}

func (f Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 (%s) — WS normalized to REFab, sorted by DARP:\n%-16s", f.Density, "workload")
	for _, k := range Fig12Mechanisms() {
		fmt.Fprintf(&b, " %8s", k)
	}
	b.WriteByte('\n')
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "%-16s", c.Workload)
		for _, k := range Fig12Mechanisms() {
			fmt.Fprintf(&b, " %8.3f", c.Norm[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig12Set bundles the per-density Fig. 12 panels the registry entry
// renders — one per runner density, in order.
type Fig12Set struct{ Figs []Fig12Result }

// fig12AllSpecs enumerates Fig. 12 across every runner density.
func fig12AllSpecs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, s := range fig12Specs(r, d) {
			l.add(s)
		}
	}
	return l.list()
}

func assembleFig12Set(r *Runner, res Results) Fig12Set {
	var out Fig12Set
	for _, d := range r.opts.Densities {
		out.Figs = append(out.Figs, assembleFig12(r, res, d))
	}
	return out
}

func assembleFig12SetAny(r *Runner, res Results) fmt.Stringer { return assembleFig12Set(r, res) }

// String concatenates the panels the way cmd/experiments always has: one
// blank line between densities.
func (f Fig12Set) String() string {
	parts := make([]string, len(f.Figs))
	for i, sub := range f.Figs {
		parts[i] = sub.String()
	}
	return strings.Join(parts, "\n")
}

// CSVParts exposes each density's panel for per-file CSV export.
func (f Fig12Set) CSVParts() []CSVWritable {
	out := make([]CSVWritable, len(f.Figs))
	for i, sub := range f.Figs {
		out[i] = sub
	}
	return out
}

// --- Fig. 13: average improvement of all mechanisms ---

// Fig13Mechanisms are the bars of the paper's Fig. 13.
func Fig13Mechanisms() []core.Kind {
	return []core.Kind{core.KindREFpb, core.KindElastic, core.KindDARP,
		core.KindSARPab, core.KindSARPpb, core.KindDSARP, core.KindNoRef}
}

// Fig13Result is the average WS improvement over REFab per mechanism.
type Fig13Result struct {
	Densities []timing.Density
	WSab      []float64               // absolute REFab WS per density
	Improve   map[core.Kind][]float64 // % over REFab, indexed by density
}

func fig13Specs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, wl := range r.mixes {
			l.addWS(r, wl, core.KindREFab, d, "")
		}
		for _, k := range Fig13Mechanisms() {
			for _, wl := range r.mixes {
				l.addWS(r, wl, k, d, "")
			}
		}
	}
	return l.list()
}

func assembleFig13(r *Runner, res Results) Fig13Result {
	out := Fig13Result{Densities: r.opts.Densities, Improve: map[core.Kind][]float64{}}
	for _, d := range r.opts.Densities {
		ab := res.wsSeries(r, r.mixes, core.KindREFab, d, "")
		out.WSab = append(out.WSab, stats.Mean(ab))
		for _, k := range Fig13Mechanisms() {
			ws := res.wsSeries(r, r.mixes, k, d, "")
			imp := stats.PctImprovement(stats.Gmean(stats.Ratios(ws, ab)))
			out.Improve[k] = append(out.Improve[k], imp)
		}
	}
	return out
}

func assembleFig13Any(r *Runner, res Results) fmt.Stringer { return assembleFig13(r, res) }

// Fig13 computes the gmean WS improvement of every mechanism over REFab.
func (r *Runner) Fig13() Fig13Result {
	res, ok := r.RunAll(fig13Specs(r))
	if !ok {
		return Fig13Result{}
	}
	return assembleFig13(r, res)
}

func (f Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — WS improvement over REFab (%%):\n%-9s", "mech")
	for _, d := range f.Densities {
		fmt.Fprintf(&b, " %7s", d)
	}
	b.WriteByte('\n')
	for _, k := range Fig13Mechanisms() {
		fmt.Fprintf(&b, "%-9s", k)
		for i := range f.Densities {
			fmt.Fprintf(&b, " %7.1f", f.Improve[k][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(REFab absolute WS per density:")
	for i, d := range f.Densities {
		fmt.Fprintf(&b, " %s=%.2f", d, f.WSab[i])
	}
	fmt.Fprintf(&b, ")\n")
	return b.String()
}

// --- Fig. 14: energy per access ---

// Fig14Mechanisms are the bars of the paper's Fig. 14.
func Fig14Mechanisms() []core.Kind {
	return []core.Kind{core.KindREFab, core.KindREFpb, core.KindElastic, core.KindDARP,
		core.KindSARPab, core.KindSARPpb, core.KindDSARP, core.KindNoRef}
}

// Fig14Result is energy per access by mechanism and density.
type Fig14Result struct {
	Densities      []timing.Density
	EPA            map[core.Kind][]float64 // nJ per access
	DSARPReduction []float64               // % vs REFab, the paper's callout
}

// fig14Specs needs no alone runs: energy per access is not WS-normalized.
func fig14Specs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, k := range Fig14Mechanisms() {
			for _, wl := range r.mixes {
				l.addRun(r, wl, k, d, "")
			}
		}
	}
	return l.list()
}

func assembleFig14(r *Runner, res Results) Fig14Result {
	out := Fig14Result{Densities: r.opts.Densities, EPA: map[core.Kind][]float64{}}
	for di, d := range r.opts.Densities {
		for _, k := range Fig14Mechanisms() {
			vals := make([]float64, len(r.mixes))
			for i, wl := range r.mixes {
				vals[i] = res.get(r, wl, k, d, "").EnergyPerAccess()
			}
			out.EPA[k] = append(out.EPA[k], stats.Mean(vals))
		}
		red := (1 - out.EPA[core.KindDSARP][di]/out.EPA[core.KindREFab][di]) * 100
		out.DSARPReduction = append(out.DSARPReduction, red)
	}
	return out
}

func assembleFig14Any(r *Runner, res Results) fmt.Stringer { return assembleFig14(r, res) }

// Fig14 computes mean DRAM energy per access for every mechanism.
func (r *Runner) Fig14() Fig14Result {
	res, ok := r.RunAll(fig14Specs(r))
	if !ok {
		return Fig14Result{}
	}
	return assembleFig14(r, res)
}

func (f Fig14Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14 — energy per access (nJ):\n%-9s", "mech")
	for _, d := range f.Densities {
		fmt.Fprintf(&b, " %7s", d)
	}
	b.WriteByte('\n')
	for _, k := range Fig14Mechanisms() {
		fmt.Fprintf(&b, "%-9s", k)
		for i := range f.Densities {
			fmt.Fprintf(&b, " %7.2f", f.EPA[k][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "DSARP reduction vs REFab (%%):")
	for i, d := range f.Densities {
		fmt.Fprintf(&b, " %s=%.1f", d, f.DSARPReduction[i])
	}
	b.WriteByte('\n')
	return b.String()
}

// --- Fig. 15: DSARP improvement by memory intensity ---

// Fig15Result is DSARP's WS gain by intensity category.
type Fig15Result struct {
	Categories []int
	Densities  []timing.Density
	OverAB     map[int][]float64 // category -> per-density % over REFab
	OverPB     map[int][]float64
}

func fig15Specs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, wl := range r.mixes {
			l.addWS(r, wl, core.KindDSARP, d, "")
			l.addWS(r, wl, core.KindREFab, d, "")
			l.addWS(r, wl, core.KindREFpb, d, "")
		}
	}
	return l.list()
}

func assembleFig15(r *Runner, res Results) Fig15Result {
	out := Fig15Result{
		Categories: workload.Categories(),
		Densities:  r.opts.Densities,
		OverAB:     map[int][]float64{},
		OverPB:     map[int][]float64{},
	}
	for _, d := range r.opts.Densities {
		abR := make([]float64, len(r.mixes))
		pbR := make([]float64, len(r.mixes))
		for i, wl := range r.mixes {
			ds := res.ws(r, wl, core.KindDSARP, d, "")
			abR[i] = ds / res.ws(r, wl, core.KindREFab, d, "")
			pbR[i] = ds / res.ws(r, wl, core.KindREFpb, d, "")
		}
		for _, cat := range out.Categories {
			var ab, pb []float64
			for i, wl := range r.mixes {
				if wl.Category != cat {
					continue
				}
				ab = append(ab, abR[i])
				pb = append(pb, pbR[i])
			}
			out.OverAB[cat] = append(out.OverAB[cat], stats.PctImprovement(stats.Gmean(ab)))
			out.OverPB[cat] = append(out.OverPB[cat], stats.PctImprovement(stats.Gmean(pb)))
		}
	}
	return out
}

func assembleFig15Any(r *Runner, res Results) fmt.Stringer { return assembleFig15(r, res) }

// Fig15 computes DSARP's improvement over both baselines per category.
func (r *Runner) Fig15() Fig15Result {
	res, ok := r.RunAll(fig15Specs(r))
	if !ok {
		return Fig15Result{}
	}
	return assembleFig15(r, res)
}

func (f Fig15Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 15 — DSARP WS improvement by intensity (%%):\n")
	for _, base := range []string{"REFab", "REFpb"} {
		fmt.Fprintf(&b, "vs %s:\n%10s", base, "category")
		for _, d := range f.Densities {
			fmt.Fprintf(&b, " %7s", d)
		}
		b.WriteByte('\n')
		for _, c := range f.Categories {
			fmt.Fprintf(&b, "%9d%%", c)
			vals := f.OverAB[c]
			if base == "REFpb" {
				vals = f.OverPB[c]
			}
			for i := range f.Densities {
				fmt.Fprintf(&b, " %7.1f", vals[i])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// --- Fig. 16: DDR4 FGR and adaptive refresh ---

// Fig16Mechanisms are the bars of the paper's Fig. 16.
func Fig16Mechanisms() []core.Kind {
	return []core.Kind{core.KindREFab, core.KindFGR2x, core.KindFGR4x, core.KindAR, core.KindDSARP}
}

// Fig16Result is WS normalized to REFab.
type Fig16Result struct {
	Densities []timing.Density
	Norm      map[core.Kind][]float64
}

func fig16Specs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, wl := range r.mixes {
			l.addWS(r, wl, core.KindREFab, d, "")
		}
		for _, k := range Fig16Mechanisms() {
			for _, wl := range r.mixes {
				l.addWS(r, wl, k, d, "")
			}
		}
	}
	return l.list()
}

func assembleFig16(r *Runner, res Results) Fig16Result {
	out := Fig16Result{Densities: r.opts.Densities, Norm: map[core.Kind][]float64{}}
	for _, d := range r.opts.Densities {
		ab := res.wsSeries(r, r.mixes, core.KindREFab, d, "")
		for _, k := range Fig16Mechanisms() {
			ws := res.wsSeries(r, r.mixes, k, d, "")
			out.Norm[k] = append(out.Norm[k], stats.Gmean(stats.Ratios(ws, ab)))
		}
	}
	return out
}

func assembleFig16Any(r *Runner, res Results) fmt.Stringer { return assembleFig16(r, res) }

// Fig16 compares fine granularity refresh and adaptive refresh with DSARP.
func (r *Runner) Fig16() Fig16Result {
	res, ok := r.RunAll(fig16Specs(r))
	if !ok {
		return Fig16Result{}
	}
	return assembleFig16(r, res)
}

func (f Fig16Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 16 — WS normalized to REFab:\n%-9s", "mech")
	for _, d := range f.Densities {
		fmt.Fprintf(&b, " %7s", d)
	}
	b.WriteByte('\n')
	for _, k := range Fig16Mechanisms() {
		fmt.Fprintf(&b, "%-9s", k)
		for i := range f.Densities {
			fmt.Fprintf(&b, " %7.3f", f.Norm[k][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
