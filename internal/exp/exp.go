// Package exp regenerates every table and figure of the paper's evaluation
// (§3 and §6) plus the DESIGN.md ablations. Each experiment is a method on
// Runner; results of individual simulations are cached and shared across
// experiments so e.g. Fig. 12, Fig. 13 and Table 2 reuse the same runs.
//
// Scale is controlled by Options: the defaults are laptop-scale (see
// DESIGN.md substitution 2); Paper() restores the paper's 100-workload
// setup with long measurement windows.
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dsarp/internal/core"
	"dsarp/internal/metrics"
	"dsarp/internal/sched"
	"dsarp/internal/sim"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

// Options set the experiment scale and common system parameters.
type Options struct {
	PerCategory int // workloads per intensity category (paper: 20)
	Sensitivity int // intensive workloads for §6.2-6.4 (paper: 16)
	Cores       int
	Warmup      int64 // DRAM cycles
	Measure     int64 // DRAM cycles
	Seed        int64
	Densities   []timing.Density
	// Parallelism bounds how many simulations run concurrently: 0 (the
	// default) uses one worker per available CPU, 1 runs fully serial with
	// no goroutines, n > 1 uses n workers. Every setting produces
	// bit-identical tables: each simulation derives all state from its own
	// config and seed, and in-flight runs are deduplicated so experiments
	// still share cached results. Only the Progress callback order varies.
	Parallelism int
	// Engine selects the simulation run loop (default: the clock-skipping
	// event engine). Both engines produce bit-identical tables.
	Engine sim.Engine
	// Progress, if non-nil, is called after each completed simulation. It
	// is never called concurrently, but under parallelism the callback
	// order is completion order, not submission order.
	Progress func(done, total int, label string)
}

// Defaults returns a laptop-scale configuration: 10 workloads (2 per
// category), short measurement windows. Experiment shapes are stable at
// this scale; absolute percentages tighten with Paper().
func Defaults() Options {
	return Options{
		PerCategory: 2,
		Sensitivity: 3,
		Cores:       8,
		Warmup:      30_000,
		Measure:     120_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8, timing.Gb16, timing.Gb32},
	}
}

// Paper returns the paper-scale configuration: 100 workloads, 16
// sensitivity mixes, and a measurement window covering thousands of refresh
// intervals. Expect hours of runtime on one CPU.
func Paper() Options {
	o := Defaults()
	o.PerCategory = 20
	o.Sensitivity = 16
	o.Warmup = 200_000
	o.Measure = 2_000_000
	return o
}

// Runner executes and caches simulations. All methods are safe for
// concurrent use; the runner itself fans simulations out over
// Options.Parallelism workers.
type Runner struct {
	opts      Options
	mixes     []workload.Workload
	sensitive []workload.Workload

	mu         sync.Mutex
	cache      map[runKey]sim.Result
	running    map[runKey]*inflight[sim.Result] // deduplicates concurrent runs
	alone      map[string]float64               // benchmark name -> alone IPC
	aloneRun   map[string]*inflight[float64]
	done       int
	totalGuess int

	progressMu sync.Mutex // serializes the Progress callback
}

// inflight is a computation another worker is already performing; waiters
// block on done and then read res. If the computing worker panicked,
// panicked carries its panic value and waiters re-raise it instead of
// returning a zero result.
type inflight[T any] struct {
	done     chan struct{}
	res      T
	panicked any
}

// await blocks until the computation finishes and returns its result,
// re-raising the computing worker's panic if it had one.
func (fl *inflight[T]) await() T {
	<-fl.done
	if fl.panicked != nil {
		panic(fl.panicked)
	}
	return fl.res
}

// abort releases an inflight registration when the computation panics:
// deregister it so a later call can retry, record the panic for waiters,
// and wake them. Without this, waiters on the same key would block forever
// while the panic unwound past them.
func abort[T any, K comparable](r *Runner, m map[K]*inflight[T], key K, fl *inflight[T]) {
	if v := recover(); v != nil {
		r.mu.Lock()
		delete(m, key)
		r.mu.Unlock()
		fl.panicked = v
		close(fl.done)
		panic(v)
	}
}

// singleflight returns cache[key], computing it with fn exactly once across
// concurrent callers: the first caller runs fn, everyone else waits for its
// result (or its panic). onStore, if non-nil, runs under the runner lock in
// the same critical section that publishes the result. The bool reports
// whether this caller did the computing.
func singleflight[K comparable, T any](r *Runner, cache map[K]T, running map[K]*inflight[T], key K, fn func() T, onStore func()) (T, bool) {
	r.mu.Lock()
	if v, ok := cache[key]; ok {
		r.mu.Unlock()
		return v, false
	}
	if fl, ok := running[key]; ok {
		r.mu.Unlock()
		return fl.await(), false
	}
	fl := &inflight[T]{done: make(chan struct{})}
	running[key] = fl
	r.mu.Unlock()
	defer abort(r, running, key, fl)

	v := fn()

	r.mu.Lock()
	cache[key] = v
	delete(running, key)
	if onStore != nil {
		onStore()
	}
	r.mu.Unlock()
	fl.res = v
	close(fl.done)
	return v, true
}

type runKey struct {
	workload  string
	mech      core.Kind
	density   timing.Density
	retention timing.Retention
	variant   string // distinguishes AdjustTiming / geometry / policy variants
}

// NewRunner builds a Runner; workload mixes are derived deterministically
// from the options' seed.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:      opts,
		mixes:     workload.Mixes(opts.PerCategory, opts.Cores, opts.Seed),
		sensitive: workload.IntensiveMixes(opts.Sensitivity, opts.Cores, opts.Seed+1),
		cache:     map[runKey]sim.Result{},
		running:   map[runKey]*inflight[sim.Result]{},
		alone:     map[string]float64{},
		aloneRun:  map[string]*inflight[float64]{},
	}
}

// parallelism resolves Options.Parallelism to a worker count.
func (r *Runner) parallelism() int {
	if r.opts.Parallelism > 0 {
		return r.opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0..n-1), fanning out over the runner's worker budget.
// Each call brings up its own workers, so nested use cannot deadlock; with
// Parallelism 1 (or a single task) it degenerates to a plain loop on the
// calling goroutine. A panic in fn is re-raised on the caller.
func (r *Runner) forEach(n int, fn func(int)) {
	p := r.parallelism()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = v
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// Mixes returns the main 5-category workload set.
func (r *Runner) Mixes() []workload.Workload { return r.mixes }

// SensitivityMixes returns the all-intensive workloads of §6.2-6.4.
func (r *Runner) SensitivityMixes() []workload.Workload { return r.sensitive }

// baseConfig assembles the default simulation config for a workload.
func (r *Runner) baseConfig(wl workload.Workload, k core.Kind, d timing.Density) sim.Config {
	return sim.Config{
		Workload:  wl,
		Mechanism: k,
		Density:   d,
		Engine:    r.opts.Engine,
		Seed:      r.opts.Seed,
		Warmup:    r.opts.Warmup,
		Measure:   r.opts.Measure,
	}
}

// run executes (or recalls) one simulation. variant tags non-default
// configurations; mod applies them. Concurrent calls with the same key
// share a single execution: the first caller computes, the rest wait.
func (r *Runner) run(wl workload.Workload, k core.Kind, d timing.Density, variant string, mod func(*sim.Config)) sim.Result {
	key := runKey{workload: wl.Name, mech: k, density: d, variant: variant}
	var done int
	res, computed := singleflight(r, r.cache, r.running, key, func() sim.Result {
		cfg := r.baseConfig(wl, k, d)
		if mod != nil {
			mod(&cfg)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("exp: %s/%v/%v/%s: %v", wl.Name, k, d, variant, err))
		}
		return res
	}, func() {
		r.done++
		done = r.done
	})
	if computed {
		r.progress(done, fmt.Sprintf("%s %v %v %s", wl.Name, k, d, variant))
	}
	return res
}

func (r *Runner) progress(done int, label string) {
	if r.opts.Progress == nil {
		return
	}
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	r.opts.Progress(done, r.totalGuess, label)
}

// aloneIPC returns a benchmark's alone-run IPC: a single-core run on the
// full memory system with refresh disabled. Refresh-free alone IPCs make
// weighted-speedup ratios across mechanisms exact (the normalization
// constant cancels). Like run, concurrent callers share one execution.
func (r *Runner) aloneIPC(prof trace.Profile) float64 {
	ipc, _ := singleflight(r, r.alone, r.aloneRun, prof.Name, func() float64 {
		wl := workload.Workload{Name: "alone." + prof.Name, Benchmarks: []trace.Profile{prof}}
		cfg := r.baseConfig(wl, core.KindNoRef, timing.Gb8)
		res, err := sim.Run(cfg)
		if err != nil {
			panic(fmt.Sprintf("exp: alone run %s: %v", prof.Name, err))
		}
		return res.IPC[0]
	}, nil)
	return ipc
}

// aloneIPCs collects alone IPCs for every slot of a workload.
func (r *Runner) aloneIPCs(wl workload.Workload) []float64 {
	out := make([]float64, len(wl.Benchmarks))
	for i, b := range wl.Benchmarks {
		out[i] = r.aloneIPC(b)
	}
	return out
}

// WS returns the weighted speedup of a mechanism on a workload.
func (r *Runner) WS(wl workload.Workload, k core.Kind, d timing.Density, variant string, mod func(*sim.Config)) float64 {
	res := r.run(wl, k, d, variant, mod)
	return metrics.WeightedSpeedup(res.IPC, r.aloneIPCs(wl))
}

// wsSeries computes WS for every workload in ws, fanning the simulations
// out over the runner's workers.
func (r *Runner) wsSeries(ws []workload.Workload, k core.Kind, d timing.Density, variant string, mod func(*sim.Config)) []float64 {
	out := make([]float64, len(ws))
	r.forEach(len(ws), func(i int) {
		out[i] = r.WS(ws[i], k, d, variant, mod)
	})
	return out
}

// policyVariant builds a sim.Config modifier that swaps in a custom DARP
// configuration (ablations).
func darpVariant(opts core.DARPOptions) func(*sim.Config) {
	return func(c *sim.Config) {
		c.Policy = func(v sched.View, seed int64) sched.RefreshPolicy {
			return core.NewDARP(v, opts, seed)
		}
	}
}
