// Package exp regenerates every table and figure of the paper's evaluation
// (§3 and §6) plus the DESIGN.md ablations. Each experiment is a registry
// entry (Experiments, LookupExperiment) with two pure halves: Specs
// enumerates the simulations it needs as fully-resolved SimSpecs, and
// Assemble renders the table from a Results map — so any execution
// strategy fits between them (the runner's local pool, the HTTP sweep
// machinery, or a fleet of dsarpd workers). The legacy Runner methods
// (Table2, Fig13, ...) are thin run-then-assemble wrappers over the same
// entries and render byte-identical output. Results of individual
// simulations are cached and shared across experiments so e.g. Fig. 12,
// Fig. 13 and Table 2 reuse the same runs.
//
// Scale is controlled by Options: the defaults are laptop-scale (see
// DESIGN.md substitution 2); Paper() restores the paper's 100-workload
// setup with long measurement windows.
package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dsarp/internal/core"
	"dsarp/internal/metrics"
	"dsarp/internal/sched"
	"dsarp/internal/sim"
	"dsarp/internal/store"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

// Options set the experiment scale and common system parameters.
type Options struct {
	PerCategory int // workloads per intensity category (paper: 20)
	Sensitivity int // intensive workloads for §6.2-6.4 (paper: 16)
	Cores       int
	Warmup      int64 // DRAM cycles
	Measure     int64 // DRAM cycles
	Seed        int64
	Densities   []timing.Density
	// Parallelism bounds how many simulations run concurrently: 0 (the
	// default) uses one worker per available CPU, 1 runs fully serial with
	// no goroutines, n > 1 uses n workers. Every setting produces
	// bit-identical tables: each simulation derives all state from its own
	// config and seed, and in-flight runs are deduplicated so experiments
	// still share cached results. Only the Progress callback order varies.
	Parallelism int
	// Engine selects the simulation run loop (default: the clock-skipping
	// event engine). Both engines produce bit-identical tables.
	Engine sim.Engine
	// Store, if non-nil, is a content-addressed result cache the runner
	// consults before simulating and writes each completed result to.
	// Results served from the store are byte-identical to fresh computes
	// (the key covers everything that determines them, plus
	// SchemaVersion), so a warm store only removes work: an interrupted
	// sweep resumes from its per-task results instead of restarting.
	Store *store.Store
	// SimTimeout, if positive, is a per-simulation wall-clock budget: a
	// computed run that exceeds it is aborted via sim.Config.Stop and
	// surfaces ErrSimTimeout instead of a result. Nothing partial reaches
	// the cache or store, so a retry (possibly on another fleet worker) is
	// clean. Cache and store hits are unaffected — the budget covers
	// simulation work, not lookups. Zero means unlimited (the default:
	// simulations are deterministic, so a timeout usually signals an
	// over-ambitious spec or a starved machine rather than a hang).
	SimTimeout time.Duration
	// Checkpoints makes computed simulations resumable when a Store is
	// configured: before simulating, the runner probes the store's
	// snapshot namespace for the deepest usable checkpoint of the spec's
	// prefix (see SimSpec.PrefixKey) and resumes from it; cold runs write
	// a warmup-boundary snapshot so any later run sharing the prefix —
	// the same spec, a measure-extension rerun, or a retry after a crash
	// or watchdog abort — skips the warmup entirely. Snapshots are pure
	// accelerators: a missing, corrupt, or version-mismatched one falls
	// back to a cold run, never to an error, and results are bit-identical
	// either way. Ignored without a Store.
	Checkpoints bool
	// CheckpointEvery, if positive (and Checkpoints is on), additionally
	// writes periodic snapshots every N DRAM cycles inside the measurement
	// window, bounding how much work an interrupted run loses to the tail
	// since its last checkpoint. Zero writes only the warmup-boundary
	// snapshot.
	CheckpointEvery int64
	// EphemeralResults bounds the runner's memory when a Store is
	// configured: completed results are NOT retained in the in-memory
	// cache once they are safely on disk — later hits re-read and decode
	// the store entry instead. In-flight dedup is unaffected. Intended
	// for long-lived daemons (dsarpd), which would otherwise accumulate
	// one sim.Result per unique spec ever served; ignored without a
	// Store, and a result whose store write fails is kept in memory so it
	// is never silently lost.
	EphemeralResults bool
	// Progress, if non-nil, is called after each completed simulation. It
	// is never called concurrently, but under parallelism the callback
	// order is completion order, not submission order.
	Progress func(done, total int, label string)
}

// Defaults returns a laptop-scale configuration: 10 workloads (2 per
// category), short measurement windows. Experiment shapes are stable at
// this scale; absolute percentages tighten with Paper().
func Defaults() Options {
	return Options{
		PerCategory: 2,
		Sensitivity: 3,
		Cores:       8,
		Warmup:      30_000,
		Measure:     120_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8, timing.Gb16, timing.Gb32},
	}
}

// Paper returns the paper-scale configuration: 100 workloads, 16
// sensitivity mixes, and a measurement window covering thousands of refresh
// intervals. Expect hours of runtime on one CPU.
func Paper() Options {
	o := Defaults()
	o.PerCategory = 20
	o.Sensitivity = 16
	o.Warmup = 200_000
	o.Measure = 2_000_000
	return o
}

// Runner executes and caches simulations. All methods are safe for
// concurrent use; the runner itself fans simulations out over
// Options.Parallelism workers.
type Runner struct {
	opts      Options
	mixes     []workload.Workload
	sensitive []workload.Workload

	mu         sync.Mutex
	cache      map[store.Key]sim.Result
	running    map[store.Key]*inflight[sim.Result] // deduplicates concurrent runs
	done       int
	totalGuess int

	simsRun   atomic.Int64 // simulations actually executed
	storeHits atomic.Int64 // results served from the on-disk store
	storeErrs atomic.Int64 // store writes that failed (results still returned)

	ckptWritten       atomic.Int64 // snapshots persisted to the store
	ckptWrittenBytes  atomic.Int64
	ckptRestored      atomic.Int64 // simulations started from a stored snapshot
	ckptRestoredBytes atomic.Int64

	// interrupted stops the worker pool from starting new simulations;
	// in-flight ones finish (and reach the store). See Interrupt.
	interrupted atomic.Bool

	// peerFetch, when set, is consulted on a local store miss before a
	// simulation starts. See SetPeerFetch.
	peerFetch atomic.Pointer[func(store.Key) ([]byte, bool)]
	// snapPublish, when set, receives every snapshot after it is
	// persisted locally. See SetSnapshotPublish.
	snapPublish atomic.Pointer[func(store.Key, []byte)]

	progressMu sync.Mutex // serializes the Progress callback
}

// inflight is a computation another worker is already performing; waiters
// block on done and then read res. If the computing worker panicked,
// panicked carries its panic value and waiters re-raise it instead of
// returning a zero result.
type inflight[T any] struct {
	done     chan struct{}
	res      T
	panicked any
}

// await blocks until the computation finishes and returns its result,
// re-raising the computing worker's panic if it had one.
func (fl *inflight[T]) await() T {
	<-fl.done
	if fl.panicked != nil {
		panic(fl.panicked)
	}
	return fl.res
}

// abort releases an inflight registration when the computation panics:
// deregister it so a later call can retry, record the panic for waiters,
// and wake them. Without this, waiters on the same key would block forever
// while the panic unwound past them.
func abort[T any, K comparable](r *Runner, m map[K]*inflight[T], key K, fl *inflight[T]) {
	if v := recover(); v != nil {
		r.mu.Lock()
		delete(m, key)
		r.mu.Unlock()
		fl.panicked = v
		close(fl.done)
		panic(v)
	}
}

// singleflight returns cache[key], computing it with fn exactly once across
// concurrent callers: the first caller runs fn, everyone else waits for its
// result (or its panic). fn's second return says whether to publish the
// value into the in-memory cache (false when the result is safely durable
// elsewhere and the runner runs with EphemeralResults). onStore, if
// non-nil, runs under the runner lock in the same critical section that
// publishes the result. The bool reports whether this caller did the
// computing.
func singleflight[K comparable, T any](r *Runner, cache map[K]T, running map[K]*inflight[T], key K, fn func() (T, bool), onStore func()) (T, bool) {
	r.mu.Lock()
	if v, ok := cache[key]; ok {
		r.mu.Unlock()
		return v, false
	}
	if fl, ok := running[key]; ok {
		r.mu.Unlock()
		return fl.await(), false
	}
	fl := &inflight[T]{done: make(chan struct{})}
	running[key] = fl
	r.mu.Unlock()
	defer abort(r, running, key, fl)

	v, keep := fn()

	r.mu.Lock()
	if keep {
		cache[key] = v
	}
	delete(running, key)
	if onStore != nil {
		onStore()
	}
	r.mu.Unlock()
	fl.res = v
	close(fl.done)
	return v, true
}

// NewRunner builds a Runner; workload mixes are derived deterministically
// from the options' seed.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:      opts,
		mixes:     workload.Mixes(opts.PerCategory, opts.Cores, opts.Seed),
		sensitive: workload.IntensiveMixes(opts.Sensitivity, opts.Cores, opts.Seed+1),
		cache:     map[store.Key]sim.Result{},
		running:   map[store.Key]*inflight[sim.Result]{},
	}
}

// parallelism resolves Options.Parallelism to a worker count.
func (r *Runner) parallelism() int {
	if r.opts.Parallelism > 0 {
		return r.opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0..n-1), fanning out over the runner's worker budget.
// Each call brings up its own workers, so nested use cannot deadlock; with
// Parallelism 1 (or a single task) it degenerates to a plain loop on the
// calling goroutine. A panic in fn is re-raised on the caller. After
// Interrupt, remaining tasks are skipped (their slots keep whatever zero
// values the caller preallocated).
func (r *Runner) forEach(n int, fn func(int)) {
	p := r.parallelism()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n && !r.interrupted.Load(); i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = v
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || r.interrupted.Load() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// Mixes returns the main 5-category workload set.
func (r *Runner) Mixes() []workload.Workload { return r.mixes }

// SensitivityMixes returns the all-intensive workloads of §6.2-6.4.
func (r *Runner) SensitivityMixes() []workload.Workload { return r.sensitive }

// run executes (or recalls) one simulation. variant tags non-default
// configurations; mod applies them. Concurrent calls with the same key
// share a single execution: the first caller computes, the rest wait.
func (r *Runner) run(wl workload.Workload, k core.Kind, d timing.Density, variant string, mod func(*sim.Config)) sim.Result {
	res, _, _ := r.runSpec(r.specFor(wl, k, d, variant), mod)
	return res
}

// RunSource says where a result came from.
type RunSource int

const (
	// SourceComputed: this call executed the simulation.
	SourceComputed RunSource = iota
	// SourceStore: loaded from the content-addressed store.
	SourceStore
	// SourceMemory: served from the runner's in-memory cache, or by
	// waiting on an identical in-flight run.
	SourceMemory
	// SourcePeer: fetched from another fleet worker's store through the
	// runner's peer-fetch hook (see SetPeerFetch) instead of simulating.
	SourcePeer
)

// String returns the wire spelling used by the serving layer.
func (s RunSource) String() string {
	switch s {
	case SourceComputed:
		return "computed"
	case SourceStore:
		return "store"
	case SourceMemory:
		return "memory"
	case SourcePeer:
		return "peer"
	default:
		return fmt.Sprintf("RunSource(%d)", int(s))
	}
}

// Cached reports whether the result was served without simulating.
func (s RunSource) Cached() bool { return s != SourceComputed }

// ErrSimTimeout marks a simulation aborted by the per-sim watchdog
// (Options.SimTimeout): the run exceeded its wall-clock budget and was
// interrupted before producing a result. The failure is retryable — the
// spec is intact and nothing partial was cached — so serving layers map
// it to a retryable status and fleet orchestrators re-dispatch.
var ErrSimTimeout = errors.New("exp: simulation exceeded its wall-clock budget")

// RunInfo describes how a RunSpecInfo call was satisfied.
type RunInfo struct {
	// Source says where the result came from.
	Source RunSource
	// ResumedFrom is the snapshot cycle the computation restarted from
	// when checkpoint reuse kicked in, 0 for a cold run (and for results
	// served without simulating).
	ResumedFrom int64
}

// RunSpec executes (or recalls) the simulation an external spec describes:
// the serving layer's entry point. The spec is normalized and validated
// first; config modifiers come from the variant registry only. Unlike the
// internal run path, failures surface as errors, not panics; a watchdog
// abort surfaces as an error wrapping ErrSimTimeout.
func (r *Runner) RunSpec(spec SimSpec) (sim.Result, RunSource, error) {
	res, info, err := r.RunSpecInfo(spec)
	return res, info.Source, err
}

// RunSpecInfo is RunSpec with run provenance: where the result came from
// and, for computed runs, the checkpoint cycle it resumed from.
func (r *Runner) RunSpecInfo(spec SimSpec) (res sim.Result, info RunInfo, err error) {
	spec, err = r.PrepareSpec(spec)
	if err != nil {
		return sim.Result{}, RunInfo{}, err
	}
	mod, err := VariantMod(spec.Variant)
	if err != nil {
		return sim.Result{}, RunInfo{}, err
	}
	defer func() {
		if v := recover(); v != nil {
			if e, ok := v.(error); ok && errors.Is(e, ErrSimTimeout) {
				err = e
				return
			}
			err = fmt.Errorf("exp: run %s: %v", spec.label(), v)
		}
	}()
	res, src, from := r.runSpec(spec, mod)
	return res, RunInfo{Source: src, ResumedFrom: from}, nil
}

// runSpec is the shared cached-execution path: in-memory cache and
// in-flight dedup first, then the on-disk store, then a real simulation
// whose result is published to both. Panics on simulation errors (the
// historical contract of run; RunSpec converts them back to errors).
func (r *Runner) runSpec(spec SimSpec, mod func(*sim.Config)) (sim.Result, RunSource, int64) {
	key := spec.Key()
	src := SourceMemory
	var resumedFrom int64
	var done int
	res, computed := singleflight(r, r.cache, r.running, key, func() (sim.Result, bool) {
		if data, ok := r.storeGet(key); ok {
			if res, err := DecodeResult(data); err == nil {
				src = SourceStore
				r.storeHits.Add(1)
				return res, !r.ephemeral()
			}
			// Undecodable content under a valid envelope: schema drift or
			// logical corruption. Fall through and recompute; the Put below
			// heals the entry.
		}
		if fetch := r.peerFetch.Load(); fetch != nil {
			if data, ok := (*fetch)(key); ok {
				if res, err := DecodeResult(data); err == nil {
					// Read-through repair: persist the raw payload bytes
					// locally (byte-identity preserved — no re-encode), so
					// the next membership-aware reader finds the entry where
					// the ring says to look.
					src = SourcePeer
					persisted := r.storePutRaw(key, data)
					return res, !r.ephemeral() || !persisted
				}
				// An undecodable peer payload is the fetcher's job to
				// reject; a hook that leaks one through falls back to a
				// clean recompute.
			}
		}
		cfg := spec.simConfig()
		if mod != nil {
			mod(&cfg)
		}
		var watchdog *time.Timer
		if r.opts.SimTimeout > 0 {
			stop := &atomic.Bool{}
			cfg.Stop = stop
			watchdog = time.AfterFunc(r.opts.SimTimeout, func() { stop.Store(true) })
		}
		res, from, err := r.simulate(spec, cfg)
		resumedFrom = from
		if watchdog != nil {
			watchdog.Stop()
		}
		if errors.Is(err, sim.ErrInterrupted) {
			// The panic value is an error wrapping ErrSimTimeout so RunSpec
			// (on the computing caller AND on singleflight waiters, which
			// re-raise it) can classify the failure as retryable.
			panic(fmt.Errorf("exp: %s: %w after %v", spec.label(), ErrSimTimeout, r.opts.SimTimeout))
		}
		if err != nil {
			panic(fmt.Sprintf("exp: %s: %v", spec.label(), err))
		}
		src = SourceComputed
		r.simsRun.Add(1)
		persisted := r.storePut(key, res)
		return res, !r.ephemeral() || !persisted
	}, func() {
		r.done++
		done = r.done
	})
	if computed {
		r.progress(done, spec.label())
	}
	return res, src, resumedFrom
}

// checkpointing reports whether the compute path should read and write
// snapshots.
func (r *Runner) checkpointing() bool {
	return r.opts.Checkpoints && r.opts.Store != nil
}

// checkpointCycles enumerates the snapshot cycles worth probing for a
// spec, deepest first: the periodic checkpoints strictly inside this run's
// measurement window (possibly written by an earlier run with a shorter —
// or longer — Measure; the prefix key is Measure-agnostic), then the
// warmup boundary.
func checkpointCycles(spec SimSpec, every int64) []int64 {
	var cycles []int64
	if every > 0 {
		end := spec.Warmup + spec.Measure
		for k := (end - 1 - spec.Warmup) / every; k >= 1; k-- {
			cycles = append(cycles, spec.Warmup+k*every)
		}
	}
	return append(cycles, spec.Warmup)
}

// simulate runs one simulation, resuming from the deepest stored snapshot
// of the spec's prefix when checkpointing is on. It returns the cycle the
// run resumed from (0 for a cold run). Any unusable snapshot — corrupt,
// version-mismatched, wrong shape — falls back to a shallower one and
// finally to a cold run; the result is bit-identical regardless of entry
// point, which the resume tests in internal/sim pin.
func (r *Runner) simulate(spec SimSpec, cfg sim.Config) (sim.Result, int64, error) {
	if !r.checkpointing() {
		res, err := sim.Run(cfg)
		return res, 0, err
	}
	every := r.opts.CheckpointEvery
	sink := func(cycle int64, data []byte) {
		pkey := spec.PrefixKey(cycle)
		if err := r.opts.Store.PutKind(pkey, store.KindSnapshot, data); err != nil {
			r.storeErrs.Add(1)
			return
		}
		r.ckptWritten.Add(1)
		r.ckptWrittenBytes.Add(int64(len(data)))
		if publish := r.snapPublish.Load(); publish != nil {
			(*publish)(pkey, data)
		}
	}
	for _, cycle := range checkpointCycles(spec, every) {
		pkey := spec.PrefixKey(cycle)
		data, ok := r.opts.Store.GetKind(pkey, store.KindSnapshot)
		if !ok {
			if fetch := r.peerFetch.Load(); fetch != nil {
				data, ok = (*fetch)(pkey)
			}
		}
		if !ok {
			continue
		}
		res, err := sim.ResumeRun(cfg, data, every, sink)
		if errors.Is(err, sim.ErrInterrupted) {
			return sim.Result{}, cycle, err
		}
		if err != nil {
			// Unusable snapshot (stale layout, corruption the container
			// caught, a shape mismatch): try a shallower entry point.
			continue
		}
		r.ckptRestored.Add(1)
		r.ckptRestoredBytes.Add(int64(len(data)))
		return res, cycle, nil
	}
	res, err := sim.RunWithCheckpoints(cfg, every, sink)
	return res, 0, err
}

// ephemeral reports whether completed results should be dropped from RAM
// (EphemeralResults is meaningful only with a durable store behind it).
func (r *Runner) ephemeral() bool {
	return r.opts.EphemeralResults && r.opts.Store != nil
}

// RunAll executes every spec through the cached/stored path, fanning out
// over the runner's worker budget, and returns the results keyed by spec
// content address — the input shape Experiment.Assemble consumes. Specs
// must be canonical (runner-built enumerations are; external ones go
// through PrepareSpec); variants resolve through the variant registry.
// Like run, it panics on invalid specs or simulation errors — but every
// variant is resolved up front, so a bad spec fails before the first
// simulation starts, not hours into a sweep. After Interrupt the partial
// map is withheld (ok=false): assembling from it would either panic on a
// missing key or render a misleading table.
func (r *Runner) RunAll(specs []SimSpec) (res Results, ok bool) {
	mods := make([]func(*sim.Config), len(specs))
	for i, s := range specs {
		mod, err := VariantMod(s.Variant)
		if err != nil {
			panic(err)
		}
		mods[i] = mod
	}
	out := make([]sim.Result, len(specs))
	r.forEach(len(specs), func(i int) {
		out[i], _, _ = r.runSpec(specs[i], mods[i])
	})
	if r.Interrupted() {
		return nil, false
	}
	res = make(Results, len(specs))
	for i := range specs {
		res.Add(specs[i], out[i])
	}
	return res, true
}

// storeGet consults the on-disk store, if configured.
func (r *Runner) storeGet(key store.Key) ([]byte, bool) {
	if r.opts.Store == nil {
		return nil, false
	}
	return r.opts.Store.Get(key)
}

// storePut publishes a computed result to the store, if configured,
// reporting whether the entry is durably on disk. A failed write is
// counted but not fatal: the result is still correct, the cache is just
// colder than it could be.
func (r *Runner) storePut(key store.Key, res sim.Result) bool {
	if r.opts.Store == nil {
		return false
	}
	data, err := EncodeResult(res)
	if err == nil {
		err = r.opts.Store.Put(key, data)
	}
	if err != nil {
		r.storeErrs.Add(1)
		return false
	}
	return true
}

// storePutRaw persists already-encoded result bytes (a verified peer
// payload) under key, reporting whether they are durably on disk.
func (r *Runner) storePutRaw(key store.Key, data []byte) bool {
	if r.opts.Store == nil {
		return false
	}
	if err := r.opts.Store.Put(key, data); err != nil {
		r.storeErrs.Add(1)
		return false
	}
	return true
}

// SetPeerFetch installs (or, with nil, removes) the runner's peer-fetch
// hook: on a local store miss the hook is consulted — inside the
// singleflight, so concurrent identical specs share one fetch — and a
// payload it returns is decoded, served as SourcePeer, and persisted
// locally instead of simulating. The serving layer installs the sharded
// warm-store fetcher here; the hook must already hash-verify what it
// returns. Safe to call concurrently with running simulations.
func (r *Runner) SetPeerFetch(fetch func(store.Key) ([]byte, bool)) {
	if fetch == nil {
		r.peerFetch.Store(nil)
		return
	}
	r.peerFetch.Store(&fetch)
}

// SetSnapshotPublish installs (or, with nil, removes) the runner's
// snapshot-publish hook: every checkpoint is handed to it (prefix key +
// container bytes) right after it is persisted locally. The serving
// layer installs the replica-push path here, so snapshots reach the
// prefix key's ring owners the same way computed results do and a retry
// on a different fleet worker can hedge-fetch them. The hook must not
// block: publication is replication, never part of the simulation path.
func (r *Runner) SetSnapshotPublish(publish func(store.Key, []byte)) {
	if publish == nil {
		r.snapPublish.Store(nil)
		return
	}
	r.snapPublish.Store(&publish)
}

// SimsRun returns how many simulations this runner actually executed
// (cache and store hits excluded).
func (r *Runner) SimsRun() int64 { return r.simsRun.Load() }

// StoreHits returns how many results were served from the on-disk store.
func (r *Runner) StoreHits() int64 { return r.storeHits.Load() }

// StoreErrs returns how many store writes failed.
func (r *Runner) StoreErrs() int64 { return r.storeErrs.Load() }

// CheckpointsWritten returns how many snapshots this runner persisted.
func (r *Runner) CheckpointsWritten() int64 { return r.ckptWritten.Load() }

// CheckpointBytesWritten returns the total snapshot bytes persisted.
func (r *Runner) CheckpointBytesWritten() int64 { return r.ckptWrittenBytes.Load() }

// CheckpointsRestored returns how many simulations started from a stored
// snapshot instead of cycle 0.
func (r *Runner) CheckpointsRestored() int64 { return r.ckptRestored.Load() }

// CheckpointBytesRestored returns the total snapshot bytes restored.
func (r *Runner) CheckpointBytesRestored() int64 { return r.ckptRestoredBytes.Load() }

// Interrupt makes the runner stop starting new simulations: worker pools
// drain after their current task, so every completed result has already
// reached the store and a later run with the same store resumes where this
// one stopped. Experiment methods still return, but their tables are
// meaningless after an interrupt — callers should discard them (see
// Interrupted).
func (r *Runner) Interrupt() { r.interrupted.Store(true) }

// Interrupted reports whether Interrupt was called.
func (r *Runner) Interrupted() bool { return r.interrupted.Load() }

func (r *Runner) progress(done int, label string) {
	if r.opts.Progress == nil {
		return
	}
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	r.opts.Progress(done, r.totalGuess, label)
}

// aloneIPC returns a benchmark's alone-run IPC: a single-core run on the
// full memory system with refresh disabled. Refresh-free alone IPCs make
// weighted-speedup ratios across mechanisms exact (the normalization
// constant cancels). Alone runs flow through the same cached path as every
// other simulation, so they are deduplicated, persisted to the store, and
// warmable over the serving layer like any other run.
func (r *Runner) aloneIPC(prof trace.Profile) float64 {
	res, _, _ := r.runSpec(r.AloneSpec(prof), nil)
	return res.IPC[0]
}

// aloneIPCs collects alone IPCs for every slot of a workload.
func (r *Runner) aloneIPCs(wl workload.Workload) []float64 {
	out := make([]float64, len(wl.Benchmarks))
	for i, b := range wl.Benchmarks {
		out[i] = r.aloneIPC(b)
	}
	return out
}

// WS returns the weighted speedup of a mechanism on a workload.
func (r *Runner) WS(wl workload.Workload, k core.Kind, d timing.Density, variant string, mod func(*sim.Config)) float64 {
	res := r.run(wl, k, d, variant, mod)
	return metrics.WeightedSpeedup(res.IPC, r.aloneIPCs(wl))
}

// wsSeries computes WS for every workload in ws, fanning the simulations
// out over the runner's workers.
func (r *Runner) wsSeries(ws []workload.Workload, k core.Kind, d timing.Density, variant string, mod func(*sim.Config)) []float64 {
	out := make([]float64, len(ws))
	r.forEach(len(ws), func(i int) {
		out[i] = r.WS(ws[i], k, d, variant, mod)
	})
	return out
}

// policyVariant builds a sim.Config modifier that swaps in a custom DARP
// configuration (ablations).
func darpVariant(opts core.DARPOptions) func(*sim.Config) {
	return func(c *sim.Config) {
		c.Policy = func(v sched.View, seed int64) sched.RefreshPolicy {
			return core.NewDARP(v, opts, seed)
		}
	}
}
