// Package exp regenerates every table and figure of the paper's evaluation
// (§3 and §6) plus the DESIGN.md ablations. Each experiment is a method on
// Runner; results of individual simulations are cached and shared across
// experiments so e.g. Fig. 12, Fig. 13 and Table 2 reuse the same runs.
//
// Scale is controlled by Options: the defaults are laptop-scale (see
// DESIGN.md substitution 2); Paper() restores the paper's 100-workload
// setup with long measurement windows.
package exp

import (
	"fmt"
	"sync"

	"dsarp/internal/core"
	"dsarp/internal/metrics"
	"dsarp/internal/sched"
	"dsarp/internal/sim"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

// Options set the experiment scale and common system parameters.
type Options struct {
	PerCategory int // workloads per intensity category (paper: 20)
	Sensitivity int // intensive workloads for §6.2-6.4 (paper: 16)
	Cores       int
	Warmup      int64 // DRAM cycles
	Measure     int64 // DRAM cycles
	Seed        int64
	Densities   []timing.Density
	// Progress, if non-nil, is called after each completed simulation.
	Progress func(done, total int, label string)
}

// Defaults returns a laptop-scale configuration: 10 workloads (2 per
// category), short measurement windows. Experiment shapes are stable at
// this scale; absolute percentages tighten with Paper().
func Defaults() Options {
	return Options{
		PerCategory: 2,
		Sensitivity: 3,
		Cores:       8,
		Warmup:      30_000,
		Measure:     120_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8, timing.Gb16, timing.Gb32},
	}
}

// Paper returns the paper-scale configuration: 100 workloads, 16
// sensitivity mixes, and a measurement window covering thousands of refresh
// intervals. Expect hours of runtime on one CPU.
func Paper() Options {
	o := Defaults()
	o.PerCategory = 20
	o.Sensitivity = 16
	o.Warmup = 200_000
	o.Measure = 2_000_000
	return o
}

// Runner executes and caches simulations.
type Runner struct {
	opts       Options
	mixes      []workload.Workload
	sensitive  []workload.Workload
	mu         sync.Mutex
	cache      map[runKey]sim.Result
	alone      map[string]float64 // benchmark name -> alone IPC
	done       int
	totalGuess int
}

type runKey struct {
	workload  string
	mech      core.Kind
	density   timing.Density
	retention timing.Retention
	variant   string // distinguishes AdjustTiming / geometry / policy variants
}

// NewRunner builds a Runner; workload mixes are derived deterministically
// from the options' seed.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:      opts,
		mixes:     workload.Mixes(opts.PerCategory, opts.Cores, opts.Seed),
		sensitive: workload.IntensiveMixes(opts.Sensitivity, opts.Cores, opts.Seed+1),
		cache:     map[runKey]sim.Result{},
		alone:     map[string]float64{},
	}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// Mixes returns the main 5-category workload set.
func (r *Runner) Mixes() []workload.Workload { return r.mixes }

// SensitivityMixes returns the all-intensive workloads of §6.2-6.4.
func (r *Runner) SensitivityMixes() []workload.Workload { return r.sensitive }

// baseConfig assembles the default simulation config for a workload.
func (r *Runner) baseConfig(wl workload.Workload, k core.Kind, d timing.Density) sim.Config {
	return sim.Config{
		Workload:  wl,
		Mechanism: k,
		Density:   d,
		Seed:      r.opts.Seed,
		Warmup:    r.opts.Warmup,
		Measure:   r.opts.Measure,
	}
}

// run executes (or recalls) one simulation. variant tags non-default
// configurations; mod applies them.
func (r *Runner) run(wl workload.Workload, k core.Kind, d timing.Density, variant string, mod func(*sim.Config)) sim.Result {
	key := runKey{workload: wl.Name, mech: k, density: d, variant: variant}
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res
	}
	r.mu.Unlock()

	cfg := r.baseConfig(wl, k, d)
	if mod != nil {
		mod(&cfg)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: %s/%v/%v/%s: %v", wl.Name, k, d, variant, err))
	}

	r.mu.Lock()
	r.cache[key] = res
	r.done++
	done := r.done
	r.mu.Unlock()
	if r.opts.Progress != nil {
		r.opts.Progress(done, r.totalGuess, fmt.Sprintf("%s %v %v %s", wl.Name, k, d, variant))
	}
	return res
}

// aloneIPC returns a benchmark's alone-run IPC: a single-core run on the
// full memory system with refresh disabled. Refresh-free alone IPCs make
// weighted-speedup ratios across mechanisms exact (the normalization
// constant cancels).
func (r *Runner) aloneIPC(prof trace.Profile) float64 {
	r.mu.Lock()
	if ipc, ok := r.alone[prof.Name]; ok {
		r.mu.Unlock()
		return ipc
	}
	r.mu.Unlock()

	wl := workload.Workload{Name: "alone." + prof.Name, Benchmarks: []trace.Profile{prof}}
	cfg := r.baseConfig(wl, core.KindNoRef, timing.Gb8)
	res, err := sim.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: alone run %s: %v", prof.Name, err))
	}
	ipc := res.IPC[0]
	r.mu.Lock()
	r.alone[prof.Name] = ipc
	r.mu.Unlock()
	return ipc
}

// aloneIPCs collects alone IPCs for every slot of a workload.
func (r *Runner) aloneIPCs(wl workload.Workload) []float64 {
	out := make([]float64, len(wl.Benchmarks))
	for i, b := range wl.Benchmarks {
		out[i] = r.aloneIPC(b)
	}
	return out
}

// WS returns the weighted speedup of a mechanism on a workload.
func (r *Runner) WS(wl workload.Workload, k core.Kind, d timing.Density, variant string, mod func(*sim.Config)) float64 {
	res := r.run(wl, k, d, variant, mod)
	return metrics.WeightedSpeedup(res.IPC, r.aloneIPCs(wl))
}

// wsSeries computes WS for every workload in ws.
func (r *Runner) wsSeries(ws []workload.Workload, k core.Kind, d timing.Density, variant string, mod func(*sim.Config)) []float64 {
	out := make([]float64, len(ws))
	for i, wl := range ws {
		out[i] = r.WS(wl, k, d, variant, mod)
	}
	return out
}

// policyVariant builds a sim.Config modifier that swaps in a custom DARP
// configuration (ablations).
func darpVariant(opts core.DARPOptions) func(*sim.Config) {
	return func(c *sim.Config) {
		c.Policy = func(v sched.View, seed int64) sched.RefreshPolicy {
			return core.NewDARP(v, opts, seed)
		}
	}
}
