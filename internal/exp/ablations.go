package exp

import (
	"fmt"
	"strings"

	"dsarp/internal/core"
	"dsarp/internal/sim"
	"dsarp/internal/stats"
	"dsarp/internal/timing"
)

// AblationRow compares a design choice (DESIGN.md §4) against its variant.
type AblationRow struct {
	Name        string
	Description string
	BaseWS      float64 // gmean WS with the paper's design choice
	VariantWS   float64 // gmean WS with the alternative
	DeltaPct    float64 // variant vs base, %
}

// AblationResult is the set of design-choice ablations at 32 Gb on the
// intensive workloads.
type AblationResult struct{ Rows []AblationRow }

// Ablations runs the DESIGN.md §4 ablation studies.
func (r *Runner) Ablations() AblationResult {
	d := timing.Gb32
	var out AblationResult

	gm := func(k core.Kind, variant string, mod func(*sim.Config)) float64 {
		return stats.Gmean(r.wsSeries(r.sensitive, k, d, variant, mod))
	}

	// D1 — refresh credit bounds: erratum [0,8] vs the original paper's
	// looser rule (effectively 16 postponements). The variant gains little
	// and, as the darp tests show, violates the JEDEC retention ceiling.
	base := gm(core.KindDARP, "", nil)
	loose := gm(core.KindDARP, "flex16", darpVariant(core.DARPOptions{WriteRefresh: true, MaxPostpone: 16}))
	out.Rows = append(out.Rows, row("D1 credit-bounds",
		"DARP postpone bound 8 (erratum) vs 16 (pre-erratum)", base, loose))

	// D2 — writeback-mode bank pick: min-pending vs random.
	randPick := gm(core.KindDARP, "randpick", darpVariant(core.DARPOptions{WriteRefresh: true, RandomWritePick: true}))
	out.Rows = append(out.Rows, row("D2 write-pick",
		"write-refresh picks min-pending bank vs random bank", base, randPick))

	// D3 — SARP power throttle: Eq. 1-3 inflation vs none (upper bound).
	baseDS := gm(core.KindDSARP, "", nil)
	noThrottle := gm(core.KindDSARP, "nothrottle", func(c *sim.Config) {
		c.AdjustTiming = func(p *timing.Params) {
			p.SARPThrottleABx1000 = 1000
			p.SARPThrottlePBx1000 = 1000
		}
	})
	out.Rows = append(out.Rows, row("D3 sarp-throttle",
		"DSARP with tFAW/tRRD inflation (paper) vs no inflation", baseDS, noThrottle))

	// D4 — page policy: closed-row (paper) vs open-row.
	openRow := gm(core.KindDSARP, "openrow", func(c *sim.Config) { c.OpenRow = true })
	out.Rows = append(out.Rows, row("D4 page-policy",
		"DSARP with closed-row (paper) vs open-row", baseDS, openRow))

	// D5 — idle-bank choice: random (Fig. 8) vs greedy largest-debt.
	greedy := gm(core.KindDARP, "greedy", darpVariant(core.DARPOptions{WriteRefresh: true, GreedyIdlePick: true}))
	out.Rows = append(out.Rows, row("D5 idle-pick",
		"out-of-order refresh picks random idle bank vs largest-debt", base, greedy))

	return out
}

func row(name, desc string, base, variant float64) AblationRow {
	return AblationRow{
		Name:        name,
		Description: desc,
		BaseWS:      base,
		VariantWS:   variant,
		DeltaPct:    stats.PctImprovement(variant / base),
	}
}

func (a AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (32Gb, intensive workloads):\n%-18s %9s %10s %8s  %s\n",
		"ablation", "base WS", "variant WS", "delta%", "description")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-18s %9.3f %10.3f %8.2f  %s\n",
			r.Name, r.BaseWS, r.VariantWS, r.DeltaPct, r.Description)
	}
	return b.String()
}
