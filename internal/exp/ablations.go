package exp

import (
	"fmt"
	"strings"

	"dsarp/internal/core"
	"dsarp/internal/stats"
	"dsarp/internal/timing"
)

// AblationRow compares a design choice (DESIGN.md §4) against its variant.
type AblationRow struct {
	Name        string
	Description string
	BaseWS      float64 // gmean WS with the paper's design choice
	VariantWS   float64 // gmean WS with the alternative
	DeltaPct    float64 // variant vs base, %
}

// AblationResult is the set of design-choice ablations at 32 Gb on the
// intensive workloads.
type AblationResult struct{ Rows []AblationRow }

// ablationCase is one (mechanism, variant) cell the ablation table draws
// from. The variant strings resolve through the variant registry
// (VariantMod), so the same runs are reachable from the HTTP fleet.
type ablationCase struct {
	kind    core.Kind
	variant string
}

func ablationCases() []ablationCase {
	return []ablationCase{
		{core.KindDARP, ""},
		{core.KindDARP, "flex16"},
		{core.KindDARP, "randpick"},
		{core.KindDSARP, ""},
		{core.KindDSARP, "nothrottle"},
		{core.KindDSARP, "openrow"},
		{core.KindDARP, "greedy"},
	}
}

func ablationSpecs(r *Runner) []SimSpec {
	l := newSpecList()
	d := timing.Gb32
	for _, c := range ablationCases() {
		for _, wl := range r.sensitive {
			l.addWS(r, wl, c.kind, d, c.variant)
		}
	}
	return l.list()
}

func assembleAblations(r *Runner, res Results) AblationResult {
	d := timing.Gb32
	var out AblationResult

	gm := func(k core.Kind, variant string) float64 {
		return stats.Gmean(res.wsSeries(r, r.sensitive, k, d, variant))
	}

	// D1 — refresh credit bounds: erratum [0,8] vs the original paper's
	// looser rule (effectively 16 postponements). The variant gains little
	// and, as the darp tests show, violates the JEDEC retention ceiling.
	base := gm(core.KindDARP, "")
	loose := gm(core.KindDARP, "flex16")
	out.Rows = append(out.Rows, row("D1 credit-bounds",
		"DARP postpone bound 8 (erratum) vs 16 (pre-erratum)", base, loose))

	// D2 — writeback-mode bank pick: min-pending vs random.
	randPick := gm(core.KindDARP, "randpick")
	out.Rows = append(out.Rows, row("D2 write-pick",
		"write-refresh picks min-pending bank vs random bank", base, randPick))

	// D3 — SARP power throttle: Eq. 1-3 inflation vs none (upper bound).
	baseDS := gm(core.KindDSARP, "")
	noThrottle := gm(core.KindDSARP, "nothrottle")
	out.Rows = append(out.Rows, row("D3 sarp-throttle",
		"DSARP with tFAW/tRRD inflation (paper) vs no inflation", baseDS, noThrottle))

	// D4 — page policy: closed-row (paper) vs open-row.
	openRow := gm(core.KindDSARP, "openrow")
	out.Rows = append(out.Rows, row("D4 page-policy",
		"DSARP with closed-row (paper) vs open-row", baseDS, openRow))

	// D5 — idle-bank choice: random (Fig. 8) vs greedy largest-debt.
	greedy := gm(core.KindDARP, "greedy")
	out.Rows = append(out.Rows, row("D5 idle-pick",
		"out-of-order refresh picks random idle bank vs largest-debt", base, greedy))

	return out
}

func assembleAblationsAny(r *Runner, res Results) fmt.Stringer { return assembleAblations(r, res) }

// Ablations runs the DESIGN.md §4 ablation studies.
func (r *Runner) Ablations() AblationResult {
	res, ok := r.RunAll(ablationSpecs(r))
	if !ok {
		return AblationResult{}
	}
	return assembleAblations(r, res)
}

func row(name, desc string, base, variant float64) AblationRow {
	return AblationRow{
		Name:        name,
		Description: desc,
		BaseWS:      base,
		VariantWS:   variant,
		DeltaPct:    stats.PctImprovement(variant / base),
	}
}

func (a AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (32Gb, intensive workloads):\n%-18s %9s %10s %8s  %s\n",
		"ablation", "base WS", "variant WS", "delta%", "description")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-18s %9.3f %10.3f %8.2f  %s\n",
			r.Name, r.BaseWS, r.VariantWS, r.DeltaPct, r.Description)
	}
	return b.String()
}
