package exp

import (
	"fmt"
	"strings"

	"dsarp/internal/core"
	"dsarp/internal/metrics"
	"dsarp/internal/stats"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// --- Table 2: max & gmean WS improvement over both baselines ---

// Table2Row is one (density, mechanism) entry.
type Table2Row struct {
	Density   timing.Density
	Mechanism core.Kind
	MaxPB     float64 // max % over REFpb
	MaxAB     float64
	GmeanPB   float64
	GmeanAB   float64
}

// Table2Result mirrors the paper's Table 2.
type Table2Result struct{ Rows []Table2Row }

// Table2Mechanisms are the rows of the paper's Table 2.
func Table2Mechanisms() []core.Kind {
	return []core.Kind{core.KindDARP, core.KindSARPpb, core.KindDSARP}
}

// Table2 computes maximum and average WS improvement of DARP, SARPpb and
// DSARP over REFpb and REFab at each density.
func (r *Runner) Table2() Table2Result {
	var out Table2Result
	for _, d := range r.opts.Densities {
		ab := r.wsSeries(r.mixes, core.KindREFab, d, "", nil)
		pb := r.wsSeries(r.mixes, core.KindREFpb, d, "", nil)
		for _, k := range Table2Mechanisms() {
			ws := r.wsSeries(r.mixes, k, d, "", nil)
			rAB := stats.Ratios(ws, ab)
			rPB := stats.Ratios(ws, pb)
			out.Rows = append(out.Rows, Table2Row{
				Density:   d,
				Mechanism: k,
				MaxPB:     stats.PctImprovement(stats.Max(rPB)),
				MaxAB:     stats.PctImprovement(stats.Max(rAB)),
				GmeanPB:   stats.PctImprovement(stats.Gmean(rPB)),
				GmeanAB:   stats.PctImprovement(stats.Gmean(rAB)),
			})
		}
	}
	return out
}

func (t Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — WS improvement (%%):\n%8s %-9s %9s %9s %9s %9s\n",
		"density", "mech", "max/PB", "max/AB", "gmean/PB", "gmean/AB")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%8s %-9s %9.1f %9.1f %9.1f %9.1f\n",
			row.Density, row.Mechanism, row.MaxPB, row.MaxAB, row.GmeanPB, row.GmeanAB)
	}
	return b.String()
}

// --- §6.1.2: DARP performance breakdown ---

// BreakdownRow is one density of the DARP component breakdown.
type BreakdownRow struct {
	Density timing.Density
	// OoOGmean/OoOMax: out-of-order refresh alone, % over REFab.
	OoOGmean, OoOMax float64
	// WRGmean: additional % from adding write-refresh parallelization.
	WRGmean float64
	// FullGmean: complete DARP % over REFab.
	FullGmean float64
}

// BreakdownResult is the §6.1.2 component analysis.
type BreakdownResult struct{ Rows []BreakdownRow }

// DARPBreakdown separates the gains of DARP's two components.
func (r *Runner) DARPBreakdown() BreakdownResult {
	var out BreakdownResult
	for _, d := range r.opts.Densities {
		ab := r.wsSeries(r.mixes, core.KindREFab, d, "", nil)
		ooo := r.wsSeries(r.mixes, core.KindDARPOoO, d, "", nil)
		full := r.wsSeries(r.mixes, core.KindDARP, d, "", nil)
		rowOoO := stats.Ratios(ooo, ab)
		out.Rows = append(out.Rows, BreakdownRow{
			Density:   d,
			OoOGmean:  stats.PctImprovement(stats.Gmean(rowOoO)),
			OoOMax:    stats.PctImprovement(stats.Max(rowOoO)),
			WRGmean:   stats.PctImprovement(stats.Gmean(stats.Ratios(full, ooo))),
			FullGmean: stats.PctImprovement(stats.Gmean(stats.Ratios(full, ab))),
		})
	}
	return out
}

func (t BreakdownResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.1.2 — DARP breakdown over REFab (%%):\n%8s %10s %9s %10s %10s\n",
		"density", "ooo gmean", "ooo max", "+wr gmean", "full gmean")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%8s %10.1f %9.1f %10.1f %10.1f\n",
			row.Density, row.OoOGmean, row.OoOMax, row.WRGmean, row.FullGmean)
	}
	return b.String()
}

// --- Table 3: core-count sensitivity ---

// Table3Row is one core count's DSARP-vs-REFab deltas.
type Table3Row struct {
	Cores          int
	WSImprove      float64
	HSImprove      float64
	MaxSlowdownRed float64
	EPARed         float64
}

// Table3Result mirrors the paper's Table 3 (32 Gb, intensive workloads).
type Table3Result struct{ Rows []Table3Row }

// Table3 evaluates DSARP vs REFab on 2/4/8-core systems.
func (r *Runner) Table3() Table3Result {
	var out Table3Result
	d := timing.Gb32
	for _, cores := range []int{2, 4, 8} {
		mixes := workload.IntensiveMixes(r.opts.Sensitivity, cores, r.opts.Seed+1)
		wsR := make([]float64, len(mixes))
		hsR := make([]float64, len(mixes))
		msR := make([]float64, len(mixes))
		epaR := make([]float64, len(mixes))
		r.forEach(len(mixes), func(i int) {
			wl := mixes[i]
			alone := r.aloneIPCs(wl)
			variant := fmt.Sprintf("cores%d", cores)
			resAB := r.run(wl, core.KindREFab, d, variant, nil)
			resDS := r.run(wl, core.KindDSARP, d, variant, nil)
			wsR[i] = metrics.WeightedSpeedup(resDS.IPC, alone) / metrics.WeightedSpeedup(resAB.IPC, alone)
			hsR[i] = metrics.HarmonicSpeedup(resDS.IPC, alone) / metrics.HarmonicSpeedup(resAB.IPC, alone)
			msR[i] = metrics.MaxSlowdown(resDS.IPC, alone) / metrics.MaxSlowdown(resAB.IPC, alone)
			epaR[i] = resDS.EnergyPerAccess() / resAB.EnergyPerAccess()
		})
		out.Rows = append(out.Rows, Table3Row{
			Cores:          cores,
			WSImprove:      stats.PctImprovement(stats.Gmean(wsR)),
			HSImprove:      stats.PctImprovement(stats.Gmean(hsR)),
			MaxSlowdownRed: (1 - stats.Gmean(msR)) * 100,
			EPARed:         (1 - stats.Gmean(epaR)) * 100,
		})
	}
	return out
}

func (t Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — DSARP vs REFab, 32Gb intensive (%%):\n%6s %8s %8s %12s %8s\n",
		"cores", "WS", "HS", "maxslow red", "EPA red")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%6d %8.1f %8.1f %12.1f %8.1f\n",
			row.Cores, row.WSImprove, row.HSImprove, row.MaxSlowdownRed, row.EPARed)
	}
	return b.String()
}

// --- Table 4: tFAW/tRRD sensitivity ---

// Table4Result mirrors the paper's Table 4: SARPpb over REFpb as the
// activation window shrinks or grows (tRRD scales as tFAW/5).
type Table4Result struct {
	TFAW    []int
	Improve []float64
}

// Table4 sweeps tFAW on the 32 Gb intensive workloads.
func (r *Runner) Table4() Table4Result {
	out := Table4Result{TFAW: []int{5, 10, 15, 20, 25, 30}}
	d := timing.Gb32
	for _, tfaw := range out.TFAW {
		// The modifier comes from the variant registry: the variant string
		// is the store key's only window into the modification, so there
		// must be exactly one definition of what it does.
		variant := fmt.Sprintf("tfaw%d", tfaw)
		mod, err := VariantMod(variant)
		if err != nil {
			panic(err)
		}
		ratios := make([]float64, len(r.sensitive))
		r.forEach(len(r.sensitive), func(i int) {
			wl := r.sensitive[i]
			sp := r.WS(wl, core.KindSARPpb, d, variant, mod)
			pb := r.WS(wl, core.KindREFpb, d, variant, mod)
			ratios[i] = sp / pb
		})
		out.Improve = append(out.Improve, stats.PctImprovement(stats.Gmean(ratios)))
	}
	return out
}

func (t Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — SARPpb over REFpb vs tFAW (32Gb, %%):\n%12s", "tFAW/tRRD")
	for _, f := range t.TFAW {
		fmt.Fprintf(&b, " %6d/%d", f, max(1, f/5))
	}
	fmt.Fprintf(&b, "\n%12s", "WS improve")
	for _, v := range t.Improve {
		fmt.Fprintf(&b, " %8.1f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// --- Table 5: subarrays-per-bank sensitivity ---

// Table5Result mirrors the paper's Table 5: SARPpb over REFpb as the number
// of subarrays per bank grows (0% at one subarray — no parallelization is
// possible — rising toward a plateau).
type Table5Result struct {
	Subarrays []int
	Improve   []float64
}

// Table5 sweeps subarrays per bank on the 32 Gb intensive workloads.
func (r *Runner) Table5() Table5Result {
	out := Table5Result{Subarrays: []int{1, 2, 4, 8, 16, 32, 64}}
	d := timing.Gb32
	for _, subs := range out.Subarrays {
		variant := fmt.Sprintf("subs%d", subs)
		mod, err := VariantMod(variant)
		if err != nil {
			panic(err)
		}
		ratios := make([]float64, len(r.sensitive))
		r.forEach(len(r.sensitive), func(i int) {
			wl := r.sensitive[i]
			sp := r.WS(wl, core.KindSARPpb, d, variant, mod)
			pb := r.WS(wl, core.KindREFpb, d, variant, mod)
			ratios[i] = sp / pb
		})
		out.Improve = append(out.Improve, stats.PctImprovement(stats.Gmean(ratios)))
	}
	return out
}

func (t Table5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5 — SARPpb over REFpb vs subarrays/bank (32Gb, %%):\n%12s", "subarrays")
	for _, s := range t.Subarrays {
		fmt.Fprintf(&b, " %6d", s)
	}
	fmt.Fprintf(&b, "\n%12s", "WS improve")
	for _, v := range t.Improve {
		fmt.Fprintf(&b, " %6.1f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// --- Table 6: 64 ms retention ---

// Table6Row is one density of the 64 ms retention study.
type Table6Row struct {
	Density timing.Density
	MaxPB   float64
	MaxAB   float64
	GmeanPB float64
	GmeanAB float64
}

// Table6Result mirrors the paper's Table 6: DSARP at 64 ms retention.
type Table6Result struct{ Rows []Table6Row }

// Table6 evaluates DSARP with tREFIab = 7.8 us (64 ms retention).
func (r *Runner) Table6() Table6Result {
	var out Table6Result
	mod, err := VariantMod("ret64")
	if err != nil {
		panic(err)
	}
	for _, d := range r.opts.Densities {
		ab := r.wsSeries(r.mixes, core.KindREFab, d, "ret64", mod)
		pb := r.wsSeries(r.mixes, core.KindREFpb, d, "ret64", mod)
		ds := r.wsSeries(r.mixes, core.KindDSARP, d, "ret64", mod)
		rAB := stats.Ratios(ds, ab)
		rPB := stats.Ratios(ds, pb)
		out.Rows = append(out.Rows, Table6Row{
			Density: d,
			MaxPB:   stats.PctImprovement(stats.Max(rPB)),
			MaxAB:   stats.PctImprovement(stats.Max(rAB)),
			GmeanPB: stats.PctImprovement(stats.Gmean(rPB)),
			GmeanAB: stats.PctImprovement(stats.Gmean(rAB)),
		})
	}
	return out
}

func (t Table6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6 — DSARP at 64ms retention (%%):\n%8s %9s %9s %9s %9s\n",
		"density", "max/PB", "max/AB", "gmean/PB", "gmean/AB")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%8s %9.1f %9.1f %9.1f %9.1f\n",
			row.Density, row.MaxPB, row.MaxAB, row.GmeanPB, row.GmeanAB)
	}
	return b.String()
}
