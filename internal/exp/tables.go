package exp

import (
	"fmt"
	"strings"

	"dsarp/internal/core"
	"dsarp/internal/metrics"
	"dsarp/internal/stats"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// Every table in this file follows the registry decomposition: a specs
// function enumerating the simulations it needs, an assemble function
// computing the table purely from a Results map, and the legacy Runner
// method as a thin run-everything-then-assemble wrapper. The assembly
// loops are kept line-for-line equivalent to the historical interleaved
// code, so the rendered tables are byte-identical on both paths.

// --- Table 2: max & gmean WS improvement over both baselines ---

// Table2Row is one (density, mechanism) entry.
type Table2Row struct {
	Density   timing.Density
	Mechanism core.Kind
	MaxPB     float64 // max % over REFpb
	MaxAB     float64
	GmeanPB   float64
	GmeanAB   float64
}

// Table2Result mirrors the paper's Table 2.
type Table2Result struct{ Rows []Table2Row }

// Table2Mechanisms are the rows of the paper's Table 2.
func Table2Mechanisms() []core.Kind {
	return []core.Kind{core.KindDARP, core.KindSARPpb, core.KindDSARP}
}

func table2Specs(r *Runner) []SimSpec {
	l := newSpecList()
	mechs := append([]core.Kind{core.KindREFab, core.KindREFpb}, Table2Mechanisms()...)
	for _, d := range r.opts.Densities {
		for _, k := range mechs {
			for _, wl := range r.mixes {
				l.addWS(r, wl, k, d, "")
			}
		}
	}
	return l.list()
}

func assembleTable2(r *Runner, res Results) Table2Result {
	var out Table2Result
	for _, d := range r.opts.Densities {
		ab := res.wsSeries(r, r.mixes, core.KindREFab, d, "")
		pb := res.wsSeries(r, r.mixes, core.KindREFpb, d, "")
		for _, k := range Table2Mechanisms() {
			ws := res.wsSeries(r, r.mixes, k, d, "")
			rAB := stats.Ratios(ws, ab)
			rPB := stats.Ratios(ws, pb)
			out.Rows = append(out.Rows, Table2Row{
				Density:   d,
				Mechanism: k,
				MaxPB:     stats.PctImprovement(stats.Max(rPB)),
				MaxAB:     stats.PctImprovement(stats.Max(rAB)),
				GmeanPB:   stats.PctImprovement(stats.Gmean(rPB)),
				GmeanAB:   stats.PctImprovement(stats.Gmean(rAB)),
			})
		}
	}
	return out
}

func assembleTable2Any(r *Runner, res Results) fmt.Stringer { return assembleTable2(r, res) }

// Table2 computes maximum and average WS improvement of DARP, SARPpb and
// DSARP over REFpb and REFab at each density.
func (r *Runner) Table2() Table2Result {
	res, ok := r.RunAll(table2Specs(r))
	if !ok {
		return Table2Result{}
	}
	return assembleTable2(r, res)
}

func (t Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — WS improvement (%%):\n%8s %-9s %9s %9s %9s %9s\n",
		"density", "mech", "max/PB", "max/AB", "gmean/PB", "gmean/AB")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%8s %-9s %9.1f %9.1f %9.1f %9.1f\n",
			row.Density, row.Mechanism, row.MaxPB, row.MaxAB, row.GmeanPB, row.GmeanAB)
	}
	return b.String()
}

// --- §6.1.2: DARP performance breakdown ---

// BreakdownRow is one density of the DARP component breakdown.
type BreakdownRow struct {
	Density timing.Density
	// OoOGmean/OoOMax: out-of-order refresh alone, % over REFab.
	OoOGmean, OoOMax float64
	// WRGmean: additional % from adding write-refresh parallelization.
	WRGmean float64
	// FullGmean: complete DARP % over REFab.
	FullGmean float64
}

// BreakdownResult is the §6.1.2 component analysis.
type BreakdownResult struct{ Rows []BreakdownRow }

func breakdownSpecs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, k := range []core.Kind{core.KindREFab, core.KindDARPOoO, core.KindDARP} {
			for _, wl := range r.mixes {
				l.addWS(r, wl, k, d, "")
			}
		}
	}
	return l.list()
}

func assembleBreakdown(r *Runner, res Results) BreakdownResult {
	var out BreakdownResult
	for _, d := range r.opts.Densities {
		ab := res.wsSeries(r, r.mixes, core.KindREFab, d, "")
		ooo := res.wsSeries(r, r.mixes, core.KindDARPOoO, d, "")
		full := res.wsSeries(r, r.mixes, core.KindDARP, d, "")
		rowOoO := stats.Ratios(ooo, ab)
		out.Rows = append(out.Rows, BreakdownRow{
			Density:   d,
			OoOGmean:  stats.PctImprovement(stats.Gmean(rowOoO)),
			OoOMax:    stats.PctImprovement(stats.Max(rowOoO)),
			WRGmean:   stats.PctImprovement(stats.Gmean(stats.Ratios(full, ooo))),
			FullGmean: stats.PctImprovement(stats.Gmean(stats.Ratios(full, ab))),
		})
	}
	return out
}

func assembleBreakdownAny(r *Runner, res Results) fmt.Stringer { return assembleBreakdown(r, res) }

// DARPBreakdown separates the gains of DARP's two components.
func (r *Runner) DARPBreakdown() BreakdownResult {
	res, ok := r.RunAll(breakdownSpecs(r))
	if !ok {
		return BreakdownResult{}
	}
	return assembleBreakdown(r, res)
}

func (t BreakdownResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.1.2 — DARP breakdown over REFab (%%):\n%8s %10s %9s %10s %10s\n",
		"density", "ooo gmean", "ooo max", "+wr gmean", "full gmean")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%8s %10.1f %9.1f %10.1f %10.1f\n",
			row.Density, row.OoOGmean, row.OoOMax, row.WRGmean, row.FullGmean)
	}
	return b.String()
}

// --- Table 3: core-count sensitivity ---

// Table3Row is one core count's DSARP-vs-REFab deltas.
type Table3Row struct {
	Cores          int
	WSImprove      float64
	HSImprove      float64
	MaxSlowdownRed float64
	EPARed         float64
}

// Table3Result mirrors the paper's Table 3 (32 Gb, intensive workloads).
type Table3Result struct{ Rows []Table3Row }

// table3CoreCounts are the paper's evaluated system sizes.
func table3CoreCounts() []int { return []int{2, 4, 8} }

// table3Mixes derives the intensive workload set for one core count.
func table3Mixes(r *Runner, cores int) []workload.Workload {
	return workload.IntensiveMixes(r.opts.Sensitivity, cores, r.opts.Seed+1)
}

func table3Specs(r *Runner) []SimSpec {
	l := newSpecList()
	d := timing.Gb32
	for _, cores := range table3CoreCounts() {
		variant := fmt.Sprintf("cores%d", cores)
		for _, wl := range table3Mixes(r, cores) {
			l.addWS(r, wl, core.KindREFab, d, variant)
			l.addWS(r, wl, core.KindDSARP, d, variant)
		}
	}
	return l.list()
}

func assembleTable3(r *Runner, res Results) Table3Result {
	var out Table3Result
	d := timing.Gb32
	for _, cores := range table3CoreCounts() {
		mixes := table3Mixes(r, cores)
		wsR := make([]float64, len(mixes))
		hsR := make([]float64, len(mixes))
		msR := make([]float64, len(mixes))
		epaR := make([]float64, len(mixes))
		for i, wl := range mixes {
			alone := res.aloneIPCs(r, wl)
			variant := fmt.Sprintf("cores%d", cores)
			resAB := res.get(r, wl, core.KindREFab, d, variant)
			resDS := res.get(r, wl, core.KindDSARP, d, variant)
			wsR[i] = metrics.WeightedSpeedup(resDS.IPC, alone) / metrics.WeightedSpeedup(resAB.IPC, alone)
			hsR[i] = metrics.HarmonicSpeedup(resDS.IPC, alone) / metrics.HarmonicSpeedup(resAB.IPC, alone)
			msR[i] = metrics.MaxSlowdown(resDS.IPC, alone) / metrics.MaxSlowdown(resAB.IPC, alone)
			epaR[i] = resDS.EnergyPerAccess() / resAB.EnergyPerAccess()
		}
		out.Rows = append(out.Rows, Table3Row{
			Cores:          cores,
			WSImprove:      stats.PctImprovement(stats.Gmean(wsR)),
			HSImprove:      stats.PctImprovement(stats.Gmean(hsR)),
			MaxSlowdownRed: (1 - stats.Gmean(msR)) * 100,
			EPARed:         (1 - stats.Gmean(epaR)) * 100,
		})
	}
	return out
}

func assembleTable3Any(r *Runner, res Results) fmt.Stringer { return assembleTable3(r, res) }

// Table3 evaluates DSARP vs REFab on 2/4/8-core systems.
func (r *Runner) Table3() Table3Result {
	res, ok := r.RunAll(table3Specs(r))
	if !ok {
		return Table3Result{}
	}
	return assembleTable3(r, res)
}

func (t Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — DSARP vs REFab, 32Gb intensive (%%):\n%6s %8s %8s %12s %8s\n",
		"cores", "WS", "HS", "maxslow red", "EPA red")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%6d %8.1f %8.1f %12.1f %8.1f\n",
			row.Cores, row.WSImprove, row.HSImprove, row.MaxSlowdownRed, row.EPARed)
	}
	return b.String()
}

// --- Table 4: tFAW/tRRD sensitivity ---

// Table4Result mirrors the paper's Table 4: SARPpb over REFpb as the
// activation window shrinks or grows (tRRD scales as tFAW/5).
type Table4Result struct {
	TFAW    []int
	Improve []float64
}

func table4TFAWs() []int { return []int{5, 10, 15, 20, 25, 30} }

func table4Specs(r *Runner) []SimSpec {
	l := newSpecList()
	d := timing.Gb32
	for _, tfaw := range table4TFAWs() {
		variant := fmt.Sprintf("tfaw%d", tfaw)
		for _, wl := range r.sensitive {
			l.addWS(r, wl, core.KindSARPpb, d, variant)
			l.addWS(r, wl, core.KindREFpb, d, variant)
		}
	}
	return l.list()
}

func assembleTable4(r *Runner, res Results) Table4Result {
	out := Table4Result{TFAW: table4TFAWs()}
	d := timing.Gb32
	for _, tfaw := range out.TFAW {
		variant := fmt.Sprintf("tfaw%d", tfaw)
		ratios := make([]float64, len(r.sensitive))
		for i, wl := range r.sensitive {
			sp := res.ws(r, wl, core.KindSARPpb, d, variant)
			pb := res.ws(r, wl, core.KindREFpb, d, variant)
			ratios[i] = sp / pb
		}
		out.Improve = append(out.Improve, stats.PctImprovement(stats.Gmean(ratios)))
	}
	return out
}

func assembleTable4Any(r *Runner, res Results) fmt.Stringer { return assembleTable4(r, res) }

// Table4 sweeps tFAW on the 32 Gb intensive workloads. The tfawN variants
// come from the variant registry: the variant string is the store key's
// only window into the modification, so there must be exactly one
// definition of what it does.
func (r *Runner) Table4() Table4Result {
	res, ok := r.RunAll(table4Specs(r))
	if !ok {
		return Table4Result{}
	}
	return assembleTable4(r, res)
}

func (t Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — SARPpb over REFpb vs tFAW (32Gb, %%):\n%12s", "tFAW/tRRD")
	for _, f := range t.TFAW {
		fmt.Fprintf(&b, " %6d/%d", f, max(1, f/5))
	}
	fmt.Fprintf(&b, "\n%12s", "WS improve")
	for _, v := range t.Improve {
		fmt.Fprintf(&b, " %8.1f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// --- Table 5: subarrays-per-bank sensitivity ---

// Table5Result mirrors the paper's Table 5: SARPpb over REFpb as the number
// of subarrays per bank grows (0% at one subarray — no parallelization is
// possible — rising toward a plateau).
type Table5Result struct {
	Subarrays []int
	Improve   []float64
}

func table5Subarrays() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

func table5Specs(r *Runner) []SimSpec {
	l := newSpecList()
	d := timing.Gb32
	for _, subs := range table5Subarrays() {
		variant := fmt.Sprintf("subs%d", subs)
		for _, wl := range r.sensitive {
			l.addWS(r, wl, core.KindSARPpb, d, variant)
			l.addWS(r, wl, core.KindREFpb, d, variant)
		}
	}
	return l.list()
}

func assembleTable5(r *Runner, res Results) Table5Result {
	out := Table5Result{Subarrays: table5Subarrays()}
	d := timing.Gb32
	for _, subs := range out.Subarrays {
		variant := fmt.Sprintf("subs%d", subs)
		ratios := make([]float64, len(r.sensitive))
		for i, wl := range r.sensitive {
			sp := res.ws(r, wl, core.KindSARPpb, d, variant)
			pb := res.ws(r, wl, core.KindREFpb, d, variant)
			ratios[i] = sp / pb
		}
		out.Improve = append(out.Improve, stats.PctImprovement(stats.Gmean(ratios)))
	}
	return out
}

func assembleTable5Any(r *Runner, res Results) fmt.Stringer { return assembleTable5(r, res) }

// Table5 sweeps subarrays per bank on the 32 Gb intensive workloads.
func (r *Runner) Table5() Table5Result {
	res, ok := r.RunAll(table5Specs(r))
	if !ok {
		return Table5Result{}
	}
	return assembleTable5(r, res)
}

func (t Table5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5 — SARPpb over REFpb vs subarrays/bank (32Gb, %%):\n%12s", "subarrays")
	for _, s := range t.Subarrays {
		fmt.Fprintf(&b, " %6d", s)
	}
	fmt.Fprintf(&b, "\n%12s", "WS improve")
	for _, v := range t.Improve {
		fmt.Fprintf(&b, " %6.1f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// --- Table 6: 64 ms retention ---

// Table6Row is one density of the 64 ms retention study.
type Table6Row struct {
	Density timing.Density
	MaxPB   float64
	MaxAB   float64
	GmeanPB float64
	GmeanAB float64
}

// Table6Result mirrors the paper's Table 6: DSARP at 64 ms retention.
type Table6Result struct{ Rows []Table6Row }

func table6Specs(r *Runner) []SimSpec {
	l := newSpecList()
	for _, d := range r.opts.Densities {
		for _, k := range []core.Kind{core.KindREFab, core.KindREFpb, core.KindDSARP} {
			for _, wl := range r.mixes {
				l.addWS(r, wl, k, d, "ret64")
			}
		}
	}
	return l.list()
}

func assembleTable6(r *Runner, res Results) Table6Result {
	var out Table6Result
	for _, d := range r.opts.Densities {
		ab := res.wsSeries(r, r.mixes, core.KindREFab, d, "ret64")
		pb := res.wsSeries(r, r.mixes, core.KindREFpb, d, "ret64")
		ds := res.wsSeries(r, r.mixes, core.KindDSARP, d, "ret64")
		rAB := stats.Ratios(ds, ab)
		rPB := stats.Ratios(ds, pb)
		out.Rows = append(out.Rows, Table6Row{
			Density: d,
			MaxPB:   stats.PctImprovement(stats.Max(rPB)),
			MaxAB:   stats.PctImprovement(stats.Max(rAB)),
			GmeanPB: stats.PctImprovement(stats.Gmean(rPB)),
			GmeanAB: stats.PctImprovement(stats.Gmean(rAB)),
		})
	}
	return out
}

func assembleTable6Any(r *Runner, res Results) fmt.Stringer { return assembleTable6(r, res) }

// Table6 evaluates DSARP with tREFIab = 7.8 us (64 ms retention).
func (r *Runner) Table6() Table6Result {
	res, ok := r.RunAll(table6Specs(r))
	if !ok {
		return Table6Result{}
	}
	return assembleTable6(r, res)
}

func (t Table6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6 — DSARP at 64ms retention (%%):\n%8s %9s %9s %9s %9s\n",
		"density", "max/PB", "max/AB", "gmean/PB", "gmean/AB")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%8s %9.1f %9.1f %9.1f %9.1f\n",
			row.Density, row.MaxPB, row.MaxAB, row.GmeanPB, row.GmeanAB)
	}
	return b.String()
}
