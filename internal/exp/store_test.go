package exp

import (
	"reflect"
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/sim"
	"dsarp/internal/store"
	"dsarp/internal/timing"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestResultJSONRoundTrip pins the byte-exactness foundation: a result
// decoded from its wire encoding is identical to the original, so every
// table derived from a stored result matches a fresh compute byte for
// byte.
func TestResultJSONRoundTrip(t *testing.T) {
	r := NewRunner(tinyOpts())
	res := r.run(r.Mixes()[0], core.KindDSARP, timing.Gb32, "", nil)
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", back, res)
	}
	if _, err := DecodeResult([]byte(`{"unknown_field":1}`)); err == nil {
		t.Error("foreign payload decoded without error")
	}
}

// TestWarmStoreRestart is the resume contract: a second runner over the
// same store reproduces the golden tables byte for byte without executing
// a single simulation.
func TestWarmStoreRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation golden run")
	}
	st := openStore(t)
	opts := goldenOpts()
	opts.Store = st

	cold := NewRunner(opts)
	table2 := cold.Table2().String()
	fig13 := cold.Fig13().String()
	if table2 != goldenTable2 || fig13 != goldenFig13 {
		t.Fatalf("store-backed cold run diverged from golden tables:\n%s\n%s", table2, fig13)
	}
	if cold.SimsRun() == 0 {
		t.Fatal("cold run executed no simulations")
	}

	warm := NewRunner(opts) // fresh in-memory cache, same store
	if got := warm.Table2().String(); got != goldenTable2 {
		t.Errorf("warm Table2 diverged:\n got:\n%s\nwant:\n%s", got, goldenTable2)
	}
	if got := warm.Fig13().String(); got != goldenFig13 {
		t.Errorf("warm Fig13 diverged:\n got:\n%s\nwant:\n%s", got, goldenFig13)
	}
	if n := warm.SimsRun(); n != 0 {
		t.Errorf("warm run executed %d simulations, want 0 (all from store)", n)
	}
	if warm.StoreHits() == 0 {
		t.Error("warm run recorded no store hits")
	}
}

// TestWarmStoreSurvivesPartialResults models an interrupted sweep: only
// some results are on disk, and the next run computes exactly the missing
// ones.
func TestWarmStoreSurvivesPartialResults(t *testing.T) {
	st := openStore(t)
	opts := tinyOpts()
	opts.Store = st
	r1 := NewRunner(opts)
	wl := r1.Mixes()[0]
	r1.run(wl, core.KindREFab, timing.Gb8, "", nil)
	if r1.SimsRun() != 1 {
		t.Fatalf("SimsRun = %d, want 1", r1.SimsRun())
	}

	r2 := NewRunner(opts)
	r2.run(wl, core.KindREFab, timing.Gb8, "", nil) // from store
	r2.run(wl, core.KindREFpb, timing.Gb8, "", nil) // missing: computes
	if r2.SimsRun() != 1 || r2.StoreHits() != 1 {
		t.Errorf("SimsRun=%d StoreHits=%d, want 1 and 1", r2.SimsRun(), r2.StoreHits())
	}
}

func TestSpecKeysDistinguishConfigs(t *testing.T) {
	r := NewRunner(tinyOpts())
	wl := r.Mixes()[0]
	base := r.specFor(wl, core.KindDSARP, timing.Gb8, "")
	keys := map[store.Key]string{base.Key(): "base"}
	for name, mut := range map[string]func(*SimSpec){
		"mech":    func(s *SimSpec) { s.Mechanism = core.KindREFab.String() },
		"density": func(s *SimSpec) { s.DensityGb = 32 },
		"variant": func(s *SimSpec) { s.Variant = "subs16" },
		"seed":    func(s *SimSpec) { s.Seed++ },
		"measure": func(s *SimSpec) { s.Measure++ },
		"warmup":  func(s *SimSpec) { s.Warmup++ },
		"engine":  func(s *SimSpec) { s.Engine = sim.EngineCycle.String() },
		"name":    func(s *SimSpec) { s.Name = "other" },
	} {
		spec := base
		mut(&spec)
		if prev, dup := keys[spec.Key()]; dup {
			t.Errorf("%s change collided with %s", name, prev)
		}
		keys[spec.Key()] = name
	}
}

// TestSpecNormalizationKeysByContent: a spec written with library
// benchmark names keys identically to the same spec with inline profiles,
// and runner defaults fill unset fields.
func TestSpecNormalizationKeysByContent(t *testing.T) {
	r := NewRunner(tinyOpts())
	byName, err := r.PrepareSpec(SimSpec{
		Name:           "pair",
		BenchmarkNames: []string{"stream.triad", "h264.encode"},
		Mechanism:      "DSARP",
		DensityGb:      8,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	inline, err := r.PrepareSpec(SimSpec{
		Name:       "pair",
		Benchmarks: byName.Benchmarks,
		Mechanism:  "DSARP",
		DensityGb:  8,
		Seed:       42,
		Warmup:     r.Options().Warmup,
		Measure:    r.Options().Measure,
		Engine:     r.Options().Engine.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if byName.Key() != inline.Key() {
		t.Error("name-referenced and inline specs key differently")
	}
	if byName.Warmup != r.Options().Warmup || byName.Measure != r.Options().Measure {
		t.Errorf("defaults not filled: %+v", byName)
	}
	// A warmup-free run is not expressible (sim.Config treats zero warmup
	// as unset and would silently substitute its own default): negative
	// spellings are rejected rather than mis-keyed.
	zero := byName
	zero.Warmup = -1
	if _, err := r.PrepareSpec(zero); err == nil {
		t.Error("negative warmup accepted; it cannot mean anything")
	}
}

func TestPrepareSpecRejectsBadInput(t *testing.T) {
	r := NewRunner(tinyOpts())
	good := SimSpec{Name: "w", BenchmarkNames: []string{"h264.encode"},
		Mechanism: "REFab", DensityGb: 8}
	if _, err := r.PrepareSpec(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, mut := range map[string]func(*SimSpec){
		"no-name":       func(s *SimSpec) { s.Name = "" },
		"no-benchmarks": func(s *SimSpec) { s.BenchmarkNames = nil },
		"bad-benchmark": func(s *SimSpec) { s.BenchmarkNames = []string{"nope"} },
		"bad-mechanism": func(s *SimSpec) { s.Mechanism = "MAGIC" },
		"bad-density":   func(s *SimSpec) { s.DensityGb = -8 },
		"bad-engine":    func(s *SimSpec) { s.Engine = "warp" },
		"bad-variant":   func(s *SimSpec) { s.Variant = "quantum9" },
		"bad-measure":   func(s *SimSpec) { s.Measure = -1 },
	} {
		spec := good
		mut(&spec)
		if _, err := r.PrepareSpec(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestVariantModsMatchInternalSweeps pins the registry to the modifiers
// the experiment code uses, so HTTP-submitted variants hit the same store
// keys AND the same configurations as the runner's own sweeps.
func TestVariantModsMatchInternalSweeps(t *testing.T) {
	check := func(variant string, want sim.Config) {
		t.Helper()
		mod, err := VariantMod(variant)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		var got sim.Config
		if mod != nil {
			mod(&got)
		}
		if variant == "tfaw15" {
			var p timing.Params
			got.AdjustTiming(&p)
			if p.TFAW != 15 || p.TRRD != 3 {
				t.Errorf("tfaw15 set TFAW=%d TRRD=%d", p.TFAW, p.TRRD)
			}
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s applied %+v, want %+v", variant, got, want)
		}
	}
	check("", sim.Config{})
	check("cores4", sim.Config{})
	check("ret64", sim.Config{Retention: timing.Retention64ms})
	check("subs16", sim.Config{SubarraysPerBank: 16})
	check("tfaw15", sim.Config{})
}

// TestRunSpecMatchesInternalRun: the serving-layer entry point returns the
// byte-identical result and shares the cache with the internal path.
func TestRunSpecMatchesInternalRun(t *testing.T) {
	r := NewRunner(tinyOpts())
	wl := r.Mixes()[0]
	direct := r.run(wl, core.KindREFab, timing.Gb8, "", nil)
	res, src, err := r.RunSpec(r.specFor(wl, core.KindREFab, timing.Gb8, ""))
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceMemory {
		t.Errorf("source = %v, want memory (internal run already cached it)", src)
	}
	if !reflect.DeepEqual(direct, res) {
		t.Error("RunSpec result differs from internal run")
	}
	if _, _, err := r.RunSpec(SimSpec{Name: "broken"}); err == nil {
		t.Error("invalid spec did not error")
	}
}

// TestEphemeralResultsBoundMemory: with EphemeralResults and a store, a
// completed result leaves no in-memory cache entry — later hits re-read
// the disk entry (one sim, then store hits), so a long-lived daemon's RAM
// does not grow with the number of unique specs served.
func TestEphemeralResultsBoundMemory(t *testing.T) {
	opts := tinyOpts()
	opts.Store = openStore(t)
	opts.EphemeralResults = true
	r := NewRunner(opts)
	wl := r.Mixes()[0]
	first := r.run(wl, core.KindREFab, timing.Gb8, "", nil)
	if got := r.run(wl, core.KindREFab, timing.Gb8, "", nil); !reflect.DeepEqual(first, got) {
		t.Error("store re-read diverged from the computed result")
	}
	if n := r.SimsRun(); n != 1 {
		t.Errorf("SimsRun = %d, want 1 (second call must hit the store, not recompute)", n)
	}
	if n := r.StoreHits(); n != 1 {
		t.Errorf("StoreHits = %d, want 1", n)
	}
	r.mu.Lock()
	cached := len(r.cache)
	r.mu.Unlock()
	if cached != 0 {
		t.Errorf("in-memory cache holds %d results under EphemeralResults, want 0", cached)
	}

	// Without a store the flag is ignored: dropping the only copy would
	// force recomputes.
	opts2 := tinyOpts()
	opts2.EphemeralResults = true
	r2 := NewRunner(opts2)
	r2.run(wl, core.KindREFab, timing.Gb8, "", nil)
	r2.run(wl, core.KindREFab, timing.Gb8, "", nil)
	if n := r2.SimsRun(); n != 1 {
		t.Errorf("store-less EphemeralResults recomputed: SimsRun = %d, want 1", n)
	}
}

func TestInterruptStopsScheduling(t *testing.T) {
	for _, par := range []int{1, 4} {
		opts := tinyOpts()
		opts.Parallelism = par
		r := NewRunner(opts)
		r.Interrupt()
		r.Table2() // must return promptly without simulating
		if n := r.SimsRun(); n != 0 {
			t.Errorf("Parallelism=%d: interrupted runner still ran %d simulations", par, n)
		}
		if !r.Interrupted() {
			t.Error("Interrupted() lost the flag")
		}
	}
}
