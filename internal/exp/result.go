package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"dsarp/internal/cache"
	"dsarp/internal/cpu"
	"dsarp/internal/dram"
	"dsarp/internal/power"
	"dsarp/internal/sched"
	"dsarp/internal/sim"
)

// resultWire mirrors sim.Result field for field with a JSON-safe error
// representation. Go's encoding/json prints float64s in their shortest
// exactly-round-tripping form, so a decoded result is bit-identical to the
// encoded one — the property the byte-exact serving guarantee rests on
// (pinned by TestResultJSONRoundTrip and the warm-store golden tests).
type resultWire struct {
	Mechanism string `json:"mechanism"`
	Workload  string `json:"workload"`

	IPC   []float64     `json:"ipc"`
	MPKI  []float64     `json:"mpki"`
	Cores []cpu.Stats   `json:"cores"`
	Cache []cache.Stats `json:"cache"`

	DRAM   dram.Stats      `json:"dram"`
	Sched  sched.Stats     `json:"sched"`
	Energy power.Breakdown `json:"energy"`

	MeasuredCycles int64 `json:"measured_cycles"`
	SteppedCycles  int64 `json:"stepped_cycles"`

	CheckErr string `json:"check_err,omitempty"`
}

// EncodeResult serializes a simulation result for the store and the wire.
func EncodeResult(r sim.Result) ([]byte, error) {
	w := resultWire{
		Mechanism:      r.Mechanism,
		Workload:       r.Workload,
		IPC:            r.IPC,
		MPKI:           r.MPKI,
		Cores:          r.Cores,
		Cache:          r.Cache,
		DRAM:           r.DRAM,
		Sched:          r.Sched,
		Energy:         r.Energy,
		MeasuredCycles: r.MeasuredCycles,
		SteppedCycles:  r.SteppedCycles,
	}
	if r.CheckErr != nil {
		w.CheckErr = r.CheckErr.Error()
	}
	return json.Marshal(w)
}

// DecodeResult is the inverse of EncodeResult. Unknown fields are an
// error: a payload written by a different wire format must read as
// corrupt, not as a silently-partial result.
func DecodeResult(data []byte) (sim.Result, error) {
	var w resultWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return sim.Result{}, fmt.Errorf("exp: decode result: %w", err)
	}
	r := sim.Result{
		Mechanism:      w.Mechanism,
		Workload:       w.Workload,
		IPC:            w.IPC,
		MPKI:           w.MPKI,
		Cores:          w.Cores,
		Cache:          w.Cache,
		DRAM:           w.DRAM,
		Sched:          w.Sched,
		Energy:         w.Energy,
		MeasuredCycles: w.MeasuredCycles,
		SteppedCycles:  w.SteppedCycles,
	}
	if w.CheckErr != "" {
		r.CheckErr = errors.New(w.CheckErr)
	}
	return r, nil
}
