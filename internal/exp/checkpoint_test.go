package exp

import (
	"errors"
	"os"
	"reflect"
	"testing"
	"time"

	"dsarp/internal/core"
	"dsarp/internal/store"
	"dsarp/internal/timing"
)

func checkpointOpts(t *testing.T) Options {
	opts := tinyOpts()
	opts.Store = openStore(t)
	opts.Checkpoints = true
	opts.CheckpointEvery = 10_000
	return opts
}

// dropResultEntry removes a result from the store so the compute path runs
// again while the snapshot namespace stays warm.
func dropResultEntry(t *testing.T, st *store.Store, key store.Key) {
	t.Helper()
	if _, ok := st.Get(key); !ok {
		t.Fatal("result entry missing before drop")
	}
	if err := os.Remove(st.EntryPath(key)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); ok {
		t.Fatal("result entry still served after drop")
	}
}

// TestCheckpointWriteAndSelfResume: a cold checkpointed run persists its
// warmup-boundary and periodic snapshots; a fresh runner over the same
// store resumes the identical spec from the deepest one and produces a
// bit-identical result while skipping the shared prefix.
func TestCheckpointWriteAndSelfResume(t *testing.T) {
	opts := checkpointOpts(t)
	cold := NewRunner(opts)
	wl := cold.Mixes()[0]
	spec := cold.specFor(wl, core.KindDSARP, timing.Gb8, "")
	want, info, err := cold.RunSpecInfo(spec)
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != SourceComputed || info.ResumedFrom != 0 {
		t.Fatalf("cold run info = %+v", info)
	}
	// Warmup boundary at 10k plus periodic snapshots at 20k, 30k, 40k
	// (strictly inside [10k, 50k)).
	if n := cold.CheckpointsWritten(); n != 4 {
		t.Errorf("CheckpointsWritten = %d, want 4", n)
	}
	if cold.CheckpointBytesWritten() <= 0 {
		t.Error("no snapshot bytes accounted")
	}
	if st := opts.Store.Stats(); st.SnapshotEntries != 4 {
		t.Errorf("store snapshot entries = %d, want 4", st.SnapshotEntries)
	}

	// The result itself is on disk, so a rerun is a plain store hit.
	warm := NewRunner(opts)
	got, winfo, err := warm.RunSpecInfo(spec)
	if err != nil || winfo.Source != SourceStore {
		t.Fatalf("warm result lookup: %+v, %v", winfo, err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("store-served result diverged")
	}

	// Force the compute path by removing only the result entry: the
	// simulation must restart from the deepest snapshot, not cycle 0.
	fresh := NewRunner(opts)
	dropResultEntry(t, opts.Store, spec.Key())
	got, info, err = fresh.RunSpecInfo(spec)
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != SourceComputed {
		t.Fatalf("source = %v, want computed", info.Source)
	}
	if deepest := spec.Warmup + 3*opts.CheckpointEvery; info.ResumedFrom != deepest {
		t.Errorf("resumed from cycle %d, want deepest checkpoint %d", info.ResumedFrom, deepest)
	}
	if n := fresh.CheckpointsRestored(); n != 1 {
		t.Errorf("CheckpointsRestored = %d, want 1", n)
	}
	if fresh.CheckpointBytesRestored() <= 0 {
		t.Error("no restored snapshot bytes accounted")
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("resumed result diverged:\n got:  %+v\n want: %+v", got, want)
	}
}

// TestCheckpointMeasureExtension: a short-measure run's snapshots
// accelerate a longer-measure rerun of the otherwise-identical spec — the
// prefix key zeroes Measure — and the extended result is bit-identical to
// a cold extended run.
func TestCheckpointMeasureExtension(t *testing.T) {
	opts := checkpointOpts(t)
	short := NewRunner(opts)
	wl := short.Mixes()[0]
	shortSpec := short.specFor(wl, core.KindREFpb, timing.Gb8, "")
	if _, _, err := short.RunSpecInfo(shortSpec); err != nil {
		t.Fatal(err)
	}
	if short.CheckpointsWritten() == 0 {
		t.Fatal("short run wrote no snapshots")
	}

	longSpec := shortSpec
	longSpec.Measure = shortSpec.Measure + 30_000

	// Cold reference for the long window, computed checkpoint-free.
	coldRef, info, err := NewRunner(tinyOpts()).RunSpecInfo(longSpec)
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 0 {
		t.Fatalf("checkpoint-free runner resumed from %d", info.ResumedFrom)
	}

	long := NewRunner(opts)
	got, info, err := long.RunSpecInfo(longSpec)
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != SourceComputed {
		t.Fatalf("source = %v, want computed (different Measure, different result key)", info.Source)
	}
	if info.ResumedFrom <= shortSpec.Warmup {
		t.Errorf("resumed from %d, want a mid-measure checkpoint past warmup %d",
			info.ResumedFrom, shortSpec.Warmup)
	}
	if !reflect.DeepEqual(coldRef, got) {
		t.Errorf("measure-extension result diverged from cold long run:\n got:  %+v\n want: %+v", got, coldRef)
	}
}

// TestCheckpointSurvivesWatchdogAbort: a watchdog-aborted run leaves the
// store's snapshots behind, so the retry resumes mid-run instead of from
// cycle 0 — the "lose only the tail" contract behind fleet retries.
func TestCheckpointSurvivesWatchdogAbort(t *testing.T) {
	opts := checkpointOpts(t)
	healthy := NewRunner(opts)
	wl := healthy.Mixes()[0]
	spec := healthy.specFor(wl, core.KindREFab, timing.Gb8, "")
	if _, _, err := healthy.RunSpecInfo(spec); err != nil {
		t.Fatal(err)
	}

	// A measure-extended rerun under a vanishing budget: it resumes from
	// the short run's snapshots, then the watchdog kills it long before
	// the 2M-cycle window completes.
	longSpec := spec
	longSpec.Measure = 2_000_000
	abortOpts := opts
	abortOpts.SimTimeout = time.Nanosecond
	aborting := NewRunner(abortOpts)
	if _, _, err := aborting.RunSpecInfo(longSpec); !errors.Is(err, ErrSimTimeout) {
		t.Fatalf("vanishing budget = %v, want ErrSimTimeout", err)
	}
	if _, ok := opts.Store.Get(longSpec.Key()); ok {
		t.Fatal("aborted run leaked a result into the store")
	}

	// The retry (a tractable extension of the same prefix) resumes from
	// whatever checkpoints survive — at least the healthy run's — instead
	// of restarting at cycle 0, and stays bit-exact against a cold run.
	retrySpec := spec
	retrySpec.Measure = 100_000
	want, _, err := NewRunner(tinyOpts()).RunSpecInfo(retrySpec)
	if err != nil {
		t.Fatal(err)
	}
	retry := NewRunner(opts)
	got, info, err := retry.RunSpecInfo(retrySpec)
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom < spec.Warmup+3*opts.CheckpointEvery {
		t.Errorf("retry resumed from %d; the healthy run's deepest checkpoint %d should have survived",
			info.ResumedFrom, spec.Warmup+3*opts.CheckpointEvery)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("retried result diverged from a cold run")
	}
}

// TestCheckpointFallsBackOnCorruptSnapshot: a damaged snapshot entry is
// skipped in favor of the next-deepest intact one — never an error, never
// a wrong result.
func TestCheckpointFallsBackOnCorruptSnapshot(t *testing.T) {
	opts := checkpointOpts(t)
	r1 := NewRunner(opts)
	wl := r1.Mixes()[0]
	spec := r1.specFor(wl, core.KindElastic, timing.Gb8, "")
	want, _, err := r1.RunSpecInfo(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the deepest snapshot in place: flip one payload byte and
	// rewrite it through the store, so the store's own envelope verifies
	// and the snap container must catch the damage.
	deepest := spec.Warmup + 3*opts.CheckpointEvery
	pkey := spec.PrefixKey(deepest)
	data, ok := opts.Store.GetKind(pkey, store.KindSnapshot)
	if !ok {
		t.Fatal("deepest snapshot missing")
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x01
	if err := opts.Store.PutKind(pkey, store.KindSnapshot, bad); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(opts)
	dropResultEntry(t, opts.Store, spec.Key())
	got, info, err := r2.RunSpecInfo(spec)
	if err != nil {
		t.Fatal(err)
	}
	if next := spec.Warmup + 2*opts.CheckpointEvery; info.ResumedFrom != next {
		t.Errorf("resumed from %d, want the next-deepest intact checkpoint %d",
			info.ResumedFrom, next)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("fallback result diverged")
	}
}

// TestPrefixKeySharing pins the exact-mode sharing rule: only Measure is
// outside the prefix hash; every other field (and the snapshot cycle)
// changes the key.
func TestPrefixKeySharing(t *testing.T) {
	r := NewRunner(tinyOpts())
	wl := r.Mixes()[0]
	base := r.specFor(wl, core.KindDSARP, timing.Gb8, "")

	other := base
	other.Measure = base.Measure * 3
	if base.PrefixKey(10_000) != other.PrefixKey(10_000) {
		t.Error("Measure change altered the prefix key; measure-extension sharing broken")
	}
	if base.Key() == other.Key() {
		t.Error("Measure change did not alter the result key")
	}
	if base.PrefixKey(10_000) == base.PrefixKey(20_000) {
		t.Error("cycle not folded into the prefix key")
	}
	if base.PrefixKey(10_000) == base.Key() {
		t.Error("prefix key collided with the result key")
	}
	for name, mut := range map[string]func(*SimSpec){
		"mech":    func(s *SimSpec) { s.Mechanism = core.KindREFab.String() },
		"density": func(s *SimSpec) { s.DensityGb = 32 },
		"variant": func(s *SimSpec) { s.Variant = "subs16" },
		"seed":    func(s *SimSpec) { s.Seed++ },
		"warmup":  func(s *SimSpec) { s.Warmup++ },
		"engine":  func(s *SimSpec) { s.Engine = "cycle" },
	} {
		spec := base
		mut(&spec)
		if spec.PrefixKey(10_000) == base.PrefixKey(10_000) {
			t.Errorf("%s change did not alter the prefix key", name)
		}
	}
}
