package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dsarp/internal/core"
	"dsarp/internal/metrics"
	"dsarp/internal/sim"
	"dsarp/internal/store"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// Results maps a spec's content address to its simulation result: the pure
// input of every Assemble function. The map can be filled from any source —
// a local runner, the on-disk store, or job outcomes fetched from a fleet
// of dsarpd workers — and the assembled table is byte-identical regardless.
type Results map[store.Key]sim.Result

// Add records one result under its spec's key.
func (res Results) Add(s SimSpec, r sim.Result) { res[s.Key()] = r }

// mustGet returns the result for a spec, panicking with a descriptive
// message when it is missing. Experiment.Assemble converts the panic into
// an error, so an incomplete result set reads as "missing result for ...",
// not as a silently wrong table.
func (res Results) mustGet(s SimSpec) sim.Result {
	if r, ok := res[s.Key()]; ok {
		return r
	}
	panic(fmt.Sprintf("exp: missing result for %s (key %s)", s.label(), s.Key()))
}

// get looks up the result of one of the runner's canonical runs.
func (res Results) get(r *Runner, wl workload.Workload, k core.Kind, d timing.Density, variant string) sim.Result {
	return res.mustGet(r.specFor(wl, k, d, variant))
}

// aloneIPCs mirrors Runner.aloneIPCs against the result map.
func (res Results) aloneIPCs(r *Runner, wl workload.Workload) []float64 {
	out := make([]float64, len(wl.Benchmarks))
	for i, b := range wl.Benchmarks {
		out[i] = res.mustGet(r.AloneSpec(b)).IPC[0]
	}
	return out
}

// ws mirrors Runner.WS against the result map: the weighted speedup of a
// mechanism on a workload, normalized by the workload's alone runs.
func (res Results) ws(r *Runner, wl workload.Workload, k core.Kind, d timing.Density, variant string) float64 {
	return metrics.WeightedSpeedup(res.get(r, wl, k, d, variant).IPC, res.aloneIPCs(r, wl))
}

// wsSeries mirrors Runner.wsSeries against the result map.
func (res Results) wsSeries(r *Runner, ws []workload.Workload, k core.Kind, d timing.Density, variant string) []float64 {
	out := make([]float64, len(ws))
	for i := range ws {
		out[i] = res.ws(r, ws[i], k, d, variant)
	}
	return out
}

// Experiment is one published artifact of the reproduction — a table or
// figure — in declarative form: a pure enumeration of the simulations it
// needs and a pure assembly of its rendered result from their outcomes.
// Between the two sits any execution strategy a caller likes: the runner's
// local worker pool (the legacy Runner methods), the HTTP sweep machinery
// (POST /v1/experiments/{name}), or a client splitting the specs across a
// fleet of dsarpd workers and assembling locally.
type Experiment struct {
	// Name is the registry key ("table2", "fig13", ...), matching the
	// historical cmd/experiments -run spellings.
	Name string
	// Title is a one-line human description.
	Title string

	specs    func(*Runner) []SimSpec
	assemble func(*Runner, Results) fmt.Stringer
}

// Specs enumerates every simulation the experiment needs, deduplicated, in
// a deterministic order. The runner supplies only scale and workload
// context (options, mixes); no simulation runs.
func (e Experiment) Specs(r *Runner) []SimSpec { return e.specs(r) }

// Assemble renders the experiment from a result map holding (at least)
// every spec the experiment enumerates. It runs no simulations; a missing
// or undecodable result surfaces as an error. The returned value is the
// same concrete XResult type the corresponding legacy Runner method
// returns, so String() output is byte-identical across the two paths.
func (e Experiment) Assemble(r *Runner, res Results) (out fmt.Stringer, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("exp: assemble %s: %v", e.Name, v)
		}
	}()
	return e.assemble(r, res), nil
}

// registry holds every experiment in the canonical presentation order of
// cmd/experiments (the paper's own ordering of tables and figures).
var registry = []Experiment{
	{Name: "fig5", Title: "Fig. 5 — tRFCab scaling trend", specs: fig5Specs, assemble: assembleFig5Any},
	{Name: "fig6", Title: "Fig. 6 — REFab performance loss by intensity", specs: fig6Specs, assemble: assembleFig6Any},
	{Name: "fig7", Title: "Fig. 7 — REFab vs REFpb performance loss", specs: fig7Specs, assemble: assembleFig7Any},
	{Name: "fig12", Title: "Fig. 12 — sorted per-workload improvement curves", specs: fig12AllSpecs, assemble: assembleFig12SetAny},
	{Name: "table2", Title: "Table 2 — max & gmean WS improvement", specs: table2Specs, assemble: assembleTable2Any},
	{Name: "fig13", Title: "Fig. 13 — average WS improvement, all mechanisms", specs: fig13Specs, assemble: assembleFig13Any},
	{Name: "breakdown", Title: "§6.1.2 — DARP component breakdown", specs: breakdownSpecs, assemble: assembleBreakdownAny},
	{Name: "fig14", Title: "Fig. 14 — DRAM energy per access", specs: fig14Specs, assemble: assembleFig14Any},
	{Name: "fig15", Title: "Fig. 15 — DSARP improvement by memory intensity", specs: fig15Specs, assemble: assembleFig15Any},
	{Name: "table3", Title: "Table 3 — core-count sensitivity", specs: table3Specs, assemble: assembleTable3Any},
	{Name: "table4", Title: "Table 4 — tFAW/tRRD sensitivity", specs: table4Specs, assemble: assembleTable4Any},
	{Name: "table5", Title: "Table 5 — subarrays-per-bank sensitivity", specs: table5Specs, assemble: assembleTable5Any},
	{Name: "table6", Title: "Table 6 — DSARP at 64 ms retention", specs: table6Specs, assemble: assembleTable6Any},
	{Name: "fig16", Title: "Fig. 16 — DDR4 FGR and adaptive refresh", specs: fig16Specs, assemble: assembleFig16Any},
	{Name: "ablations", Title: "DESIGN.md §4 design-choice ablations", specs: ablationSpecs, assemble: assembleAblationsAny},
	{Name: "pausing", Title: "Extension — refresh pausing comparison", specs: pausingSpecs, assemble: assemblePausingAny},
}

// Experiments returns every registered experiment in canonical order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// WarmCount reports how many of the specs already have an entry in the
// store — the shared definition of "warm" behind cmd/experiments -list
// and GET /v1/experiments. Existence probes only; no payloads are read
// and LRU state is untouched. The dominant cost is Key() — a SHA-256
// over each spec's full benchmark profiles — so the probes fan out over
// a worker pool; enumerating a whole registry of experiments against a
// large store stays interactive.
func WarmCount(st *store.Store, specs []SimSpec) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		warm := 0
		for _, s := range specs {
			if st.Contains(s.Key()) {
				warm++
			}
		}
		return warm
	}
	var (
		next atomic.Int64
		warm atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				if st.Contains(specs[i].Key()) {
					warm.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return int(warm.Load())
}

// LookupExperiment finds a registry entry by name.
func LookupExperiment(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunExperiment executes a registry entry end to end on this runner:
// enumerate, run every spec through the cached/stored path, assemble.
// After Interrupt it returns (nil, nil) — the result set has holes, so no
// table is assembled (callers already treat interrupted output as void).
func (r *Runner) RunExperiment(name string) (fmt.Stringer, error) {
	e, ok := LookupExperiment(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q", name)
	}
	res, ok := r.RunAll(e.Specs(r))
	if !ok {
		return nil, nil
	}
	return e.Assemble(r, res)
}

// specList accumulates an experiment's spec enumeration: run specs in
// append order, alone-run specs collected separately and appended at the
// end (the historical Table2Specs layout), everything deduplicated by
// content key.
type specList struct {
	runs   []SimSpec
	alones []SimSpec
	seen   map[store.Key]bool
}

func newSpecList() *specList { return &specList{seen: map[store.Key]bool{}} }

func (l *specList) add(s SimSpec) {
	k := s.Key()
	if !l.seen[k] {
		l.seen[k] = true
		l.runs = append(l.runs, s)
	}
}

// addRun enumerates one canonical run.
func (l *specList) addRun(r *Runner, wl workload.Workload, k core.Kind, d timing.Density, variant string) {
	l.add(r.specFor(wl, k, d, variant))
}

// addAlones enumerates the alone runs behind a workload's WS normalization.
func (l *specList) addAlones(r *Runner, wl workload.Workload) {
	for _, b := range wl.Benchmarks {
		s := r.AloneSpec(b)
		k := s.Key()
		if !l.seen[k] {
			l.seen[k] = true
			l.alones = append(l.alones, s)
		}
	}
}

// addWS enumerates a run plus its workload's alone runs.
func (l *specList) addWS(r *Runner, wl workload.Workload, k core.Kind, d timing.Density, variant string) {
	l.addRun(r, wl, k, d, variant)
	l.addAlones(r, wl)
}

func (l *specList) list() []SimSpec {
	return append(append([]SimSpec{}, l.runs...), l.alones...)
}
