package exp

import (
	"fmt"
	"strings"
	"testing"

	"dsarp/internal/timing"
)

// registryOpts is a one-density, one-workload-per-category scale: big
// enough that every experiment has real content, small enough that running
// the complete registry stays in test budget.
func registryOpts() Options {
	return Options{
		PerCategory: 1,
		Sensitivity: 1,
		Cores:       2,
		Warmup:      2_000,
		Measure:     8_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8},
	}
}

// legacyMethods maps every registry entry to its historical Runner method,
// rendered the way cmd/experiments always rendered it (fig12 concatenates
// the per-density panels).
func legacyMethods(r *Runner) map[string]func() string {
	fig12 := func() string {
		parts := make([]string, len(r.Options().Densities))
		for i, d := range r.Options().Densities {
			parts[i] = r.Fig12(d).String()
		}
		return strings.Join(parts, "\n")
	}
	return map[string]func() string{
		"fig5":      func() string { return r.Fig5().String() },
		"fig6":      func() string { return r.Fig6().String() },
		"fig7":      func() string { return r.Fig7().String() },
		"fig12":     fig12,
		"table2":    func() string { return r.Table2().String() },
		"fig13":     func() string { return r.Fig13().String() },
		"breakdown": func() string { return r.DARPBreakdown().String() },
		"fig14":     func() string { return r.Fig14().String() },
		"fig15":     func() string { return r.Fig15().String() },
		"table3":    func() string { return r.Table3().String() },
		"table4":    func() string { return r.Table4().String() },
		"table5":    func() string { return r.Table5().String() },
		"table6":    func() string { return r.Table6().String() },
		"fig16":     func() string { return r.Fig16().String() },
		"ablations": func() string { return r.Ablations().String() },
		"pausing":   func() string { return r.PausingComparison().String() },
	}
}

// TestRegistryMatchesLegacy is the registry's equivalence contract, for
// every entry: (a) the legacy Runner method and (b) enumerate specs →
// results from the content-addressed store → pure Assemble render
// byte-identical output, and the assembly pass runs zero simulations.
// Phase (b) deliberately reads raw store bytes through DecodeResult on a
// store-less runner — exactly what a fleet client does after fetching
// results from dsarpd workers.
func TestRegistryMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the complete registry")
	}
	st := openStore(t)
	opts := registryOpts()
	opts.Store = st

	cold := NewRunner(opts)
	legacy := map[string]string{}
	for name, fn := range legacyMethods(cold) {
		legacy[name] = fn()
	}
	if cold.SimsRun() == 0 {
		t.Fatal("cold pass executed no simulations")
	}

	// Assembly-only pass: a fresh runner that never simulates and never
	// even sees the store — results arrive as decoded wire bytes.
	assembler := NewRunner(registryOpts())
	for _, e := range Experiments() {
		specs := e.Specs(assembler)
		results := Results{}
		for _, spec := range specs {
			data, ok := st.Get(spec.Key())
			if !ok {
				t.Fatalf("%s: spec %v not in store after cold pass", e.Name, spec)
			}
			res, err := DecodeResult(data)
			if err != nil {
				t.Fatalf("%s: decode: %v", e.Name, err)
			}
			results.Add(spec, res)
		}
		out, err := e.Assemble(assembler, results)
		if err != nil {
			t.Fatalf("%s: assemble: %v", e.Name, err)
		}
		if got := out.String(); got != legacy[e.Name] {
			t.Errorf("%s: store-assembled output diverged from legacy method:\n got:\n%s\nwant:\n%s",
				e.Name, got, legacy[e.Name])
		}
	}
	if n := assembler.SimsRun(); n != 0 {
		t.Errorf("assembly pass executed %d simulations, want 0", n)
	}

	// And the legacy wrappers over a warm store: byte-identical again,
	// still zero simulations — the resume path of an interrupted fleet.
	warm := NewRunner(opts)
	for name, fn := range legacyMethods(warm) {
		if got := fn(); got != legacy[name] {
			t.Errorf("%s: warm-store rerun diverged", name)
		}
	}
	if n := warm.SimsRun(); n != 0 {
		t.Errorf("warm pass executed %d simulations, want 0 (spec enumeration incomplete?)", n)
	}
}

// TestRegistryCoversCmdNames pins the registry to the historical
// cmd/experiments -run vocabulary and order.
func TestRegistryCoversCmdNames(t *testing.T) {
	want := []string{"fig5", "fig6", "fig7", "fig12", "table2", "fig13", "breakdown",
		"fig14", "fig15", "table3", "table4", "table5", "table6", "fig16", "ablations", "pausing"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.Name != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, e.Name, want[i])
		}
		if e.Title == "" {
			t.Errorf("%s: no title", e.Name)
		}
		if _, ok := LookupExperiment(e.Name); !ok {
			t.Errorf("LookupExperiment(%q) missed", e.Name)
		}
	}
	if _, ok := LookupExperiment("table99"); ok {
		t.Error("LookupExperiment invented an experiment")
	}
}

// TestSpecsAreCanonicalAndUnique: every enumeration yields specs that
// survive PrepareSpec unchanged (same key) and contains no duplicates —
// the properties the serving layer and fleet clients rely on.
func TestSpecsAreCanonicalAndUnique(t *testing.T) {
	r := NewRunner(registryOpts())
	for _, e := range Experiments() {
		seen := map[string]bool{}
		for i, spec := range e.Specs(r) {
			key := spec.Key().String()
			if seen[key] {
				t.Errorf("%s: spec %d is a duplicate (%s)", e.Name, i, spec.label())
			}
			seen[key] = true
			prepared, err := r.PrepareSpec(spec)
			if err != nil {
				t.Errorf("%s: spec %d rejected by PrepareSpec: %v", e.Name, i, err)
				continue
			}
			if prepared.Key() != spec.Key() {
				t.Errorf("%s: spec %d not canonical: key changed under PrepareSpec (%s)", e.Name, i, spec.label())
			}
		}
	}
}

// TestAssembleReportsMissingResults: an incomplete result map is an error
// naming the hole, never a silently wrong table.
func TestAssembleReportsMissingResults(t *testing.T) {
	r := NewRunner(registryOpts())
	e, ok := LookupExperiment("table2")
	if !ok {
		t.Fatal("no table2 entry")
	}
	_, err := e.Assemble(r, Results{})
	if err == nil || !strings.Contains(err.Error(), "missing result") {
		t.Errorf("assemble from empty results: err = %v, want missing-result error", err)
	}
}

// TestRunExperimentUnknownName: the generic entry point rejects unknown
// names instead of panicking.
func TestRunExperimentUnknownName(t *testing.T) {
	r := NewRunner(registryOpts())
	if _, err := r.RunExperiment("fig99"); err == nil {
		t.Error("unknown experiment did not error")
	}
}

// TestFig5ZeroSpecs: the analytic figure is a zero-spec experiment and
// assembles from an empty map.
func TestFig5ZeroSpecs(t *testing.T) {
	r := NewRunner(registryOpts())
	e, _ := LookupExperiment("fig5")
	if n := len(e.Specs(r)); n != 0 {
		t.Fatalf("fig5 enumerates %d specs, want 0", n)
	}
	out, err := e.Assemble(r, Results{})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != r.Fig5().String() {
		t.Error("fig5 registry render diverged from legacy method")
	}
	if s, err := r.RunExperiment("fig5"); err != nil || s.String() != r.Fig5().String() {
		t.Errorf("RunExperiment(fig5): %v", err)
	}
}

var _ fmt.Stringer = Fig12Set{} // the fig12 bundle renders like any other result
