package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"dsarp/internal/core"
	"dsarp/internal/sim"
	"dsarp/internal/snap"
	"dsarp/internal/store"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

// SchemaVersion names the simulator behavior generation and is folded into
// every store key. Any change that alters simulation output for the same
// config (scheduler behavior, timing parameters, workload generation, the
// Result wire format) MUST bump this string, or warm stores would serve
// stale results; pure optimizations pinned bit-exact by the golden tests
// keep it. The golden tables in parallel_test.go are the check: if they
// need regenerating, this needs bumping.
const SchemaVersion = "dsarp-sim-v1"

// SimSpec is a fully-resolved, JSON-round-trippable description of one
// simulation: everything that determines its Result, and nothing else. It
// is the unit of exchange of the serving layer (internal/serve) and the
// input to content-addressed store keys.
//
// Benchmarks carry full trace profiles; BenchmarkNames may reference the
// built-in workload library instead and is resolved (and cleared) by
// Normalize, so both spellings key identically.
//
// Variant names a registered configuration modifier (see VariantMod); the
// empty variant is the unmodified Table 1 configuration. By contract a
// variant string uniquely determines the modification it applies — two
// different modifications must never share a variant name, since the store
// key cannot see inside a modifier function.
type SimSpec struct {
	Name           string          `json:"name"`
	Benchmarks     []trace.Profile `json:"benchmarks,omitempty"`
	BenchmarkNames []string        `json:"benchmark_names,omitempty"`
	Mechanism      string          `json:"mechanism"`
	DensityGb      int             `json:"density_gb"`
	Variant        string          `json:"variant,omitempty"`
	Seed           int64           `json:"seed"`
	// Warmup and Measure are DRAM-cycle counts; 0 means "use the runner's
	// default" (a warmup-free run is not expressible: sim.Config itself
	// treats zero warmup as unset).
	Warmup  int64  `json:"warmup,omitempty"`
	Measure int64  `json:"measure,omitempty"`
	Engine  string `json:"engine,omitempty"`
}

// specFor builds the canonical spec for one of the runner's own runs.
func (r *Runner) specFor(wl workload.Workload, k core.Kind, d timing.Density, variant string) SimSpec {
	return SimSpec{
		Name:       wl.Name,
		Benchmarks: wl.Benchmarks,
		Mechanism:  k.String(),
		DensityGb:  int(d),
		Variant:    variant,
		Seed:       r.opts.Seed,
		Warmup:     r.opts.Warmup,
		Measure:    r.opts.Measure,
		Engine:     r.opts.Engine.String(),
	}
}

// PrepareSpec normalizes and validates an externally-supplied spec:
// library benchmark references are resolved to full profiles, unset
// warmup/measure/engine fall back to the runner's options, and every field
// is checked. The returned spec is the canonical form whose Key addresses
// the result.
func (r *Runner) PrepareSpec(s SimSpec) (SimSpec, error) {
	if len(s.BenchmarkNames) > 0 {
		if len(s.Benchmarks) > 0 {
			return s, errors.New("exp: spec sets both benchmarks and benchmark_names")
		}
		for _, name := range s.BenchmarkNames {
			p, err := workload.ByName(name)
			if err != nil {
				return s, fmt.Errorf("exp: %w", err)
			}
			s.Benchmarks = append(s.Benchmarks, p)
		}
		s.BenchmarkNames = nil
	}
	if s.Engine == "" {
		s.Engine = r.opts.Engine.String()
	}
	if s.Warmup == 0 {
		s.Warmup = r.opts.Warmup
	}
	if s.Measure == 0 {
		s.Measure = r.opts.Measure
	}
	if s.Name == "" {
		return s, errors.New("exp: spec needs a workload name")
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("exp: spec %q has no benchmarks", s.Name)
	}
	for i, b := range s.Benchmarks {
		if b.Name == "" {
			return s, fmt.Errorf("exp: spec %q benchmark %d has no name", s.Name, i)
		}
	}
	if _, err := core.ParseKind(s.Mechanism); err != nil {
		return s, fmt.Errorf("exp: %w", err)
	}
	if s.DensityGb <= 0 {
		return s, fmt.Errorf("exp: spec %q has density %d Gb", s.Name, s.DensityGb)
	}
	if _, err := sim.ParseEngine(s.Engine); err != nil {
		return s, fmt.Errorf("exp: %w", err)
	}
	if s.Warmup <= 0 || s.Measure <= 0 {
		return s, fmt.Errorf("exp: spec %q has warmup=%d measure=%d", s.Name, s.Warmup, s.Measure)
	}
	if _, err := VariantMod(s.Variant); err != nil {
		return s, err
	}
	return s, nil
}

// Key is the spec's content address: SHA-256 over the schema version and
// the canonical JSON encoding. Call it on a normalized spec (runner-built
// specs always are; external ones go through PrepareSpec first).
func (s SimSpec) Key() store.Key {
	payload, err := json.Marshal(struct {
		Schema string  `json:"schema"`
		Spec   SimSpec `json:"spec"`
	}{SchemaVersion, s})
	if err != nil {
		// SimSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("exp: marshal spec: %v", err))
	}
	return store.KeyOf(payload)
}

// PrefixKey is the content address of the spec's simulation *prefix* at a
// given snapshot cycle: the key checkpoints are stored and found under.
// It hashes the schema version, the snapshot layout version, the canonical
// spec with Measure zeroed, and the cycle. Zeroing Measure is what makes
// measure-extension reuse work — a run's state at cycle C is independent
// of how long the measurement window will eventually be — while every
// other field (mechanism, density, variant, seed, warmup, engine,
// benchmarks) shapes the machine state from cycle 0 and stays in the hash.
// Folding snap.Version in (unlike Key) retires stale-layout snapshots at
// the key level; folding "snap" into the payload keeps the checkpoint key
// space disjoint from result keys even within the same store namespace.
func (s SimSpec) PrefixKey(cycle int64) store.Key {
	s.Measure = 0
	payload, err := json.Marshal(struct {
		Schema string  `json:"schema"`
		Snap   string  `json:"snap"`
		Spec   SimSpec `json:"spec"`
		Cycle  int64   `json:"cycle"`
	}{SchemaVersion, snap.Version, s, cycle})
	if err != nil {
		// SimSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("exp: marshal prefix spec: %v", err))
	}
	return store.KeyOf(payload)
}

// label formats the spec the way Runner progress callbacks always have.
func (s SimSpec) label() string {
	return fmt.Sprintf("%s %s %s %s", s.Name, s.Mechanism, timing.Density(s.DensityGb), s.Variant)
}

// simConfig assembles the sim.Config a normalized spec describes, before
// any variant modifier is applied.
func (s SimSpec) simConfig() sim.Config {
	k, err := core.ParseKind(s.Mechanism)
	if err != nil {
		panic(fmt.Sprintf("exp: unnormalized spec: %v", err))
	}
	eng, err := sim.ParseEngine(s.Engine)
	if err != nil {
		panic(fmt.Sprintf("exp: unnormalized spec: %v", err))
	}
	return sim.Config{
		Workload:  workload.Workload{Name: s.Name, Benchmarks: s.Benchmarks},
		Mechanism: k,
		Density:   timing.Density(s.DensityGb),
		Engine:    eng,
		Seed:      s.Seed,
		Warmup:    s.Warmup,
		Measure:   s.Measure,
	}
}

// VariantMod resolves a variant name to the config modifier it denotes.
// Every variant any experiment uses is registered here — the registry is
// the single definition of what each name means, which is what lets an
// external caller (HTTP, CLI, a fleet client) request the exact runs the
// experiment code performs and hit the same store keys.
//
//	""          unmodified Table 1 configuration
//	coresN      no modification (tags a different core count, which the
//	            workload itself carries)
//	ret64       64 ms retention time (Table 6)
//	subsN       N subarrays per bank (Table 5)
//	tfawN       tFAW = N, tRRD = max(1, N/5) (Table 4)
//	flex16      DARP postpone bound 16, pre-erratum (ablation D1)
//	randpick    DARP write-refresh picks a random bank (ablation D2)
//	nothrottle  SARP tFAW/tRRD inflation disabled (ablation D3)
//	openrow     open-row page policy (ablation D4)
//	greedy      out-of-order refresh picks the largest-debt idle bank
//	            (ablation D5)
func VariantMod(variant string) (func(*sim.Config), error) {
	var n int
	switch {
	case variant == "":
		return nil, nil
	case variant == "ret64":
		return func(c *sim.Config) { c.Retention = timing.Retention64ms }, nil
	case matchInt(variant, "cores", &n):
		return nil, nil
	case matchInt(variant, "subs", &n):
		subs := n
		return func(c *sim.Config) { c.SubarraysPerBank = subs }, nil
	case matchInt(variant, "tfaw", &n):
		tfaw := n
		return func(c *sim.Config) {
			c.AdjustTiming = func(p *timing.Params) {
				p.TFAW = tfaw
				p.TRRD = max(1, tfaw/5)
			}
		}, nil
	case variant == "flex16":
		return darpVariant(core.DARPOptions{WriteRefresh: true, MaxPostpone: 16}), nil
	case variant == "randpick":
		return darpVariant(core.DARPOptions{WriteRefresh: true, RandomWritePick: true}), nil
	case variant == "nothrottle":
		return func(c *sim.Config) {
			c.AdjustTiming = func(p *timing.Params) {
				p.SARPThrottleABx1000 = 1000
				p.SARPThrottlePBx1000 = 1000
			}
		}, nil
	case variant == "openrow":
		return func(c *sim.Config) { c.OpenRow = true }, nil
	case variant == "greedy":
		return darpVariant(core.DARPOptions{WriteRefresh: true, GreedyIdlePick: true}), nil
	default:
		return nil, fmt.Errorf("exp: unknown variant %q", variant)
	}
}

// matchInt reports whether s is prefix immediately followed by a positive
// integer, storing it in *n.
func matchInt(s, prefix string, n *int) bool {
	rest, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return false
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v <= 0 {
		return false
	}
	*n = v
	return true
}

// AloneSpec is the spec of a benchmark's alone run: single core, refresh
// disabled, 8 Gb — the normalization baseline every weighted-speedup
// number divides by.
func (r *Runner) AloneSpec(prof trace.Profile) SimSpec {
	wl := workload.Workload{Name: "alone." + prof.Name, Benchmarks: []trace.Profile{prof}}
	return r.specFor(wl, core.KindNoRef, timing.Gb8, "")
}

// Table2Specs enumerates every simulation Table 2 needs — the five
// mechanisms across the runner's mixes and densities, plus the alone runs
// behind the weighted-speedup normalization — in a deterministic order.
// Feeding these through a store-backed runner or the serving layer warms
// the store so Table2 itself runs without a single simulation. It is the
// registry's "table2" enumeration, kept as a named method for clients.
func (r *Runner) Table2Specs() []SimSpec { return table2Specs(r) }
