package exp

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/timing"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(tinyOpts())
	f := r.Fig5()
	if err := WriteCSV(dir, "fig5", f); err != nil {
		t.Fatal(err)
	}
	file, err := os.Open(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	rows, err := csv.NewReader(file).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(f.Points)+1 {
		t.Fatalf("csv rows = %d, want %d", len(rows), len(f.Points)+1)
	}
	if rows[0][0] != "density_gb" {
		t.Errorf("header = %v", rows[0])
	}
}

func TestCSVShapesConsistent(t *testing.T) {
	// Every exporter must produce rows matching its header width.
	r := NewRunner(tinyOpts())
	exports := map[string]CSVWritable{
		"fig5":   r.Fig5(),
		"fig7":   r.Fig7(),
		"fig12":  r.Fig12(timing.Gb8),
		"table2": r.Table2(),
		"table5": r.Table5(),
	}
	for name, e := range exports {
		header, rows := e.CSV()
		if len(header) == 0 || len(rows) == 0 {
			t.Errorf("%s: empty export", name)
			continue
		}
		for i, row := range rows {
			if len(row) != len(header) {
				t.Errorf("%s row %d: %d fields, header has %d", name, i, len(row), len(header))
			}
		}
	}
}

func TestPausingComparisonShape(t *testing.T) {
	r := NewRunner(tinyOpts())
	p := r.PausingComparison()
	last := len(p.Densities) - 1
	if p.Norm[core.KindREFab][last] != 1.0 {
		t.Fatalf("REFab must normalize to 1")
	}
	if p.Norm[core.KindPause][last] <= 1.0 {
		t.Errorf("pausing should beat REFab at 32Gb, got %.3f", p.Norm[core.KindPause][last])
	}
	if p.Norm[core.KindDSARP][last] <= p.Norm[core.KindPause][last] {
		t.Errorf("DSARP (%.3f) should beat pausing (%.3f)",
			p.Norm[core.KindDSARP][last], p.Norm[core.KindPause][last])
	}
}
