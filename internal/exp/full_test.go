package exp

import (
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/timing"
)

// microOpts is even smaller than tinyOpts: these tests exercise the
// expensive sweeps end to end, checking shape only.
func microOpts() Options {
	return Options{
		PerCategory: 1,
		Sensitivity: 1,
		Cores:       4,
		Warmup:      8_000,
		Measure:     30_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb32},
	}
}

func TestFig6LossesPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	r := NewRunner(microOpts())
	f := r.Fig6()
	for _, row := range f.Rows {
		if row.Overall <= 0 {
			t.Errorf("%v: overall REFab loss %.1f%%, want positive", row.Density, row.Overall)
		}
	}
}

func TestFig14EnergyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	r := NewRunner(microOpts())
	f := r.Fig14()
	if f.EPA[core.KindNoRef][0] >= f.EPA[core.KindREFab][0] {
		t.Errorf("NoREF energy/access (%.2f) should undercut REFab (%.2f)",
			f.EPA[core.KindNoRef][0], f.EPA[core.KindREFab][0])
	}
	if f.DSARPReduction[0] <= 0 {
		t.Errorf("DSARP should reduce energy per access, got %.1f%%", f.DSARPReduction[0])
	}
}

func TestFig15AllCategoriesImprove(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	r := NewRunner(microOpts())
	f := r.Fig15()
	for _, cat := range f.Categories {
		if f.OverAB[cat][0] <= 0 {
			t.Errorf("category %d%%: DSARP gain over REFab %.1f%%, want positive", cat, f.OverAB[cat][0])
		}
	}
}

func TestTable3CoreCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	r := NewRunner(microOpts())
	tab := r.Table3()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 core counts", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row.WSImprove <= 0 {
			t.Errorf("%d cores: DSARP WS improvement %.1f%%, want positive", row.Cores, row.WSImprove)
		}
	}
}

func TestTable4TFAWTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	r := NewRunner(microOpts())
	tab := r.Table4()
	// Paper Table 4: the benefit shrinks as tFAW grows (more ACT headroom
	// means less to gain from parallelization). Check the endpoints.
	if tab.Improve[0] < tab.Improve[len(tab.Improve)-1]-1.5 {
		t.Errorf("tFAW=5 gain (%.1f%%) should be >= tFAW=30 gain (%.1f%%) within noise",
			tab.Improve[0], tab.Improve[len(tab.Improve)-1])
	}
}

func TestTable6Retention64(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	r := NewRunner(microOpts())
	tab := r.Table6()
	for _, row := range tab.Rows {
		if row.GmeanAB <= 0 {
			t.Errorf("%v: DSARP at 64ms should still improve over REFab, got %.1f%%",
				row.Density, row.GmeanAB)
		}
		// At 64 ms the refresh rate halves, so gains should be smaller than
		// the 32 ms case but still positive (paper Table 6 vs Table 2).
	}
}

func TestDARPBreakdownComponents(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	r := NewRunner(microOpts())
	tab := r.DARPBreakdown()
	row := tab.Rows[0]
	if row.OoOGmean <= 0 {
		t.Errorf("out-of-order refresh should improve over REFab, got %.1f%%", row.OoOGmean)
	}
	if row.FullGmean <= 0 {
		t.Errorf("full DARP should improve over REFab, got %.1f%%", row.FullGmean)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	r := NewRunner(microOpts())
	a := r.Ablations()
	if len(a.Rows) != 5 {
		t.Fatalf("ablations = %d, want 5 (D1..D5)", len(a.Rows))
	}
	for _, row := range a.Rows {
		if row.BaseWS <= 0 || row.VariantWS <= 0 {
			t.Errorf("%s: degenerate WS (%.3f / %.3f)", row.Name, row.BaseWS, row.VariantWS)
		}
	}
	// D3: removing the SARP power throttle is an upper bound — the variant
	// must not be dramatically worse than the paper's throttled design.
	for _, row := range a.Rows {
		if row.Name == "D3 sarp-throttle" && row.DeltaPct < -5 {
			t.Errorf("unthrottled SARP should not collapse: %+.2f%%", row.DeltaPct)
		}
	}
}
