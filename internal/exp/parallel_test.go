package exp

import (
	"sync"
	"testing"
	"time"

	"dsarp/internal/core"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// goldenOpts is the fixed configuration behind the golden table strings
// below: small enough to run in seconds, large enough to exercise several
// densities and mechanisms.
func goldenOpts() Options {
	return Options{
		PerCategory: 1,
		Sensitivity: 1,
		Cores:       2,
		Warmup:      5_000,
		Measure:     20_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8, timing.Gb32},
	}
}

// goldenTable2/goldenFig13 were produced by the seed (serial, pre-index)
// runner at goldenOpts. Any scheduler or runner change that alters them is a
// behavior change, not an optimization.
const goldenTable2 = `Table 2 — WS improvement (%):
 density mech         max/PB    max/AB  gmean/PB  gmean/AB
     8Gb DARP            1.7      16.8       0.7      11.0
     8Gb SARPpb          3.0      16.4       1.9      12.4
     8Gb DSARP           2.6      15.2       0.9      11.3
    32Gb DARP            3.8      70.3      -1.6      50.3
    32Gb SARPpb         20.0      75.4       6.4      62.5
    32Gb DSARP          15.5      65.1       2.1      55.9
`

const goldenFig13 = `Fig. 13 — WS improvement over REFab (%):
mech          8Gb    32Gb
REFpb        10.3    52.8
Elastic       3.3    10.9
DARP         11.0    50.3
SARPab        5.1    15.4
SARPpb       12.4    62.5
DSARP        11.3    55.9
NoREF        14.5    73.6
(REFab absolute WS per density: 8Gb=1.66 32Gb=1.10)
`

// TestGoldenTablesMatchSeed pins Table2 and Fig13 output to the seed
// runner's, byte for byte, at every parallelism level: fully serial, a
// worker pool wider than the task list, and the auto (per-CPU) setting.
func TestGoldenTablesMatchSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation golden run")
	}
	for _, par := range []int{1, 8, 0} {
		opts := goldenOpts()
		opts.Parallelism = par
		r := NewRunner(opts)
		if got := r.Table2().String(); got != goldenTable2 {
			t.Errorf("Parallelism=%d: Table2 diverged from seed:\n got:\n%s\nwant:\n%s", par, got, goldenTable2)
		}
		if got := r.Fig13().String(); got != goldenFig13 {
			t.Errorf("Parallelism=%d: Fig13 diverged from seed:\n got:\n%s\nwant:\n%s", par, got, goldenFig13)
		}
	}
}

// TestParallelRunnerSharedRuns checks that concurrent experiments still
// share simulations: after Table2 and Fig13 (which reuse the same REFab/
// REFpb/DSARP runs) the cache must hold every completed run exactly once.
func TestParallelRunnerSharedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation run")
	}
	opts := goldenOpts()
	opts.Parallelism = 8
	var mu sync.Mutex
	seen := map[string]int{}
	opts.Progress = func(_, _ int, label string) {
		mu.Lock()
		seen[label]++
		mu.Unlock()
	}
	r := NewRunner(opts)
	r.Table2()
	r.Fig13()
	for label, n := range seen {
		if n != 1 {
			t.Errorf("simulation %q ran %d times; in-flight dedup failed", label, n)
		}
	}
	if len(seen) != r.done {
		t.Errorf("progress reported %d distinct runs, runner counted %d", len(seen), r.done)
	}
}

// TestRunPanicReleasesWaiters pins the failure contract of the in-flight
// dedup: when the computing worker panics (simulation config error), every
// waiter on the same key must be released with the same panic instead of
// blocking forever on the entry's done channel.
func TestRunPanicReleasesWaiters(t *testing.T) {
	opts := goldenOpts()
	opts.Parallelism = 2
	r := NewRunner(opts)
	bad := workload.Workload{Name: "bad"} // no benchmarks: sim.Run errors, run panics

	results := make(chan any, 2)
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { results <- recover() }()
			r.run(bad, core.KindNoRef, timing.Gb8, "", nil)
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case v := <-results:
			if v == nil {
				t.Error("run on a broken workload should panic")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("waiter deadlocked on a panicked in-flight run")
		}
	}
}
