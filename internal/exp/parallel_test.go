package exp

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dsarp/internal/core"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// goldenOpts is the fixed configuration behind the golden table strings
// below: small enough to run in seconds, large enough to exercise several
// densities and mechanisms.
func goldenOpts() Options {
	return Options{
		PerCategory: 1,
		Sensitivity: 1,
		Cores:       2,
		Warmup:      5_000,
		Measure:     20_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8, timing.Gb32},
	}
}

// goldenTable2/goldenFig13 live in testdata/: they were produced by the
// seed (serial, pre-index) runner at goldenOpts. Any scheduler or runner
// change that alters them is a behavior change, not an optimization — and
// any diff that touches those fixture files MUST bump exp.SchemaVersion in
// the same change (enforced by scripts/check-schema-bump.sh in CI), or
// warm stores would keep serving the pre-change results.
var (
	goldenTable2 = readGolden("golden_table2.txt")
	goldenFig13  = readGolden("golden_fig13.txt")
)

// readGolden loads a fixture; a missing file panics at test init, which is
// louder (and earlier) than every golden comparison failing one by one.
func readGolden(name string) string {
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		panic(err)
	}
	return string(data)
}

// TestGoldenTablesMatchSeed pins Table2 and Fig13 output to the seed
// runner's, byte for byte, at every parallelism level: fully serial, a
// worker pool wider than the task list, and the auto (per-CPU) setting.
func TestGoldenTablesMatchSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation golden run")
	}
	for _, par := range []int{1, 8, 0} {
		opts := goldenOpts()
		opts.Parallelism = par
		r := NewRunner(opts)
		if got := r.Table2().String(); got != goldenTable2 {
			t.Errorf("Parallelism=%d: Table2 diverged from seed:\n got:\n%s\nwant:\n%s", par, got, goldenTable2)
		}
		if got := r.Fig13().String(); got != goldenFig13 {
			t.Errorf("Parallelism=%d: Fig13 diverged from seed:\n got:\n%s\nwant:\n%s", par, got, goldenFig13)
		}
	}
}

// TestParallelRunnerSharedRuns checks that concurrent experiments still
// share simulations: after Table2 and Fig13 (which reuse the same REFab/
// REFpb/DSARP runs) the cache must hold every completed run exactly once.
func TestParallelRunnerSharedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation run")
	}
	opts := goldenOpts()
	opts.Parallelism = 8
	var mu sync.Mutex
	seen := map[string]int{}
	opts.Progress = func(_, _ int, label string) {
		mu.Lock()
		seen[label]++
		mu.Unlock()
	}
	r := NewRunner(opts)
	r.Table2()
	r.Fig13()
	for label, n := range seen {
		if n != 1 {
			t.Errorf("simulation %q ran %d times; in-flight dedup failed", label, n)
		}
	}
	if len(seen) != r.done {
		t.Errorf("progress reported %d distinct runs, runner counted %d", len(seen), r.done)
	}
}

// TestRunPanicReleasesWaiters pins the failure contract of the in-flight
// dedup: when the computing worker panics (simulation config error), every
// waiter on the same key must be released with the same panic instead of
// blocking forever on the entry's done channel.
func TestRunPanicReleasesWaiters(t *testing.T) {
	opts := goldenOpts()
	opts.Parallelism = 2
	r := NewRunner(opts)
	bad := workload.Workload{Name: "bad"} // no benchmarks: sim.Run errors, run panics

	results := make(chan any, 2)
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { results <- recover() }()
			r.run(bad, core.KindNoRef, timing.Gb8, "", nil)
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case v := <-results:
			if v == nil {
				t.Error("run on a broken workload should panic")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("waiter deadlocked on a panicked in-flight run")
		}
	}
}
