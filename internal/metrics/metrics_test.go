package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedSpeedup(t *testing.T) {
	shared := []float64{0.5, 1.0}
	alone := []float64{1.0, 2.0}
	if got := WeightedSpeedup(shared, alone); got != 1.0 {
		t.Errorf("WS = %v, want 1.0", got)
	}
}

func TestHarmonicSpeedup(t *testing.T) {
	shared := []float64{0.5, 1.0}
	alone := []float64{1.0, 1.0}
	// HS = 2 / (1/0.5 + 1/1.0) = 2/3.
	if got := HarmonicSpeedup(shared, alone); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("HS = %v, want 2/3", got)
	}
}

func TestMaxSlowdown(t *testing.T) {
	shared := []float64{0.5, 0.8}
	alone := []float64{1.0, 1.0}
	if got := MaxSlowdown(shared, alone); got != 2.0 {
		t.Errorf("MaxSlowdown = %v, want 2.0", got)
	}
}

func TestPerfectSharingProperties(t *testing.T) {
	// If shared == alone, WS = n, HS = 1, MaxSlowdown = 1.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ipc := make([]float64, len(raw))
		for i, v := range raw {
			ipc[i] = float64(v)/64 + 0.1
		}
		n := float64(len(ipc))
		return math.Abs(WeightedSpeedup(ipc, ipc)-n) < 1e-9 &&
			math.Abs(HarmonicSpeedup(ipc, ipc)-1) < 1e-9 &&
			math.Abs(MaxSlowdown(ipc, ipc)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicityProperty(t *testing.T) {
	// Improving any core's shared IPC must not decrease WS or HS.
	f := func(raw []uint8, idx uint8) bool {
		if len(raw) < 2 {
			return true
		}
		shared := make([]float64, len(raw))
		alone := make([]float64, len(raw))
		for i, v := range raw {
			shared[i] = float64(v)/128 + 0.05
			alone[i] = 1.0
		}
		better := append([]float64(nil), shared...)
		better[int(idx)%len(better)] *= 1.5
		return WeightedSpeedup(better, alone) >= WeightedSpeedup(shared, alone) &&
			HarmonicSpeedup(better, alone) >= HarmonicSpeedup(shared, alone)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSharedIPC(t *testing.T) {
	if got := HarmonicSpeedup([]float64{0}, []float64{1}); got != 0 {
		t.Errorf("HS with stalled core = %v, want 0", got)
	}
	if got := MaxSlowdown([]float64{0}, []float64{1}); !math.IsInf(got, 1) {
		t.Errorf("MaxSlowdown with stalled core = %v, want +Inf", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths accepted")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2})
}
