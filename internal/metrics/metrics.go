// Package metrics implements the multiprogrammed performance metrics of the
// paper's evaluation (§5, §6.1.5): weighted speedup, harmonic speedup, and
// maximum slowdown, all defined against each benchmark's alone-run IPC.
package metrics

import (
	"fmt"
	"math"
)

// WeightedSpeedup is WS = sum_i IPC_shared,i / IPC_alone,i [6, 39].
func WeightedSpeedup(shared, alone []float64) float64 {
	mustMatch(shared, alone)
	var ws float64
	for i := range shared {
		if alone[i] > 0 {
			ws += shared[i] / alone[i]
		}
	}
	return ws
}

// HarmonicSpeedup is HS = n / sum_i (IPC_alone,i / IPC_shared,i) [26].
func HarmonicSpeedup(shared, alone []float64) float64 {
	mustMatch(shared, alone)
	var sum float64
	for i := range shared {
		if shared[i] <= 0 {
			return 0
		}
		sum += alone[i] / shared[i]
	}
	if sum == 0 {
		return 0
	}
	return float64(len(shared)) / sum
}

// MaxSlowdown is max_i IPC_alone,i / IPC_shared,i, the unfairness metric of
// [5, 16, 17].
func MaxSlowdown(shared, alone []float64) float64 {
	mustMatch(shared, alone)
	var worst float64
	for i := range shared {
		if shared[i] <= 0 {
			return math.Inf(1)
		}
		if s := alone[i] / shared[i]; s > worst {
			worst = s
		}
	}
	return worst
}

func mustMatch(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: mismatched lengths %d vs %d", len(a), len(b)))
	}
}
