package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"os"
	"sync"

	"dsarp/internal/exp"
	"dsarp/internal/journal"
	"dsarp/internal/sim"
)

// jobEvent is one SSE frame: a completed task, or the job's completion.
type jobEvent struct {
	Type   string `json:"type"` // "task" | "done"
	Index  int    `json:"index,omitempty"`
	Label  string `json:"label,omitempty"`
	Key    string `json:"key,omitempty"`
	Source string `json:"source,omitempty"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
}

const (
	eventTask = "task"
	eventDone = "done"
)

// taskOutcome is one slot of a job's results.
type taskOutcome struct {
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Source string          `json:"source"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// jobStatus is the GET /v1/jobs/{id} body.
type jobStatus struct {
	ID         string `json:"id"`
	Name       string `json:"name,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	State      string `json:"state"` // "running" | "done"
	Done       int    `json:"done"`
	Total      int    `json:"total"`
	Computed   int    `json:"computed"`
	CacheHits  int    `json:"cache_hits"`
	Errors     int    `json:"errors"`
	// TableURL is set once an experiment job has finished and its table is
	// assembled (or its assembly error recorded).
	TableURL string `json:"table_url,omitempty"`
}

// job tracks one sweep: per-task outcomes, counters, and SSE subscribers.
// An experiment job additionally carries an assemble hook that renders the
// experiment's table from the outcomes the moment the last task lands.
type job struct {
	id    string
	name  string
	total int

	// experiment/assemble are set for POST /v1/experiments/{name} jobs:
	// assemble runs exactly once, under mu, before the done event is
	// published — so a client that sees "done" can immediately fetch the
	// table.
	experiment string
	assemble   func([]taskOutcome) (string, error)

	mu       sync.Mutex
	done     int
	computed int
	cached   int
	errs     int
	outcomes []taskOutcome
	table    string
	tableErr string
	events   []jobEvent      // completion-ordered history, replayed to late subscribers
	subs     []chan jobEvent // live subscribers; buffered so publish never blocks

	// Durability (see durable.go): jl is the job's journal, appended to —
	// and fsynced — before each completion is published; nil when the
	// server runs without a journal directory or after a write failure.
	jl           *journal.File
	jlPath       string
	onJournalErr func(error)
}

// complete records a finished task and publishes its event. Called by
// workers; at most once per index.
func (j *job) complete(index int, spec exp.SimSpec, res sim.Result, src exp.RunSource, err error) {
	out := taskOutcome{Index: index, Key: spec.Key().String()}
	if err != nil {
		out.Error = err.Error()
	} else {
		out.Source = src.String()
		out.Cached = src.Cached()
		if data, encErr := exp.EncodeResult(res); encErr == nil {
			out.Result = data
		} else {
			out.Error = encErr.Error()
		}
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.jl != nil {
		line := taskLine{
			Type: taskType, Index: index, Key: out.Key,
			Source: out.Source, Cached: out.Cached, Error: out.Error,
		}
		if jerr := j.jl.Append(line); jerr != nil {
			// Keep serving from memory; the job just stops being durable.
			j.jl.Close()
			j.jl = nil
			if j.onJournalErr != nil {
				j.onJournalErr(jerr)
			}
		}
	}
	j.outcomes[index] = out
	j.done++
	switch {
	case out.Error != "":
		j.errs++
	case out.Cached:
		j.cached++
	default:
		j.computed++
	}
	ev := jobEvent{
		Type: eventTask, Index: index, Label: spec.Name + " " + spec.Mechanism,
		Key: out.Key, Source: out.Source, Cached: out.Cached, Error: out.Error,
		Done: j.done, Total: j.total,
	}
	j.publishLocked(ev)
	if j.done == j.total {
		j.finishLocked()
	}
}

// finishLocked assembles an experiment job's table (if any) and publishes
// the terminal event.
func (j *job) finishLocked() {
	if j.assemble != nil {
		table, err := j.assemble(j.outcomes)
		if err != nil {
			j.tableErr = err.Error()
		} else {
			j.table = table
		}
		j.assemble = nil
	}
	j.publishLocked(jobEvent{Type: eventDone, Done: j.done, Total: j.total})
}

// tableState returns the experiment-table view of the job: whether it is
// an experiment job at all, whether the table is ready, and the table or
// its assembly error.
func (j *job) tableState() (isExperiment, ready bool, table, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.experiment != "", j.done == j.total, j.table, j.tableErr
}

// publishLocked appends to the event history and fans out to subscribers.
// Subscriber channels are sized for the job's full event count, so sends
// never block a worker.
func (j *job) publishLocked(ev jobEvent) {
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		ch <- ev
	}
}

// subscribe returns the event history so far and a channel carrying every
// subsequent event, with no gap or overlap between the two.
func (j *job) subscribe() ([]jobEvent, chan jobEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay := make([]jobEvent, len(j.events))
	copy(replay, j.events)
	ch := make(chan jobEvent, j.total+1)
	j.subs = append(j.subs, ch)
	return replay, ch
}

func (j *job) unsubscribe(ch chan jobEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, c := range j.subs {
		if c == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			break
		}
	}
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID: j.id, Name: j.name, Experiment: j.experiment, State: "running",
		Done: j.done, Total: j.total,
		Computed: j.computed, CacheHits: j.cached, Errors: j.errs,
	}
	if j.done == j.total {
		st.State = "done"
		if j.experiment != "" {
			st.TableURL = "/v1/jobs/" + j.id + "/table"
		}
	}
	return st
}

// dropJournal closes and deletes the job's journal. Used at eviction: an
// evicted job is no longer resolvable by ID, so adopting its journal
// after a restart would resurrect a job nobody can have a handle to.
func (j *job) dropJournal() {
	j.mu.Lock()
	jl, path := j.jl, j.jlPath
	j.jl, j.jlPath = nil, ""
	j.mu.Unlock()
	if jl != nil {
		jl.Close()
	}
	if path != "" {
		os.Remove(path)
	}
}

func (j *job) results() (jobStatus, []taskOutcome) {
	st := j.status()
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]taskOutcome, len(j.outcomes))
	copy(out, j.outcomes)
	return st, out
}

// jobRegistry maps job ids to jobs, keeping at most cap of them: a
// long-running daemon would otherwise retain every sweep's results and
// event history forever (they are already durable in the store). When
// full, the oldest finished job is evicted — or the oldest outright if
// every job is somehow still running; its workers keep completing into
// the evicted struct harmlessly, only status/SSE lookups start to 404.
type jobRegistry struct {
	mu    *sync.Mutex
	jobs  map[string]*job
	order []*job // creation order
	cap   int
}

// defaultJobCap bounds retained jobs; generous next to MaxQueue since a
// finished job holds only outcomes, not queue slots.
const defaultJobCap = 512

func newJobRegistry() jobRegistry {
	return jobRegistry{mu: &sync.Mutex{}, jobs: map[string]*job{}, cap: defaultJobCap}
}

func (r *jobRegistry) create(name string, specs []exp.SimSpec) *job {
	return r.createExperiment(name, specs, "", nil)
}

// createExperiment registers an experiment job: when the last spec lands,
// assemble renders its table from the outcomes. A zero-spec experiment
// (fig5 is analytic) is born done, table included.
func (r *jobRegistry) createExperiment(name string, specs []exp.SimSpec, experiment string, assemble func([]taskOutcome) (string, error)) *job {
	var b [8]byte
	rand.Read(b[:])
	j := &job{
		id:         hex.EncodeToString(b[:]),
		name:       name,
		total:      len(specs),
		experiment: experiment,
		assemble:   assemble,
		outcomes:   make([]taskOutcome, len(specs)),
	}
	if j.total == 0 {
		j.mu.Lock()
		j.finishLocked()
		j.mu.Unlock()
	}
	r.register(j)
	return j
}

// adopt registers a job rebuilt from its journal (durable.go), keeping
// the ID it was created under.
func (r *jobRegistry) adopt(j *job) { r.register(j) }

func (r *jobRegistry) register(j *job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jobs[j.id] = j
	r.order = append(r.order, j)
	if len(r.order) > r.cap {
		victim := 0
		for i, old := range r.order[:len(r.order)-1] {
			if old.status().State == "done" {
				victim = i
				break
			}
		}
		evicted := r.order[victim]
		delete(r.jobs, evicted.id)
		r.order = append(r.order[:victim], r.order[victim+1:]...)
		evicted.dropJournal()
	}
}

func (r jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

func (r jobRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// stateCounts tallies retained jobs by state for the metrics layer.
func (r jobRegistry) stateCounts() (running, done int) {
	r.mu.Lock()
	jobs := make([]*job, 0, len(r.jobs))
	for _, j := range r.jobs {
		jobs = append(jobs, j)
	}
	r.mu.Unlock()
	// Job locks are taken outside the registry lock: status() is cheap,
	// but complete() holds a job lock while it journals.
	for _, j := range jobs {
		if j.status().State == "done" {
			done++
		} else {
			running++
		}
	}
	return running, done
}
