package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/ring"
	"dsarp/internal/snap"
	"dsarp/internal/store"
)

// PeerConfig wires a Server into the fleet's sharded warm-store tier.
// Every worker given the same member set (self + peers, order and
// self-inclusion irrelevant) computes the same rendezvous ring, so the
// fleet agrees without coordination on which Replicas workers own each
// result key. On a local store miss for a key, the worker hedge-fetches
// the payload from the key's other owners before simulating; after
// computing a result it pushes the payload to the other owners
// asynchronously. Reads repair lazily, so membership changes need no
// eager rebalance.
type PeerConfig struct {
	// Self is this worker's own base URL exactly as the other members
	// address it (it is also its ring member ID).
	Self string
	// Peers are the other members' base URLs. Including Self again is
	// harmless — every worker can be handed the same flat list.
	Peers []string
	// Replicas is the replication factor R (default 2): each key has R
	// owners, so any R-1 of them can be lost without losing warm state.
	Replicas int
	// FetchTimeout bounds one hedged peer fetch across all owners
	// (default 2s): past it the worker stops waiting and simulates.
	FetchTimeout time.Duration
	// PushAttempts caps delivery tries per pushed payload per owner
	// (default 4); PushBaseBackoff/PushMaxBackoff shape the capped
	// jittered backoff between them (defaults 100ms / 2s). Exhausted
	// attempts count a push failure — the simulation path is never
	// blocked or failed by replication.
	PushAttempts    int
	PushBaseBackoff time.Duration
	PushMaxBackoff  time.Duration
	// Client performs peer HTTP requests (default: a fresh client;
	// per-request deadlines come from FetchTimeout / push attempts).
	Client *http.Client
	// Seed makes push backoff jitter reproducible (tests).
	Seed int64
}

// ReplicationStats are the peer tier's counters, served under
// "replication" in /v1/stats.
type ReplicationStats struct {
	// FetchHits / FetchMisses count hedged peer fetches that did / did
	// not produce a verified payload (a miss falls through to a local
	// simulation).
	FetchHits   int64 `json:"fetch_hits"`
	FetchMisses int64 `json:"fetch_misses"`
	// PushOK / PushFails count per-owner payload deliveries; a failure
	// is recorded only after PushAttempts tries.
	PushOK    int64 `json:"push_ok"`
	PushFails int64 `json:"push_fails"`
	// CorruptRejected counts peer payloads refused because their bytes
	// did not match their declared hash or did not decode: fetched
	// responses discarded, and pushed bodies bounced with 400.
	CorruptRejected int64 `json:"corrupt_rejected"`
	Members         int   `json:"members"`
	Replicas        int   `json:"replicas"`
}

// peerNet is the Server's runtime view of the sharded warm-store tier.
type peerNet struct {
	self         string
	ring         *ring.Ring
	replicas     int
	fetchTimeout time.Duration
	pushAttempts int
	pushBase     time.Duration
	pushMax      time.Duration
	client       *http.Client
	log          *slog.Logger

	rngMu sync.Mutex
	rng   *rand.Rand

	fetchHits   atomic.Int64
	fetchMisses atomic.Int64
	pushOK      atomic.Int64
	pushFails   atomic.Int64
	corrupt     atomic.Int64

	pushes sync.WaitGroup // in-flight async push goroutines
}

// payloadHashHeader carries the hex SHA-256 of a /v1/results payload, on
// both responses (so a fetcher can verify before trusting) and pushes
// (so a receiver can verify before persisting). It is the store entry
// header's hash, surfaced on the wire.
const payloadHashHeader = "X-Dsarp-Payload-Sha256"

func newPeerNet(cfg PeerConfig, log *slog.Logger) *peerNet {
	if cfg.Self == "" {
		panic("serve: PeerConfig.Self is required")
	}
	self := strings.TrimRight(cfg.Self, "/")
	members := []string{self}
	for _, p := range cfg.Peers {
		members = append(members, strings.TrimRight(p, "/"))
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 2 * time.Second
	}
	if cfg.PushAttempts <= 0 {
		cfg.PushAttempts = 4
	}
	if cfg.PushBaseBackoff <= 0 {
		cfg.PushBaseBackoff = 100 * time.Millisecond
	}
	if cfg.PushMaxBackoff <= 0 {
		cfg.PushMaxBackoff = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	return &peerNet{
		self:         self,
		ring:         ring.New(members),
		replicas:     cfg.Replicas,
		fetchTimeout: cfg.FetchTimeout,
		pushAttempts: cfg.PushAttempts,
		pushBase:     cfg.PushBaseBackoff,
		pushMax:      cfg.PushMaxBackoff,
		client:       cfg.Client,
		log:          log,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
	}
}

// stats snapshots the tier's counters.
func (p *peerNet) stats() ReplicationStats {
	return ReplicationStats{
		FetchHits:       p.fetchHits.Load(),
		FetchMisses:     p.fetchMisses.Load(),
		PushOK:          p.pushOK.Load(),
		PushFails:       p.pushFails.Load(),
		CorruptRejected: p.corrupt.Load(),
		Members:         p.ring.Len(),
		Replicas:        p.replicas,
	}
}

// otherOwners returns the key's replica list minus this worker, in ring
// preference order: the members to fetch from or push to.
func (p *peerNet) otherOwners(k store.Key) []string {
	owners := p.ring.Owners(k, p.replicas)
	others := owners[:0:0]
	for _, o := range owners {
		if o != p.self {
			others = append(others, o)
		}
	}
	return others
}

// fetch is the runner's peer-fetch hook (exp.Runner.SetPeerFetch): on a
// local store miss it asks the key's other owners for the payload,
// hedged — all owners in parallel, first verified payload wins — under
// one short deadline, so a dead or slow peer delays the fall-through to
// simulation by at most FetchTimeout. Payloads are verified (declared
// hash against the bytes, then a full decode) before being trusted;
// corrupt responses are rejected and counted, never served.
func (p *peerNet) fetch(k store.Key) ([]byte, bool) {
	targets := p.otherOwners(k)
	if len(targets) == 0 {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.fetchTimeout)
	defer cancel()

	results := make(chan []byte, len(targets))
	for _, t := range targets {
		go func(target string) {
			data, err := p.fetchOne(ctx, target, k)
			if err != nil {
				if isCorrupt(err) {
					p.corrupt.Add(1)
					p.log.Warn("peer served a corrupt payload", "peer", target, "key", k.String(), "err", err)
				}
				results <- nil
				return
			}
			results <- data
		}(t)
	}
	for range targets {
		if data := <-results; data != nil {
			p.fetchHits.Add(1)
			return data, true
		}
	}
	p.fetchMisses.Add(1)
	return nil, false
}

// corruptError marks a payload that failed verification, distinguishing
// it (for the rejected-corrupt counter) from plain misses and transport
// errors.
type corruptError struct{ err error }

func (e *corruptError) Error() string { return e.err.Error() }

func isCorrupt(err error) bool {
	var ce *corruptError
	return errors.As(err, &ce)
}

// fetchOne performs one GET /v1/results/{key} against a peer and
// verifies what comes back.
func (p *peerNet) fetchOne(ctx context.Context, target string, k store.Key) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/results/"+k.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: %s", target, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > maxResultBytes {
		return nil, &corruptError{fmt.Errorf("payload exceeds %d bytes", int64(maxResultBytes))}
	}
	if err := verifyPayload(data, resp.Header.Get(payloadHashHeader)); err != nil {
		return nil, err
	}
	return data, nil
}

// verifyDeclaredHash checks payload bytes against their declared hash —
// the first gate every peer payload passes. A missing declaration is
// rejected too: an unverifiable payload is as useless as a corrupt one.
func verifyDeclaredHash(data []byte, declaredHex string) error {
	if declaredHex == "" {
		return &corruptError{fmt.Errorf("peer response lacks %s", payloadHashHeader)}
	}
	sum := sha256.Sum256(data)
	if !strings.EqualFold(hex.EncodeToString(sum[:]), declaredHex) {
		return &corruptError{fmt.Errorf("payload hash %x does not match declared %s", sum, declaredHex)}
	}
	return nil
}

// classifyPayload decides which store namespace peer-delivered bytes
// belong to by decoding them: a result payload (exp.EncodeResult bytes)
// or a checkpoint container (internal/snap bytes, whose own header +
// payload SHA-256 are the integrity check). The two formats are
// structurally disjoint, so classification is unambiguous; bytes that
// are neither are corrupt. A snapshot with a stale layout version is
// reported as ErrVersion (not corrupt): it is well-formed, just useless
// to this generation of the code.
func classifyPayload(data []byte) (store.Kind, error) {
	if _, err := exp.DecodeResult(data); err == nil {
		return store.KindResult, nil
	}
	if _, err := snap.NewReader(data); err == nil {
		return store.KindSnapshot, nil
	} else if errors.Is(err, snap.ErrVersion) {
		return store.KindSnapshot, err
	}
	return store.KindResult, &corruptError{fmt.Errorf("payload decodes as neither result nor snapshot")}
}

// verifyPayload checks peer-delivered bytes against their declared hash
// and decodes them: the two-layer gate every peer payload passes before
// it is persisted or served. The decode layer accepts both payload kinds
// the /v1/results wire carries — results and snapshot containers.
func verifyPayload(data []byte, declaredHex string) error {
	if err := verifyDeclaredHash(data, declaredHex); err != nil {
		return err
	}
	_, err := classifyPayload(data)
	return err
}

// push replicates a freshly-computed payload to the key's other owners,
// asynchronously: the computing worker's response is never delayed by
// replication, and delivery failures are counted, not propagated. Each
// owner is tried PushAttempts times under capped jittered backoff, which
// rides out worker restarts and chaos-injected faults; a peer that stays
// unreachable simply misses the payload until read-through repair
// catches it up.
func (p *peerNet) push(k store.Key, payload []byte) {
	targets := p.otherOwners(k)
	if len(targets) == 0 {
		return
	}
	sum := sha256.Sum256(payload)
	declared := hex.EncodeToString(sum[:])
	for _, t := range targets {
		p.pushes.Add(1)
		go func(target string) {
			defer p.pushes.Done()
			var lastErr error
			for attempt := 0; attempt < p.pushAttempts; attempt++ {
				if attempt > 0 {
					time.Sleep(p.pushBackoff(attempt - 1))
				}
				if lastErr = p.pushOnce(target, k, payload, declared); lastErr == nil {
					p.pushOK.Add(1)
					return
				}
			}
			p.pushFails.Add(1)
			p.log.Warn("replica push failed", "key", k.String(), "peer", target, "attempts", p.pushAttempts, "err", lastErr)
		}(t)
	}
}

// pushOnce performs one PUT /v1/results/{key} delivery attempt.
func (p *peerNet) pushOnce(target string, k store.Key, payload []byte, declared string) error {
	ctx, cancel := context.WithTimeout(context.Background(), max(p.fetchTimeout, 5*time.Second))
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, target+"/v1/results/"+k.String(), bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(payloadHashHeader, declared)
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer %s: %s", target, resp.Status)
	}
	return nil
}

// pushBackoff mirrors the fleet's retry envelope: capped exponential,
// jittered ±50% so simultaneous pushes from many workers don't
// resynchronize against a restarting peer.
func (p *peerNet) pushBackoff(attempt int) time.Duration {
	d := p.pushBase << min(attempt, 16)
	if d > p.pushMax || d <= 0 {
		d = p.pushMax
	}
	p.rngMu.Lock()
	f := 0.5 + p.rng.Float64()
	p.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// maxResultBytes bounds a single result payload on the peer wire, both
// directions. Matches the request-body cap on the JSON endpoints.
const maxResultBytes = 8 << 20

// --- /v1/results handlers (registered whether or not a peer tier is
// configured: the GET side is also a useful raw-result export) ---

// handleResultGet serves the raw stored payload for a key — the exact
// EncodeResult bytes for a result, or the snap container bytes for a
// checkpoint — with their SHA-256 declared in a header so the fetching
// peer can verify before trusting. Result and snapshot key spaces are
// disjoint by construction (exp.SimSpec.Key vs PrefixKey), so one
// endpoint serves both namespaces: a result miss falls through to the
// snapshot namespace, which is how checkpoints travel to ring peers for
// cross-worker resume. Reads work even when the store is degraded
// (read-only): a worker with a dead disk keeps serving every payload it
// already holds.
func (s *Server) handleResultGet(w http.ResponseWriter, r *http.Request) {
	st := s.runner.Options().Store
	if st == nil {
		httpError(w, http.StatusNotFound, errNoStore)
		return
	}
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	data, ok := st.Get(key)
	if !ok {
		data, ok = st.GetKind(key, store.KindSnapshot)
	}
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no payload for key %s", key))
		return
	}
	sum := sha256.Sum256(data)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(payloadHashHeader, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleResultPut ingests a replica payload pushed by a peer. The body
// is verified — declared hash against the received bytes, then a full
// decode — before it touches the store, so a corrupt or truncated push
// can never poison the warm tier; rejects are counted. The decode also
// classifies the payload, routing it to the matching store namespace:
// results and snapshots replicate over the same wire but never mix on
// disk. A degraded (read-only) store refuses with 503: the pusher counts
// a failure and the payload stays wherever it already is.
func (s *Server) handleResultPut(w http.ResponseWriter, r *http.Request) {
	st := s.runner.Options().Store
	if st == nil {
		httpError(w, http.StatusNotFound, errNoStore)
		return
	}
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultBytes))
	if err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("serve: read payload: %w", err))
		return
	}
	if err := verifyDeclaredHash(data, r.Header.Get(payloadHashHeader)); err != nil {
		if s.peer != nil {
			s.peer.corrupt.Add(1)
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	kind, err := classifyPayload(data)
	if err != nil {
		if s.peer != nil && isCorrupt(err) {
			s.peer.corrupt.Add(1)
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if st.ContainsKind(key, kind) {
		// Already replicated (a concurrent push, or read-through repair
		// beat us): nothing to write.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err := st.PutKind(key, kind, data); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

var errNoStore = fmt.Errorf("serve: no result store configured")
