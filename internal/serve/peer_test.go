package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/store"
)

// peerService builds a service joined to a replication ring. peers may
// include the service's own (not-yet-known) URL — Self is injected after
// the listener exists via the two-step construction below.
func peerService(t *testing.T, opts exp.Options, self string, peers []string, st *store.Store) *testService {
	t.Helper()
	cfg := Config{
		Workers: 2,
		Peer: &PeerConfig{
			Self:            self,
			Peers:           peers,
			Replicas:        2,
			FetchTimeout:    2 * time.Second,
			PushAttempts:    2,
			PushBaseBackoff: 10 * time.Millisecond,
			PushMaxBackoff:  50 * time.Millisecond,
		},
	}
	return newService(t, opts, cfg, st)
}

func replicationStats(t *testing.T, s *testService) ReplicationStats {
	t.Helper()
	resp, body := s.get(t, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: %d", resp.StatusCode)
	}
	var out struct {
		Replication *ReplicationStats `json:"replication"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Replication == nil {
		t.Fatal("/v1/stats has no replication section on a peer-configured worker")
	}
	return *out.Replication
}

// TestResultGetServesVerifiedPayload: GET /v1/results/{key} returns the
// exact stored EncodeResult bytes with their SHA-256 declared in the
// header — the contract every hedged peer fetch verifies against.
func TestResultGetServesVerifiedPayload(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 2}, nil)
	spec := tinySpec("result-get")
	if resp, body := s.post(t, "/v1/sim", spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: %d %s", resp.StatusCode, body)
	}
	prepared, err := s.runner.PrepareSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := prepared.Key()

	resp, body := s.get(t, "/v1/results/"+key.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d %s", resp.StatusCode, body)
	}
	sum := sha256.Sum256(body)
	if got := resp.Header.Get(payloadHashHeader); got != hex.EncodeToString(sum[:]) {
		t.Errorf("declared hash %q does not match body hash %x", got, sum)
	}
	if _, err := exp.DecodeResult(body); err != nil {
		t.Errorf("served payload does not decode: %v", err)
	}
	stored, ok := s.store.Get(key)
	if !ok || !bytes.Equal(stored, body) {
		t.Error("served payload is not byte-identical to the store entry")
	}

	if resp, _ := s.get(t, "/v1/results/"+store.KeyOf([]byte("absent")).String()); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET of unknown key: %d, want 404", resp.StatusCode)
	}
	if resp, _ := s.get(t, "/v1/results/not-a-key"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET of malformed key: %d, want 400", resp.StatusCode)
	}
}

// putResult PUTs a payload with an explicitly declared hash (possibly a
// lie, for the corruption tests).
func putResult(t *testing.T, base string, key store.Key, payload []byte, declared string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/results/"+key.String(), bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if declared != "" {
		req.Header.Set(payloadHashHeader, declared)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestResultPutVerifiesAndPersists: a pushed replica lands only after
// its bytes match the declared hash AND decode as a result; everything
// else bounces with 400 and is counted, so a corrupt push can never
// poison a peer's warm store.
func TestResultPutVerifiesAndPersists(t *testing.T) {
	// Compute a genuine payload on one service...
	src := newService(t, tinyOpts(), Config{Workers: 2}, nil)
	spec := tinySpec("result-put")
	if resp, body := src.post(t, "/v1/sim", spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: %d %s", resp.StatusCode, body)
	}
	prepared, err := src.runner.PrepareSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := prepared.Key()
	payload, ok := src.store.Get(key)
	if !ok {
		t.Fatal("computed result not in source store")
	}
	sum := sha256.Sum256(payload)
	declared := hex.EncodeToString(sum[:])

	// ...and push it to a fresh ring member.
	dst := peerService(t, tinyOpts(), "http://self.invalid", nil, nil)
	if resp := putResult(t, dst.ts.URL, key, payload, declared); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid PUT: %d, want 204", resp.StatusCode)
	}
	got, ok := dst.store.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("pushed payload not persisted byte-identically")
	}
	// Idempotent: a duplicate push is acknowledged without a rewrite.
	if resp := putResult(t, dst.ts.URL, key, payload, declared); resp.StatusCode != http.StatusNoContent {
		t.Errorf("duplicate PUT: %d, want 204", resp.StatusCode)
	}

	// Corruption gauntlet — each variant must bounce with 400 and leave
	// the store untouched.
	freshKey := store.KeyOf([]byte("poison-target"))
	truncated := payload[:len(payload)/2]
	cases := []struct {
		name     string
		body     []byte
		declared string
	}{
		{"hash mismatch", truncated, declared},
		{"undecodable but honestly hashed", []byte("garbage"), hexOf([]byte("garbage"))},
		{"missing hash declaration", payload, ""},
	}
	before := replicationStats(t, dst).CorruptRejected
	for _, tc := range cases {
		if resp := putResult(t, dst.ts.URL, freshKey, tc.body, tc.declared); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", tc.name, resp.StatusCode)
		}
		if dst.store.Contains(freshKey) {
			t.Fatalf("%s: corrupt payload reached the store", tc.name)
		}
	}
	if after := replicationStats(t, dst).CorruptRejected; after-before != int64(len(cases)) {
		t.Errorf("corrupt_rejected advanced by %d, want %d", after-before, len(cases))
	}
}

func hexOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestOversizedBodyGets413 pins the net/http MaxBytesReader contract on
// the JSON endpoints: a request body past the cap is answered with 413
// (not a generic 400), which also lets net/http close the connection so
// the client stops streaming a body nobody will read.
func TestOversizedBodyGets413(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 1}, nil)
	// Well-formed JSON up to the cap, so the decoder is still reading —
	// and hits the byte limit — rather than bailing on a syntax error.
	big := append([]byte(`{"name":"`), bytes.Repeat([]byte("x"), maxResultBytes+1)...)
	big = append(big, '"', '}')
	resp, err := http.Post(s.ts.URL+"/v1/sim", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized /v1/sim body: %d, want 413", resp.StatusCode)
	}
}

// TestPeerFetchAvoidsRecompute: once a ring sibling holds a result, a
// member that misses locally serves the same spec via a live peer fetch
// instead of simulating, and repairs the payload into its own store.
// (The sibling is deliberately not peer-configured, so no push can land
// the result early — the fetch path alone must explain the hit.)
func TestPeerFetchAvoidsRecompute(t *testing.T) {
	opts := tinyOpts()
	a := newService(t, opts, Config{Workers: 2}, nil)
	b := peerService(t, opts, "http://b.invalid", []string{a.ts.URL}, nil)

	spec := tinySpec("peer-fetch")
	if resp, body := a.post(t, "/v1/sim", spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("sim on a: %d %s", resp.StatusCode, body)
	}
	resp, body := b.post(t, "/v1/sim", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim on b: %d %s", resp.StatusCode, body)
	}
	var sr simResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Source != "peer" {
		t.Errorf("source = %q, want \"peer\" (b holds nothing locally)", sr.Source)
	}
	if n := b.runner.SimsRun(); n != 0 {
		t.Errorf("b simulated %d times despite a peer holding the result", n)
	}
	if st := replicationStats(t, b); st.FetchHits == 0 {
		t.Errorf("fetch_hits = 0 after a successful peer fetch: %+v", st)
	}
	// Read-through repair: the fetched payload is now b's own store
	// entry, byte-identical to a's.
	prepared, _ := b.runner.PrepareSpec(spec)
	want, _ := a.store.Get(prepared.Key())
	got, ok := b.store.Get(prepared.Key())
	if !ok || !bytes.Equal(got, want) {
		t.Error("peer-fetched payload not repaired into the local store byte-identically")
	}
}

// TestPeerFetchRejectsCorrupt: a ring member serving corrupt payloads —
// wrong bytes under a confident hash, or an honest hash over garbage —
// must not be trusted: the fetch is rejected and counted, and the worker
// falls back to a clean local simulation.
func TestPeerFetchRejectsCorrupt(t *testing.T) {
	garbage := []byte("not a result payload")
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			// Honest hash over undecodable bytes: transport checks pass,
			// the decode gate must still reject it.
			w.Header().Set(payloadHashHeader, hexOf(garbage))
			w.WriteHeader(http.StatusOK)
			w.Write(garbage)
		default:
			w.WriteHeader(http.StatusNoContent) // swallow pushes quietly
		}
	}))
	t.Cleanup(evil.Close)

	s := peerService(t, tinyOpts(), "http://self.invalid", []string{evil.URL}, nil)
	resp, body := s.post(t, "/v1/sim", tinySpec("corrupt-peer"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: %d %s", resp.StatusCode, body)
	}
	var sr simResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Source != "computed" {
		t.Errorf("source = %q, want \"computed\" (corrupt peer payload must not be served)", sr.Source)
	}
	st := replicationStats(t, s)
	if st.CorruptRejected == 0 {
		t.Errorf("corrupt_rejected = 0 after a corrupt peer response: %+v", st)
	}
	if st.FetchMisses == 0 {
		t.Errorf("fetch_misses = 0; rejecting every owner must count a miss: %+v", st)
	}
}

// TestResultGetSurvivesDegradedStore: a worker whose disk has failed
// (sticky read-only degraded mode) keeps serving every payload it
// already holds — exactly what lets its ring siblings repair reads while
// it limps — and refuses pushed replicas with 503 instead of lying.
func TestResultGetSurvivesDegradedStore(t *testing.T) {
	failing := false
	st, err := store.Open(t.TempDir(), store.Options{FailWrites: func() error {
		if failing {
			return errors.New("injected disk failure")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, tinyOpts(), Config{Workers: 2}, st)

	spec := tinySpec("degraded-get")
	if resp, body := s.post(t, "/v1/sim", spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: %d %s", resp.StatusCode, body)
	}
	prepared, _ := s.runner.PrepareSpec(spec)
	key := prepared.Key()

	// Kill the disk; the next write degrades the store for good.
	failing = true
	if resp, _ := s.post(t, "/v1/sim", tinySpec("degraded-trigger")); resp.StatusCode != http.StatusOK {
		t.Fatalf("sim under failing writes should still answer: %d", resp.StatusCode)
	}
	if deg, _ := st.Degraded(); !deg {
		t.Fatal("store did not degrade after the injected write failure")
	}

	resp, body := s.get(t, "/v1/results/"+key.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET on a degraded store: %d, want 200 (reads must survive)", resp.StatusCode)
	}
	if _, err := exp.DecodeResult(body); err != nil {
		t.Errorf("degraded-mode payload does not decode: %v", err)
	}

	// Pushed replicas are refused honestly: the pusher must count a
	// failure, not believe the payload is durable here.
	other := store.KeyOf([]byte("degraded-push"))
	payload := body // a valid result payload, offered under a new key
	if resp := putResult(t, s.ts.URL, other, payload, hexOf(payload)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("PUT to a degraded store: %d, want 503", resp.StatusCode)
	}
}

// TestCheckpointTravelsToPeer: a ring member that misses a snapshot
// locally hedge-fetches it from the member that computed it — over the
// same GET /v1/results/{key} verified path results use — so a retry (or
// a measure-extension) landing on a different worker resumes mid-run
// instead of cold-starting. Worker a computes with checkpoints on;
// worker b, with an empty store and a as its only ring sibling, is asked
// a longer-measure variant of the same spec and must resume from a's
// deepest snapshot.
func TestCheckpointTravelsToPeer(t *testing.T) {
	opts := tinyOpts()
	opts.Checkpoints = true
	opts.CheckpointEvery = 2_000

	a := newService(t, opts, Config{Workers: 2}, nil)
	spec := tinySpec("ckpt-travel")
	if resp, body := a.post(t, "/v1/sim", spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("sim on a: %d %s", resp.StatusCode, body)
	}
	if a.runner.CheckpointsWritten() == 0 {
		t.Fatal("a wrote no snapshots")
	}

	ext := spec
	ext.Measure = opts.Measure + 4_000
	// Cold checkpoint-free reference for the extended window.
	coldOpts := tinyOpts()
	cold := exp.NewRunner(coldOpts)
	preparedCold, err := cold.PrepareSpec(ext)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cold.RunSpec(preparedCold)
	if err != nil {
		t.Fatal(err)
	}

	b := peerService(t, opts, "http://b.invalid", []string{a.ts.URL}, nil)
	resp, body := b.post(t, "/v1/sim", ext)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim on b: %d %s", resp.StatusCode, body)
	}
	var sr simResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Source != "computed" {
		t.Fatalf("source = %q, want computed (a holds no result for the extended window)", sr.Source)
	}
	// a's snapshots cover the shared prefix up to its own measure end.
	deepest := opts.Warmup + 3*opts.CheckpointEvery
	if sr.ResumedFrom != deepest {
		t.Errorf("resumed_from = %d, want a's deepest snapshot %d", sr.ResumedFrom, deepest)
	}
	if n := b.runner.CheckpointsRestored(); n != 1 {
		t.Errorf("b restored %d checkpoints, want 1", n)
	}
	got, err := exp.DecodeResult(sr.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("peer-resumed result diverged from a cold run")
	}
}

// TestSnapshotPutLandsInSnapshotNamespace: a pushed snapshot container
// is classified by its bytes and persisted under the snapshot namespace,
// never mixed into the result namespace — and garbage that is neither a
// result nor a snapshot still bounces.
func TestSnapshotPutLandsInSnapshotNamespace(t *testing.T) {
	opts := tinyOpts()
	opts.Checkpoints = true
	opts.CheckpointEvery = 2_000
	a := newService(t, opts, Config{Workers: 2}, nil)
	spec := tinySpec("ckpt-put")
	if resp, body := a.post(t, "/v1/sim", spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: %d %s", resp.StatusCode, body)
	}
	prepared, err := a.runner.PrepareSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	pkey := prepared.PrefixKey(prepared.Warmup)
	payload, ok := a.store.GetKind(pkey, store.KindSnapshot)
	if !ok {
		t.Fatal("warmup-boundary snapshot missing from a's store")
	}

	dst := peerService(t, tinyOpts(), "http://self.invalid", nil, nil)
	if resp := putResult(t, dst.ts.URL, pkey, payload, hexOf(payload)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("snapshot PUT: %d, want 204", resp.StatusCode)
	}
	got, ok := dst.store.GetKind(pkey, store.KindSnapshot)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("pushed snapshot not persisted byte-identically in the snapshot namespace")
	}
	if dst.store.Contains(pkey) {
		t.Error("snapshot payload leaked into the result namespace")
	}

	// And GET serves it back from the snapshot namespace, hash declared.
	resp, body := dst.get(t, "/v1/results/"+pkey.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: %d", resp.StatusCode)
	}
	if !bytes.Equal(body, payload) || resp.Header.Get(payloadHashHeader) != hexOf(payload) {
		t.Error("GET did not serve the snapshot bytes with their declared hash")
	}
}
