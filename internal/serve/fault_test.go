package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"dsarp/internal/exp"
)

// slowSpec is a spec long enough that a job stays visibly in flight while
// a test connects, drops, and reconnects around it.
func slowSpec(name string, seed int64) exp.SimSpec {
	return exp.SimSpec{
		Name:           name,
		BenchmarkNames: []string{"stream.triad"},
		Mechanism:      "REFab",
		DensityGb:      8,
		Seed:           seed,
		Measure:        600_000,
	}
}

// TestSSEReconnectReplay: a subscriber that loses its connection mid-job
// and reconnects must receive the full event history in completion order
// — no duplicates, no gaps — exactly as if it had never dropped.
func TestSSEReconnectReplay(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 1}, nil)
	specs := []exp.SimSpec{slowSpec("rc-a", 1), slowSpec("rc-b", 2), slowSpec("rc-c", 3)}
	resp, body := s.post(t, "/v1/sweep", sweepRequest{Name: "reconnect", Specs: specs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)

	// First subscription: read exactly one event, then drop the
	// connection the way a flaky network would.
	stream, err := http.Get(s.ts.URL + "/v1/jobs/" + sw.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	var first jobEvent
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			if err := json.Unmarshal([]byte(data), &first); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			break
		}
	}
	stream.Body.Close()
	if first.Type != eventTask || first.Done != 1 {
		t.Fatalf("first streamed event = %+v, want task 1/%d", first, len(specs))
	}

	// The drop happened mid-job: with one worker and two specs still
	// queued, the job cannot be done yet.
	_, body = s.get(t, "/v1/jobs/"+sw.ID)
	var st jobStatus
	json.Unmarshal(body, &st)
	if st.State != "running" {
		t.Fatalf("job state after drop = %q, want running (drop was not mid-job)", st.State)
	}

	// Reconnect: the replay must start from event 1 and run gaplessly to
	// done, each task index appearing exactly once.
	events := readSSE(t, s, sw.ID)
	if len(events) != len(specs)+1 {
		t.Fatalf("reconnect got %d events, want %d tasks + done", len(events), len(specs))
	}
	seen := map[int]int{}
	for i, ev := range events[:len(specs)] {
		if ev.Type != eventTask {
			t.Errorf("event %d type = %q, want task", i, ev.Type)
		}
		if ev.Done != i+1 || ev.Total != len(specs) {
			t.Errorf("event %d progress = %d/%d, want %d/%d", i, ev.Done, ev.Total, i+1, len(specs))
		}
		seen[ev.Index]++
	}
	for i := range specs {
		if seen[i] != 1 {
			t.Errorf("task %d appeared %d times in the replay, want exactly once", i, seen[i])
		}
	}
	if last := events[len(specs)]; last.Type != eventDone || last.Done != len(specs) {
		t.Errorf("terminal event = %+v", last)
	}
	if events[0] != first {
		t.Errorf("replay event 0 = %+v differs from the originally streamed %+v", events[0], first)
	}
}

// TestRetryAfterEstimate pins the Retry-After formula: backlog divided
// across the worker pool, times the observed per-simulation runtime,
// clamped to [1, 600].
func TestRetryAfterEstimate(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 2, MaxQueue: 8}, nil)

	set := func(free int, ewma float64) {
		s.mu.Lock()
		s.free, s.simEWMA = free, ewma
		s.mu.Unlock()
	}
	cases := []struct {
		free int
		ewma float64
		want int
	}{
		{8, 0, 1},        // empty queue, no history: floor of 1s
		{5, 0, 2},        // 3 queued, no history: 1s per task over 2 workers
		{2, 2.0, 6},      // 6 queued at 2s each over 2 workers
		{0, 1000.0, 600}, // pathological estimate hits the ceiling
	}
	for _, c := range cases {
		set(c.free, c.ewma)
		if got := s.retryAfterSecs(); got != c.want {
			t.Errorf("retryAfterSecs(free=%d, ewma=%g) = %d, want %d", c.free, c.ewma, got, c.want)
		}
	}
	set(8, 0) // restore so cleanup drains an empty queue
}

// TestRetryAfterHeaderOnRefusal: both refusal paths — 429 queue-full and
// 503 draining — must carry a positive integer Retry-After.
func TestRetryAfterHeaderOnRefusal(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 1, MaxQueue: 3}, nil)

	// Fill the queue ledger directly (no simulations needed) and watch a
	// submission bounce with advice.
	if err := s.reserve(s.maxQueue); err != nil {
		t.Fatal(err)
	}
	resp, _ := s.post(t, "/v1/sim", tinySpec("ra-429"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if secs := retryAfterHeader(t, resp); secs < 1 {
		t.Errorf("429 Retry-After = %d, want >= 1", secs)
	}
	s.release(s.maxQueue)
	for i := 0; i < s.maxQueue; i++ {
		s.tasks.Done()
	}

	// Draining refuses with 503 — still with a wait estimate, since a
	// drained worker is typically about to be restarted.
	s2 := newService(t, tinyOpts(), Config{Workers: 1}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ = s2.post(t, "/v1/sim", tinySpec("ra-503"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", resp.StatusCode)
	}
	if secs := retryAfterHeader(t, resp); secs < 1 {
		t.Errorf("503 Retry-After = %d, want >= 1", secs)
	}
}

func retryAfterHeader(t *testing.T, resp *http.Response) int {
	t.Helper()
	h := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(h)
	if err != nil {
		t.Fatalf("Retry-After = %q, not an integer: %v", h, err)
	}
	return secs
}
