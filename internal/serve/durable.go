package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsarp/internal/exp"
	"dsarp/internal/journal"
	"dsarp/internal/store"
)

// Job durability: with Config.JournalDir set, every job is backed by an
// append-only journal (internal/journal) named <id>.jsonl — a header
// pinning the job's identity and full spec list, then one line per
// completed task. The result payloads themselves are NOT journaled: they
// live in the content-addressed store, and the journal records only each
// task's key and outcome. On startup the server adopts every journal in
// the directory: the job comes back under the same ID, its event history
// is reconstructed from journal+store (so GET /v1/jobs/{id}, /results,
// /table, and SSE replay all work across a hard crash), and specs that
// never completed — or whose store entries were GC'd out from under the
// journal — are re-enqueued. Re-running a spec is idempotent (results are
// content-addressed and the runner's singleflight dedups against
// concurrent identical submissions), so the assembled table after any
// number of crashes is byte-identical to an uninterrupted run.

// jobHeader is the first journal line: everything needed to rebuild the
// job object and re-enqueue its work. Schema pins the store generation —
// a journal from an older schema is dropped at adoption, because the
// generation sweep already reclaimed every store entry its keys address.
type jobHeader struct {
	Type       string        `json:"type"` // "job"
	ID         string        `json:"id"`
	Name       string        `json:"name,omitempty"`
	Experiment string        `json:"experiment,omitempty"`
	Schema     string        `json:"schema"`
	Specs      []exp.SimSpec `json:"specs"`
}

// taskLine records one completed task: its slot, its store key, and how
// it was served. Written (fsynced) before the completion is published to
// subscribers, so anything a client ever saw is recoverable.
type taskLine struct {
	Type   string `json:"type"` // "task"
	Index  int    `json:"index"`
	Key    string `json:"key"`
	Source string `json:"source,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

const headerType, taskType = "job", "task"

// createJob registers a job and, when durability is on, makes its journal
// header durable before the job ID is ever returned to a client: any ID a
// client observes is re-resolvable after a crash.
func (s *Server) createJob(name string, specs []exp.SimSpec, experiment string, assemble func([]taskOutcome) (string, error)) *job {
	j := s.jobs.createExperiment(name, specs, experiment, assemble)
	if s.journalDir == "" {
		return j
	}
	path := filepath.Join(s.journalDir, j.id+".jsonl")
	jl, err := journal.OpenAppend(path)
	if err == nil {
		err = jl.Append(jobHeader{
			Type: headerType, ID: j.id, Name: name, Experiment: experiment,
			Schema: exp.SchemaVersion, Specs: specs,
		})
	}
	if err != nil {
		// Degraded, not fatal: the job still runs, it just won't survive a
		// crash — the same posture as a disabled store.
		if jl != nil {
			jl.Close()
		}
		s.noteJournalErr(err)
		return j
	}
	j.mu.Lock()
	j.jl, j.jlPath, j.onJournalErr = jl, path, s.noteJournalErr
	j.mu.Unlock()
	return j
}

// adoptJobs scans the journal directory and adopts every job it holds,
// returning the tasks that must be re-enqueued (specs with no durable
// outcome). Called once from New, before any request is served.
func (s *Server) adoptJobs() []task {
	if s.journalDir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.journalDir)
	if err != nil {
		s.log.Warn("cannot read job journals", "dir", s.journalDir, "err", err)
		return nil
	}
	var adopted []task
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".jsonl") {
			continue
		}
		adopted = append(adopted, s.adoptJob(filepath.Join(s.journalDir, de.Name()))...)
	}
	return adopted
}

// adoptJob rebuilds one job from its journal. Outcomes are reconstructed
// by probing the store for each journaled key: a hit restores the task
// (payload bytes exactly as originally served), a miss — the entry was
// GC'd — returns the spec to pending. The SSE event history is rebuilt in
// journal order, which is the original completion order, so a
// reconnecting subscriber sees the same ordered replay a crash
// interrupted. Unreadable or foreign journals are skipped (and logged),
// never deleted — except journals from an older schema generation, whose
// store entries are already unreachable.
func (s *Server) adoptJob(path string) []task {
	lines, err := journal.Read(path)
	if err != nil {
		s.log.Warn("unreadable job journal; not adopting", "path", path, "err", err)
		return nil
	}
	if len(lines) == 0 {
		return nil // header never landed: the job ID was never returned
	}
	var head jobHeader
	if err := json.Unmarshal(lines[0], &head); err != nil ||
		head.Type != headerType || head.ID == "" {
		s.log.Warn("journal does not start with a job header; not adopting", "path", path)
		return nil
	}
	if head.Schema != exp.SchemaVersion {
		os.Remove(path)
		s.log.Info("dropped job journal from old schema", "job", head.ID, "schema", head.Schema, "current", exp.SchemaVersion)
		return nil
	}

	specs := head.Specs
	j := &job{
		id:         head.ID,
		name:       head.Name,
		total:      len(specs),
		experiment: head.Experiment,
		outcomes:   make([]taskOutcome, len(specs)),
	}
	if head.Experiment != "" {
		if e, ok := exp.LookupExperiment(head.Experiment); ok {
			j.assemble = s.assembler(e, specs)
		} else {
			j.assemble = func([]taskOutcome) (string, error) {
				return "", fmt.Errorf("serve: experiment %q no longer registered", head.Experiment)
			}
		}
	}

	st := s.runner.Options().Store
	filled := make([]bool, len(specs))
	gced := 0
	for _, raw := range lines[1:] {
		var tl taskLine
		if json.Unmarshal(raw, &tl) != nil || tl.Type != taskType {
			continue
		}
		if tl.Index < 0 || tl.Index >= len(specs) || filled[tl.Index] {
			continue // out of range, or a duplicate from an earlier restart
		}
		out := taskOutcome{Index: tl.Index, Key: tl.Key}
		if tl.Error != "" {
			out.Error = tl.Error
		} else {
			var payload []byte
			ok := false
			if key, err := store.ParseKey(tl.Key); err == nil && st != nil {
				payload, ok = st.Get(key)
			}
			if !ok {
				// Journaled done, but the payload is gone (LRU eviction,
				// corruption heal, or no store at all): pending again. The
				// re-run is cheap if any fleet sibling still holds it warm.
				gced++
				continue
			}
			out.Source, out.Cached, out.Result = tl.Source, tl.Cached, payload
		}
		filled[tl.Index] = true
		j.outcomes[tl.Index] = out
		j.done++
		switch {
		case out.Error != "":
			j.errs++
		case out.Cached:
			j.cached++
		default:
			j.computed++
		}
		j.events = append(j.events, jobEvent{
			Type: eventTask, Index: tl.Index,
			Label: specs[tl.Index].Name + " " + specs[tl.Index].Mechanism,
			Key:   out.Key, Source: out.Source, Cached: out.Cached, Error: out.Error,
			Done: j.done, Total: j.total,
		})
	}

	if jl, err := journal.OpenAppend(path); err != nil {
		s.noteJournalErr(err)
	} else {
		j.jl, j.jlPath, j.onJournalErr = jl, path, s.noteJournalErr
	}
	s.jobs.adopt(j)

	if j.done == j.total {
		j.mu.Lock()
		j.finishLocked()
		j.mu.Unlock()
		s.log.Info("adopted job (complete)", "job", j.id, "total", j.total)
		return nil
	}
	var pending []task
	for i, sp := range specs {
		if !filled[i] {
			pending = append(pending, task{spec: sp, job: j, index: i})
		}
	}
	s.log.Info("adopted job", "job", j.id, "done", j.done, "total", j.total, "reenqueued", len(pending), "gced", gced)
	return pending
}

// noteJournalErr records the first journal write failure: the server
// keeps completing work but reports itself degraded, because job state is
// no longer crash-durable.
func (s *Server) noteJournalErr(err error) {
	s.mu.Lock()
	first := s.journalErr == ""
	if first {
		s.journalErr = err.Error()
	}
	s.mu.Unlock()
	if first {
		s.log.Warn("job journal failure; serving degraded", "err", err)
	}
}

// degradedState reports whether the server should advertise itself
// degraded — the store has flipped read-only, or job journaling failed —
// and why. Degraded is an honest "still correct, no longer durable":
// health checks stay 200 so orchestrators deprioritize rather than kill.
func (s *Server) degradedState() (bool, string) {
	if st := s.runner.Options().Store; st != nil {
		if deg, reason := st.Degraded(); deg {
			return true, "store: " + reason
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journalErr != "" {
		return true, "journal: " + s.journalErr
	}
	return false, ""
}
