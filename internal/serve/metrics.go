package serve

import (
	"dsarp/internal/exp"
	"dsarp/internal/telemetry"
)

// serverMetrics holds the counters the serving path updates directly.
// Everything else on /metrics is a scrape-time callback over counters
// that already exist (runner, store, peer tier, chaos middleware), so
// exposition never double-books state and nothing is added to the
// simulation hot path.
type serverMetrics struct {
	refused    *telemetry.CounterVec   // reason: queue_full | draining
	simSeconds *telemetry.HistogramVec // source: computed | store | memory | peer
	// resumeCycle records the checkpoint cycle each resumed computation
	// restarted from (cold runs are not observed).
	resumeCycle *telemetry.Histogram
}

// resumeCycleBuckets span the checkpoint-cycle scale: the smoke-test
// warmups (tens of thousands of DRAM cycles) up through paper-scale
// windows (200k warmup + 2M measure).
var resumeCycleBuckets = []float64{
	1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7,
}

// registerMetrics wires the server's observable state into reg and
// returns the handles for the directly-updated series. Called once from
// New; reg is also what GET /metrics renders.
func (s *Server) registerMetrics(reg *telemetry.Registry, chaos *Chaos) *serverMetrics {
	m := &serverMetrics{
		refused: reg.CounterVec("dsarp_refused_total",
			"Submissions refused at admission, by reason.", "reason"),
		simSeconds: reg.HistogramVec("dsarp_sim_seconds",
			"Per-simulation wall time by result source.",
			telemetry.SimSecondsBuckets, "source"),
		resumeCycle: reg.Histogram("dsarp_resume_cycle",
			"Checkpoint cycle resumed computations restored from.",
			resumeCycleBuckets),
	}
	// Pre-create the label combinations so every scrape exposes the full
	// catalog at zero, not just the series that happened to fire.
	m.refused.With("queue_full")
	m.refused.With("draining")
	for _, src := range []exp.RunSource{exp.SourceComputed, exp.SourceStore, exp.SourceMemory, exp.SourcePeer} {
		m.simSeconds.With(src.String())
	}

	reg.GaugeFunc("dsarp_queue_free", "Remaining queue+run slots.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.free)
	})
	reg.GaugeFunc("dsarp_queue_capacity", "Total queue+run slots.", func() float64 {
		return float64(s.maxQueue)
	})
	reg.GaugeFunc("dsarp_draining", "1 while the server refuses new work to drain.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return b2f(s.draining)
	})
	reg.GaugeFunc("dsarp_degraded", "1 while the store or job journal has lost durable writes.", func() float64 {
		deg, _ := s.degradedState()
		return b2f(deg)
	})
	reg.GaugeFunc("dsarp_retry_after_seconds",
		"Current Retry-After estimate a refused client would receive.", func() float64 {
			return float64(s.retryAfterSecs())
		})
	reg.GaugeFunc("dsarp_sse_subscribers", "Open job event streams.", func() float64 {
		return float64(s.sseSubs.Load())
	})
	jobs := reg.GaugeVec("dsarp_jobs", "Retained jobs by state.", "state")
	jobs.Func(func() float64 { running, _ := s.jobs.stateCounts(); return float64(running) }, "running")
	jobs.Func(func() float64 { _, done := s.jobs.stateCounts(); return float64(done) }, "done")

	reg.CounterFunc("dsarp_sims_computed_total",
		"Simulations actually executed (not served from any cache).", func() float64 {
			return float64(s.runner.SimsRun())
		})
	reg.CounterFunc("dsarp_store_hits_total",
		"Runs satisfied by the local result store.", func() float64 {
			return float64(s.runner.StoreHits())
		})
	reg.CounterFunc("dsarp_store_errs_total",
		"Store read/write errors observed by the runner.", func() float64 {
			return float64(s.runner.StoreErrs())
		})
	reg.CounterFunc("dsarp_checkpoints_written_total",
		"Simulation snapshots persisted to the store.", func() float64 {
			return float64(s.runner.CheckpointsWritten())
		})
	reg.CounterFunc("dsarp_checkpoint_written_bytes_total",
		"Snapshot bytes persisted to the store.", func() float64 {
			return float64(s.runner.CheckpointBytesWritten())
		})
	reg.CounterFunc("dsarp_checkpoints_restored_total",
		"Simulations resumed from a stored snapshot.", func() float64 {
			return float64(s.runner.CheckpointsRestored())
		})
	reg.CounterFunc("dsarp_checkpoint_restored_bytes_total",
		"Snapshot bytes restored into resumed simulations.", func() float64 {
			return float64(s.runner.CheckpointBytesRestored())
		})

	if st := s.runner.Options().Store; st != nil {
		reg.GaugeFunc("dsarp_store_entries", "Entries held by the local store (all kinds).", func() float64 {
			return float64(st.Stats().Entries)
		})
		reg.GaugeFunc("dsarp_store_bytes", "Bytes held by the local store (all kinds).", func() float64 {
			return float64(st.Stats().Bytes)
		})
		kindEntries := reg.GaugeVec("dsarp_store_kind_entries",
			"Entries held by the local store, by namespace kind.", "kind")
		kindEntries.Func(func() float64 { return float64(st.Stats().ResultEntries) }, "result")
		kindEntries.Func(func() float64 { return float64(st.Stats().SnapshotEntries) }, "snapshot")
		kindBytes := reg.GaugeVec("dsarp_store_kind_bytes",
			"Bytes held by the local store, by namespace kind.", "kind")
		kindBytes.Func(func() float64 { return float64(st.Stats().ResultBytes) }, "result")
		kindBytes.Func(func() float64 { return float64(st.Stats().SnapshotBytes) }, "snapshot")
		reg.CounterFunc("dsarp_store_evicted_total", "Entries removed by the byte cap.", func() float64 {
			return float64(st.Stats().Evicted)
		})
		reg.CounterFunc("dsarp_store_corrupt_total",
			"Entries healed (deleted) because verification failed.", func() float64 {
				return float64(st.Stats().Corrupt)
			})
		reg.CounterFunc("dsarp_store_expired_total",
			"Old-generation entries swept at open.", func() float64 {
				return float64(st.Stats().Expired)
			})
		reg.GaugeFunc("dsarp_store_degraded", "1 while the store is read-only after a write failure.", func() float64 {
			deg, _ := st.Degraded()
			return b2f(deg)
		})
	}

	if p := s.peer; p != nil {
		reg.CounterFunc("dsarp_peer_fetch_hits_total",
			"Hedged peer fetches that produced a verified payload.", func() float64 {
				return float64(p.fetchHits.Load())
			})
		reg.CounterFunc("dsarp_peer_fetch_misses_total",
			"Hedged peer fetches that fell through to simulation.", func() float64 {
				return float64(p.fetchMisses.Load())
			})
		reg.CounterFunc("dsarp_peer_push_ok_total",
			"Replica payloads delivered to an owner.", func() float64 {
				return float64(p.pushOK.Load())
			})
		reg.CounterFunc("dsarp_peer_push_fails_total",
			"Replica deliveries abandoned after all attempts.", func() float64 {
				return float64(p.pushFails.Load())
			})
		reg.CounterFunc("dsarp_peer_corrupt_rejected_total",
			"Peer payloads refused because hash or decode failed.", func() float64 {
				return float64(p.corrupt.Load())
			})
		reg.GaugeFunc("dsarp_peer_members", "Ring member count.", func() float64 {
			return float64(p.ring.Len())
		})
		reg.GaugeFunc("dsarp_peer_replicas", "Replication factor R.", func() float64 {
			return float64(p.replicas)
		})
	}

	if chaos != nil {
		faults := reg.CounterVec("dsarp_chaos_faults_total",
			"Injected faults by kind (chaos middleware).", "kind")
		faults.Func(func() float64 { return float64(chaos.fails.Load()) }, "fail")
		faults.Func(func() float64 { return float64(chaos.drops.Load()) }, "drop")
		faults.Func(func() float64 { return float64(chaos.stalls.Load()) }, "stall")
		faults.Func(func() float64 { return float64(chaos.kills.Load()) }, "kill")
		faults.Func(func() float64 { return float64(chaos.diskFails.Load()) }, "diskfail")
	}

	schema := reg.GaugeVec("dsarp_schema_info",
		"Always 1; the schema label pins the store generation.", "schema")
	schema.Func(func() float64 { return 1 }, exp.SchemaVersion)
	return m
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
