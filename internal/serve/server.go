// Package serve exposes the simulator as an HTTP service: single
// simulations, batched sweeps with job tracking and SSE progress, all
// deduplicated through the runner's singleflight layer and persisted in
// the content-addressed result store.
//
// API (all request/response bodies are JSON unless noted):
//
//	POST /v1/sim            one exp.SimSpec -> {key, source, cached, result}
//	POST /v1/sweep          {specs: [...]}  -> 202 {id, total, ...urls}
//	GET  /v1/experiments    the experiment registry: names, titles, spec
//	                        counts, and how much of each is already warm
//	                        in the store
//	POST /v1/experiments/{name}  enumerate the experiment's specs, fan
//	                        them into the sweep machinery -> 202 {id, ...,
//	                        table_url}; when the last spec lands the
//	                        rendered table is assembled from the results
//	GET  /v1/jobs/{id}          job status
//	GET  /v1/jobs/{id}/events   SSE progress stream (replays, then live)
//	GET  /v1/jobs/{id}/results  per-task outcomes once the job is done
//	GET  /v1/jobs/{id}/table    the assembled table (text/plain), for
//	                        experiment jobs once done — byte-identical to
//	                        the same experiment run locally
//	GET  /v1/stats          runner + store + queue counters
//	GET  /healthz           liveness
//
// Capacity is bounded: MaxQueue covers every queued-or-running task across
// the service; a submission that does not fit is rejected with 429 and a
// Retry-After header rather than buffered without limit. A response is
// byte-identical whether the result was computed, read from the store, or
// deduplicated against a concurrent identical request.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/sim"
	"dsarp/internal/telemetry"
)

// Config assembles a Server.
type Config struct {
	// Runner executes specs; its Store (if any) is the persistence layer
	// and its singleflight is the cross-request dedup layer.
	Runner *exp.Runner
	// Workers bounds concurrently-running simulations (default: GOMAXPROCS).
	Workers int
	// MaxQueue bounds queued-plus-running tasks (default 256). Submissions
	// beyond it get 429.
	MaxQueue int
	// Chaos, if non-nil, injects faults ahead of the /v1 handlers — see
	// the Chaos type. Production deployments leave it nil.
	Chaos *Chaos
	// JournalDir, if set, makes jobs crash-durable: every job is journaled
	// there and adopted back — same IDs, same event history, unfinished
	// specs re-enqueued — when the next Server starts on the directory.
	// Empty disables durability (jobs die with the process, as before).
	JournalDir string
	// Peer, if non-nil, joins this worker to the fleet's replicated
	// warm-store tier: local store misses for keys the ring places on
	// other members are hedge-fetched from them before simulating, and
	// computed results are pushed to the key's other owners. Requires a
	// store-backed Runner.
	Peer *PeerConfig
	// Log receives operational messages (journal adoption, degradation,
	// replication failures) as structured records. Nil discards them.
	Log *slog.Logger
	// Metrics is the registry GET /metrics renders; the server registers
	// its queue, runner, store, replication, and chaos series into it.
	// Nil gets a private registry — /metrics is always served.
	Metrics *telemetry.Registry
	// Trace, if non-nil, receives a serve-side span for every task whose
	// request carried an X-Dsarp-Trace header (see telemetry.Span).
	Trace *telemetry.Recorder
}

// task is one unit of queued work: a prepared spec, plus either a job slot
// (sweep) or a reply channel (synchronous /v1/sim). trace is the run's
// X-Dsarp-Trace header value, empty when the submitter sent none.
type task struct {
	spec  exp.SimSpec
	job   *job
	index int
	reply chan taskReply
	trace string
}

type taskReply struct {
	res sim.Result
	src exp.RunSource
	// resumedFrom is the checkpoint cycle the computation was restored
	// from, 0 for a cold (or cache/store-served) run.
	resumedFrom int64
	err         error
}

// Server owns the worker pool, the queue, and the job registry.
type Server struct {
	runner     *exp.Runner
	mux        *http.ServeMux
	handler    http.Handler // mux, possibly behind chaos middleware
	queue      chan task
	workersN   int
	journalDir string
	log        *slog.Logger
	peer       *peerNet // nil unless Config.Peer joined a replication tier

	reg     *telemetry.Registry
	metrics *serverMetrics
	trace   *telemetry.Recorder
	selfID  string       // this worker's fleet identity (Peer.Self), for spans
	sseSubs atomic.Int64 // open /events streams

	// halted simulates a crash for durability tests: once closed (halt),
	// workers stop without draining the queue — queued tasks are abandoned
	// exactly as a kill -9 would abandon them.
	halted   chan struct{}
	haltOnce sync.Once

	mu         sync.Mutex
	free       int // remaining queue+run slots
	maxQueue   int
	draining   bool
	simEWMA    float64 // EWMA of one computed simulation's wall time, seconds
	journalErr string  // first job-journal write failure; "" while healthy

	tasks   sync.WaitGroup // queued or running tasks
	workers sync.WaitGroup

	jobs jobRegistry
}

// New builds a Server and starts its workers. Call Drain to stop it.
func New(cfg Config) *Server {
	if cfg.Runner == nil {
		panic("serve: Config.Runner is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	s := &Server{
		runner:     cfg.Runner,
		queue:      make(chan task, cfg.MaxQueue),
		workersN:   cfg.Workers,
		journalDir: cfg.JournalDir,
		log:        cfg.Log,
		trace:      cfg.Trace,
		halted:     make(chan struct{}),
		free:       cfg.MaxQueue,
		maxQueue:   cfg.MaxQueue,
		jobs:       newJobRegistry(),
	}
	if s.log == nil {
		s.log = telemetry.DiscardLogger()
	}
	if s.journalDir != "" {
		if err := os.MkdirAll(s.journalDir, 0o755); err != nil {
			s.noteJournalErr(err)
			s.journalDir = ""
		}
	}
	if cfg.Peer != nil {
		if cfg.Runner.Options().Store == nil {
			panic("serve: Config.Peer requires a store-backed Runner")
		}
		s.peer = newPeerNet(*cfg.Peer, s.log)
		s.selfID = s.peer.self
		// The runner consults the peer tier inside its singleflight, after
		// a local store miss and before a simulation starts — concurrent
		// identical specs share one hedged fetch.
		cfg.Runner.SetPeerFetch(s.peer.fetch)
		// Checkpoints replicate the same way computed results do: every
		// snapshot the runner persists is pushed to its prefix key's other
		// ring owners, so a retry landing on a different worker can resume.
		cfg.Runner.SetSnapshotPublish(s.peer.push)
	}
	s.reg = cfg.Metrics
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.metrics = s.registerMetrics(s.reg, cfg.Chaos)
	s.mux = http.NewServeMux()
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.HandleFunc("POST /v1/sim", s.handleSim)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("POST /v1/experiments/{name}", s.handleExperimentRun)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	s.mux.HandleFunc("GET /v1/jobs/{id}/table", s.handleJobTable)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResultGet)
	s.mux.HandleFunc("PUT /v1/results/{key}", s.handleResultPut)
	// Degraded stays 200: the process is alive and completing work, it has
	// just lost durable writes — orchestrators should deprioritize it, not
	// restart-loop it.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if deg, reason := s.degradedState(); deg {
			fmt.Fprintf(w, "degraded: %s\n", reason)
			return
		}
		w.Write([]byte("ok\n"))
	})
	s.handler = s.mux
	if cfg.Chaos != nil {
		s.handler = cfg.Chaos.wrap(s.mux)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	// Adopt journaled jobs from a previous incarnation before any request
	// can race them, then feed the re-enqueued specs from the background:
	// an adopted backlog larger than the queue buffer must not block New.
	if adopted := s.adoptJobs(); len(adopted) > 0 {
		// Force-reserve: free may go negative, which is correct — adopted
		// work occupies real capacity, and submissions see 429 until it
		// drains.
		s.mu.Lock()
		s.free -= len(adopted)
		s.mu.Unlock()
		s.tasks.Add(len(adopted))
		go func() {
			for _, t := range adopted {
				select {
				case s.queue <- t:
				case <-s.halted:
					return // crash-simulation: the rest is lost, as intended
				}
			}
		}()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		var t task
		select {
		case <-s.halted:
			return
		case tt, ok := <-s.queue:
			if !ok {
				return
			}
			t = tt
		}
		start := time.Now()
		res, info, err := s.runner.RunSpecInfo(t.spec)
		src := info.Source
		dur := time.Since(start)
		if err == nil {
			s.metrics.simSeconds.With(src.String()).Observe(dur.Seconds())
			if info.ResumedFrom > 0 {
				s.metrics.resumeCycle.Observe(float64(info.ResumedFrom))
				s.log.Info("resumed from checkpoint",
					"spec", t.spec.Key().String(), "cycle", info.ResumedFrom)
			}
		}
		if err == nil && src == exp.SourceComputed {
			s.noteSimDuration(dur)
			// Replicate what only this worker has: freshly-computed results
			// go to the key's other owners asynchronously. Store- and
			// peer-served results are already replicated (or being repaired
			// by the fetch path) — re-pushing them would only amplify load.
			if s.peer != nil {
				if data, encErr := exp.EncodeResult(res); encErr == nil {
					s.peer.push(t.spec.Key(), data)
				}
			}
		}
		if s.trace != nil && t.trace != "" {
			sp := telemetry.Span{
				Trace:       t.trace,
				Kind:        telemetry.SpanServe,
				Spec:        t.spec.Key().String(),
				Label:       t.spec.Name + " " + t.spec.Mechanism,
				Worker:      s.selfID,
				ResumedFrom: info.ResumedFrom,
				Millis:      float64(dur) / float64(time.Millisecond),
			}
			if err != nil {
				sp.Status, sp.Error = "failed", err.Error()
			} else {
				sp.Status, sp.Source = "ok", src.String()
			}
			s.trace.Record(sp)
		}
		s.release(1)
		if t.job != nil {
			t.job.complete(t.index, t.spec, res, src, err)
		}
		if t.reply != nil {
			t.reply <- taskReply{res: res, src: src, resumedFrom: info.ResumedFrom, err: err}
		}
		s.tasks.Done()
	}
}

// halt stops the server the way a crash would: submissions are refused,
// workers finish at most their current task, and everything still queued
// is abandoned — its journal entries were never written, so a successor
// adopting the journal directory re-enqueues exactly those specs. Used by
// durability tests (a real kill -9 needs no cooperation); a halted Server
// must not be Drained, since abandoned tasks would keep Drain waiting
// forever.
func (s *Server) halt() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.haltOnce.Do(func() { close(s.halted) })
	s.workers.Wait()
}

// reserve atomically claims n queue slots, refusing while draining. Each
// successful reserve is matched by a release when the task finishes.
func (s *Server) reserve(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	if n > s.free {
		return errQueueFull
	}
	s.free -= n
	s.tasks.Add(n)
	return nil
}

func (s *Server) release(n int) {
	s.mu.Lock()
	s.free += n
	s.mu.Unlock()
}

var (
	errDraining  = errors.New("serve: shutting down")
	errQueueFull = errors.New("serve: queue full")
)

// Drain stops the service gracefully: new submissions are refused with
// 503, every queued or running task finishes (its result reaching the
// store and any SSE subscribers), then the workers exit. Status and
// results endpoints keep answering throughout. Returns ctx.Err() if the
// deadline expires first; the workers then finish in the background.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.tasks.Wait()
		if !already {
			close(s.queue)
		}
		s.workers.Wait()
		if s.peer != nil {
			// Let in-flight replica pushes land (or exhaust their retries)
			// so a drained worker leaves the tier fully repaired.
			s.peer.pushes.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- handlers ---

// simResponse is the POST /v1/sim reply.
type simResponse struct {
	Key    string `json:"key"`
	Source string `json:"source"`
	Cached bool   `json:"cached"`
	// ResumedFrom is the checkpoint cycle a computed simulation was
	// restored from; 0/absent for cold or cache-served runs.
	ResumedFrom int64           `json:"resumed_from,omitempty"`
	Result      json.RawMessage `json:"result"`
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var spec exp.SimSpec
	if err := decodeJSON(w, r, &spec); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	spec, err := s.runner.PrepareSpec(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.reserve(1); err != nil {
		s.refuse(w, err)
		return
	}
	reply := make(chan taskReply, 1)
	s.queue <- task{spec: spec, reply: reply, trace: r.Header.Get(telemetry.TraceHeader)}
	rep := <-reply
	if rep.err != nil {
		// A watchdog abort is retryable elsewhere or with a bigger budget:
		// 504 distinguishes it from a permanent simulation failure.
		status := http.StatusInternalServerError
		if errors.Is(rep.err, exp.ErrSimTimeout) {
			status = http.StatusGatewayTimeout
		}
		httpError(w, status, rep.err)
		return
	}
	data, err := exp.EncodeResult(rep.res)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, simResponse{
		Key:         spec.Key().String(),
		Source:      rep.src.String(),
		Cached:      rep.src.Cached(),
		ResumedFrom: rep.resumedFrom,
		Result:      data,
	})
}

// sweepRequest is the POST /v1/sweep body.
type sweepRequest struct {
	Name  string        `json:"name,omitempty"`
	Specs []exp.SimSpec `json:"specs"`
}

type sweepResponse struct {
	ID         string `json:"id"`
	Total      int    `json:"total"`
	StatusURL  string `json:"status_url"`
	EventsURL  string `json:"events_url"`
	ResultsURL string `json:"results_url"`
	// TableURL is set for experiment jobs (POST /v1/experiments/{name}).
	TableURL string `json:"table_url,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	if len(req.Specs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("serve: sweep has no specs"))
		return
	}
	prepared := make([]exp.SimSpec, len(req.Specs))
	for i, spec := range req.Specs {
		p, err := s.runner.PrepareSpec(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("spec %d: %w", i, err))
			return
		}
		prepared[i] = p
	}
	// A sweep that could never fit is a permanent client error, not a
	// transient 429 — retrying would loop forever.
	if len(prepared) > s.maxQueue {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: sweep of %d specs exceeds queue capacity %d; split it", len(prepared), s.maxQueue))
		return
	}
	// All-or-nothing admission: either the whole sweep fits the queue
	// budget or none of it is admitted.
	if err := s.reserve(len(prepared)); err != nil {
		s.refuse(w, err)
		return
	}
	j := s.createJob(req.Name, prepared, "", nil)
	for i, spec := range prepared {
		s.queue <- task{spec: spec, job: j, index: i, trace: r.Header.Get(telemetry.TraceHeader)}
	}
	writeJSON(w, http.StatusAccepted, sweepResponse{
		ID:         j.id,
		Total:      len(prepared),
		StatusURL:  "/v1/jobs/" + j.id,
		EventsURL:  "/v1/jobs/" + j.id + "/events",
		ResultsURL: "/v1/jobs/" + j.id + "/results",
	})
}

// experimentInfo is one row of the GET /v1/experiments listing.
type experimentInfo struct {
	Name      string `json:"name"`
	Title     string `json:"title"`
	SpecCount int    `json:"spec_count"`
	// WarmCount is how many of the experiment's specs already have a
	// result in the store; present only when a store is configured.
	WarmCount *int   `json:"warm_count,omitempty"`
	RunURL    string `json:"run_url"`
}

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	st := s.runner.Options().Store
	var infos []experimentInfo
	for _, e := range exp.Experiments() {
		specs := e.Specs(s.runner)
		info := experimentInfo{
			Name:      e.Name,
			Title:     e.Title,
			SpecCount: len(specs),
			RunURL:    "/v1/experiments/" + e.Name,
		}
		if st != nil {
			warm := exp.WarmCount(st, specs)
			info.WarmCount = &warm
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"schema":      exp.SchemaVersion,
		"experiments": infos,
	})
}

// handleExperimentRun enumerates a registry entry's specs and fans them
// into the same job machinery a hand-built sweep uses; when all specs
// land, the job assembles the rendered table from their results (see
// handleJobTable). The enumeration uses the daemon's scale options, so a
// fleet of dsarpd started with the same flags enumerates identical specs.
func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := exp.LookupExperiment(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no experiment %q", name))
		return
	}
	specs := e.Specs(s.runner) // runner-built specs are already canonical
	if len(specs) > s.maxQueue {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: experiment %s needs %d specs, queue capacity is %d; raise -max-queue or split it over /v1/sweep", name, len(specs), s.maxQueue))
		return
	}
	if err := s.reserve(len(specs)); err != nil {
		s.refuse(w, err)
		return
	}
	j := s.createJob(name, specs, name, s.assembler(e, specs))
	for i, spec := range specs {
		s.queue <- task{spec: spec, job: j, index: i, trace: r.Header.Get(telemetry.TraceHeader)}
	}
	writeJSON(w, http.StatusAccepted, sweepResponse{
		ID:         j.id,
		Total:      len(specs),
		StatusURL:  "/v1/jobs/" + j.id,
		EventsURL:  "/v1/jobs/" + j.id + "/events",
		ResultsURL: "/v1/jobs/" + j.id + "/results",
		TableURL:   "/v1/jobs/" + j.id + "/table",
	})
}

// assembler adapts a registry entry to the job completion hook: decode
// every outcome's wire result, assemble, render. The bytes flowing in are
// the same EncodeResult bytes the store holds, so the rendered table is
// byte-identical to a local run over the same results.
func (s *Server) assembler(e exp.Experiment, specs []exp.SimSpec) func([]taskOutcome) (string, error) {
	return func(outcomes []taskOutcome) (string, error) {
		results := exp.Results{}
		for i, out := range outcomes {
			if out.Error != "" {
				return "", fmt.Errorf("serve: task %d (%s) failed: %s", i, specs[i].Name, out.Error)
			}
			res, err := exp.DecodeResult(out.Result)
			if err != nil {
				return "", fmt.Errorf("serve: task %d: %w", i, err)
			}
			results.Add(specs[i], res)
		}
		rendered, err := e.Assemble(s.runner, results)
		if err != nil {
			return "", err
		}
		return rendered.String(), nil
	}
}

func (s *Server) handleJobTable(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	isExperiment, ready, table, errMsg := j.tableState()
	switch {
	case !isExperiment:
		httpError(w, http.StatusNotFound, errors.New("serve: not an experiment job; use /results"))
	case !ready:
		writeJSON(w, http.StatusAccepted, j.status())
	case errMsg != "":
		httpError(w, http.StatusInternalServerError, errors.New(errMsg))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, table)
	}
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return nil
	}
	return j
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	st, results := j.results()
	if st.State != "done" {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"state": st.State, "results": results})
}

// handleJobEvents streams job progress as server-sent events: one "task"
// event per completed simulation (already-completed ones are replayed
// first, so a late subscriber sees the full history in order), then one
// "done" event, then the stream closes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("serve: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	s.sseSubs.Add(1)
	defer s.sseSubs.Add(-1)
	replay, live := j.subscribe()
	defer j.unsubscribe(live)
	emit := func(ev jobEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		fl.Flush()
		return ev.Type != eventDone
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-live:
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	free, draining := s.free, s.draining
	s.mu.Unlock()
	deg, reason := s.degradedState()
	stats := map[string]any{
		"sims_run":   s.runner.SimsRun(),
		"store_hits": s.runner.StoreHits(),
		"store_errs": s.runner.StoreErrs(),
		"queue_free": free,
		"queue_cap":  s.maxQueue,
		"draining":   draining,
		"degraded":   deg,
		"jobs":       s.jobs.count(),
		"schema":     exp.SchemaVersion,
	}
	if reason != "" {
		stats["degraded_reason"] = reason
	}
	if st := s.runner.Options().Store; st != nil {
		stats["store"] = st.Stats()
	}
	if s.peer != nil {
		stats["replication"] = s.peer.stats()
	}
	writeJSON(w, http.StatusOK, stats)
}

// --- plumbing ---

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	// MaxBytesReader needs the real ResponseWriter: on overflow net/http
	// then sets Connection: close so the client stops streaming a body
	// nobody will read.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	return nil
}

// decodeStatus maps a request-body read failure to its status: an
// oversized body is 413 per the net/http MaxBytesReader contract,
// anything else is a plain bad request.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// noteSimDuration feeds one computed simulation's wall time into the EWMA
// behind Retry-After estimates. Cached and store-served results are
// excluded: they say nothing about how fast the backlog will drain.
func (s *Server) noteSimDuration(d time.Duration) {
	secs := d.Seconds()
	s.mu.Lock()
	if s.simEWMA == 0 {
		s.simEWMA = secs
	} else {
		s.simEWMA = 0.7*s.simEWMA + 0.3*secs
	}
	s.mu.Unlock()
}

// retryAfterSecs estimates how long a refused client should wait before
// resubmitting: the current backlog divided across the worker pool, times
// the EWMA runtime of one computed simulation. Before any simulation has
// completed the estimate falls back to one second per queued task-batch.
// Clamped to [1, 600] so a pathological estimate never tells a client
// "come back tomorrow".
func (s *Server) retryAfterSecs() int {
	s.mu.Lock()
	backlog := s.maxQueue - s.free
	perSim := s.simEWMA
	s.mu.Unlock()
	if perSim == 0 {
		perSim = 1
	}
	secs := int(math.Ceil(float64(backlog) / float64(s.workersN) * perSim))
	return min(max(secs, 1), 600)
}

// refuse maps submission-time capacity errors to their status codes. Both
// the 429 (queue full) and the drain 503 carry a Retry-After computed
// from live queue depth and observed per-simulation runtime: a drained
// worker is typically restarted, and its backlog estimate is the best
// guess for when it will take work again.
func (s *Server) refuse(w http.ResponseWriter, err error) {
	switch err {
	case errQueueFull:
		s.metrics.refused.With("queue_full").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		httpError(w, http.StatusTooManyRequests, err)
	case errDraining:
		s.metrics.refused.With("draining").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}
