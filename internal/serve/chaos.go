package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos injects faults ahead of the real handlers, so the failure paths a
// fleet orchestrator must survive — spurious 500s, connections dropped
// mid-request, responses that stall past the client's timeout, and a
// worker dying mid-job — are testable instead of aspirational. Faults
// apply to /v1/* only: /healthz stays honest, modeling application-level
// misbehavior in a process that is still alive (process death is the kill
// hook's job, or an external SIGKILL).
//
// Every fault mode is safe against the service's own invariants: a
// stalled or dropped request still runs to completion server-side, so its
// result reaches the store and a retry is a cheap warm hit; a 500 is
// returned before the request touches the queue, so no slot leaks.
type Chaos struct {
	// FailProb is the probability a request is answered with a 500
	// without reaching the real handler.
	FailProb float64
	// DropProb is the probability the connection is severed with no
	// response at all (the client sees EOF / connection reset).
	DropProb float64
	// StallProb is the probability the request is delayed by Stall
	// before being handled normally — long enough stalls trip client
	// timeouts while the work still completes server-side.
	StallProb float64
	// Stall is the delay applied to stalled requests (default 2s).
	Stall time.Duration
	// KillAfter, if positive, invokes Kill once the middleware has seen
	// that many /v1 requests: a deterministic mid-job death. Kill
	// defaults to a no-op; cmd/dsarpd installs a hard os.Exit.
	KillAfter int64
	Kill      func()
	// DiskFailProb is the probability an individual result-store write
	// fails (wired into store.Options.FailWrites by cmd/dsarpd). One hit
	// flips the store into degraded read-only mode — this exercises the
	// ENOSPC/EIO path, not the HTTP layer, so it is excluded from the
	// request-fault probability budget.
	DiskFailProb float64
	// Seed makes the fault sequence reproducible.
	Seed int64

	// Injected-fault tallies, one per kind, exposed on /metrics as
	// dsarp_chaos_faults_total so a smoke run can assert faults actually
	// fired without parsing logs.
	fails, drops, stalls, kills, diskFails atomic.Int64
}

// FailWrites returns a store.Options.FailWrites hook that fails each
// write with probability DiskFailProb, or nil when disk chaos is off. It
// draws from its own rng (Seed+1) so disk faults don't perturb the
// request-fault sequence.
func (c *Chaos) FailWrites() func() error {
	if c == nil || c.DiskFailProb <= 0 {
		return nil
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(c.Seed + 1))
	return func() error {
		mu.Lock()
		f := rng.Float64()
		mu.Unlock()
		if f < c.DiskFailProb {
			c.diskFails.Add(1)
			return fmt.Errorf("chaos: injected disk write failure")
		}
		return nil
	}
}

// wrap returns the fault-injecting middleware around next.
func (c *Chaos) wrap(next http.Handler) http.Handler {
	var (
		mu     sync.Mutex
		rng    = rand.New(rand.NewSource(c.Seed))
		seen   atomic.Int64
		killed atomic.Bool
	)
	stall := c.Stall
	if stall <= 0 {
		stall = 2 * time.Second
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		if c.KillAfter > 0 && seen.Add(1) >= c.KillAfter && c.Kill != nil &&
			killed.CompareAndSwap(false, true) {
			c.kills.Add(1)
			c.Kill()
		}
		mu.Lock()
		f := rng.Float64()
		mu.Unlock()
		switch {
		case f < c.DropProb:
			// Sever the connection without writing a response. net/http
			// closes the client connection when a handler panics with
			// ErrAbortHandler, which is exactly a "worker vanished
			// mid-request" from the caller's side.
			c.drops.Add(1)
			panic(http.ErrAbortHandler)
		case f < c.DropProb+c.FailProb:
			c.fails.Add(1)
			httpError(w, http.StatusInternalServerError,
				errChaos)
			return
		case f < c.DropProb+c.FailProb+c.StallProb:
			c.stalls.Add(1)
			time.Sleep(stall)
		}
		next.ServeHTTP(w, r)
	})
}

var errChaos = fmt.Errorf("serve: chaos-injected failure")

// ParseChaos parses the -chaos flag syntax: comma-separated key=value
// pairs, e.g. "fail=0.1,drop=0.05,stall=0.1:2s,kill=100,seed=7".
//
//	fail=P      probability of a 500
//	drop=P      probability of a severed connection
//	stall=P[:D] probability of a stalled response (delay D, default 2s)
//	kill=N      hard-kill the worker after N /v1 requests
//	diskfail=P  probability each result-store write fails (the first
//	            failure flips the store to degraded read-only)
//	seed=N      rng seed for the fault sequence
func ParseChaos(s string) (*Chaos, error) {
	if s == "" {
		return nil, nil
	}
	c := &Chaos{}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("serve: chaos: %q is not key=value", part)
		}
		var err error
		switch key {
		case "fail":
			c.FailProb, err = parseProb(val)
		case "drop":
			c.DropProb, err = parseProb(val)
		case "stall":
			prob, dur, cut := strings.Cut(val, ":")
			c.StallProb, err = parseProb(prob)
			if err == nil && cut {
				c.Stall, err = time.ParseDuration(dur)
			}
		case "kill":
			c.KillAfter, err = strconv.ParseInt(val, 10, 64)
		case "diskfail":
			c.DiskFailProb, err = parseProb(val)
		case "seed":
			c.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return nil, fmt.Errorf("serve: chaos: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: chaos: %s: %w", key, err)
		}
	}
	if total := c.FailProb + c.DropProb + c.StallProb; total > 1 {
		return nil, fmt.Errorf("serve: chaos: probabilities sum to %g > 1", total)
	}
	return c, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}
