package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/sim"
	"dsarp/internal/store"
	"dsarp/internal/timing"
)

// tinyOpts is a fast single-simulation scale for handler tests.
func tinyOpts() exp.Options {
	return exp.Options{
		PerCategory: 1,
		Sensitivity: 1,
		Cores:       2,
		Warmup:      2_000,
		Measure:     8_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8},
	}
}

type testService struct {
	*Server
	runner *exp.Runner
	store  *store.Store
	ts     *httptest.Server
}

func newService(t *testing.T, opts exp.Options, cfg Config, st *store.Store) *testService {
	t.Helper()
	if st == nil {
		var err error
		st, err = store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	opts.Store = st
	r := exp.NewRunner(opts)
	cfg.Runner = r
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return &testService{Server: srv, runner: r, store: st, ts: ts}
}

func (s *testService) post(t *testing.T, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func (s *testService) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(s.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func tinySpec(name string) exp.SimSpec {
	return exp.SimSpec{
		Name:           name,
		BenchmarkNames: []string{"h264.encode"},
		Mechanism:      "REFab",
		DensityGb:      8,
		Seed:           7,
	}
}

func TestSimComputeThenCached(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 2}, nil)
	resp1, body1 := s.post(t, "/v1/sim", tinySpec("smoke"))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", resp1.StatusCode, body1)
	}
	var r1, r2 simResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.Source != "computed" {
		t.Errorf("first response: source=%s cached=%v, want fresh compute", r1.Source, r1.Cached)
	}
	resp2, body2 := s.post(t, "/v1/sim", tinySpec("smoke"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d", resp2.StatusCode)
	}
	json.Unmarshal(body2, &r2)
	if !r2.Cached {
		t.Error("second identical request not served from cache")
	}
	if r1.Key != r2.Key || !bytes.Equal(r1.Result, r2.Result) {
		t.Error("cached response differs from computed response")
	}
	if n := s.runner.SimsRun(); n != 1 {
		t.Errorf("SimsRun = %d, want 1", n)
	}
}

// TestServedFromStoreAfterRestart: a new server process (fresh runner,
// same store directory) serves the result from disk, byte-identically.
func TestServedFromStoreAfterRestart(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := newService(t, tinyOpts(), Config{}, st)
	_, body1 := s1.post(t, "/v1/sim", tinySpec("restart"))
	s1.ts.Close()

	s2 := newService(t, tinyOpts(), Config{}, st)
	resp, body2 := s2.post(t, "/v1/sim", tinySpec("restart"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST after restart: %d", resp.StatusCode)
	}
	var r1, r2 simResponse
	json.Unmarshal(body1, &r1)
	json.Unmarshal(body2, &r2)
	if r2.Source != "store" {
		t.Errorf("source = %s, want store", r2.Source)
	}
	if !bytes.Equal(r1.Result, r2.Result) {
		t.Error("store-served result differs from original compute")
	}
	if n := s2.runner.SimsRun(); n != 0 {
		t.Errorf("restarted server ran %d simulations, want 0", n)
	}
}

// TestDedupInflight: concurrent identical requests share one simulation.
func TestDedupInflight(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 4}, nil)
	const n = 4
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := s.post(t, "/v1/sim", tinySpec("dedup"))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %d %s", i, resp.StatusCode, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	if n := s.runner.SimsRun(); n != 1 {
		t.Errorf("%d concurrent identical requests ran %d simulations, want 1", n, s.runner.SimsRun())
	}
	var first simResponse
	json.Unmarshal(bodies[0], &first)
	for i := 1; i < n; i++ {
		var r simResponse
		json.Unmarshal(bodies[i], &r)
		if !bytes.Equal(first.Result, r.Result) {
			t.Errorf("request %d result differs", i)
		}
	}
}

func TestSweepBackpressure(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 1, MaxQueue: 3}, nil)

	// A sweep that could never fit is permanently rejected (413), not told
	// to retry.
	never := []exp.SimSpec{tinySpec("a"), tinySpec("b"), tinySpec("c"), tinySpec("d")}
	resp, body := s.post(t, "/v1/sweep", sweepRequest{Specs: never})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("impossible sweep: %d %s, want 413", resp.StatusCode, body)
	}

	// Occupy the whole queue with slow distinct simulations (one worker,
	// three tasks), then show a fitting sweep bounces with a transient 429.
	slow := make([]exp.SimSpec, 3)
	for i := range slow {
		slow[i] = tinySpec(fmt.Sprintf("slow-%d", i))
		// Distinct seeds (no dedup) on a saturating benchmark with a long
		// window: each task holds its queue slot for a while.
		slow[i].BenchmarkNames = []string{"stream.triad"}
		slow[i].Seed = int64(100 + i)
		slow[i].Measure = 2_000_000
	}
	resp, body = s.post(t, "/v1/sweep", sweepRequest{Specs: slow})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupying sweep: %d %s", resp.StatusCode, body)
	}
	var occupying sweepResponse
	json.Unmarshal(body, &occupying)

	resp, body = s.post(t, "/v1/sweep", sweepRequest{Specs: []exp.SimSpec{tinySpec("bounce")}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sweep into a full queue: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// And /v1/sim is backpressured the same way.
	if resp, _ := s.post(t, "/v1/sim", tinySpec("bounce")); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("sim into a full queue: %d, want 429", resp.StatusCode)
	}

	// Slots are released as tasks finish: after the job drains, the same
	// submission is accepted.
	waitJobDone(t, s, occupying.ID)
	resp, _ = s.post(t, "/v1/sweep", sweepRequest{Specs: []exp.SimSpec{tinySpec("bounce")}})
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("post-drain sweep: %d, want 202 (slots not released?)", resp.StatusCode)
	}
}

// TestJobRegistryEviction: the registry caps retained jobs, preferring to
// evict finished ones.
func TestJobRegistryEviction(t *testing.T) {
	r := newJobRegistry()
	r.cap = 2
	a := r.create("a", []exp.SimSpec{{}})
	a.complete(0, exp.SimSpec{}, sim.Result{}, exp.SourceMemory, nil) // done
	b := r.create("b", []exp.SimSpec{{}})                             // running
	c := r.create("c", []exp.SimSpec{{}})                             // evicts a (done), not b
	if _, ok := r.get(a.id); ok {
		t.Error("finished job not evicted at cap")
	}
	for _, j := range []*job{b, c} {
		if _, ok := r.get(j.id); !ok {
			t.Errorf("job %s evicted while a finished one existed", j.name)
		}
	}
	d := r.create("d", []exp.SimSpec{{}}) // all running: evicts oldest (b)
	if _, ok := r.get(b.id); ok {
		t.Error("oldest job survived a full-of-running-jobs registry")
	}
	if r.count() != 2 {
		t.Errorf("registry holds %d jobs, cap 2", r.count())
	}
	_ = d
}

func waitJobDone(t *testing.T, s *testService, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		_, body := s.get(t, "/v1/jobs/"+id)
		var st jobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status decode: %v (%s)", err, body)
		}
		if st.State == "done" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return jobStatus{}
}

// readSSE collects the event stream of a job until its done event.
func readSSE(t *testing.T, s *testService, id string) []jobEvent {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []jobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev jobEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			events = append(events, ev)
			if ev.Type == eventDone {
				return events
			}
		}
	}
	t.Fatalf("stream ended without done event (%d events, err %v)", len(events), sc.Err())
	return nil
}

// TestSSEOrdering pins the progress stream contract: one task event per
// spec with strictly increasing done counts, a final done event, and a
// full replay for subscribers that arrive after completion.
func TestSSEOrdering(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 2}, nil)
	specs := []exp.SimSpec{tinySpec("sse-a"), tinySpec("sse-b"), tinySpec("sse-c")}
	resp, body := s.post(t, "/v1/sweep", sweepRequest{Name: "sse", Specs: specs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)

	check := func(events []jobEvent, when string) {
		t.Helper()
		if len(events) != len(specs)+1 {
			t.Fatalf("%s: %d events, want %d tasks + done", when, len(events), len(specs))
		}
		seen := map[int]bool{}
		for i, ev := range events[:len(specs)] {
			if ev.Type != eventTask {
				t.Errorf("%s: event %d type %q", when, i, ev.Type)
			}
			if ev.Done != i+1 || ev.Total != len(specs) {
				t.Errorf("%s: event %d progress %d/%d, want %d/%d", when, i, ev.Done, ev.Total, i+1, len(specs))
			}
			if ev.Error != "" {
				t.Errorf("%s: task %d failed: %s", when, ev.Index, ev.Error)
			}
			seen[ev.Index] = true
		}
		for i := range specs {
			if !seen[i] {
				t.Errorf("%s: no event for task %d", when, i)
			}
		}
		last := events[len(specs)]
		if last.Type != eventDone || last.Done != len(specs) {
			t.Errorf("%s: terminal event %+v", when, last)
		}
	}
	check(readSSE(t, s, sw.ID), "live")
	check(readSSE(t, s, sw.ID), "replay") // job already done: pure history
}

// TestStoreCorruptionRecomputes: a bit-flipped store entry must not crash
// or mis-serve — the service recomputes, reports "computed", and heals the
// entry on disk.
func TestStoreCorruptionRecomputes(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := newService(t, tinyOpts(), Config{}, st)
	_, body1 := s1.post(t, "/v1/sim", tinySpec("corrupt"))
	var r1 simResponse
	json.Unmarshal(body1, &r1)
	s1.ts.Close()

	key, err := store.ParseKey(r1.Key)
	if err != nil {
		t.Fatal(err)
	}
	path := st.EntryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := newService(t, tinyOpts(), Config{}, st)
	resp, body2 := s2.post(t, "/v1/sim", tinySpec("corrupt"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST over corrupt store: %d %s", resp.StatusCode, body2)
	}
	var r2 simResponse
	json.Unmarshal(body2, &r2)
	if r2.Source != "computed" {
		t.Errorf("source = %s, want computed (corrupt entry must miss)", r2.Source)
	}
	if !bytes.Equal(r1.Result, r2.Result) {
		t.Error("recomputed result differs from the original")
	}
	// Healed: a third server now reads it from disk.
	s3 := newService(t, tinyOpts(), Config{}, st)
	_, body3 := s3.post(t, "/v1/sim", tinySpec("corrupt"))
	var r3 simResponse
	json.Unmarshal(body3, &r3)
	if r3.Source != "store" {
		t.Errorf("after heal: source = %s, want store", r3.Source)
	}
}

func TestValidationAndRouting(t *testing.T) {
	s := newService(t, tinyOpts(), Config{}, nil)
	bad := tinySpec("bad")
	bad.Mechanism = "MAGIC"
	if resp, _ := s.post(t, "/v1/sim", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid mechanism: %d, want 400", resp.StatusCode)
	}
	if resp, _ := s.post(t, "/v1/sweep", sweepRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep: %d, want 400", resp.StatusCode)
	}
	if resp, _ := s.get(t, "/v1/jobs/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := s.get(t, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	if resp, _ := s.get(t, "/v1/stats"); resp.StatusCode != http.StatusOK {
		t.Errorf("stats: %d", resp.StatusCode)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := newService(t, tinyOpts(), Config{}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ := s.post(t, "/v1/sim", tinySpec("late"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining: %d, want 503", resp.StatusCode)
	}
}

// TestTable2OverHTTPWarmsLocalRunner is the PR's acceptance golden: the
// full Table 2 task set submitted through the HTTP sweep path lands in the
// store; a local runner over that store then reproduces Table 2 byte for
// byte against a direct compute — with zero simulations, which is what
// makes the warm pass an order of magnitude faster end to end.
func TestTable2OverHTTPWarmsLocalRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation golden run")
	}
	opts := exp.Options{
		PerCategory: 1,
		Sensitivity: 1,
		Cores:       2,
		Warmup:      5_000,
		Measure:     20_000,
		Seed:        42,
		Densities:   []timing.Density{timing.Gb8, timing.Gb32},
	}
	coldStart := time.Now()
	direct := exp.NewRunner(opts)
	want := direct.Table2().String()
	coldElapsed := time.Since(coldStart)

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, opts, Config{Workers: 4, MaxQueue: 512}, st)
	specs := s.runner.Table2Specs()
	resp, body := s.post(t, "/v1/sweep", sweepRequest{Name: "table2", Specs: specs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)
	st2 := waitJobDone(t, s, sw.ID)
	if st2.Errors != 0 {
		t.Fatalf("sweep finished with %d errors", st2.Errors)
	}

	warmStart := time.Now()
	warm := exp.NewRunner(func() exp.Options { o := opts; o.Store = s.store; return o }())
	got := warm.Table2().String()
	warmElapsed := time.Since(warmStart)

	if got != want {
		t.Errorf("HTTP-warmed Table2 diverged from direct compute:\n got:\n%s\nwant:\n%s", got, want)
	}
	if n := warm.SimsRun(); n != 0 {
		t.Errorf("warm runner executed %d simulations, want 0", n)
	}
	t.Logf("cold %v, warm %v (%.1fx)", coldElapsed, warmElapsed,
		float64(coldElapsed)/float64(warmElapsed))
	if warmElapsed > coldElapsed {
		t.Errorf("warm pass (%v) slower than cold compute (%v)", warmElapsed, coldElapsed)
	}
}

// TestExperimentEndpoints covers the registry surface end to end: list
// with warm counts, run an experiment through the job machinery, and fetch
// a rendered table that is byte-identical to the same experiment computed
// locally.
func TestExperimentEndpoints(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 4, MaxQueue: 512}, nil)

	type listing struct {
		Schema      string `json:"schema"`
		Experiments []struct {
			Name      string `json:"name"`
			Title     string `json:"title"`
			SpecCount int    `json:"spec_count"`
			WarmCount *int   `json:"warm_count"`
			RunURL    string `json:"run_url"`
		} `json:"experiments"`
	}
	resp, body := s.get(t, "/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	var l listing
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	if l.Schema != exp.SchemaVersion {
		t.Errorf("schema = %q", l.Schema)
	}
	if len(l.Experiments) != len(exp.Experiments()) {
		t.Fatalf("listing has %d experiments, registry %d", len(l.Experiments), len(exp.Experiments()))
	}
	byName := map[string]int{}
	for i, e := range l.Experiments {
		byName[e.Name] = i
		if e.WarmCount == nil {
			t.Errorf("%s: no warm count despite a configured store", e.Name)
		} else if *e.WarmCount != 0 {
			t.Errorf("%s: cold store reports %d warm specs", e.Name, *e.WarmCount)
		}
	}

	// Run fig7 over HTTP and compare its table against a local compute.
	resp, body = s.post(t, "/v1/experiments/fig7", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("run fig7: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)
	if sw.TableURL == "" {
		t.Fatal("experiment job without table_url")
	}
	st := waitJobDone(t, s, sw.ID)
	if st.Errors != 0 {
		t.Fatalf("fig7 finished with %d errors", st.Errors)
	}
	if st.Experiment != "fig7" || st.TableURL != sw.TableURL {
		t.Errorf("done status lacks experiment metadata: %+v", st)
	}
	resp, body = s.get(t, sw.TableURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("table Content-Type = %q", ct)
	}
	want := exp.NewRunner(tinyOpts()).Fig7().String()
	if string(body) != want {
		t.Errorf("HTTP-assembled fig7 diverged from local compute:\n got:\n%s\nwant:\n%s", body, want)
	}

	// The listing now reports fig7 fully warm.
	_, body = s.get(t, "/v1/experiments")
	var l2 listing
	json.Unmarshal(body, &l2)
	e := l2.Experiments[byName["fig7"]]
	if e.WarmCount == nil || *e.WarmCount != e.SpecCount {
		t.Errorf("after the run, fig7 warm=%v of %d specs", e.WarmCount, e.SpecCount)
	}

	// A second run is served without a single fresh simulation and renders
	// the identical table.
	before := s.runner.SimsRun()
	resp, body = s.post(t, "/v1/experiments/fig7", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rerun fig7: %d %s", resp.StatusCode, body)
	}
	var sw2 sweepResponse
	json.Unmarshal(body, &sw2)
	waitJobDone(t, s, sw2.ID)
	if n := s.runner.SimsRun() - before; n != 0 {
		t.Errorf("warm rerun executed %d simulations, want 0", n)
	}
	_, body = s.get(t, sw2.TableURL)
	if string(body) != want {
		t.Error("warm rerun's table diverged")
	}

	// Unknown names 404; table on a plain sweep job 404s too.
	if resp, _ := s.post(t, "/v1/experiments/fig99", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: %d, want 404", resp.StatusCode)
	}
	resp, body = s.post(t, "/v1/sweep", sweepRequest{Specs: []exp.SimSpec{tinySpec("plain")}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	var plain sweepResponse
	json.Unmarshal(body, &plain)
	waitJobDone(t, s, plain.ID)
	if resp, _ := s.get(t, "/v1/jobs/"+plain.ID+"/table"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("table of a plain sweep: %d, want 404", resp.StatusCode)
	}
}

// TestExperimentZeroSpecs: the analytic fig5 is a zero-spec job — born
// done, table immediately available, no queue slots consumed.
func TestExperimentZeroSpecs(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 1, MaxQueue: 4}, nil)
	resp, body := s.post(t, "/v1/experiments/fig5", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fig5: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)
	st := waitJobDone(t, s, sw.ID)
	if st.Total != 0 {
		t.Errorf("fig5 total = %d, want 0", st.Total)
	}
	resp, body = s.get(t, sw.TableURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fig5 table: %d %s", resp.StatusCode, body)
	}
	if want := exp.NewRunner(tinyOpts()).Fig5().String(); string(body) != want {
		t.Error("fig5 table diverged")
	}
	// Its SSE stream is just the done event — and it replays.
	events := readSSE(t, s, sw.ID)
	if len(events) != 1 || events[0].Type != eventDone {
		t.Errorf("fig5 events = %+v, want a single done", events)
	}
}

// TestExperimentTooLargeForQueue: an experiment that cannot fit the queue
// is a permanent 413 pointing at -max-queue, not a retry loop.
func TestExperimentTooLargeForQueue(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 1, MaxQueue: 3}, nil)
	resp, body := s.post(t, "/v1/experiments/fig7", nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized experiment: %d %s, want 413", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "max-queue") {
		t.Errorf("413 body does not mention -max-queue: %s", body)
	}
}
