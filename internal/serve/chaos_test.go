package serve

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosFailSparesHealthz: with FailProb=1 every /v1 request is a 500,
// yet /healthz keeps answering — chaos models application misbehavior in
// a live process, so liveness probes must stay honest.
func TestChaosFailSparesHealthz(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 1, Chaos: &Chaos{FailProb: 1}}, nil)

	resp, body := s.post(t, "/v1/sim", tinySpec("chaos-fail"))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("/v1/sim under FailProb=1: status %d, want 500 (%s)", resp.StatusCode, body)
	}
	resp, _ = s.get(t, "/v1/stats")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("/v1/stats under FailProb=1: status %d, want 500", resp.StatusCode)
	}
	resp, _ = s.get(t, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz under FailProb=1: status %d, want 200", resp.StatusCode)
	}
}

// TestChaosDropSeversConnection: DropProb=1 must leave the client with a
// transport-level error, not an HTTP response — the same failure shape as
// a worker dying mid-request.
func TestChaosDropSeversConnection(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 1, Chaos: &Chaos{DropProb: 1}}, nil)
	if _, err := http.Get(s.ts.URL + "/v1/stats"); err == nil {
		t.Fatal("request under DropProb=1 returned a response; want a severed connection")
	}
	if resp, _ := s.get(t, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz under DropProb=1: status %d, want 200", resp.StatusCode)
	}
}

// TestChaosStallDelays: a stalled request is late but otherwise normal.
func TestChaosStallDelays(t *testing.T) {
	stall := 150 * time.Millisecond
	s := newService(t, tinyOpts(), Config{Workers: 1, Chaos: &Chaos{StallProb: 1, Stall: stall}}, nil)
	start := time.Now()
	resp, _ := s.get(t, "/v1/stats")
	if d := time.Since(start); d < stall {
		t.Errorf("stalled request returned in %v, want >= %v", d, stall)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stalled request status %d, want 200", resp.StatusCode)
	}
}

// TestChaosKillAfterFiresOnce: the kill hook triggers at the configured
// request count and never again, however much traffic follows.
func TestChaosKillAfterFiresOnce(t *testing.T) {
	var kills atomic.Int64
	s := newService(t, tinyOpts(), Config{Workers: 1, Chaos: &Chaos{
		KillAfter: 3,
		Kill:      func() { kills.Add(1) },
	}}, nil)
	for i := 0; i < 2; i++ {
		s.get(t, "/v1/stats")
	}
	if n := kills.Load(); n != 0 {
		t.Fatalf("kill fired after 2 requests (KillAfter=3): %d", n)
	}
	for i := 0; i < 5; i++ {
		s.get(t, "/v1/stats")
	}
	if n := kills.Load(); n != 1 {
		t.Errorf("kill fired %d times, want exactly once", n)
	}
}

// TestParseChaos covers the -chaos flag grammar.
func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("fail=0.1,drop=0.05,stall=0.2:500ms,kill=100,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := &Chaos{FailProb: 0.1, DropProb: 0.05, StallProb: 0.2, Stall: 500 * time.Millisecond, KillAfter: 100, Seed: 7}
	if c.FailProb != want.FailProb || c.DropProb != want.DropProb ||
		c.StallProb != want.StallProb || c.Stall != want.Stall ||
		c.KillAfter != want.KillAfter || c.Seed != want.Seed {
		t.Errorf("ParseChaos = %+v, want %+v", c, want)
	}

	if c, err := ParseChaos(""); c != nil || err != nil {
		t.Errorf("ParseChaos(\"\") = %v, %v; want nil, nil", c, err)
	}
	for _, bad := range []string{
		"fail",              // not key=value
		"fail=1.5",          // probability out of range
		"fail=-0.1",         // probability out of range
		"bogus=1",           // unknown key
		"stall=0.1:zzz",     // bad duration
		"kill=abc",          // bad count
		"fail=0.6,drop=0.6", // probabilities sum past 1
	} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted; want error", bad)
		}
	}
}
