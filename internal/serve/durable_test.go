package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/store"
)

// startDurable builds a service over an explicit store and journal dir
// with no automatic Drain: durability tests stop their servers
// deliberately — crash() for a kill -9 stand-in, shutdown() for a clean
// exit — and often start a successor over the same directories.
func startDurable(t *testing.T, opts exp.Options, cfg Config, st *store.Store, jdir string) *testService {
	t.Helper()
	opts.Store = st
	r := exp.NewRunner(opts)
	cfg.Runner = r
	cfg.JournalDir = jdir
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	return &testService{Server: srv, runner: r, store: st, ts: ts}
}

func openStoreDir(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// crash is the in-process kill -9: workers stop after at most their
// current task, everything queued is abandoned, nothing is drained.
func (s *testService) crash() {
	s.halt()
	s.ts.Close()
}

func (s *testService) shutdown(t *testing.T) {
	t.Helper()
	s.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// checkFullStream asserts the canonical complete event history for total
// tasks: each index exactly once, done counters 1..total, a terminal done
// event, no failures.
func checkFullStream(t *testing.T, events []jobEvent, total int) {
	t.Helper()
	if len(events) != total+1 {
		t.Fatalf("%d events, want %d tasks + done", len(events), total)
	}
	seen := map[int]bool{}
	for i, ev := range events[:total] {
		if ev.Type != eventTask {
			t.Errorf("event %d type %q", i, ev.Type)
		}
		if ev.Done != i+1 || ev.Total != total {
			t.Errorf("event %d progress %d/%d, want %d/%d", i, ev.Done, ev.Total, i+1, total)
		}
		if ev.Error != "" {
			t.Errorf("task %d failed: %s", ev.Index, ev.Error)
		}
		if seen[ev.Index] {
			t.Errorf("task %d completed twice in the stream", ev.Index)
		}
		seen[ev.Index] = true
	}
	for i := 0; i < total; i++ {
		if !seen[i] {
			t.Errorf("no event for task %d", i)
		}
	}
	if last := events[total]; last.Type != eventDone || last.Done != total {
		t.Errorf("terminal event %+v", last)
	}
}

// TestSSEAcrossRestart is the tentpole acceptance: an experiment job
// hard-stopped mid-run survives a restart on the same store+journal
// directories — same job ID, a full ordered SSE replay with no duplicate
// or missing events, and a table byte-identical to a local run.
func TestSSEAcrossRestart(t *testing.T) {
	opts := tinyOpts()
	dir := t.TempDir()
	jdir := filepath.Join(dir, "jobs")

	a := startDurable(t, opts, Config{Workers: 1, MaxQueue: 512},
		openStoreDir(t, filepath.Join(dir, "store")), jdir)
	resp, body := a.post(t, "/v1/experiments/fig7", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fig7: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)
	if sw.Total < 2 {
		t.Fatalf("fig7 has %d specs; need >=2 for a mid-job crash", sw.Total)
	}

	// Let at least one task land durably, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, sb := a.get(t, "/v1/jobs/"+sw.ID)
		var st jobStatus
		json.Unmarshal(sb, &st)
		if st.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no task completed before the crash window")
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.crash()

	b := startDurable(t, opts, Config{Workers: 4, MaxQueue: 512},
		openStoreDir(t, filepath.Join(dir, "store")), jdir)
	defer b.shutdown(t)

	// The same job ID resolves immediately on the successor.
	resp, body = b.get(t, "/v1/jobs/"+sw.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job %s after restart: %d %s", sw.ID, resp.StatusCode, body)
	}

	checkFullStream(t, readSSE(t, b, sw.ID), sw.Total)

	resp, tbl := b.get(t, "/v1/jobs/"+sw.ID+"/table")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table after restart: %d %s", resp.StatusCode, tbl)
	}
	if want := exp.NewRunner(opts).Fig7().String(); string(tbl) != want {
		t.Errorf("post-crash table diverged from local compute:\n got:\n%s\nwant:\n%s", tbl, want)
	}

	// The replay replays: a second subscriber sees the identical history.
	checkFullStream(t, readSSE(t, b, sw.ID), sw.Total)
}

// TestAdoptTornFinalLine: a crash can tear the journal's last line; the
// torn tail is dropped and the rest of the job adopts cleanly.
func TestAdoptTornFinalLine(t *testing.T) {
	opts := tinyOpts()
	dir := t.TempDir()
	jdir := filepath.Join(dir, "jobs")

	a := startDurable(t, opts, Config{Workers: 2},
		openStoreDir(t, filepath.Join(dir, "store")), jdir)
	resp, body := a.post(t, "/v1/sweep", sweepRequest{Name: "torn",
		Specs: []exp.SimSpec{tinySpec("torn-a"), tinySpec("torn-b")}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)
	waitJobDone(t, a, sw.ID)
	a.shutdown(t)

	path := filepath.Join(jdir, sw.ID+".jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"task","ind`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b := startDurable(t, opts, Config{Workers: 2},
		openStoreDir(t, filepath.Join(dir, "store")), jdir)
	defer b.shutdown(t)
	st := waitJobDone(t, b, sw.ID)
	if st.Done != 2 || st.Errors != 0 {
		t.Fatalf("adopted status %+v, want 2/2 clean", st)
	}
	if n := b.runner.SimsRun(); n != 0 {
		t.Errorf("adoption of a complete job ran %d simulations", n)
	}
}

// TestAdoptStoreGCdThenDuplicateLines: two restarts in a row. A journaled
// completion whose store entry was GC'd is pending again after restart
// one — the successor recomputes it (appending a second journal line for
// the same index). Restart two must then tolerate the duplicate: first
// line wins, nothing reruns, results unchanged.
func TestAdoptStoreGCdThenDuplicateLines(t *testing.T) {
	opts := tinyOpts()
	dir := t.TempDir()
	jdir := filepath.Join(dir, "jobs")
	storeDir := filepath.Join(dir, "store")

	stA := openStoreDir(t, storeDir)
	a := startDurable(t, opts, Config{Workers: 2}, stA, jdir)
	resp, body := a.post(t, "/v1/sweep", sweepRequest{Name: "gc",
		Specs: []exp.SimSpec{tinySpec("gc")}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)
	waitJobDone(t, a, sw.ID)
	_, res1 := a.get(t, "/v1/jobs/"+sw.ID+"/results")
	a.shutdown(t)

	// GC the entry out from under the journal.
	prep, err := a.runner.PrepareSpec(tinySpec("gc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(stA.EntryPath(prep.Key())); err != nil {
		t.Fatal(err)
	}

	b := startDurable(t, opts, Config{Workers: 2}, openStoreDir(t, storeDir), jdir)
	st := waitJobDone(t, b, sw.ID)
	if st.Done != 1 || st.Errors != 0 {
		t.Fatalf("adopted status %+v, want 1/1 clean", st)
	}
	if n := b.runner.SimsRun(); n != 1 {
		t.Errorf("GC'd entry recomputed %d times, want 1", n)
	}
	_, res2 := b.get(t, "/v1/jobs/"+sw.ID+"/results")
	if !bytes.Equal(res1, res2) {
		t.Errorf("recomputed results diverged:\n was %s\n now %s", res1, res2)
	}
	b.shutdown(t)

	// Second restart: journal now holds two lines for index 0. The first
	// wins (its key is back in the store), nothing reruns.
	c := startDurable(t, opts, Config{Workers: 2}, openStoreDir(t, storeDir), jdir)
	defer c.shutdown(t)
	if st := waitJobDone(t, c, sw.ID); st.Done != 1 || st.Errors != 0 {
		t.Fatalf("second adoption status %+v", st)
	}
	if n := c.runner.SimsRun(); n != 0 {
		t.Errorf("second adoption ran %d simulations, want 0", n)
	}
	checkFullStream(t, readSSE(t, c, sw.ID), 1)
	_, res3 := c.get(t, "/v1/jobs/"+sw.ID+"/results")
	if !bytes.Equal(res1, res3) {
		t.Error("results changed across the second restart")
	}
}

// TestAdoptionRacesIdenticalPost: a client that lost its worker typically
// resubmits; if the resubmission hits the successor while adoption is
// re-running the same specs, the runner's singleflight must collapse the
// two into one simulation.
func TestAdoptionRacesIdenticalPost(t *testing.T) {
	opts := tinyOpts()
	dir := t.TempDir()
	jdir := filepath.Join(dir, "jobs")
	storeDir := filepath.Join(dir, "store")

	slow := func(name string) exp.SimSpec {
		s := tinySpec(name)
		s.Measure = 400_000 // long enough that the crash lands mid-job
		return s
	}
	specs := []exp.SimSpec{slow("race-a"), slow("race-b")}

	a := startDurable(t, opts, Config{Workers: 1}, openStoreDir(t, storeDir), jdir)
	resp, body := a.post(t, "/v1/sweep", sweepRequest{Name: "race", Specs: specs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)
	a.crash() // worker finishes its current task; the rest is abandoned

	// Successor adopts (re-enqueueing the unfinished specs) while an
	// identical sweep arrives over HTTP.
	b := startDurable(t, opts, Config{Workers: 2}, openStoreDir(t, storeDir), jdir)
	defer b.shutdown(t)
	resp, body = b.post(t, "/v1/sweep", sweepRequest{Name: "race", Specs: specs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var sw2 sweepResponse
	json.Unmarshal(body, &sw2)
	if sw2.ID == sw.ID {
		t.Fatal("resubmission reused the adopted job ID")
	}

	st1 := waitJobDone(t, b, sw.ID)
	st2 := waitJobDone(t, b, sw2.ID)
	if st1.Errors != 0 || st2.Errors != 0 {
		t.Fatalf("errors: adopted %d, resubmitted %d", st1.Errors, st2.Errors)
	}
	// Across adoption re-runs and the resubmission, each unfinished spec
	// simulated at most once on the successor.
	if n := b.runner.SimsRun(); n > int64(len(specs)) {
		t.Errorf("successor ran %d simulations for %d unique specs", n, len(specs))
	}
	_, r1 := b.get(t, "/v1/jobs/"+sw.ID+"/results")
	_, r2 := b.get(t, "/v1/jobs/"+sw2.ID+"/results")
	var d1, d2 struct {
		Results []taskOutcome `json:"results"`
	}
	json.Unmarshal(r1, &d1)
	json.Unmarshal(r2, &d2)
	if len(d1.Results) != 2 || len(d2.Results) != 2 {
		t.Fatalf("results: %d and %d outcomes", len(d1.Results), len(d2.Results))
	}
	for i := range d1.Results {
		if !bytes.Equal(d1.Results[i].Result, d2.Results[i].Result) {
			t.Errorf("task %d: adopted and resubmitted results differ", i)
		}
	}
}

// TestDiskFailDegraded: with every store write failing (chaos diskfail),
// sweeps still complete from memory, and the worker reports itself
// degraded on /healthz and /v1/stats — alive, correct, not durable.
func TestDiskFailDegraded(t *testing.T) {
	chaos, err := ParseChaos("diskfail=1.0,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), store.Options{FailWrites: chaos.FailWrites()})
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, tinyOpts(), Config{Workers: 2}, st)

	if resp, body := s.get(t, "/healthz"); resp.StatusCode != http.StatusOK ||
		strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("pre-fault healthz: %d %q", resp.StatusCode, body)
	}

	resp, body := s.post(t, "/v1/sweep", sweepRequest{Name: "diskfail",
		Specs: []exp.SimSpec{tinySpec("df-a"), tinySpec("df-b")}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sw sweepResponse
	json.Unmarshal(body, &sw)
	if st2 := waitJobDone(t, s, sw.ID); st2.Errors != 0 {
		t.Fatalf("sweep under diskfail finished with %d errors", st2.Errors)
	}
	if n := st.Len(); n != 0 {
		t.Errorf("store holds %d entries though every write failed", n)
	}

	resp, body = s.get(t, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("degraded healthz = %d, want 200 (deprioritize, don't kill)", resp.StatusCode)
	}
	if !strings.HasPrefix(string(body), "degraded: ") {
		t.Errorf("degraded healthz body %q", body)
	}
	_, body = s.get(t, "/v1/stats")
	var stats struct {
		Degraded       bool   `json:"degraded"`
		DegradedReason string `json:"degraded_reason"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded || stats.DegradedReason == "" {
		t.Errorf("stats degraded=%v reason=%q, want true with a reason", stats.Degraded, stats.DegradedReason)
	}

	// Still serving: the same specs come back from memory, no recompute.
	before := s.runner.SimsRun()
	resp, _ = s.post(t, "/v1/sim", tinySpec("df-a"))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("degraded sim: %d, want 200", resp.StatusCode)
	}
	if n := s.runner.SimsRun() - before; n != 0 {
		t.Errorf("degraded re-serve recomputed %d times", n)
	}
}

// TestSimTimeout504: a watchdog abort surfaces as 504 (retryable
// elsewhere), not a generic 500.
func TestSimTimeout504(t *testing.T) {
	opts := tinyOpts()
	opts.SimTimeout = time.Nanosecond
	s := newService(t, opts, Config{Workers: 1}, nil)
	spec := tinySpec("budget")
	spec.Measure = 2_000_000
	resp, body := s.post(t, "/v1/sim", spec)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out sim: %d %s, want 504", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "wall-clock") {
		t.Errorf("504 body does not name the budget: %s", body)
	}
}

// TestParseChaosDiskFail: diskfail parses, bounds-checks, and is excluded
// from the request-fault probability budget.
func TestParseChaosDiskFail(t *testing.T) {
	c, err := ParseChaos("diskfail=0.25,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if c.DiskFailProb != 0.25 {
		t.Errorf("DiskFailProb = %g", c.DiskFailProb)
	}
	if c.FailWrites() == nil {
		t.Error("FailWrites() nil with diskfail set")
	}
	if (&Chaos{}).FailWrites() != nil || (*Chaos)(nil).FailWrites() != nil {
		t.Error("FailWrites() non-nil without diskfail")
	}
	if _, err := ParseChaos("diskfail=1.5"); err == nil {
		t.Error("diskfail=1.5 accepted")
	}
	// Disk faults are a different layer: they don't consume the
	// fail/drop/stall budget.
	if _, err := ParseChaos("fail=0.5,drop=0.5,diskfail=1.0"); err != nil {
		t.Errorf("diskfail counted against the request-fault budget: %v", err)
	}

	// A hook with p=1 fails every write; p=0 via nil receiver is off.
	fw := (&Chaos{DiskFailProb: 1}).FailWrites()
	for i := 0; i < 3; i++ {
		if fw() == nil {
			t.Fatal("diskfail=1.0 let a write through")
		}
	}
}
