package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"dsarp/internal/telemetry"
)

// metricValue extracts one series value line from an exposition body.
func metricValue(t *testing.T, body, series string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strings.TrimPrefix(line, series+" ")
		}
	}
	t.Fatalf("series %q not in exposition:\n%s", series, body)
	return ""
}

// TestMetricsEndpoint drives a sim through the service and checks the
// exposition moves the way the scrape-time CI assertions rely on:
// computed total advances on a cold run, holds on a warm one, and the
// latency histogram books each serving under its source.
func TestMetricsEndpoint(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 2}, nil)

	resp, body := s.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, series := range []string{
		"dsarp_sims_computed_total 0",
		"dsarp_store_hits_total 0",
		`dsarp_refused_total{reason="queue_full"} 0`,
		`dsarp_refused_total{reason="draining"} 0`,
		`dsarp_sim_seconds_count{source="computed"} 0`,
		"dsarp_queue_capacity 256",
		"dsarp_draining 0",
		"dsarp_degraded 0",
		"dsarp_sse_subscribers 0",
		"dsarp_store_entries 0",
	} {
		if !strings.Contains(string(body), series+"\n") {
			t.Errorf("cold exposition missing %q", series)
		}
	}

	if resp, _ := s.post(t, "/v1/sim", tinySpec("metrics")); resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: %d", resp.StatusCode)
	}
	_, body = s.get(t, "/metrics")
	if got := metricValue(t, string(body), "dsarp_sims_computed_total"); got != "1" {
		t.Errorf("computed after cold run = %s, want 1", got)
	}
	if got := metricValue(t, string(body), `dsarp_sim_seconds_count{source="computed"}`); got != "1" {
		t.Errorf("computed histogram count = %s, want 1", got)
	}

	// Warm rerun: computed holds, some cache tier books the serving.
	if resp, _ := s.post(t, "/v1/sim", tinySpec("metrics")); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sim: %d", resp.StatusCode)
	}
	_, body = s.get(t, "/metrics")
	if got := metricValue(t, string(body), "dsarp_sims_computed_total"); got != "1" {
		t.Errorf("computed after warm run = %s, want still 1", got)
	}
	var cached int
	for _, src := range []string{"store", "memory", "peer"} {
		v := metricValue(t, string(body), `dsarp_sim_seconds_count{source="`+src+`"}`)
		if v != "0" {
			cached++
		}
	}
	if cached != 1 {
		t.Errorf("warm serving booked under %d cache sources, want exactly 1:\n%s", cached, body)
	}
}

// TestMetricsRefusedCounter fills the admission budget and checks a 429
// lands in dsarp_refused_total{reason="queue_full"}.
func TestMetricsRefusedCounter(t *testing.T) {
	s := newService(t, tinyOpts(), Config{Workers: 1, MaxQueue: 2}, nil)
	if err := s.reserve(2); err != nil {
		t.Fatal(err)
	}
	defer func() { s.release(2); s.tasks.Add(-2) }()

	resp, _ := s.post(t, "/v1/sim", tinySpec("refused"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d", resp.StatusCode)
	}
	_, body := s.get(t, "/metrics")
	if got := metricValue(t, string(body), `dsarp_refused_total{reason="queue_full"}`); got != "1" {
		t.Errorf("refused counter = %s, want 1", got)
	}
}

// TestServeTraceSpan posts a sim carrying a trace header and checks the
// server's flight recorder holds a serve span attributed to that trace.
func TestServeTraceSpan(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "serve-trace.jsonl")
	rec, err := telemetry.NewRecorder(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, tinyOpts(), Config{Workers: 2, Trace: rec}, nil)

	payload, _ := json.Marshal(tinySpec("traced"))
	req, _ := http.NewRequest("POST", s.ts.URL+"/v1/sim", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, "feedbeeffeedbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: %d", resp.StatusCode)
	}
	// An untraced request must not add a span.
	if resp, _ := s.post(t, "/v1/sim", tinySpec("untraced")); resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced sim: %d", resp.StatusCode)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	spans, err := telemetry.ReadTrace(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1: %+v", len(spans), spans)
	}
	sp := spans[0]
	if sp.Trace != "feedbeeffeedbeef" || sp.Kind != telemetry.SpanServe ||
		sp.Status != "ok" || sp.Source != "computed" || sp.Spec == "" {
		t.Errorf("serve span = %+v", sp)
	}
}
