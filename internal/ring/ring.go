// Package ring maps content-addressed store keys to the fleet members
// that own them, using rendezvous (highest-random-weight) hashing. It is
// the placement function behind the sharded warm-store tier: every node —
// dsarpd workers and fleet orchestrators alike — builds the same Ring
// from the same member set and therefore agrees, with no coordination,
// on which R workers own any given key.
//
// Rendezvous hashing was chosen over a token ring for its exact minimal-
// movement property: each member's score for a key is independent of the
// other members, so the per-key preference order of the surviving members
// never changes when a member joins or leaves. Removing a member deletes
// it from every preference list (promoting the next replica exactly where
// it appeared); adding one inserts it. Only the expected 1/N fraction of
// keys changes primary owner — there is no cascading reshuffle, which is
// what lets the fleet repair lazily (read-through fetch + write push)
// instead of eagerly rebalancing on every membership change.
//
// Determinism is load-bearing: scores are SHA-256 based, free of any
// per-process state (no map iteration, no seeds), so two processes — or
// the same process across restarts — always place keys identically.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"dsarp/internal/store"
)

// Ring is an immutable member set with a deterministic per-key ordering.
// Members are opaque IDs; the fleet uses normalized worker base URLs so
// orchestrators and workers agree without a separate naming scheme.
type Ring struct {
	members []string
	// prefix caches sha256(member) per member: scoring a key then only
	// hashes the 32-byte key against each precomputed member digest.
	prefix [][sha256.Size]byte
}

// New builds a Ring over the given member IDs. Duplicates are dropped and
// order is irrelevant: two Rings built from any permutation of the same
// set behave identically.
func New(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, prefix: make([][sha256.Size]byte, len(uniq))}
	for i, m := range uniq {
		r.prefix[i] = sha256.Sum256([]byte(m))
	}
	return r
}

// Members returns the deduplicated, sorted member set.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Contains reports whether id is a member.
func (r *Ring) Contains(id string) bool {
	i := sort.SearchStrings(r.members, id)
	return i < len(r.members) && r.members[i] == id
}

// score is member i's highest-random-weight for key: the first 8 bytes of
// sha256(sha256(member) || key), as a big-endian uint64. Hashing the
// member's digest rather than its raw bytes makes the function immune to
// length-extension-style collisions between member IDs ("ab"+"c" vs
// "a"+"bc") and keeps the per-key work to one block of SHA-256.
func (r *Ring) score(i int, k store.Key) uint64 {
	h := sha256.New()
	h.Write(r.prefix[i][:])
	h.Write(k[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Rank returns every member ordered by descending score for key: the
// key's full preference order. Owners(k, n) is its length-n prefix. Ties
// (astronomically unlikely with 64-bit scores) break toward the
// lexically smaller member, keeping the order total and deterministic.
func (r *Ring) Rank(k store.Key) []string {
	type scored struct {
		id string
		s  uint64
	}
	sc := make([]scored, len(r.members))
	for i, m := range r.members {
		sc[i] = scored{id: m, s: r.score(i, k)}
	}
	sort.Slice(sc, func(a, b int) bool {
		if sc[a].s != sc[b].s {
			return sc[a].s > sc[b].s
		}
		return sc[a].id < sc[b].id
	})
	out := make([]string, len(sc))
	for i, s := range sc {
		out[i] = s.id
	}
	return out
}

// Owners returns the key's replica list: the replicas highest-scoring
// members, in preference order. The first entry is the primary owner.
// With replicas >= Len() every member is returned; replicas <= 0 returns
// nil.
func (r *Ring) Owners(k store.Key, replicas int) []string {
	if replicas <= 0 || len(r.members) == 0 {
		return nil
	}
	rank := r.Rank(k)
	if replicas < len(rank) {
		rank = rank[:replicas]
	}
	return rank
}

// IsOwner reports whether id is among the key's replicas owners.
func (r *Ring) IsOwner(k store.Key, replicas int, id string) bool {
	for _, m := range r.Owners(k, replicas) {
		if m == id {
			return true
		}
	}
	return false
}
