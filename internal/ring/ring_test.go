package ring

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dsarp/internal/exp"
	"dsarp/internal/store"
)

var fiveWorkers = []string{
	"http://w1:8080", "http://w2:8080", "http://w3:8080", "http://w4:8080", "http://w5:8080",
}

// registryKeys enumerates every unique spec key the experiment registry
// can produce at the default scale: the ring's real workload, not a
// synthetic one. Balance and movement properties are asserted over these.
func registryKeys(t *testing.T) []store.Key {
	t.Helper()
	r := exp.NewRunner(exp.Defaults())
	seen := map[store.Key]bool{}
	var keys []store.Key
	for _, e := range exp.Experiments() {
		for _, s := range e.Specs(r) {
			if k := s.Key(); !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	if len(keys) < 100 {
		t.Fatalf("registry enumerates only %d unique keys; balance statistics need more", len(keys))
	}
	return keys
}

// TestDeterminismAcrossProcesses pins the placement function itself: the
// expected rankings below were computed by a separate process, so any
// change to the hash construction — which would silently split a fleet's
// warm state across incompatible placements during a rolling deploy —
// fails here rather than in production. Per-process nondeterminism (map
// iteration, seeds) would also fail: the pins cannot vary run to run.
func TestDeterminismAcrossProcesses(t *testing.T) {
	r := New(fiveWorkers)
	want := map[string][]string{
		"ring-golden-0": {"http://w4:8080", "http://w5:8080", "http://w1:8080", "http://w2:8080", "http://w3:8080"},
		"ring-golden-1": {"http://w5:8080", "http://w1:8080", "http://w2:8080", "http://w4:8080", "http://w3:8080"},
		"ring-golden-2": {"http://w4:8080", "http://w2:8080", "http://w1:8080", "http://w5:8080", "http://w3:8080"},
	}
	for seed, rank := range want {
		if got := r.Rank(store.KeyOf([]byte(seed))); !reflect.DeepEqual(got, rank) {
			t.Errorf("Rank(%s) = %q, want pinned %q", seed, got, rank)
		}
	}
}

// TestMemberOrderIrrelevant: every permutation (and duplication) of the
// member list builds an identical ring — the property that lets each
// worker pass the same flat -peers list without caring about order or
// whether it includes itself.
func TestMemberOrderIrrelevant(t *testing.T) {
	base := New(fiveWorkers)
	rng := rand.New(rand.NewSource(1))
	keys := registryKeys(t)[:50]
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), fiveWorkers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Duplicates and empty entries are dropped, not double-counted.
		shuffled = append(shuffled, shuffled[0], "")
		r := New(shuffled)
		if !reflect.DeepEqual(r.Members(), base.Members()) {
			t.Fatalf("members diverged: %q vs %q", r.Members(), base.Members())
		}
		for _, k := range keys {
			if !reflect.DeepEqual(r.Rank(k), base.Rank(k)) {
				t.Fatalf("trial %d: ranking depends on member input order", trial)
			}
		}
	}
}

// TestBalance: over the registry's real spec keys, no worker owns a
// disproportionate share — primary ownership and R=2 replica ownership
// both stay within ±50% of a perfectly even split. (The assignment is
// deterministic, so this is a pin, not a flaky statistical test.)
func TestBalance(t *testing.T) {
	keys := registryKeys(t)
	r := New(fiveWorkers)
	for _, replicas := range []int{1, 2} {
		counts := map[string]int{}
		for _, k := range keys {
			owners := r.Owners(k, replicas)
			if len(owners) != replicas {
				t.Fatalf("Owners(replicas=%d) returned %d members", replicas, len(owners))
			}
			for _, o := range owners {
				counts[o]++
			}
		}
		mean := float64(len(keys)*replicas) / float64(len(fiveWorkers))
		for _, m := range fiveWorkers {
			if c := float64(counts[m]); c < mean/1.5 || c > mean*1.5 {
				t.Errorf("replicas=%d: %s owns %d keys, outside [%0.f, %0.f] around even split %0.f",
					replicas, m, counts[m], mean/1.5, mean*1.5, mean)
			}
		}
	}
}

// TestMinimalMovement pins the property the lazy-repair story rests on:
// membership changes never reshuffle keys among survivors.
//
// Rendezvous scores are independent per member, so removing one member
// must delete it from every key's preference order and change nothing
// else — each key it owned promotes exactly the next replica, and keys it
// did not own keep their replica list bit-identical. Joins are the same
// property in reverse. The reassigned fraction is therefore exactly the
// leaver's ownership share (~1/N), which balance already bounds.
func TestMinimalMovement(t *testing.T) {
	keys := registryKeys(t)
	full := New(fiveWorkers)
	leaver := fiveWorkers[2]
	survivors := New(append(append([]string(nil), fiveWorkers[:2]...), fiveWorkers[3:]...))

	const replicas = 2
	movedPrimary := 0
	for _, k := range keys {
		before := full.Rank(k)
		after := survivors.Rank(k)
		// Exact minimal movement: the survivor order is the full order
		// with the leaver deleted.
		var want []string
		for _, m := range before {
			if m != leaver {
				want = append(want, m)
			}
		}
		if !reflect.DeepEqual(after, want) {
			t.Fatalf("leave reshuffled survivors:\n full:  %q\n after: %q\n want:  %q", before, after, want)
		}
		// Keys the leaver did not own keep their replica list untouched.
		if !full.IsOwner(k, replicas, leaver) {
			if !reflect.DeepEqual(full.Owners(k, replicas), survivors.Owners(k, replicas)) {
				t.Fatalf("key not owned by leaver changed owners: %q -> %q",
					full.Owners(k, replicas), survivors.Owners(k, replicas))
			}
		}
		if before[0] == leaver {
			movedPrimary++
		}
	}
	// The reassigned-primary fraction is the leaver's primary share:
	// about 1/5 of keys, bounded by the same ±50% envelope as balance.
	even := float64(len(keys)) / float64(len(fiveWorkers))
	if f := float64(movedPrimary); f < even/1.5 || f > even*1.5 {
		t.Errorf("leave moved %d primaries, outside [%0.f, %0.f] around even share %0.f",
			movedPrimary, even/1.5, even*1.5, even)
	}

	// Join: adding a sixth member inserts it into some preference orders
	// and must change nothing else.
	joiner := "http://w6:8080"
	grown := New(append(append([]string(nil), fiveWorkers...), joiner))
	stolen := 0
	for _, k := range keys {
		after := grown.Rank(k)
		var withoutJoiner []string
		for _, m := range after {
			if m != joiner {
				withoutJoiner = append(withoutJoiner, m)
			}
		}
		if !reflect.DeepEqual(withoutJoiner, full.Rank(k)) {
			t.Fatalf("join reshuffled incumbents: %q vs %q", withoutJoiner, full.Rank(k))
		}
		if after[0] == joiner {
			stolen++
		}
	}
	evenSix := float64(len(keys)) / float64(len(fiveWorkers)+1)
	if f := float64(stolen); f < evenSix/1.5 || f > evenSix*1.5 {
		t.Errorf("join stole %d primaries, outside [%0.f, %0.f] around even share %0.f",
			stolen, evenSix/1.5, evenSix*1.5, evenSix)
	}
}

// TestOwnersEdgeCases pins degenerate inputs.
func TestOwnersEdgeCases(t *testing.T) {
	k := store.KeyOf([]byte("edge"))
	if got := New(nil).Owners(k, 2); got != nil {
		t.Errorf("empty ring Owners = %q, want nil", got)
	}
	one := New([]string{"http://only"})
	if got := one.Owners(k, 2); len(got) != 1 || got[0] != "http://only" {
		t.Errorf("single-member Owners = %q", got)
	}
	r := New(fiveWorkers)
	if got := r.Owners(k, 0); got != nil {
		t.Errorf("Owners(replicas=0) = %q, want nil", got)
	}
	if got := r.Owners(k, 99); len(got) != len(fiveWorkers) {
		t.Errorf("Owners(replicas=99) returned %d members, want all %d", len(got), len(fiveWorkers))
	}
	if !r.Contains(fiveWorkers[0]) || r.Contains("http://stranger") {
		t.Error("Contains misclassifies membership")
	}
	if r.IsOwner(k, len(fiveWorkers), "http://stranger") {
		t.Error("IsOwner accepted a non-member")
	}
}

// BenchmarkOwners keeps placement cheap enough to sit on the dispatch
// path: one call per spec per pick.
func BenchmarkOwners(b *testing.B) {
	r := New(fiveWorkers)
	keys := make([]store.Key, 64)
	for i := range keys {
		keys[i] = store.KeyOf([]byte(fmt.Sprintf("bench-%d", i)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owners(keys[i%len(keys)], 2)
	}
}
