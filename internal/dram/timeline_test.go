package dram

import (
	"testing"

	"dsarp/internal/timing"
)

// These tests reproduce the paper's illustrative service timelines as
// executable scenarios: Fig. 4 (per-bank refresh overlaps refreshes with
// accesses across banks, saving cycles over all-bank refresh) and Fig. 10
// (SARP serves a read during a refresh of the same bank, saving the
// read's wait).

// serveRead issues ACT + RDA for (bank, row) as early as possible after
// from and returns the cycle the data burst completes.
func serveRead(t *testing.T, d *Device, bank, row int, from int64) int64 {
	t.Helper()
	at := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: bank, Row: row}, from)
	at = issueAt(t, d, Cmd{Kind: CmdRDA, Rank: 0, Bank: bank, Row: row, Col: 0}, at)
	return d.ReadDataAt(at)
}

func TestFig4_PerBankRefreshSavesCyclesOverAllBank(t *testing.T) {
	// Scenario: a refresh is due; bank 0 and bank 1 each have one read.
	// Under REFab both reads wait out tRFCab. Under REFpb, bank 1's read
	// proceeds while bank 0 refreshes.
	finish := func(mode timing.RefMode) int64 {
		d := MustNew(testGeom(), testParams(mode), Options{Check: true})
		if mode == timing.RefAB {
			issueAt(t, d, Cmd{Kind: CmdREFab, Rank: 0}, 0)
		} else {
			issueAt(t, d, Cmd{Kind: CmdREFpb, Rank: 0, Bank: 0}, 0)
		}
		done0 := serveRead(t, d, 0, 1, 1)
		done1 := serveRead(t, d, 1, 1, 1)
		if err := d.Checker().Err(); err != nil {
			t.Fatal(err)
		}
		return max(done0, done1)
	}
	ab := finish(timing.RefAB)
	pb := finish(timing.RefPB)
	if pb >= ab {
		t.Errorf("Fig. 4 shape broken: REFpb finishes at %d, REFab at %d", pb, ab)
	}
	t.Logf("both reads done: REFab=%d cycles, REFpb=%d cycles (saved %d)", ab, pb, ab-pb)
}

func TestFig10_SARPServesReadDuringRefresh(t *testing.T) {
	// Scenario: bank 0 is refreshing (subarray 0); a read to subarray 1 of
	// the same bank arrives. Without SARP it waits out tRFCpb; with SARP it
	// proceeds immediately.
	row := testGeom().RowsPerSubarray() // first row of subarray 1
	finish := func(sarp bool) int64 {
		d := MustNew(testGeom(), testParams(timing.RefPB), Options{SARP: sarp, Check: true})
		issueAt(t, d, Cmd{Kind: CmdREFpb, Rank: 0, Bank: 0}, 0)
		done := serveRead(t, d, 0, row, 1)
		if err := d.Checker().Err(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	base := finish(false)
	sarp := finish(true)
	tp := testParams(timing.RefPB)
	if sarp >= base {
		t.Errorf("Fig. 10 shape broken: SARP read done at %d, baseline at %d", sarp, base)
	}
	if base < int64(tp.TRFCpb) {
		t.Errorf("baseline read at %d should have waited out tRFCpb=%d", base, tp.TRFCpb)
	}
	if sarp > int64(tp.TRCD+tp.CL+tp.BL+8) {
		t.Errorf("SARP read at %d should be near the unloaded latency %d", sarp, tp.TRCD+tp.CL+tp.BL)
	}
	t.Logf("read during same-bank refresh: baseline=%d cycles, SARP=%d cycles", base, sarp)
}

func TestFig10_SARPReadToRefreshingSubarrayStillWaits(t *testing.T) {
	// The dual scenario: the read targets the refreshing subarray itself —
	// SARP must not help there.
	d := MustNew(testGeom(), testParams(timing.RefPB), Options{SARP: true, Check: true})
	at := issueAt(t, d, Cmd{Kind: CmdREFpb, Rank: 0, Bank: 0}, 0)
	done := serveRead(t, d, 0, 1, 1) // row 1 is in subarray 0, being refreshed
	if done < at+int64(d.Timing().TRFCpb) {
		t.Errorf("read into the refreshing subarray finished at %d, before refresh end %d",
			done, at+int64(d.Timing().TRFCpb))
	}
	if err := d.Checker().Err(); err != nil {
		t.Fatal(err)
	}
}
