// Package dram models a DRAM channel at command/cycle granularity: ranks,
// banks, subarrays, rows, and the JEDEC timing state machine governing
// ACTIVATE / READ / WRITE / PRECHARGE / REFab / REFpb commands.
//
// The model supports the SARP modification of Chang et al. (HPCA 2014): a
// refresh operation occupies a single subarray, and when SARP is enabled the
// rest of the bank stays accessible, subject to the power-integrity throttle
// on tFAW/tRRD (paper §4.3.3).
package dram

import "fmt"

// Geometry describes the organization of one DRAM channel.
type Geometry struct {
	Ranks            int
	Banks            int // banks per rank
	SubarraysPerBank int
	RowsPerBank      int
	ColumnsPerRow    int // cache-line-sized columns per row
	RowsPerRef       int // rows refreshed in one bank by one refresh op
}

// Default returns the paper's evaluated geometry (Table 1): 2 ranks/channel,
// 8 banks/rank, 8 subarrays/bank, 64K rows/bank, 8 KB rows (128 64-byte
// lines). One refresh op covers rows/8192 = 8 rows per bank.
func Default() Geometry {
	return Geometry{
		Ranks:            2,
		Banks:            8,
		SubarraysPerBank: 8,
		RowsPerBank:      64 * 1024,
		ColumnsPerRow:    128,
		RowsPerRef:       8,
	}
}

// Validate reports an error for an inconsistent geometry.
func (g Geometry) Validate() error {
	switch {
	case g.Ranks <= 0 || g.Banks <= 0 || g.RowsPerBank <= 0 || g.ColumnsPerRow <= 0:
		return fmt.Errorf("dram: geometry fields must be positive: %+v", g)
	case g.SubarraysPerBank <= 0:
		return fmt.Errorf("dram: need at least 1 subarray per bank, got %d", g.SubarraysPerBank)
	case g.RowsPerBank%g.SubarraysPerBank != 0:
		return fmt.Errorf("dram: rows per bank (%d) must divide evenly into %d subarrays",
			g.RowsPerBank, g.SubarraysPerBank)
	case g.RowsPerRef <= 0 || g.RowsPerRef > g.RowsPerBank:
		return fmt.Errorf("dram: rows per refresh op (%d) out of range", g.RowsPerRef)
	}
	return nil
}

// RowsPerSubarray is the number of rows in each subarray.
func (g Geometry) RowsPerSubarray() int { return g.RowsPerBank / g.SubarraysPerBank }

// SubarrayOf maps a row index to its subarray index.
func (g Geometry) SubarrayOf(row int) int { return row / g.RowsPerSubarray() }

// RefOpsPerRotation is the number of refresh ops needed to refresh every row
// of one bank once.
func (g Geometry) RefOpsPerRotation() int {
	n := g.RowsPerBank / g.RowsPerRef
	if g.RowsPerBank%g.RowsPerRef != 0 {
		n++
	}
	return n
}

// Addr is a channel-local DRAM address.
type Addr struct {
	Rank, Bank, Row, Col int
}

// Subarray returns the subarray the address falls in.
func (a Addr) Subarray(g Geometry) int { return g.SubarrayOf(a.Row) }

func (a Addr) String() string {
	return fmt.Sprintf("r%d/b%d/row%d/col%d", a.Rank, a.Bank, a.Row, a.Col)
}
