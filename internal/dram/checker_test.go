package dram

import (
	"strings"
	"testing"

	"dsarp/internal/refresh"
	"dsarp/internal/timing"
)

func oneOp(bank, startRow, rows, subarray int) []refresh.Op {
	return []refresh.Op{{Bank: bank, StartRow: startRow, Rows: rows, Subarray: subarray}}
}

// The checker keeps shadow state independent of the device, so we exercise
// it by feeding onIssue directly with illegal sequences the device would
// normally reject.

func newChecker() *Checker {
	return NewChecker(testGeom(), testParams(timing.RefPB), false)
}

func TestCheckerCatchesTRRDViolation(t *testing.T) {
	c := newChecker()
	c.onIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, 100, nil)
	c.onIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 1, Row: 1}, 101, nil) // tRRD=4
	if c.Violations() == 0 {
		t.Fatal("tRRD violation not caught")
	}
	if !strings.Contains(c.Err().Error(), "tRRD") {
		t.Errorf("unexpected violation text: %v", c.Err())
	}
}

func TestCheckerCatchesTFAWViolation(t *testing.T) {
	g := testGeom()
	g.Banks = 8
	c := NewChecker(g, testParams(timing.RefPB), false)
	// 5 ACTs spaced exactly tRRD apart land inside one tFAW window.
	for b := 0; b < 5; b++ {
		c.onIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: b, Row: 1}, int64(100+b*4), nil)
	}
	if !strings.Contains(errString(c), "tFAW") {
		t.Errorf("tFAW violation not caught: %v", c.Err())
	}
}

func TestCheckerCatchesBusOverlap(t *testing.T) {
	c := newChecker()
	c.onIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, 0, nil)
	c.onIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 1, Row: 1}, 10, nil)
	c.onIssue(Cmd{Kind: CmdRD, Rank: 0, Bank: 0, Row: 1, Col: 0}, 20, nil)
	c.onIssue(Cmd{Kind: CmdRD, Rank: 0, Bank: 1, Row: 1, Col: 0}, 21, nil) // bursts overlap
	if !strings.Contains(errString(c), "data bus overlap") {
		t.Errorf("bus overlap not caught: %v", c.Err())
	}
}

func TestCheckerCatchesWrongRowColumnCommand(t *testing.T) {
	c := newChecker()
	c.onIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, 0, nil)
	c.onIssue(Cmd{Kind: CmdRD, Rank: 0, Bank: 0, Row: 2, Col: 0}, 20, nil)
	if !strings.Contains(errString(c), "open row") {
		t.Errorf("wrong-row read not caught: %v", c.Err())
	}
}

func TestCheckerCatchesAccessDuringRefresh(t *testing.T) {
	c := newChecker()
	c.recordRefresh(0, oneOp(0, 0, 2, 0), 100, 200)
	c.onIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, 150, nil)
	if !strings.Contains(errString(c), "refreshing") {
		t.Errorf("access during refresh not caught: %v", c.Err())
	}
}

func TestCheckerSARPAllowsNonConflictingSubarray(t *testing.T) {
	c := NewChecker(testGeom(), testParams(timing.RefPB), true)
	c.recordRefresh(0, oneOp(0, 0, 2, 0), 100, 200)
	c.onIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 20}, 150, nil) // subarray 1
	if c.Violations() != 0 {
		t.Errorf("SARP-legal access flagged: %v", c.Err())
	}
	c.onIssue(Cmd{Kind: CmdPRE, Rank: 0, Bank: 0}, 160, nil)
	c.onIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 5}, 170, nil) // subarray 0: conflict
	if !strings.Contains(errString(c), "refreshing subarray") {
		t.Errorf("SARP subarray conflict not caught: %v", c.Err())
	}
}

func TestCheckerCatchesOverlappingREFpb(t *testing.T) {
	c := newChecker()
	c.recordRefresh(0, oneOp(0, 0, 2, 0), 100, 200)
	c.onIssue(Cmd{Kind: CmdREFpb, Rank: 0, Bank: 1}, 150, nil)
	if !strings.Contains(errString(c), "overlaps") {
		t.Errorf("overlapping REFpb not caught: %v", c.Err())
	}
}

func TestVerifyRetention(t *testing.T) {
	c := newChecker()
	// Refresh rows 0..1 of bank 0 at cycle 10; by cycle 1000 with a max gap
	// of 500, every other row (never refreshed, gap = 1000) violates, and
	// rows 0..1 violate too (gap 990 > 500).
	c.recordRefresh(0, oneOp(0, 0, 2, 0), 10, 20)
	if v := c.VerifyRetention(400, 500); v != 0 {
		t.Fatalf("premature retention violations: %d", v)
	}
	g := testGeom()
	if v := c.VerifyRetention(1000, 500); v != g.Ranks*g.Banks*g.RowsPerBank {
		t.Errorf("retention violations = %d, want every row (%d)", v, g.Ranks*g.Banks*g.RowsPerBank)
	}
}

func errString(c *Checker) string {
	if err := c.Err(); err != nil {
		return err.Error()
	}
	return ""
}
