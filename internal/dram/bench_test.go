package dram

import (
	"testing"

	"dsarp/internal/timing"
)

// BenchmarkCanIssue measures the hot-path legality check the controller
// runs for every queued request every cycle.
func BenchmarkCanIssue(b *testing.B) {
	d := MustNew(Default(), timing.DDR3(timing.Config{Mode: timing.RefPB}), Options{})
	cmd := Cmd{Kind: CmdACT, Rank: 0, Bank: 3, Row: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.CanIssue(cmd, int64(i))
	}
}

// BenchmarkIssueCloseRowCycle measures a full ACT -> RDA service pair.
func BenchmarkIssueCloseRowCycle(b *testing.B) {
	d := MustNew(Default(), timing.DDR3(timing.Config{Mode: timing.RefPB}), Options{})
	tp := d.Timing()
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank := i % 8
		act := Cmd{Kind: CmdACT, Rank: 0, Bank: bank, Row: i % 1024}
		for !d.CanIssue(act, now) {
			now++
		}
		d.Issue(act, now)
		rd := Cmd{Kind: CmdRDA, Rank: 0, Bank: bank, Row: i % 1024, Col: i % 128}
		now += int64(tp.TRCD)
		for !d.CanIssue(rd, now) {
			now++
		}
		d.Issue(rd, now)
	}
}
