package dram

import (
	"fmt"

	"dsarp/internal/snap"
)

// AppendState writes the device's mutable state: every per-bank and
// per-rank timing register, the global bus/turnaround registers, the
// command statistics, and each rank's refresh-unit counters. Geometry,
// timing parameters, and options are construction-derived and omitted.
// The invariant checker does not serialize; snapshots of checked runs are
// refused at the sim layer.
func (d *Device) AppendState(w *snap.Writer) {
	for i := range d.openRow {
		w.Int(d.openRow[i])
		w.I64(d.actTime[i])
		w.I64(d.bankNextAct[i])
		w.I64(d.nextReadAt[i])
		w.I64(d.nextWriteAt[i])
		w.I64(d.nextPreAt[i])
		w.I64(d.refUntil[i])
		w.Int(d.refSubarray[i])
	}
	for r := range d.rankNextAct {
		w.I64(d.rankNextAct[r])
		w.I64(d.rankRefUntil[r])
		w.I64(d.pbRefUntil[r])
		w.Int(d.actCount[r])
	}
	for _, v := range d.actRing {
		w.I64(v)
	}
	w.I64(d.busFreeAt)
	w.I64(d.nextRead)
	w.I64(d.nextWrite)
	s := &d.stats
	for _, v := range []int64{s.Commands, s.Acts, s.Pres, s.Reads, s.Writes, s.RefABs, s.RefPBs} {
		w.I64(v)
	}
	for _, u := range d.units {
		u.AppendState(w)
	}
}

// LoadState restores the state written by AppendState onto a freshly
// built device of the same geometry and timing.
func (d *Device) LoadState(r *snap.Reader) error {
	for i := range d.openRow {
		d.openRow[i] = r.Int()
		d.actTime[i] = r.I64()
		d.bankNextAct[i] = r.I64()
		d.nextReadAt[i] = r.I64()
		d.nextWriteAt[i] = r.I64()
		d.nextPreAt[i] = r.I64()
		d.refUntil[i] = r.I64()
		d.refSubarray[i] = r.Int()
		if row := d.openRow[i]; row != NoRow && (row < 0 || row >= d.geom.RowsPerBank) {
			return fmt.Errorf("dram: snapshot open row %d out of range", row)
		}
	}
	for rk := range d.rankNextAct {
		d.rankNextAct[rk] = r.I64()
		d.rankRefUntil[rk] = r.I64()
		d.pbRefUntil[rk] = r.I64()
		d.actCount[rk] = r.Int()
	}
	for i := range d.actRing {
		d.actRing[i] = r.I64()
	}
	d.busFreeAt = r.I64()
	d.nextRead = r.I64()
	d.nextWrite = r.I64()
	s := &d.stats
	for _, p := range []*int64{&s.Commands, &s.Acts, &s.Pres, &s.Reads, &s.Writes, &s.RefABs, &s.RefPBs} {
		*p = r.I64()
	}
	for _, u := range d.units {
		if err := u.LoadState(r); err != nil {
			return err
		}
	}
	return r.Err()
}
