package dram

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	g := Default()
	// Table 1: 2 ranks/channel, 8 banks, 8 subarrays/bank, 64K rows, 8KB
	// rows (128 64-byte columns).
	if g.Ranks != 2 || g.Banks != 8 || g.SubarraysPerBank != 8 ||
		g.RowsPerBank != 65536 || g.ColumnsPerRow != 128 {
		t.Fatalf("default geometry diverges from Table 1: %+v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 64 ms / 7.8 us = 8192 refresh commands per window, each covering
	// rows/8192 = 8 rows.
	if g.RowsPerRef != 8 {
		t.Errorf("RowsPerRef = %d, want 8", g.RowsPerRef)
	}
	if g.RefOpsPerRotation() != 8192 {
		t.Errorf("RefOpsPerRotation = %d, want 8192", g.RefOpsPerRotation())
	}
}

func TestSubarrayOf(t *testing.T) {
	g := Default()
	per := g.RowsPerSubarray()
	if per != 8192 {
		t.Fatalf("RowsPerSubarray = %d, want 8192", per)
	}
	cases := []struct{ row, want int }{
		{0, 0}, {per - 1, 0}, {per, 1}, {3*per + 5, 3}, {g.RowsPerBank - 1, 7},
	}
	for _, c := range cases {
		if got := g.SubarrayOf(c.row); got != c.want {
			t.Errorf("SubarrayOf(%d) = %d, want %d", c.row, got, c.want)
		}
	}
}

func TestSubarrayOfInRangeProperty(t *testing.T) {
	g := Default()
	f := func(row uint32) bool {
		s := g.SubarrayOf(int(row) % g.RowsPerBank)
		return s >= 0 && s < g.SubarraysPerBank
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Geometry{
		{Ranks: 0, Banks: 8, SubarraysPerBank: 8, RowsPerBank: 64, ColumnsPerRow: 8, RowsPerRef: 1},
		{Ranks: 1, Banks: 8, SubarraysPerBank: 0, RowsPerBank: 64, ColumnsPerRow: 8, RowsPerRef: 1},
		{Ranks: 1, Banks: 8, SubarraysPerBank: 7, RowsPerBank: 64, ColumnsPerRow: 8, RowsPerRef: 1},
		{Ranks: 1, Banks: 8, SubarraysPerBank: 8, RowsPerBank: 64, ColumnsPerRow: 8, RowsPerRef: 0},
		{Ranks: 1, Banks: 8, SubarraysPerBank: 8, RowsPerBank: 64, ColumnsPerRow: 8, RowsPerRef: 65},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, g)
		}
	}
}
