package dram

// rank holds rank-level shared timing state: ACT rate limits (tRRD, tFAW),
// all-bank refresh occupancy, and the REFpb non-overlap rule.
type rank struct {
	banks []bank

	nextAct  int64    // earliest ACT in any bank of this rank (tRRD)
	actRing  [4]int64 // issue times of the last four ACTs (tFAW window)
	actCount int      // total ACTs issued (ring occupancy)

	// All-bank refresh occupancy. While now < refUntil a REFab is in
	// progress; without SARP every bank is locked (via bank.nextAct), with
	// SARP each bank keeps serving accesses outside its refreshing subarray
	// (tracked per bank).
	refUntil int64

	// Per-bank refresh serialization: the LPDDR3 standard disallows REFpb
	// operations from overlapping within a rank (paper §2.2.2), so the next
	// REFpb may not start before pbRefUntil.
	pbRefUntil int64
}

func newRank(banks int) *rank {
	r := &rank{banks: make([]bank, banks)}
	for i := range r.banks {
		r.banks[i] = newBank()
	}
	return r
}

// refreshing reports whether an all-bank refresh is in progress at t.
func (r *rank) refreshing(t int64) bool { return t < r.refUntil }

// anyRefreshInProgress reports whether any refresh (all-bank or per-bank)
// is restoring rows anywhere in the rank at t. The SARP power throttle on
// tFAW/tRRD applies exactly while this holds (paper §4.3.3).
func (r *rank) anyRefreshInProgress(t int64) bool {
	if r.refreshing(t) {
		return true
	}
	return t < r.pbRefUntil
}

// fawReady reports whether a new ACT at t would keep at most four ACTs
// inside the rolling tFAW window.
func (r *rank) fawReady(t int64, tfaw int) bool {
	if r.actCount < 4 {
		return true
	}
	oldest := r.actRing[r.actCount%4]
	return t >= oldest+int64(tfaw)
}

// recordACT registers an ACT at t for tRRD/tFAW accounting.
func (r *rank) recordACT(t int64, trrd int) {
	r.actRing[r.actCount%4] = t
	r.actCount++
	r.nextAct = max(r.nextAct, t+int64(trrd))
}

// allPrecharged reports whether every bank in the rank is precharged.
func (r *rank) allPrecharged() bool {
	for i := range r.banks {
		if !r.banks[i].precharged() {
			return false
		}
	}
	return true
}

// actReadyAll is the earliest cycle at which every bank satisfies its
// per-bank ACT timing (used to gate REFab, which activates rows internally).
func (r *rank) actReadyAll() int64 {
	var t int64
	for i := range r.banks {
		t = max(t, r.banks[i].nextAct)
	}
	return t
}
