package dram

import (
	"testing"

	"dsarp/internal/timing"
)

// testGeom is a small geometry: 1 rank, 4 banks, 4 subarrays, 64 rows.
func testGeom() Geometry {
	return Geometry{Ranks: 1, Banks: 4, SubarraysPerBank: 4, RowsPerBank: 64,
		ColumnsPerRow: 8, RowsPerRef: 2}
}

func testParams(mode timing.RefMode) timing.Params {
	return timing.DDR3(timing.Config{Density: timing.Gb8, Mode: mode})
}

func newDev(t *testing.T, sarp bool) *Device {
	t.Helper()
	d, err := New(testGeom(), testParams(timing.RefPB), Options{SARP: sarp, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// issueAt finds the first cycle >= from at which cmd is legal, issues it,
// and returns the cycle. Fails the test after a bounded search.
func issueAt(t *testing.T, d *Device, cmd Cmd, from int64) int64 {
	t.Helper()
	for tck := from; tck < from+10_000; tck++ {
		if d.CanIssue(cmd, tck) {
			d.Issue(cmd, tck)
			return tck
		}
	}
	t.Fatalf("%v never became legal after %d", cmd, from)
	return -1
}

func TestActivateThenReadRespectsTRCD(t *testing.T) {
	d := newDev(t, false)
	tp := d.Timing()
	act := Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 5}
	if !d.CanIssue(act, 0) {
		t.Fatal("ACT to idle bank should be legal at cycle 0")
	}
	d.Issue(act, 0)

	rd := Cmd{Kind: CmdRD, Rank: 0, Bank: 0, Row: 5, Col: 3}
	if d.CanIssue(rd, int64(tp.TRCD)-1) {
		t.Errorf("RD legal %d cycles after ACT, violating tRCD=%d", tp.TRCD-1, tp.TRCD)
	}
	if !d.CanIssue(rd, int64(tp.TRCD)) {
		t.Errorf("RD should be legal exactly at tRCD=%d", tp.TRCD)
	}
}

func TestReadWrongRowIllegal(t *testing.T) {
	d := newDev(t, false)
	issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 5}, 0)
	rd := Cmd{Kind: CmdRD, Rank: 0, Bank: 0, Row: 6, Col: 0}
	if d.CanIssue(rd, 100) {
		t.Error("RD to a non-open row must be illegal")
	}
}

func TestActToActiveBankIllegal(t *testing.T) {
	d := newDev(t, false)
	issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 5}, 0)
	if d.CanIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 6}, 1000) {
		t.Error("ACT to a bank with an open row must be illegal")
	}
}

func TestPrechargeReopens(t *testing.T) {
	d := newDev(t, false)
	tp := d.Timing()
	at := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 5}, 0)
	pre := Cmd{Kind: CmdPRE, Rank: 0, Bank: 0}
	preAt := issueAt(t, d, pre, at)
	if preAt < at+int64(tp.TRAS) {
		t.Errorf("PRE at %d violates tRAS=%d after ACT at %d", preAt, tp.TRAS, at)
	}
	act2 := Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 9}
	act2At := issueAt(t, d, act2, preAt)
	if act2At < preAt+int64(tp.TRP) {
		t.Errorf("re-ACT at %d violates tRP=%d after PRE at %d", act2At, tp.TRP, preAt)
	}
	if d.OpenRow(0, 0) != 9 {
		t.Errorf("open row = %d, want 9", d.OpenRow(0, 0))
	}
}

func TestAutoPrechargeCloses(t *testing.T) {
	d := newDev(t, false)
	at := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 5}, 0)
	issueAt(t, d, Cmd{Kind: CmdRDA, Rank: 0, Bank: 0, Row: 5, Col: 0}, at)
	if d.OpenRow(0, 0) != NoRow {
		t.Error("RDA should leave the bank precharged")
	}
}

func TestTRRDSpacing(t *testing.T) {
	d := newDev(t, false)
	tp := d.Timing()
	at0 := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, 0)
	act1 := Cmd{Kind: CmdACT, Rank: 0, Bank: 1, Row: 1}
	at1 := issueAt(t, d, act1, at0)
	if at1-at0 < int64(tp.TRRD) {
		t.Errorf("ACTs %d apart, want >= tRRD=%d", at1-at0, tp.TRRD)
	}
}

func TestTFAWLimitsBurstOfActivates(t *testing.T) {
	g := testGeom()
	g.Banks = 8
	d := MustNew(g, testParams(timing.RefPB), Options{Check: true})
	tp := d.Timing()
	var times []int64
	from := int64(0)
	for b := 0; b < 5; b++ {
		at := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: b, Row: 1}, from)
		times = append(times, at)
		from = at
	}
	if gap := times[4] - times[0]; gap < int64(tp.TFAW) {
		t.Errorf("5th ACT only %d cycles after 1st, violating tFAW=%d", gap, tp.TFAW)
	}
	if err := d.Checker().Err(); err != nil {
		t.Fatalf("checker: %v", err)
	}
}

func TestRefreshLocksBankWithoutSARP(t *testing.T) {
	d := newDev(t, false)
	tp := d.Timing()
	ref := Cmd{Kind: CmdREFpb, Rank: 0, Bank: 0}
	at := issueAt(t, d, ref, 0)

	act := Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}
	if d.CanIssue(act, at+1) {
		t.Error("ACT legal during REFpb without SARP")
	}
	if !d.BankRefreshing(0, 0, at+1) {
		t.Error("BankRefreshing false during refresh")
	}
	// Other banks stay available during the per-bank refresh.
	if !d.CanIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 1, Row: 1}, at+2) {
		t.Error("other banks should serve during REFpb")
	}
	actAt := issueAt(t, d, act, at)
	if actAt < at+int64(tp.TRFCpb) {
		t.Errorf("ACT at %d, refresh ends at %d", actAt, at+int64(tp.TRFCpb))
	}
}

func TestREFpbNonOverlapWithinRank(t *testing.T) {
	d := newDev(t, false)
	tp := d.Timing()
	at := issueAt(t, d, Cmd{Kind: CmdREFpb, Rank: 0, Bank: 0}, 0)
	next := Cmd{Kind: CmdREFpb, Rank: 0, Bank: 1}
	if d.CanIssue(next, at+1) {
		t.Error("overlapping REFpb ops must be illegal (LPDDR3 rule)")
	}
	nextAt := issueAt(t, d, next, at)
	if nextAt < at+int64(tp.TRFCpb) {
		t.Errorf("second REFpb at %d overlaps first (ends %d)", nextAt, at+int64(tp.TRFCpb))
	}
}

func TestREFabLocksRankWithoutSARP(t *testing.T) {
	d := MustNew(testGeom(), testParams(timing.RefAB), Options{Check: true})
	tp := d.Timing()
	at := issueAt(t, d, Cmd{Kind: CmdREFab, Rank: 0}, 0)
	for b := 0; b < 4; b++ {
		if d.CanIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: b, Row: 1}, at+1) {
			t.Errorf("bank %d accessible during REFab without SARP", b)
		}
	}
	actAt := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, at)
	if actAt < at+int64(tp.TRFCab) {
		t.Errorf("ACT at %d during REFab (ends %d)", actAt, at+int64(tp.TRFCab))
	}
}

func TestREFabRequiresAllPrecharged(t *testing.T) {
	d := MustNew(testGeom(), testParams(timing.RefAB), Options{Check: true})
	issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 2, Row: 1}, 0)
	if d.CanIssue(Cmd{Kind: CmdREFab, Rank: 0}, 100) {
		t.Error("REFab with an open bank must be illegal without SARP")
	}
}

func TestSARPAllowsOtherSubarraysDuringRefresh(t *testing.T) {
	d := newDev(t, true)
	// Refresh starts at subarray 0 (rows 0..15 of 64 rows / 4 subarrays).
	at := issueAt(t, d, Cmd{Kind: CmdREFpb, Rank: 0, Bank: 0}, 0)
	if got := d.RefreshingSubarray(0, 0, at+1); got != 0 {
		t.Fatalf("refreshing subarray = %d, want 0", got)
	}
	// Row 5 is in subarray 0: blocked. Row 20 is in subarray 1: allowed.
	if d.CanIssue(Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 5}, at+1) {
		t.Error("ACT to the refreshing subarray must be blocked")
	}
	actConflictFree := Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 20}
	actAt := issueAt(t, d, actConflictFree, at+1)
	if actAt >= at+int64(d.Timing().TRFCpb) {
		t.Errorf("SARP should allow the ACT during refresh; got cycle %d", actAt)
	}
	if err := d.Checker().Err(); err != nil {
		t.Fatalf("checker: %v", err)
	}
}

func TestSARPThrottlesActRateDuringRefresh(t *testing.T) {
	g := testGeom()
	g.Banks = 8
	d := MustNew(g, testParams(timing.RefPB), Options{SARP: true, Check: true})
	tp := d.Timing()
	refAt := issueAt(t, d, Cmd{Kind: CmdREFpb, Rank: 0, Bank: 7}, 0)

	at0 := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, refAt+1)
	at1 := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 1, Row: 1}, at0)
	_, trrdThrottled := tp.SARPThrottledPB()
	if at1-at0 < int64(trrdThrottled) {
		t.Errorf("ACT spacing %d during refresh, want >= throttled tRRD %d", at1-at0, trrdThrottled)
	}
}

func TestSARPRefreshStartsDespiteOpenOtherSubarray(t *testing.T) {
	d := newDev(t, true)
	// Open a row in subarray 1; the pending refresh targets subarray 0, so
	// SARP can start it without precharging (paper §4.3.1: two activated
	// subarrays, one refreshing, one accessing).
	issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 20}, 0)
	ref := Cmd{Kind: CmdREFpb, Rank: 0, Bank: 0}
	if !d.CanIssue(ref, 100) {
		t.Fatal("SARP refresh should start with a non-conflicting open row")
	}
	d.Issue(ref, 100)
	if err := d.Checker().Err(); err != nil {
		t.Fatalf("checker: %v", err)
	}
}

func TestSARPRefreshBlockedByConflictingOpenRow(t *testing.T) {
	d := newDev(t, true)
	// Open a row in subarray 0 — the same subarray the refresh targets.
	issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 5}, 0)
	if d.CanIssue(Cmd{Kind: CmdREFpb, Rank: 0, Bank: 0}, 100) {
		t.Error("SARP refresh must not start on the open row's subarray")
	}
}

func TestDataBusSerializesReads(t *testing.T) {
	d := newDev(t, false)
	tp := d.Timing()
	at := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, 0)
	rd := Cmd{Kind: CmdRD, Rank: 0, Bank: 0, Row: 1, Col: 0}
	r0 := issueAt(t, d, rd, at)
	rd.Col = 1
	r1 := issueAt(t, d, rd, r0)
	if r1-r0 < int64(tp.TCCD) {
		t.Errorf("back-to-back reads %d apart, want >= tCCD=%d", r1-r0, tp.TCCD)
	}
	if err := d.Checker().Err(); err != nil {
		t.Fatalf("checker: %v", err)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	d := newDev(t, false)
	tp := d.Timing()
	at := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, 0)
	wr := issueAt(t, d, Cmd{Kind: CmdWR, Rank: 0, Bank: 0, Row: 1, Col: 0}, at)
	rdAt := issueAt(t, d, Cmd{Kind: CmdRD, Rank: 0, Bank: 0, Row: 1, Col: 1}, wr)
	minGap := int64(tp.CWL + tp.BL + tp.TWTR)
	if rdAt-wr < minGap {
		t.Errorf("WR->RD gap %d, want >= CWL+BL+tWTR = %d", rdAt-wr, minGap)
	}
}

func TestIllegalIssuePanics(t *testing.T) {
	d := newDev(t, false)
	defer func() {
		if recover() == nil {
			t.Error("Issue of illegal command did not panic")
		}
	}()
	d.Issue(Cmd{Kind: CmdRD, Rank: 0, Bank: 0, Row: 1, Col: 0}, 0) // no open row
}

func TestRefreshDurationOverride(t *testing.T) {
	d := newDev(t, false)
	ref := Cmd{Kind: CmdREFpb, Rank: 0, Bank: 0, RefDur: 10, RefRows: 1}
	at := issueAt(t, d, ref, 0)
	if d.BankRefreshing(0, 0, at+9) != true {
		t.Error("bank should be refreshing for the overridden duration")
	}
	if d.BankRefreshing(0, 0, at+10) {
		t.Error("override duration of 10 cycles not honored")
	}
}

func TestStatsCount(t *testing.T) {
	d := newDev(t, false)
	at := issueAt(t, d, Cmd{Kind: CmdACT, Rank: 0, Bank: 0, Row: 1}, 0)
	at = issueAt(t, d, Cmd{Kind: CmdRD, Rank: 0, Bank: 0, Row: 1, Col: 0}, at)
	at = issueAt(t, d, Cmd{Kind: CmdWRA, Rank: 0, Bank: 0, Row: 1, Col: 1}, at)
	issueAt(t, d, Cmd{Kind: CmdREFpb, Rank: 0, Bank: 1}, at)
	st := d.Stats()
	if st.Acts != 1 || st.Reads != 1 || st.Writes != 1 || st.RefPBs != 1 || st.Pres != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Accesses() != 2 {
		t.Errorf("Accesses = %d, want 2", st.Accesses())
	}
}
