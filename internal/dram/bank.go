package dram

// NoRow marks a precharged bank (no open row).
const NoRow = -1

// NoSubarray marks the absence of an in-progress subarray-granular refresh.
const NoSubarray = -1
