package dram

// NoRow marks a precharged bank (no open row).
const NoRow = -1

// NoSubarray marks the absence of an in-progress subarray-granular refresh.
const NoSubarray = -1

// bank holds the timing state of one DRAM bank. All times are absolute DRAM
// cycles; a command is legal at cycle t if t >= the relevant next* field.
type bank struct {
	openRow int // NoRow when precharged

	actTime   int64 // cycle of the most recent ACT (for tRAS accounting)
	nextAct   int64 // earliest ACT (covers tRC, tRP after PRE, refresh lockout)
	nextRead  int64 // earliest RD/RDA (tRCD after ACT)
	nextWrite int64 // earliest WR/WRA (tRCD after ACT)
	nextPre   int64 // earliest PRE (tRAS after ACT, tRTP after RD, tWR after WR)

	// Refresh occupancy. refUntil > now means a refresh is restoring rows in
	// refSubarray of this bank. Without SARP the whole bank is locked
	// (enforced via nextAct); with SARP only refSubarray is off-limits.
	refUntil    int64
	refSubarray int
}

func newBank() bank {
	return bank{openRow: NoRow, refSubarray: NoSubarray}
}

// refreshing reports whether a refresh is in progress in this bank at t.
func (b *bank) refreshing(t int64) bool { return t < b.refUntil }

// precharged reports whether the bank has no open row.
func (b *bank) precharged() bool { return b.openRow == NoRow }

// prechargeDone records a precharge completing; the bank may activate again
// tRP cycles after t.
func (b *bank) prechargeDone(t int64, trp int) {
	b.openRow = NoRow
	b.nextAct = max(b.nextAct, t+int64(trp))
}
