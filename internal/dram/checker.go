package dram

import (
	"errors"
	"fmt"

	"dsarp/internal/refresh"
	"dsarp/internal/timing"
)

// Checker independently verifies DRAM protocol invariants as commands are
// issued. It keeps its own shadow state (rather than trusting the device's
// next* bookkeeping) so a bug in the device state machine surfaces as a
// recorded violation instead of silently wrong simulation results.
//
// Checked invariants (DESIGN.md §5):
//  1. tRRD / tFAW ACT rate limits per rank (base values always; a violation
//     of the base constraint is a violation of the inflated one too).
//  2. Data-bus exclusivity: read/write bursts never overlap on the channel.
//  3. Column commands only to the open row (shadow row state).
//  4. No access to a refreshing bank (non-SARP) or refreshing subarray (SARP).
//  5. Per-bank refreshes never overlap within a rank; REFab needs all banks
//     quiet.
//  6. Refresh retention coverage (VerifyRetention).
type Checker struct {
	geom timing.Params
	g    Geometry
	sarp bool

	violations []error

	acts      [][]int64 // per rank: recent ACT issue times
	openRow   [][]int   // per rank, bank: shadow open row
	busUntil  int64     // shadow data-bus busy horizon
	busLast   string    // description of the burst occupying the bus
	refBusy   [][]int64 // per rank, bank: refresh end cycle
	refSub    [][]int   // per rank, bank: refreshing subarray
	rankRefAt []int64   // per rank: all-bank refresh end cycle

	lastRefreshed [][][]int64 // per rank, bank, row: last refresh issue cycle
}

// NewChecker builds a checker for a geometry/timing pair.
func NewChecker(g Geometry, tp timing.Params, sarp bool) *Checker {
	c := &Checker{
		geom:      tp,
		g:         g,
		sarp:      sarp,
		acts:      make([][]int64, g.Ranks),
		openRow:   make([][]int, g.Ranks),
		refBusy:   make([][]int64, g.Ranks),
		refSub:    make([][]int, g.Ranks),
		rankRefAt: make([]int64, g.Ranks),
	}
	c.lastRefreshed = make([][][]int64, g.Ranks)
	for r := 0; r < g.Ranks; r++ {
		c.openRow[r] = make([]int, g.Banks)
		c.refBusy[r] = make([]int64, g.Banks)
		c.refSub[r] = make([]int, g.Banks)
		c.lastRefreshed[r] = make([][]int64, g.Banks)
		for b := 0; b < g.Banks; b++ {
			c.openRow[r][b] = NoRow
			c.refSub[r][b] = NoSubarray
			c.lastRefreshed[r][b] = make([]int64, g.RowsPerBank)
		}
	}
	return c
}

func (c *Checker) fail(format string, args ...any) {
	c.violations = append(c.violations, fmt.Errorf(format, args...))
}

// Err returns all recorded violations joined, or nil.
func (c *Checker) Err() error { return errors.Join(c.violations...) }

// Violations returns the number of recorded violations.
func (c *Checker) Violations() int { return len(c.violations) }

// onIssue is called by the device after applying a command.
func (c *Checker) onIssue(cmd Cmd, t int64, d *Device) {
	switch cmd.Kind {
	case CmdACT:
		c.checkACTRate(cmd.Rank, t)
		c.checkRefreshConflict(cmd, t)
		if c.openRow[cmd.Rank][cmd.Bank] != NoRow {
			c.fail("ACT to open bank r%d/b%d at %d", cmd.Rank, cmd.Bank, t)
		}
		c.openRow[cmd.Rank][cmd.Bank] = cmd.Row
		c.acts[cmd.Rank] = append(c.acts[cmd.Rank], t)
		if n := len(c.acts[cmd.Rank]); n > 16 {
			c.acts[cmd.Rank] = c.acts[cmd.Rank][n-8:]
		}

	case CmdRD, CmdRDA, CmdWR, CmdWRA:
		if c.openRow[cmd.Rank][cmd.Bank] != cmd.Row {
			c.fail("%v at %d but open row is %d", cmd, t, c.openRow[cmd.Rank][cmd.Bank])
		}
		c.checkRefreshConflict(cmd, t)
		lat := int64(c.geom.CL)
		if cmd.Kind.IsWrite() {
			lat = int64(c.geom.CWL)
		}
		start, end := t+lat, t+lat+int64(c.geom.BL)
		if start < c.busUntil {
			c.fail("data bus overlap: %v at %d (burst %d..%d) overlaps %s (busy until %d)",
				cmd, t, start, end, c.busLast, c.busUntil)
		}
		c.busUntil = end
		c.busLast = cmd.String()
		if cmd.Kind == CmdRDA || cmd.Kind == CmdWRA {
			c.openRow[cmd.Rank][cmd.Bank] = NoRow
		}

	case CmdPRE:
		if c.openRow[cmd.Rank][cmd.Bank] == NoRow {
			c.fail("PRE to precharged bank r%d/b%d at %d", cmd.Rank, cmd.Bank, t)
		}
		c.openRow[cmd.Rank][cmd.Bank] = NoRow

	case CmdREFpb:
		for b := 0; b < c.g.Banks; b++ {
			if t < c.refBusy[cmd.Rank][b] {
				c.fail("REFpb r%d/b%d at %d overlaps refresh in b%d (until %d)",
					cmd.Rank, cmd.Bank, t, b, c.refBusy[cmd.Rank][b])
			}
		}
		if t < c.rankRefAt[cmd.Rank] {
			c.fail("REFpb r%d/b%d at %d during REFab (until %d)",
				cmd.Rank, cmd.Bank, t, c.rankRefAt[cmd.Rank])
		}
		if !c.sarp && c.openRow[cmd.Rank][cmd.Bank] != NoRow {
			c.fail("REFpb to active bank r%d/b%d at %d without SARP", cmd.Rank, cmd.Bank, t)
		}

	case CmdREFab:
		if t < c.rankRefAt[cmd.Rank] {
			c.fail("REFab r%d at %d overlaps REFab (until %d)", cmd.Rank, t, c.rankRefAt[cmd.Rank])
		}
		for b := 0; b < c.g.Banks; b++ {
			if t < c.refBusy[cmd.Rank][b] {
				c.fail("REFab r%d at %d overlaps REFpb in b%d", cmd.Rank, t, b)
			}
			if !c.sarp && c.openRow[cmd.Rank][b] != NoRow {
				c.fail("REFab r%d at %d with bank %d active and SARP off", cmd.Rank, t, b)
			}
		}
	}
}

// recordRefresh is called by the device with the rows a refresh restores.
func (c *Checker) recordRefresh(rankID int, ops []refresh.Op, t, end int64) {
	for _, op := range ops {
		c.refBusy[rankID][op.Bank] = end
		c.refSub[rankID][op.Bank] = op.Subarray
		for row := op.StartRow; row < op.StartRow+op.Rows; row++ {
			c.lastRefreshed[rankID][op.Bank][row] = t
		}
	}
	if len(ops) > 1 {
		c.rankRefAt[rankID] = end
	}
}

func (c *Checker) checkACTRate(rankID int, t int64) {
	acts := c.acts[rankID]
	inWindow := 0
	for _, at := range acts {
		if t-at < int64(c.geom.TFAW) {
			inWindow++
		}
		if at > t-int64(c.geom.TRRD) && at != t {
			c.fail("tRRD violation: ACT at %d, prior ACT at %d (tRRD=%d)", t, at, c.geom.TRRD)
		}
	}
	if inWindow >= 4 {
		c.fail("tFAW violation: 5th ACT at %d within %d cycles", t, c.geom.TFAW)
	}
}

func (c *Checker) checkRefreshConflict(cmd Cmd, t int64) {
	rankRef := t < c.rankRefAt[cmd.Rank]
	bankRef := t < c.refBusy[cmd.Rank][cmd.Bank]
	if !rankRef && !bankRef {
		return
	}
	if !c.sarp {
		c.fail("%v at %d targets refreshing bank/rank without SARP", cmd, t)
		return
	}
	if cmd.Kind == CmdACT && c.g.SubarrayOf(cmd.Row) == c.refSub[cmd.Rank][cmd.Bank] {
		c.fail("%v at %d targets refreshing subarray %d", cmd, t, c.refSub[cmd.Rank][cmd.Bank])
	}
}

// VerifyRetention asserts every row of every bank was refreshed within
// maxGap cycles before now. Rows never refreshed are measured from cycle 0
// (the simulator starts with all cells freshly written). Returns the number
// of violations recorded.
func (c *Checker) VerifyRetention(now, maxGap int64) int {
	before := len(c.violations)
	for r := range c.lastRefreshed {
		for b := range c.lastRefreshed[r] {
			for row, at := range c.lastRefreshed[r][b] {
				if now-at > maxGap {
					c.fail("retention: r%d/b%d/row%d last refreshed at %d, now %d (gap %d > %d)",
						r, b, row, at, now, now-at, maxGap)
				}
			}
		}
	}
	return len(c.violations) - before
}
