package dram

import "fmt"

// CmdKind enumerates DRAM commands the controller can issue.
type CmdKind int

const (
	// CmdACT activates (opens) a row in a bank.
	CmdACT CmdKind = iota
	// CmdRD reads a column from the open row.
	CmdRD
	// CmdRDA reads a column and auto-precharges the bank afterwards.
	CmdRDA
	// CmdWR writes a column to the open row.
	CmdWR
	// CmdWRA writes a column and auto-precharges the bank afterwards.
	CmdWRA
	// CmdPRE precharges (closes) a bank.
	CmdPRE
	// CmdREFab refreshes a number of rows in every bank of a rank.
	CmdREFab
	// CmdREFpb refreshes a number of rows in a single bank of a rank.
	CmdREFpb
)

var cmdNames = [...]string{"ACT", "RD", "RDA", "WR", "WRA", "PRE", "REFab", "REFpb"}

func (k CmdKind) String() string {
	if int(k) < len(cmdNames) {
		return cmdNames[k]
	}
	return fmt.Sprintf("CmdKind(%d)", int(k))
}

// IsColumn reports whether the command transfers data on the bus.
func (k CmdKind) IsColumn() bool {
	return k == CmdRD || k == CmdRDA || k == CmdWR || k == CmdWRA
}

// IsRead reports whether the command is a read column command.
func (k CmdKind) IsRead() bool { return k == CmdRD || k == CmdRDA }

// IsWrite reports whether the command is a write column command.
func (k CmdKind) IsWrite() bool { return k == CmdWR || k == CmdWRA }

// IsRefresh reports whether the command is a refresh.
func (k CmdKind) IsRefresh() bool { return k == CmdREFab || k == CmdREFpb }

// Cmd is one DRAM command. Row/Col are ignored where not applicable; Bank is
// ignored for REFab.
type Cmd struct {
	Kind CmdKind
	Rank int
	Bank int
	Row  int
	Col  int

	// RefDur overrides the refresh duration in cycles (0 = the parameter
	// set's tRFC). RefRows overrides the rows restored per bank (0 = the
	// geometry's RowsPerRef). Both exist for DDR4 fine granularity refresh
	// and adaptive refresh (paper §6.5), where the per-command refresh
	// quantum changes at run time.
	RefDur  int
	RefRows int
}

func (c Cmd) String() string {
	switch c.Kind {
	case CmdREFab:
		return fmt.Sprintf("REFab(r%d)", c.Rank)
	case CmdREFpb:
		return fmt.Sprintf("REFpb(r%d/b%d)", c.Rank, c.Bank)
	case CmdPRE:
		return fmt.Sprintf("PRE(r%d/b%d)", c.Rank, c.Bank)
	case CmdACT:
		return fmt.Sprintf("ACT(r%d/b%d/row%d)", c.Rank, c.Bank, c.Row)
	default:
		return fmt.Sprintf("%s(r%d/b%d/row%d/col%d)", c.Kind, c.Rank, c.Bank, c.Row, c.Col)
	}
}
