package dram

// Stats counts commands issued to a device; the power model converts these
// into energy.
type Stats struct {
	Commands int64
	Acts     int64
	Pres     int64
	Reads    int64
	Writes   int64
	RefABs   int64
	RefPBs   int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Commands += other.Commands
	s.Acts += other.Acts
	s.Pres += other.Pres
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.RefABs += other.RefABs
	s.RefPBs += other.RefPBs
}

// Accesses is the number of column commands served (reads + writes).
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// Sub returns s - other, field-wise (used to isolate a measurement window
// from cumulative counters).
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Commands: s.Commands - other.Commands,
		Acts:     s.Acts - other.Acts,
		Pres:     s.Pres - other.Pres,
		Reads:    s.Reads - other.Reads,
		Writes:   s.Writes - other.Writes,
		RefABs:   s.RefABs - other.RefABs,
		RefPBs:   s.RefPBs - other.RefPBs,
	}
}
