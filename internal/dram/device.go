package dram

import (
	"fmt"

	"dsarp/internal/refresh"
	"dsarp/internal/timing"
)

// Options configure optional device behaviors.
type Options struct {
	// SARP enables Subarray Access Refresh Parallelization: a refresh
	// occupies only one subarray, the rest of the bank stays accessible,
	// and tFAW/tRRD inflate while any refresh is in progress (paper §4.3).
	SARP bool
	// Check attaches the invariant checker (tests / verification runs).
	Check bool
}

// Device models one DRAM channel's worth of ranks and banks plus the shared
// command/data bus timing. It is deliberately single-threaded: one Device
// belongs to one channel controller.
//
// All timing state lives in structure-of-arrays slabs indexed by the flat
// bank id rank*Banks+bank (per-bank slices) or by rank (per-rank slices),
// rather than in per-rank/per-bank structs: the controller's demand scan
// probes several banks' legality bounds every stepped cycle, and a slab read
// is one bounds-checked load where the struct layout was a pointer chase
// through rank and bank objects. All times are absolute DRAM cycles; a
// command is legal at cycle t if t >= the relevant slab entry.
type Device struct {
	geom  Geometry
	tp    timing.Params
	opts  Options
	units []*refresh.Unit

	nbanks int // banks per rank (flat index stride)

	// Per-bank slabs, indexed rank*nbanks+bank.
	openRow     []int   // open row, NoRow when precharged
	actTime     []int64 // cycle of the most recent ACT (tRAS accounting)
	bankNextAct []int64 // earliest ACT (tRC, tRP after PRE, refresh lockout)
	nextReadAt  []int64 // earliest RD/RDA (tRCD after ACT)
	nextWriteAt []int64 // earliest WR/WRA (tRCD after ACT)
	nextPreAt   []int64 // earliest PRE (tRAS after ACT, tRTP after RD, tWR after WR)
	refUntil    []int64 // > t: a refresh is restoring rows in refSubarray
	refSubarray []int   // subarray being refreshed (NoSubarray otherwise)

	// Per-rank slabs.
	rankNextAct  []int64 // earliest ACT in any bank of the rank (tRRD)
	rankRefUntil []int64 // all-bank refresh occupancy
	pbRefUntil   []int64 // REFpb serialization: next REFpb may not start before
	actCount     []int   // total ACTs issued per rank (ring occupancy)
	actRing      []int64 // ranks*4 fixed ring: issue times of the last four ACTs (tFAW)

	busFreeAt int64 // next cycle the data bus is free
	nextRead  int64 // earliest read column command (tCCD, tWTR turnaround)
	nextWrite int64 // earliest write column command (tCCD, tRTW turnaround)

	checker *Checker
	stats   Stats
}

// New builds a Device. Geometry and timing must be valid.
func New(geom Geometry, tp timing.Params, opts Options) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	nb := geom.Ranks * geom.Banks
	d := &Device{
		geom:   geom,
		tp:     tp,
		opts:   opts,
		units:  make([]*refresh.Unit, geom.Ranks),
		nbanks: geom.Banks,

		openRow:     make([]int, nb),
		actTime:     make([]int64, nb),
		bankNextAct: make([]int64, nb),
		nextReadAt:  make([]int64, nb),
		nextWriteAt: make([]int64, nb),
		nextPreAt:   make([]int64, nb),
		refUntil:    make([]int64, nb),
		refSubarray: make([]int, nb),

		rankNextAct:  make([]int64, geom.Ranks),
		rankRefUntil: make([]int64, geom.Ranks),
		pbRefUntil:   make([]int64, geom.Ranks),
		actCount:     make([]int, geom.Ranks),
		actRing:      make([]int64, geom.Ranks*4),
	}
	for i := 0; i < nb; i++ {
		d.openRow[i] = NoRow
		d.refSubarray[i] = NoSubarray
	}
	for i := range d.units {
		d.units[i] = refresh.NewUnit(geom.Banks, geom.RowsPerBank, geom.SubarraysPerBank, geom.RowsPerRef)
	}
	if opts.Check {
		d.checker = NewChecker(geom, tp, opts.SARP)
	}
	return d, nil
}

// MustNew is New that panics on error; for tests and examples.
func MustNew(geom Geometry, tp timing.Params, opts Options) *Device {
	d, err := New(geom, tp, opts)
	if err != nil {
		panic(err)
	}
	return d
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Timing returns the timing parameter set.
func (d *Device) Timing() timing.Params { return d.tp }

// SARP reports whether subarray access-refresh parallelization is enabled.
func (d *Device) SARP() bool { return d.opts.SARP }

// Stats returns accumulated command statistics.
func (d *Device) Stats() Stats { return d.stats }

// Checker returns the attached invariant checker, or nil.
func (d *Device) Checker() *Checker { return d.checker }

// RefreshUnit exposes a rank's refresh unit (policies peek at its counters;
// the memory controller keeps shadow copies of these per paper §4.3.2).
func (d *Device) RefreshUnit(rankID int) *refresh.Unit { return d.units[rankID] }

// bankRefreshing reports whether a per-bank refresh occupies flat bank bi at t.
func (d *Device) bankRefreshing(bi int, t int64) bool { return t < d.refUntil[bi] }

// rankRefreshing reports whether an all-bank refresh is in progress at t.
func (d *Device) rankRefreshing(rankID int, t int64) bool { return t < d.rankRefUntil[rankID] }

// anyRefreshInProgress reports whether any refresh (all-bank or per-bank) is
// restoring rows anywhere in the rank at t. The SARP power throttle on
// tFAW/tRRD applies exactly while this holds (paper §4.3.3).
func (d *Device) anyRefreshInProgress(rankID int, t int64) bool {
	return t < d.rankRefUntil[rankID] || t < d.pbRefUntil[rankID]
}

// fawReady reports whether a new ACT at t would keep at most four ACTs
// inside the rolling tFAW window.
func (d *Device) fawReady(rankID int, t int64, tfaw int) bool {
	if d.actCount[rankID] < 4 {
		return true
	}
	oldest := d.actRing[rankID*4+d.actCount[rankID]%4]
	return t >= oldest+int64(tfaw)
}

// recordACT registers an ACT at t for tRRD/tFAW accounting.
func (d *Device) recordACT(rankID int, t int64, trrd int) {
	d.actRing[rankID*4+d.actCount[rankID]%4] = t
	d.actCount[rankID]++
	d.rankNextAct[rankID] = max(d.rankNextAct[rankID], t+int64(trrd))
}

// allPrecharged reports whether every bank in the rank is precharged.
func (d *Device) allPrecharged(rankID int) bool {
	base := rankID * d.nbanks
	for bi := base; bi < base+d.nbanks; bi++ {
		if d.openRow[bi] != NoRow {
			return false
		}
	}
	return true
}

// actReadyAll is the earliest cycle at which every bank of the rank satisfies
// its per-bank ACT timing (used to gate REFab, which activates rows
// internally).
func (d *Device) actReadyAll(rankID int) int64 {
	var t int64
	base := rankID * d.nbanks
	for bi := base; bi < base+d.nbanks; bi++ {
		t = max(t, d.bankNextAct[bi])
	}
	return t
}

// effActTimings returns the tFAW/tRRD values in force at t for a rank:
// inflated per the SARP power throttle while a refresh is in progress.
func (d *Device) effActTimings(rankID int, t int64) (tfaw, trrd int) {
	if !d.opts.SARP || !d.anyRefreshInProgress(rankID, t) {
		return d.tp.TFAW, d.tp.TRRD
	}
	if d.rankRefreshing(rankID, t) {
		return d.tp.SARPThrottledAB()
	}
	return d.tp.SARPThrottledPB()
}

// subarrayBlocked reports whether an ACT to row in flat bank bi at t collides
// with an in-progress refresh. Without SARP any refresh blocks the whole bank
// (also enforced via bankNextAct); with SARP only the refreshing subarray is
// blocked.
func (d *Device) subarrayBlocked(rankID, bi, row int, t int64) bool {
	if !d.bankRefreshing(bi, t) && !d.rankRefreshing(rankID, t) {
		return false
	}
	if !d.opts.SARP {
		return true
	}
	return d.geom.SubarrayOf(row) == d.refSubarray[bi]
}

// CanIssue reports whether cmd is legal at cycle t under every timing and
// occupancy constraint.
func (d *Device) CanIssue(cmd Cmd, t int64) bool {
	if cmd.Rank < 0 || cmd.Rank >= d.geom.Ranks {
		return false
	}
	bi := cmd.Rank*d.nbanks + cmd.Bank
	switch cmd.Kind {
	case CmdACT:
		if d.openRow[bi] != NoRow || t < d.bankNextAct[bi] || t < d.rankNextAct[cmd.Rank] {
			return false
		}
		tfaw, _ := d.effActTimings(cmd.Rank, t)
		if !d.fawReady(cmd.Rank, t, tfaw) {
			return false
		}
		return !d.subarrayBlocked(cmd.Rank, bi, cmd.Row, t)

	case CmdRD, CmdRDA:
		return d.openRow[bi] == cmd.Row && t >= d.nextReadAt[bi] && t >= d.nextRead &&
			t+int64(d.tp.CL) >= d.busFreeAt

	case CmdWR, CmdWRA:
		return d.openRow[bi] == cmd.Row && t >= d.nextWriteAt[bi] && t >= d.nextWrite &&
			t+int64(d.tp.CWL) >= d.busFreeAt

	case CmdPRE:
		return d.openRow[bi] != NoRow && t >= d.nextPreAt[bi] &&
			!d.bankRefreshing(bi, t) && !d.rankRefreshing(cmd.Rank, t)

	case CmdREFpb:
		return d.canRefreshBank(cmd.Rank, cmd.Bank, t)

	case CmdREFab:
		return d.canRefreshRank(cmd.Rank, t)
	}
	return false
}

func (d *Device) canRefreshBank(rankID, bankID int, t int64) bool {
	bi := rankID*d.nbanks + bankID
	// REFpb ops never overlap each other or a REFab within a rank.
	if t < d.pbRefUntil[rankID] || d.rankRefreshing(rankID, t) || d.bankRefreshing(bi, t) {
		return false
	}
	if !d.opts.SARP {
		// The whole bank is tied up: it must be precharged and past tRP,
		// and the refresh activation respects the rank ACT spacing.
		return d.openRow[bi] == NoRow && t >= d.bankNextAct[bi] && t >= d.rankNextAct[rankID]
	}
	// SARP: the refresh only needs its target subarray free; an open row in
	// a different subarray may stay open (two activated subarrays, one for
	// refresh and one for access — paper §4.3.1).
	sub := d.units[rankID].PeekSubarray(bankID)
	return d.openRow[bi] == NoRow || d.geom.SubarrayOf(d.openRow[bi]) != sub
}

func (d *Device) canRefreshRank(rankID int, t int64) bool {
	if d.rankRefreshing(rankID, t) || t < d.pbRefUntil[rankID] {
		return false
	}
	if !d.opts.SARP {
		return d.allPrecharged(rankID) && t >= d.actReadyAll(rankID)
	}
	unit := d.units[rankID]
	base := rankID * d.nbanks
	for bID := 0; bID < d.nbanks; bID++ {
		bi := base + bID
		if d.bankRefreshing(bi, t) {
			return false
		}
		if d.openRow[bi] != NoRow && d.geom.SubarrayOf(d.openRow[bi]) == unit.PeekSubarray(bID) {
			return false
		}
	}
	return true
}

// Issue applies cmd at cycle t. It panics if the command is illegal — the
// controller must gate every command with CanIssue.
func (d *Device) Issue(cmd Cmd, t int64) {
	if !d.CanIssue(cmd, t) {
		panic(fmt.Sprintf("dram: illegal %v at cycle %d", cmd, t))
	}
	bi := cmd.Rank*d.nbanks + cmd.Bank
	var refOps []refresh.Op // recorded with the checker after onIssue
	var refEnd int64
	switch cmd.Kind {
	case CmdACT:
		_, trrd := d.effActTimings(cmd.Rank, t)
		d.openRow[bi] = cmd.Row
		d.actTime[bi] = t
		d.nextReadAt[bi] = t + int64(d.tp.TRCD)
		d.nextWriteAt[bi] = t + int64(d.tp.TRCD)
		d.nextPreAt[bi] = max(d.nextPreAt[bi], t+int64(d.tp.TRAS))
		d.bankNextAct[bi] = max(d.bankNextAct[bi], t+int64(d.tp.TRC))
		d.recordACT(cmd.Rank, t, trrd)
		d.stats.Acts++

	case CmdRD, CmdRDA:
		dataEnd := t + int64(d.tp.CL) + int64(d.tp.BL)
		d.busFreeAt = dataEnd
		d.nextRead = max(d.nextRead, t+int64(d.tp.TCCD))
		d.nextWrite = max(d.nextWrite, t+int64(d.tp.TRTW))
		d.nextPreAt[bi] = max(d.nextPreAt[bi], t+int64(d.tp.TRTP))
		if cmd.Kind == CmdRDA {
			preAt := max(d.actTime[bi]+int64(d.tp.TRAS), t+int64(d.tp.TRTP))
			d.openRow[bi] = NoRow
			d.bankNextAct[bi] = max(d.bankNextAct[bi], preAt+int64(d.tp.TRP))
			d.stats.Pres++
		}
		d.stats.Reads++

	case CmdWR, CmdWRA:
		dataEnd := t + int64(d.tp.CWL) + int64(d.tp.BL)
		d.busFreeAt = dataEnd
		d.nextWrite = max(d.nextWrite, t+int64(d.tp.TCCD))
		d.nextRead = max(d.nextRead, dataEnd+int64(d.tp.TWTR))
		d.nextPreAt[bi] = max(d.nextPreAt[bi], dataEnd+int64(d.tp.TWR))
		if cmd.Kind == CmdWRA {
			preAt := max(d.actTime[bi]+int64(d.tp.TRAS), dataEnd+int64(d.tp.TWR))
			d.openRow[bi] = NoRow
			d.bankNextAct[bi] = max(d.bankNextAct[bi], preAt+int64(d.tp.TRP))
			d.stats.Pres++
		}
		d.stats.Writes++

	case CmdPRE:
		d.openRow[bi] = NoRow
		d.bankNextAct[bi] = max(d.bankNextAct[bi], t+int64(d.tp.TRP))
		d.stats.Pres++

	case CmdREFpb:
		op := d.units[cmd.Rank].RefreshBankN(cmd.Bank, orDefault(cmd.RefRows, d.geom.RowsPerRef))
		end := t + int64(orDefault(cmd.RefDur, d.tp.TRFCpb))
		d.refUntil[bi] = end
		d.refSubarray[bi] = op.Subarray
		d.pbRefUntil[cmd.Rank] = end
		if !d.opts.SARP {
			d.bankNextAct[bi] = max(d.bankNextAct[bi], end)
		} else {
			// The refreshed subarray is unavailable until the refresh
			// completes; other subarrays remain accessible under the
			// throttled ACT rate (enforced via effActTimings).
			d.bankNextAct[bi] = max(d.bankNextAct[bi], t)
		}
		d.stats.RefPBs++
		refOps, refEnd = []refresh.Op{op}, end

	case CmdREFab:
		ops := d.units[cmd.Rank].RefreshAllN(orDefault(cmd.RefRows, d.geom.RowsPerRef))
		end := t + int64(orDefault(cmd.RefDur, d.tp.TRFCab))
		d.rankRefUntil[cmd.Rank] = end
		base := cmd.Rank * d.nbanks
		for i := 0; i < d.nbanks; i++ {
			d.refUntil[base+i] = end
			d.refSubarray[base+i] = ops[i].Subarray
			if !d.opts.SARP {
				d.bankNextAct[base+i] = max(d.bankNextAct[base+i], end)
			}
		}
		d.stats.RefABs++
		refOps, refEnd = ops, end
	}
	if d.checker != nil {
		d.checker.onIssue(cmd, t, d)
		if refOps != nil {
			d.checker.recordRefresh(cmd.Rank, refOps, t, refEnd)
		}
	}
	d.stats.Commands++
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// --- Queries used by the controller and refresh policies ---

// OpenRow returns the open row of a bank, or NoRow.
func (d *Device) OpenRow(rankID, bankID int) int {
	return d.openRow[rankID*d.nbanks+bankID]
}

// BankRefreshing reports whether a refresh occupies the bank at t (either a
// per-bank refresh or an all-bank refresh covering its rank).
func (d *Device) BankRefreshing(rankID, bankID int, t int64) bool {
	return t < d.refUntil[rankID*d.nbanks+bankID] || t < d.rankRefUntil[rankID]
}

// RankRefreshing reports whether an all-bank refresh is in progress at t.
func (d *Device) RankRefreshing(rankID int, t int64) bool {
	return t < d.rankRefUntil[rankID]
}

// RefreshingSubarray returns the subarray being refreshed in a bank at t,
// or NoSubarray.
func (d *Device) RefreshingSubarray(rankID, bankID int, t int64) int {
	bi := rankID*d.nbanks + bankID
	if t < d.refUntil[bi] || t < d.rankRefUntil[rankID] {
		return d.refSubarray[bi]
	}
	return NoSubarray
}

// PBRefBusyUntil returns the cycle the rank's current per-bank refresh (if
// any) completes; per-bank refreshes may not overlap within a rank.
func (d *Device) PBRefBusyUntil(rankID int) int64 { return d.pbRefUntil[rankID] }

// RefreshBusyUntil returns the cycle by which every in-progress refresh in
// the rank (all-bank or per-bank) completes. Any REFpb to the rank is
// guaranteed illegal before then — the bound clock-skipping refresh
// policies use to prove a window of refresh attempts would all be rejected.
func (d *Device) RefreshBusyUntil(rankID int) int64 {
	return max(d.pbRefUntil[rankID], d.rankRefUntil[rankID])
}

// EarliestREFab returns the first cycle an all-bank refresh to the rank
// could be legal on a non-SARP device, assuming every bank is precharged
// (an open row needs a drain first, which the caller must treat as
// activity). Exact under that assumption: CanIssue(REFab) holds at t iff
// t >= EarliestREFab.
func (d *Device) EarliestREFab(rankID int) int64 {
	return max(d.rankRefUntil[rankID], d.pbRefUntil[rankID], d.actReadyAll(rankID))
}

// EarliestREFpb returns the first cycle a per-bank refresh to the bank
// could be legal on a non-SARP device, assuming the bank is precharged.
// Exact under that assumption.
func (d *Device) EarliestREFpb(rankID, bankID int) int64 {
	bi := rankID*d.nbanks + bankID
	return max(d.pbRefUntil[rankID], d.rankRefUntil[rankID], d.refUntil[bi],
		d.bankNextAct[bi], d.rankNextAct[rankID])
}

// EarliestColumn returns the first cycle at which a read (write=false) or
// write (write=true) column command to the bank could satisfy every timing
// constraint, assuming the addressed row is open in the bank. The bound is
// exact: given the row is open, a column command is legal at t iff
// t >= EarliestColumn. Schedulers use it to defer re-evaluating a bank
// until the command could actually go out.
func (d *Device) EarliestColumn(rankID, bankID int, write bool) int64 {
	bi := rankID*d.nbanks + bankID
	if write {
		return max(d.nextWriteAt[bi], d.nextWrite, d.busFreeAt-int64(d.tp.CWL))
	}
	return max(d.nextReadAt[bi], d.nextRead, d.busFreeAt-int64(d.tp.CL))
}

// EarliestColumnSplit decomposes EarliestColumn into its device-global part
// (shared bus and turnaround bounds, identical for every bank) and the
// per-bank slab holding the bank-local part, so a scheduler scanning many
// banks can hoist the global max out of the loop and read one slab entry per
// bank. max(global, slab[flatBankID]) == EarliestColumn for every bank.
func (d *Device) EarliestColumnSplit(write bool) (global int64, perBank []int64) {
	if write {
		return max(d.nextWrite, d.busFreeAt-int64(d.tp.CWL)), d.nextWriteAt
	}
	return max(d.nextRead, d.busFreeAt-int64(d.tp.CL)), d.nextReadAt
}

// EarliestACT returns a lower bound on the first cycle an ACT to the bank
// could be legal: it covers tRC/tRP after precharge, rank tRRD, and the
// un-throttled tFAW window, but not SARP refresh collisions or the inflated
// refresh-time tFAW/tRRD — those can only delay the ACT further, so the
// bound stays conservative.
func (d *Device) EarliestACT(rankID, bankID int) int64 {
	t := max(d.bankNextAct[rankID*d.nbanks+bankID], d.rankNextAct[rankID])
	if d.actCount[rankID] >= 4 {
		t = max(t, d.actRing[rankID*4+d.actCount[rankID]%4]+int64(d.tp.TFAW))
	}
	return t
}

// EarliestACTRank is the rank-shared part of EarliestACT (tRRD spacing and
// the un-throttled tFAW window); EarliestACTBank is the slab of bank-local
// tRC/tRP bounds. max(EarliestACTRank(rank), EarliestACTBank()[flatBankID])
// == EarliestACT for every bank, letting a scheduler hoist the rank gate out
// of its bank scan.
func (d *Device) EarliestACTRank(rankID int) int64 {
	t := d.rankNextAct[rankID]
	if d.actCount[rankID] >= 4 {
		t = max(t, d.actRing[rankID*4+d.actCount[rankID]%4]+int64(d.tp.TFAW))
	}
	return t
}

// EarliestACTBank returns the per-bank slab complementing EarliestACTRank.
func (d *Device) EarliestACTBank() []int64 { return d.bankNextAct }

// EarliestPRE returns the first cycle a PRE to the bank could be legal,
// assuming the bank has an open row. The bound is exact: it covers tRAS/
// tRTP/tWR (via the bank's precharge timer) and any in-progress refresh.
func (d *Device) EarliestPRE(rankID, bankID int) int64 {
	bi := rankID*d.nbanks + bankID
	return max(d.nextPreAt[bi], d.refUntil[bi], d.rankRefUntil[rankID])
}

// ReadDataAt returns the cycle the last beat of a read issued at t arrives.
func (d *Device) ReadDataAt(t int64) int64 { return t + int64(d.tp.CL) + int64(d.tp.BL) }

// WriteDataAt returns the cycle the last beat of a write issued at t is on
// the bus.
func (d *Device) WriteDataAt(t int64) int64 { return t + int64(d.tp.CWL) + int64(d.tp.BL) }
