package dram

import (
	"fmt"

	"dsarp/internal/refresh"
	"dsarp/internal/timing"
)

// Options configure optional device behaviors.
type Options struct {
	// SARP enables Subarray Access Refresh Parallelization: a refresh
	// occupies only one subarray, the rest of the bank stays accessible,
	// and tFAW/tRRD inflate while any refresh is in progress (paper §4.3).
	SARP bool
	// Check attaches the invariant checker (tests / verification runs).
	Check bool
}

// Device models one DRAM channel's worth of ranks and banks plus the shared
// command/data bus timing. It is deliberately single-threaded: one Device
// belongs to one channel controller.
type Device struct {
	geom  Geometry
	tp    timing.Params
	opts  Options
	ranks []*rank
	units []*refresh.Unit

	busFreeAt int64 // next cycle the data bus is free
	nextRead  int64 // earliest read column command (tCCD, tWTR turnaround)
	nextWrite int64 // earliest write column command (tCCD, tRTW turnaround)

	checker *Checker
	stats   Stats
}

// New builds a Device. Geometry and timing must be valid.
func New(geom Geometry, tp timing.Params, opts Options) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		geom:  geom,
		tp:    tp,
		opts:  opts,
		ranks: make([]*rank, geom.Ranks),
		units: make([]*refresh.Unit, geom.Ranks),
	}
	for i := range d.ranks {
		d.ranks[i] = newRank(geom.Banks)
		d.units[i] = refresh.NewUnit(geom.Banks, geom.RowsPerBank, geom.SubarraysPerBank, geom.RowsPerRef)
	}
	if opts.Check {
		d.checker = NewChecker(geom, tp, opts.SARP)
	}
	return d, nil
}

// MustNew is New that panics on error; for tests and examples.
func MustNew(geom Geometry, tp timing.Params, opts Options) *Device {
	d, err := New(geom, tp, opts)
	if err != nil {
		panic(err)
	}
	return d
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Timing returns the timing parameter set.
func (d *Device) Timing() timing.Params { return d.tp }

// SARP reports whether subarray access-refresh parallelization is enabled.
func (d *Device) SARP() bool { return d.opts.SARP }

// Stats returns accumulated command statistics.
func (d *Device) Stats() Stats { return d.stats }

// Checker returns the attached invariant checker, or nil.
func (d *Device) Checker() *Checker { return d.checker }

// RefreshUnit exposes a rank's refresh unit (policies peek at its counters;
// the memory controller keeps shadow copies of these per paper §4.3.2).
func (d *Device) RefreshUnit(rankID int) *refresh.Unit { return d.units[rankID] }

// effActTimings returns the tFAW/tRRD values in force at t for a rank:
// inflated per the SARP power throttle while a refresh is in progress.
func (d *Device) effActTimings(r *rank, t int64) (tfaw, trrd int) {
	if !d.opts.SARP || !r.anyRefreshInProgress(t) {
		return d.tp.TFAW, d.tp.TRRD
	}
	if r.refreshing(t) {
		return d.tp.SARPThrottledAB()
	}
	return d.tp.SARPThrottledPB()
}

// subarrayBlocked reports whether an ACT to row in bank b at t collides with
// an in-progress refresh. Without SARP any refresh blocks the whole bank
// (also enforced via bank.nextAct); with SARP only the refreshing subarray
// is blocked.
func (d *Device) subarrayBlocked(r *rank, b *bank, row int, t int64) bool {
	inRef := b.refreshing(t) || r.refreshing(t)
	if !inRef {
		return false
	}
	if !d.opts.SARP {
		return true
	}
	return d.geom.SubarrayOf(row) == b.refSubarray
}

// CanIssue reports whether cmd is legal at cycle t under every timing and
// occupancy constraint.
func (d *Device) CanIssue(cmd Cmd, t int64) bool {
	if cmd.Rank < 0 || cmd.Rank >= d.geom.Ranks {
		return false
	}
	r := d.ranks[cmd.Rank]
	switch cmd.Kind {
	case CmdACT:
		b := &r.banks[cmd.Bank]
		if !b.precharged() || t < b.nextAct || t < r.nextAct {
			return false
		}
		tfaw, _ := d.effActTimings(r, t)
		if !r.fawReady(t, tfaw) {
			return false
		}
		return !d.subarrayBlocked(r, b, cmd.Row, t)

	case CmdRD, CmdRDA:
		b := &r.banks[cmd.Bank]
		return b.openRow == cmd.Row && t >= b.nextRead && t >= d.nextRead &&
			t+int64(d.tp.CL) >= d.busFreeAt

	case CmdWR, CmdWRA:
		b := &r.banks[cmd.Bank]
		return b.openRow == cmd.Row && t >= b.nextWrite && t >= d.nextWrite &&
			t+int64(d.tp.CWL) >= d.busFreeAt

	case CmdPRE:
		b := &r.banks[cmd.Bank]
		return !b.precharged() && t >= b.nextPre && !b.refreshing(t) && !r.refreshing(t)

	case CmdREFpb:
		return d.canRefreshBank(cmd.Rank, cmd.Bank, t)

	case CmdREFab:
		return d.canRefreshRank(cmd.Rank, t)
	}
	return false
}

func (d *Device) canRefreshBank(rankID, bankID int, t int64) bool {
	r := d.ranks[rankID]
	b := &r.banks[bankID]
	// REFpb ops never overlap each other or a REFab within a rank.
	if t < r.pbRefUntil || r.refreshing(t) || b.refreshing(t) {
		return false
	}
	if !d.opts.SARP {
		// The whole bank is tied up: it must be precharged and past tRP,
		// and the refresh activation respects the rank ACT spacing.
		return b.precharged() && t >= b.nextAct && t >= r.nextAct
	}
	// SARP: the refresh only needs its target subarray free; an open row in
	// a different subarray may stay open (two activated subarrays, one for
	// refresh and one for access — paper §4.3.1).
	sub := d.units[rankID].PeekSubarray(bankID)
	return b.precharged() || d.geom.SubarrayOf(b.openRow) != sub
}

func (d *Device) canRefreshRank(rankID int, t int64) bool {
	r := d.ranks[rankID]
	if r.refreshing(t) || t < r.pbRefUntil {
		return false
	}
	if !d.opts.SARP {
		return r.allPrecharged() && t >= r.actReadyAll()
	}
	unit := d.units[rankID]
	for bID := range r.banks {
		b := &r.banks[bID]
		if b.refreshing(t) {
			return false
		}
		if !b.precharged() && d.geom.SubarrayOf(b.openRow) == unit.PeekSubarray(bID) {
			return false
		}
	}
	return true
}

// Issue applies cmd at cycle t. It panics if the command is illegal — the
// controller must gate every command with CanIssue.
func (d *Device) Issue(cmd Cmd, t int64) {
	if !d.CanIssue(cmd, t) {
		panic(fmt.Sprintf("dram: illegal %v at cycle %d", cmd, t))
	}
	r := d.ranks[cmd.Rank]
	var refOps []refresh.Op // recorded with the checker after onIssue
	var refEnd int64
	switch cmd.Kind {
	case CmdACT:
		b := &r.banks[cmd.Bank]
		_, trrd := d.effActTimings(r, t)
		b.openRow = cmd.Row
		b.actTime = t
		b.nextRead = t + int64(d.tp.TRCD)
		b.nextWrite = t + int64(d.tp.TRCD)
		b.nextPre = max(b.nextPre, t+int64(d.tp.TRAS))
		b.nextAct = max(b.nextAct, t+int64(d.tp.TRC))
		r.recordACT(t, trrd)
		d.stats.Acts++

	case CmdRD, CmdRDA:
		b := &r.banks[cmd.Bank]
		dataEnd := t + int64(d.tp.CL) + int64(d.tp.BL)
		d.busFreeAt = dataEnd
		d.nextRead = max(d.nextRead, t+int64(d.tp.TCCD))
		d.nextWrite = max(d.nextWrite, t+int64(d.tp.TRTW))
		b.nextPre = max(b.nextPre, t+int64(d.tp.TRTP))
		if cmd.Kind == CmdRDA {
			preAt := max(b.actTime+int64(d.tp.TRAS), t+int64(d.tp.TRTP))
			b.openRow = NoRow
			b.nextAct = max(b.nextAct, preAt+int64(d.tp.TRP))
			d.stats.Pres++
		}
		d.stats.Reads++

	case CmdWR, CmdWRA:
		b := &r.banks[cmd.Bank]
		dataEnd := t + int64(d.tp.CWL) + int64(d.tp.BL)
		d.busFreeAt = dataEnd
		d.nextWrite = max(d.nextWrite, t+int64(d.tp.TCCD))
		d.nextRead = max(d.nextRead, dataEnd+int64(d.tp.TWTR))
		b.nextPre = max(b.nextPre, dataEnd+int64(d.tp.TWR))
		if cmd.Kind == CmdWRA {
			preAt := max(b.actTime+int64(d.tp.TRAS), dataEnd+int64(d.tp.TWR))
			b.openRow = NoRow
			b.nextAct = max(b.nextAct, preAt+int64(d.tp.TRP))
			d.stats.Pres++
		}
		d.stats.Writes++

	case CmdPRE:
		b := &r.banks[cmd.Bank]
		b.prechargeDone(t, d.tp.TRP)
		d.stats.Pres++

	case CmdREFpb:
		b := &r.banks[cmd.Bank]
		op := d.units[cmd.Rank].RefreshBankN(cmd.Bank, orDefault(cmd.RefRows, d.geom.RowsPerRef))
		end := t + int64(orDefault(cmd.RefDur, d.tp.TRFCpb))
		b.refUntil = end
		b.refSubarray = op.Subarray
		r.pbRefUntil = end
		if !d.opts.SARP {
			b.nextAct = max(b.nextAct, end)
		} else {
			// The refreshed subarray is unavailable until the refresh
			// completes; other subarrays remain accessible under the
			// throttled ACT rate (enforced via effActTimings).
			b.nextAct = max(b.nextAct, t)
		}
		d.stats.RefPBs++
		refOps, refEnd = []refresh.Op{op}, end

	case CmdREFab:
		ops := d.units[cmd.Rank].RefreshAllN(orDefault(cmd.RefRows, d.geom.RowsPerRef))
		end := t + int64(orDefault(cmd.RefDur, d.tp.TRFCab))
		r.refUntil = end
		for i := range r.banks {
			b := &r.banks[i]
			b.refUntil = end
			b.refSubarray = ops[i].Subarray
			if !d.opts.SARP {
				b.nextAct = max(b.nextAct, end)
			}
		}
		d.stats.RefABs++
		refOps, refEnd = ops, end
	}
	if d.checker != nil {
		d.checker.onIssue(cmd, t, d)
		if refOps != nil {
			d.checker.recordRefresh(cmd.Rank, refOps, t, refEnd)
		}
	}
	d.stats.Commands++
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// --- Queries used by the controller and refresh policies ---

// OpenRow returns the open row of a bank, or NoRow.
func (d *Device) OpenRow(rankID, bankID int) int {
	return d.ranks[rankID].banks[bankID].openRow
}

// BankRefreshing reports whether a refresh occupies the bank at t (either a
// per-bank refresh or an all-bank refresh covering its rank).
func (d *Device) BankRefreshing(rankID, bankID int, t int64) bool {
	r := d.ranks[rankID]
	return r.banks[bankID].refreshing(t) || r.refreshing(t)
}

// RankRefreshing reports whether an all-bank refresh is in progress at t.
func (d *Device) RankRefreshing(rankID int, t int64) bool {
	return d.ranks[rankID].refreshing(t)
}

// RefreshingSubarray returns the subarray being refreshed in a bank at t,
// or NoSubarray.
func (d *Device) RefreshingSubarray(rankID, bankID int, t int64) int {
	r := d.ranks[rankID]
	b := &r.banks[bankID]
	if b.refreshing(t) || r.refreshing(t) {
		return b.refSubarray
	}
	return NoSubarray
}

// PBRefBusyUntil returns the cycle the rank's current per-bank refresh (if
// any) completes; per-bank refreshes may not overlap within a rank.
func (d *Device) PBRefBusyUntil(rankID int) int64 { return d.ranks[rankID].pbRefUntil }

// RefreshBusyUntil returns the cycle by which every in-progress refresh in
// the rank (all-bank or per-bank) completes. Any REFpb to the rank is
// guaranteed illegal before then — the bound clock-skipping refresh
// policies use to prove a window of refresh attempts would all be rejected.
func (d *Device) RefreshBusyUntil(rankID int) int64 {
	r := d.ranks[rankID]
	return max(r.pbRefUntil, r.refUntil)
}

// EarliestREFab returns the first cycle an all-bank refresh to the rank
// could be legal on a non-SARP device, assuming every bank is precharged
// (an open row needs a drain first, which the caller must treat as
// activity). Exact under that assumption: CanIssue(REFab) holds at t iff
// t >= EarliestREFab.
func (d *Device) EarliestREFab(rankID int) int64 {
	r := d.ranks[rankID]
	return max(r.refUntil, r.pbRefUntil, r.actReadyAll())
}

// EarliestREFpb returns the first cycle a per-bank refresh to the bank
// could be legal on a non-SARP device, assuming the bank is precharged.
// Exact under that assumption.
func (d *Device) EarliestREFpb(rankID, bankID int) int64 {
	r := d.ranks[rankID]
	b := &r.banks[bankID]
	return max(r.pbRefUntil, r.refUntil, b.refUntil, b.nextAct, r.nextAct)
}

// EarliestColumn returns the first cycle at which a read (write=false) or
// write (write=true) column command to the bank could satisfy every timing
// constraint, assuming the addressed row is open in the bank. The bound is
// exact: given the row is open, a column command is legal at t iff
// t >= EarliestColumn. Schedulers use it to defer re-evaluating a bank
// until the command could actually go out.
func (d *Device) EarliestColumn(rankID, bankID int, write bool) int64 {
	b := &d.ranks[rankID].banks[bankID]
	if write {
		return max(b.nextWrite, d.nextWrite, d.busFreeAt-int64(d.tp.CWL))
	}
	return max(b.nextRead, d.nextRead, d.busFreeAt-int64(d.tp.CL))
}

// EarliestACT returns a lower bound on the first cycle an ACT to the bank
// could be legal: it covers tRC/tRP after precharge, rank tRRD, and the
// un-throttled tFAW window, but not SARP refresh collisions or the inflated
// refresh-time tFAW/tRRD — those can only delay the ACT further, so the
// bound stays conservative.
func (d *Device) EarliestACT(rankID, bankID int) int64 {
	r := d.ranks[rankID]
	t := max(r.banks[bankID].nextAct, r.nextAct)
	if r.actCount >= 4 {
		t = max(t, r.actRing[r.actCount%4]+int64(d.tp.TFAW))
	}
	return t
}

// EarliestPRE returns the first cycle a PRE to the bank could be legal,
// assuming the bank has an open row. The bound is exact: it covers tRAS/
// tRTP/tWR (via the bank's precharge timer) and any in-progress refresh.
func (d *Device) EarliestPRE(rankID, bankID int) int64 {
	r := d.ranks[rankID]
	b := &r.banks[bankID]
	return max(b.nextPre, b.refUntil, r.refUntil)
}

// ReadDataAt returns the cycle the last beat of a read issued at t arrives.
func (d *Device) ReadDataAt(t int64) int64 { return t + int64(d.tp.CL) + int64(d.tp.BL) }

// WriteDataAt returns the cycle the last beat of a write issued at t is on
// the bus.
func (d *Device) WriteDataAt(t int64) int64 { return t + int64(d.tp.CWL) + int64(d.tp.BL) }
