package sched

// Stats accumulates controller-level counters.
type Stats struct {
	ReadsServed  int64
	WritesServed int64

	ReadLatencySum  int64 // sum of read (arrive -> data) latencies, DRAM cycles
	WriteLatencySum int64

	DemandSlots  int64 // command-bus slots spent on demand commands
	RefreshSlots int64 // command-bus slots spent by the refresh policy

	ForwardedReads       int64 // reads served from the write queue
	MergedWrites         int64
	ReadQueueFullStalls  int64
	WriteQueueFullStalls int64

	WriteModeEntries   int64
	WriteModeCycles    int64
	OpportunisticDrain int64 // cycles spent draining writes outside writeback mode
}

// AvgReadLatency is the mean read latency in DRAM cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.ReadsServed == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.ReadsServed)
}

// Sub returns s - other, field-wise (used to isolate a measurement window
// from cumulative counters).
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		ReadsServed:          s.ReadsServed - other.ReadsServed,
		WritesServed:         s.WritesServed - other.WritesServed,
		ReadLatencySum:       s.ReadLatencySum - other.ReadLatencySum,
		WriteLatencySum:      s.WriteLatencySum - other.WriteLatencySum,
		DemandSlots:          s.DemandSlots - other.DemandSlots,
		RefreshSlots:         s.RefreshSlots - other.RefreshSlots,
		ForwardedReads:       s.ForwardedReads - other.ForwardedReads,
		MergedWrites:         s.MergedWrites - other.MergedWrites,
		ReadQueueFullStalls:  s.ReadQueueFullStalls - other.ReadQueueFullStalls,
		WriteQueueFullStalls: s.WriteQueueFullStalls - other.WriteQueueFullStalls,
		WriteModeEntries:     s.WriteModeEntries - other.WriteModeEntries,
		WriteModeCycles:      s.WriteModeCycles - other.WriteModeCycles,
	}
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ReadsServed += other.ReadsServed
	s.WritesServed += other.WritesServed
	s.ReadLatencySum += other.ReadLatencySum
	s.WriteLatencySum += other.WriteLatencySum
	s.DemandSlots += other.DemandSlots
	s.RefreshSlots += other.RefreshSlots
	s.ForwardedReads += other.ForwardedReads
	s.MergedWrites += other.MergedWrites
	s.ReadQueueFullStalls += other.ReadQueueFullStalls
	s.WriteQueueFullStalls += other.WriteQueueFullStalls
	s.WriteModeEntries += other.WriteModeEntries
	s.WriteModeCycles += other.WriteModeCycles
}
