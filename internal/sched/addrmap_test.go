package sched

import (
	"testing"
	"testing/quick"

	"dsarp/internal/dram"
)

func testMapper() Mapper {
	return Mapper{Channels: 2, Geom: dram.Default()}
}

func TestMapUnmapBijectionProperty(t *testing.T) {
	m := testMapper()
	capacity := uint64(m.Channels) * uint64(m.Geom.Ranks) * uint64(m.Geom.Banks) *
		uint64(m.Geom.RowsPerBank) * uint64(m.Geom.ColumnsPerRow) * LineBytes
	f := func(raw uint64) bool {
		addr := (raw % capacity) / LineBytes * LineBytes // line-aligned
		ch, da := m.Map(addr)
		return m.Unmap(ch, da) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapBoundsProperty(t *testing.T) {
	m := testMapper()
	f := func(raw uint64) bool {
		ch, a := m.Map(raw)
		return ch >= 0 && ch < m.Channels &&
			a.Rank >= 0 && a.Rank < m.Geom.Ranks &&
			a.Bank >= 0 && a.Bank < m.Geom.Banks &&
			a.Row >= 0 && a.Row < m.Geom.RowsPerBank &&
			a.Col >= 0 && a.Col < m.Geom.ColumnsPerRow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveLinesAlternateChannelsAndShareRows(t *testing.T) {
	m := testMapper()
	ch0, a0 := m.Map(0)
	ch1, a1 := m.Map(LineBytes)
	ch2, a2 := m.Map(2 * LineBytes)
	if ch0 == ch1 {
		t.Error("consecutive lines should alternate channels")
	}
	if ch0 != ch2 {
		t.Error("stride-2 lines should share a channel")
	}
	if a0.Row != a2.Row || a0.Bank != a2.Bank || a0.Col+1 != a2.Col {
		t.Errorf("same-channel neighbors should walk a row: %v then %v", a0, a2)
	}
	_ = a1
}

func TestRowScramblingSpreadsSubarrays(t *testing.T) {
	// Consecutive row-sized blocks must land in different subarrays, the
	// property SARP's Table 5 sensitivity relies on.
	m := testMapper()
	bytesPerRowGroup := uint64(m.Channels) * uint64(m.Geom.Ranks) * uint64(m.Geom.Banks) *
		uint64(m.Geom.ColumnsPerRow) * LineBytes
	subs := map[int]bool{}
	for i := uint64(0); i < 16; i++ {
		_, a := m.Map(i * bytesPerRowGroup)
		subs[m.Geom.SubarrayOf(a.Row)] = true
	}
	if len(subs) < m.Geom.SubarraysPerBank {
		t.Errorf("16 consecutive row groups cover only %d subarrays, want %d",
			len(subs), m.Geom.SubarraysPerBank)
	}
}

func TestPermuteRowInvolutionProperty(t *testing.T) {
	m := testMapper()
	f := func(raw uint32) bool {
		r := uint64(raw) % uint64(m.Geom.RowsPerBank)
		return m.permuteRow(m.permuteRow(r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionAcrossBanks(t *testing.T) {
	// A strided scan at row-group granularity should hit every bank.
	m := testMapper()
	stride := uint64(m.Channels) * uint64(m.Geom.ColumnsPerRow) * LineBytes
	banks := map[int]bool{}
	for i := uint64(0); i < uint64(m.Geom.Banks); i++ {
		_, a := m.Map(i * stride)
		banks[a.Bank] = true
	}
	if len(banks) != m.Geom.Banks {
		t.Errorf("scan covered %d banks, want %d", len(banks), m.Geom.Banks)
	}
}
