package sched

import (
	"fmt"

	"dsarp/internal/dram"
	"dsarp/internal/timing"
)

// Config sets controller queue and page-policy parameters.
type Config struct {
	ReadQueueCap  int
	WriteQueueCap int
	// WriteHigh/WriteLow are the write-batching watermarks: draining starts
	// when the write queue reaches WriteHigh and stops at WriteLow (the
	// paper's low watermark of 32; the high watermark is not specified in
	// the paper, we default to 3/4 of the queue).
	WriteHigh int
	WriteLow  int
	// OpenRow switches to an open-row page policy (ablation D4). Default is
	// the paper's closed-row policy: auto-precharge when no queued row hit
	// remains.
	OpenRow bool
}

// DefaultConfig mirrors Table 1 of the paper.
func DefaultConfig() Config {
	return Config{ReadQueueCap: 64, WriteQueueCap: 64, WriteHigh: 48, WriteLow: 32}
}

// Controller schedules one DRAM channel.
type Controller struct {
	dev    *dram.Device
	tp     timing.Params
	geom   dram.Geometry
	cfg    Config
	policy RefreshPolicy

	readQ    []*Request
	writeQ   []*Request
	pending  *bankPending
	inflight []*Request // reads awaiting data return
	wmode    bool

	stats Stats
}

// NewController builds a controller over dev. policy may be nil (NoRefresh).
func NewController(dev *dram.Device, cfg Config, policy RefreshPolicy) *Controller {
	if cfg.ReadQueueCap <= 0 || cfg.WriteQueueCap <= 0 {
		panic(fmt.Sprintf("sched: queue capacities must be positive: %+v", cfg))
	}
	if cfg.WriteLow < 0 || cfg.WriteHigh > cfg.WriteQueueCap || cfg.WriteLow >= cfg.WriteHigh {
		panic(fmt.Sprintf("sched: invalid write watermarks: %+v", cfg))
	}
	if policy == nil {
		policy = NoRefresh{}
	}
	g := dev.Geometry()
	return &Controller{
		dev:     dev,
		tp:      dev.Timing(),
		geom:    g,
		cfg:     cfg,
		policy:  policy,
		readQ:   make([]*Request, 0, cfg.ReadQueueCap),
		writeQ:  make([]*Request, 0, cfg.WriteQueueCap),
		pending: newBankPending(g.Ranks, g.Banks),
	}
}

// Policy returns the attached refresh policy.
func (c *Controller) Policy() RefreshPolicy { return c.policy }

// SetPolicy replaces the refresh policy. Policies are built over the
// controller's View, so construction is two-phase: NewController(dev, cfg,
// nil) then SetPolicy(core.New(kind, ctrl, seed)).
func (c *Controller) SetPolicy(p RefreshPolicy) {
	if p == nil {
		p = NoRefresh{}
	}
	c.policy = p
}

// Stats returns accumulated controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Dev implements View.
func (c *Controller) Dev() *dram.Device { return c.dev }

// Timing implements View.
func (c *Controller) Timing() timing.Params { return c.tp }

// PendingDemand implements View.
func (c *Controller) PendingDemand(rank, bank int) int { return c.pending.Demand(rank, bank) }

// PendingReads implements View.
func (c *Controller) PendingReads(rank, bank int) int { return c.pending.Reads(rank, bank) }

// WriteMode implements View.
func (c *Controller) WriteMode() bool { return c.wmode }

// IssueCmd implements View: policies issue refresh/drain commands through it.
func (c *Controller) IssueCmd(cmd dram.Cmd, now int64) {
	c.dev.Issue(cmd, now)
	if cmd.Kind.IsRefresh() {
		c.stats.RefreshSlots++
	}
}

// ReadQueueLen returns the current read queue occupancy.
func (c *Controller) ReadQueueLen() int { return len(c.readQ) }

// WriteQueueLen returns the current write queue occupancy.
func (c *Controller) WriteQueueLen() int { return len(c.writeQ) }

// EnqueueRead admits a read request; it returns false when the read queue is
// full (the caller must retry — this is MSHR backpressure). A read that hits
// a queued write is forwarded from the write queue without touching DRAM.
func (c *Controller) EnqueueRead(req *Request, now int64) bool {
	for _, w := range c.writeQ {
		if w.Addr == req.Addr {
			req.Done = now + 1
			c.inflight = append(c.inflight, req)
			c.stats.ForwardedReads++
			return true
		}
	}
	if len(c.readQ) >= c.cfg.ReadQueueCap {
		c.stats.ReadQueueFullStalls++
		return false
	}
	req.Arrive = now
	c.readQ = append(c.readQ, req)
	c.pending.add(req, 1)
	return true
}

// EnqueueWrite admits a write request; it returns false when the write queue
// is full. Writes to an already-queued address are merged.
func (c *Controller) EnqueueWrite(req *Request, now int64) bool {
	for _, w := range c.writeQ {
		if w.Addr == req.Addr {
			c.stats.MergedWrites++
			return true
		}
	}
	if len(c.writeQ) >= c.cfg.WriteQueueCap {
		c.stats.WriteQueueFullStalls++
		return false
	}
	req.Arrive = now
	c.writeQ = append(c.writeQ, req)
	c.pending.add(req, 1)
	return true
}

// Tick advances the controller one DRAM cycle: it completes returned reads,
// updates writeback mode, lets the refresh policy claim the command slot,
// and otherwise issues the best demand command (FR-FCFS).
func (c *Controller) Tick(now int64) {
	c.completeReads(now)
	c.updateWriteMode()
	if c.wmode {
		c.stats.WriteModeCycles++
	}

	cmd, req, autopre, ok := c.chooseDemand(now)
	if c.policy.Tick(now, ok) {
		return // policy consumed the command slot
	}
	if ok {
		c.issueDemand(cmd, req, autopre, now)
	}
}

func (c *Controller) completeReads(now int64) {
	if len(c.inflight) == 0 {
		return
	}
	kept := c.inflight[:0]
	for _, r := range c.inflight {
		if r.Done <= now {
			c.stats.ReadsServed++
			c.stats.ReadLatencySum += r.Done - r.Arrive
			if r.OnComplete != nil {
				r.OnComplete(now)
			}
		} else {
			kept = append(kept, r)
		}
	}
	c.inflight = kept
}

func (c *Controller) updateWriteMode() {
	if !c.wmode && len(c.writeQ) >= c.cfg.WriteHigh {
		c.wmode = true
		c.stats.WriteModeEntries++
	}
	if c.wmode && len(c.writeQ) <= c.cfg.WriteLow {
		c.wmode = false
	}
}

func (c *Controller) blocked(rank, bank int) bool {
	return c.policy.RankBlocked(rank) || c.policy.BankBlocked(rank, bank)
}

// chooseDemand picks the best demand command under FR-FCFS: first-ready
// column command to an open row (oldest first), then the oldest activation,
// then a conflict precharge. It does not mutate state.
func (c *Controller) chooseDemand(now int64) (dram.Cmd, *Request, bool, bool) {
	q := c.readQ
	if c.wmode || len(c.readQ) == 0 {
		// Writeback mode, or opportunistic write drain while no reads are
		// waiting (otherwise sub-watermark writes would sit forever).
		q = c.writeQ
		if !c.wmode && len(q) > 0 {
			c.stats.OpportunisticDrain++
		}
	}
	// Pass 1: row hits.
	for _, r := range q {
		if c.blocked(r.Addr.Rank, r.Addr.Bank) {
			continue
		}
		if c.dev.OpenRow(r.Addr.Rank, r.Addr.Bank) != r.Addr.Row {
			continue
		}
		autopre := !c.cfg.OpenRow && !c.hasAnotherRowHit(q, r)
		kind := colKind(r.IsWrite, autopre)
		cmd := dram.Cmd{Kind: kind, Rank: r.Addr.Rank, Bank: r.Addr.Bank, Row: r.Addr.Row, Col: r.Addr.Col}
		if c.dev.CanIssue(cmd, now) {
			return cmd, r, autopre, true
		}
	}
	// Pass 2: activations for precharged banks.
	for _, r := range q {
		if c.blocked(r.Addr.Rank, r.Addr.Bank) {
			continue
		}
		if c.dev.OpenRow(r.Addr.Rank, r.Addr.Bank) != dram.NoRow {
			continue
		}
		cmd := dram.Cmd{Kind: dram.CmdACT, Rank: r.Addr.Rank, Bank: r.Addr.Bank, Row: r.Addr.Row}
		if c.dev.CanIssue(cmd, now) {
			return cmd, r, false, true
		}
	}
	// Pass 3: precharge a conflicting open row nobody queued wants.
	for _, r := range q {
		if c.blocked(r.Addr.Rank, r.Addr.Bank) {
			continue
		}
		open := c.dev.OpenRow(r.Addr.Rank, r.Addr.Bank)
		if open == dram.NoRow || open == r.Addr.Row {
			continue
		}
		if c.queuedForRow(q, r.Addr.Rank, r.Addr.Bank, open) {
			continue // FR-FCFS: let the row hits drain first
		}
		cmd := dram.Cmd{Kind: dram.CmdPRE, Rank: r.Addr.Rank, Bank: r.Addr.Bank}
		if c.dev.CanIssue(cmd, now) {
			return cmd, nil, false, true
		}
	}
	return dram.Cmd{}, nil, false, false
}

func (c *Controller) hasAnotherRowHit(q []*Request, cur *Request) bool {
	for _, r := range q {
		if r != cur && r.Addr.Rank == cur.Addr.Rank && r.Addr.Bank == cur.Addr.Bank && r.Addr.Row == cur.Addr.Row {
			return true
		}
	}
	return false
}

func (c *Controller) queuedForRow(q []*Request, rank, bank, row int) bool {
	for _, r := range q {
		if r.Addr.Rank == rank && r.Addr.Bank == bank && r.Addr.Row == row {
			return true
		}
	}
	return false
}

func colKind(write, autopre bool) dram.CmdKind {
	switch {
	case write && autopre:
		return dram.CmdWRA
	case write:
		return dram.CmdWR
	case autopre:
		return dram.CmdRDA
	default:
		return dram.CmdRD
	}
}

func (c *Controller) issueDemand(cmd dram.Cmd, req *Request, autopre bool, now int64) {
	c.dev.Issue(cmd, now)
	c.stats.DemandSlots++
	if !cmd.Kind.IsColumn() {
		return // ACT/PRE keep the request queued
	}
	c.removeRequest(req)
	c.pending.add(req, -1)
	if req.IsWrite {
		req.Done = c.dev.WriteDataAt(now)
		c.stats.WritesServed++
		c.stats.WriteLatencySum += req.Done - req.Arrive
		return
	}
	req.Done = c.dev.ReadDataAt(now)
	c.inflight = append(c.inflight, req)
}

func (c *Controller) removeRequest(req *Request) {
	q := &c.readQ
	if req.IsWrite {
		q = &c.writeQ
	}
	for i, r := range *q {
		if r == req {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
	panic("sched: request not queued")
}

// Drained reports whether all queues and in-flight reads are empty.
func (c *Controller) Drained() bool {
	return len(c.readQ) == 0 && len(c.writeQ) == 0 && len(c.inflight) == 0
}
