package sched

import (
	"fmt"
	"math"

	"dsarp/internal/dram"
	"dsarp/internal/timing"
)

// Config sets controller queue and page-policy parameters.
type Config struct {
	ReadQueueCap  int
	WriteQueueCap int
	// WriteHigh/WriteLow are the write-batching watermarks: draining starts
	// when the write queue reaches WriteHigh and stops at WriteLow (the
	// paper's low watermark of 32; the high watermark is not specified in
	// the paper, we default to 3/4 of the queue).
	WriteHigh int
	WriteLow  int
	// OpenRow switches to an open-row page policy (ablation D4). Default is
	// the paper's closed-row policy: auto-precharge when no queued row hit
	// remains.
	OpenRow bool
}

// DefaultConfig mirrors Table 1 of the paper.
func DefaultConfig() Config {
	return Config{ReadQueueCap: 64, WriteQueueCap: 64, WriteHigh: 48, WriteLow: 32}
}

// Controller schedules one DRAM channel.
//
// Requests are indexed per (rank, bank) rather than kept in flat queues:
// FR-FCFS selection walks the banks (checking the open row's bucket for
// hits, else the oldest activation candidate per bank) instead of scanning
// every queued request three times per DRAM cycle. Between cycles the
// controller caches a failed demand-command search together with the
// earliest cycle the device could accept any rejected candidate, and skips
// re-scanning until that cycle — or until an enqueue, dequeue, issued
// command, write-mode flip, or refresh-policy block change invalidates the
// cached miss. Both layers are exact: the controller issues the same
// command stream, cycle for cycle, as the seed's flat-scan implementation
// (pinned by TestGoldenFixedTraceStats).
type Controller struct {
	dev    *dram.Device
	tp     timing.Params
	geom   dram.Geometry
	cfg    Config
	policy RefreshPolicy

	readIx      queueIndex
	writeIx     queueIndex
	writeAddrs  map[uint64]struct{} // queued write addresses, packed (forwarding/merge probes)
	pending     *bankPending
	inflight    []*Request // reads awaiting data return
	inflightMin int64      // earliest Done among inflight (MaxInt64 when empty)
	wmode       bool
	seq         int64 // next admission sequence number

	// Cached demand-search miss: while missValid, chooseDemand would find no
	// issuable command before missNextTry, provided the policy's blocked
	// epoch still matches missEpoch and no invalidating event occurred.
	missValid   bool
	missNextTry int64
	missEpoch   uint64

	demandEpoch uint64 // bumped whenever a request is admitted or leaves a queue

	// Snapshot of the policy's Rank/BankBlocked answers, rebuilt whenever
	// its BlockedEpoch moves (the epoch contract guarantees every change
	// bumps it). Demand scans probe blocked state twice per bank, so the
	// snapshot turns two interface calls per probe into one slice read —
	// and blockedAny short-circuits the scan entirely in the common
	// nothing-blocked state.
	blockedSeen uint64
	blockedInit bool
	blockedAny  bool
	blockedMask []bool // rank*banks

	// Memoized NextEvent answer. The event cycle is absolute and invariant
	// under Skip (every policy deadline is an absolute-time crossing), so
	// the memo is dropped only when state forks: a Tick ran, a request was
	// admitted, or a policy command issued.
	evCached int64
	evValid  bool

	reqFree []*Request // completed requests awaiting reuse (NewRequest), capped

	stats Stats
}

// NewController builds a controller over dev. policy may be nil (NoRefresh).
func NewController(dev *dram.Device, cfg Config, policy RefreshPolicy) *Controller {
	if cfg.ReadQueueCap <= 0 || cfg.WriteQueueCap <= 0 {
		panic(fmt.Sprintf("sched: queue capacities must be positive: %+v", cfg))
	}
	if cfg.WriteLow < 0 || cfg.WriteHigh > cfg.WriteQueueCap || cfg.WriteLow >= cfg.WriteHigh {
		panic(fmt.Sprintf("sched: invalid write watermarks: %+v", cfg))
	}
	if policy == nil {
		policy = NoRefresh{}
	}
	g := dev.Geometry()
	return &Controller{
		dev:         dev,
		tp:          dev.Timing(),
		geom:        g,
		cfg:         cfg,
		policy:      policy,
		readIx:      newQueueIndex(g.Ranks, g.Banks),
		writeIx:     newQueueIndex(g.Ranks, g.Banks),
		writeAddrs:  make(map[uint64]struct{}, cfg.WriteQueueCap),
		pending:     newBankPending(g.Ranks, g.Banks),
		inflightMin: math.MaxInt64,
	}
}

// Policy returns the attached refresh policy.
func (c *Controller) Policy() RefreshPolicy { return c.policy }

// SetPolicy replaces the refresh policy. Policies are built over the
// controller's View, so construction is two-phase: NewController(dev, cfg,
// nil) then SetPolicy(core.New(kind, ctrl, seed)).
func (c *Controller) SetPolicy(p RefreshPolicy) {
	if p == nil {
		p = NoRefresh{}
	}
	c.policy = p
	c.missValid = false
	c.blockedInit = false
	c.evValid = false
}

// Stats returns accumulated controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Dev implements View.
func (c *Controller) Dev() *dram.Device { return c.dev }

// Timing implements View.
func (c *Controller) Timing() timing.Params { return c.tp }

// PendingDemand implements View.
func (c *Controller) PendingDemand(rank, bank int) int { return c.pending.Demand(rank, bank) }

// PendingRankDemand implements View.
func (c *Controller) PendingRankDemand(rank int) int { return c.pending.Rank(rank) }

// PendingReads implements View.
func (c *Controller) PendingReads(rank, bank int) int { return c.pending.Reads(rank, bank) }

// WriteMode implements View.
func (c *Controller) WriteMode() bool { return c.wmode }

// DemandEpoch implements View.
func (c *Controller) DemandEpoch() uint64 { return c.demandEpoch }

// IssueCmd implements View: policies issue refresh/drain commands through it.
func (c *Controller) IssueCmd(cmd dram.Cmd, now int64) {
	c.dev.Issue(cmd, now)
	c.missValid = false
	c.evValid = false
	if cmd.Kind.IsRefresh() {
		c.stats.RefreshSlots++
	}
}

// NewRequest returns a zeroed Request, recycling completed ones. A request
// passed to EnqueueRead/EnqueueWrite becomes controller-owned regardless of
// the result: the controller recycles a read after its completion callback
// runs, a write after it issues (or merges), and a rejected request
// immediately — so callers must not retain one past the enqueue call, and
// must retry a rejection with a fresh request.
func (c *Controller) NewRequest() *Request {
	if n := len(c.reqFree); n > 0 {
		req := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		*req = Request{}
		return req
	}
	return &Request{}
}

func (c *Controller) recycle(req *Request) {
	// Cap the pool at the maximum pooled working set (both queues plus a
	// generous in-flight margin): drivers that allocate their own requests
	// and never call NewRequest would otherwise grow it one entry per
	// request, forever.
	if len(c.reqFree) < 2*(c.cfg.ReadQueueCap+c.cfg.WriteQueueCap) {
		c.reqFree = append(c.reqFree, req)
	}
}

// ReadQueueLen returns the current read queue occupancy.
func (c *Controller) ReadQueueLen() int { return c.readIx.n }

// WriteQueueLen returns the current write queue occupancy.
func (c *Controller) WriteQueueLen() int { return c.writeIx.n }

// noteArrival tightens the cached demand-search miss for a newly admitted
// request instead of discarding it. The cached miss promised no command is
// issuable before missNextTry; the new request is the only candidate that
// scan did not consider, and it cannot issue (or free its bank via a
// conflict precharge) before its own device-timing bound, so the promise
// survives with the bound folded in. Arrivals the current queue selection
// does not even scan — writes while reads are being served, reads during a
// writeback drain — leave the cache untouched: they cannot change the
// scan's outcome until a mode flip or issue invalidates it anyway.
func (c *Controller) noteArrival(req *Request, now int64) {
	if !c.missValid {
		return
	}
	if req.IsWrite {
		if !c.wmode && c.readIx.n > 0 {
			return
		}
	} else if c.wmode {
		return
	}
	var e int64
	open := c.dev.OpenRow(req.Addr.Rank, req.Addr.Bank)
	switch {
	case open == req.Addr.Row:
		e = c.dev.EarliestColumn(req.Addr.Rank, req.Addr.Bank, req.IsWrite)
	case open == dram.NoRow:
		e = c.dev.EarliestACT(req.Addr.Rank, req.Addr.Bank)
	default:
		e = c.dev.EarliestPRE(req.Addr.Rank, req.Addr.Bank)
	}
	if e <= now {
		c.missValid = false
		return
	}
	if e < c.missNextTry {
		c.missNextTry = e
	}
}

// packAddr collapses a DRAM address into one word so the write-address set
// hashes a uint64 instead of a four-int struct. Field widths cover any
// realistic geometry: 256 ranks, 4096 banks, 256M rows, 64K columns.
func packAddr(a dram.Addr) uint64 {
	return uint64(a.Rank)<<56 | uint64(a.Bank)<<44 | uint64(a.Row)<<16 | uint64(a.Col)
}

// EnqueueRead admits a read request; it returns false when the read queue is
// full (the caller must retry — this is MSHR backpressure). A read that hits
// a queued write is forwarded from the write queue without touching DRAM.
func (c *Controller) EnqueueRead(req *Request, now int64) bool {
	if _, ok := c.writeAddrs[packAddr(req.Addr)]; ok {
		req.Arrive = now
		req.Done = now + 1
		c.addInflight(req)
		c.evValid = false
		c.stats.ForwardedReads++
		return true
	}
	if c.readIx.n >= c.cfg.ReadQueueCap {
		c.stats.ReadQueueFullStalls++
		c.recycle(req) // rejected: the caller retries with a fresh request
		return false
	}
	req.Arrive = now
	req.seq = c.seq
	c.seq++
	c.readIx.add(req)
	c.pending.add(req, 1)
	c.noteArrival(req, now)
	c.demandEpoch++
	c.evValid = false
	return true
}

// EnqueueWrite admits a write request; it returns false when the write queue
// is full. Writes to an already-queued address are merged.
func (c *Controller) EnqueueWrite(req *Request, now int64) bool {
	if _, ok := c.writeAddrs[packAddr(req.Addr)]; ok {
		c.stats.MergedWrites++
		c.recycle(req) // merged: the queued write stands in for it
		return true
	}
	if c.writeIx.n >= c.cfg.WriteQueueCap {
		c.stats.WriteQueueFullStalls++
		c.recycle(req) // rejected: the caller retries with a fresh request
		return false
	}
	req.Arrive = now
	req.seq = c.seq
	c.seq++
	c.writeIx.add(req)
	c.writeAddrs[packAddr(req.Addr)] = struct{}{}
	c.pending.add(req, 1)
	c.noteArrival(req, now)
	c.demandEpoch++
	c.evValid = false
	return true
}

// Tick advances the controller one DRAM cycle: it completes returned reads,
// updates writeback mode, lets the refresh policy claim the command slot,
// and otherwise issues the best demand command (FR-FCFS).
func (c *Controller) Tick(now int64) {
	c.evValid = false
	c.completeReads(now)
	c.updateWriteMode()
	if c.wmode {
		c.stats.WriteModeCycles++
	}

	var cmd dram.Cmd
	req, autopre, ok := c.chooseDemandCached(now, &cmd)
	if c.policy.Tick(now, ok) {
		return // policy consumed the command slot
	}
	if ok {
		c.issueDemand(cmd, req, autopre, now)
	}
}

// NextEvent returns the earliest cycle >= now at which Tick could do
// anything beyond the linear accounting Skip replays: complete an in-flight
// read, flip writeback mode, run a demand scan (fresh, or a cached miss
// whose earliest-ready bound or blocked epoch has expired), or give the
// refresh policy a non-idle slot. It is a lower bound in the NextEvent
// contract of the clock-skipping engine (see sim): the caller may only skip
// the window if every other component is also quiescent, which guarantees
// no enqueue arrives and no policy state moves in between.
func (c *Controller) NextEvent(now int64) int64 {
	if c.evValid {
		return c.evCached
	}
	c.evCached = c.nextEvent(now)
	c.evValid = true
	return c.evCached
}

func (c *Controller) nextEvent(now int64) int64 {
	if c.inflightMin <= now {
		return now
	}
	ev := c.inflightMin
	if (!c.wmode && c.writeIx.n >= c.cfg.WriteHigh) || (c.wmode && c.writeIx.n <= c.cfg.WriteLow) {
		return now // a writeback-mode flip is pending
	}
	if c.readIx.n != 0 || c.writeIx.n != 0 {
		if !c.missValid || c.policy.BlockedEpoch() != c.missEpoch || c.missNextTry <= now {
			return now // a demand scan must run this cycle
		}
		if c.missNextTry < ev {
			ev = c.missNextTry
		}
	}
	if d := c.policy.NextDeadline(now); d < ev {
		ev = d
	}
	if ev < now {
		ev = now
	}
	return ev
}

// Skip replays the per-cycle accounting of the Ticks elided for cycles
// [from, to): the writeback-mode cycle counter, the opportunistic-drain
// counter the cached demand miss replicates, and the policy's own skip
// accounting. NextEvent(from) must have returned at least to.
func (c *Controller) Skip(from, to int64) {
	if c.wmode {
		c.stats.WriteModeCycles += to - from
	}
	if !c.wmode && c.readIx.n == 0 && c.writeIx.n > 0 {
		c.stats.OpportunisticDrain += to - from
	}
	c.policy.Skip(from, to)
}

func (c *Controller) addInflight(req *Request) {
	c.inflight = append(c.inflight, req)
	if req.Done < c.inflightMin {
		c.inflightMin = req.Done
	}
}

func (c *Controller) completeReads(now int64) {
	if now < c.inflightMin {
		return // nothing can have returned yet (MaxInt64 when empty)
	}
	kept := c.inflight[:0]
	minDone := int64(math.MaxInt64)
	for _, r := range c.inflight {
		if r.Done <= now {
			c.stats.ReadsServed++
			c.stats.ReadLatencySum += r.Done - r.Arrive
			if r.OnComplete != nil {
				r.OnComplete(now)
			}
			c.recycle(r)
		} else {
			kept = append(kept, r)
			if r.Done < minDone {
				minDone = r.Done
			}
		}
	}
	c.inflight = kept
	c.inflightMin = minDone
}

func (c *Controller) updateWriteMode() {
	if !c.wmode && c.writeIx.n >= c.cfg.WriteHigh {
		c.wmode = true
		c.missValid = false
		c.stats.WriteModeEntries++
	}
	if c.wmode && c.writeIx.n <= c.cfg.WriteLow {
		c.wmode = false
		c.missValid = false
	}
}

// refreshBlocked rebuilds the blocked snapshot if the policy's epoch moved.
// Called once per demand scan, so the per-bank probes stay interface-free.
func (c *Controller) refreshBlocked() {
	ep := c.policy.BlockedEpoch()
	if c.blockedInit && ep == c.blockedSeen {
		return
	}
	if c.blockedMask == nil {
		c.blockedMask = make([]bool, c.geom.Ranks*c.geom.Banks)
	}
	c.blockedAny = false
	for r := 0; r < c.geom.Ranks; r++ {
		rb := c.policy.RankBlocked(r)
		for b := 0; b < c.geom.Banks; b++ {
			v := rb || c.policy.BankBlocked(r, b)
			c.blockedMask[r*c.geom.Banks+b] = v
			c.blockedAny = c.blockedAny || v
		}
	}
	c.blockedSeen = ep
	c.blockedInit = true
}

func (c *Controller) blocked(rank, bank int) bool {
	return c.blockedAny && c.blockedMask[rank*c.geom.Banks+bank]
}

// chooseDemandCached reuses the previous cycle's failed demand search when
// nothing that could change its outcome has happened: no queue or device
// mutation (tracked via missValid), no write-mode flip, no policy block
// change (BlockedEpoch), and the earliest-ready bound still in the future.
func (c *Controller) chooseDemandCached(now int64, cmd *dram.Cmd) (*Request, bool, bool) {
	if c.readIx.n == 0 && c.writeIx.n == 0 {
		return nil, false, false
	}
	if c.missValid && now < c.missNextTry && c.policy.BlockedEpoch() == c.missEpoch {
		// Replicate the one observable side effect of a fruitless scan: the
		// opportunistic-drain counter ticks whenever write drain is
		// considered outside writeback mode.
		if !c.wmode && c.readIx.n == 0 && c.writeIx.n > 0 {
			c.stats.OpportunisticDrain++
		}
		return nil, false, false
	}
	req, autopre, ok, nextTry := c.chooseDemand(now, cmd)
	if ok {
		c.missValid = false
	} else {
		c.missValid = true
		c.missNextTry = nextTry
		c.missEpoch = c.policy.BlockedEpoch()
	}
	return req, autopre, ok
}

// chooseDemand picks the best demand command under FR-FCFS: first-ready
// column command to an open row (oldest first), then the oldest activation,
// then a conflict precharge. It does not mutate scheduling state. When no
// command is issuable it also returns the earliest cycle any rejected
// candidate could become issuable on its own (device timing expiring), which
// backs the cross-cycle miss cache.
func (c *Controller) chooseDemand(now int64, cmd *dram.Cmd) (*Request, bool, bool, int64) {
	ix := &c.readIx
	isWrite := false
	if c.wmode || c.readIx.n == 0 {
		// Writeback mode, or opportunistic write drain while no reads are
		// waiting (otherwise sub-watermark writes would sit forever).
		ix = &c.writeIx
		isWrite = true
		if !c.wmode && ix.n > 0 {
			c.stats.OpportunisticDrain++
		}
	}
	nextTry := int64(math.MaxInt64)
	if ix.n == 0 {
		return nil, false, false, nextTry
	}
	c.refreshBlocked()
	banks := c.geom.Banks

	// Pass 1: row hits. Per bank the candidate is the oldest request to the
	// open row; EarliestColumn is exact, so no separate CanIssue is needed.
	var best *Request
	for _, bi := range ix.active {
		bkt := &ix.buckets[bi]
		if best != nil && bkt.reqs[0].seq > best.seq {
			continue // even this bank's oldest request is younger
		}
		rank, bank := bi/banks, bi%banks
		open := c.dev.OpenRow(rank, bank)
		if open == dram.NoRow || bkt.rowCount(open) == 0 || c.blocked(rank, bank) {
			continue
		}
		if e := c.dev.EarliestColumn(rank, bank, isWrite); e > now {
			if e < nextTry {
				nextTry = e
			}
			continue
		}
		if r := bkt.oldestForRow(open); best == nil || r.seq < best.seq {
			best = r
		}
	}
	if best != nil {
		bkt := ix.bucketOf(best.Addr.Rank, best.Addr.Bank)
		autopre := !c.cfg.OpenRow && bkt.rowCount(best.Addr.Row) < 2
		kind := colKind(best.IsWrite, autopre)
		*cmd = dram.Cmd{Kind: kind, Rank: best.Addr.Rank, Bank: best.Addr.Bank, Row: best.Addr.Row, Col: best.Addr.Col}
		return best, autopre, true, 0
	}

	// Pass 2: activations for precharged banks. EarliestACT is a lower
	// bound only — with SARP, ACT legality depends on the target row's
	// subarray — so surviving banks still go through CanIssue per row.
	for _, bi := range ix.active {
		bkt := &ix.buckets[bi]
		if best != nil && bkt.reqs[0].seq > best.seq {
			continue
		}
		rank, bank := bi/banks, bi%banks
		if c.dev.OpenRow(rank, bank) != dram.NoRow || c.blocked(rank, bank) {
			continue
		}
		if e := c.dev.EarliestACT(rank, bank); e > now {
			if e < nextTry {
				nextTry = e
			}
			continue
		}
		found := false
		for _, r := range bkt.reqs {
			if best != nil && r.seq > best.seq {
				found = true // an older candidate already won; bank stays live
				break
			}
			actCmd := dram.Cmd{Kind: dram.CmdACT, Rank: rank, Bank: bank, Row: r.Addr.Row}
			if c.dev.CanIssue(actCmd, now) {
				best = r
				found = true
				break
			}
		}
		if !found && now+1 < nextTry {
			// Thresholds passed but every queued row is held off by an
			// in-progress refresh (SARP subarray collision or throttled
			// tFAW); re-evaluate next cycle.
			nextTry = now + 1
		}
	}
	if best != nil {
		*cmd = dram.Cmd{Kind: dram.CmdACT, Rank: best.Addr.Rank, Bank: best.Addr.Bank, Row: best.Addr.Row}
		return best, false, true, 0
	}

	// Pass 3: precharge a conflicting open row nobody queued wants. The
	// bank's oldest request stands in for FR-FCFS age ordering; EarliestPRE
	// is exact.
	bestBank := -1
	for _, bi := range ix.active {
		bkt := &ix.buckets[bi]
		if best != nil && bkt.reqs[0].seq > best.seq {
			continue
		}
		rank, bank := bi/banks, bi%banks
		open := c.dev.OpenRow(rank, bank)
		if open == dram.NoRow || c.blocked(rank, bank) {
			continue
		}
		if bkt.rowCount(open) > 0 {
			continue // FR-FCFS: let the row hits drain first
		}
		if e := c.dev.EarliestPRE(rank, bank); e > now {
			if e < nextTry {
				nextTry = e
			}
			continue
		}
		best = bkt.reqs[0]
		bestBank = bi
	}
	if bestBank >= 0 {
		*cmd = dram.Cmd{Kind: dram.CmdPRE, Rank: bestBank / banks, Bank: bestBank % banks}
		return nil, false, true, 0
	}
	return nil, false, false, nextTry
}

func colKind(write, autopre bool) dram.CmdKind {
	switch {
	case write && autopre:
		return dram.CmdWRA
	case write:
		return dram.CmdWR
	case autopre:
		return dram.CmdRDA
	default:
		return dram.CmdRD
	}
}

func (c *Controller) issueDemand(cmd dram.Cmd, req *Request, autopre bool, now int64) {
	c.dev.Issue(cmd, now)
	c.missValid = false
	c.stats.DemandSlots++
	if !cmd.Kind.IsColumn() {
		return // ACT/PRE keep the request queued
	}
	c.removeRequest(req)
	c.pending.add(req, -1)
	if req.IsWrite {
		req.Done = c.dev.WriteDataAt(now)
		c.stats.WritesServed++
		c.stats.WriteLatencySum += req.Done - req.Arrive
		c.recycle(req)
		return
	}
	req.Done = c.dev.ReadDataAt(now)
	c.addInflight(req)
}

func (c *Controller) removeRequest(req *Request) {
	if req.IsWrite {
		c.writeIx.remove(req)
		delete(c.writeAddrs, packAddr(req.Addr))
	} else {
		c.readIx.remove(req)
	}
	c.missValid = false
	c.demandEpoch++
}

// Drained reports whether all queues and in-flight reads are empty.
func (c *Controller) Drained() bool {
	return c.readIx.n == 0 && c.writeIx.n == 0 && len(c.inflight) == 0
}
