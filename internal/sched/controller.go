package sched

import (
	"fmt"
	"math"

	"dsarp/internal/dram"
	"dsarp/internal/fifo"
	"dsarp/internal/timing"
)

// Config sets controller queue and page-policy parameters.
type Config struct {
	ReadQueueCap  int
	WriteQueueCap int
	// WriteHigh/WriteLow are the write-batching watermarks: draining starts
	// when the write queue reaches WriteHigh and stops at WriteLow (the
	// paper's low watermark of 32; the high watermark is not specified in
	// the paper, we default to 3/4 of the queue).
	WriteHigh int
	WriteLow  int
	// OpenRow switches to an open-row page policy (ablation D4). Default is
	// the paper's closed-row policy: auto-precharge when no queued row hit
	// remains.
	OpenRow bool
}

// DefaultConfig mirrors Table 1 of the paper.
func DefaultConfig() Config {
	return Config{ReadQueueCap: 64, WriteQueueCap: 64, WriteHigh: 48, WriteLow: 32}
}

// Controller schedules one DRAM channel.
//
// Requests are indexed per (rank, bank) rather than kept in flat queues,
// and FR-FCFS selection reads incrementally maintained candidate registers
// instead of rescanning buckets: each bucket tracks the oldest request for
// the bank's open row and the open-row hit count, repaired in O(1) on
// enqueue, dequeue, row-open, and row-close (the controller forwards every
// ACT/PRE/auto-precharge it or its refresh policy issues via noteIssue).
// Device legality probes are split into a hoisted device-global gate plus
// one per-bank slab read (dram.EarliestColumnSplit/EarliestACTSplit), so a
// demand scan touches only the banks that could legally issue now, with a
// couple of loads per bank. Between cycles the controller caches a failed
// demand-command search together with the earliest cycle the device could
// accept any rejected candidate, and skips re-scanning until that cycle —
// or until an enqueue, dequeue, issued command, write-mode flip, or
// refresh-policy block change invalidates the cached miss. All layers are
// exact: the controller issues the same command stream, cycle for cycle, as
// the seed's flat-scan implementation (pinned by TestGoldenFixedTraceStats
// and the register-vs-rescan differential fuzz in controller_fuzz_test.go).
type Controller struct {
	dev    *dram.Device
	tp     timing.Params
	geom   dram.Geometry
	cfg    Config
	policy RefreshPolicy

	readIx     queueIndex
	writeIx    queueIndex
	writeAddrs map[uint64]struct{} // queued write addresses, packed (forwarding/merge probes)
	pending    *bankPending

	// Reads awaiting data return, split into two FIFOs that are each
	// monotone in Done by construction: issued reads return a fixed CL+BL
	// after their nondecreasing issue cycles, forwarded reads complete
	// now+1. Completion pops due heads in stamp (insertion) order, so the
	// callback sequence is identical to scanning one flat list — at O(1)
	// per completed read instead of O(in-flight) per completing cycle.
	inflightRd    []*Request
	rdHead        int
	inflightFwd   []*Request
	fwdHead       int
	inflightStamp int64
	inflightMin   int64 // earliest Done among in-flight reads (MaxInt64 when none)

	wmode bool
	seq   int64 // next admission sequence number

	// Cached demand-search miss: while missValid, chooseDemand would find no
	// issuable command before missNextTry, provided the policy's blocked
	// epoch still matches missEpoch and no invalidating event occurred.
	missValid   bool
	missNextTry int64
	missEpoch   uint64

	// blockedEpoch is bumped by the attached policy via NoteBlockedChanged
	// whenever a RankBlocked/BankBlocked answer may have changed (see the
	// View contract). Controller-owned so the per-cycle staleness checks
	// read a field instead of dispatching through the policy interface.
	blockedEpoch uint64

	demandEpoch uint64 // bumped whenever a request is admitted or leaves a queue

	// Snapshot of the policy's Rank/BankBlocked answers, rebuilt whenever
	// blockedEpoch moves (the NoteBlockedChanged contract guarantees every
	// change bumps it). Demand scans probe blocked state twice per bank, so the
	// snapshot turns two interface calls per probe into one slice read —
	// and blockedAny short-circuits the scan entirely in the common
	// nothing-blocked state.
	blockedSeen uint64
	blockedInit bool
	blockedAny  bool
	blockedMask []bool // rank*banks

	// Memoized NextEvent answer. The event cycle is absolute and invariant
	// under Skip (every policy deadline is an absolute-time crossing), so
	// the memo is dropped only when state forks: a Tick ran, a request was
	// admitted, or a policy command issued.
	evCached int64
	evValid  bool

	// Per-rank scratch for the demand scan: the rank-global ACT gate is
	// computed lazily, at most once per scan (actTok marks which scan a
	// cached value belongs to), since most scans resolve in the column
	// class without ever needing it.
	actGlobal []int64
	actTok    []uint64
	scanTok   uint64

	reqFree []*Request // completed requests awaiting reuse (NewRequest), capped

	stats Stats
}

// NewController builds a controller over dev. policy may be nil (NoRefresh).
func NewController(dev *dram.Device, cfg Config, policy RefreshPolicy) *Controller {
	if cfg.ReadQueueCap <= 0 || cfg.WriteQueueCap <= 0 {
		panic(fmt.Sprintf("sched: queue capacities must be positive: %+v", cfg))
	}
	if cfg.WriteLow < 0 || cfg.WriteHigh > cfg.WriteQueueCap || cfg.WriteLow >= cfg.WriteHigh {
		panic(fmt.Sprintf("sched: invalid write watermarks: %+v", cfg))
	}
	if policy == nil {
		policy = NoRefresh{}
	}
	g := dev.Geometry()
	return &Controller{
		dev:         dev,
		tp:          dev.Timing(),
		geom:        g,
		cfg:         cfg,
		policy:      policy,
		readIx:      newQueueIndex(g.Ranks, g.Banks),
		writeIx:     newQueueIndex(g.Ranks, g.Banks),
		writeAddrs:  make(map[uint64]struct{}, cfg.WriteQueueCap),
		pending:     newBankPending(g.Ranks, g.Banks),
		inflightMin: math.MaxInt64,
		actGlobal:   make([]int64, g.Ranks),
		actTok:      make([]uint64, g.Ranks),
	}
}

// Policy returns the attached refresh policy.
func (c *Controller) Policy() RefreshPolicy { return c.policy }

// SetPolicy replaces the refresh policy. Policies are built over the
// controller's View, so construction is two-phase: NewController(dev, cfg,
// nil) then SetPolicy(core.New(kind, ctrl, seed)).
func (c *Controller) SetPolicy(p RefreshPolicy) {
	if p == nil {
		p = NoRefresh{}
	}
	c.policy = p
	c.missValid = false
	c.blockedInit = false
	c.evValid = false
}

// Stats returns accumulated controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Dev implements View.
func (c *Controller) Dev() *dram.Device { return c.dev }

// Timing implements View.
func (c *Controller) Timing() timing.Params { return c.tp }

// PendingDemand implements View.
func (c *Controller) PendingDemand(rank, bank int) int { return c.pending.Demand(rank, bank) }

// PendingDemandSlab implements View.
func (c *Controller) PendingDemandSlab() []int { return c.pending.demand }

// PendingRankDemand implements View.
func (c *Controller) PendingRankDemand(rank int) int { return c.pending.Rank(rank) }

// PendingReads implements View.
func (c *Controller) PendingReads(rank, bank int) int { return c.pending.Reads(rank, bank) }

// WriteMode implements View.
func (c *Controller) WriteMode() bool { return c.wmode }

// DemandEpoch implements View.
func (c *Controller) DemandEpoch() uint64 { return c.demandEpoch }

// DemandZeroEpoch implements View.
func (c *Controller) DemandZeroEpoch() uint64 { return c.pending.zeroEpoch }

// NoteBlockedChanged implements View.
func (c *Controller) NoteBlockedChanged() { c.blockedEpoch++ }

// IssueCmd implements View: policies issue refresh/drain commands through it.
func (c *Controller) IssueCmd(cmd dram.Cmd, now int64) {
	c.dev.Issue(cmd, now)
	c.noteIssue(cmd)
	c.missValid = false
	c.evValid = false
	if cmd.Kind.IsRefresh() {
		c.stats.RefreshSlots++
	}
}

// noteIssue keeps the queue indexes' open-row candidate registers in sync
// with the device: every command that opens or closes a row — whether issued
// by the demand scheduler or by the refresh policy (drain precharges) —
// flows through here. Refresh commands never move a row, so they need no
// hook.
func (c *Controller) noteIssue(cmd dram.Cmd) {
	bi := cmd.Rank*c.geom.Banks + cmd.Bank
	switch cmd.Kind {
	case dram.CmdACT:
		c.readIx.onRowOpen(bi, cmd.Row)
		c.writeIx.onRowOpen(bi, cmd.Row)
	case dram.CmdPRE, dram.CmdRDA, dram.CmdWRA:
		c.readIx.onRowClose(bi)
		c.writeIx.onRowClose(bi)
	}
}

// NewRequest returns a zeroed Request, recycling completed ones. A request
// passed to EnqueueRead/EnqueueWrite becomes controller-owned regardless of
// the result: the controller recycles a read after its completion callback
// runs, a write after it issues (or merges), and a rejected request
// immediately — so callers must not retain one past the enqueue call, and
// must retry a rejection with a fresh request.
func (c *Controller) NewRequest() *Request {
	if n := len(c.reqFree); n > 0 {
		req := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		*req = Request{}
		return req
	}
	return &Request{}
}

func (c *Controller) recycle(req *Request) {
	// Cap the pool at the maximum pooled working set (both queues plus a
	// generous in-flight margin): drivers that allocate their own requests
	// and never call NewRequest would otherwise grow it one entry per
	// request, forever.
	if len(c.reqFree) < 2*(c.cfg.ReadQueueCap+c.cfg.WriteQueueCap) {
		c.reqFree = append(c.reqFree, req)
	}
}

// ReadQueueLen returns the current read queue occupancy.
func (c *Controller) ReadQueueLen() int { return c.readIx.n }

// WriteQueueLen returns the current write queue occupancy.
func (c *Controller) WriteQueueLen() int { return c.writeIx.n }

// noteArrival tightens the cached demand-search miss for a newly admitted
// request instead of discarding it. The cached miss promised no command is
// issuable before missNextTry; the new request is the only candidate that
// scan did not consider, and it cannot issue (or free its bank via a
// conflict precharge) before its own device-timing bound, so the promise
// survives with the bound folded in. Arrivals the current queue selection
// does not even scan — writes while reads are being served, reads during a
// writeback drain — leave the cache untouched: they cannot change the
// scan's outcome until a mode flip or issue invalidates it anyway.
func (c *Controller) noteArrival(req *Request, now int64) {
	if !c.missValid {
		return
	}
	if req.IsWrite {
		if !c.wmode && c.readIx.n > 0 {
			return
		}
	} else if c.wmode {
		return
	}
	var e int64
	open := c.dev.OpenRow(req.Addr.Rank, req.Addr.Bank)
	switch {
	case open == req.Addr.Row:
		e = c.dev.EarliestColumn(req.Addr.Rank, req.Addr.Bank, req.IsWrite)
	case open == dram.NoRow:
		e = c.dev.EarliestACT(req.Addr.Rank, req.Addr.Bank)
	default:
		e = c.dev.EarliestPRE(req.Addr.Rank, req.Addr.Bank)
	}
	if e <= now {
		c.missValid = false
		return
	}
	if e < c.missNextTry {
		c.missNextTry = e
	}
}

// packAddr collapses a DRAM address into one word so the write-address set
// hashes a uint64 instead of a four-int struct. Field widths cover any
// realistic geometry: 256 ranks, 4096 banks, 256M rows, 64K columns.
func packAddr(a dram.Addr) uint64 {
	return uint64(a.Rank)<<56 | uint64(a.Bank)<<44 | uint64(a.Row)<<16 | uint64(a.Col)
}

// EnqueueRead admits a read request; it returns false when the read queue is
// full (the caller must retry — this is MSHR backpressure). A read that hits
// a queued write is forwarded from the write queue without touching DRAM.
func (c *Controller) EnqueueRead(req *Request, now int64) bool {
	if _, ok := c.writeAddrs[packAddr(req.Addr)]; ok {
		req.Arrive = now
		req.Done = now + 1
		c.addInflightFwd(req)
		c.evValid = false
		c.stats.ForwardedReads++
		return true
	}
	if c.readIx.n >= c.cfg.ReadQueueCap {
		c.stats.ReadQueueFullStalls++
		c.recycle(req) // rejected: the caller retries with a fresh request
		return false
	}
	req.Arrive = now
	req.seq = c.seq
	c.seq++
	c.readIx.add(req)
	c.pending.add(req, 1)
	c.noteArrival(req, now)
	c.demandEpoch++
	c.evValid = false
	return true
}

// EnqueueWrite admits a write request; it returns false when the write queue
// is full. Writes to an already-queued address are merged.
func (c *Controller) EnqueueWrite(req *Request, now int64) bool {
	if _, ok := c.writeAddrs[packAddr(req.Addr)]; ok {
		c.stats.MergedWrites++
		c.recycle(req) // merged: the queued write stands in for it
		return true
	}
	if c.writeIx.n >= c.cfg.WriteQueueCap {
		c.stats.WriteQueueFullStalls++
		c.recycle(req) // rejected: the caller retries with a fresh request
		return false
	}
	req.Arrive = now
	req.seq = c.seq
	c.seq++
	c.writeIx.add(req)
	c.writeAddrs[packAddr(req.Addr)] = struct{}{}
	c.pending.add(req, 1)
	c.noteArrival(req, now)
	c.demandEpoch++
	c.evValid = false
	return true
}

// Tick advances the controller one DRAM cycle: it completes returned reads,
// updates writeback mode, lets the refresh policy claim the command slot,
// and otherwise issues the best demand command (FR-FCFS).
//
// Like cpu.Core.Tick, it first consults its own NextEvent: when this cycle
// provably holds no completion, no mode flip, no demand scan, and no
// refresh-policy action, the whole Tick is the linear accounting Skip
// replays — the same substitution the selective stepper makes from
// outside, made here so the blind-stepping saturation fallback gets it
// too.
func (c *Controller) Tick(now int64) {
	if c.NextEvent(now) > now {
		c.Skip(now, now+1)
		return
	}
	c.evValid = false
	c.completeReads(now)
	c.updateWriteMode()
	if c.wmode {
		c.stats.WriteModeCycles++
	}

	var cmd dram.Cmd
	req, autopre, ok := c.chooseDemandCached(now, &cmd)
	if c.policy.Tick(now, ok) {
		return // policy consumed the command slot
	}
	if ok {
		c.issueDemand(cmd, req, autopre, now)
	}
}

// NextEvent returns the earliest cycle >= now at which Tick could do
// anything beyond the linear accounting Skip replays: complete an in-flight
// read, flip writeback mode, run a demand scan (fresh, or a cached miss
// whose earliest-ready bound or blocked epoch has expired), or give the
// refresh policy a non-idle slot. It is a lower bound in the NextEvent
// contract of the clock-skipping engine (see sim): the caller may only skip
// the window if every other component is also quiescent, which guarantees
// no enqueue arrives and no policy state moves in between.
func (c *Controller) NextEvent(now int64) int64 {
	if c.evValid {
		return c.evCached
	}
	c.evCached = c.nextEvent(now)
	c.evValid = true
	return c.evCached
}

func (c *Controller) nextEvent(now int64) int64 {
	if c.inflightMin <= now {
		return now
	}
	ev := c.inflightMin
	if (!c.wmode && c.writeIx.n >= c.cfg.WriteHigh) || (c.wmode && c.writeIx.n <= c.cfg.WriteLow) {
		return now // a writeback-mode flip is pending
	}
	if c.readIx.n != 0 || c.writeIx.n != 0 {
		if !c.missValid || c.blockedEpoch != c.missEpoch || c.missNextTry <= now {
			return now // a demand scan must run this cycle
		}
		if c.missNextTry < ev {
			ev = c.missNextTry
		}
	}
	if d := c.policy.NextDeadline(now); d < ev {
		ev = d
	}
	if ev < now {
		ev = now
	}
	return ev
}

// Skip replays the per-cycle accounting of the Ticks elided for cycles
// [from, to): the writeback-mode cycle counter, the opportunistic-drain
// counter the cached demand miss replicates, and the policy's own skip
// accounting. NextEvent(from) must have returned at least to.
func (c *Controller) Skip(from, to int64) {
	if c.wmode {
		c.stats.WriteModeCycles += to - from
	}
	if !c.wmode && c.readIx.n == 0 && c.writeIx.n > 0 {
		c.stats.OpportunisticDrain += to - from
	}
	c.policy.Skip(from, to)
}

func (c *Controller) addInflight(req *Request) {
	req.stamp = c.inflightStamp
	c.inflightStamp++
	c.inflightRd = append(c.inflightRd, req)
	if req.Done < c.inflightMin {
		c.inflightMin = req.Done
	}
}

func (c *Controller) addInflightFwd(req *Request) {
	req.stamp = c.inflightStamp
	c.inflightStamp++
	c.inflightFwd = append(c.inflightFwd, req)
	if req.Done < c.inflightMin {
		c.inflightMin = req.Done
	}
}

func (c *Controller) completeReads(now int64) {
	if now < c.inflightMin {
		return // nothing can have returned yet (MaxInt64 when empty)
	}
	for {
		var r *Request
		rdDue := c.rdHead < len(c.inflightRd) && c.inflightRd[c.rdHead].Done <= now
		fwdDue := c.fwdHead < len(c.inflightFwd) && c.inflightFwd[c.fwdHead].Done <= now
		switch {
		case rdDue && (!fwdDue || c.inflightRd[c.rdHead].stamp < c.inflightFwd[c.fwdHead].stamp):
			r = c.inflightRd[c.rdHead]
			c.inflightRd, c.rdHead = fifo.PopFront(c.inflightRd, c.rdHead)
		case fwdDue:
			r = c.inflightFwd[c.fwdHead]
			c.inflightFwd, c.fwdHead = fifo.PopFront(c.inflightFwd, c.fwdHead)
		default:
			c.inflightMin = math.MaxInt64
			if c.rdHead < len(c.inflightRd) {
				c.inflightMin = c.inflightRd[c.rdHead].Done
			}
			if c.fwdHead < len(c.inflightFwd) && c.inflightFwd[c.fwdHead].Done < c.inflightMin {
				c.inflightMin = c.inflightFwd[c.fwdHead].Done
			}
			return
		}
		c.stats.ReadsServed++
		c.stats.ReadLatencySum += r.Done - r.Arrive
		if r.OnComplete != nil {
			r.OnComplete(now)
		}
		c.recycle(r)
	}
}

func (c *Controller) updateWriteMode() {
	if !c.wmode && c.writeIx.n >= c.cfg.WriteHigh {
		c.wmode = true
		c.missValid = false
		c.stats.WriteModeEntries++
	}
	if c.wmode && c.writeIx.n <= c.cfg.WriteLow {
		c.wmode = false
		c.missValid = false
	}
}

// refreshBlocked rebuilds the blocked snapshot if the policy's epoch moved.
// Called once per demand scan, so the per-bank probes stay interface-free.
func (c *Controller) refreshBlocked() {
	ep := c.blockedEpoch
	if c.blockedInit && ep == c.blockedSeen {
		return
	}
	if c.blockedMask == nil {
		c.blockedMask = make([]bool, c.geom.Ranks*c.geom.Banks)
	}
	c.blockedAny = false
	for r := 0; r < c.geom.Ranks; r++ {
		rb := c.policy.RankBlocked(r)
		for b := 0; b < c.geom.Banks; b++ {
			v := rb || c.policy.BankBlocked(r, b)
			c.blockedMask[r*c.geom.Banks+b] = v
			c.blockedAny = c.blockedAny || v
		}
	}
	c.blockedSeen = ep
	c.blockedInit = true
}

func (c *Controller) blocked(rank, bank int) bool {
	return c.blockedAny && c.blockedMask[rank*c.geom.Banks+bank]
}

// chooseDemandCached reuses the previous cycle's failed demand search when
// nothing that could change its outcome has happened: no queue or device
// mutation (tracked via missValid), no write-mode flip, no policy block
// change (blockedEpoch), and the earliest-ready bound still in the future.
func (c *Controller) chooseDemandCached(now int64, cmd *dram.Cmd) (*Request, bool, bool) {
	if c.readIx.n == 0 && c.writeIx.n == 0 {
		return nil, false, false
	}
	if c.missValid && now < c.missNextTry && c.blockedEpoch == c.missEpoch {
		// Replicate the one observable side effect of a fruitless scan: the
		// opportunistic-drain counter ticks whenever write drain is
		// considered outside writeback mode.
		if !c.wmode && c.readIx.n == 0 && c.writeIx.n > 0 {
			c.stats.OpportunisticDrain++
		}
		return nil, false, false
	}
	req, autopre, ok, nextTry := c.chooseDemand(now, cmd)
	if ok {
		c.missValid = false
	} else {
		c.missValid = true
		c.missNextTry = nextTry
		c.missEpoch = c.blockedEpoch
	}
	return req, autopre, ok
}

// chooseDemand picks the best demand command under FR-FCFS: first-ready
// column command to an open row (oldest first), then the oldest activation,
// then a conflict precharge. It does not mutate scheduling state. When no
// command is issuable it also returns the earliest cycle any rejected
// candidate could become issuable on its own (device timing expiring), which
// backs the cross-cycle miss cache.
func (c *Controller) chooseDemand(now int64, cmd *dram.Cmd) (*Request, bool, bool, int64) {
	ix := &c.readIx
	isWrite := false
	if c.wmode || c.readIx.n == 0 {
		// Writeback mode, or opportunistic write drain while no reads are
		// waiting (otherwise sub-watermark writes would sit forever).
		ix = &c.writeIx
		isWrite = true
		if !c.wmode && ix.n > 0 {
			c.stats.OpportunisticDrain++
		}
	}
	nextTry := int64(math.MaxInt64)
	if ix.n == 0 {
		return nil, false, false, nextTry
	}
	c.refreshBlocked()

	// One walk over the active buckets. The candidate registers classify
	// each bank into exactly one FR-FCFS class — open-row hit (column
	// candidate, bucket.hit), precharged (activation candidate, oldest
	// queued), or open with no hits (conflict precharge) — and the walk
	// tracks the oldest candidate per class. Column beats activation beats
	// precharge, so once a higher class has a candidate the lower classes'
	// bookkeeping is skipped outright: it could never change the outcome,
	// and the selection stays identical to the seed's three sequential
	// scans. Device-global gates (bus occupancy and turnaround for columns,
	// rank tRRD/tFAW for activations) are hoisted out of the loop, leaving
	// one or two slab reads per bank. EarliestColumn/EarliestPRE are exact
	// bounds; EarliestACT is a lower bound only — with SARP, ACT legality
	// depends on the target row's subarray — so activation banks passing
	// the gate still go through CanIssue per row.
	colGlobal, colBank := c.dev.EarliestColumnSplit(isWrite)
	colOpen := colGlobal <= now
	actBank := c.dev.EarliestACTBank()
	c.scanTok++
	var bestCol, bestAct, bestPre *Request
	colBankMin := int64(math.MaxInt64) // tightest bank-local column bound while the global gate holds
	bestBank := -1
	for _, bi := range ix.active {
		if c.blockedAny && c.blockedMask[bi] {
			continue
		}
		if r := ix.hit[bi]; r != nil { // column class
			if !colOpen {
				// No bank can receive a column command this cycle; the
				// earliest any hit could is the global gate clamped by the
				// tightest bank-local bound (max distributes over the min).
				if e := colBank[bi]; e < colBankMin {
					colBankMin = e
				}
				continue
			}
			if bestCol != nil && r.seq > bestCol.seq {
				continue
			}
			if e := colBank[bi]; e > now {
				if e < nextTry {
					nextTry = e
				}
				continue
			}
			bestCol = r
			continue
		}
		if bestCol != nil {
			continue // a column candidate always wins; skip lower classes
		}
		if ix.openRow[bi] == noOpenRow { // activation class
			if bestAct != nil && ix.oldSeq[bi] > bestAct.seq {
				continue
			}
			bkt := &ix.buckets[bi]
			rank := bkt.rank
			if c.actTok[rank] != c.scanTok {
				c.actGlobal[rank] = c.dev.EarliestACTRank(rank)
				c.actTok[rank] = c.scanTok
			}
			if e := max(actBank[bi], c.actGlobal[rank]); e > now {
				if e < nextTry {
					nextTry = e
				}
				continue
			}
			if now >= c.dev.RefreshBusyUntil(rank) {
				// No refresh anywhere in the rank: everything CanIssue would
				// re-check is already covered — the bank is precharged (open
				// -row mirror), its tRC/tRP and the rank's tRRD plus the base
				// tFAW window passed (the hoisted gates), and the throttled
				// timings and subarray blocking require an in-progress
				// refresh — so the bank's oldest request activates without a
				// per-row legality probe.
				bestAct = bkt.reqs[0]
				continue
			}
			found := false
			for _, r := range bkt.reqs {
				if bestAct != nil && r.seq > bestAct.seq {
					found = true // an older candidate already won; bank stays live
					break
				}
				actCmd := dram.Cmd{Kind: dram.CmdACT, Rank: rank, Bank: bkt.bank, Row: r.Addr.Row}
				if c.dev.CanIssue(actCmd, now) {
					bestAct = r
					found = true
					break
				}
			}
			if !found && now+1 < nextTry {
				// Thresholds passed but every queued row is held off by an
				// in-progress refresh (SARP subarray collision or throttled
				// tFAW); re-evaluate next cycle.
				nextTry = now + 1
			}
			continue
		}
		// Conflict-precharge class: an open row nobody queued wants; the
		// bank's oldest request stands in for FR-FCFS age ordering.
		if bestAct != nil {
			continue // an activation candidate always beats a precharge
		}
		if bestPre != nil && ix.oldSeq[bi] > bestPre.seq {
			continue
		}
		bkt := &ix.buckets[bi]
		if e := c.dev.EarliestPRE(bkt.rank, bkt.bank); e > now {
			if e < nextTry {
				nextTry = e
			}
			continue
		}
		bestPre = bkt.reqs[0]
		bestBank = bi
	}

	switch {
	case bestCol != nil:
		autopre := !c.cfg.OpenRow && ix.hitN[bestCol.Addr.Rank*c.geom.Banks+bestCol.Addr.Bank] < 2
		kind := colKind(bestCol.IsWrite, autopre)
		*cmd = dram.Cmd{Kind: kind, Rank: bestCol.Addr.Rank, Bank: bestCol.Addr.Bank, Row: bestCol.Addr.Row, Col: bestCol.Addr.Col}
		return bestCol, autopre, true, 0
	case bestAct != nil:
		*cmd = dram.Cmd{Kind: dram.CmdACT, Rank: bestAct.Addr.Rank, Bank: bestAct.Addr.Bank, Row: bestAct.Addr.Row}
		return bestAct, false, true, 0
	case bestBank >= 0:
		bkt := &ix.buckets[bestBank]
		*cmd = dram.Cmd{Kind: dram.CmdPRE, Rank: bkt.rank, Bank: bkt.bank}
		return nil, false, true, 0
	}
	if colBankMin != math.MaxInt64 {
		if e := max(colGlobal, colBankMin); e < nextTry {
			nextTry = e
		}
	}
	return nil, false, false, nextTry
}

func colKind(write, autopre bool) dram.CmdKind {
	switch {
	case write && autopre:
		return dram.CmdWRA
	case write:
		return dram.CmdWR
	case autopre:
		return dram.CmdRDA
	default:
		return dram.CmdRD
	}
}

func (c *Controller) issueDemand(cmd dram.Cmd, req *Request, autopre bool, now int64) {
	c.dev.Issue(cmd, now)
	c.noteIssue(cmd)
	c.missValid = false
	c.stats.DemandSlots++
	if !cmd.Kind.IsColumn() {
		return // ACT/PRE keep the request queued
	}
	c.removeRequest(req)
	c.pending.add(req, -1)
	if req.IsWrite {
		req.Done = c.dev.WriteDataAt(now)
		c.stats.WritesServed++
		c.stats.WriteLatencySum += req.Done - req.Arrive
		c.recycle(req)
		return
	}
	req.Done = c.dev.ReadDataAt(now)
	c.addInflight(req)
}

func (c *Controller) removeRequest(req *Request) {
	if req.IsWrite {
		c.writeIx.remove(req)
		delete(c.writeAddrs, packAddr(req.Addr))
	} else {
		c.readIx.remove(req)
	}
	c.missValid = false
	c.demandEpoch++
}

// Drained reports whether all queues and in-flight reads are empty.
func (c *Controller) Drained() bool {
	return c.readIx.n == 0 && c.writeIx.n == 0 &&
		c.rdHead == len(c.inflightRd) && c.fwdHead == len(c.inflightFwd)
}
