package sched_test

// Golden pinning of the controller's observable behavior. The fixed request
// trace below was run against the pre-index (seed) controller and its final
// Stats recorded; the indexed FR-FCFS controller must reproduce them exactly,
// for every refresh mechanism (including the SARP device paths, where ACT
// legality depends on the requested row's subarray).
//
// One deliberate regeneration: the seed accounted a forwarded read's latency
// as Done - 0 (Arrive was never set), inflating ReadLatencySum by roughly
// the current cycle per forward. The fix sets Arrive at the forwarding
// enqueue, so every ReadLatencySum below was re-recorded; all other fields
// are bit-identical to the seed controller's.

import (
	"math/rand"
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/dram"
	"dsarp/internal/sched"
	"dsarp/internal/timing"
)

func goldenGeom() dram.Geometry {
	return dram.Geometry{Ranks: 2, Banks: 8, SubarraysPerBank: 4, RowsPerBank: 64,
		ColumnsPerRow: 8, RowsPerRef: 2}
}

// driveFixedTrace runs one controller under kind for cycles DRAM cycles with
// a deterministic open/conflict-heavy request mix and returns the final
// controller and device statistics. mkPolicy overrides the policy built from
// kind (used for Pausing, which has no Kind of its own).
func driveFixedTrace(t *testing.T, kind core.Kind, mkPolicy func(sched.View) sched.RefreshPolicy, cycles int64) (sched.Stats, dram.Stats) {
	t.Helper()
	g := goldenGeom()
	tp := timing.DDR3(timing.Config{Density: timing.Gb32, Mode: kind.RefMode()})
	dev, err := dram.New(g, tp, dram.Options{SARP: kind.SARP(), Check: true})
	if err != nil {
		t.Fatal(err)
	}
	c := sched.NewController(dev, sched.DefaultConfig(), nil)
	if mkPolicy != nil {
		c.SetPolicy(mkPolicy(c))
	} else {
		c.SetPolicy(core.New(kind, c, 12345))
	}

	rng := rand.New(rand.NewSource(99))
	inject := cycles * 2 / 3 // then drain, so idle/empty-queue scans run too
	for now := int64(0); now < cycles; now++ {
		// Bursty injection: occasional short bursts with idle gaps, so busy
		// scans, idle scans, and opportunistic write drains are all exercised.
		if now < inject && rng.Intn(12) == 0 {
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				a := dram.Addr{
					Rank: rng.Intn(g.Ranks),
					Bank: rng.Intn(g.Banks),
					Row:  rng.Intn(24), // small row set: frequent hits and conflicts
					Col:  rng.Intn(g.ColumnsPerRow),
				}
				if rng.Intn(3) == 0 {
					c.EnqueueWrite(&sched.Request{Core: 0, IsWrite: true, Addr: a}, now)
				} else {
					c.EnqueueRead(&sched.Request{Core: 0, Addr: a}, now)
				}
			}
		}
		c.Tick(now)
	}
	if err := dev.Checker().Err(); err != nil {
		t.Fatalf("%v: protocol violations: %v", kind, err)
	}
	return c.Stats(), dev.Stats()
}

func TestGoldenFixedTraceStats(t *testing.T) {
	type golden struct {
		sched sched.Stats
		dram  dram.Stats
	}
	want := map[core.Kind]golden{
		core.KindNoRef: {
			sched: sched.Stats{ReadsServed: 2135, WritesServed: 1057, ReadLatencySum: 123684, WriteLatencySum: 767546, DemandSlots: 7493, ForwardedReads: 31, MergedWrites: 10, WriteModeEntries: 30, WriteModeCycles: 2562, OpportunisticDrain: 2399},
			dram:  dram.Stats{Commands: 7493, Acts: 3694, Pres: 3694, Reads: 2104, Writes: 1057},
		},
		core.KindREFab: {
			sched: sched.Stats{ReadsServed: 2074, WritesServed: 1057, ReadLatencySum: 478780, WriteLatencySum: 818139, DemandSlots: 6580, RefreshSlots: 23, ForwardedReads: 28, MergedWrites: 10, ReadQueueFullStalls: 61, WriteModeEntries: 41, WriteModeCycles: 5795, OpportunisticDrain: 525},
			dram:  dram.Stats{Commands: 6647, Acts: 3211, Pres: 3211, Reads: 2046, Writes: 1057, RefABs: 23},
		},
		core.KindREFpb: {
			sched: sched.Stats{ReadsServed: 2135, WritesServed: 1059, ReadLatencySum: 182404, WriteLatencySum: 805357, DemandSlots: 6829, RefreshSlots: 184, ForwardedReads: 27, MergedWrites: 8, WriteModeEntries: 46, WriteModeCycles: 4093, OpportunisticDrain: 518},
			dram:  dram.Stats{Commands: 7049, Acts: 3371, Pres: 3371, Reads: 2108, Writes: 1059, RefPBs: 184},
		},
		core.KindElastic: {
			sched: sched.Stats{ReadsServed: 2135, WritesServed: 1057, ReadLatencySum: 137507, WriteLatencySum: 784615, DemandSlots: 7476, RefreshSlots: 23, ForwardedReads: 31, MergedWrites: 10, WriteModeEntries: 30, WriteModeCycles: 2580, OpportunisticDrain: 2374},
			dram:  dram.Stats{Commands: 7502, Acts: 3686, Pres: 3686, Reads: 2104, Writes: 1057, RefABs: 23},
		},
		core.KindDARP: {
			sched: sched.Stats{ReadsServed: 2135, WritesServed: 1058, ReadLatencySum: 154550, WriteLatencySum: 794358, DemandSlots: 6903, RefreshSlots: 194, ForwardedReads: 33, MergedWrites: 9, WriteModeEntries: 42, WriteModeCycles: 3778, OpportunisticDrain: 890},
			dram:  dram.Stats{Commands: 7097, Acts: 3390, Pres: 3390, Reads: 2102, Writes: 1058, RefPBs: 194},
		},
		core.KindSARPpb: {
			sched: sched.Stats{ReadsServed: 2135, WritesServed: 1059, ReadLatencySum: 156995, WriteLatencySum: 795245, DemandSlots: 6931, RefreshSlots: 184, ForwardedReads: 31, MergedWrites: 8, WriteModeEntries: 43, WriteModeCycles: 3789, OpportunisticDrain: 896},
			dram:  dram.Stats{Commands: 7137, Acts: 3419, Pres: 3419, Reads: 2104, Writes: 1059, RefPBs: 184},
		},
		core.KindDSARP: {
			sched: sched.Stats{ReadsServed: 2135, WritesServed: 1059, ReadLatencySum: 144192, WriteLatencySum: 787379, DemandSlots: 7106, RefreshSlots: 202, ForwardedReads: 28, MergedWrites: 8, WriteModeEntries: 40, WriteModeCycles: 3508, OpportunisticDrain: 1281},
			dram:  dram.Stats{Commands: 7308, Acts: 3501, Pres: 3501, Reads: 2107, Writes: 1059, RefPBs: 202},
		},
	}

	for kind, g := range want {
		kind, g := kind, g
		t.Run(kind.String(), func(t *testing.T) {
			gotSched, gotDRAM := driveFixedTrace(t, kind, nil, 30_000)
			if gotSched != g.sched {
				t.Errorf("sched.Stats diverged from seed controller:\n got  %#v\n want %#v", gotSched, g.sched)
			}
			if gotDRAM != g.dram {
				t.Errorf("dram.Stats diverged from seed controller:\n got  %#v\n want %#v", gotDRAM, g.dram)
			}
			if t.Failed() {
				// Machine-readable actuals, for regenerating the goldens when
				// behavior changes intentionally.
				t.Logf("golden: {sched: sched.Stats%#v, dram: dram.Stats%#v},", gotSched, gotDRAM)
			}
		})
	}
}

// TestGoldenFixedTraceStatsExtended pins the remaining mechanisms — the
// §6.1.2 breakdown configuration, SARPab, the DDR4 baselines, and refresh
// pausing — the same way.
func TestGoldenFixedTraceStatsExtended(t *testing.T) {
	type golden struct {
		kind     core.Kind
		mkPolicy func(sched.View) sched.RefreshPolicy
		sched    sched.Stats
		dram     dram.Stats
	}
	want := map[string]golden{
		"DARPOoO": {kind: core.KindDARPOoO,
			sched: sched.Stats{ReadsServed: 2135, WritesServed: 1057, ReadLatencySum: 151560, WriteLatencySum: 784130, DemandSlots: 7069, RefreshSlots: 178, ForwardedReads: 28, MergedWrites: 10, WriteModeEntries: 42, WriteModeCycles: 3638, OpportunisticDrain: 1048},
			dram:  dram.Stats{Commands: 7247, Acts: 3481, Pres: 3481, Reads: 2107, Writes: 1057, RefPBs: 178}},
		"SARPab": {kind: core.KindSARPab,
			sched: sched.Stats{ReadsServed: 2101, WritesServed: 1058, ReadLatencySum: 321677, WriteLatencySum: 797667, DemandSlots: 6783, RefreshSlots: 23, ForwardedReads: 26, MergedWrites: 9, ReadQueueFullStalls: 34, WriteModeEntries: 40, WriteModeCycles: 4116, OpportunisticDrain: 1018},
			dram:  dram.Stats{Commands: 6832, Acts: 3327, Pres: 3327, Reads: 2075, Writes: 1058, RefABs: 23}},
		"FGR2x": {kind: core.KindFGR2x,
			sched: sched.Stats{ReadsServed: 2132, WritesServed: 1058, ReadLatencySum: 521224, WriteLatencySum: 814987, DemandSlots: 6527, RefreshSlots: 46, ForwardedReads: 28, MergedWrites: 9, ReadQueueFullStalls: 3, WriteModeEntries: 43, WriteModeCycles: 5304, OpportunisticDrain: 755},
			dram:  dram.Stats{Commands: 6682, Acts: 3211, Pres: 3211, Reads: 2104, Writes: 1058, RefABs: 46}},
		"FGR4x": {kind: core.KindFGR4x,
			sched: sched.Stats{ReadsServed: 1478, WritesServed: 1055, ReadLatencySum: 1077078, WriteLatencySum: 857413, DemandSlots: 5023, RefreshSlots: 92, ForwardedReads: 32, MergedWrites: 12, ReadQueueFullStalls: 657, WriteModeEntries: 32, WriteModeCycles: 8882, OpportunisticDrain: 564},
			dram:  dram.Stats{Commands: 5190, Acts: 2436, Pres: 2436, Reads: 1446, Writes: 1055, RefABs: 92}},
		"AR": {kind: core.KindAR,
			sched: sched.Stats{ReadsServed: 2135, WritesServed: 1057, ReadLatencySum: 164353, WriteLatencySum: 837016, DemandSlots: 7476, RefreshSlots: 29, ForwardedReads: 31, MergedWrites: 10, WriteModeEntries: 30, WriteModeCycles: 2580, OpportunisticDrain: 3241},
			dram:  dram.Stats{Commands: 7508, Acts: 3686, Pres: 3686, Reads: 2104, Writes: 1057, RefABs: 29}},
		"Pause": {kind: core.KindREFab,
			mkPolicy: func(v sched.View) sched.RefreshPolicy { return core.NewPausing(v, 12345) },
			sched:    sched.Stats{ReadsServed: 2135, WritesServed: 1057, ReadLatencySum: 123684, WriteLatencySum: 767546, DemandSlots: 7493, RefreshSlots: 45, ForwardedReads: 31, MergedWrites: 10, WriteModeEntries: 30, WriteModeCycles: 2562, OpportunisticDrain: 2399},
			dram:     dram.Stats{Commands: 7538, Acts: 3694, Pres: 3694, Reads: 2104, Writes: 1057, RefABs: 45}},
	}

	for name, g := range want {
		name, g := name, g
		t.Run(name, func(t *testing.T) {
			gotSched, gotDRAM := driveFixedTrace(t, g.kind, g.mkPolicy, 30_000)
			if gotSched != g.sched {
				t.Errorf("sched.Stats diverged from seed controller:\n got  %#v\n want %#v", gotSched, g.sched)
			}
			if gotDRAM != g.dram {
				t.Errorf("dram.Stats diverged from seed controller:\n got  %#v\n want %#v", gotDRAM, g.dram)
			}
			if t.Failed() {
				t.Logf("golden %s: sched.Stats%#v dram.Stats%#v", name, gotSched, gotDRAM)
			}
		})
	}
}

// TestGoldenTraceDeterminism guards the harness itself: two identical drives
// must agree, otherwise the goldens above would be meaningless.
func TestGoldenTraceDeterminism(t *testing.T) {
	s1, d1 := driveFixedTrace(t, core.KindDSARP, nil, 10_000)
	s2, d2 := driveFixedTrace(t, core.KindDSARP, nil, 10_000)
	if s1 != s2 || d1 != d2 {
		t.Fatalf("fixed trace is not deterministic:\n%v\n%v\n%v\n%v", s1, s2, d1, d2)
	}
}
