package sched

// Differential fuzz for the incremental FR-FCFS candidate registers: a
// naive flat-rescan reference implementation (kept here, in the test) picks
// the demand command from first principles every cycle, and the controller's
// register-driven chooseDemand must agree request-for-request. The driver
// exercises every register invalidation source: enqueue/dequeue, row opens
// and closes (demand ACT/PRE plus auto-precharge), refresh-policy drain
// precharges and refreshes through IssueCmd, write-mode flips, forwarded
// reads and merged writes, and randomized rank/bank blocking.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dsarp/internal/dram"
	"dsarp/internal/timing"
)

// fuzzPolicy is a deliberately erratic RefreshPolicy: it flips random
// rank/bank blocks and issues refreshes and drain precharges at random, so
// the controller sees every kind of externally-caused state change.
type fuzzPolicy struct {
	v       View
	rng     *rand.Rand
	ranks   int
	banks   int
	rankBlk []bool
	bankBlk []bool
}

func newFuzzPolicy(v View, seed int64) *fuzzPolicy {
	g := v.Dev().Geometry()
	return &fuzzPolicy{
		v:       v,
		rng:     rand.New(rand.NewSource(seed)),
		ranks:   g.Ranks,
		banks:   g.Banks,
		rankBlk: make([]bool, g.Ranks),
		bankBlk: make([]bool, g.Ranks*g.Banks),
	}
}

func (p *fuzzPolicy) Name() string                 { return "fuzz" }
func (p *fuzzPolicy) RankBlocked(r int) bool       { return p.rankBlk[r] }
func (p *fuzzPolicy) BankBlocked(r, b int) bool    { return p.bankBlk[r*p.banks+b] }
func (p *fuzzPolicy) NextDeadline(now int64) int64 { return now }
func (p *fuzzPolicy) Skip(from, to int64)          {}

func (p *fuzzPolicy) Tick(now int64, demandReady bool) bool {
	// Randomly toggle blocking state (~1% of cycles).
	if p.rng.Intn(100) == 0 {
		if p.rng.Intn(4) == 0 {
			r := p.rng.Intn(p.ranks)
			p.rankBlk[r] = !p.rankBlk[r]
		} else {
			i := p.rng.Intn(len(p.bankBlk))
			p.bankBlk[i] = !p.bankBlk[i]
		}
		p.v.NoteBlockedChanged()
	}
	// Randomly claim the slot for a refresh or a drain precharge (~2%).
	if p.rng.Intn(50) != 0 {
		return false
	}
	dev := p.v.Dev()
	r := p.rng.Intn(p.ranks)
	switch p.rng.Intn(3) {
	case 0:
		cmd := dram.Cmd{Kind: dram.CmdREFab, Rank: r}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			return true
		}
	case 1:
		cmd := dram.Cmd{Kind: dram.CmdREFpb, Rank: r, Bank: p.rng.Intn(p.banks)}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			return true
		}
	default:
		cmd := dram.Cmd{Kind: dram.CmdPRE, Rank: r, Bank: p.rng.Intn(p.banks)}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			return true
		}
	}
	return false
}

// refChoice is the reference scheduler's decision.
type refChoice struct {
	ok  bool
	cmd dram.Cmd
	seq int64 // admission order of the chosen request; -1 for conflict PRE
}

// referenceChooseDemand re-derives the FR-FCFS decision from first
// principles: flat per-bank request lists rebuilt from scratch, three
// sequential passes (column hit, activation, conflict precharge), age
// ordering by admission seq, device legality via the exact Earliest*/
// CanIssue queries, blocking via the policy's live answers.
func referenceChooseDemand(c *Controller, now int64) refChoice {
	ix := &c.readIx
	isWrite := false
	if c.wmode || c.readIx.n == 0 {
		ix = &c.writeIx
		isWrite = true
	}
	if ix.n == 0 {
		return refChoice{}
	}
	g := c.geom

	blocked := func(r, b int) bool {
		return c.policy.RankBlocked(r) || c.policy.BankBlocked(r, b)
	}
	reqsOf := func(r, b int) []*Request { return ix.bucketOf(r, b).reqs }
	rowCount := func(r, b, row int) int {
		n := 0
		for _, q := range reqsOf(r, b) {
			if q.Addr.Row == row {
				n++
			}
		}
		return n
	}

	// Pass 1: oldest request targeting its bank's open row, on a bank whose
	// column timing allows the command now.
	var best *Request
	for r := 0; r < g.Ranks; r++ {
		for b := 0; b < g.Banks; b++ {
			open := c.dev.OpenRow(r, b)
			if open == dram.NoRow || blocked(r, b) || c.dev.EarliestColumn(r, b, isWrite) > now {
				continue
			}
			for _, q := range reqsOf(r, b) {
				if q.Addr.Row == open && (best == nil || q.seq < best.seq) {
					best = q
					break // requests are in seq order: first hit is the bank's oldest
				}
			}
		}
	}
	if best != nil {
		autopre := !c.cfg.OpenRow && rowCount(best.Addr.Rank, best.Addr.Bank, best.Addr.Row) < 2
		return refChoice{ok: true, seq: best.seq, cmd: dram.Cmd{
			Kind: colKind(best.IsWrite, autopre),
			Rank: best.Addr.Rank, Bank: best.Addr.Bank, Row: best.Addr.Row, Col: best.Addr.Col}}
	}

	// Pass 2: per precharged bank, the oldest request whose row's ACT is
	// legal; the youngest-bank pruning of the production scan cannot change
	// which request wins, so the reference simply takes the global minimum.
	for r := 0; r < g.Ranks; r++ {
		for b := 0; b < g.Banks; b++ {
			if c.dev.OpenRow(r, b) != dram.NoRow || blocked(r, b) || c.dev.EarliestACT(r, b) > now {
				continue
			}
			for _, q := range reqsOf(r, b) {
				if best != nil && q.seq > best.seq {
					break
				}
				if c.dev.CanIssue(dram.Cmd{Kind: dram.CmdACT, Rank: r, Bank: b, Row: q.Addr.Row}, now) {
					best = q
					break
				}
			}
		}
	}
	if best != nil {
		return refChoice{ok: true, seq: best.seq, cmd: dram.Cmd{
			Kind: dram.CmdACT, Rank: best.Addr.Rank, Bank: best.Addr.Bank, Row: best.Addr.Row}}
	}

	// Pass 3: conflict precharge — the bank holding the oldest request among
	// banks whose open row nobody queued wants.
	bestBank := -1
	var bestSeq int64 = math.MaxInt64
	for r := 0; r < g.Ranks; r++ {
		for b := 0; b < g.Banks; b++ {
			open := c.dev.OpenRow(r, b)
			reqs := reqsOf(r, b)
			if open == dram.NoRow || len(reqs) == 0 || blocked(r, b) {
				continue
			}
			if rowCount(r, b, open) > 0 || c.dev.EarliestPRE(r, b) > now {
				continue
			}
			if reqs[0].seq < bestSeq {
				bestSeq = reqs[0].seq
				bestBank = r*g.Banks + b
			}
		}
	}
	if bestBank >= 0 {
		return refChoice{ok: true, seq: -1, cmd: dram.Cmd{
			Kind: dram.CmdPRE, Rank: bestBank / g.Banks, Bank: bestBank % g.Banks}}
	}
	return refChoice{}
}

// checkRegisters asserts the incremental candidate registers against a
// naive recount of the bucket contents.
func checkRegisters(t *testing.T, c *Controller, now int64) {
	t.Helper()
	for name, ix := range map[string]*queueIndex{"read": &c.readIx, "write": &c.writeIx} {
		for r := 0; r < c.geom.Ranks; r++ {
			for b := 0; b < c.geom.Banks; b++ {
				bi := r*c.geom.Banks + b
				open := c.dev.OpenRow(r, b)
				if ix.openRow[bi] != open {
					t.Fatalf("cycle %d: %s openRow mirror r%d/b%d = %d, device says %d",
						now, name, r, b, ix.openRow[bi], open)
				}
				var wantHit *Request
				wantN := int32(0)
				if open != dram.NoRow {
					for _, q := range ix.bucketOf(r, b).reqs {
						if q.Addr.Row == open {
							if wantHit == nil {
								wantHit = q
							}
							wantN++
						}
					}
				}
				if ix.hit[bi] != wantHit || ix.hitN[bi] != wantN {
					t.Fatalf("cycle %d: %s candidate register r%d/b%d = (%v, %d), recount says (%v, %d)",
						now, name, r, b, ix.hit[bi], ix.hitN[bi], wantHit, wantN)
				}
			}
		}
	}
}

// TestFuzzCandidateRegistersMatchFlatRescan drives randomized traffic,
// refreshes, drains, and blocking through controllers over SARP and
// non-SARP devices (closed- and open-row policies), asserting cycle for
// cycle that the register-driven demand scan picks exactly the command the
// flat-rescan reference picks, and that the registers equal a naive
// recount.
func TestFuzzCandidateRegistersMatchFlatRescan(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config fuzz")
	}
	g := dram.Geometry{Ranks: 2, Banks: 4, SubarraysPerBank: 4, RowsPerBank: 32,
		ColumnsPerRow: 4, RowsPerRef: 2}
	const cycles = 20_000
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		sarp := seed%2 == 0
		openRow := seed%3 == 0
		name := fmt.Sprintf("seed%d_sarp%v_openrow%v", seed, sarp, openRow)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tp := timing.DDR3(timing.Config{Density: timing.Gb32, Mode: timing.RefPB})
			dev := dram.MustNew(g, tp, dram.Options{SARP: sarp, Check: true})
			cfg := DefaultConfig()
			cfg.ReadQueueCap, cfg.WriteQueueCap = 16, 16
			cfg.WriteHigh, cfg.WriteLow = 12, 6
			cfg.OpenRow = openRow
			c := NewController(dev, cfg, nil)
			c.SetPolicy(newFuzzPolicy(c, seed*77))

			rng := rand.New(rand.NewSource(seed))
			var cmd dram.Cmd
			for now := int64(0); now < cycles; now++ {
				if rng.Intn(3) == 0 {
					n := 1 + rng.Intn(3)
					for i := 0; i < n; i++ {
						a := dram.Addr{
							Rank: rng.Intn(g.Ranks),
							Bank: rng.Intn(g.Banks),
							Row:  rng.Intn(10), // tight row set: hits, conflicts, merges
							Col:  rng.Intn(g.ColumnsPerRow),
						}
						req := c.NewRequest()
						req.Addr = a
						if rng.Intn(3) == 0 {
							req.IsWrite = true
							c.EnqueueWrite(req, now)
						} else {
							c.EnqueueRead(req, now)
						}
					}
				}
				checkRegisters(t, c, now)

				// The production scan is pure (modulo idempotent snapshot
				// refreshes and a drain counter), so probing it before the
				// real Tick observes exactly the decision Tick will act on.
				want := referenceChooseDemand(c, now)
				req, _, ok := c.chooseDemandCached(now, &cmd)
				if ok != want.ok {
					t.Fatalf("cycle %d: scan found=%v, reference found=%v (ref %+v)", now, ok, want.ok, want)
				}
				if ok {
					gotSeq := int64(-1)
					if req != nil {
						gotSeq = req.seq
					}
					if cmd != want.cmd || gotSeq != want.seq {
						t.Fatalf("cycle %d: scan chose %v (seq %d), reference chose %v (seq %d)",
							now, cmd, gotSeq, want.cmd, want.seq)
					}
				}
				c.Tick(now)
			}
			if err := dev.Checker().Err(); err != nil {
				t.Fatalf("protocol violations: %v", err)
			}
		})
	}
}
