package sched

import (
	"math/bits"

	"dsarp/internal/dram"
)

// Mapper translates flat physical line addresses into channel + DRAM
// coordinates. The interleaving is line-granular across channels, then
// column, bank, rank, row:
//
//	channel = line % channels
//	col     = (line / channels) % columns
//	bank    = (line / channels / columns) % banks
//	rank    = (line / channels / columns / banks) % ranks
//	row     = permute(rest % rows)
//
// Consecutive lines alternate channels and then fill a row, giving streaming
// workloads both channel parallelism and row-buffer locality; distinct rows
// spread across banks for bank-level parallelism.
//
// The row index is bit-reversed (when the row count is a power of two), the
// usual row-scrambling controllers apply: without it a workload with a
// small footprint occupies a few *consecutive* rows, which all fall in one
// subarray — making SARP's subarray-conflict probability degenerate instead
// of scaling as 1/subarrays (paper Table 5).
type Mapper struct {
	Channels int
	Geom     dram.Geometry
}

// permuteRow bit-reverses raw within the row index width. It is an
// involution: permuteRow(permuteRow(x)) == x. Non-power-of-two row counts
// (not used by any shipped geometry) fall back to the identity.
func (m Mapper) permuteRow(raw uint64) uint64 {
	rows := uint64(m.Geom.RowsPerBank)
	if rows&(rows-1) != 0 {
		return raw
	}
	return bits.Reverse64(raw) >> (64 - bits.TrailingZeros64(rows))
}

// LineBytes is the cache line (and DRAM column) size in bytes.
const LineBytes = 64

// Map converts a byte address to its channel index and DRAM address. When
// every level of the hierarchy is a power of two (all shipped geometries),
// the div/mod chain collapses to shifts and masks — Map runs on every DRAM
// request, and five 64-bit divisions by runtime divisors dominate it
// otherwise. Both paths compute the identical mapping.
func (m Mapper) Map(byteAddr uint64) (channel int, a dram.Addr) {
	line := byteAddr / LineBytes
	ch := uint64(m.Channels)
	cols := uint64(m.Geom.ColumnsPerRow)
	banks := uint64(m.Geom.Banks)
	ranks := uint64(m.Geom.Ranks)
	rows := uint64(m.Geom.RowsPerBank)
	if ch&(ch-1) == 0 && cols&(cols-1) == 0 && banks&(banks-1) == 0 &&
		ranks&(ranks-1) == 0 && rows&(rows-1) == 0 {
		channel = int(line & (ch - 1))
		line >>= uint(bits.TrailingZeros64(ch))
		a.Col = int(line & (cols - 1))
		line >>= uint(bits.TrailingZeros64(cols))
		a.Bank = int(line & (banks - 1))
		line >>= uint(bits.TrailingZeros64(banks))
		a.Rank = int(line & (ranks - 1))
		line >>= uint(bits.TrailingZeros64(ranks))
		a.Row = int(m.permuteRow(line & (rows - 1)))
		return channel, a
	}
	channel = int(line % ch)
	line /= ch
	a.Col = int(line % cols)
	line /= cols
	a.Bank = int(line % banks)
	line /= banks
	a.Rank = int(line % ranks)
	line /= ranks
	a.Row = int(m.permuteRow(line % uint64(m.Geom.RowsPerBank)))
	return channel, a
}

// Unmap reverses Map (used in tests to verify the mapping is a bijection).
func (m Mapper) Unmap(channel int, a dram.Addr) uint64 {
	line := m.permuteRow(uint64(a.Row))
	line = line*uint64(m.Geom.Ranks) + uint64(a.Rank)
	line = line*uint64(m.Geom.Banks) + uint64(a.Bank)
	line = line*uint64(m.Geom.ColumnsPerRow) + uint64(a.Col)
	line = line*uint64(m.Channels) + uint64(channel)
	return line * LineBytes
}
