package sched

import (
	"math/rand"
	"testing"

	"dsarp/internal/dram"
	"dsarp/internal/timing"
)

func testGeom() dram.Geometry {
	return dram.Geometry{Ranks: 1, Banks: 4, SubarraysPerBank: 4, RowsPerBank: 64,
		ColumnsPerRow: 8, RowsPerRef: 2}
}

func newCtrl(t *testing.T) (*Controller, *dram.Device) {
	t.Helper()
	tp := timing.DDR3(timing.Config{Mode: timing.RefNone})
	dev, err := dram.New(testGeom(), tp, dram.Options{Check: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewController(dev, DefaultConfig(), nil), dev
}

func read(core int, a dram.Addr, done func(int64)) *Request {
	return &Request{Core: core, Addr: a, OnComplete: done}
}

func write(core int, a dram.Addr) *Request {
	return &Request{Core: core, IsWrite: true, Addr: a}
}

func runCycles(c *Controller, from, n int64) int64 {
	for i := int64(0); i < n; i++ {
		c.Tick(from + i)
	}
	return from + n
}

func TestReadCompletes(t *testing.T) {
	c, _ := newCtrl(t)
	var doneAt int64 = -1
	if !c.EnqueueRead(read(0, dram.Addr{Row: 3, Col: 1}, func(now int64) { doneAt = now }), 0) {
		t.Fatal("enqueue rejected")
	}
	runCycles(c, 0, 200)
	if doneAt < 0 {
		t.Fatal("read never completed")
	}
	st := c.Stats()
	if st.ReadsServed != 1 {
		t.Fatalf("ReadsServed = %d", st.ReadsServed)
	}
	// Minimum latency: ACT + tRCD + CL + BL.
	tp := c.Timing()
	min := int64(tp.TRCD + tp.CL + tp.BL)
	if lat := st.ReadLatencySum; lat < min {
		t.Errorf("read latency %d below physical minimum %d", lat, min)
	}
}

func TestReadForwardedFromWriteQueue(t *testing.T) {
	c, _ := newCtrl(t)
	a := dram.Addr{Row: 3, Col: 1}
	c.EnqueueWrite(write(0, a), 0)
	var done bool
	c.EnqueueRead(read(0, a, func(int64) { done = true }), 0)
	if c.Stats().ForwardedReads != 1 {
		t.Fatal("read to a queued write address should forward")
	}
	runCycles(c, 0, 5)
	if !done {
		t.Error("forwarded read never completed")
	}
}

func TestWriteMerging(t *testing.T) {
	c, _ := newCtrl(t)
	a := dram.Addr{Row: 3, Col: 1}
	c.EnqueueWrite(write(0, a), 0)
	c.EnqueueWrite(write(0, a), 0)
	if c.WriteQueueLen() != 1 {
		t.Errorf("write queue len = %d after merge, want 1", c.WriteQueueLen())
	}
	if c.Stats().MergedWrites != 1 {
		t.Errorf("MergedWrites = %d", c.Stats().MergedWrites)
	}
}

func TestReadQueueBackpressure(t *testing.T) {
	c, _ := newCtrl(t)
	cfg := DefaultConfig()
	for i := 0; i < cfg.ReadQueueCap; i++ {
		if !c.EnqueueRead(read(0, dram.Addr{Row: i % 16, Col: i % 8}, nil), 0) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if c.EnqueueRead(read(0, dram.Addr{Row: 1, Col: 1}, nil), 0) {
		t.Error("enqueue accepted beyond capacity")
	}
	if c.Stats().ReadQueueFullStalls != 1 {
		t.Errorf("ReadQueueFullStalls = %d", c.Stats().ReadQueueFullStalls)
	}
}

func TestWriteBatchingWatermarks(t *testing.T) {
	c, _ := newCtrl(t)
	cfg := DefaultConfig()
	// Fill the write queue to the high watermark: writeback mode begins.
	now := int64(0)
	for i := 0; i < cfg.WriteHigh; i++ {
		a := dram.Addr{Bank: i % 4, Row: (i / 4) % 16, Col: i % 8}
		if !c.EnqueueWrite(write(0, a), now) {
			t.Fatalf("write %d rejected", i)
		}
	}
	c.Tick(now)
	if !c.WriteMode() {
		t.Fatal("writeback mode should start at the high watermark")
	}
	// Drain: writeback mode must end at (or below) the low watermark.
	for i := int64(1); i < 5000 && c.WriteMode(); i++ {
		c.Tick(now + i)
	}
	if c.WriteMode() {
		t.Fatal("writeback mode never ended")
	}
	if c.WriteQueueLen() > cfg.WriteLow {
		t.Errorf("write queue %d above low watermark %d at drain end", c.WriteQueueLen(), cfg.WriteLow)
	}
	if c.Stats().WriteModeEntries != 1 {
		t.Errorf("WriteModeEntries = %d", c.Stats().WriteModeEntries)
	}
}

func TestRowHitsServedBeforeConflictingActivation(t *testing.T) {
	c, _ := newCtrl(t)
	done := make([]int64, 3)
	// Two hits to row 3 and one conflicting request to row 4, same bank.
	c.EnqueueRead(read(0, dram.Addr{Row: 3, Col: 0}, func(n int64) { done[0] = n }), 0)
	c.EnqueueRead(read(0, dram.Addr{Row: 4, Col: 0}, func(n int64) { done[1] = n }), 0)
	c.EnqueueRead(read(0, dram.Addr{Row: 3, Col: 1}, func(n int64) { done[2] = n }), 0)
	runCycles(c, 0, 500)
	if done[0] == 0 || done[1] == 0 || done[2] == 0 {
		t.Fatalf("not all reads completed: %v", done)
	}
	if !(done[2] < done[1]) {
		t.Errorf("FR-FCFS should serve the row hit first: %v", done)
	}
}

func TestClosedRowAutoprecharge(t *testing.T) {
	c, dev := newCtrl(t)
	c.EnqueueRead(read(0, dram.Addr{Row: 3, Col: 0}, nil), 0)
	runCycles(c, 0, 100)
	if dev.OpenRow(0, 0) != dram.NoRow {
		t.Error("closed-row policy should auto-precharge after the last hit")
	}
}

func TestOpenRowKeepsRowOpen(t *testing.T) {
	tp := timing.DDR3(timing.Config{Mode: timing.RefNone})
	dev := dram.MustNew(testGeom(), tp, dram.Options{Check: true})
	cfg := DefaultConfig()
	cfg.OpenRow = true
	c := NewController(dev, cfg, nil)
	c.EnqueueRead(read(0, dram.Addr{Row: 3, Col: 0}, nil), 0)
	runCycles(c, 0, 100)
	if dev.OpenRow(0, 0) != 3 {
		t.Errorf("open-row policy should keep row 3 open, got %d", dev.OpenRow(0, 0))
	}
}

func TestRequestConservationUnderRandomLoad(t *testing.T) {
	// Property: every admitted request completes exactly once, under a
	// random mix of reads and writes with backpressure retries.
	c, dev := newCtrl(t)
	rng := rand.New(rand.NewSource(7))
	g := testGeom()

	const want = 500
	injectedReads, injectedWrites := 0, 0
	completions := 0
	now := int64(0)
	for injectedReads+injectedWrites < want || !c.Drained() {
		if injectedReads+injectedWrites < want && rng.Intn(3) > 0 {
			a := dram.Addr{
				Bank: rng.Intn(g.Banks),
				Row:  rng.Intn(g.RowsPerBank),
				Col:  rng.Intn(g.ColumnsPerRow),
			}
			if rng.Intn(4) == 0 {
				if c.EnqueueWrite(write(0, a), now) {
					injectedWrites++
				}
			} else {
				if c.EnqueueRead(read(0, a, func(int64) { completions++ }), now) {
					injectedReads++
				}
			}
		}
		c.Tick(now)
		now++
		if now > 1_000_000 {
			t.Fatal("load never drained")
		}
	}
	st := c.Stats()
	// ReadsServed counts every completed read, forwarded ones included.
	if int(st.ReadsServed) != injectedReads {
		t.Errorf("reads served = %d, injected %d", st.ReadsServed, injectedReads)
	}
	if completions != injectedReads {
		t.Errorf("read completions = %d, injected %d", completions, injectedReads)
	}
	if int(st.WritesServed)+int(st.MergedWrites) != injectedWrites {
		t.Errorf("writes served+merged = %d, injected %d", st.WritesServed+st.MergedWrites, injectedWrites)
	}
	if err := dev.Checker().Err(); err != nil {
		t.Fatalf("protocol violations under random load: %v", err)
	}
}

func TestStatsSubAndAdd(t *testing.T) {
	a := Stats{ReadsServed: 10, WritesServed: 5, ReadLatencySum: 100}
	b := Stats{ReadsServed: 4, WritesServed: 2, ReadLatencySum: 30}
	d := a.Sub(b)
	if d.ReadsServed != 6 || d.WritesServed != 3 || d.ReadLatencySum != 70 {
		t.Errorf("Sub: %+v", d)
	}
	var s Stats
	s.Add(a)
	s.Add(b)
	if s.ReadsServed != 14 {
		t.Errorf("Add: %+v", s)
	}
	if got := d.AvgReadLatency(); got != 70.0/6 {
		t.Errorf("AvgReadLatency = %v", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	tp := timing.DDR3(timing.Config{Mode: timing.RefNone})
	dev := dram.MustNew(testGeom(), tp, dram.Options{})
	defer func() {
		if recover() == nil {
			t.Error("NewController accepted low watermark >= high")
		}
	}()
	NewController(dev, Config{ReadQueueCap: 8, WriteQueueCap: 8, WriteHigh: 4, WriteLow: 4}, nil)
}
