package sched

import (
	"fmt"
	"math"

	"dsarp/internal/snap"
)

// AppendState writes the controller's mutable state: admission counters,
// write-mode flag, both request queues (bucket by bucket, in active-list
// order, requests in arrival order), the two in-flight FIFOs, the cached
// demand-search miss, the blocked/demand/zero epochs, and statistics.
//
// The queue indexes' candidate registers (hit/hitN/openRow/oldSeq/rows),
// the bankPending occupancy slabs, and the write-address set are all
// derived from the queued requests plus the device's open rows, so
// LoadState rebuilds them by replaying add() — but the miss cache is NOT
// derived: missNextTry is tightened by noteArrival on every admission,
// and no rescan can recover it, so dropping it would make a restored
// controller scan on cycles the cold run provably skipped and fork the
// engines' SteppedCycles accounting.
func (c *Controller) AppendState(w *snap.Writer) {
	w.I64(c.seq)
	w.Bool(c.wmode)
	w.I64(c.inflightStamp)
	w.U64(c.blockedEpoch)
	w.U64(c.demandEpoch)
	w.U64(c.pending.zeroEpoch)
	w.Bool(c.missValid)
	w.I64(c.missNextTry)
	w.U64(c.missEpoch)
	c.appendStats(w)
	c.appendQueue(w, &c.readIx)
	c.appendQueue(w, &c.writeIx)
	appendReqList(w, c.inflightRd[c.rdHead:])
	appendReqList(w, c.inflightFwd[c.fwdHead:])
}

func (c *Controller) appendStats(w *snap.Writer) {
	s := &c.stats
	for _, v := range []int64{
		s.ReadsServed, s.WritesServed, s.ReadLatencySum, s.WriteLatencySum,
		s.DemandSlots, s.RefreshSlots, s.ForwardedReads, s.MergedWrites,
		s.ReadQueueFullStalls, s.WriteQueueFullStalls,
		s.WriteModeEntries, s.WriteModeCycles, s.OpportunisticDrain,
	} {
		w.I64(v)
	}
}

func (c *Controller) loadStats(r *snap.Reader) {
	s := &c.stats
	for _, p := range []*int64{
		&s.ReadsServed, &s.WritesServed, &s.ReadLatencySum, &s.WriteLatencySum,
		&s.DemandSlots, &s.RefreshSlots, &s.ForwardedReads, &s.MergedWrites,
		&s.ReadQueueFullStalls, &s.WriteQueueFullStalls,
		&s.WriteModeEntries, &s.WriteModeCycles, &s.OpportunisticDrain,
	} {
		*p = r.I64()
	}
}

// appendQueue walks the buckets in active-list order so a replayed
// rebuild reproduces the active list exactly (its order is behaviorally
// arbitrary, but preserving it keeps restored state literally identical).
func (c *Controller) appendQueue(w *snap.Writer, ix *queueIndex) {
	w.Int(len(ix.active))
	for _, bi := range ix.active {
		w.Int(bi)
		appendReqList(w, ix.buckets[bi].reqs)
	}
}

func appendReqList(w *snap.Writer, reqs []*Request) {
	w.Int(len(reqs))
	for _, req := range reqs {
		w.I64(req.ID)
		w.Int(req.Core)
		w.Bool(req.IsWrite)
		w.Int(req.Addr.Rank)
		w.Int(req.Addr.Bank)
		w.Int(req.Addr.Row)
		w.Int(req.Addr.Col)
		w.I64(req.Arrive)
		w.I64(req.Done)
		w.I64(req.seq)
		w.I64(req.stamp)
		w.U64(req.Tag)
		w.Bool(req.OnComplete != nil)
	}
}

// Resolver maps a read request's (core, tag) back to its completion
// callback; sim provides one closing over the restored cache slices.
type Resolver func(core int, tag uint64) (func(now int64), error)

func loadReqList(r *snap.Reader, resolve Resolver) ([]*Request, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	reqs := make([]*Request, 0, n)
	for i := 0; i < n; i++ {
		req := &Request{}
		req.ID = r.I64()
		req.Core = r.Int()
		req.IsWrite = r.Bool()
		req.Addr.Rank = r.Int()
		req.Addr.Bank = r.Int()
		req.Addr.Row = r.Int()
		req.Addr.Col = r.Int()
		req.Arrive = r.I64()
		req.Done = r.I64()
		req.seq = r.I64()
		req.stamp = r.I64()
		req.Tag = r.U64()
		hasCB := r.Bool()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if hasCB {
			fn, err := resolve(req.Core, req.Tag)
			if err != nil {
				return nil, fmt.Errorf("sched: request %d: %w", req.ID, err)
			}
			req.OnComplete = fn
		}
		reqs = append(reqs, req)
	}
	return reqs, nil
}

// LoadState restores the state written by AppendState onto a freshly
// built controller over an already-restored device (the queue rebuild
// reads the device's open rows). The attached policy's state is restored
// separately, after the controller. resolve re-links read completion
// callbacks; the owning cores and slices must be restored first.
func (c *Controller) LoadState(r *snap.Reader, resolve Resolver) error {
	c.seq = r.I64()
	c.wmode = r.Bool()
	c.inflightStamp = r.I64()
	blockedEpoch := r.U64()
	demandEpoch := r.U64()
	zeroEpoch := r.U64()
	c.missValid = r.Bool()
	c.missNextTry = r.I64()
	c.missEpoch = r.U64()
	c.loadStats(r)

	// Reset the queues and every structure derived from them, then replay
	// admissions. The open-row mirrors must be seeded from the device
	// before any add(): add consults them to maintain the hit registers.
	c.readIx = newQueueIndex(c.geom.Ranks, c.geom.Banks)
	c.writeIx = newQueueIndex(c.geom.Ranks, c.geom.Banks)
	for bi := range c.readIx.openRow {
		row := c.dev.OpenRow(bi/c.geom.Banks, bi%c.geom.Banks)
		c.readIx.openRow[bi] = row
		c.writeIx.openRow[bi] = row
	}
	c.writeAddrs = make(map[uint64]struct{}, c.cfg.WriteQueueCap)
	// Zero the occupancy slabs in place: policies cache the demand slab
	// pointer at construction, so the backing arrays must survive.
	for i := range c.pending.demand {
		c.pending.reads[i], c.pending.writes[i], c.pending.demand[i] = 0, 0, 0
	}
	for i := range c.pending.rank {
		c.pending.rank[i] = 0
	}
	if err := c.loadQueue(r, &c.readIx, resolve); err != nil {
		return err
	}
	if err := c.loadQueue(r, &c.writeIx, resolve); err != nil {
		return err
	}
	var err error
	c.inflightRd, err = loadReqList(r, resolve)
	if err != nil {
		return err
	}
	c.inflightFwd, err = loadReqList(r, resolve)
	if err != nil {
		return err
	}
	c.rdHead, c.fwdHead = 0, 0
	c.inflightMin = math.MaxInt64
	if len(c.inflightRd) > 0 {
		c.inflightMin = c.inflightRd[0].Done
	}
	if len(c.inflightFwd) > 0 && c.inflightFwd[0].Done < c.inflightMin {
		c.inflightMin = c.inflightFwd[0].Done
	}

	// The replay bumped the derived epochs; pin them back to the cold
	// run's exact values so policy caches keyed on them stay coherent.
	c.blockedEpoch = blockedEpoch
	c.demandEpoch = demandEpoch
	c.pending.zeroEpoch = zeroEpoch
	c.blockedInit = false
	c.evValid = false
	c.reqFree = nil
	return r.Err()
}

func (c *Controller) loadQueue(r *snap.Reader, ix *queueIndex, resolve Resolver) error {
	nb := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nb; i++ {
		bi := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if bi < 0 || bi >= len(ix.buckets) {
			return fmt.Errorf("sched: snapshot bucket %d out of range", bi)
		}
		reqs, err := loadReqList(r, resolve)
		if err != nil {
			return err
		}
		for _, req := range reqs {
			ix.add(req)
			c.pending.add(req, 1)
			if req.IsWrite {
				c.writeAddrs[packAddr(req.Addr)] = struct{}{}
			}
		}
	}
	return r.Err()
}
