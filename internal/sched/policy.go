package sched

import (
	"math"

	"dsarp/internal/dram"
	"dsarp/internal/snap"
	"dsarp/internal/timing"
)

// RefreshPolicy decides when and where refresh commands are issued. The
// controller gives the policy one chance per DRAM cycle to claim the
// channel's command-bus slot; all the paper's mechanisms (REFab, REFpb,
// Elastic, DARP, DSARP, FGR, AR) are implementations of this interface in
// package core.
type RefreshPolicy interface {
	// Name identifies the policy in results tables.
	Name() string

	// Tick may issue at most one command through the View (a refresh, or a
	// precharge that drains a bank ahead of a pending refresh). demandReady
	// reports whether the controller has a demand command it could issue
	// this cycle — the "Can issue a demand request?" decision point of the
	// paper's Fig. 8. Tick returns true iff it consumed the command slot.
	Tick(now int64, demandReady bool) bool

	// RankBlocked reports that demand to a whole rank must be held while an
	// all-bank refresh is pending (drain-for-refresh).
	RankBlocked(rank int) bool

	// BankBlocked reports that demand to one bank must be held while a
	// per-bank refresh is pending on it.
	BankBlocked(rank, bank int) bool

	// NextDeadline returns the earliest cycle >= now at which the policy's
	// Tick could stop being a no-op: issue or attempt a command, change a
	// RankBlocked/BankBlocked answer, consume randomness, or mutate any
	// internal state beyond the per-cycle accounting Skip replays. The
	// clock-skipping engine only skips a cycle when every component's next
	// event lies beyond it, so the bound may assume no enqueue, demand
	// issue, or read completion happens before the returned cycle. It is a
	// lower bound: answering earlier than the true next action only costs a
	// fallback to cycle stepping, but answering later would desynchronize
	// the two engines — never miss an event.
	NextDeadline(now int64) int64

	// Skip informs the policy that its Ticks for cycles [from, to) were
	// elided — NextDeadline promised each would have been a no-op — so it
	// can advance per-cycle accounting (e.g. Elastic's idle-run counter)
	// exactly as the omitted Ticks would have.
	Skip(from, to int64)
}

// View is the controller surface a RefreshPolicy operates through.
type View interface {
	// Dev is the DRAM device behind this channel.
	Dev() *dram.Device
	// Timing is the active timing parameter set.
	Timing() timing.Params
	// PendingDemand is the number of queued reads+writes for a bank.
	PendingDemand(rank, bank int) int
	// PendingDemandSlab is the live per-bank reads+writes table, indexed by
	// flat bank id rank*Banks+bank. Policies that sweep every bank each
	// decision (DARP's eligibility rebuild) read it directly instead of
	// paying an interface call per bank. The returned slice is stable for
	// the controller's lifetime — policies may cache it at construction —
	// but must never mutate it.
	PendingDemandSlab() []int
	// PendingRankDemand is the number of queued reads+writes for a whole
	// rank — the O(1) form of the per-bank sum that idle-rank checks
	// (Elastic, AR, Pausing) would otherwise rebuild every cycle.
	PendingRankDemand(rank int) int
	// PendingReads is the number of queued reads for a bank.
	PendingReads(rank, bank int) int
	// DemandEpoch is a counter the controller bumps whenever any
	// PendingDemand/PendingRankDemand/PendingReads answer may have changed
	// (a request was admitted or left a queue). Policies use it to cache
	// demand-dependent scans across the cycles in between.
	DemandEpoch() uint64
	// DemandZeroEpoch is a counter that bumps exactly when some bank's or
	// rank's pending-demand count crosses 0 <-> nonzero. Policies whose
	// cached decisions depend only on which banks/ranks are idle key on it
	// instead of DemandEpoch: under saturated traffic the counts move every
	// cycle but rarely touch zero, so the cache survives.
	DemandZeroEpoch() uint64
	// WriteMode reports whether the controller is draining a write batch.
	WriteMode() bool
	// NoteBlockedChanged must be called by the attached refresh policy
	// whenever any RankBlocked or BankBlocked answer may have changed.
	// Policies unblock on their own schedule without issuing a command, so
	// the controller keeps a blocked epoch to know when a cached scheduling
	// decision that honored the old block state must be re-derived; owning
	// the counter (instead of polling the policy through the interface
	// every cycle) keeps the per-cycle checks to one field read. A policy
	// may call spuriously (that only costs a re-scan) but must never miss a
	// change.
	NoteBlockedChanged()
	// IssueCmd issues a command on behalf of the policy, consuming the
	// cycle's command slot. The command must satisfy Dev().CanIssue.
	IssueCmd(cmd dram.Cmd, now int64)
}

// NoRefresh is the ideal baseline: refresh is never performed.
type NoRefresh struct{}

// Name implements RefreshPolicy.
func (NoRefresh) Name() string { return "NoREF" }

// Tick implements RefreshPolicy: it never claims the slot.
func (NoRefresh) Tick(int64, bool) bool { return false }

// RankBlocked implements RefreshPolicy.
func (NoRefresh) RankBlocked(int) bool { return false }

// BankBlocked implements RefreshPolicy.
func (NoRefresh) BankBlocked(int, int) bool { return false }

// NextDeadline implements RefreshPolicy: there is never anything to do.
func (NoRefresh) NextDeadline(int64) int64 { return math.MaxInt64 }

// Skip implements RefreshPolicy.
func (NoRefresh) Skip(int64, int64) {}

// AppendState implements snap.Codec: NoRefresh has no state.
func (NoRefresh) AppendState(*snap.Writer) {}

// LoadState implements snap.Codec.
func (NoRefresh) LoadState(*snap.Reader) error { return nil }
