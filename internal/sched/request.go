// Package sched implements the memory controller: per-channel read/write
// request queues, FR-FCFS scheduling with a closed-row page policy, batched
// write draining with high/low watermarks, and the hook through which a
// refresh policy (internal/core) claims command-bus slots.
//
// The configuration mirrors Table 1 of Chang et al. (HPCA 2014): 64-entry
// read and write queues, FR-FCFS, writes drained in batches down to a low
// watermark of 32, closed-row policy.
package sched

import (
	"dsarp/internal/dram"
)

// Request is one memory request (an LLC miss or writeback) destined for a
// single DRAM channel.
type Request struct {
	ID      int64
	Core    int
	IsWrite bool
	Addr    dram.Addr
	Arrive  int64 // cycle the request entered the controller
	Done    int64 // cycle the last data beat transferred (reads) or the write was issued

	// OnComplete, if non-nil, is invoked when a read's data returns (used by
	// the cache/CPU to unblock the miss). Writes complete silently.
	OnComplete func(now int64)

	// Tag is the requester's identity for OnComplete — the pre-mapping byte
	// address of the line being filled. Callbacks do not serialize, so a
	// restored snapshot re-links OnComplete by asking the owning core's
	// cache slice for the outstanding fill on Tag's line.
	Tag uint64

	// seq is the controller-assigned admission order. FR-FCFS age comparisons
	// across per-bank buckets use it to recover the flat queue order the seed
	// controller scanned in.
	seq int64

	// rowNext chains the queued requests of one (bank, row) in age order —
	// the per-row FIFO behind the queueIndex candidate registers. Owned by
	// the bucket the request is queued in; nil while unqueued.
	rowNext *Request

	// stamp is the in-flight admission order. The controller keeps issued
	// and forwarded reads in separate FIFOs (each monotone in Done) and
	// merges completions by stamp, reproducing the insertion-order callback
	// sequence of a flat in-flight list without rescanning it.
	stamp int64
}

// Latency is the request's queueing+service latency in DRAM cycles.
func (r *Request) Latency() int64 { return r.Done - r.Arrive }

// bankPending tracks per-bank queued demand so refresh policies can make
// O(1) idleness decisions (DARP monitors "bank request queues' occupancies",
// paper §4.2.1).
type bankPending struct {
	banks  int
	reads  []int
	writes []int
	demand []int // per-bank reads+writes totals (the slab policies scan)
	rank   []int // per-rank reads+writes totals

	// zeroEpoch counts emptiness transitions: it bumps exactly when some
	// bank's or rank's demand count crosses 0 <-> nonzero. Policies whose
	// decisions depend only on which banks are idle (DARP's pull-in
	// eligibility) key their caches on it, so steady saturated traffic —
	// where counts move but never touch zero — does not force rebuilds the
	// way the full demand epoch would.
	zeroEpoch uint64
}

func newBankPending(ranks, banks int) *bankPending {
	n := ranks * banks
	return &bankPending{banks: banks, reads: make([]int, n), writes: make([]int, n),
		demand: make([]int, n), rank: make([]int, ranks)}
}

func (p *bankPending) idx(rank, bank int) int { return rank*p.banks + bank }

func (p *bankPending) add(r *Request, delta int) {
	i := p.idx(r.Addr.Rank, r.Addr.Bank)
	if r.IsWrite {
		p.writes[i] += delta
	} else {
		p.reads[i] += delta
	}
	p.demand[i] += delta
	p.rank[r.Addr.Rank] += delta
	if p.demand[i] == 0 || p.demand[i] == delta || p.rank[r.Addr.Rank] == 0 || p.rank[r.Addr.Rank] == delta {
		p.zeroEpoch++
	}
}

// Demand is the total queued demand (reads+writes) for a bank.
func (p *bankPending) Demand(rank, bank int) int {
	return p.demand[p.idx(rank, bank)]
}

// Rank is the total queued demand (reads+writes) for a whole rank.
func (p *bankPending) Rank(rank int) int { return p.rank[rank] }

// Reads is the queued read count for a bank.
func (p *bankPending) Reads(rank, bank int) int { return p.reads[p.idx(rank, bank)] }

// Writes is the queued write count for a bank.
func (p *bankPending) Writes(rank, bank int) int { return p.writes[p.idx(rank, bank)] }
