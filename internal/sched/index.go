package sched

// queueIndex holds one request queue (read or write) bucketed per
// (rank, bank), replacing the seed controller's flat slice. Each bucket
// keeps its requests in arrival order and a row→count table, so FR-FCFS can
// answer "oldest row hit for the open row", "any other hit to this row"
// (auto-precharge) and "anyone queued for the open row" (conflict PRE)
// without scanning the whole queue. The active list enumerates nonempty
// buckets so scheduling scans skip idle banks entirely; its order is
// arbitrary — FR-FCFS age ordering is recovered via Request.seq.
type queueIndex struct {
	banks   int
	buckets []bucket
	active  []int // indices of nonempty buckets, unordered
	n       int   // total queued requests across all buckets
}

// bucket is the per-(rank,bank) request list. rows is a small association
// list rather than a map: buckets hold a handful of requests (the 64-entry
// queue spreads over 16 banks), so linear probes beat map overhead.
type bucket struct {
	reqs []*Request // arrival (seq) order
	rows []rowCount // row -> number of queued requests for it
	apos int        // position in queueIndex.active, -1 when empty
}

type rowCount struct {
	row int
	n   int
}

func newQueueIndex(ranks, banks int) queueIndex {
	ix := queueIndex{banks: banks, buckets: make([]bucket, ranks*banks)}
	for i := range ix.buckets {
		ix.buckets[i].apos = -1
	}
	return ix
}

func (ix *queueIndex) bucketOf(rank, bank int) *bucket {
	return &ix.buckets[rank*ix.banks+bank]
}

func (ix *queueIndex) add(req *Request) {
	bi := req.Addr.Rank*ix.banks + req.Addr.Bank
	b := &ix.buckets[bi]
	if len(b.reqs) == 0 {
		b.apos = len(ix.active)
		ix.active = append(ix.active, bi)
	}
	b.reqs = append(b.reqs, req)
	b.addRow(req.Addr.Row)
	ix.n++
}

// remove deletes req from its bucket, preserving arrival order. It panics
// if the request is not queued — the controller only removes requests it
// just scheduled, so absence is a bookkeeping bug.
func (ix *queueIndex) remove(req *Request) {
	bi := req.Addr.Rank*ix.banks + req.Addr.Bank
	b := &ix.buckets[bi]
	for i, r := range b.reqs {
		if r == req {
			b.reqs = append(b.reqs[:i], b.reqs[i+1:]...)
			b.removeRow(req.Addr.Row)
			ix.n--
			if len(b.reqs) == 0 {
				last := ix.active[len(ix.active)-1]
				ix.active[b.apos] = last
				ix.buckets[last].apos = b.apos
				ix.active = ix.active[:len(ix.active)-1]
				b.apos = -1
			}
			return
		}
	}
	panic("sched: request not queued")
}

func (b *bucket) addRow(row int) {
	for i := range b.rows {
		if b.rows[i].row == row {
			b.rows[i].n++
			return
		}
	}
	b.rows = append(b.rows, rowCount{row: row, n: 1})
}

func (b *bucket) removeRow(row int) {
	for i := range b.rows {
		if b.rows[i].row == row {
			b.rows[i].n--
			if b.rows[i].n == 0 {
				b.rows[i] = b.rows[len(b.rows)-1]
				b.rows = b.rows[:len(b.rows)-1]
			}
			return
		}
	}
	panic("sched: row count underflow")
}

// rowCount returns how many queued requests in the bucket target row.
func (b *bucket) rowCount(row int) int {
	for i := range b.rows {
		if b.rows[i].row == row {
			return b.rows[i].n
		}
	}
	return 0
}

// oldestForRow returns the oldest queued request targeting row, or nil.
func (b *bucket) oldestForRow(row int) *Request {
	for _, r := range b.reqs {
		if r.Addr.Row == row {
			return r
		}
	}
	return nil
}
