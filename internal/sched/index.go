package sched

import "math"

// queueIndex holds one request queue (read or write) bucketed per
// (rank, bank), replacing the seed controller's flat slice. Each bucket
// keeps its requests in arrival order and a row→FIFO table chaining the
// requests of each row in age order. The FR-FCFS candidate registers live
// in parallel slabs indexed by flat bank id — the oldest request targeting
// the bank's open row (hit), the count of queued requests for that row
// (hitN), the bank's open-row mirror, and the seq of the bank's oldest
// request (oldSeq) — so the demand scan reads a few contiguous arrays
// instead of pulling a cache line per bucket. The registers are maintained
// incrementally on enqueue, dequeue, row-open, and row-close. The active
// list enumerates nonempty buckets so scheduling scans skip idle banks
// entirely; its order is arbitrary — FR-FCFS age ordering is recovered via
// Request.seq.
type queueIndex struct {
	banks   int
	buckets []bucket
	active  []int // indices of nonempty buckets, unordered
	n       int   // total queued requests across all buckets

	// Candidate-register slabs, indexed by flat bank id (rank*banks+bank).
	hit     []*Request // oldest queued request for the bank's open row
	hitN    []int32    // queued requests for the bank's open row
	openRow []int      // mirror of the device's open row; noOpenRow when precharged
	oldSeq  []int64    // seq of the bank's oldest request; MaxInt64 when empty
}

// bucket is the per-(rank,bank) request list. rows is a small association
// list rather than a map: buckets hold a handful of requests (the 64-entry
// queue spreads over 16 banks), so linear probes beat map overhead.
type bucket struct {
	reqs []*Request // arrival (seq) order
	rows []rowList  // row -> FIFO of queued requests for it
	apos int        // position in queueIndex.active, -1 when empty

	rank, bank int // this bucket's coordinates (flat id / banks decomposed)
}

// noOpenRow mirrors dram.NoRow without importing the constant here.
const noOpenRow = -1

// rowList is one row's FIFO: head is the oldest queued request for the row,
// chained through Request.rowNext in age order.
type rowList struct {
	row        int
	n          int
	head, tail *Request
}

func newQueueIndex(ranks, banks int) queueIndex {
	nb := ranks * banks
	ix := queueIndex{
		banks:   banks,
		buckets: make([]bucket, nb),
		hit:     make([]*Request, nb),
		hitN:    make([]int32, nb),
		openRow: make([]int, nb),
		oldSeq:  make([]int64, nb),
	}
	for i := range ix.buckets {
		ix.buckets[i].apos = -1
		ix.buckets[i].rank = i / banks
		ix.buckets[i].bank = i % banks
		ix.openRow[i] = noOpenRow
		ix.oldSeq[i] = math.MaxInt64
	}
	return ix
}

func (ix *queueIndex) bucketOf(rank, bank int) *bucket {
	return &ix.buckets[rank*ix.banks+bank]
}

func (ix *queueIndex) add(req *Request) {
	bi := req.Addr.Rank*ix.banks + req.Addr.Bank
	b := &ix.buckets[bi]
	if len(b.reqs) == 0 {
		b.apos = len(ix.active)
		ix.active = append(ix.active, bi)
		ix.oldSeq[bi] = req.seq
	}
	b.reqs = append(b.reqs, req)
	b.addRow(req)
	if req.Addr.Row == ix.openRow[bi] {
		if ix.hit[bi] == nil {
			ix.hit[bi] = req // the FIFO was empty: the newcomer is the oldest hit
		}
		ix.hitN[bi]++
	}
	ix.n++
}

// remove deletes req from its bucket, preserving arrival order and repairing
// the candidate registers. It panics if the request is not queued — the
// controller only removes requests it just scheduled, so absence is a
// bookkeeping bug.
func (ix *queueIndex) remove(req *Request) {
	bi := req.Addr.Rank*ix.banks + req.Addr.Bank
	b := &ix.buckets[bi]
	for i, r := range b.reqs {
		if r == req {
			b.reqs = append(b.reqs[:i], b.reqs[i+1:]...)
			b.removeRow(req)
			if req.Addr.Row == ix.openRow[bi] {
				ix.hitN[bi]--
				if ix.hit[bi] == req {
					ix.hit[bi] = req.rowNext // next-oldest hit (nil when drained)
				}
			}
			req.rowNext = nil
			ix.n--
			if len(b.reqs) == 0 {
				ix.oldSeq[bi] = math.MaxInt64
				last := ix.active[len(ix.active)-1]
				ix.active[b.apos] = last
				ix.buckets[last].apos = b.apos
				ix.active = ix.active[:len(ix.active)-1]
				b.apos = -1
			} else if i == 0 {
				ix.oldSeq[bi] = b.reqs[0].seq
			}
			return
		}
	}
	panic("sched: request not queued")
}

// onRowOpen records an ACT opening row in the bank: the candidate registers
// load from the row's FIFO.
func (ix *queueIndex) onRowOpen(bi, row int) {
	ix.openRow[bi] = row
	ix.hit[bi], ix.hitN[bi] = nil, 0
	b := &ix.buckets[bi]
	for i := range b.rows {
		if b.rows[i].row == row {
			ix.hit[bi], ix.hitN[bi] = b.rows[i].head, int32(b.rows[i].n)
			return
		}
	}
}

// onRowClose records the bank precharging (PRE or auto-precharge).
func (ix *queueIndex) onRowClose(bi int) {
	ix.openRow[bi] = noOpenRow
	ix.hit[bi], ix.hitN[bi] = nil, 0
}

func (b *bucket) addRow(req *Request) {
	row := req.Addr.Row
	for i := range b.rows {
		if b.rows[i].row == row {
			b.rows[i].tail.rowNext = req
			b.rows[i].tail = req
			b.rows[i].n++
			return
		}
	}
	b.rows = append(b.rows, rowList{row: row, n: 1, head: req, tail: req})
}

func (b *bucket) removeRow(req *Request) {
	row := req.Addr.Row
	for i := range b.rows {
		if b.rows[i].row != row {
			continue
		}
		l := &b.rows[i]
		if l.head == req {
			l.head = req.rowNext
		} else {
			// The scheduler always removes the row's oldest request, so this
			// walk is defensive (and O(row length) at worst).
			prev := l.head
			for prev.rowNext != req {
				prev = prev.rowNext
			}
			prev.rowNext = req.rowNext
			if l.tail == req {
				l.tail = prev
			}
		}
		l.n--
		if l.n == 0 {
			b.rows[i] = b.rows[len(b.rows)-1]
			b.rows = b.rows[:len(b.rows)-1]
		}
		return
	}
	panic("sched: row count underflow")
}
