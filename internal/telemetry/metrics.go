// Package telemetry is the repo's dependency-free observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms; all
// atomic and race-safe) with Prometheus text exposition, a JSONL trace
// flight recorder built on internal/journal, and small log/slog helpers
// shared by the daemons and CLIs.
//
// The registry deliberately implements only what this repo scrapes:
//
//   - Counter / CounterVec — monotone int64 counts, incremented on the
//     serving and orchestration paths (never per simulated cycle);
//   - CounterFunc / GaugeFunc / GaugeVec — read-at-scrape callbacks over
//     counters that already exist elsewhere (runner, store, peer tier),
//     so exposition never double-books state;
//   - Histogram / HistogramVec — fixed upper-bound buckets chosen at
//     registration; Observe is a binary search plus two atomic adds.
//
// Exposition (WritePrometheus / Handler) is the Prometheus text format,
// version 0.0.4: families sorted by name, series in registration order,
// histograms rendered as cumulative _bucket/_sum/_count. The output is
// deterministic for a fixed sequence of updates, which is what lets a
// golden test pin the entire format.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters are monotone).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram counts observations into fixed buckets. Buckets are the
// inclusive upper bounds chosen at registration; an implicit +Inf bucket
// catches the rest. Observe is lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64  // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v: Prometheus buckets are inclusive upper bounds.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// series is one label combination of a family: exactly one of the value
// holders is set, matching the family kind.
type series struct {
	labelValues []string
	c           *Counter
	h           *Histogram
	fn          func() float64
}

// family is one exposition block: a name, a type, and its series.
type family struct {
	name, help, kind string // kind: "counter" | "gauge" | "histogram"
	labels           []string
	buckets          []float64

	mu    sync.Mutex
	order []*series
	index map[string]*series
}

// get returns (creating if needed) the series for the given label values.
func (f *family) get(values []string, mk func() *series) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s: %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.index[key]; ok {
		return s
	}
	s := mk()
	s.labelValues = append([]string(nil), values...)
	f.index[key] = s
	f.order = append(f.order, s)
	return s
}

func (f *family) snapshot() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*series(nil), f.order...)
}

// Registry holds metric families and renders them. All methods are safe
// for concurrent use; registration methods panic on programmer errors
// (duplicate or invalid names, label arity mismatches) exactly once, at
// wiring time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) register(name, help, kind string, buckets []float64, labelNames []string) *family {
	if !validName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic("telemetry: invalid label name " + strconv.Quote(l))
		}
	}
	if kind == "histogram" {
		if len(buckets) == 0 {
			panic("telemetry: histogram " + name + " needs at least one bucket")
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic("telemetry: histogram " + name + " buckets not strictly increasing")
			}
		}
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labelNames...),
		buckets: append([]float64(nil), buckets...),
		index:   map[string]*series{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("telemetry: duplicate metric " + name)
	}
	r.families[name] = f
	return f
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	return f.get(nil, func() *series { return &series{c: &Counter{}} }).c
}

// CounterVec is a counter family with labels; With returns (creating on
// first use) the child for one label-value combination.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", nil, labels)}
}

// With returns the counter for the given label values (one per label).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() *series { return &series{c: &Counter{}} }).c
}

// Func registers one labeled series whose count is read at scrape time —
// for counters maintained elsewhere (see CounterFunc).
func (v *CounterVec) Func(fn func() float64, values ...string) {
	v.f.get(values, func() *series { return &series{fn: fn} })
}

// CounterFunc registers a counter whose value is read at scrape time.
// Use it to expose a count maintained elsewhere without double-booking.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "counter", nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// GaugeFunc registers a gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// GaugeVec is a gauge family with labels whose series are callbacks.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", nil, labels)}
}

// Func registers one labeled series read at scrape time.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	v.f.get(values, func() *series { return &series{fn: fn} })
}

// Histogram registers and returns an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", buckets, nil)
	return f.get(nil, func() *series { return &series{h: newHistogram(f.buckets)} }).h
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled fixed-bucket histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, "histogram", buckets, labels)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() *series { return &series{h: newHistogram(v.f.buckets)} }).h
}

// SimSecondsBuckets are the fixed upper bounds used for per-simulation
// wall-time histograms: store and peer hits land in the millisecond
// buckets, computed simulations in the seconds-to-minutes range.
var SimSecondsBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.snapshot() {
			if f.kind == "histogram" {
				writeHistogram(w, f, s)
				continue
			}
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), s.render())
		}
	}
}

// render formats a counter/gauge series value.
func (s *series) render() string {
	if s.fn != nil {
		return formatFloat(s.fn())
	}
	return strconv.FormatInt(s.c.Value(), 10)
}

func writeHistogram(w io.Writer, f *family, s *series) {
	var cum int64
	for i, bound := range s.h.bounds {
		cum += s.h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelString(f.labels, s.labelValues, "le", formatFloat(bound)), cum)
	}
	cum += s.h.counts[len(s.h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelValues, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(s.h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelValues, "", ""), cum)
}

// labelString renders {k="v",...}, optionally with one extra pair (le),
// or "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at scrape time as text/plain exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
