package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestGoldenExposition pins the entire Prometheus text format for a
// registry exercising every metric kind: HELP/TYPE lines, family sort
// order, series registration order, label rendering and escaping,
// cumulative histogram buckets with +Inf/_sum/_count, and float/int
// value formatting.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()

	reqs := r.Counter("dsarp_requests_total", "Total requests.")
	reqs.Add(41)
	reqs.Inc()

	refused := r.CounterVec("dsarp_refused_total", "Refused requests by reason.", "reason")
	refused.With("queue_full").Add(3)
	refused.With("draining").Inc()

	r.CounterFunc("dsarp_sims_computed_total", "Simulations computed.", func() float64 { return 7 })
	r.GaugeFunc("dsarp_queue_free", "Free queue slots.", func() float64 { return 14.5 })

	jobs := r.GaugeVec("dsarp_jobs", "Jobs by state.", "state")
	jobs.Func(func() float64 { return 2 }, "running")
	jobs.Func(func() float64 { return 5 }, "done")

	h := r.HistogramVec("dsarp_sim_seconds", "Per-simulation wall time.", []float64{0.1, 1, 10}, "source")
	comp := h.With("computed")
	comp.Observe(0.05) // le=0.1
	comp.Observe(0.1)  // boundary: inclusive upper bound, still le=0.1
	comp.Observe(5)    // le=10
	comp.Observe(60)   // +Inf
	h.With("store").Observe(0.02)

	esc := r.CounterVec("dsarp_escape_total", "Weird \\ help\nwith newline.", "path")
	esc.With("a\"b\\c\nd").Inc()

	got := new(strings.Builder)
	r.WritePrometheus(got)

	want := `# HELP dsarp_escape_total Weird \\ help\nwith newline.
# TYPE dsarp_escape_total counter
dsarp_escape_total{path="a\"b\\c\nd"} 1
# HELP dsarp_jobs Jobs by state.
# TYPE dsarp_jobs gauge
dsarp_jobs{state="running"} 2
dsarp_jobs{state="done"} 5
# HELP dsarp_queue_free Free queue slots.
# TYPE dsarp_queue_free gauge
dsarp_queue_free 14.5
# HELP dsarp_refused_total Refused requests by reason.
# TYPE dsarp_refused_total counter
dsarp_refused_total{reason="queue_full"} 3
dsarp_refused_total{reason="draining"} 1
# HELP dsarp_requests_total Total requests.
# TYPE dsarp_requests_total counter
dsarp_requests_total 42
# HELP dsarp_sim_seconds Per-simulation wall time.
# TYPE dsarp_sim_seconds histogram
dsarp_sim_seconds_bucket{source="computed",le="0.1"} 2
dsarp_sim_seconds_bucket{source="computed",le="1"} 2
dsarp_sim_seconds_bucket{source="computed",le="10"} 3
dsarp_sim_seconds_bucket{source="computed",le="+Inf"} 4
dsarp_sim_seconds_sum{source="computed"} 65.15
dsarp_sim_seconds_count{source="computed"} 4
dsarp_sim_seconds_bucket{source="store",le="0.1"} 1
dsarp_sim_seconds_bucket{source="store",le="1"} 1
dsarp_sim_seconds_bucket{source="store",le="10"} 1
dsarp_sim_seconds_bucket{source="store",le="+Inf"} 1
dsarp_sim_seconds_sum{source="store"} 0.02
dsarp_sim_seconds_count{source="store"} 1
# HELP dsarp_sims_computed_total Simulations computed.
# TYPE dsarp_sims_computed_total counter
dsarp_sims_computed_total 7
`
	if got.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

// TestHistogramBuckets checks bucket assignment at and around every
// boundary: Prometheus buckets are inclusive upper bounds.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0, 0.5, 1} { // -> bucket le=1
		h.Observe(v)
	}
	h.Observe(1.001) // -> le=2
	h.Observe(2)     // -> le=2
	h.Observe(4.999) // -> le=5
	h.Observe(5)     // -> le=5
	h.Observe(5.001) // -> +Inf
	h.Observe(1e9)   // -> +Inf

	want := []int64{3, 2, 2, 2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: got %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 9 {
		t.Errorf("Count() = %d, want 9", h.Count())
	}
}

// TestConcurrentUpdates hammers counters and histograms from many
// goroutines (run under -race in CI) and checks totals are exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	vec := r.CounterVec("v_total", "", "who")
	h := r.Histogram("h_seconds", "", []float64{0.5})

	const workers, iters = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				vec.With(name).Inc()
				h.Observe(0.25)
				if i%100 == 0 { // scrape concurrently with updates
					r.WritePrometheus(new(strings.Builder))
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	var vecTotal int64
	for _, name := range []string{"a", "b", "c", "d"} {
		vecTotal += vec.With(name).Value()
	}
	if vecTotal != workers*iters {
		t.Errorf("vec total = %d, want %d", vecTotal, workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if got, want := h.Sum(), 0.25*workers*iters; got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want 0.0.4 exposition", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing series:\n%s", rec.Body.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"duplicate", func(r *Registry) { r.Counter("dup_total", ""); r.Counter("dup_total", "") }},
		{"bad name", func(r *Registry) { r.Counter("9starts_with_digit", "") }},
		{"bad label", func(r *Registry) { r.CounterVec("ok_total", "", "bad-label") }},
		{"no buckets", func(r *Registry) { r.Histogram("h", "", nil) }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("h", "", []float64{2, 1}) }},
		{"arity", func(r *Registry) { r.CounterVec("v_total", "", "a", "b").With("only-one") }},
		{"negative add", func(r *Registry) { r.Counter("neg_total", "").Add(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}
