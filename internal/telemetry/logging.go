package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process logger from the -log-format/-log-level
// flags: format "text" (default) or "json", level one of debug, info,
// warn, error.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// DiscardLogger returns a logger that drops everything — the default
// when a library user leaves Config.Log nil.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
