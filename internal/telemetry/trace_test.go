package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func fixedNow() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }

// TestTraceRoundTrip records a two-spec run (one clean, one retried)
// and replays it into a report, checking chains, causes, and terminals.
func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rec, err := NewRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	rec.now = fixedNow
	tr := "abcd1234abcd1234"

	rec.Record(Span{Trace: tr, Kind: SpanRun, Name: "fig7", Schema: "v4", Total: 2})
	rec.Record(Span{Trace: tr, Kind: SpanAttempt, Spec: "k1", Label: "fig7/darp", Attempt: 1, Worker: "http://w1", Status: "ok", Millis: 12})
	rec.Record(Span{Trace: tr, Kind: SpanResult, Spec: "k1", Label: "fig7/darp", Worker: "http://w1", Source: "computed"})
	rec.Record(Span{Trace: tr, Kind: SpanAttempt, Spec: "k2", Label: "fig7/base", Attempt: 1, Worker: "http://w1", Status: "conn", Millis: 3})
	rec.Record(Span{Trace: tr, Kind: SpanAttempt, Spec: "k2", Label: "fig7/base", Attempt: 2, Worker: "http://w2", Status: "429", Millis: 1})
	rec.Record(Span{Trace: tr, Kind: SpanAttempt, Spec: "k2", Label: "fig7/base", Attempt: 3, Worker: "http://w2", Status: "ok", Millis: 20})
	rec.Record(Span{Trace: tr, Kind: SpanResult, Spec: "k2", Label: "fig7/base", Worker: "http://w2", Source: "store"})
	// A span from an unrelated trace must be ignored by the report.
	rec.Record(Span{Trace: "ffff0000ffff0000", Kind: SpanAttempt, Spec: "zz", Attempt: 1, Status: "ok"})
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	spans, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 8 {
		t.Fatalf("replayed %d spans, want 8", len(spans))
	}
	if spans[1].Time == "" {
		t.Error("recorder did not stamp Time")
	}

	rep, err := BuildReport(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != tr || rep.Name != "fig7" || rep.Total != 2 {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(rep.Chains))
	}
	k2 := rep.Chains[1]
	if k2.Spec != "k2" || len(k2.Attempts) != 3 {
		t.Fatalf("k2 chain = %+v", k2)
	}
	if k2.Terminal == nil || k2.Terminal.Source != "store" {
		t.Errorf("k2 terminal = %+v", k2.Terminal)
	}
	causes := rep.RetryCauses()
	if causes["conn"] != 1 || causes["429"] != 1 || len(causes) != 2 {
		t.Errorf("causes = %v", causes)
	}

	out := rep.String()
	for _, want := range []string{
		"trace abcd1234abcd1234: run fig7 (2 specs)",
		"fig7/base",
		"#1 w1 conn -> #2 w2 429 -> #3 w2 ok 20ms  = store",
		"retries by cause: 429=1 conn=1",
		"terminal sources: computed=1 store=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestTraceTornFinalLine verifies that a process dying mid-append (a
// torn, unterminated final line) does not poison replay: the torn line
// is dropped, the rest of the trace reads fine.
func TestTraceTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	rec, err := NewRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := "0011223344556677"
	rec.Record(Span{Trace: tr, Kind: SpanRun, Name: "t", Total: 1})
	rec.Record(Span{Trace: tr, Kind: SpanAttempt, Spec: "k", Attempt: 1, Status: "ok"})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trace":"0011","kind":"res`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	spans, err := ReadTrace(path)
	if err != nil {
		t.Fatalf("torn final line should be tolerated: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("replayed %d spans, want 2 (torn line dropped)", len(spans))
	}
}

// TestTraceMissingFile: replaying a path that was never written is an
// empty trace, not an error.
func TestTraceMissingFile(t *testing.T) {
	spans, err := ReadTrace(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatalf("missing file: %v", err)
	}
	if len(spans) != 0 {
		t.Fatalf("got %d spans from a missing file", len(spans))
	}
}

// TestBuildReportErrors covers the malformed-trace cases.
func TestBuildReportErrors(t *testing.T) {
	if _, err := BuildReport(nil); err == nil {
		t.Error("empty trace: no error")
	}
	if _, err := BuildReport([]Span{{Kind: SpanAttempt}}); err == nil {
		t.Error("missing run header: no error")
	}
	double := []Span{
		{Trace: "t", Kind: SpanRun},
		{Trace: "t", Kind: SpanResult, Spec: "k", Source: "computed"},
		{Trace: "t", Kind: SpanResult, Spec: "k", Source: "store"},
	}
	if _, err := BuildReport(double); err == nil {
		t.Error("double terminal: no error")
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || a == b {
		t.Errorf("trace IDs: %q, %q", a, b)
	}
}
