package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dsarp/internal/journal"
)

// The trace-of-record is a JSONL flight recorder for one orchestrated
// run: the fleet mints a trace ID, stamps every dispatch with it (the
// X-Dsarp-Trace header carries it to the workers, whose own recorders —
// dsarpd -trace — attribute their half of the work to the same ID), and
// appends one Span per state transition. Replaying the file reconstructs
// every spec's full attempt chain: which worker, which attempt, what
// failed and why, and how the spec finally terminated (computed on a
// worker, served warm from a store, fetched from a peer). The file
// mechanics are internal/journal's: fsync per line, a torn final line
// tolerated on replay, mid-file corruption refused.

// TraceHeader is the HTTP header propagating a run's trace ID from the
// fleet orchestrator to the workers it dispatches to.
const TraceHeader = "X-Dsarp-Trace"

// NewTraceID mints a fresh random trace ID (16 hex chars).
func NewTraceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// Span kinds, in the order a spec's chain emits them.
const (
	// SpanRun is the file header: one per run, first line.
	SpanRun = "run"
	// SpanAttempt is one dispatch attempt of one spec to one worker,
	// terminal or not: Status "ok" or a retry cause, with wall time.
	SpanAttempt = "attempt"
	// SpanResult is a spec's terminal record: Source says how it was
	// satisfied (computed|store|memory|peer|local-store), or Status
	// "failed" with the permanent error.
	SpanResult = "result"
	// SpanServe is a worker-side completion record (dsarpd -trace):
	// the server's own view of one task, attributed to the trace ID the
	// request carried.
	SpanServe = "serve"
)

// Span is one flight-recorder line. Fields are omitted when empty, so a
// record carries only what its kind defines.
type Span struct {
	Trace string `json:"trace"`
	Kind  string `json:"kind"`
	// Time is the wall-clock stamp (RFC3339Nano) the span was recorded.
	Time string `json:"time,omitempty"`
	// Spec is the spec's content-address (store key); Label its human
	// name (workload, mechanism, density, variant).
	Spec  string `json:"spec,omitempty"`
	Label string `json:"label,omitempty"`
	// Attempt numbers a spec's dispatches from 1.
	Attempt int `json:"attempt,omitempty"`
	// Worker is the dsarpd the attempt went to (fleet spans) or the
	// serving worker's own identity (serve spans).
	Worker string `json:"worker,omitempty"`
	// Status is "ok", "failed", or a transient retry cause
	// (429|503|5xx|timeout|conn|malformed).
	Status string `json:"status,omitempty"`
	// Source is where the terminal result came from:
	// computed|store|memory|peer (worker-reported) or local-store (the
	// orchestrator's own store satisfied it without dispatching).
	Source string `json:"source,omitempty"`
	Error  string `json:"error,omitempty"`
	// ResumedFrom is the checkpoint cycle a computed simulation was
	// restored from (serve spans and terminal result records); 0/absent
	// means the run started cold at cycle 0.
	ResumedFrom int64 `json:"resumed_from,omitempty"`
	// Millis is the span's wall time in milliseconds.
	Millis float64 `json:"ms,omitempty"`
	// Run-header fields.
	Name   string `json:"name,omitempty"`
	Schema string `json:"schema,omitempty"`
	Total  int    `json:"total,omitempty"`
}

// Recorder appends spans to a JSONL flight recorder. Safe for concurrent
// use; a write failure disables the recorder (first error kept) rather
// than failing the run — the trace is observability, not state.
type Recorder struct {
	mu  sync.Mutex
	f   *journal.File
	err error
	now func() time.Time
}

// NewRecorder opens (creating or appending) the trace file at path.
func NewRecorder(path string) (*Recorder, error) {
	f, err := journal.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return &Recorder{f: f, now: time.Now}, nil
}

// Record stamps and appends one span. Best-effort: the first write
// failure sticks (see Err) and later records are dropped.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	if s.Time == "" {
		s.Time = r.now().UTC().Format(time.RFC3339Nano)
	}
	if err := r.f.Append(s); err != nil {
		r.err = err
	}
}

// Err returns the first write failure, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close closes the underlying file.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}

// ReadTrace replays the trace file at path into spans, in record order.
// A missing file is an empty trace; a torn final line (the process died
// mid-append) is dropped; mid-file corruption is an error.
func ReadTrace(path string) ([]Span, error) {
	lines, err := journal.Read(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	spans := make([]Span, 0, len(lines))
	for i, raw := range lines {
		var s Span
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("telemetry: trace %s: line %d: %w", path, i+1, err)
		}
		spans = append(spans, s)
	}
	return spans, nil
}

// AttemptChain is one spec's reconstructed history: every attempt in
// order, plus the terminal result record (nil if the trace ended before
// the spec terminated — e.g. the run was interrupted).
type AttemptChain struct {
	Spec     string
	Label    string
	Attempts []Span
	Terminal *Span
}

// TraceReport is the replayed view of one run's flight recorder.
type TraceReport struct {
	Trace  string
	Name   string
	Total  int
	Chains []*AttemptChain // order of first appearance
}

// BuildReport folds a span stream into per-spec attempt chains. Spans
// from other trace IDs than the run header's are ignored (a recorder
// appended to across runs holds several traces; the header selects one
// run — the first, matching fleet's one-run-per-file usage).
func BuildReport(spans []Span) (*TraceReport, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("telemetry: empty trace")
	}
	if spans[0].Kind != SpanRun {
		return nil, fmt.Errorf("telemetry: trace does not start with a run header (kind %q)", spans[0].Kind)
	}
	rep := &TraceReport{Trace: spans[0].Trace, Name: spans[0].Name, Total: spans[0].Total}
	byKey := map[string]*AttemptChain{}
	chainFor := func(s Span) *AttemptChain {
		c, ok := byKey[s.Spec]
		if !ok {
			c = &AttemptChain{Spec: s.Spec}
			byKey[s.Spec] = c
			rep.Chains = append(rep.Chains, c)
		}
		if c.Label == "" {
			c.Label = s.Label
		}
		return c
	}
	for _, s := range spans[1:] {
		if s.Trace != rep.Trace || s.Spec == "" {
			continue
		}
		switch s.Kind {
		case SpanAttempt:
			chainFor(s).Attempts = append(chainFor(s).Attempts, s)
		case SpanResult:
			c := chainFor(s)
			if c.Terminal != nil {
				return nil, fmt.Errorf("telemetry: spec %s has two terminal records", s.Spec)
			}
			term := s
			c.Terminal = &term
		}
	}
	return rep, nil
}

// RetryCauses tallies the non-ok attempt statuses across every chain.
func (r *TraceReport) RetryCauses() map[string]int {
	causes := map[string]int{}
	for _, c := range r.Chains {
		for _, a := range c.Attempts {
			if a.Status != "ok" && a.Status != "" {
				causes[a.Status]++
			}
		}
	}
	return causes
}

// String renders the per-spec attempt-chain summary -trace-report prints:
// one line per spec (label, attempt chain, terminal source), then an
// aggregate footer (specs, attempts, retries by cause, terminal sources).
func (r *TraceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: run %s (%d specs)\n", r.Trace, r.Name, r.Total)
	sources := map[string]int{}
	attempts, unterminated := 0, 0
	for _, c := range r.Chains {
		label := c.Label
		if label == "" {
			label = c.Spec
		}
		fmt.Fprintf(&b, "  %-44s", label)
		attempts += len(c.Attempts)
		var parts []string
		for _, a := range c.Attempts {
			if a.Status == "ok" {
				parts = append(parts, fmt.Sprintf("#%d %s ok %.0fms", a.Attempt, shortWorker(a.Worker), a.Millis))
			} else {
				parts = append(parts, fmt.Sprintf("#%d %s %s", a.Attempt, shortWorker(a.Worker), a.Status))
			}
		}
		b.WriteString(strings.Join(parts, " -> "))
		switch {
		case c.Terminal == nil:
			unterminated++
			b.WriteString("  [no terminal record]")
		case c.Terminal.Status == "failed":
			sources["failed"]++
			fmt.Fprintf(&b, "  = FAILED (%s)", c.Terminal.Error)
		default:
			sources[c.Terminal.Source]++
			fmt.Fprintf(&b, "  = %s", c.Terminal.Source)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "specs: %d traced, %d attempts", len(r.Chains), attempts)
	if unterminated > 0 {
		fmt.Fprintf(&b, ", %d without a terminal record (interrupted?)", unterminated)
	}
	b.WriteByte('\n')
	if causes := r.RetryCauses(); len(causes) > 0 {
		fmt.Fprintf(&b, "retries by cause: %s\n", renderTally(causes))
	}
	fmt.Fprintf(&b, "terminal sources: %s\n", renderTally(sources))
	return b.String()
}

// renderTally formats a map as "k=v k=v", keys sorted.
func renderTally(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}

// shortWorker strips the scheme from a worker URL for compact chains.
func shortWorker(u string) string {
	u = strings.TrimPrefix(u, "http://")
	u = strings.TrimPrefix(u, "https://")
	if u == "" {
		return "-"
	}
	return u
}
