package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type entry struct {
	Type string `json:"type"`
	N    int    `json:"n"`
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(entry{Type: "e", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	for i, raw := range lines {
		var e entry
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatal(err)
		}
		if e.N != i {
			t.Errorf("line %d: n=%d", i, e.N)
		}
	}
}

func TestMissingFileIsEmpty(t *testing.T) {
	lines, err := Read(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || lines != nil {
		t.Fatalf("Read(missing) = %v, %v; want nil, nil", lines, err)
	}
}

func TestTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"type":"a"}` + "\n" + `{"type":"b"}` + "\n" + `{"type":"c","trunc`
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	lines, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2 (torn tail dropped)", len(lines))
	}
}

func TestMidFileCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"type":"a"}` + "\n" + `garbage` + "\n" + `{"type":"b"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "mid-file") {
		t.Fatalf("Read(corrupt middle) = %v, want mid-file error", err)
	}
}

func TestAppendResumesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j1, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	j1.Append(entry{N: 0})
	j1.Close()
	j2, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(entry{N: 1})
	j2.Close()
	lines, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
}
