// Package journal provides the append-only JSONL files behind every
// crash-durability story in this repo: the fleet orchestrator's run
// journal and the serving layer's per-job journals. A journal is one
// file, one JSON document per line, with exactly line-level durability:
//
//   - every Append marshals one value, writes one line, and fsyncs, so a
//     line either survives a crash whole or not at all;
//   - a torn final line (the crash landed mid-append) is silently dropped
//     on replay;
//   - any other malformed line is an error — journals are tiny and
//     precious, and a hole in the middle means something other than this
//     code wrote to the file.
//
// The package owns only the file mechanics. Entry schemas — what a header
// pins, what an event means — belong to the callers, which replay the raw
// lines and unmarshal them into their own types.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Read parses the journal at path into its raw lines, in order. A missing
// file is an empty journal; a torn final line is dropped; a malformed line
// anywhere else is an error. Blank lines are skipped.
func Read(path string) ([]json.RawMessage, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var (
		lines []json.RawMessage
		n     int
		torn  = -1
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26) // headers may carry whole spec lists
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			if torn >= 0 {
				return nil, fmt.Errorf("journal %s: malformed line %d: not JSON", path, torn)
			}
			torn = n
			continue
		}
		if torn >= 0 {
			// A parseable line after a malformed one: the damage is not a
			// torn tail.
			return nil, fmt.Errorf("journal %s: malformed line %d mid-file", path, torn)
		}
		lines = append(lines, json.RawMessage(append([]byte(nil), line...)))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	return lines, nil
}

// File is an open journal accepting appends. Safe for concurrent use.
type File struct {
	mu sync.Mutex
	f  *os.File
}

// OpenAppend opens (creating if necessary) the journal at path for
// appending. It does not read or validate existing content — call Read
// first when resuming.
func OpenAppend(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &File{f: f}, nil
}

// Append marshals v, writes it as one line, and fsyncs. Each line
// corresponds to at least one completed simulation or network round-trip,
// so per-line durability is cheap relative to what it records.
func (j *File) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close closes the underlying file. Further Appends fail.
func (j *File) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
