package snap

import "math/rand"

// countingSource wraps the standard rngSource and counts raw draws. Both
// Int63 and Uint64 advance the generator's feedback register by exactly
// one step, so replaying N Uint64 calls from the seed reproduces the
// stream position regardless of which mix of calls consumed it.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// Rand is a deterministic math/rand generator whose stream position is
// serializable: the position is the count of raw source draws since the
// seed, and Restore fast-forwards a fresh source to that count. The
// embedded *rand.Rand pointer is stable across Restore, so derived
// samplers (rand.Zipf) built over it keep working after a restore.
type Rand struct {
	*rand.Rand
	seed int64
	cs   *countingSource
}

// NewRand returns a counted generator seeded like rand.New(rand.NewSource(seed)).
func NewRand(seed int64) *Rand {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Rand{Rand: rand.New(cs), seed: seed, cs: cs}
}

// Draws reports the number of raw source draws consumed so far.
func (r *Rand) Draws() uint64 { return r.cs.n }

// Restore rewinds to the seed and fast-forwards the source by draws raw
// steps, in place.
func (r *Rand) Restore(draws uint64) {
	r.cs.src = rand.NewSource(r.seed).(rand.Source64)
	for i := uint64(0); i < draws; i++ {
		r.cs.src.Uint64()
	}
	r.cs.n = draws
}
