package snap

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section("alpha")
	w.U64(42)
	w.I64(-7)
	w.Int(123456)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.5)
	w.Str("hello")
	w.Section("beta")
	w.I64(math.MinInt64)
	data := w.Finish()

	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("alpha"); err != nil {
		t.Fatal(err)
	}
	if got := r.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -7 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 123456 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip")
	}
	if got := r.F64(); got != 3.5 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if err := r.Section("beta"); err != nil {
		t.Fatal(err)
	}
	if got := r.I64(); got != math.MinInt64 {
		t.Errorf("I64 min = %d", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicBytes(t *testing.T) {
	build := func() []byte {
		w := NewWriter()
		w.Section("s")
		w.U64(1)
		w.Str("x")
		return w.Finish()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("identical writes produced different bytes")
	}
}

func TestCorruptionDetected(t *testing.T) {
	w := NewWriter()
	w.Section("s")
	w.U64(99)
	data := w.Finish()
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x01
		if _, err := NewReader(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	w := NewWriter()
	w.Section("s")
	w.U64(1)
	data := w.Finish()
	bad := bytes.Replace(data, []byte(Version), []byte("dsarp-snap-v0"), 1)
	_, err := NewReader(bad)
	if !errors.Is(err, ErrVersion) {
		t.Errorf("got %v, want ErrVersion", err)
	}
}

func TestSectionNameMismatch(t *testing.T) {
	w := NewWriter()
	w.Section("right")
	w.U64(1)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("wrong"); err == nil {
		t.Error("wrong section name accepted")
	}
}

func TestUnconsumedBytesDetected(t *testing.T) {
	w := NewWriter()
	w.Section("a")
	w.U64(1)
	w.U64(2)
	w.Section("b")
	w.U64(3)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("a"); err != nil {
		t.Fatal(err)
	}
	r.U64() // leave one value unread
	if err := r.Section("b"); err == nil {
		t.Error("unconsumed section bytes went undetected")
	}
}

func TestOverreadDetected(t *testing.T) {
	w := NewWriter()
	w.Section("a")
	w.U64(1)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("a"); err != nil {
		t.Fatal(err)
	}
	r.U64()
	r.U64() // past the section body
	if r.Err() == nil {
		t.Error("read past section end went undetected")
	}
}

func TestInvalidBool(t *testing.T) {
	w := NewWriter()
	w.Section("a")
	w.buf = append(w.buf, 7) // raw invalid bool byte
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("a"); err != nil {
		t.Fatal(err)
	}
	r.Bool()
	if r.Err() == nil {
		t.Error("invalid bool byte accepted")
	}
}

func TestCountingRand(t *testing.T) {
	a := NewRand(1234)
	for i := 0; i < 1000; i++ {
		switch i % 3 {
		case 0:
			a.Intn(17)
		case 1:
			a.Float64()
		case 2:
			a.Uint64()
		}
	}
	draws := a.Draws()
	next := []int{a.Intn(1000), a.Intn(1000), a.Intn(1000)}

	b := NewRand(1234)
	b.Restore(draws)
	if b.Draws() != draws {
		t.Fatalf("restored draw count %d, want %d", b.Draws(), draws)
	}
	for i, want := range next {
		if got := b.Intn(1000); got != want {
			t.Fatalf("draw %d after restore = %d, want %d", i, got, want)
		}
	}
}

func TestCountingRandInPlace(t *testing.T) {
	a := NewRand(9)
	inner := a.Rand // the embedded *rand.Rand must stay valid across Restore
	a.Intn(100)
	a.Restore(a.Draws())
	if a.Rand != inner {
		t.Error("Restore replaced the embedded rand.Rand")
	}
}
