// Package snap is the canonical binary serialization layer for simulation
// snapshots. A snapshot is a versioned, hash-verified container of named,
// length-framed sections; every simulation component appends one section of
// fixed-width little-endian primitives, so the byte layout is a pure
// deterministic function of machine state. The layout is frozen per
// Version: any change to what a component writes must bump Version
// (enforced by the golden snapshot fixture and check-schema-bump.sh, the
// same discipline that guards exp.SchemaVersion).
package snap

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Version names the snapshot wire layout. It is deliberately separate from
// exp.SchemaVersion: results and snapshots evolve independently, and a
// snapshot layout change must not invalidate served results. Restoring a
// snapshot with a mismatched version is refused — the run recomputes from
// cycle 0 instead.
const Version = "dsarp-snap-v1"

// magic leads every snapshot so a snapshot can never be confused with a
// store result envelope or any other artifact.
const magic = "DSNAP"

// Codec is implemented by every component whose mutable state round-trips
// through a snapshot section.
type Codec interface {
	AppendState(w *Writer)
	LoadState(r *Reader) error
}

// Writer builds a snapshot. Sections are opened with Section and closed
// implicitly by the next Section call or by Finish. All primitives are
// fixed-width little-endian so the layout is platform-independent and
// byte-deterministic.
type Writer struct {
	buf     []byte
	secName string
	secOff  int // start of the current section's body length field
}

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer {
	return &Writer{}
}

// Section begins a new named section. The previous section, if any, is
// closed and its length frame finalized.
func (w *Writer) Section(name string) {
	w.closeSection()
	w.secName = name
	w.Str(name)
	w.secOff = len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0) // body length placeholder
}

func (w *Writer) closeSection() {
	if w.secName == "" {
		return
	}
	body := uint64(len(w.buf) - w.secOff - 8)
	binary.LittleEndian.PutUint64(w.buf[w.secOff:], body)
	w.secName = ""
}

// U64 appends an unsigned 64-bit value.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int (as 64-bit).
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// F64 appends a float64 by its exact IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Finish closes the last section and returns the full snapshot: a header
// (magic, Version, payload length, payload SHA-256) followed by the
// payload.
func (w *Writer) Finish() []byte {
	w.closeSection()
	payload := w.buf
	sum := sha256.Sum256(payload)
	hdr := make([]byte, 0, len(magic)+8+len(Version)+8+32+len(payload))
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(Version)))
	hdr = append(hdr, Version...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))
	hdr = append(hdr, sum[:]...)
	return append(hdr, payload...)
}

// ErrVersion reports a snapshot whose layout version does not match this
// binary's snap.Version. Stale snapshots recompute; they never restore.
var ErrVersion = errors.New("snap: snapshot version mismatch")

// Reader decodes a snapshot produced by Writer. Errors are sticky: after
// the first failure every subsequent read returns the zero value and Err
// reports the original cause. Sections must be consumed in the order they
// were written, and Close verifies the payload was consumed exactly.
type Reader struct {
	buf    []byte
	off    int
	secEnd int // exclusive end of the current section's body
	err    error
}

// NewReader validates the header (magic, version, length, payload hash)
// and returns a reader positioned at the first section. A version mismatch
// returns ErrVersion (wrapped with the found version).
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(magic)+8 || string(data[:len(magic)]) != magic {
		return nil, errors.New("snap: not a snapshot (bad magic)")
	}
	off := len(magic)
	vlen := binary.LittleEndian.Uint64(data[off:])
	off += 8
	if vlen > uint64(len(data)-off) {
		return nil, errors.New("snap: truncated version")
	}
	ver := string(data[off : off+int(vlen)])
	off += int(vlen)
	if ver != Version {
		return nil, fmt.Errorf("%w: snapshot has %q, this binary expects %q", ErrVersion, ver, Version)
	}
	if len(data)-off < 8+32 {
		return nil, errors.New("snap: truncated header")
	}
	plen := binary.LittleEndian.Uint64(data[off:])
	off += 8
	var sum [32]byte
	copy(sum[:], data[off:off+32])
	off += 32
	if plen != uint64(len(data)-off) {
		return nil, fmt.Errorf("snap: payload length %d, have %d bytes", plen, len(data)-off)
	}
	payload := data[off:]
	if sha256.Sum256(payload) != sum {
		return nil, errors.New("snap: payload hash mismatch")
	}
	return &Reader{buf: payload, secEnd: -1}, nil
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Section advances to the next section and verifies its name. Any bytes
// left unconsumed in the previous section are an error: a component that
// wrote more than it read back signals layout drift, not slack.
func (r *Reader) Section(name string) error {
	if r.err != nil {
		return r.err
	}
	if r.secEnd >= 0 && r.off != r.secEnd {
		r.fail(fmt.Errorf("snap: section before %q has %d unread bytes", name, r.secEnd-r.off))
		return r.err
	}
	r.secEnd = -1
	got := r.Str()
	if r.err != nil {
		return r.err
	}
	if got != name {
		r.fail(fmt.Errorf("snap: section %q, want %q", got, name))
		return r.err
	}
	body := r.U64()
	if r.err != nil {
		return r.err
	}
	if body > uint64(len(r.buf)-r.off) {
		r.fail(fmt.Errorf("snap: section %q body overruns payload", name))
		return r.err
	}
	r.secEnd = r.off + int(body)
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	end := len(r.buf)
	if r.secEnd >= 0 {
		end = r.secEnd
	}
	if n > end-r.off {
		r.fail(errors.New("snap: read past end of section"))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads an unsigned 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("snap: invalid bool byte %#x", b[0]))
		return false
	}
}

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.U64()
	end := len(r.buf)
	if r.secEnd >= 0 {
		end = r.secEnd
	}
	if r.err == nil && n > uint64(end-r.off) {
		r.fail(errors.New("snap: string overruns section"))
	}
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Close verifies the final section and the payload were consumed exactly
// and returns the sticky error state.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.secEnd >= 0 && r.off != r.secEnd {
		return fmt.Errorf("snap: last section has %d unread bytes", r.secEnd-r.off)
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("snap: %d trailing bytes after last section", len(r.buf)-r.off)
	}
	return nil
}
