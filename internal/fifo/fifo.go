// Package fifo provides the head-index pop-front shared by the simulator's
// hot-path queues (core load entries, in-flight reads, cache hit deliveries
// and writeback retries). Advancing a start index instead of reslicing the
// front off keeps append from seeing an exhausted capacity — pop-front
// reslicing makes every append reallocate, which was the stepped cycle's
// only steady-state heap traffic.
package fifo

// PopFront drops q[head], zeroing the slot so no reference is retained, and
// returns the updated backing slice and head index. The dead prefix is
// compacted in place once it outweighs the live entries, so a long-lived
// queue reuses its backing array: amortized O(1) per pop, zero allocations.
func PopFront[T any](q []T, head int) ([]T, int) {
	var zero T
	q[head] = zero
	head++
	if head == len(q) {
		return q[:0], 0
	}
	if head > 32 && head*2 > len(q) {
		n := copy(q, q[head:])
		clear(q[n:])
		return q[:n], 0
	}
	return q, head
}
