// Package stats provides the small numeric helpers the experiment harness
// uses to summarize per-workload results (means, geometric means, extrema,
// percentage improvements).
package stats

import (
	"math"
	"sort"
)

// Mean is the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Gmean is the geometric mean; 0 for an empty slice or any non-positive
// element.
func Gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Max returns the maximum; 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum; 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Sorted returns an ascending copy.
func Sorted(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// PctImprovement converts a ratio new/old into a percentage improvement.
func PctImprovement(ratio float64) float64 { return (ratio - 1) * 100 }

// Ratios divides element-wise: out[i] = num[i] / den[i].
func Ratios(num, den []float64) []float64 {
	out := make([]float64, len(num))
	for i := range num {
		if den[i] != 0 {
			out[i] = num[i] / den[i]
		}
	}
	return out
}
