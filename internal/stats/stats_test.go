package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGmean(t *testing.T) {
	if got := Gmean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Gmean = %v, want 2", got)
	}
	if got := Gmean([]float64{2, 0}); got != 0 {
		t.Errorf("Gmean with zero = %v, want 0", got)
	}
	if got := Gmean(nil); got != 0 {
		t.Errorf("Gmean(nil) = %v", got)
	}
}

func TestGmeanLeqMeanProperty(t *testing.T) {
	// AM-GM inequality holds for any positive data.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		return Gmean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Max(xs) != 3 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty Max/Min should be 0")
	}
}

func TestSortedCopies(t *testing.T) {
	xs := []float64{3, 1, 2}
	got := Sorted(xs)
	if got[0] != 1 || got[2] != 3 {
		t.Errorf("Sorted = %v", got)
	}
	if xs[0] != 3 {
		t.Error("Sorted mutated its input")
	}
}

func TestPctImprovement(t *testing.T) {
	if got := PctImprovement(1.152); math.Abs(got-15.2) > 1e-9 {
		t.Errorf("PctImprovement = %v", got)
	}
}

func TestRatios(t *testing.T) {
	got := Ratios([]float64{2, 9}, []float64{1, 3})
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("Ratios = %v", got)
	}
	got = Ratios([]float64{1}, []float64{0})
	if got[0] != 0 {
		t.Errorf("Ratios with zero denominator = %v", got)
	}
}
