package power

import (
	"testing"

	"dsarp/internal/dram"
	"dsarp/internal/timing"
)

func tp(d timing.Density) timing.Params {
	return timing.DDR3(timing.Config{Density: d, Mode: timing.RefPB})
}

func TestMoreCommandsMoreEnergy(t *testing.T) {
	p := Default()
	small := p.Compute(dram.Stats{Acts: 10, Reads: 10}, tp(timing.Gb8), 1000, 2)
	big := p.Compute(dram.Stats{Acts: 20, Reads: 20}, tp(timing.Gb8), 1000, 2)
	if big.Total() <= small.Total() {
		t.Errorf("energy not monotone in work: %v vs %v", big.Total(), small.Total())
	}
	if big.Background != small.Background {
		t.Error("background energy should depend only on elapsed time")
	}
}

func TestRefreshEnergyScalesWithDensity(t *testing.T) {
	p := Default()
	st := dram.Stats{RefABs: 100}
	e8 := p.Compute(st, tp(timing.Gb8), 1000, 2).Refresh
	e32 := p.Compute(st, tp(timing.Gb32), 1000, 2).Refresh
	// tRFCab grows 350 -> 890 ns: refresh energy grows proportionally.
	if e32 <= e8*2 {
		t.Errorf("32Gb refresh energy %v should be >2x 8Gb %v", e32, e8)
	}
}

func TestPerBankRefreshCheaperPerOp(t *testing.T) {
	// A REFpb draws 8x less current for tRFCab/2.3 duration: one op must
	// cost far less than a REFab op (paper §4.3.3).
	p := Default()
	ab := p.Compute(dram.Stats{RefABs: 1}, tp(timing.Gb32), 1, 1).Refresh
	pb := p.Compute(dram.Stats{RefPBs: 1}, tp(timing.Gb32), 1, 1).Refresh
	if pb >= ab/8 {
		t.Errorf("REFpb op energy %v vs REFab %v: want < 1/8", pb, ab)
	}
	// But a full rotation (8 REFpb vs 1 REFab) is in the same ballpark.
	rot := p.Compute(dram.Stats{RefPBs: 8}, tp(timing.Gb32), 1, 1).Refresh
	if rot > ab {
		t.Errorf("8 REFpb (%v) should not exceed one REFab (%v)", rot, ab)
	}
}

func TestPerAccessAmortization(t *testing.T) {
	// Same command mix over the same window with more accesses served ->
	// lower energy per access (the effect behind the paper's Fig. 14).
	p := Default()
	slow := p.Compute(dram.Stats{Acts: 100, Reads: 100}, tp(timing.Gb8), 100_000, 4)
	fast := p.Compute(dram.Stats{Acts: 200, Reads: 200}, tp(timing.Gb8), 100_000, 4)
	if fast.PerAccess(200) >= slow.PerAccess(100) {
		t.Errorf("per-access energy should drop with throughput: %v vs %v",
			fast.PerAccess(200), slow.PerAccess(100))
	}
}

func TestPerAccessZeroSafe(t *testing.T) {
	var b Breakdown
	if b.PerAccess(0) != 0 {
		t.Error("PerAccess(0) should be 0")
	}
}

func TestBreakdownComponentsNonNegative(t *testing.T) {
	p := Default()
	b := p.Compute(dram.Stats{Acts: 5, Reads: 3, Writes: 2, RefABs: 1, RefPBs: 4}, tp(timing.Gb16), 5000, 4)
	for name, v := range map[string]float64{
		"ActPre": b.ActPre, "Read": b.Read, "Write": b.Write,
		"Refresh": b.Refresh, "Background": b.Background,
	} {
		if v < 0 {
			t.Errorf("%s energy negative: %v", name, v)
		}
	}
	if b.Total() <= 0 {
		t.Error("total energy should be positive")
	}
}
