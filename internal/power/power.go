// Package power implements a Micron-power-calculator-style DRAM energy
// model (paper §5, [27]): per-command energies derived from datasheet IDD
// currents plus background power, reported as energy per memory access.
//
// The paper notes its energy results "conservatively assume the same power
// parameters for 8, 16, and 32 Gb chips"; this model does the same — only
// refresh durations (tRFC) change with density, which is exactly how the
// relative refresh energy grows.
package power

import (
	"dsarp/internal/dram"
	"dsarp/internal/timing"
)

// Params holds the electrical parameters. Defaults follow the Micron 8 Gb
// DDR3 TwinDie datasheet [29] used by the paper.
type Params struct {
	VDD float64 // volts

	// IDD currents in milliamps.
	IDD0  float64 // one-bank ACT->PRE cycling
	IDD2N float64 // precharged standby
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5B float64 // burst (all-bank) refresh

	TCKNs float64 // DRAM clock period, ns
}

// Default returns the Micron 8 Gb DDR3-1333 parameters.
func Default() Params {
	return Params{
		VDD:   1.5,
		IDD0:  95,
		IDD2N: 42,
		IDD3N: 67,
		IDD4R: 180,
		IDD4W: 185,
		IDD5B: 215,
		TCKNs: 1.5,
	}
}

// Breakdown is the channel energy split in nanojoules.
type Breakdown struct {
	ActPre     float64
	Read       float64
	Write      float64
	Refresh    float64
	Background float64
}

// Total is the summed energy in nanojoules.
func (b Breakdown) Total() float64 {
	return b.ActPre + b.Read + b.Write + b.Refresh + b.Background
}

// PerAccess is energy per serviced read/write in nanojoules.
func (b Breakdown) PerAccess(accesses int64) float64 {
	if accesses == 0 {
		return 0
	}
	return b.Total() / float64(accesses)
}

// mAToA converts a differential current over a duration (cycles) to energy
// in nanojoules: E[nJ] = I[mA] * V * t[ns] / 1e3... worked through units:
// mA * V = mW; mW * ns = pJ; pJ / 1000 = nJ.
func (p Params) energyNJ(currentMA float64, cycles float64) float64 {
	return currentMA * p.VDD * cycles * p.TCKNs / 1000
}

// Compute converts device command counts over an elapsed window into an
// energy breakdown for one channel with the given rank count.
func (p Params) Compute(st dram.Stats, tp timing.Params, elapsedCycles int64, ranks int) Breakdown {
	var b Breakdown
	// One ACT/PRE pair costs the IDD0 cycling current over tRC, net of the
	// active-standby floor.
	b.ActPre = float64(st.Acts) * p.energyNJ(p.IDD0-p.IDD3N, float64(tp.TRC))
	b.Read = float64(st.Reads) * p.energyNJ(p.IDD4R-p.IDD3N, float64(tp.BL))
	b.Write = float64(st.Writes) * p.energyNJ(p.IDD4W-p.IDD3N, float64(tp.BL))
	// An all-bank refresh draws the burst-refresh current for tRFCab; a
	// per-bank refresh draws 8x less current (paper §4.3.3) for tRFCpb.
	b.Refresh = float64(st.RefABs)*p.energyNJ(p.IDD5B-p.IDD3N, float64(tp.TRFCab)) +
		float64(st.RefPBs)*p.energyNJ((p.IDD5B-p.IDD3N)/8, float64(tp.TRFCpb))
	// Background: precharged standby for every rank over the whole window.
	// Performance mechanisms amortize this fixed cost over more accesses —
	// the effect behind the paper's Fig. 14.
	b.Background = float64(ranks) * p.energyNJ(p.IDD2N, float64(elapsedCycles))
	return b
}
