package cache

import (
	"fmt"
	"math"

	"dsarp/internal/snap"
)

// AppendState writes the slice's mutable state: the tag store, LRU
// clocks, MSHR chains (order preserved — fill unlinks mid-chain), pending
// writebacks, pending hit deliveries, and counters. Callbacks do not
// serialize: waiters and hit deliveries carry the requester's tag and are
// re-linked by LoadState; each MSHR entry's fill callback is rebuilt
// fresh. The free list and the nextHitAt memo are derived state and
// omitted.
func (s *Slice) AppendState(w *snap.Writer) {
	w.I64(s.tick)
	w.I64(s.stats.Accesses)
	w.I64(s.stats.Hits)
	w.I64(s.stats.Misses)
	w.I64(s.stats.MSHRMerges)
	w.I64(s.stats.Writebacks)
	for si, set := range s.sets {
		w.U64(uint64(s.mru[si]))
		for _, ln := range set {
			w.U64(ln.tag)
			w.Bool(ln.valid)
			w.Bool(ln.dirty)
			w.I64(ln.used)
		}
	}
	wbs := s.pendingWB[s.wbHead:]
	w.Int(len(wbs))
	for _, a := range wbs {
		w.U64(a)
	}
	hits := s.hits[s.hitHead:]
	w.Int(len(hits))
	for _, h := range hits {
		w.I64(h.at)
		w.U64(h.tag)
	}
	for _, head := range s.mshr {
		n := 0
		for e := head; e != nil; e = e.next {
			n++
		}
		w.Int(n)
		for e := head; e != nil; e = e.next {
			w.U64(e.lineAddr)
			w.Bool(e.dirty)
			w.Int(len(e.waiters))
			for _, wt := range e.waiters {
				w.U64(wt.tag)
			}
		}
	}
}

// LoadState restores the state written by AppendState onto a freshly
// built slice of the same configuration. resolve maps a waiter tag back
// to the owning core's completion callback (the core must be restored
// first).
func (s *Slice) LoadState(r *snap.Reader, resolve func(tag uint64) (func(now int64), error)) error {
	s.tick = r.I64()
	s.stats.Accesses = r.I64()
	s.stats.Hits = r.I64()
	s.stats.Misses = r.I64()
	s.stats.MSHRMerges = r.I64()
	s.stats.Writebacks = r.I64()
	for si, set := range s.sets {
		s.mru[si] = uint16(r.U64())
		for i := range set {
			set[i].tag = r.U64()
			set[i].valid = r.Bool()
			set[i].dirty = r.Bool()
			set[i].used = r.I64()
		}
	}
	s.pendingWB = s.pendingWB[:0]
	s.wbHead = 0
	for n := r.Int(); n > 0; n-- {
		s.pendingWB = append(s.pendingWB, r.U64())
	}
	s.hits = s.hits[:0]
	s.hitHead = 0
	nHits := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nHits; i++ {
		h := hitDelivery{at: r.I64(), tag: r.U64()}
		if err := r.Err(); err != nil {
			return err
		}
		fn, err := resolve(h.tag)
		if err != nil {
			return fmt.Errorf("cache: hit delivery: %w", err)
		}
		h.onDone = fn
		s.hits = append(s.hits, h)
	}
	s.nextHitAt = math.MaxInt64
	if len(s.hits) > 0 {
		s.nextHitAt = s.hits[0].at
	}
	s.free = nil
	for si := range s.mshr {
		s.mshr[si] = nil
		n := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		var tail *mshrEntry
		for i := 0; i < n; i++ {
			e := &mshrEntry{lineAddr: r.U64(), dirty: r.Bool()}
			e.onFill = func(at int64) { s.fill(at, e) }
			nw := r.Int()
			if err := r.Err(); err != nil {
				return err
			}
			for j := 0; j < nw; j++ {
				wt := waiter{tag: r.U64()}
				if err := r.Err(); err != nil {
					return err
				}
				fn, err := resolve(wt.tag)
				if err != nil {
					return fmt.Errorf("cache: mshr waiter: %w", err)
				}
				wt.fn = fn
				e.waiters = append(e.waiters, wt)
			}
			if tail == nil {
				s.mshr[si] = e
			} else {
				tail.next = e
			}
			tail = e
		}
	}
	return r.Err()
}

// FillCallback returns the fill callback of the outstanding miss on the
// given line, for re-linking a restored memory controller's in-flight
// reads. A snapshot that references a line with no outstanding miss is
// corrupt.
func (s *Slice) FillCallback(lineAddr uint64) (func(at int64), error) {
	for e := s.mshr[lineAddr&s.setMask]; e != nil; e = e.next {
		if e.lineAddr == lineAddr {
			return e.onFill, nil
		}
	}
	return nil, fmt.Errorf("cache: no outstanding fill for line %#x", lineAddr)
}
