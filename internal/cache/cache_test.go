package cache

import (
	"testing"
)

// fakeBackend records traffic and completes reads on demand.
type fakeBackend struct {
	reads   []uint64
	writes  []uint64
	pending []func(now int64)
	reject  bool
}

func (f *fakeBackend) ReadLine(addr uint64, onDone func(now int64)) bool {
	if f.reject {
		return false
	}
	f.reads = append(f.reads, addr)
	f.pending = append(f.pending, onDone)
	return true
}

func (f *fakeBackend) WriteLine(addr uint64) bool {
	if f.reject {
		return false
	}
	f.writes = append(f.writes, addr)
	return true
}

func (f *fakeBackend) completeAll(now int64) {
	for _, fn := range f.pending {
		fn(now)
	}
	f.pending = nil
}

func smallCfg() Config {
	// 4 sets x 2 ways x 64B = 512B slice: easy to evict.
	return Config{SizeBytes: 512, Ways: 2, LineBytes: 64, HitLatency: 3}
}

func newSlice() (*Slice, *fakeBackend) {
	b := &fakeBackend{}
	return NewSlice(smallCfg(), b), b
}

func TestMissThenHit(t *testing.T) {
	s, b := newSlice()
	var fills int
	if !s.Access(0, 0x1000, false, 0, func(int64) { fills++ }) {
		t.Fatal("miss not admitted")
	}
	if len(b.reads) != 1 || b.reads[0] != 0x1000 {
		t.Fatalf("backend reads: %v", b.reads)
	}
	b.completeAll(50)
	if fills != 1 {
		t.Fatal("fill waiter not woken")
	}
	// Second access: hit, delivered after HitLatency.
	var hitAt int64 = -1
	s.Access(100, 0x1000, false, 0, func(now int64) { hitAt = now })
	if len(b.reads) != 1 {
		t.Error("hit went to DRAM")
	}
	s.Tick(102)
	if hitAt != -1 {
		t.Error("hit delivered before HitLatency")
	}
	s.Tick(103)
	if hitAt != 103 {
		t.Errorf("hit delivered at %d, want 103", hitAt)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Accesses != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestMSHRMerge(t *testing.T) {
	s, b := newSlice()
	n := 0
	s.Access(0, 0x1000, false, 0, func(int64) { n++ })
	s.Access(1, 0x1000, false, 0, func(int64) { n++ })
	if len(b.reads) != 1 {
		t.Fatalf("merged miss fetched twice: %v", b.reads)
	}
	if s.Stats().MSHRMerges != 1 {
		t.Errorf("MSHRMerges = %d", s.Stats().MSHRMerges)
	}
	b.completeAll(10)
	if n != 2 {
		t.Errorf("both waiters should wake, got %d", n)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s, b := newSlice()
	// Store to line A: write-allocate, dirty after fill.
	s.Access(0, 0x0000, true, 0, nil)
	b.completeAll(1)
	// Fill two more lines mapping to set 0 (set stride = 4 sets * 64B = 256B).
	s.Access(2, 0x0100, false, 0, nil)
	b.completeAll(3)
	s.Access(4, 0x0200, false, 0, nil) // evicts LRU = dirty line A
	b.completeAll(5)
	if len(b.writes) != 1 || b.writes[0] != 0x0000 {
		t.Fatalf("dirty eviction writebacks: %v", b.writes)
	}
	if s.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d", s.Stats().Writebacks)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	s, b := newSlice()
	s.Access(0, 0x0000, false, 0, nil)
	b.completeAll(1)
	s.Access(2, 0x0100, false, 0, nil)
	b.completeAll(3)
	s.Access(4, 0x0200, false, 0, nil)
	b.completeAll(5)
	if len(b.writes) != 0 {
		t.Fatalf("clean eviction wrote back: %v", b.writes)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	s, b := newSlice()
	s.Access(0, 0x0000, false, 0, nil) // A
	s.Access(1, 0x0100, false, 0, nil) // B
	b.completeAll(2)
	s.Access(3, 0x0000, false, 0, nil) // touch A: B becomes LRU
	s.Access(4, 0x0200, false, 0, nil) // C evicts B
	b.completeAll(5)
	// A must still hit.
	hits := s.Stats().Hits
	s.Access(6, 0x0000, false, 0, nil)
	if s.Stats().Hits != hits+1 {
		t.Error("LRU evicted the recently used line")
	}
}

func TestBackpressurePropagates(t *testing.T) {
	s, b := newSlice()
	b.reject = true
	if s.Access(0, 0x1000, false, 0, nil) {
		t.Error("miss admitted while backend rejects")
	}
	if s.Stats().Accesses != 0 {
		t.Error("rejected access counted")
	}
	b.reject = false
	if !s.Access(1, 0x1000, false, 0, nil) {
		t.Error("retry failed after backend recovered")
	}
}

func TestRejectedWritebackRetriedOnTick(t *testing.T) {
	s, b := newSlice()
	s.Access(0, 0x0000, true, 0, nil)
	b.completeAll(1)
	s.Access(2, 0x0100, false, 0, nil)
	b.completeAll(3)
	b.reject = true
	s.Access(4, 0x0200, false, 0, nil) // admitted? no - reject... read rejected too
	b.reject = false
	s.Access(5, 0x0200, false, 0, nil)
	b.reject = true
	b.completeAll(6) // fill evicts dirty line; writeback rejected and parked
	if s.PendingWritebacks() != 1 {
		t.Fatalf("pending writebacks = %d, want 1", s.PendingWritebacks())
	}
	b.reject = false
	s.Tick(7)
	if s.PendingWritebacks() != 0 || len(b.writes) != 1 {
		t.Errorf("writeback not retried: pending=%d writes=%v", s.PendingWritebacks(), b.writes)
	}
}

func TestStoreMergesIntoPendingFill(t *testing.T) {
	s, b := newSlice()
	s.Access(0, 0x1000, false, 0, nil)
	s.Access(1, 0x1000, true, 0, nil) // store merges into the fill, marks dirty
	b.completeAll(2)
	// Evict it: two more lines in the same set.
	s.Access(3, 0x1100, false, 0, nil)
	b.completeAll(4)
	s.Access(5, 0x1200, false, 0, nil)
	b.completeAll(6)
	if len(b.writes) != 1 {
		t.Errorf("merged store lost its dirty bit: writes=%v", b.writes)
	}
}

func TestMissRate(t *testing.T) {
	s, b := newSlice()
	s.Access(0, 0x1000, false, 0, nil)
	b.completeAll(1)
	s.Access(2, 0x1000, false, 0, nil)
	if got := s.Stats().MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two set count accepted")
		}
	}()
	NewSlice(Config{SizeBytes: 192, Ways: 1, LineBytes: 64, HitLatency: 1}, &fakeBackend{})
}
