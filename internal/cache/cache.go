// Package cache models the last-level cache of the evaluated system: a
// 16-way, 64 B-line, 512 KB private slice per core (paper Table 1). Misses
// become DRAM reads; dirty evictions become DRAM writes — the write traffic
// that DARP's write-refresh parallelization hides refreshes behind.
package cache

import (
	"fmt"
	"math"

	"dsarp/internal/fifo"
)

// Config sets the slice organization.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
	// HitLatency is the access latency of a hit, in DRAM cycles (the slice
	// is ticked in the DRAM clock domain; 3 DRAM cycles = 18 CPU cycles at
	// the 6:1 ratio, a typical LLC round trip).
	HitLatency int
}

// DefaultConfig mirrors Table 1 of the paper.
func DefaultConfig() Config {
	return Config{SizeBytes: 512 << 10, Ways: 16, LineBytes: 64, HitLatency: 3}
}

// Backend accepts the slice's DRAM traffic. Both methods return false when
// the controller queue is full; the slice retries.
type Backend interface {
	// ReadLine requests a line fill; onDone fires when data returns.
	ReadLine(addr uint64, onDone func(now int64)) bool
	// WriteLine queues a dirty writeback.
	WriteLine(addr uint64) bool
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  int64 // LRU timestamp
}

// waiter is one access awaiting an outstanding fill. tag identifies the
// requesting load at the core (its instruction position) so a restored
// snapshot can re-link fn, which does not serialize.
type waiter struct {
	tag uint64
	fn  func(now int64)
}

type mshrEntry struct {
	waiters  []waiter
	dirty    bool   // a store merged into the pending fill
	lineAddr uint64 // line being filled
	next     *mshrEntry
	// onFill hands the returned line to Slice.fill; built once per entry
	// and reused through the slice's free list so steady-state misses
	// allocate nothing.
	onFill func(at int64)
}

// Slice is one core's private LLC slice.
type Slice struct {
	cfg     Config
	sets    [][]line
	mru     []uint16 // per-set way of the last hit: probed before the scan
	setMask uint64
	// mshr chains the outstanding fills of each set (a few entries at most,
	// almost always zero or one), replacing a lineAddr-keyed map: the probe
	// on every miss becomes a short pointer walk instead of a hash.
	mshr []*mshrEntry // per-set list heads
	free []*mshrEntry // filled entries awaiting reuse

	// pendingWB[wbHead:] are writebacks the backend rejected, retried in
	// Tick. The head index avoids pop-front reslicing, which would make
	// every append reallocate once the slice start has advanced.
	pendingWB []uint64
	wbHead    int

	// hits[hitHead:] are pending hit deliveries. Delivery times are
	// now+HitLatency with nondecreasing now, so the list is a FIFO sorted
	// by due time: Tick pops due heads instead of rescanning and
	// compacting the whole list every delivering cycle.
	hits      []hitDelivery
	hitHead   int
	nextHitAt int64 // earliest pending hit delivery (MaxInt64 when none)
	backend   Backend
	tick      int64
	stats     Stats
}

type hitDelivery struct {
	at     int64
	tag    uint64 // requesting load's core-side identity (see waiter)
	onDone func(now int64)
}

// Stats counts slice activity.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	MSHRMerges int64
	Writebacks int64
}

// MissRate is misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// NewSlice builds an LLC slice over a DRAM backend.
func NewSlice(cfg Config, backend Backend) *Slice {
	nSets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a positive power of two", nSets))
	}
	sets := make([][]line, nSets)
	backing := make([]line, nSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Slice{
		cfg:       cfg,
		sets:      sets,
		mru:       make([]uint16, nSets),
		setMask:   uint64(nSets - 1),
		mshr:      make([]*mshrEntry, nSets),
		nextHitAt: math.MaxInt64,
		backend:   backend,
	}
}

// Stats returns accumulated counters.
func (s *Slice) Stats() Stats { return s.stats }

// Access performs a load or store against the slice at DRAM cycle now.
// onDone (may be nil for stores) fires when the data is available; tag is
// the caller's identity for onDone (cpu.Memory semantics). Access returns
// false if the miss could not be admitted (DRAM read queue full); the
// caller must retry.
func (s *Slice) Access(now int64, addr uint64, write bool, tag uint64, onDone func(now int64)) bool {
	lineAddr := addr / uint64(s.cfg.LineBytes)
	// The full line address serves as the cache tag (set bits included):
	// simplest and unambiguous.
	ltag := lineAddr
	si := lineAddr & s.setMask
	set := s.sets[si]

	s.tick++
	// Probe the set's most recently hit way first (tags are unique within a
	// set, so probe order cannot change the outcome), then scan.
	way := int(s.mru[si])
	if !(set[way].valid && set[way].tag == ltag) {
		way = -1
		for i := range set {
			if set[i].valid && set[i].tag == ltag {
				way = i
				break
			}
		}
	}
	if way >= 0 {
		s.mru[si] = uint16(way)
		set[way].used = s.tick
		if write {
			set[way].dirty = true
		}
		s.stats.Accesses++
		s.stats.Hits++
		if onDone != nil {
			at := now + int64(s.cfg.HitLatency)
			s.hits = append(s.hits, hitDelivery{at: at, tag: tag, onDone: onDone})
			if at < s.nextHitAt {
				s.nextHitAt = at
			}
		}
		return true
	}

	// Miss. Merge into an outstanding fill if one exists.
	for e := s.mshr[si]; e != nil; e = e.next {
		if e.lineAddr != lineAddr {
			continue
		}
		s.stats.Accesses++
		s.stats.Misses++
		s.stats.MSHRMerges++
		if write {
			e.dirty = true
		}
		if onDone != nil {
			e.waiters = append(e.waiters, waiter{tag: tag, fn: onDone})
		}
		return true
	}

	// New fill: admit to DRAM first so a full read queue backpressures the
	// core without mutating cache state.
	var e *mshrEntry
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		e.waiters = e.waiters[:0]
		e.dirty = write
	} else {
		e = &mshrEntry{dirty: write}
		e.onFill = func(at int64) { s.fill(at, e) }
	}
	e.lineAddr = lineAddr
	if onDone != nil {
		e.waiters = append(e.waiters, waiter{tag: tag, fn: onDone})
	}
	missAddr := lineAddr * uint64(s.cfg.LineBytes)
	if !s.backend.ReadLine(missAddr, e.onFill) {
		s.free = append(s.free, e)
		return false
	}
	s.stats.Accesses++
	s.stats.Misses++
	e.next = s.mshr[si]
	s.mshr[si] = e
	return true
}

// fill installs a returned line, evicting the LRU way (dirty victims are
// written back), and wakes the miss's waiters. The entry returns to the
// free list afterwards: its waiters have been delivered and its fill
// callback cannot fire again.
func (s *Slice) fill(now int64, e *mshrEntry) {
	lineAddr := e.lineAddr
	si := lineAddr & s.setMask
	if s.mshr[si] == e {
		s.mshr[si] = e.next
	} else {
		prev := s.mshr[si]
		for prev.next != e {
			prev = prev.next
		}
		prev.next = e.next
	}
	e.next = nil

	set := s.sets[si]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		s.writeback(set[victim].tag * uint64(s.cfg.LineBytes))
	}
	s.tick++
	set[victim] = line{tag: lineAddr, valid: true, dirty: e.dirty, used: s.tick}

	for _, w := range e.waiters {
		w.fn(now)
	}
	s.free = append(s.free, e)
}

func (s *Slice) writeback(addr uint64) {
	s.stats.Writebacks++
	if !s.backend.WriteLine(addr) {
		s.pendingWB = append(s.pendingWB, addr)
	}
}

// Tick delivers due hit callbacks and retries rejected writebacks. Call
// once per DRAM cycle before the cores advance.
func (s *Slice) Tick(now int64) {
	if now >= s.nextHitAt {
		for s.hitHead < len(s.hits) && s.hits[s.hitHead].at <= now {
			h := s.hits[s.hitHead]
			s.hits, s.hitHead = fifo.PopFront(s.hits, s.hitHead)
			h.onDone(now)
		}
		if s.hitHead < len(s.hits) {
			s.nextHitAt = s.hits[s.hitHead].at
		} else {
			s.nextHitAt = math.MaxInt64
		}
	}
	for s.wbHead < len(s.pendingWB) {
		if !s.backend.WriteLine(s.pendingWB[s.wbHead]) {
			break
		}
		s.pendingWB, s.wbHead = fifo.PopFront(s.pendingWB, s.wbHead)
	}
}

// NextEvent returns the earliest cycle >= now at which Tick could do
// anything: deliver a pending hit, or retry a rejected writeback (retries
// probe the controller — and mutate its stall counters — every cycle, so a
// non-empty retry list pins the slice to cycle stepping). Part of the
// clock-skipping engine's NextEvent contract (see sim); the slice has no
// per-cycle accounting, so it needs no Skip.
func (s *Slice) NextEvent(now int64) int64 {
	if s.wbHead < len(s.pendingWB) || s.nextHitAt <= now {
		return now
	}
	return s.nextHitAt
}

// PendingWritebacks reports writebacks awaiting controller admission.
func (s *Slice) PendingWritebacks() int { return len(s.pendingWB) - s.wbHead }
