package refresh

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinOrder(t *testing.T) {
	u := NewUnit(8, 64, 8, 2)
	for i := 0; i < 24; i++ {
		want := i % 8
		if got := u.PeekBank(); got != want {
			t.Fatalf("op %d: PeekBank = %d, want %d", i, got, want)
		}
		op := u.RefreshBank(u.PeekBank())
		if op.Bank != want {
			t.Fatalf("op %d: refreshed bank %d, want %d", i, op.Bank, want)
		}
	}
}

func TestRowCounterAdvancesAndWraps(t *testing.T) {
	u := NewUnit(1, 8, 2, 3)
	wantStarts := []int{0, 3, 6, 0, 3} // 6+3 clips to 2 rows then wraps
	wantRows := []int{3, 3, 2, 3, 3}
	for i := range wantStarts {
		op := u.RefreshBank(0)
		if op.StartRow != wantStarts[i] || op.Rows != wantRows[i] {
			t.Fatalf("op %d: got start=%d rows=%d, want start=%d rows=%d",
				i, op.StartRow, op.Rows, wantStarts[i], wantRows[i])
		}
	}
}

func TestPerBankCountersIndependent(t *testing.T) {
	// DARP refreshes banks out of order; each bank's row counter must
	// advance independently (paper §4.2.3, modification 5).
	u := NewUnit(4, 16, 4, 4)
	u.RefreshBank(2)
	u.RefreshBank(2)
	u.RefreshBank(0)
	if got := u.PeekRow(2); got != 8 {
		t.Errorf("bank 2 next row = %d, want 8", got)
	}
	if got := u.PeekRow(0); got != 4 {
		t.Errorf("bank 0 next row = %d, want 4", got)
	}
	if got := u.PeekRow(1); got != 0 {
		t.Errorf("bank 1 next row = %d, want 0", got)
	}
}

func TestSubarrayTracking(t *testing.T) {
	// 16 rows, 4 subarrays -> 4 rows per subarray; ops of 4 rows step
	// through subarrays 0,1,2,3 in order.
	u := NewUnit(1, 16, 4, 4)
	for want := 0; want < 4; want++ {
		if got := u.PeekSubarray(0); got != want {
			t.Fatalf("PeekSubarray = %d, want %d", got, want)
		}
		op := u.RefreshBank(0)
		if op.Subarray != want {
			t.Fatalf("op subarray = %d, want %d", op.Subarray, want)
		}
	}
}

func TestRefreshAllAdvancesEveryBank(t *testing.T) {
	u := NewUnit(8, 64, 8, 8)
	ops := u.RefreshAll()
	if len(ops) != 8 {
		t.Fatalf("RefreshAll returned %d ops, want 8", len(ops))
	}
	for b := 0; b < 8; b++ {
		if ops[b].Bank != b || ops[b].StartRow != 0 || ops[b].Rows != 8 {
			t.Errorf("bank %d op = %+v", b, ops[b])
		}
		if u.PeekRow(b) != 8 {
			t.Errorf("bank %d next row = %d, want 8", b, u.PeekRow(b))
		}
	}
}

func TestRefreshAllNPartialRows(t *testing.T) {
	// Fine granularity refresh restores fewer rows per op.
	u := NewUnit(2, 16, 2, 4)
	ops := u.RefreshAllN(2)
	for _, op := range ops {
		if op.Rows != 2 {
			t.Errorf("FGR op rows = %d, want 2", op.Rows)
		}
	}
}

func TestFullRotationCoversEveryRowExactlyOnce(t *testing.T) {
	// Property: one full rotation of refresh ops touches every row of every
	// bank exactly once — the data-integrity foundation of every policy.
	f := func(banksSeed, rowsSeed, refSeed uint8) bool {
		banks := int(banksSeed)%4 + 1
		subs := []int{1, 2, 4}[int(rowsSeed)%3]
		rows := subs * (int(rowsSeed)%8 + 1) * 2
		rpr := int(refSeed)%4 + 1

		u := NewUnit(banks, rows, subs, rpr)
		counts := make([][]int, banks)
		for b := range counts {
			counts[b] = make([]int, rows)
		}
		opsPerRotation := rows / rpr
		if rows%rpr != 0 {
			opsPerRotation++
		}
		for i := 0; i < opsPerRotation; i++ {
			for b := 0; b < banks; b++ {
				op := u.RefreshBankN(b, rpr)
				for row := op.StartRow; row < op.StartRow+op.Rows; row++ {
					counts[b][row]++
				}
			}
		}
		for b := range counts {
			for _, c := range counts[b] {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIssuedCounting(t *testing.T) {
	u := NewUnit(2, 8, 2, 1)
	u.RefreshBank(0)
	u.RefreshBank(0)
	u.RefreshBank(1)
	if u.Issued(0) != 2 || u.Issued(1) != 1 {
		t.Errorf("issued = (%d, %d), want (2, 1)", u.Issued(0), u.Issued(1))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewUnit accepted zero banks")
		}
	}()
	NewUnit(0, 8, 2, 1)
}

func TestBadBankPanics(t *testing.T) {
	u := NewUnit(2, 8, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("RefreshBank accepted out-of-range bank")
		}
	}()
	u.RefreshBank(2)
}
