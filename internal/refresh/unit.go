// Package refresh implements the DRAM-internal refresh unit: the counters
// that decide which rows a refresh command restores.
//
// A commodity device keeps a single refresh row counter per rank and, for
// per-bank refresh, an internal round-robin bank pointer (paper §2.2.2).
// DARP moves bank selection to the memory controller, which requires one
// row counter per bank because postponed/pulled-in refreshes let bank
// counters drift apart (paper §4.2.3, modification 5). SARP additionally
// decouples the row counter into a refresh-subarray counter and a local-row
// counter (paper §4.3.1, component 1); here that decomposition falls out of
// the row index arithmetically.
package refresh

import (
	"fmt"

	"dsarp/internal/snap"
)

// Unit is the refresh bookkeeping for one rank.
type Unit struct {
	banks       int
	rowsPerBank int
	rowsPerSub  int
	rowsPerRef  int

	rrBank  int   // round-robin pointer for standard REFpb
	nextRow []int // per-bank local row counter (wraps at rowsPerBank)
	issued  []int64
}

// NewUnit builds a refresh unit for a rank.
func NewUnit(banks, rowsPerBank, subarraysPerBank, rowsPerRef int) *Unit {
	if banks <= 0 || rowsPerBank <= 0 || subarraysPerBank <= 0 || rowsPerRef <= 0 {
		panic(fmt.Sprintf("refresh: invalid unit geometry banks=%d rows=%d subs=%d rowsPerRef=%d",
			banks, rowsPerBank, subarraysPerBank, rowsPerRef))
	}
	return &Unit{
		banks:       banks,
		rowsPerBank: rowsPerBank,
		rowsPerSub:  rowsPerBank / subarraysPerBank,
		rowsPerRef:  rowsPerRef,
		nextRow:     make([]int, banks),
		issued:      make([]int64, banks),
	}
}

// Op describes the rows one refresh command restores in one bank.
type Op struct {
	Bank     int
	StartRow int
	Rows     int
	Subarray int // subarray of StartRow (refresh ops do not straddle subarrays in practice)
}

// PeekBank returns the bank the internal round-robin pointer would refresh
// next (standard REFpb behavior).
func (u *Unit) PeekBank() int { return u.rrBank }

// PeekSubarray returns the subarray the next refresh of bank will occupy.
func (u *Unit) PeekSubarray(bank int) int { return u.nextRow[bank] / u.rowsPerSub }

// PeekRow returns the next row the given bank's counter points at.
func (u *Unit) PeekRow(bank int) int { return u.nextRow[bank] }

// Issued returns the number of refresh ops this bank has received.
func (u *Unit) Issued(bank int) int64 { return u.issued[bank] }

// RefreshBank consumes one refresh op for the bank: it returns the rows
// restored and advances the bank's row counter. If bank matches the
// round-robin pointer the pointer advances too, so standard REFpb and
// controller-directed (DARP) refreshes share one bookkeeping path.
func (u *Unit) RefreshBank(bank int) Op { return u.RefreshBankN(bank, u.rowsPerRef) }

// RefreshBankN is RefreshBank with an explicit op size (fine granularity
// refresh restores a fraction of the standard op's rows per command).
func (u *Unit) RefreshBankN(bank, rows int) Op {
	if bank < 0 || bank >= u.banks {
		panic(fmt.Sprintf("refresh: bank %d out of range [0,%d)", bank, u.banks))
	}
	op := u.advance(bank, rows)
	if bank == u.rrBank {
		u.rrBank = (u.rrBank + 1) % u.banks
	}
	return op
}

func (u *Unit) advance(bank, rows int) Op {
	if rows <= 0 {
		rows = 1
	}
	start := u.nextRow[bank]
	n := rows
	if start+n > u.rowsPerBank {
		n = u.rowsPerBank - start
	}
	u.nextRow[bank] = (start + n) % u.rowsPerBank
	u.issued[bank]++
	return Op{Bank: bank, StartRow: start, Rows: n, Subarray: start / u.rowsPerSub}
}

// AppendState writes the unit's mutable counters: the round-robin bank
// pointer, the per-bank row counters, and the per-bank issued totals.
// Geometry is construction-derived and omitted.
func (u *Unit) AppendState(w *snap.Writer) {
	w.Int(u.rrBank)
	for _, v := range u.nextRow {
		w.Int(v)
	}
	for _, v := range u.issued {
		w.I64(v)
	}
}

// LoadState restores the counters written by AppendState onto a unit of
// the same geometry.
func (u *Unit) LoadState(r *snap.Reader) error {
	u.rrBank = r.Int()
	for b := range u.nextRow {
		u.nextRow[b] = r.Int()
	}
	for b := range u.issued {
		u.issued[b] = r.I64()
	}
	if u.rrBank < 0 || u.rrBank >= u.banks {
		return fmt.Errorf("refresh: snapshot rrBank %d out of range [0,%d)", u.rrBank, u.banks)
	}
	return r.Err()
}

// AdvanceRR moves the round-robin pointer past the given bank; used when a
// controller-directed refresh deliberately services the round-robin target.
func (u *Unit) AdvanceRR() { u.rrBank = (u.rrBank + 1) % u.banks }

// RefreshAll consumes one refresh op in every bank (all-bank refresh) and
// returns the per-bank ops in bank order.
func (u *Unit) RefreshAll() []Op { return u.RefreshAllN(u.rowsPerRef) }

// RefreshAllN is RefreshAll with an explicit per-bank op size.
func (u *Unit) RefreshAllN(rows int) []Op {
	ops := make([]Op, u.banks)
	for b := 0; b < u.banks; b++ {
		ops[b] = u.advance(b, rows)
	}
	return ops
}
