package trace

import (
	"testing"
	"testing/quick"
)

func prof(p Pattern) Profile {
	return Profile{
		Name: "t", MPKI: 20, APKI: 25, FootprintBytes: 1 << 20,
		WriteFrac: 0.3, Pattern: p, BurstLen: 4, StrideLines: 4,
	}
}

func TestDeterministicForSeed(t *testing.T) {
	for _, p := range []Pattern{Stream, Strided, Random, Zipf, Chase} {
		a := New(prof(p), 42)
		b := New(prof(p), 42)
		for i := 0; i < 1000; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%v: generators with equal seeds diverged at access %d", p, i)
			}
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(prof(Random), 1)
	b := New(prof(Random), 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d/100 identical accesses", same)
	}
}

func TestAddressesStayInFootprint(t *testing.T) {
	f := func(seed int64, patt uint8) bool {
		p := prof(Pattern(int(patt) % 5))
		g := New(p, seed)
		for i := 0; i < 500; i++ {
			if g.Next().Addr >= p.FootprintBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressesLineAligned(t *testing.T) {
	g := New(prof(Random), 3)
	for i := 0; i < 500; i++ {
		if a := g.Next().Addr; a%64 != 0 {
			t.Fatalf("address %#x not line-aligned", a)
		}
	}
}

func TestWriteFraction(t *testing.T) {
	g := New(prof(Random), 5)
	writes := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("write fraction = %.3f, want ~0.30", frac)
	}
}

func TestMeanGapMatchesAPKI(t *testing.T) {
	g := New(prof(Random), 7)
	var total int64
	const n = 50_000
	for i := 0; i < n; i++ {
		total += int64(g.Next().Gap) + 1
	}
	apki := 1000 * float64(n) / float64(total)
	if apki < 20 || apki > 30 {
		t.Errorf("measured APKI = %.1f, want ~25", apki)
	}
}

func TestStreamIsSequential(t *testing.T) {
	p := prof(Stream)
	g := New(p, 9)
	prev := g.Next().Addr
	for i := 0; i < 100; i++ {
		cur := g.Next().Addr
		if cur != prev+64 && cur != 0 { // wraps at footprint end
			t.Fatalf("stream jumped from %#x to %#x", prev, cur)
		}
		prev = cur
	}
}

func TestStridedStride(t *testing.T) {
	p := prof(Strided)
	g := New(p, 9)
	prev := g.Next().Addr
	for i := 0; i < 100; i++ {
		cur := g.Next().Addr
		want := (prev + 4*64) % p.FootprintBytes
		if cur != want {
			t.Fatalf("stride walk: %#x -> %#x, want %#x", prev, cur, want)
		}
		prev = cur
	}
}

func TestZipfSkew(t *testing.T) {
	p := prof(Zipf)
	p.BurstLen = 1
	g := New(p, 11)
	counts := map[uint64]int{}
	const n = 20_000
	for i := 0; i < n; i++ {
		counts[g.Next().Addr]++
	}
	// A Zipf(1.2) stream concentrates: the single hottest line should take
	// a far larger share than uniform (1/16384 of the footprint).
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if float64(maxCount)/n < 0.01 {
		t.Errorf("hottest line share %.4f, want skewed > 0.01", float64(maxCount)/n)
	}
}

func TestRandomSpreads(t *testing.T) {
	p := prof(Random)
	p.BurstLen = 1
	g := New(p, 13)
	seen := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		seen[g.Next().Addr] = true
	}
	if len(seen) < 1500 {
		t.Errorf("random stream revisits too much: %d distinct of 2000", len(seen))
	}
}

func TestGapClusteringShape(t *testing.T) {
	// Gaps alternate between one long cluster-leading gap and MLPBurst-1
	// short ones; the short-gap share must dominate.
	p := prof(Random)
	p.MLPBurst = 4
	g := New(p, 15)
	short := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if float64(g.Next().Gap) < 1000/p.APKI {
			short++
		}
	}
	if float64(short)/n < 0.6 {
		t.Errorf("short-gap share %.2f, want clustered >= 0.6", float64(short)/n)
	}
}

func TestChaseForcesMLP1(t *testing.T) {
	p := prof(Chase)
	p.MLPBurst = 8 // must be overridden to 1 for dependent chains
	g := New(p, 17).(*gen)
	if g.p.MLPBurst != 1 {
		t.Errorf("Chase MLPBurst = %d, want 1", g.p.MLPBurst)
	}
}

func TestIntensiveClassification(t *testing.T) {
	if !(Profile{MPKI: 10}).Intensive() {
		t.Error("MPKI 10 must classify intensive (paper: MPKI >= 10)")
	}
	if (Profile{MPKI: 9.9}).Intensive() {
		t.Error("MPKI 9.9 must classify non-intensive")
	}
}
