// Package trace generates synthetic memory-access streams standing in for
// the paper's Pin-driven SPEC CPU2006 / STREAM / TPC / HPCC-RandomAccess
// traces (DESIGN.md substitution 1).
//
// A Generator emits the stream of last-level-cache accesses a benchmark
// produces, each preceded by a gap of non-memory instructions. The four
// workload properties the paper's mechanisms are sensitive to are explicit
// profile knobs:
//
//   - intensity (accesses per kilo-instruction and footprint vs. LLC size,
//     which together set the LLC MPKI used for the paper's intensive /
//     non-intensive split at MPKI >= 10),
//   - read/write mix (dirty-writeback rate, which feeds DARP's
//     write-refresh parallelization),
//   - spatial locality (row-buffer hit potential),
//   - bank-level parallelism (dependent chains limit outstanding misses).
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"dsarp/internal/snap"
)

// Access is one LLC access of a synthetic benchmark.
type Access struct {
	// Gap is the number of non-memory instructions executed before this
	// access.
	Gap int
	// Addr is a byte address within the benchmark's virtual footprint.
	Addr uint64
	// Write marks a store (a potential dirty line and eventual writeback).
	Write bool
}

// Generator produces an endless access stream. Generators are deterministic
// for a given construction seed and are not safe for concurrent use.
type Generator interface {
	Next() Access
	Name() string
}

// Pattern selects the spatial behavior of a profile.
type Pattern int

const (
	// Stream walks the footprint sequentially (STREAM-like).
	Stream Pattern = iota
	// Strided walks with a fixed multi-line stride (HPC array codes).
	Strided
	// Random draws uniformly over the footprint (HPCC RandomAccess).
	Random
	// Zipf draws with a skewed hot-set distribution (transaction processing).
	Zipf
	// Chase is Random with a dependence chain: the next address is only
	// known once the previous load returns, limiting memory-level
	// parallelism (mcf-like pointer chasing).
	Chase
)

func (p Pattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case Zipf:
		return "zipf"
	case Chase:
		return "chase"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Profile parameterizes a synthetic benchmark.
type Profile struct {
	Name string
	// MPKI is the nominal LLC miss rate per kilo-instruction; benchmarks
	// with MPKI >= 10 are classified memory-intensive (paper §5).
	MPKI float64
	// APKI is the LLC access rate per kilo-instruction (>= MPKI; the
	// difference is absorbed by LLC hits).
	APKI float64
	// FootprintBytes is the working-set size. Footprints below the LLC
	// slice size hit mostly in the cache.
	FootprintBytes uint64
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
	Pattern   Pattern
	// StrideLines is the stride for Strided, in cache lines.
	StrideLines uint64
	// BurstLen is the mean number of consecutive same-region accesses
	// (spatial locality runs) for Random/Zipf/Chase patterns.
	BurstLen int
	// MLPBurst is the number of accesses emitted close together before a
	// long instruction gap. Real programs miss in clusters (a loop touching
	// an array section), which is what gives low-MPKI benchmarks
	// memory-level parallelism; 0 defaults to 4. Dependent-chain profiles
	// (Chase) use 1.
	MLPBurst int
	// MaxOutstanding caps the benchmark's memory-level parallelism
	// (0 = limited only by the core's MSHRs). Chase profiles use 1-2.
	MaxOutstanding int
}

// Intensive reports whether the profile is memory-intensive per the paper's
// MPKI >= 10 threshold.
func (p Profile) Intensive() bool { return p.MPKI >= 10 }

// lineBytes matches the LLC/DRAM line size.
const lineBytes = 64

// gen implements Generator for a Profile. Its rng is a counted source so
// the stream position serializes as a single draw count (snap.Rand).
type gen struct {
	p     Profile
	rng   *snap.Rand
	zipf  *rand.Zipf
	lines uint64

	pos     uint64 // current line for Stream/Strided
	burst   int    // remaining accesses in the current locality run
	baseRun uint64 // base line of the current run
	meanGap float64

	gapLeft  int // remaining accesses in the current gap cluster
	shortGap float64
	longGap  float64
}

// New builds a deterministic generator for a profile.
func New(p Profile, seed int64) Generator {
	if p.APKI <= 0 {
		p.APKI = p.MPKI
	}
	if p.BurstLen <= 0 {
		p.BurstLen = 1
	}
	if p.StrideLines == 0 {
		p.StrideLines = 1
	}
	lines := p.FootprintBytes / lineBytes
	if lines == 0 {
		lines = 1
	}
	if p.MLPBurst <= 0 {
		p.MLPBurst = 4
	}
	if p.Pattern == Chase {
		p.MLPBurst = 1
	}
	rng := snap.NewRand(seed)
	g := &gen{
		p:       p,
		rng:     rng,
		lines:   lines,
		meanGap: 1000 / p.APKI,
	}
	// Cluster the instruction gaps: within a cluster of MLPBurst accesses
	// gaps shrink to a quarter of the mean, and the cluster-leading gap
	// grows to compensate, keeping the overall access rate at APKI.
	b := float64(p.MLPBurst)
	g.shortGap = g.meanGap / 4
	g.longGap = g.meanGap*b - g.shortGap*(b-1)
	if p.Pattern == Zipf {
		// A mildly skewed distribution over the footprint: hot enough to
		// have reuse, flat enough that the hot set exceeds an LLC slice
		// (s=1.2 concentrates so hard the whole hot set caches and the
		// nominal MPKI never materializes).
		g.zipf = rand.NewZipf(rng.Rand, 1.02, 8, lines-1)
	}
	return g
}

// Name implements Generator.
func (g *gen) Name() string { return g.p.Name }

// AppendState implements snap.Codec: the stream position is the raw rng
// draw count plus the walk/run/gap cursors. Everything else in gen is
// derived from the profile at construction.
func (g *gen) AppendState(w *snap.Writer) {
	w.U64(g.rng.Draws())
	w.U64(g.pos)
	w.Int(g.burst)
	w.U64(g.baseRun)
	w.Int(g.gapLeft)
}

// LoadState implements snap.Codec.
func (g *gen) LoadState(r *snap.Reader) error {
	g.rng.Restore(r.U64())
	g.pos = r.U64()
	g.burst = r.Int()
	g.baseRun = r.U64()
	g.gapLeft = r.Int()
	return r.Err()
}

// Next implements Generator.
func (g *gen) Next() Access {
	gap := g.nextGap()
	line := g.nextLine()
	write := g.rng.Float64() < g.p.WriteFrac
	return Access{Gap: gap, Addr: line * lineBytes, Write: write}
}

// nextGap draws the instruction gap: exponential around the cluster-phase
// mean, so accesses cluster and spread like real miss streams rather than
// arriving on a fixed beat.
func (g *gen) nextGap() int {
	mean := g.shortGap
	if g.gapLeft <= 0 {
		g.gapLeft = g.p.MLPBurst
		mean = g.longGap
	}
	g.gapLeft--
	if mean <= 1 {
		return int(mean)
	}
	// Exponential with the phase mean via inverse transform.
	u := g.rng.Float64()
	if u == 0 {
		u = 1e-12
	}
	gap := int(-mean * math.Log(u))
	if gap < 0 {
		gap = 0
	}
	if gap > 100_000 {
		gap = 100_000
	}
	return gap
}

func (g *gen) nextLine() uint64 {
	switch g.p.Pattern {
	case Stream:
		g.pos = (g.pos + 1) % g.lines
		return g.pos
	case Strided:
		g.pos = (g.pos + g.p.StrideLines) % g.lines
		return g.pos
	default: // Random, Zipf, Chase: locality runs over a random base
		if g.burst <= 0 {
			g.baseRun = g.draw()
			// Run lengths are geometric with mean BurstLen.
			g.burst = 1
			for g.p.BurstLen > 1 && g.rng.Float64() < 1-1/float64(g.p.BurstLen) {
				g.burst++
			}
			g.pos = 0
		}
		line := (g.baseRun + g.pos) % g.lines
		g.pos++
		g.burst--
		return line
	}
}

func (g *gen) draw() uint64 {
	if g.zipf != nil {
		return g.zipf.Uint64() % g.lines
	}
	return g.rng.Uint64() % g.lines
}
