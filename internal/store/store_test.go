package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	key := KeyOf([]byte("spec-a"))
	payload := []byte(`{"ipc":[0.5,1.25]}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want stored payload", got, ok)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf([]byte("spec-b"))
	payload := []byte("persist me")
	s := open(t, dir, Options{})
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	got, ok := s2.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened store lost the entry: %q, %v", got, ok)
	}
	if s2.Len() != 1 {
		t.Errorf("reopened Len = %d", s2.Len())
	}
}

// TestCorruptionIsAMiss pins the recovery contract: a truncated or
// bit-flipped entry must read as a miss (so callers recompute) and the bad
// file must be deleted (so the recompute's Put heals the slot).
func TestCorruptionIsAMiss(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(path string) error
	}{
		{"truncated", func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:len(b)-3], 0o666)
		}},
		{"bitflip", func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			b[len(b)-1] ^= 0x40
			return os.WriteFile(path, b, 0o666)
		}},
		{"emptied", func(path string) error {
			return os.WriteFile(path, nil, 0o666)
		}},
		{"trailing-garbage", func(path string) error {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.WriteString("extra")
			return err
		}},
		{"huge-length-header", func(path string) error {
			// A corrupt length field must be rejected before the payload
			// buffer is allocated, not crash the process trying.
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			i := bytes.IndexByte(b, '\n')
			head := bytes.Fields(b[:i])
			head[2] = []byte("99999999999999")
			return os.WriteFile(path, append(append(bytes.Join(head, []byte(" ")), '\n'), b[i+1:]...), 0o666)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Options{})
			key := KeyOf([]byte("spec-" + tc.name))
			payload := []byte("some result payload for " + tc.name)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if err := tc.corrupt(s.EntryPath(key)); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			if _, err := os.Stat(s.EntryPath(key)); !os.IsNotExist(err) {
				t.Error("corrupt entry not deleted")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Errorf("Corrupt = %d, want 1", st.Corrupt)
			}
			// The slot heals: a fresh Put+Get works again.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Error("healed entry unreadable")
			}
		})
	}
}

func TestByteCapEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 256)
	// Entry size = header + 256; cap the store at roughly 3 entries.
	s := open(t, dir, Options{MaxBytes: 3 * 360})
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = KeyOf([]byte(fmt.Sprintf("entry-%d", i)))
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
		// Keep entry 0 hot so eviction order reflects use, not insertion.
		if _, ok := s.Get(keys[0]); i < 3 && !ok {
			t.Fatalf("hot entry evicted at i=%d", i)
		}
	}
	if _, ok := s.Get(keys[0]); !ok {
		t.Error("most-recently-used entry was evicted")
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Error("least-recently-used entry survived over cap")
	}
	st := s.Stats()
	if st.Evicted == 0 {
		t.Error("no evictions recorded")
	}
	if st.Bytes > 3*360 {
		t.Errorf("store over cap: %d bytes", st.Bytes)
	}
}

func TestTempFilesCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, tmpPrefix+"crashed")
	fresh := filepath.Join(dir, tmpPrefix+"inflight")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file reaped: it may belong to a live writer in another process")
	}
	if s.Len() != 0 {
		t.Errorf("temp file indexed as entry: Len = %d", s.Len())
	}
}

// TestUnindexedCorruptFileDeleted: a corrupt entry this process never
// indexed (written by another process sharing the directory) is still
// deleted on the failed read, so the slot heals for everyone.
func TestUnindexedCorruptFileDeleted(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	key := KeyOf([]byte("foreign"))
	path := s.EntryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not a valid entry"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt foreign entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt foreign entry not deleted")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
}

// TestCrossProcessVisibility: a second Store over the same directory (a
// concurrent CLI run or daemon) sees entries written after its Open.
func TestCrossProcessVisibility(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{})
	b := open(t, dir, Options{}) // opened before a writes anything
	key := KeyOf([]byte("shared"))
	payload := []byte("written by a, read by b")
	if err := a.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("sibling store missed a post-Open entry: %q, %v", got, ok)
	}
	if b.Len() != 1 {
		t.Errorf("probed entry not indexed: Len = %d", b.Len())
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o666); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	if s.Len() != 0 {
		t.Errorf("foreign file indexed: Len = %d", s.Len())
	}
}

func TestKeyParseRoundTrip(t *testing.T) {
	k := KeyOf([]byte("abc"))
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("ParseKey(%q) = %v, %v", k.String(), got, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Error("short key parsed")
	}
	if _, err := ParseKey(strings.Repeat("zz", 32)); err == nil {
		t.Error("non-hex key parsed")
	}
}

// TestGenerationSweepAtOpen pins the schema GC contract: entries written
// under generation A are swept — not merely missed — when the store
// reopens under generation B, with the reclaimed space reported; same- and
// no-generation reopens keep everything.
func TestGenerationSweepAtOpen(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf([]byte("gen-a-entry"))
	payload := []byte("salted with generation A")
	s := open(t, dir, Options{Generation: "schema-a"})
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}

	// Same generation: warm across restarts, nothing swept.
	s2 := open(t, dir, Options{Generation: "schema-a"})
	if _, ok := s2.Get(key); !ok {
		t.Fatal("same-generation reopen lost the entry")
	}
	if st := s2.Stats(); st.Expired != 0 {
		t.Errorf("same-generation reopen expired %d entries", st.Expired)
	}

	// New generation: the old entry's key can never be addressed again, so
	// it is deleted immediately and the space accounted.
	s3 := open(t, dir, Options{Generation: "schema-b"})
	if st := s3.Stats(); st.Expired != 1 || st.ExpiredBytes <= int64(len(payload)) {
		t.Errorf("new-generation reopen: Expired=%d ExpiredBytes=%d, want 1 entry > payload size",
			st.Expired, st.ExpiredBytes)
	}
	if s3.Len() != 0 {
		t.Errorf("swept store indexes %d entries", s3.Len())
	}
	if _, err := os.Stat(s3.EntryPath(key)); !os.IsNotExist(err) {
		t.Error("old-generation entry file survived the sweep")
	}

	// And the sweep happens exactly once: reopening under B again is calm.
	s4 := open(t, dir, Options{Generation: "schema-b"})
	if st := s4.Stats(); st.Expired != 0 {
		t.Errorf("second same-generation reopen expired %d entries", st.Expired)
	}
}

// TestGenerationAdoptsLegacyStore: a pre-manifest store directory (entries
// but no MANIFEST) is adopted, not nuked — its entries were written by the
// same binary lineage and are presumed current.
func TestGenerationAdoptsLegacyStore(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf([]byte("legacy-entry"))
	s := open(t, dir, Options{}) // no generation: no manifest written
	if err := s.Put(key, []byte("warm result")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); !os.IsNotExist(err) {
		t.Fatal("generation-less store wrote a manifest")
	}
	s2 := open(t, dir, Options{Generation: "schema-a"})
	if _, ok := s2.Get(key); !ok {
		t.Error("legacy entry swept on first generation-aware open")
	}
	if st := s2.Stats(); st.Expired != 0 {
		t.Errorf("adoption expired %d entries", st.Expired)
	}
	// The adoption recorded the generation: a later generation now sweeps.
	s3 := open(t, dir, Options{Generation: "schema-b"})
	if st := s3.Stats(); st.Expired != 1 {
		t.Errorf("post-adoption bump expired %d entries, want 1", st.Expired)
	}
}

// TestContains probes existence without disturbing LRU or read stats.
func TestContains(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	key := KeyOf([]byte("contains-me"))
	if s.Contains(key) {
		t.Fatal("empty store contains the key")
	}
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(key) {
		t.Fatal("store does not contain a just-put key")
	}
	// Written by "another process": visible without an index entry.
	other := open(t, dir, Options{})
	key2 := KeyOf([]byte("other-writer"))
	if err := other.Put(key2, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(key2) {
		t.Error("Contains missed an entry written by a sibling store")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Contains touched read stats: %+v", st)
	}
}

// TestDegradedMode: a write failure flips the store read-only — later
// Puts fail fast without disk I/O, Gets keep serving, and the reason is
// reported via Degraded() and Stats. A fresh Open starts healthy again.
func TestDegradedMode(t *testing.T) {
	dir := t.TempDir()
	fail := false
	s := open(t, dir, Options{FailWrites: func() error {
		if fail {
			return fmt.Errorf("injected ENOSPC")
		}
		return nil
	}})

	keyA := KeyOf([]byte("healthy"))
	if err := s.Put(keyA, []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("healthy store reports degraded")
	}

	fail = true
	keyB := KeyOf([]byte("doomed"))
	if err := s.Put(keyB, []byte("payload-b")); err == nil {
		t.Fatal("Put succeeded through an injected write failure")
	}
	deg, reason := s.Degraded()
	if !deg || !strings.Contains(reason, "ENOSPC") {
		t.Fatalf("Degraded() = %v, %q; want true with the injected reason", deg, reason)
	}

	// Degraded Puts fail fast even once the injected fault clears: the
	// state is sticky until a fresh Open.
	fail = false
	if err := s.Put(keyB, []byte("payload-b")); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("degraded Put = %v, want read-only refusal", err)
	}
	if got, ok := s.Get(keyA); !ok || !bytes.Equal(got, []byte("payload-a")) {
		t.Fatal("degraded store no longer serves existing entries")
	}
	st := s.Stats()
	if !st.Degraded || st.DegradedReason == "" || st.WriteErrs != 2 {
		t.Fatalf("stats = %+v; want degraded with reason and 2 write errors", st)
	}

	// A restart onto a repaired disk is healthy and writable.
	s2 := open(t, dir, Options{})
	if deg, _ := s2.Degraded(); deg {
		t.Fatal("fresh Open inherited degraded state")
	}
	if err := s2.Put(keyB, []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
}

func TestKindNamespacesAreDisjoint(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	key := KeyOf([]byte("shared"))
	if err := s.PutKind(key, KindResult, []byte("result-payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutKind(key, KindSnapshot, []byte("snapshot-payload")); err != nil {
		t.Fatal(err)
	}
	res, ok := s.GetKind(key, KindResult)
	if !ok || string(res) != "result-payload" {
		t.Fatalf("result namespace = %q, %v", res, ok)
	}
	snap, ok := s.GetKind(key, KindSnapshot)
	if !ok || string(snap) != "snapshot-payload" {
		t.Fatalf("snapshot namespace = %q, %v", snap, ok)
	}
	st := s.Stats()
	if st.ResultEntries != 1 || st.SnapshotEntries != 1 || st.Entries != 2 {
		t.Errorf("kind split: %+v", st)
	}
	if st.ResultBytes+st.SnapshotBytes != st.Bytes {
		t.Errorf("kind bytes %d+%d do not sum to total %d", st.ResultBytes, st.SnapshotBytes, st.Bytes)
	}
}

func TestKindNamespacesPersistAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	key := KeyOf([]byte("snapshot-entry"))
	if err := s.PutKind(key, KindSnapshot, []byte("checkpoint")); err != nil {
		t.Fatal(err)
	}
	reopened := open(t, dir, Options{})
	if got, ok := reopened.GetKind(key, KindSnapshot); !ok || string(got) != "checkpoint" {
		t.Fatalf("reopened snapshot = %q, %v", got, ok)
	}
	if reopened.ContainsKind(key, KindResult) {
		t.Error("snapshot entry leaked into the result namespace")
	}
	st := reopened.Stats()
	if st.SnapshotEntries != 1 || st.ResultEntries != 0 {
		t.Errorf("reopened kind split: %+v", st)
	}
}

// TestByteCapEvictsSnapshotsFirst pins the retention priority: under byte
// pressure every snapshot is evicted — even recently-used ones — before a
// single result is touched. Snapshots only accelerate recomputation;
// results are the store's cargo.
func TestByteCapEvictsSnapshotsFirst(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 100)
	sizer := open(t, t.TempDir(), Options{})
	if err := sizer.Put(KeyOf([]byte("sizer")), payload); err != nil {
		t.Fatal(err)
	}
	entrySize := sizer.Stats().Bytes
	s := open(t, t.TempDir(), Options{MaxBytes: 4 * entrySize})

	oldRes := KeyOf([]byte("result-old"))
	if err := s.PutKind(oldRes, KindResult, payload); err != nil {
		t.Fatal(err)
	}
	snaps := make([]Key, 3)
	for i := range snaps {
		snaps[i] = KeyOf([]byte(fmt.Sprintf("snap-%d", i)))
		if err := s.PutKind(snaps[i], KindSnapshot, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Refresh every snapshot's LRU stamp: the result is now the coldest
	// entry by recency, so plain LRU would evict it first.
	for _, k := range snaps {
		if _, ok := s.GetKind(k, KindSnapshot); !ok {
			t.Fatal("warm snapshot missing before pressure")
		}
	}
	// Two more results push the store to 6 entries against a 4-entry cap.
	for i := 0; i < 2; i++ {
		if err := s.PutKind(KeyOf([]byte(fmt.Sprintf("result-%d", i))), KindResult, payload); err != nil {
			t.Fatal(err)
		}
	}
	if !s.ContainsKind(oldRes, KindResult) {
		t.Error("cold result evicted while snapshots remained")
	}
	st := s.Stats()
	if st.ResultEntries != 3 {
		t.Errorf("results held = %d, want all 3 (stats %+v)", st.ResultEntries, st)
	}
	if st.SnapshotEntries != 1 {
		t.Errorf("snapshots held = %d, want 1 survivor under the cap", st.SnapshotEntries)
	}
	for _, k := range snaps[:2] {
		if s.ContainsKind(k, KindSnapshot) {
			t.Error("LRU order violated within the snapshot namespace")
		}
	}
}
