// Package store is a content-addressed on-disk result cache. Entries are
// keyed by a SHA-256 digest of a canonical description of the computation
// (the caller decides what to hash; internal/exp hashes a fully-resolved
// simulation spec plus a schema version) and hold an opaque payload.
//
// The store is crash-safe and corruption-tolerant by construction:
//
//   - writes go to a temp file in the store directory and are renamed into
//     place, so readers never observe a partial entry;
//   - every entry carries a header with the payload's length and SHA-256,
//     verified on read — a truncated or bit-flipped entry is deleted and
//     reported as a miss, turning corruption into a recompute;
//   - an optional byte cap evicts the least-recently-used entries after
//     each write;
//   - a write failure (ENOSPC, EIO, a yanked volume) flips the store into
//     a sticky read-only degraded state instead of failing work: Gets
//     keep serving, Puts fail fast without touching the disk, and
//     Degraded()/Stats expose the reason so a serving layer can report
//     itself degraded rather than dead. The state clears only on a fresh
//     Open (typically a process restart onto a repaired disk).
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Key addresses one entry: the SHA-256 of the caller's canonical
// description of the computation.
type Key [sha256.Size]byte

// KeyOf hashes a canonical description into a Key.
func KeyOf(canonical []byte) Key { return sha256.Sum256(canonical) }

// String returns the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses a 64-hex-digit key.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("store: malformed key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// header is the first line of every entry file: magic, payload SHA-256,
// payload length. The key is the file name, so the header binds the
// content; together a read can detect truncation, bit flips, and renamed
// foreign files.
const magic = "dsarpstore1"

// Kind partitions the store into namespaces with different retention
// priorities. The two kinds never collide even under the same Key: they
// live in separate directory trees.
type Kind int

const (
	// KindResult entries are completed computation outputs — the store's
	// primary cargo, evicted last.
	KindResult Kind = iota
	// KindSnapshot entries are resumable mid-computation checkpoints. They
	// are pure accelerators (losing one costs recompute time, never
	// correctness), so the byte cap evicts every snapshot before it touches
	// a single result.
	KindSnapshot
)

// snapDir is the subdirectory holding KindSnapshot entries; KindResult
// entries keep the historical two-level layout at the store root, so
// existing stores are read unchanged.
const snapDir = "snap"

func (k Kind) String() string {
	if k == KindSnapshot {
		return "snapshot"
	}
	return "result"
}

// Options configure a store.
type Options struct {
	// MaxBytes caps the store's total payload+header size; 0 means
	// unlimited. When a write pushes the store over the cap, the
	// least-recently-used entries are evicted until it fits (the entry just
	// written is never evicted by its own write).
	MaxBytes int64
	// Generation names the schema generation of the keys the caller
	// writes (internal/exp passes exp.SchemaVersion — the same string
	// salted into every key). It is recorded in a manifest file in the
	// store directory. When Open finds a manifest naming a different
	// generation, every entry is garbage: its key was salted with the old
	// generation, so no current-generation Get can ever address it again.
	// Open sweeps them immediately — reporting the reclaimed space in
	// Stats.Expired/ExpiredBytes — instead of letting dead entries wait
	// out the LRU cap. A store without a manifest (created before
	// generations existed) is adopted as current. Empty disables the
	// mechanism.
	Generation string
	// FailWrites, if non-nil, is consulted before each Put writes to disk;
	// a non-nil return injects that error as a write failure (and so flips
	// the store degraded). Fault-injection hook for chaos testing —
	// production stores leave it nil.
	FailWrites func() error
}

// Stats describe the store's state and activity since Open. The JSON tags
// are part of the serving layer's /v1/stats wire format.
type Stats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Per-kind splits of Entries/Bytes: results are the durable cargo,
	// snapshots the evict-first checkpoint namespace.
	ResultEntries   int   `json:"result_entries"`
	ResultBytes     int64 `json:"result_bytes"`
	SnapshotEntries int   `json:"snapshot_entries"`
	SnapshotBytes   int64 `json:"snapshot_bytes"`
	Hits            int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Corrupt   int64 `json:"corrupt"` // entries deleted because verification failed
	Evicted   int64 `json:"evicted"` // entries removed by the byte cap
	WriteErrs int64 `json:"write_errs"`
	// Expired/ExpiredBytes count the entries swept at Open because the
	// store's manifest named an older schema generation than
	// Options.Generation (their keys can never be addressed again).
	Expired      int64 `json:"expired"`
	ExpiredBytes int64 `json:"expired_bytes"`
	// Degraded reports the sticky read-only state a write failure flips
	// the store into; DegradedReason is the first failure's error text.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

type entry struct {
	size  int64
	stamp int64 // logical LRU clock; higher = more recently used
}

// entryKey indexes one entry: the same Key may exist under both kinds
// (they are separate namespaces on disk).
type entryKey struct {
	key  Key
	kind Kind
}

// Store is a content-addressed cache rooted at one directory. All methods
// are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	entries  map[entryKey]*entry
	bytes    int64
	// kindEntries/kindBytes split the totals by namespace for Stats and
	// for the snapshot-first eviction order.
	kindEntries [2]int
	kindBytes   [2]int64
	clock    int64
	stats    Stats
	degraded string // non-empty = read-only, value is the reason
}

// Open creates (if necessary) and indexes the store rooted at dir. With
// Options.Generation set, entries recorded under an older generation are
// swept here (see Options.Generation); check Stats().Expired afterwards to
// report the reclaimed space.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, entries: map[entryKey]*entry{}}
	// sweepHorizon is taken before the manifest is read: during a rolling
	// generation bump across processes sharing the directory, a sibling
	// that already published the new manifest may be writing
	// current-generation entries while this process (which read the old
	// manifest first) sweeps. Those entries are strictly newer than the
	// horizon, so the mtime gate below spares them; genuinely stale
	// entries predate the bump and fall below it.
	sweepHorizon := time.Now()
	sweep, writeManifest, err := s.readGeneration()
	if err != nil {
		return nil, err
	}
	type found struct {
		key   entryKey
		size  int64
		mtime int64
	}
	var idx []found
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// Leftover temp file from a crashed writer: never published.
			// Age-gated so opening a store another process is actively
			// writing to does not reap its in-flight temp files.
			if info, err := d.Info(); err == nil && time.Since(info.ModTime()) > time.Hour {
				os.Remove(path)
			}
			return nil
		}
		key, err := ParseKey(filepath.Base(filepath.Dir(path)) + name)
		if err != nil {
			return nil // foreign file (the manifest included); leave it alone
		}
		kind := KindResult
		if rel, rerr := filepath.Rel(dir, path); rerr == nil &&
			strings.HasPrefix(rel, snapDir+string(filepath.Separator)) {
			kind = KindSnapshot
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		if sweep && info.ModTime().Before(sweepHorizon) {
			// Old-generation entry: unreachable by any current key.
			os.Remove(path)
			s.stats.Expired++
			s.stats.ExpiredBytes += info.Size()
			return nil
		}
		idx = append(idx, found{key: entryKey{key, kind}, size: info.Size(), mtime: info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Seed the LRU clock from on-disk mtimes so pruning survives restarts.
	sort.Slice(idx, func(i, j int) bool { return idx[i].mtime < idx[j].mtime })
	for _, f := range idx {
		s.clock++
		s.entries[f.key] = &entry{size: f.size, stamp: s.clock}
		s.bytes += f.size
		s.kindEntries[f.key.kind]++
		s.kindBytes[f.key.kind] += f.size
	}
	// The manifest is published only after a completed sweep: a crash
	// mid-sweep leaves the old manifest in place, so the next Open sweeps
	// the remainder instead of trusting stale entries.
	if writeManifest {
		if err := s.writeManifest(filepath.Join(dir, manifestName)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// manifestName is the per-store generation record. It lives at the store
// root, where its name can never collide with an entry (entries are
// two-level hex paths) and ParseKey skips it during indexing.
const manifestName = "MANIFEST"

const manifestMagic = "dsarpstore-manifest1"

// readGeneration reads the store's manifest and reports whether existing
// entries belong to an older generation and must be swept, and whether
// the manifest needs (re)writing after indexing. A store predating
// manifests (entries but no MANIFEST file) is adopted as current: its
// entries were written by a caller that did not record generations, and
// deleting a possibly-warm store on upgrade would be strictly worse than
// trusting it.
func (s *Store) readGeneration() (sweep, write bool, err error) {
	if s.opts.Generation == "" {
		return false, false, nil
	}
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	switch {
	case err == nil:
		var magic, gen string
		if _, err := fmt.Sscanf(string(data), "%s %s", &magic, &gen); err != nil || magic != manifestMagic {
			// Unreadable manifest: rewrite it, keep the entries (same
			// trust call as the missing-manifest case).
			return false, true, nil
		}
		return gen != s.opts.Generation, gen != s.opts.Generation, nil
	case os.IsNotExist(err):
		return false, true, nil
	default:
		return false, false, fmt.Errorf("store: %w", err)
	}
}

// writeManifest atomically publishes the current generation.
func (s *Store) writeManifest(path string) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := fmt.Fprintf(tmp, "%s %s\n", manifestMagic, s.opts.Generation)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", werr)
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

const tmpPrefix = ".tmp-"

// path returns the entry file for a key: two-level fan-out on the first
// hex byte (dir/ab/cdef... for results, dir/snap/ab/cdef... for
// snapshots).
func (s *Store) path(ek entryKey) string {
	hexk := ek.key.String()
	if ek.kind == KindSnapshot {
		return filepath.Join(s.dir, snapDir, hexk[:2], hexk[2:])
	}
	return filepath.Join(s.dir, hexk[:2], hexk[2:])
}

// EntryPath reports where a result entry for key is (or would be) stored.
// Diagnostic only; the file format is private to this package.
func (s *Store) EntryPath(k Key) string { return s.path(entryKey{k, KindResult}) }

// Get returns the result payload stored under key; see GetKind.
func (s *Store) Get(k Key) ([]byte, bool) { return s.GetKind(k, KindResult) }

// GetKind returns the payload stored under key in the given namespace. A
// missing, truncated, or corrupted entry is a miss; corrupt files are
// deleted so the next Put can heal the slot. The disk is probed even for
// keys absent from the Open-time index, so entries written by another
// process sharing the directory are found; file I/O and hashing happen
// outside the store lock, so concurrent reads do not serialize on each
// other.
func (s *Store) GetKind(k Key, kind Kind) ([]byte, bool) {
	ek := entryKey{k, kind}
	path := s.path(ek)
	s.mu.Lock()
	e, indexed := s.entries[ek]
	s.mu.Unlock()

	payload, err := readEntry(path)
	if err != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		cur, ok := s.entries[ek]
		switch {
		case ok && indexed && cur == e:
			// The entry we indexed is corrupt: drop index and file.
			s.dropLocked(ek, cur)
			s.stats.Corrupt++
		case ok:
			// A concurrent in-process Put healed the slot since we looked;
			// leave it alone.
		case os.IsNotExist(err):
			// Plain miss: nothing on disk.
		default:
			// A corrupt file we never indexed (written by another process
			// sharing the directory): delete it too, so its slot heals.
			os.Remove(path)
			s.stats.Corrupt++
		}
		s.stats.Misses++
		return nil, false
	}

	var size int64
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	s.mu.Lock()
	s.clock++
	if cur, ok := s.entries[ek]; ok {
		cur.stamp = s.clock
	} else {
		// Found on disk but not in the index: another process wrote it.
		s.entries[ek] = &entry{size: size, stamp: s.clock}
		s.bytes += size
		s.kindEntries[ek.kind]++
		s.kindBytes[ek.kind] += size
	}
	s.stats.Hits++
	s.mu.Unlock()
	// Bump the mtime (best effort) so LRU eviction order survives a
	// restart, not just write order.
	now := time.Now()
	os.Chtimes(path, now, now)
	return payload, true
}

// readEntry reads and verifies one entry file.
func readEntry(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	head, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("store: short header: %w", err)
	}
	var gotMagic, sum string
	var n int64
	if _, err := fmt.Sscanf(head, "%s %s %d", &gotMagic, &sum, &n); err != nil || gotMagic != magic || n < 0 {
		return nil, fmt.Errorf("store: malformed header %q", head)
	}
	// The declared length is untrusted until the hash checks out: bound it
	// by the file's actual size so a corrupt header cannot demand an
	// absurd allocation.
	if n > fi.Size() {
		return nil, fmt.Errorf("store: header claims %d payload bytes in a %d-byte file", n, fi.Size())
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("store: truncated payload: %w", err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("store: trailing data after payload")
	}
	h := sha256.Sum256(payload)
	if hex.EncodeToString(h[:]) != sum {
		return nil, fmt.Errorf("store: payload hash mismatch")
	}
	return payload, nil
}

// Put stores a result payload under key; see PutKind.
func (s *Store) Put(k Key, payload []byte) error { return s.PutKind(k, KindResult, payload) }

// PutKind stores payload under key in the given namespace, atomically
// replacing any existing entry, then applies the byte cap. Like Get, the
// file I/O happens outside the store lock; only the index update takes it.
//
// A write failure flips the store into a sticky read-only degraded state:
// this Put and every later one return an error without touching the disk,
// while Gets keep serving whatever is already durable. Callers that treat
// Put errors as "result stays in memory" (the runner does) thereby keep
// completing work at full correctness on a dead disk.
func (s *Store) PutKind(k Key, kind Kind, payload []byte) error {
	s.mu.Lock()
	if s.degraded != "" {
		reason := s.degraded
		s.stats.WriteErrs++
		s.mu.Unlock()
		return fmt.Errorf("store: degraded (read-only): %s", reason)
	}
	s.mu.Unlock()

	var buf bytes.Buffer
	h := sha256.Sum256(payload)
	fmt.Fprintf(&buf, "%s %s %d\n", magic, hex.EncodeToString(h[:]), len(payload))
	buf.Write(payload)

	ek := entryKey{k, kind}
	path := s.path(ek)
	err := func() error {
		if fail := s.opts.FailWrites; fail != nil {
			if err := fail(); err != nil {
				return err
			}
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
		if err != nil {
			return err
		}
		if _, err := tmp.Write(buf.Bytes()); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		return nil
	}()

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.stats.WriteErrs++
		if s.degraded == "" {
			s.degraded = err.Error()
		}
		return fmt.Errorf("store: %w", err)
	}
	size := int64(buf.Len())
	if old, ok := s.entries[ek]; ok {
		s.bytes -= old.size
		s.kindEntries[kind]--
		s.kindBytes[kind] -= old.size
	}
	s.clock++
	s.entries[ek] = &entry{size: size, stamp: s.clock}
	s.bytes += size
	s.kindEntries[kind]++
	s.kindBytes[kind] += size
	s.stats.Puts++
	s.pruneLocked(ek)
	return nil
}

// pruneLocked evicts entries until the store fits MaxBytes, sparing keep
// (the entry the caller just wrote). Snapshots go first — every snapshot
// is merely a recompute accelerator, so all of them are sacrificed (in LRU
// order) before the first result is; only then does the LRU sweep touch
// results.
func (s *Store) pruneLocked(keep entryKey) {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.bytes > s.opts.MaxBytes && len(s.entries) > 1 {
		var victim entryKey
		var victimE *entry
		for k, e := range s.entries {
			if k == keep {
				continue
			}
			switch {
			case victimE == nil:
			case k.kind != victim.kind:
				// Prefer the snapshot regardless of recency.
				if k.kind != KindSnapshot {
					continue
				}
			case e.stamp >= victimE.stamp:
				continue
			}
			victim, victimE = k, e
		}
		if victimE == nil {
			return
		}
		s.dropLocked(victim, victimE)
		s.stats.Evicted++
	}
}

// dropLocked removes an entry from the index and disk.
func (s *Store) dropLocked(ek entryKey, e *entry) {
	os.Remove(s.path(ek))
	delete(s.entries, ek)
	s.bytes -= e.size
	s.kindEntries[ek.kind]--
	s.kindBytes[ek.kind] -= e.size
}

// Contains reports whether a result entry exists for key; see ContainsKind.
func (s *Store) Contains(k Key) bool { return s.ContainsKind(k, KindResult) }

// ContainsKind reports whether an entry exists for key in the given
// namespace, without reading its payload, verifying it, or touching LRU
// state: a cheap existence probe for warm-status displays. The disk is
// consulted when the index misses, so entries written by other processes
// sharing the directory count. A corrupt entry may report true here and
// still miss on Get.
func (s *Store) ContainsKind(k Key, kind Kind) bool {
	ek := entryKey{k, kind}
	s.mu.Lock()
	_, ok := s.entries[ek]
	s.mu.Unlock()
	if ok {
		return true
	}
	_, err := os.Stat(s.path(ek))
	return err == nil
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Degraded reports whether a write failure has flipped the store
// read-only, and why. The state is sticky for the store's lifetime; a
// fresh Open on a repaired disk starts healthy.
func (s *Store) Degraded() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded != "", s.degraded
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	st.ResultEntries = s.kindEntries[KindResult]
	st.ResultBytes = s.kindBytes[KindResult]
	st.SnapshotEntries = s.kindEntries[KindSnapshot]
	st.SnapshotBytes = s.kindBytes[KindSnapshot]
	st.Degraded = s.degraded != ""
	st.DegradedReason = s.degraded
	return st
}
