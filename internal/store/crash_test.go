package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestTornHeaderVariants: entries torn inside the header itself — the
// shapes a crash mid-write or a torn sector leaves behind — must read as
// misses, be deleted, and heal on the next Put, without disturbing
// healthy neighbors.
func TestTornHeaderVariants(t *testing.T) {
	goodKey := KeyOf([]byte("healthy-neighbor"))
	goodPayload := []byte("intact result")
	for _, tc := range []struct {
		name string
		torn func(valid []byte) []byte // valid entry bytes -> torn file content
	}{
		{"newline-only", func([]byte) []byte { return []byte("\n") }},
		{"half-header", func(valid []byte) []byte {
			i := bytes.IndexByte(valid, '\n')
			return valid[: i/2 : i/2]
		}},
		{"header-no-newline", func(valid []byte) []byte {
			i := bytes.IndexByte(valid, '\n')
			return valid[:i:i]
		}},
		{"header-half-payload", func(valid []byte) []byte {
			i := bytes.IndexByte(valid, '\n')
			return valid[: i+1+(len(valid)-i-1)/2 : i+1+(len(valid)-i-1)/2]
		}},
		{"wrong-magic", func(valid []byte) []byte {
			return append([]byte("otherstore9"), valid[len(magic):]...)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Options{})
			if err := s.Put(goodKey, goodPayload); err != nil {
				t.Fatal(err)
			}
			key := KeyOf([]byte("torn-" + tc.name))
			payload := []byte("payload for " + tc.name)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			valid, err := os.ReadFile(s.EntryPath(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.EntryPath(key), tc.torn(valid), 0o666); err != nil {
				t.Fatal(err)
			}

			if got, ok := s.Get(key); ok {
				t.Fatalf("torn entry served as a hit: %q", got)
			}
			if _, err := os.Stat(s.EntryPath(key)); !os.IsNotExist(err) {
				t.Error("torn entry not deleted on failed read")
			}
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Errorf("healed entry unreadable: %q, %v", got, ok)
			}
			if got, ok := s.Get(goodKey); !ok || !bytes.Equal(got, goodPayload) {
				t.Errorf("healthy neighbor damaged by heal: %q, %v", got, ok)
			}
		})
	}
}

// TestPartialTempWriteNeverVisible: a writer that crashed before its
// rename leaves only a temp file — which must be invisible to Get and
// Contains, in this process and after a fresh Open.
func TestPartialTempWriteNeverVisible(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	key := KeyOf([]byte("crashed-before-rename"))
	payload := []byte("a complete, valid payload that never got published")

	// Build byte-exact entry content the way Put would, but stop at the
	// temp stage — the crash point just before rename.
	h := KeyOf(payload) // sha256 of payload
	content := append([]byte(fmt.Sprintf("%s %s %d\n", magic, h.String(), len(payload))), payload...)
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"crashed"), content, 0o666); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key); ok {
		t.Error("unpublished temp write served as a hit")
	}
	if s.Contains(key) {
		t.Error("unpublished temp write visible to Contains")
	}
	s2 := open(t, dir, Options{})
	if s2.Len() != 0 {
		t.Errorf("fresh Open indexed an unpublished temp write: Len = %d", s2.Len())
	}
	if _, ok := s2.Get(key); ok {
		t.Error("unpublished temp write served as a hit after reopen")
	}
}

// TestConcurrentHealFromTwoOpens: two Stores over one directory (two
// daemons sharing a cache) both discover a corrupt entry, both delete it,
// both heal it with Put — concurrently, under the race detector. The
// invariants: a Get never returns wrong bytes, healthy entries survive,
// and once the dust settles the slot is healthy for a third Open.
func TestConcurrentHealFromTwoOpens(t *testing.T) {
	dir := t.TempDir()
	healthyKey := KeyOf([]byte("bystander"))
	healthyPayload := []byte("must survive the stampede")
	corruptKey := KeyOf([]byte("contested"))
	payload := []byte("the one true payload")

	seed := open(t, dir, Options{})
	if err := seed.Put(healthyKey, healthyPayload); err != nil {
		t.Fatal(err)
	}
	if err := seed.Put(corruptKey, payload); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seed.EntryPath(corruptKey), []byte("garbage, not an entry"), 0o666); err != nil {
		t.Fatal(err)
	}

	a := open(t, dir, Options{})
	b := open(t, dir, Options{})

	// Phase 1: both stores race to discover the corruption. Any hit they
	// do report must be the true payload, never garbage.
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got, ok := s.Get(corruptKey); ok && !bytes.Equal(got, payload) {
					t.Errorf("Get returned wrong bytes: %q", got)
				}
				if got, ok := s.Get(healthyKey); !ok || !bytes.Equal(got, healthyPayload) {
					t.Errorf("healthy entry lost mid-stampede: %q, %v", got, ok)
				}
			}
		}(s)
	}
	wg.Wait()

	// Phase 2: both heal concurrently. Atomic rename makes the writes
	// interchangeable — last one wins, both are correct.
	for _, s := range []*Store{a, b} {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			if err := s.Put(corruptKey, payload); err != nil {
				t.Errorf("heal Put: %v", err)
			}
		}(s)
	}
	wg.Wait()

	for name, s := range map[string]*Store{"a": a, "b": b, "fresh": open(t, dir, Options{})} {
		if got, ok := s.Get(corruptKey); !ok || !bytes.Equal(got, payload) {
			t.Errorf("%s: healed slot unreadable: %q, %v", name, got, ok)
		}
		if got, ok := s.Get(healthyKey); !ok || !bytes.Equal(got, healthyPayload) {
			t.Errorf("%s: healthy entry lost: %q, %v", name, got, ok)
		}
	}
}
