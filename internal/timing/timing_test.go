package timing

import (
	"testing"
	"testing/quick"
)

func TestDDR3Defaults(t *testing.T) {
	p := DDR3(Config{})
	if p.Density != Gb8 || p.Retention != Retention32ms {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	// Table 1 anchor values: tREFIab = 3.9us = 2600 cycles at 1.5ns.
	if p.TREFIab != 2600 {
		t.Errorf("tREFIab = %d, want 2600", p.TREFIab)
	}
	if p.TREFIpb != 325 {
		t.Errorf("tREFIpb = %d, want 325", p.TREFIpb)
	}
	// tRFCab(8Gb) = 350ns = 234 cycles (rounded up).
	if p.TRFCab != 234 {
		t.Errorf("tRFCab = %d, want 234", p.TRFCab)
	}
}

func TestTRFCabPerDensity(t *testing.T) {
	// Paper Table 1: tRFCab = 350/530/890 ns for 8/16/32 Gb.
	cases := []struct {
		d  Density
		ns float64
	}{{Gb1, 110}, {Gb2, 160}, {Gb4, 260}, {Gb8, 350}, {Gb16, 530}, {Gb32, 890}}
	for _, c := range cases {
		if got := TRFCabNs(c.d); got != c.ns {
			t.Errorf("TRFCabNs(%v) = %v, want %v", c.d, got, c.ns)
		}
	}
}

func TestProjectionsMatchPaperAnchors(t *testing.T) {
	// Projection 2 passes through the 4 and 8 Gb datasheet points and
	// reaches ~1.6us at 64 Gb (paper §3.1).
	if got := Projection2(4); got != 260 {
		t.Errorf("Projection2(4) = %v, want 260", got)
	}
	if got := Projection2(8); got != 350 {
		t.Errorf("Projection2(8) = %v, want 350", got)
	}
	if got := Projection2(64); got != 1610 {
		t.Errorf("Projection2(64) = %v, want 1610", got)
	}
	// Projection 1 passes through the early-generation points.
	for _, c := range []struct{ d, ns float64 }{{1, 110}, {2, 160}, {4, 260}} {
		if got := Projection1(c.d); got != c.ns {
			t.Errorf("Projection1(%v) = %v, want %v", c.d, got, c.ns)
		}
	}
}

func TestTRFCpbRatio(t *testing.T) {
	// tRFCpb = tRFCab / 2.3 (paper §3.1), checked within rounding.
	for _, d := range []Density{Gb8, Gb16, Gb32} {
		p := DDR3(Config{Density: d, Mode: RefPB})
		lo := NsToCycles(TRFCabNs(d)/2.3) - 1
		if p.TRFCpb < lo || p.TRFCpb > lo+2 {
			t.Errorf("%v: tRFCpb = %d cycles, want ~%d", d, p.TRFCpb, lo+1)
		}
		if p.TRFCpb >= p.TRFCab {
			t.Errorf("%v: tRFCpb (%d) >= tRFCab (%d)", d, p.TRFCpb, p.TRFCab)
		}
	}
}

func TestRetention64(t *testing.T) {
	p := DDR3(Config{Retention: Retention64ms})
	if p.TREFIab != 5200 {
		t.Errorf("tREFIab at 64ms = %d, want 5200 (7.8us)", p.TREFIab)
	}
}

func TestFGRScaling(t *testing.T) {
	base := DDR3(Config{Density: Gb32})
	two := DDR3(Config{Density: Gb32, Mode: RefFGR2x})
	four := DDR3(Config{Density: Gb32, Mode: RefFGR4x})

	if two.TREFIab != base.TREFIab/2 || four.TREFIab != base.TREFIab/4 {
		t.Fatalf("FGR rate scaling wrong: base=%d 2x=%d 4x=%d", base.TREFIab, two.TREFIab, four.TREFIab)
	}
	// tRFCab shrinks by only 1.35x / 1.63x [13], so the total refresh
	// lockout per unit time *grows* — the paper's Fig. 16 premise.
	baseDuty := float64(base.TRFCab) / float64(base.TREFIab)
	twoDuty := float64(two.TRFCab) / float64(two.TREFIab)
	fourDuty := float64(four.TRFCab) / float64(four.TREFIab)
	if !(fourDuty > twoDuty && twoDuty > baseDuty) {
		t.Errorf("FGR duty should increase: 1x=%.3f 2x=%.3f 4x=%.3f", baseDuty, twoDuty, fourDuty)
	}
	for _, p := range []Params{two, four} {
		if err := p.Validate(); err != nil {
			t.Errorf("FGR params invalid: %v", err)
		}
	}
}

func TestSARPThrottle(t *testing.T) {
	p := DDR3(Config{})
	// Paper §4.3.3: 2.1x during all-bank refresh, 13.8% during per-bank.
	tfaw, trrd := p.SARPThrottledAB()
	if tfaw != 42 || trrd != 9 {
		t.Errorf("AB throttle = (%d, %d), want (42, 9)", tfaw, trrd)
	}
	tfaw, trrd = p.SARPThrottledPB()
	if tfaw != 23 || trrd != 5 {
		t.Errorf("PB throttle = (%d, %d), want (23, 5)", tfaw, trrd)
	}
}

func TestNsToCyclesRoundsUp(t *testing.T) {
	cases := []struct {
		ns   float64
		want int
	}{{1.5, 1}, {1.6, 2}, {3.0, 2}, {0, 0}, {350, 234}}
	for _, c := range cases {
		if got := NsToCycles(c.ns); got != c.want {
			t.Errorf("NsToCycles(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestNsCyclesRoundTripProperty(t *testing.T) {
	// For any cycle count, converting to ns and back is the identity
	// (timing constraints never shrink through unit conversion).
	f := func(c uint16) bool {
		return NsToCycles(CyclesToNs(int(c))) == int(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	p := DDR3(Config{})
	p.TRC = p.TRAS // < tRAS + tRP
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted tRC < tRAS+tRP")
	}
	p = DDR3(Config{})
	p.TRFCpb = p.TRFCab + 1
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted tRFCpb > tRFCab")
	}
	p = DDR3(Config{})
	p.TRFCab = p.TREFIab + 1
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted tRFCab >= tREFIab")
	}
}

func TestTrendCoversPaperRange(t *testing.T) {
	pts := TRFCTrend()
	if pts[0].DensityGb != 1 || pts[len(pts)-1].DensityGb != 64 {
		t.Fatalf("trend should span 1..64 Gb, got %v..%v", pts[0].DensityGb, pts[len(pts)-1].DensityGb)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Projection1 <= pts[i-1].Projection1 || pts[i].Projection2 <= pts[i-1].Projection2 {
			t.Errorf("projections must increase with density at %v Gb", pts[i].DensityGb)
		}
	}
}
