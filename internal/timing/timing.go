// Package timing defines DRAM timing parameter sets for the simulator.
//
// All parameters are expressed in DRAM bus-clock cycles (tCK). The default
// device is DDR3-1333 (tCK = 1.5 ns), matching the evaluated configuration
// of Chang et al., HPCA 2014 (Table 1). Refresh parameters scale with chip
// density per the paper's §3.1 methodology: tRFCab comes from datasheet
// values and linear extrapolation, tRFCpb = tRFCab / 2.3 (the LPDDR2 ratio),
// and tREFIpb = tREFIab / 8.
package timing

import "fmt"

// Density is a DRAM chip density in gigabits.
type Density int

// Chip densities used throughout the paper's evaluation. Gb1..Gb4 exist for
// the tRFCab trend projection (Fig. 5); the evaluation uses Gb8..Gb32.
const (
	Gb1  Density = 1
	Gb2  Density = 2
	Gb4  Density = 4
	Gb8  Density = 8
	Gb16 Density = 16
	Gb32 Density = 32
	Gb64 Density = 64
)

func (d Density) String() string { return fmt.Sprintf("%dGb", int(d)) }

// Retention is the DRAM cell retention time assumed for refresh scheduling.
type Retention int

const (
	// Retention32ms is the paper's default (server environment / LPDDR):
	// tREFIab = 3.9 us.
	Retention32ms Retention = 32
	// Retention64ms is the DDR3 normal-temperature default: tREFIab = 7.8 us.
	Retention64ms Retention = 64
)

func (r Retention) String() string { return fmt.Sprintf("%dms", int(r)) }

// tCKps is the DDR3-1333 bus clock period in picoseconds (1.5 ns).
const tCKps = 1500

// NsToCycles converts nanoseconds to DRAM cycles, rounding up (a timing
// constraint must never be shortened by rounding).
func NsToCycles(ns float64) int {
	ps := ns * 1000
	c := int(ps) / tCKps
	if int(ps)%tCKps != 0 {
		c++
	}
	return c
}

// CyclesToNs converts DRAM cycles to nanoseconds.
func CyclesToNs(c int) float64 { return float64(c) * tCKps / 1000 }

// TRFCabNs returns the all-bank refresh latency in nanoseconds for a chip
// density. 1-8 Gb values are DDR3 datasheet values [11, 29]; 16 Gb and
// beyond use the paper's "Projection 2" linear extrapolation anchored on the
// 4 Gb and 8 Gb points (§3.1, Fig. 5), which yields the paper's evaluated
// 530 ns (16 Gb) and 890 ns (32 Gb).
func TRFCabNs(d Density) float64 {
	switch d {
	case Gb1:
		return 110
	case Gb2:
		return 160
	case Gb4:
		return 260
	case Gb8:
		return 350
	case Gb16:
		return 530
	case Gb32:
		return 890
	default:
		return Projection2(float64(d))
	}
}

// Projection1 is the Fig. 5 extrapolation of tRFCab (ns) fit through the
// 1, 2 and 4 Gb datasheet points (least-squares line).
func Projection1(densityGb float64) float64 {
	// Points (1,110), (2,160), (4,260): exact line 50*d + 60 ns.
	return 50*densityGb + 60
}

// Projection2 is the Fig. 5 extrapolation of tRFCab (ns) fit through the
// 4 and 8 Gb points — the more optimistic projection the paper evaluates.
func Projection2(densityGb float64) float64 {
	// Points (4,260), (8,350): slope 22.5 ns/Gb, intercept 170 ns.
	return 22.5*densityGb + 170
}

// TrendPoint is one row of the Fig. 5 refresh-latency trend.
type TrendPoint struct {
	DensityGb   float64
	Projection1 float64 // ns
	Projection2 float64 // ns
}

// TRFCTrend regenerates the Fig. 5 series for densities 1..64 Gb.
func TRFCTrend() []TrendPoint {
	densities := []float64{1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64}
	pts := make([]TrendPoint, 0, len(densities))
	for _, d := range densities {
		pts = append(pts, TrendPoint{
			DensityGb:   d,
			Projection1: Projection1(d),
			Projection2: Projection2(d),
		})
	}
	return pts
}

// RefMode selects the refresh command granularity and rate.
type RefMode int

const (
	// RefAB is all-bank (rank-level) refresh, the commodity DDR default.
	RefAB RefMode = iota
	// RefPB is per-bank refresh (LPDDR): tREFIpb = tREFIab/8, one bank per op.
	RefPB
	// RefFGR2x is DDR4 fine granularity refresh at 2x rate (Fig. 16).
	RefFGR2x
	// RefFGR4x is DDR4 fine granularity refresh at 4x rate (Fig. 16).
	RefFGR4x
	// RefNone disables refresh entirely (the ideal "No REF" baseline).
	RefNone
)

func (m RefMode) String() string {
	switch m {
	case RefAB:
		return "REFab"
	case RefPB:
		return "REFpb"
	case RefFGR2x:
		return "FGR2x"
	case RefFGR4x:
		return "FGR4x"
	case RefNone:
		return "NoREF"
	default:
		return fmt.Sprintf("RefMode(%d)", int(m))
	}
}

// Params is a complete DRAM timing parameter set in DRAM cycles.
type Params struct {
	// Core DDR3-1333 (9-9-9) access timings.
	CL   int // CAS (read) latency
	CWL  int // CAS write latency
	BL   int // burst length on the bus (BL8 => 4 cycles at DDR)
	TRCD int // ACT -> column command, same bank
	TRP  int // PRE -> ACT, same bank
	TRAS int // ACT -> PRE, same bank
	TRC  int // ACT -> ACT, same bank
	TRRD int // ACT -> ACT, same rank, different banks
	TFAW int // rolling window allowing at most 4 ACTs per rank
	TCCD int // column command -> column command, same rank
	TWTR int // end of write data -> read command (bus turnaround)
	TRTW int // read command -> write command spacing
	TRTP int // read -> PRE, same bank
	TWR  int // end of write data -> PRE, same bank

	// Refresh timings.
	TREFIab int // all-bank refresh command interval
	TREFIpb int // per-bank refresh command interval (tREFIab / 8)
	TRFCab  int // all-bank refresh latency
	TRFCpb  int // per-bank refresh latency (tRFCab / 2.3)

	// SARP power-integrity throttle (paper Eq. 1-3): multipliers applied to
	// tFAW and tRRD while a refresh is in progress, scaled by 1000
	// (1138 = x1.138). Derived from Micron 8Gb IDD values.
	SARPThrottleABx1000 int
	SARPThrottlePBx1000 int

	Density   Density
	Retention Retention
	Mode      RefMode
}

// Config selects a timing parameter set.
type Config struct {
	Density   Density
	Retention Retention
	Mode      RefMode
}

// DDR3 returns the DDR3-1333 parameter set for a density/retention/mode,
// mirroring Table 1 of the paper.
func DDR3(cfg Config) Params {
	if cfg.Density == 0 {
		cfg.Density = Gb8
	}
	if cfg.Retention == 0 {
		cfg.Retention = Retention32ms
	}
	p := Params{
		CL: 9, CWL: 7, BL: 4,
		TRCD: 9, TRP: 9, TRAS: 24, TRC: 33,
		TRRD: 4, TFAW: 20, TCCD: 4,
		TWTR: 5, TRTW: 7, TRTP: 5, TWR: 10,
		Density:   cfg.Density,
		Retention: cfg.Retention,
		Mode:      cfg.Mode,
		// Paper §4.3.3: SARP increases tFAW/tRRD by 2.1x during all-bank
		// refresh and 13.8% during per-bank refresh.
		SARPThrottleABx1000: 2100,
		SARPThrottlePBx1000: 1138,
	}

	// tREFIab: the retention window divided by the 8192 refresh commands
	// a rank receives per window (64 ms -> 7.8 us, 32 ms -> 3.9 us).
	switch cfg.Retention {
	case Retention64ms:
		p.TREFIab = NsToCycles(7800)
	default:
		p.TREFIab = NsToCycles(3900)
	}

	trfcab := TRFCabNs(cfg.Density)
	p.TRFCab = NsToCycles(trfcab)
	p.TRFCpb = NsToCycles(trfcab / 2.3)

	// DDR4 FGR (Fig. 16): 2x/4x refresh rate; tRFCab shrinks by only
	// 1.35x/1.63x [13], so the aggregate refresh penalty grows.
	switch cfg.Mode {
	case RefFGR2x:
		p.TREFIab /= 2
		p.TRFCab = NsToCycles(trfcab / 1.35)
	case RefFGR4x:
		p.TREFIab /= 4
		p.TRFCab = NsToCycles(trfcab / 1.63)
	}
	// Derived after any rate scaling so 8*tREFIpb always fits in tREFIab.
	p.TREFIpb = p.TREFIab / 8
	return p
}

// ReadLatency is the minimum cycles from RD issue to last data beat.
func (p Params) ReadLatency() int { return p.CL + p.BL }

// WriteLatency is the minimum cycles from WR issue to last data beat.
func (p Params) WriteLatency() int { return p.CWL + p.BL }

// SARPThrottledAB returns tFAW and tRRD inflated for all-bank SARP refresh.
func (p Params) SARPThrottledAB() (tfaw, trrd int) {
	return scaleUp(p.TFAW, p.SARPThrottleABx1000), scaleUp(p.TRRD, p.SARPThrottleABx1000)
}

// SARPThrottledPB returns tFAW and tRRD inflated for per-bank SARP refresh.
func (p Params) SARPThrottledPB() (tfaw, trrd int) {
	return scaleUp(p.TFAW, p.SARPThrottlePBx1000), scaleUp(p.TRRD, p.SARPThrottlePBx1000)
}

func scaleUp(v, mulX1000 int) int {
	n := v * mulX1000
	c := n / 1000
	if n%1000 != 0 {
		c++
	}
	return c
}

// Validate reports an error if the parameter set is internally inconsistent.
func (p Params) Validate() error {
	switch {
	case p.TRC < p.TRAS+p.TRP:
		return fmt.Errorf("timing: tRC (%d) < tRAS+tRP (%d)", p.TRC, p.TRAS+p.TRP)
	case p.Mode != RefNone && p.TRFCpb > p.TRFCab:
		return fmt.Errorf("timing: tRFCpb (%d) > tRFCab (%d)", p.TRFCpb, p.TRFCab)
	case p.Mode != RefNone && p.TREFIpb*8 > p.TREFIab:
		return fmt.Errorf("timing: 8*tREFIpb (%d) > tREFIab (%d)", p.TREFIpb*8, p.TREFIab)
	case p.TRFCab >= p.TREFIab && p.Mode != RefNone:
		return fmt.Errorf("timing: tRFCab (%d) >= tREFIab (%d): refresh starves the device", p.TRFCab, p.TREFIab)
	case p.TFAW < p.TRRD:
		return fmt.Errorf("timing: tFAW (%d) < tRRD (%d)", p.TFAW, p.TRRD)
	}
	return nil
}
