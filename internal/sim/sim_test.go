package sim

import (
	"errors"
	"sync/atomic"
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

func smallWorkload() workload.Workload {
	lib := workload.Library()
	return workload.Workload{
		Name:       "smoke",
		Category:   100,
		Benchmarks: lib[:4], // four intensive benchmarks
	}
}

func runSmoke(t *testing.T, k core.Kind, density timing.Density) Result {
	t.Helper()
	res, err := Run(Config{
		Workload:  smallWorkload(),
		Mechanism: k,
		Density:   density,
		Seed:      1,
		Warmup:    20_000,
		Measure:   60_000,
		Check:     true,
	})
	if err != nil {
		t.Fatalf("Run(%v): %v", k, err)
	}
	if res.CheckErr != nil {
		t.Fatalf("Run(%v): protocol violations: %v", k, res.CheckErr)
	}
	return res
}

func sumIPC(r Result) float64 {
	var s float64
	for _, v := range r.IPC {
		s += v
	}
	return s
}

func TestSmokeAllMechanisms(t *testing.T) {
	for _, k := range core.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			res := runSmoke(t, k, timing.Gb32)
			if got := sumIPC(res); got <= 0 {
				t.Fatalf("%v: no forward progress, sum IPC = %v", k, got)
			}
			if res.DRAM.Reads == 0 {
				t.Fatalf("%v: no DRAM reads served", k)
			}
			if k != core.KindNoRef && res.DRAM.RefABs+res.DRAM.RefPBs == 0 {
				t.Fatalf("%v: no refreshes issued", k)
			}
		})
	}
}

func TestRefreshHurtsAndMechanismsRecover(t *testing.T) {
	noref := sumIPC(runSmoke(t, core.KindNoRef, timing.Gb32))
	refab := sumIPC(runSmoke(t, core.KindREFab, timing.Gb32))
	dsarp := sumIPC(runSmoke(t, core.KindDSARP, timing.Gb32))
	t.Logf("sumIPC: NoREF=%.3f REFab=%.3f DSARP=%.3f", noref, refab, dsarp)
	if refab >= noref {
		t.Errorf("REFab (%.3f) should underperform NoREF (%.3f)", refab, noref)
	}
	if dsarp <= refab {
		t.Errorf("DSARP (%.3f) should outperform REFab (%.3f)", dsarp, refab)
	}
}

// TestRunStopInterrupts: a pre-tripped Stop flag aborts the run with
// ErrInterrupted and no Result — the watchdog contract.
func TestRunStopInterrupts(t *testing.T) {
	for _, engine := range []Engine{EngineEvent, EngineCycle} {
		stop := &atomic.Bool{}
		stop.Store(true)
		cfg := Config{
			Workload:  smallWorkload(),
			Mechanism: core.KindREFab,
			Seed:      1,
			Warmup:    20_000,
			Measure:   80_000,
			Engine:    engine,
			Stop:      stop,
		}
		if _, err := Run(cfg); !errors.Is(err, ErrInterrupted) {
			t.Errorf("%v: Run with tripped Stop = %v, want ErrInterrupted", engine, err)
		}
	}
}

// TestRunNilStopUnaffected: the zero Config change — no Stop flag — still
// completes normally (the poll must be nil-safe).
func TestRunNilStopUnaffected(t *testing.T) {
	res := runSmoke(t, core.KindREFab, timing.Gb8)
	if res.MeasuredCycles == 0 {
		t.Fatal("no measurement window")
	}
}
