// Package sim assembles the full evaluated system of Chang et al. (HPCA
// 2014, Table 1): trace-driven cores, private LLC slices, per-channel
// memory controllers with a refresh mechanism, and the DRAM timing model —
// and runs it for a warmup + measurement window.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"dsarp/internal/cache"
	"dsarp/internal/core"
	"dsarp/internal/cpu"
	"dsarp/internal/dram"
	"dsarp/internal/power"
	"dsarp/internal/sched"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

// Engine selects the simulation run loop.
type Engine int

const (
	// EngineEvent is the event-driven clock-skipping engine (the default):
	// the run loop advances time directly to the earliest cycle at which any
	// component can do something, falling back to cycle stepping whenever a
	// component answers "now". Bit-identical to EngineCycle by construction
	// of the NextEvent contract (pinned by the engine-equivalence tests).
	EngineEvent Engine = iota
	// EngineCycle is the reference per-cycle stepper: every component ticks
	// on every DRAM cycle.
	EngineCycle
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineEvent:
		return "event"
	case EngineCycle:
		return "cycle"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine resolves an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "event":
		return EngineEvent, nil
	case "cycle":
		return EngineCycle, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q (want cycle or event)", s)
	}
}

// Config describes one simulation.
type Config struct {
	Workload  workload.Workload
	Mechanism core.Kind
	Density   timing.Density
	Retention timing.Retention

	Channels         int // default 2
	SubarraysPerBank int // default 8 (Table 5 sweeps this)

	CPU   cpu.Config
	Cache cache.Config
	Sched sched.Config

	// OpenRow switches the controller to an open-row page policy
	// (ablation D4).
	OpenRow bool

	// AdjustTiming, if non-nil, edits the derived timing parameters before
	// the system is built (the Table 4 tFAW/tRRD sweep).
	AdjustTiming func(*timing.Params)

	// Policy, if non-nil, overrides the scheduling policy built from
	// Mechanism (the Mechanism still selects SARP and the timing mode).
	// Used by the DESIGN.md ablations to run DARP variants.
	Policy func(v sched.View, seed int64) sched.RefreshPolicy

	// Engine selects the run loop; the zero value is the clock-skipping
	// event engine. Both engines produce identical Results (modulo the
	// SteppedCycles accounting of the engine itself).
	Engine Engine

	Seed int64

	// Warmup and Measure are DRAM-cycle counts. The paper runs 256M CPU
	// cycles; see DESIGN.md substitution 2 for the scaled defaults.
	Warmup  int64
	Measure int64

	// Stop, if non-nil, is a cooperative abort flag: the run loop polls it
	// every few thousand cycles and, once it reads true, Run returns
	// ErrInterrupted instead of a Result. This is the per-simulation
	// watchdog hook (exp.Options.SimTimeout arms it from a wall-clock
	// timer); an aborted run produces no partial Result, so nothing
	// half-measured can ever reach a cache or store. Nil costs nothing on
	// the hot path.
	Stop *atomic.Bool

	// Check attaches the DRAM protocol checker (slower; used in tests).
	Check bool
}

// WithDefaults fills unset fields with the paper's Table 1 configuration.
func (c Config) WithDefaults() Config {
	if c.Channels == 0 {
		c.Channels = 2
	}
	if c.SubarraysPerBank == 0 {
		c.SubarraysPerBank = 8
	}
	if c.CPU == (cpu.Config{}) {
		c.CPU = cpu.DefaultConfig()
	}
	if c.Cache == (cache.Config{}) {
		c.Cache = cache.DefaultConfig()
	}
	if c.Sched == (sched.Config{}) {
		c.Sched = sched.DefaultConfig()
	}
	if c.Density == 0 {
		c.Density = timing.Gb8
	}
	if c.Retention == 0 {
		c.Retention = timing.Retention32ms
	}
	if c.Warmup == 0 {
		c.Warmup = 50_000
	}
	if c.Measure == 0 {
		c.Measure = 200_000
	}
	return c
}

// Result is the outcome of one simulation's measurement window.
type Result struct {
	Mechanism string
	Workload  string

	IPC   []float64 // per-core IPC over the measurement window
	MPKI  []float64 // per-core LLC misses per kilo-instruction
	Cores []cpu.Stats
	Cache []cache.Stats

	DRAM   dram.Stats
	Sched  sched.Stats
	Energy power.Breakdown

	MeasuredCycles int64 // DRAM cycles

	// SteppedCycles is the number of measurement-window cycles the engine
	// actually ticked; the rest were proven eventless and skipped. Under
	// EngineCycle it equals MeasuredCycles. It describes the engine, not the
	// simulated machine — the equivalence tests zero it before comparing.
	SteppedCycles int64

	CheckErr error
}

// EnergyPerAccess is nJ per serviced DRAM access in the window.
func (r Result) EnergyPerAccess() float64 { return r.Energy.PerAccess(r.DRAM.Accesses()) }

// SkipRate reports cycles simulated / cycles elapsed — NOT the fraction
// skipped: 1.0 means every cycle was stepped (no skipping at all), 0.2
// means four fifths of the window was skipped. Lower is faster.
func (r Result) SkipRate() float64 {
	if r.MeasuredCycles == 0 {
		return 0
	}
	return float64(r.SteppedCycles) / float64(r.MeasuredCycles)
}

// System is a fully wired simulated machine.
type System struct {
	cfg    Config
	tp     timing.Params
	geom   dram.Geometry
	mapper sched.Mapper

	devs   []*dram.Device
	ctrls  []*sched.Controller
	slices []*cache.Slice
	cores  []*cpu.Core

	now     int64
	stepped int64 // cycles actually ticked (the rest were skipped)
	nextID  int64

	// hot identifies the component that most recently forced a step
	// (demanded its NextEvent cycle immediately). Active components tend to
	// stay active for runs of cycles, so NextEvent probes it first and
	// skips the full scan while it keeps answering "now". Purely an
	// optimization: any component answering "now" forces a step regardless
	// of the others. Stored as a concrete kind+index pair rather than an
	// interface so the per-cycle probe is a direct call.
	hotKind int8 // hotNone, or the component list hotIdx indexes
	hotIdx  int
}

// hot-component kinds (System.hotKind).
const (
	hotNone = int8(iota)
	hotCore
	hotSlice
	hotCtrl
)

// coreBaseStride separates core footprints in physical memory (8 GB apart).
const coreBaseStride = 1 << 33

// NewSystem wires a system from a config.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.WithDefaults()
	nCores := len(cfg.Workload.Benchmarks)
	if nCores == 0 {
		return nil, fmt.Errorf("sim: workload %q has no benchmarks", cfg.Workload.Name)
	}

	tp := timing.DDR3(timing.Config{
		Density:   cfg.Density,
		Retention: cfg.Retention,
		Mode:      cfg.Mechanism.RefMode(),
	})
	if cfg.AdjustTiming != nil {
		cfg.AdjustTiming(&tp)
	}
	geom := dram.Default()
	geom.SubarraysPerBank = cfg.SubarraysPerBank

	s := &System{cfg: cfg, tp: tp, geom: geom,
		mapper: sched.Mapper{Channels: cfg.Channels, Geom: geom}}

	schedCfg := cfg.Sched
	schedCfg.OpenRow = cfg.OpenRow
	for ch := 0; ch < cfg.Channels; ch++ {
		dev, err := dram.New(geom, tp, dram.Options{SARP: cfg.Mechanism.SARP(), Check: cfg.Check})
		if err != nil {
			return nil, err
		}
		ctrl := sched.NewController(dev, schedCfg, nil)
		seed := cfg.Seed*7919 + int64(ch)
		if cfg.Policy != nil {
			ctrl.SetPolicy(cfg.Policy(ctrl, seed))
		} else {
			ctrl.SetPolicy(core.New(cfg.Mechanism, ctrl, seed))
		}
		s.devs = append(s.devs, dev)
		s.ctrls = append(s.ctrls, ctrl)
	}

	for i, prof := range cfg.Workload.Benchmarks {
		port := &memPort{sys: s, core: i}
		slice := cache.NewSlice(cfg.Cache, port)
		gen := trace.New(prof, cfg.Seed*1_000_003+int64(i))
		c := cpu.New(i, cfg.CPU, gen, prof.MaxOutstanding, uint64(i+1)*coreBaseStride, slice)
		s.slices = append(s.slices, slice)
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// memPort adapts a cache slice to one controller per channel.
type memPort struct {
	sys  *System
	core int
}

// ReadLine implements cache.Backend.
func (p *memPort) ReadLine(addr uint64, onDone func(now int64)) bool {
	s := p.sys
	ch, da := s.mapper.Map(addr)
	s.nextID++
	req := s.ctrls[ch].NewRequest()
	req.ID, req.Core, req.Addr, req.OnComplete = s.nextID, p.core, da, onDone
	return s.ctrls[ch].EnqueueRead(req, s.now)
}

// WriteLine implements cache.Backend.
func (p *memPort) WriteLine(addr uint64) bool {
	s := p.sys
	ch, da := s.mapper.Map(addr)
	s.nextID++
	req := s.ctrls[ch].NewRequest()
	req.ID, req.Core, req.IsWrite, req.Addr = s.nextID, p.core, true, da
	return s.ctrls[ch].EnqueueWrite(req, s.now)
}

// Step advances the whole system one DRAM cycle.
func (s *System) Step() {
	t := s.now
	for _, sl := range s.slices {
		sl.Tick(t)
	}
	for _, c := range s.cores {
		c.Tick(t)
	}
	for _, ctrl := range s.ctrls {
		ctrl.Tick(t)
	}
	s.now++
	s.stepped++
}

// NextEvent returns the earliest cycle in [s.Now(), limit] at which any
// component's Tick could do something beyond the linear accounting its Skip
// replays. If the answer exceeds s.Now(), every cycle before it is provably
// eventless: no core can retire, issue, or receive data, no cache slice has
// a delivery or retry due, no controller can issue a demand command or
// complete a read, and no refresh policy can act — so the whole window can
// be skipped without changing a single observable bit.
func (s *System) NextEvent(limit int64) int64 {
	switch s.hotKind {
	case hotCore:
		if s.cores[s.hotIdx].NextEvent(s.now) <= s.now {
			return s.now
		}
	case hotSlice:
		if s.slices[s.hotIdx].NextEvent(s.now) <= s.now {
			return s.now
		}
	case hotCtrl:
		if s.ctrls[s.hotIdx].NextEvent(s.now) <= s.now {
			return s.now
		}
	}
	t := limit
	for i, c := range s.cores {
		if e := c.NextEvent(s.now); e < t {
			if e <= s.now {
				s.hotKind, s.hotIdx = hotCore, i
				return s.now
			}
			t = e
		}
	}
	for i, sl := range s.slices {
		if e := sl.NextEvent(s.now); e < t {
			if e <= s.now {
				s.hotKind, s.hotIdx = hotSlice, i
				return s.now
			}
			t = e
		}
	}
	for i, ctrl := range s.ctrls {
		if e := ctrl.NextEvent(s.now); e < t {
			if e <= s.now {
				s.hotKind, s.hotIdx = hotCtrl, i
				return s.now
			}
			t = e
		}
	}
	if t < s.now {
		t = s.now
	}
	return t
}

// SkipTo advances the clock to cycle t (> s.Now()) without ticking,
// replaying each component's per-cycle accounting for the elided window.
// The caller must have established via NextEvent that the window [now, t)
// is eventless.
func (s *System) SkipTo(t int64) {
	skip := t - s.now
	if skip <= 0 {
		return
	}
	for _, c := range s.cores {
		c.Skip(skip)
	}
	for _, ctrl := range s.ctrls {
		ctrl.Skip(s.now, t)
	}
	s.now = t
}

// stepSelective advances one DRAM cycle ticking only the components that
// have an event at it; everything else gets its one elided Tick replayed by
// Skip. Each phase evaluates NextEvent at its own position in the cycle, so
// a component's decision sees exactly the state its Tick would have seen in
// the plain stepper: a slice decides from top-of-cycle state, a core sees
// hit callbacks the slice phase just delivered, a controller sees the
// enqueues the core phase just made (and completion callbacks an earlier
// controller's tick routed across channels). It returns the number of
// Ticks it avoided — zero means the cycle was saturated and selectivity
// bought nothing.
func (s *System) stepSelective() int {
	t := s.now
	avoided := 0
	for _, sl := range s.slices {
		if sl.NextEvent(t) <= t {
			sl.Tick(t)
		}
	}
	for _, c := range s.cores {
		if e := c.NextEvent(t); e <= t {
			c.Tick(t)
		} else {
			c.Skip(1)
			if e != math.MaxInt64 {
				// A compute-bursting core's Tick (CPUPerDRAM full retire/
				// dispatch rounds) was avoided. A stalled core (MaxInt64)
				// is not counted: its Tick is already a two-compare fast
				// path, so avoiding it pays for nothing.
				avoided++
			}
		}
	}
	for _, ctrl := range s.ctrls {
		if ctrl.NextEvent(t) <= t {
			ctrl.Tick(t)
		} else {
			ctrl.Skip(t, t+1)
			avoided++
		}
	}
	s.now++
	s.stepped++
	return avoided
}

// Saturation fallback parameters. A skip of at least worthwhileSkip cycles
// is what actually pays for the engine's scanning; when none has appeared
// for saturatedAfter consecutive stepped cycles — and the selective steps
// in between are not avoiding any expensive Ticks either — the engine runs
// blindWindow plain Steps with no scanning at all, then probes again.
// Plain stepping is the reference behavior, so the fallback is exact by
// construction; it only defers the detection of the next skippable window
// by at most blindWindow cycles. (A stickier fallback — growing the window
// while probes come up dry — was measured and rejected: even all-intensive
// DSARP runs keep ~10% of cycles skippable in short bursts, and losing
// them costs more than the per-cycle scans save.)
const (
	worthwhileSkip = 4
	saturatedAfter = 48
	blindWindow    = 32
)

// ErrInterrupted is returned by Run when Config.Stop flips true before
// the measurement window completes: the simulation was cut off by a
// watchdog (or a shutdown) and produced no result.
var ErrInterrupted = errors.New("sim: run interrupted")

// stopPollEvery spaces out Stop polls: one atomic load per this many run
// loop iterations, so the abort check is invisible in benchmarks while a
// wedged simulation still notices its watchdog within microseconds.
const stopPollEvery = 4096

// stopped reports whether a cooperative abort was requested.
func (s *System) stopped() bool {
	return s.cfg.Stop != nil && s.cfg.Stop.Load()
}

// RunTo advances the system to cycle end under the configured engine,
// returning early (with s.now < end) if Config.Stop flips true.
func (s *System) RunTo(end int64) {
	poll := 0
	checkStop := func() bool {
		if poll++; poll < stopPollEvery {
			return false
		}
		poll = 0
		return s.stopped()
	}
	if s.cfg.Engine == EngineCycle {
		for s.now < end {
			s.Step()
			if checkStop() {
				return
			}
		}
		return
	}
	saturated := 0
	for s.now < end {
		if checkStop() {
			return
		}
		if t := s.NextEvent(end); t > s.now {
			if t-s.now >= worthwhileSkip {
				saturated = 0
			}
			s.SkipTo(t)
			if s.now < end {
				// The skip landed on the window's bounding event; step it
				// without paying for a scan that would just confirm it.
				s.stepSelective()
			}
			continue
		}
		if s.stepSelective() == 0 {
			saturated += 4 // nothing avoided at all: saturate faster
		} else {
			saturated++
		}
		if saturated >= saturatedAfter {
			for i := 0; i < blindWindow && s.now < end; i++ {
				s.Step()
			}
			saturated = saturatedAfter / 2 // stay wary until a real skip lands
		}
	}
}

// Now returns the current DRAM cycle.
func (s *System) Now() int64 { return s.now }

// SteppedCycles returns how many cycles the engine actually ticked; the
// difference to Now() is the cycles the event engine skipped.
func (s *System) SteppedCycles() int64 { return s.stepped }

// Controllers exposes the per-channel controllers (tests, diagnostics).
func (s *System) Controllers() []*sched.Controller { return s.ctrls }

// Devices exposes the per-channel DRAM devices.
func (s *System) Devices() []*dram.Device { return s.devs }

type snapshot struct {
	cores []cpu.Stats
	cache []cache.Stats
	dram  dram.Stats
	sched sched.Stats
}

func (s *System) snap() snapshot {
	sn := snapshot{}
	for _, c := range s.cores {
		sn.cores = append(sn.cores, c.Stats())
	}
	for _, sl := range s.slices {
		sn.cache = append(sn.cache, sl.Stats())
	}
	for _, d := range s.devs {
		sn.dram.Add(d.Stats())
	}
	for _, c := range s.ctrls {
		sn.sched.Add(c.Stats())
	}
	return sn
}

// Run executes warmup + measurement and returns the windowed result. If
// Config.Stop flips true before the measurement window completes, Run
// returns ErrInterrupted and no Result.
func Run(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	s, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	s.RunTo(cfg.Warmup)
	if s.now < cfg.Warmup {
		return Result{}, ErrInterrupted
	}
	start := s.snap()
	startStepped := s.stepped
	s.RunTo(cfg.Warmup + cfg.Measure)
	if s.now < cfg.Warmup+cfg.Measure {
		return Result{}, ErrInterrupted
	}
	end := s.snap()

	res := Result{
		Mechanism:      s.ctrls[0].Policy().Name(),
		Workload:       cfg.Workload.Name,
		DRAM:           end.dram.Sub(start.dram),
		Sched:          end.sched.Sub(start.sched),
		MeasuredCycles: cfg.Measure,
		SteppedCycles:  s.stepped - startStepped,
	}
	for i := range s.cores {
		cs := cpu.Stats{
			Retired:      end.cores[i].Retired - start.cores[i].Retired,
			CPUCycles:    end.cores[i].CPUCycles - start.cores[i].CPUCycles,
			Loads:        end.cores[i].Loads - start.cores[i].Loads,
			Stores:       end.cores[i].Stores - start.cores[i].Stores,
			MemStallBeat: end.cores[i].MemStallBeat - start.cores[i].MemStallBeat,
		}
		res.Cores = append(res.Cores, cs)
		res.IPC = append(res.IPC, cs.IPC())

		cc := cache.Stats{
			Accesses:   end.cache[i].Accesses - start.cache[i].Accesses,
			Hits:       end.cache[i].Hits - start.cache[i].Hits,
			Misses:     end.cache[i].Misses - start.cache[i].Misses,
			MSHRMerges: end.cache[i].MSHRMerges - start.cache[i].MSHRMerges,
			Writebacks: end.cache[i].Writebacks - start.cache[i].Writebacks,
		}
		res.Cache = append(res.Cache, cc)
		mpki := 0.0
		if cs.Retired > 0 {
			mpki = float64(cc.Misses) / float64(cs.Retired) * 1000
		}
		res.MPKI = append(res.MPKI, mpki)
	}

	res.Energy = power.Default().Compute(res.DRAM, s.tp, cfg.Measure, s.geom.Ranks*cfg.Channels)
	if cfg.Check {
		for _, d := range s.devs {
			if ck := d.Checker(); ck != nil && ck.Err() != nil {
				res.CheckErr = ck.Err()
				break
			}
		}
	}
	return res, nil
}
