// Package sim assembles the full evaluated system of Chang et al. (HPCA
// 2014, Table 1): trace-driven cores, private LLC slices, per-channel
// memory controllers with a refresh mechanism, and the DRAM timing model —
// and runs it for a warmup + measurement window.
package sim

import (
	"fmt"

	"dsarp/internal/cache"
	"dsarp/internal/core"
	"dsarp/internal/cpu"
	"dsarp/internal/dram"
	"dsarp/internal/power"
	"dsarp/internal/sched"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

// Config describes one simulation.
type Config struct {
	Workload  workload.Workload
	Mechanism core.Kind
	Density   timing.Density
	Retention timing.Retention

	Channels         int // default 2
	SubarraysPerBank int // default 8 (Table 5 sweeps this)

	CPU   cpu.Config
	Cache cache.Config
	Sched sched.Config

	// OpenRow switches the controller to an open-row page policy
	// (ablation D4).
	OpenRow bool

	// AdjustTiming, if non-nil, edits the derived timing parameters before
	// the system is built (the Table 4 tFAW/tRRD sweep).
	AdjustTiming func(*timing.Params)

	// Policy, if non-nil, overrides the scheduling policy built from
	// Mechanism (the Mechanism still selects SARP and the timing mode).
	// Used by the DESIGN.md ablations to run DARP variants.
	Policy func(v sched.View, seed int64) sched.RefreshPolicy

	Seed int64

	// Warmup and Measure are DRAM-cycle counts. The paper runs 256M CPU
	// cycles; see DESIGN.md substitution 2 for the scaled defaults.
	Warmup  int64
	Measure int64

	// Check attaches the DRAM protocol checker (slower; used in tests).
	Check bool
}

// WithDefaults fills unset fields with the paper's Table 1 configuration.
func (c Config) WithDefaults() Config {
	if c.Channels == 0 {
		c.Channels = 2
	}
	if c.SubarraysPerBank == 0 {
		c.SubarraysPerBank = 8
	}
	if c.CPU == (cpu.Config{}) {
		c.CPU = cpu.DefaultConfig()
	}
	if c.Cache == (cache.Config{}) {
		c.Cache = cache.DefaultConfig()
	}
	if c.Sched == (sched.Config{}) {
		c.Sched = sched.DefaultConfig()
	}
	if c.Density == 0 {
		c.Density = timing.Gb8
	}
	if c.Retention == 0 {
		c.Retention = timing.Retention32ms
	}
	if c.Warmup == 0 {
		c.Warmup = 50_000
	}
	if c.Measure == 0 {
		c.Measure = 200_000
	}
	return c
}

// Result is the outcome of one simulation's measurement window.
type Result struct {
	Mechanism string
	Workload  string

	IPC   []float64 // per-core IPC over the measurement window
	MPKI  []float64 // per-core LLC misses per kilo-instruction
	Cores []cpu.Stats
	Cache []cache.Stats

	DRAM   dram.Stats
	Sched  sched.Stats
	Energy power.Breakdown

	MeasuredCycles int64 // DRAM cycles
	CheckErr       error
}

// EnergyPerAccess is nJ per serviced DRAM access in the window.
func (r Result) EnergyPerAccess() float64 { return r.Energy.PerAccess(r.DRAM.Accesses()) }

// System is a fully wired simulated machine.
type System struct {
	cfg    Config
	tp     timing.Params
	geom   dram.Geometry
	mapper sched.Mapper

	devs   []*dram.Device
	ctrls  []*sched.Controller
	slices []*cache.Slice
	cores  []*cpu.Core

	now    int64
	nextID int64
}

// coreBaseStride separates core footprints in physical memory (8 GB apart).
const coreBaseStride = 1 << 33

// NewSystem wires a system from a config.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.WithDefaults()
	nCores := len(cfg.Workload.Benchmarks)
	if nCores == 0 {
		return nil, fmt.Errorf("sim: workload %q has no benchmarks", cfg.Workload.Name)
	}

	tp := timing.DDR3(timing.Config{
		Density:   cfg.Density,
		Retention: cfg.Retention,
		Mode:      cfg.Mechanism.RefMode(),
	})
	if cfg.AdjustTiming != nil {
		cfg.AdjustTiming(&tp)
	}
	geom := dram.Default()
	geom.SubarraysPerBank = cfg.SubarraysPerBank

	s := &System{cfg: cfg, tp: tp, geom: geom,
		mapper: sched.Mapper{Channels: cfg.Channels, Geom: geom}}

	schedCfg := cfg.Sched
	schedCfg.OpenRow = cfg.OpenRow
	for ch := 0; ch < cfg.Channels; ch++ {
		dev, err := dram.New(geom, tp, dram.Options{SARP: cfg.Mechanism.SARP(), Check: cfg.Check})
		if err != nil {
			return nil, err
		}
		ctrl := sched.NewController(dev, schedCfg, nil)
		seed := cfg.Seed*7919 + int64(ch)
		if cfg.Policy != nil {
			ctrl.SetPolicy(cfg.Policy(ctrl, seed))
		} else {
			ctrl.SetPolicy(core.New(cfg.Mechanism, ctrl, seed))
		}
		s.devs = append(s.devs, dev)
		s.ctrls = append(s.ctrls, ctrl)
	}

	for i, prof := range cfg.Workload.Benchmarks {
		port := &memPort{sys: s, core: i}
		slice := cache.NewSlice(cfg.Cache, port)
		gen := trace.New(prof, cfg.Seed*1_000_003+int64(i))
		c := cpu.New(i, cfg.CPU, gen, prof.MaxOutstanding, uint64(i+1)*coreBaseStride, slice)
		s.slices = append(s.slices, slice)
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// memPort adapts a cache slice to one controller per channel.
type memPort struct {
	sys  *System
	core int
}

// ReadLine implements cache.Backend.
func (p *memPort) ReadLine(addr uint64, onDone func(now int64)) bool {
	s := p.sys
	ch, da := s.mapper.Map(addr)
	s.nextID++
	req := s.ctrls[ch].NewRequest()
	req.ID, req.Core, req.Addr, req.OnComplete = s.nextID, p.core, da, onDone
	return s.ctrls[ch].EnqueueRead(req, s.now)
}

// WriteLine implements cache.Backend.
func (p *memPort) WriteLine(addr uint64) bool {
	s := p.sys
	ch, da := s.mapper.Map(addr)
	s.nextID++
	req := s.ctrls[ch].NewRequest()
	req.ID, req.Core, req.IsWrite, req.Addr = s.nextID, p.core, true, da
	return s.ctrls[ch].EnqueueWrite(req, s.now)
}

// Step advances the whole system one DRAM cycle.
func (s *System) Step() {
	t := s.now
	for _, sl := range s.slices {
		sl.Tick(t)
	}
	for _, c := range s.cores {
		c.Tick(t)
	}
	for _, ctrl := range s.ctrls {
		ctrl.Tick(t)
	}
	s.now++
}

// Now returns the current DRAM cycle.
func (s *System) Now() int64 { return s.now }

// Controllers exposes the per-channel controllers (tests, diagnostics).
func (s *System) Controllers() []*sched.Controller { return s.ctrls }

// Devices exposes the per-channel DRAM devices.
func (s *System) Devices() []*dram.Device { return s.devs }

type snapshot struct {
	cores []cpu.Stats
	cache []cache.Stats
	dram  dram.Stats
	sched sched.Stats
}

func (s *System) snap() snapshot {
	sn := snapshot{}
	for _, c := range s.cores {
		sn.cores = append(sn.cores, c.Stats())
	}
	for _, sl := range s.slices {
		sn.cache = append(sn.cache, sl.Stats())
	}
	for _, d := range s.devs {
		sn.dram.Add(d.Stats())
	}
	for _, c := range s.ctrls {
		sn.sched.Add(c.Stats())
	}
	return sn
}

// Run executes warmup + measurement and returns the windowed result.
func Run(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	s, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	for s.now < cfg.Warmup {
		s.Step()
	}
	start := s.snap()
	for s.now < cfg.Warmup+cfg.Measure {
		s.Step()
	}
	end := s.snap()

	res := Result{
		Mechanism:      s.ctrls[0].Policy().Name(),
		Workload:       cfg.Workload.Name,
		DRAM:           end.dram.Sub(start.dram),
		Sched:          end.sched.Sub(start.sched),
		MeasuredCycles: cfg.Measure,
	}
	for i := range s.cores {
		cs := cpu.Stats{
			Retired:      end.cores[i].Retired - start.cores[i].Retired,
			CPUCycles:    end.cores[i].CPUCycles - start.cores[i].CPUCycles,
			Loads:        end.cores[i].Loads - start.cores[i].Loads,
			Stores:       end.cores[i].Stores - start.cores[i].Stores,
			MemStallBeat: end.cores[i].MemStallBeat - start.cores[i].MemStallBeat,
		}
		res.Cores = append(res.Cores, cs)
		res.IPC = append(res.IPC, cs.IPC())

		cc := cache.Stats{
			Accesses:   end.cache[i].Accesses - start.cache[i].Accesses,
			Hits:       end.cache[i].Hits - start.cache[i].Hits,
			Misses:     end.cache[i].Misses - start.cache[i].Misses,
			MSHRMerges: end.cache[i].MSHRMerges - start.cache[i].MSHRMerges,
			Writebacks: end.cache[i].Writebacks - start.cache[i].Writebacks,
		}
		res.Cache = append(res.Cache, cc)
		mpki := 0.0
		if cs.Retired > 0 {
			mpki = float64(cc.Misses) / float64(cs.Retired) * 1000
		}
		res.MPKI = append(res.MPKI, mpki)
	}

	res.Energy = power.Default().Compute(res.DRAM, s.tp, cfg.Measure, s.geom.Ranks*cfg.Channels)
	if cfg.Check {
		for _, d := range s.devs {
			if ck := d.Checker(); ck != nil && ck.Err() != nil {
				res.CheckErr = ck.Err()
				break
			}
		}
	}
	return res, nil
}
