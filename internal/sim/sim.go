// Package sim assembles the full evaluated system of Chang et al. (HPCA
// 2014, Table 1): trace-driven cores, private LLC slices, per-channel
// memory controllers with a refresh mechanism, and the DRAM timing model —
// and runs it for a warmup + measurement window.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"dsarp/internal/cache"
	"dsarp/internal/core"
	"dsarp/internal/cpu"
	"dsarp/internal/dram"
	"dsarp/internal/power"
	"dsarp/internal/sched"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

// Engine selects the simulation run loop.
type Engine int

const (
	// EngineEvent is the event-driven clock-skipping engine (the default):
	// the run loop advances time directly to the earliest cycle at which any
	// component can do something, falling back to cycle stepping whenever a
	// component answers "now". Bit-identical to EngineCycle by construction
	// of the NextEvent contract (pinned by the engine-equivalence tests).
	EngineEvent Engine = iota
	// EngineCycle is the reference per-cycle stepper: every component ticks
	// on every DRAM cycle.
	EngineCycle
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineEvent:
		return "event"
	case EngineCycle:
		return "cycle"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine resolves an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "event":
		return EngineEvent, nil
	case "cycle":
		return EngineCycle, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q (want cycle or event)", s)
	}
}

// Config describes one simulation.
type Config struct {
	Workload  workload.Workload
	Mechanism core.Kind
	Density   timing.Density
	Retention timing.Retention

	Channels         int // default 2
	SubarraysPerBank int // default 8 (Table 5 sweeps this)

	CPU   cpu.Config
	Cache cache.Config
	Sched sched.Config

	// OpenRow switches the controller to an open-row page policy
	// (ablation D4).
	OpenRow bool

	// AdjustTiming, if non-nil, edits the derived timing parameters before
	// the system is built (the Table 4 tFAW/tRRD sweep).
	AdjustTiming func(*timing.Params)

	// Policy, if non-nil, overrides the scheduling policy built from
	// Mechanism (the Mechanism still selects SARP and the timing mode).
	// Used by the DESIGN.md ablations to run DARP variants.
	Policy func(v sched.View, seed int64) sched.RefreshPolicy

	// Engine selects the run loop; the zero value is the clock-skipping
	// event engine. Both engines produce identical Results (modulo the
	// SteppedCycles accounting of the engine itself).
	Engine Engine

	Seed int64

	// Warmup and Measure are DRAM-cycle counts. The paper runs 256M CPU
	// cycles; see DESIGN.md substitution 2 for the scaled defaults.
	Warmup  int64
	Measure int64

	// Stop, if non-nil, is a cooperative abort flag: the run loop polls it
	// every few thousand cycles and, once it reads true, Run returns
	// ErrInterrupted instead of a Result. This is the per-simulation
	// watchdog hook (exp.Options.SimTimeout arms it from a wall-clock
	// timer); an aborted run produces no partial Result, so nothing
	// half-measured can ever reach a cache or store. Nil costs nothing on
	// the hot path.
	Stop *atomic.Bool

	// Check attaches the DRAM protocol checker (slower; used in tests).
	Check bool
}

// WithDefaults fills unset fields with the paper's Table 1 configuration.
func (c Config) WithDefaults() Config {
	if c.Channels == 0 {
		c.Channels = 2
	}
	if c.SubarraysPerBank == 0 {
		c.SubarraysPerBank = 8
	}
	if c.CPU == (cpu.Config{}) {
		c.CPU = cpu.DefaultConfig()
	}
	if c.Cache == (cache.Config{}) {
		c.Cache = cache.DefaultConfig()
	}
	if c.Sched == (sched.Config{}) {
		c.Sched = sched.DefaultConfig()
	}
	if c.Density == 0 {
		c.Density = timing.Gb8
	}
	if c.Retention == 0 {
		c.Retention = timing.Retention32ms
	}
	if c.Warmup == 0 {
		c.Warmup = 50_000
	}
	if c.Measure == 0 {
		c.Measure = 200_000
	}
	return c
}

// Result is the outcome of one simulation's measurement window.
type Result struct {
	Mechanism string
	Workload  string

	IPC   []float64 // per-core IPC over the measurement window
	MPKI  []float64 // per-core LLC misses per kilo-instruction
	Cores []cpu.Stats
	Cache []cache.Stats

	DRAM   dram.Stats
	Sched  sched.Stats
	Energy power.Breakdown

	MeasuredCycles int64 // DRAM cycles

	// SteppedCycles is the number of measurement-window cycles the engine
	// actually ticked; the rest were proven eventless and skipped. Under
	// EngineCycle it equals MeasuredCycles. It describes the engine, not the
	// simulated machine — the equivalence tests zero it before comparing.
	SteppedCycles int64

	CheckErr error
}

// EnergyPerAccess is nJ per serviced DRAM access in the window.
func (r Result) EnergyPerAccess() float64 { return r.Energy.PerAccess(r.DRAM.Accesses()) }

// SkipRate reports cycles simulated / cycles elapsed — NOT the fraction
// skipped: 1.0 means every cycle was stepped (no skipping at all), 0.2
// means four fifths of the window was skipped. Lower is faster.
func (r Result) SkipRate() float64 {
	if r.MeasuredCycles == 0 {
		return 0
	}
	return float64(r.SteppedCycles) / float64(r.MeasuredCycles)
}

// System is a fully wired simulated machine.
type System struct {
	cfg    Config
	tp     timing.Params
	geom   dram.Geometry
	mapper sched.Mapper

	devs   []*dram.Device
	ctrls  []*sched.Controller
	slices []*cache.Slice
	cores  []*cpu.Core

	now     int64
	stepped int64 // cycles actually ticked (the rest were skipped)
	nextID  int64

	// hot identifies the component that most recently forced a step
	// (demanded its NextEvent cycle immediately). Active components tend to
	// stay active for runs of cycles, so NextEvent probes it first and
	// skips the full scan while it keeps answering "now". Purely an
	// optimization: any component answering "now" forces a step regardless
	// of the others. Stored as a concrete kind+index pair rather than an
	// interface so the per-cycle probe is a direct call.
	hotKind int8 // hotNone, or the component list hotIdx indexes
	hotIdx  int

	// Event-loop saturation state. These live on the System rather than as
	// RunTo locals so a snapshot captures them and a resumed run's engine
	// makes the same step-vs-skip decisions as the uninterrupted run — the
	// SteppedCycles accounting is part of the bit-exactness contract.
	loopSat   int  // consecutive-stepped saturation counter
	loopBlind int  // plain Steps remaining in the current blind window
	keepLoop  bool // one-shot: next RunTo keeps loopSat/loopBlind (set by restore)

	// Checkpoint schedule, armed by RunWithCheckpoints/ResumeRun: a snapshot
	// is captured whenever the clock reaches ckptNext.
	ckptEvery  int64
	ckptNext   int64
	ckptSink   Checkpointer
	measureEnd int64

	// Measurement baseline (beginMeasure). Carried in snapshots so a resumed
	// run windows its Result identically to the cold run.
	inMeasure    bool
	start        snapshot
	startStepped int64
}

// hot-component kinds (System.hotKind).
const (
	hotNone = int8(iota)
	hotCore
	hotSlice
	hotCtrl
)

// coreBaseStride separates core footprints in physical memory (8 GB apart).
const coreBaseStride = 1 << 33

// NewSystem wires a system from a config.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.WithDefaults()
	nCores := len(cfg.Workload.Benchmarks)
	if nCores == 0 {
		return nil, fmt.Errorf("sim: workload %q has no benchmarks", cfg.Workload.Name)
	}

	tp := timing.DDR3(timing.Config{
		Density:   cfg.Density,
		Retention: cfg.Retention,
		Mode:      cfg.Mechanism.RefMode(),
	})
	if cfg.AdjustTiming != nil {
		cfg.AdjustTiming(&tp)
	}
	geom := dram.Default()
	geom.SubarraysPerBank = cfg.SubarraysPerBank

	s := &System{cfg: cfg, tp: tp, geom: geom,
		mapper: sched.Mapper{Channels: cfg.Channels, Geom: geom}}

	schedCfg := cfg.Sched
	schedCfg.OpenRow = cfg.OpenRow
	for ch := 0; ch < cfg.Channels; ch++ {
		dev, err := dram.New(geom, tp, dram.Options{SARP: cfg.Mechanism.SARP(), Check: cfg.Check})
		if err != nil {
			return nil, err
		}
		ctrl := sched.NewController(dev, schedCfg, nil)
		seed := cfg.Seed*7919 + int64(ch)
		if cfg.Policy != nil {
			ctrl.SetPolicy(cfg.Policy(ctrl, seed))
		} else {
			ctrl.SetPolicy(core.New(cfg.Mechanism, ctrl, seed))
		}
		s.devs = append(s.devs, dev)
		s.ctrls = append(s.ctrls, ctrl)
	}

	for i, prof := range cfg.Workload.Benchmarks {
		port := &memPort{sys: s, core: i}
		slice := cache.NewSlice(cfg.Cache, port)
		gen := trace.New(prof, cfg.Seed*1_000_003+int64(i))
		c := cpu.New(i, cfg.CPU, gen, prof.MaxOutstanding, uint64(i+1)*coreBaseStride, slice)
		s.slices = append(s.slices, slice)
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// memPort adapts a cache slice to one controller per channel.
type memPort struct {
	sys  *System
	core int
}

// ReadLine implements cache.Backend.
func (p *memPort) ReadLine(addr uint64, onDone func(now int64)) bool {
	s := p.sys
	ch, da := s.mapper.Map(addr)
	s.nextID++
	req := s.ctrls[ch].NewRequest()
	req.ID, req.Core, req.Addr, req.OnComplete = s.nextID, p.core, da, onDone
	req.Tag = addr // pre-mapping address: snapshots re-link onDone through it
	return s.ctrls[ch].EnqueueRead(req, s.now)
}

// WriteLine implements cache.Backend.
func (p *memPort) WriteLine(addr uint64) bool {
	s := p.sys
	ch, da := s.mapper.Map(addr)
	s.nextID++
	req := s.ctrls[ch].NewRequest()
	req.ID, req.Core, req.IsWrite, req.Addr = s.nextID, p.core, true, da
	return s.ctrls[ch].EnqueueWrite(req, s.now)
}

// Step advances the whole system one DRAM cycle.
func (s *System) Step() {
	t := s.now
	for _, sl := range s.slices {
		sl.Tick(t)
	}
	for _, c := range s.cores {
		c.Tick(t)
	}
	for _, ctrl := range s.ctrls {
		ctrl.Tick(t)
	}
	s.now++
	s.stepped++
}

// NextEvent returns the earliest cycle in [s.Now(), limit] at which any
// component's Tick could do something beyond the linear accounting its Skip
// replays. If the answer exceeds s.Now(), every cycle before it is provably
// eventless: no core can retire, issue, or receive data, no cache slice has
// a delivery or retry due, no controller can issue a demand command or
// complete a read, and no refresh policy can act — so the whole window can
// be skipped without changing a single observable bit.
func (s *System) NextEvent(limit int64) int64 {
	switch s.hotKind {
	case hotCore:
		if s.cores[s.hotIdx].NextEvent(s.now) <= s.now {
			return s.now
		}
	case hotSlice:
		if s.slices[s.hotIdx].NextEvent(s.now) <= s.now {
			return s.now
		}
	case hotCtrl:
		if s.ctrls[s.hotIdx].NextEvent(s.now) <= s.now {
			return s.now
		}
	}
	t := limit
	for i, c := range s.cores {
		if e := c.NextEvent(s.now); e < t {
			if e <= s.now {
				s.hotKind, s.hotIdx = hotCore, i
				return s.now
			}
			t = e
		}
	}
	for i, sl := range s.slices {
		if e := sl.NextEvent(s.now); e < t {
			if e <= s.now {
				s.hotKind, s.hotIdx = hotSlice, i
				return s.now
			}
			t = e
		}
	}
	for i, ctrl := range s.ctrls {
		if e := ctrl.NextEvent(s.now); e < t {
			if e <= s.now {
				s.hotKind, s.hotIdx = hotCtrl, i
				return s.now
			}
			t = e
		}
	}
	if t < s.now {
		t = s.now
	}
	return t
}

// SkipTo advances the clock to cycle t (> s.Now()) without ticking,
// replaying each component's per-cycle accounting for the elided window.
// The caller must have established via NextEvent that the window [now, t)
// is eventless.
func (s *System) SkipTo(t int64) {
	skip := t - s.now
	if skip <= 0 {
		return
	}
	for _, c := range s.cores {
		c.Skip(skip)
	}
	for _, ctrl := range s.ctrls {
		ctrl.Skip(s.now, t)
	}
	s.now = t
}

// stepSelective advances one DRAM cycle ticking only the components that
// have an event at it; everything else gets its one elided Tick replayed by
// Skip. Each phase evaluates NextEvent at its own position in the cycle, so
// a component's decision sees exactly the state its Tick would have seen in
// the plain stepper: a slice decides from top-of-cycle state, a core sees
// hit callbacks the slice phase just delivered, a controller sees the
// enqueues the core phase just made (and completion callbacks an earlier
// controller's tick routed across channels). It returns the number of
// Ticks it avoided — zero means the cycle was saturated and selectivity
// bought nothing.
func (s *System) stepSelective() int {
	t := s.now
	avoided := 0
	for _, sl := range s.slices {
		if sl.NextEvent(t) <= t {
			sl.Tick(t)
		}
	}
	for _, c := range s.cores {
		if e := c.NextEvent(t); e <= t {
			c.Tick(t)
		} else {
			c.Skip(1)
			if e != math.MaxInt64 {
				// A compute-bursting core's Tick (CPUPerDRAM full retire/
				// dispatch rounds) was avoided. A stalled core (MaxInt64)
				// is not counted: its Tick is already a two-compare fast
				// path, so avoiding it pays for nothing.
				avoided++
			}
		}
	}
	for _, ctrl := range s.ctrls {
		if ctrl.NextEvent(t) <= t {
			ctrl.Tick(t)
		} else {
			ctrl.Skip(t, t+1)
			avoided++
		}
	}
	s.now++
	s.stepped++
	return avoided
}

// Saturation fallback parameters. A skip of at least worthwhileSkip cycles
// is what actually pays for the engine's scanning; when none has appeared
// for saturatedAfter consecutive stepped cycles — and the selective steps
// in between are not avoiding any expensive Ticks either — the engine runs
// blindWindow plain Steps with no scanning at all, then probes again.
// Plain stepping is the reference behavior, so the fallback is exact by
// construction; it only defers the detection of the next skippable window
// by at most blindWindow cycles. (A stickier fallback — growing the window
// while probes come up dry — was measured and rejected: even all-intensive
// DSARP runs keep ~10% of cycles skippable in short bursts, and losing
// them costs more than the per-cycle scans save.)
const (
	worthwhileSkip = 4
	saturatedAfter = 48
	blindWindow    = 32
)

// ErrInterrupted is returned by Run when Config.Stop flips true before
// the measurement window completes: the simulation was cut off by a
// watchdog (or a shutdown) and produced no result.
var ErrInterrupted = errors.New("sim: run interrupted")

// stopPollEvery spaces out Stop polls: one atomic load per this many run
// loop iterations, so the abort check is invisible in benchmarks while a
// wedged simulation still notices its watchdog within microseconds.
const stopPollEvery = 4096

// stopped reports whether a cooperative abort was requested.
func (s *System) stopped() bool {
	return s.cfg.Stop != nil && s.cfg.Stop.Load()
}

// RunTo advances the system to cycle end under the configured engine,
// returning early (with s.now < end) if Config.Stop flips true. The
// saturation state lives on the System (loopSat/loopBlind): it is zeroed
// on entry — matching the old per-call locals — unless a snapshot restore
// armed keepLoop, in which case the restored values carry the interrupted
// run's engine position forward.
func (s *System) RunTo(end int64) {
	if s.keepLoop {
		s.keepLoop = false
	} else {
		s.loopSat, s.loopBlind = 0, 0
	}
	poll := 0
	checkStop := func() bool {
		if poll++; poll < stopPollEvery {
			return false
		}
		poll = 0
		return s.stopped()
	}
	if s.cfg.Engine == EngineCycle {
		for s.now < end {
			s.maybeCheckpoint()
			s.Step()
			if checkStop() {
				return
			}
		}
		return
	}
	for s.now < end {
		if checkStop() {
			return
		}
		if s.loopBlind > 0 {
			// Saturation fallback: run the rest of the blind window as plain
			// Steps with no scanning. Resumable — a snapshot mid-window
			// restores loopBlind and re-enters here.
			for s.loopBlind > 0 && s.now < end {
				s.maybeCheckpoint()
				s.Step()
				s.loopBlind--
			}
			continue
		}
		if t := s.NextEvent(end); t > s.now {
			// The saturation reset is decided on the full skip length BEFORE
			// skipTo splits it at checkpoint boundaries: a checkpointed run
			// and its plain twin must make identical saturation decisions.
			if t-s.now >= worthwhileSkip {
				s.loopSat = 0
			}
			s.skipTo(t)
			if s.now < end {
				// The skip landed on the window's bounding event; step it
				// without paying for a scan that would just confirm it.
				s.maybeCheckpoint()
				s.stepSelective()
			}
			continue
		}
		s.maybeCheckpoint()
		if s.stepSelective() == 0 {
			s.loopSat += 4 // nothing avoided at all: saturate faster
		} else {
			s.loopSat++
		}
		if s.loopSat >= saturatedAfter {
			// Arm the blind window; stay wary until a real skip lands. The
			// counter is set before the window runs (it is not consulted
			// inside it), so a snapshot taken mid-window carries the value
			// the old post-window assignment would have produced.
			s.loopSat = saturatedAfter / 2
			s.loopBlind = blindWindow
		}
	}
}

// maybeCheckpoint captures a snapshot when the clock sits exactly on the
// next scheduled checkpoint boundary. Callers invoke it immediately before
// every clock advance, so the snapshot always reflects the state at the
// top of cycle ckptNext. Two compares when no schedule is armed.
func (s *System) maybeCheckpoint() {
	if s.ckptSink == nil || s.now != s.ckptNext {
		return
	}
	s.ckptSink(s.now, s.Snapshot())
	s.ckptNext += s.ckptEvery
	if s.ckptNext >= s.measureEnd {
		s.ckptSink = nil
	}
}

// skipTo is SkipTo with checkpoint-boundary splitting: a skip that would
// jump over a scheduled checkpoint cycle is split so the snapshot is
// captured with the clock exactly on the boundary. The split is invisible
// to the machine (SkipTo composes) and to the engine (RunTo decides the
// saturation reset on the unsplit length).
func (s *System) skipTo(t int64) {
	for s.ckptSink != nil && s.ckptNext < t && s.ckptNext >= s.now {
		if s.ckptNext > s.now {
			s.SkipTo(s.ckptNext)
		}
		s.maybeCheckpoint()
	}
	s.SkipTo(t)
}

// Now returns the current DRAM cycle.
func (s *System) Now() int64 { return s.now }

// SteppedCycles returns how many cycles the engine actually ticked; the
// difference to Now() is the cycles the event engine skipped.
func (s *System) SteppedCycles() int64 { return s.stepped }

// Controllers exposes the per-channel controllers (tests, diagnostics).
func (s *System) Controllers() []*sched.Controller { return s.ctrls }

// Devices exposes the per-channel DRAM devices.
func (s *System) Devices() []*dram.Device { return s.devs }

type snapshot struct {
	cores []cpu.Stats
	cache []cache.Stats
	dram  dram.Stats
	sched sched.Stats
}

func (s *System) snap() snapshot {
	sn := snapshot{}
	for _, c := range s.cores {
		sn.cores = append(sn.cores, c.Stats())
	}
	for _, sl := range s.slices {
		sn.cache = append(sn.cache, sl.Stats())
	}
	for _, d := range s.devs {
		sn.dram.Add(d.Stats())
	}
	for _, c := range s.ctrls {
		sn.sched.Add(c.Stats())
	}
	return sn
}

// beginMeasure records the measurement baseline at the warmup boundary;
// result() subtracts it. The baseline travels inside snapshots so a
// resumed run windows its Result identically to the cold run.
func (s *System) beginMeasure() {
	s.start = s.snap()
	s.startStepped = s.stepped
	s.inMeasure = true
}

// result assembles the windowed Result; beginMeasure must have run and the
// clock must stand at the end of the measurement window.
func (s *System) result() Result {
	cfg := s.cfg
	end := s.snap()
	res := Result{
		Mechanism:      s.ctrls[0].Policy().Name(),
		Workload:       cfg.Workload.Name,
		DRAM:           end.dram.Sub(s.start.dram),
		Sched:          end.sched.Sub(s.start.sched),
		MeasuredCycles: cfg.Measure,
		SteppedCycles:  s.stepped - s.startStepped,
	}
	for i := range s.cores {
		cs := cpu.Stats{
			Retired:      end.cores[i].Retired - s.start.cores[i].Retired,
			CPUCycles:    end.cores[i].CPUCycles - s.start.cores[i].CPUCycles,
			Loads:        end.cores[i].Loads - s.start.cores[i].Loads,
			Stores:       end.cores[i].Stores - s.start.cores[i].Stores,
			MemStallBeat: end.cores[i].MemStallBeat - s.start.cores[i].MemStallBeat,
		}
		res.Cores = append(res.Cores, cs)
		res.IPC = append(res.IPC, cs.IPC())

		cc := cache.Stats{
			Accesses:   end.cache[i].Accesses - s.start.cache[i].Accesses,
			Hits:       end.cache[i].Hits - s.start.cache[i].Hits,
			Misses:     end.cache[i].Misses - s.start.cache[i].Misses,
			MSHRMerges: end.cache[i].MSHRMerges - s.start.cache[i].MSHRMerges,
			Writebacks: end.cache[i].Writebacks - s.start.cache[i].Writebacks,
		}
		res.Cache = append(res.Cache, cc)
		mpki := 0.0
		if cs.Retired > 0 {
			mpki = float64(cc.Misses) / float64(cs.Retired) * 1000
		}
		res.MPKI = append(res.MPKI, mpki)
	}

	res.Energy = power.Default().Compute(res.DRAM, s.tp, cfg.Measure, s.geom.Ranks*cfg.Channels)
	if cfg.Check {
		for _, d := range s.devs {
			if ck := d.Checker(); ck != nil && ck.Err() != nil {
				res.CheckErr = ck.Err()
				break
			}
		}
	}
	return res
}

// Run executes warmup + measurement and returns the windowed result. If
// Config.Stop flips true before the measurement window completes, Run
// returns ErrInterrupted and no Result.
func Run(cfg Config) (Result, error) {
	return RunWithCheckpoints(cfg, 0, nil)
}

// Checkpointer receives snapshots as a run crosses checkpoint boundaries.
// The data is a self-contained snap container (see System.Snapshot); cycle
// is the DRAM cycle the snapshot's clock stands at.
type Checkpointer func(cycle int64, data []byte)

// RunWithCheckpoints is Run with resumable checkpoints: after a cold
// warmup it hands sink the warmup-boundary snapshot, then — if every > 0 —
// further snapshots at cycles Warmup + k*every strictly inside the
// measurement window. A checkpointed run's Result is bit-identical to the
// plain run's, SteppedCycles included. Configurations whose state cannot
// serialize (protocol checker attached, non-serializable custom policy)
// silently run without checkpoints.
func RunWithCheckpoints(cfg Config, every int64, sink Checkpointer) (Result, error) {
	cfg = cfg.WithDefaults()
	s, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	s.RunTo(cfg.Warmup)
	if s.now < cfg.Warmup {
		return Result{}, ErrInterrupted
	}
	s.beginMeasure()
	if sink != nil && s.CanSnapshot() {
		// The warmup-boundary snapshot. Saturation state is zeroed exactly
		// as the measurement RunTo below zeroes it on entry, so a run
		// resumed from this snapshot replays the same engine decisions.
		s.loopSat, s.loopBlind = 0, 0
		sink(s.now, s.Snapshot())
		s.armCheckpoints(every, sink)
	}
	s.RunTo(cfg.Warmup + cfg.Measure)
	if s.now < cfg.Warmup+cfg.Measure {
		return Result{}, ErrInterrupted
	}
	return s.result(), nil
}

// ResumeRun continues a run from a snapshot taken by a checkpointed run of
// a config identical up to Measure (the snapshot is agnostic to the
// measurement length, enabling measure-extension reuse). The resumed run's
// Result is bit-identical to an uninterrupted run's. every/sink arm
// further checkpoints exactly as RunWithCheckpoints would.
func ResumeRun(cfg Config, data []byte, every int64, sink Checkpointer) (Result, error) {
	cfg = cfg.WithDefaults()
	s, err := RestoreSystem(cfg, data)
	if err != nil {
		return Result{}, err
	}
	end := cfg.Warmup + cfg.Measure
	if !s.inMeasure || s.now < cfg.Warmup || s.now >= end {
		return Result{}, fmt.Errorf("sim: snapshot at cycle %d outside measurement window [%d, %d)",
			s.now, cfg.Warmup, end)
	}
	if sink != nil && s.CanSnapshot() {
		s.armCheckpoints(every, sink)
	}
	s.RunTo(end)
	if s.now < end {
		return Result{}, ErrInterrupted
	}
	return s.result(), nil
}

// armCheckpoints schedules periodic snapshots at cycles Warmup + k*every
// for k >= 1, strictly inside the measurement window, starting after the
// current clock. The schedule is identical whether armed at the warmup
// boundary or on resume from any checkpoint, so cold and resumed runs
// write the same snapshot set.
func (s *System) armCheckpoints(every int64, sink Checkpointer) {
	if sink == nil || every <= 0 {
		return
	}
	end := s.cfg.Warmup + s.cfg.Measure
	k := (s.now-s.cfg.Warmup)/every + 1
	next := s.cfg.Warmup + k*every
	if next >= end {
		return
	}
	s.ckptEvery, s.ckptNext, s.ckptSink, s.measureEnd = every, next, sink, end
}
