package sim

import (
	"math"
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindDSARP,
		Density:   timing.Gb16,
		Seed:      9,
		Warmup:    10_000,
		Measure:   40_000,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("core %d IPC diverged: %v vs %v", i, a.IPC[i], b.IPC[i])
		}
	}
	if a.DRAM != b.DRAM {
		t.Fatalf("DRAM stats diverged: %+v vs %+v", a.DRAM, b.DRAM)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	base := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindREFpb,
		Density:   timing.Gb8,
		Warmup:    10_000,
		Measure:   40_000,
	}
	a, _ := Run(base)
	base.Seed = 1234
	b, _ := Run(base)
	if a.DRAM == b.DRAM {
		t.Error("different seeds produced identical DRAM stats")
	}
}

func TestMPKIReflectsWorkloadIntensity(t *testing.T) {
	heavy, err := workload.ByName("rand.access")
	if err != nil {
		t.Fatal(err)
	}
	light, err := workload.ByName("povray.render")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Workload:  workload.Workload{Name: "pair", Benchmarks: []trace.Profile{heavy, light}},
		Mechanism: core.KindNoRef,
		Seed:      3,
		Warmup:    20_000,
		Measure:   80_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MPKI[0] < 10 {
		t.Errorf("rand.access measured MPKI %.1f, want >= 10 (intensive)", res.MPKI[0])
	}
	if res.MPKI[1] >= 10 {
		t.Errorf("povray.render measured MPKI %.1f, want < 10", res.MPKI[1])
	}
	if res.IPC[1] <= res.IPC[0] {
		t.Errorf("CPU-bound core should out-IPC the memory-bound one: %v vs %v", res.IPC[1], res.IPC[0])
	}
}

func TestEnergyAccounting(t *testing.T) {
	res := runSmoke(t, core.KindREFab, timing.Gb32)
	if res.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if res.Energy.Refresh <= 0 {
		t.Error("refresh energy missing under REFab")
	}
	if res.EnergyPerAccess() <= 0 {
		t.Error("energy per access missing")
	}
	noref := runSmoke(t, core.KindNoRef, timing.Gb32)
	if noref.Energy.Refresh != 0 {
		t.Error("NoREF should burn no refresh energy")
	}
	if noref.EnergyPerAccess() >= res.EnergyPerAccess() {
		t.Errorf("refresh-free energy/access (%.2f) should beat REFab (%.2f)",
			noref.EnergyPerAccess(), res.EnergyPerAccess())
	}
}

func TestDensityMonotonicity(t *testing.T) {
	// Higher density -> longer tRFC -> more refresh pain under REFab.
	var prev float64 = math.Inf(1)
	for i, d := range []timing.Density{timing.Gb8, timing.Gb16, timing.Gb32} {
		ab := sumIPC(runSmoke(t, core.KindREFab, d))
		ideal := sumIPC(runSmoke(t, core.KindNoRef, d))
		loss := 1 - ab/ideal
		if i > 0 && loss <= 0 {
			t.Errorf("%v: no refresh loss measured", d)
		}
		_ = prev
		prev = loss
	}
}

func TestSubarraySweepMonotone(t *testing.T) {
	// More subarrays -> fewer SARP conflicts -> SARPpb gains over REFpb
	// must not collapse (Table 5 shape).
	gain := func(subs int) float64 {
		var ws [2]float64
		for i, k := range []core.Kind{core.KindREFpb, core.KindSARPpb} {
			res, err := Run(Config{
				Workload:         smallWorkload(),
				Mechanism:        k,
				Density:          timing.Gb32,
				SubarraysPerBank: subs,
				Seed:             5,
				Warmup:           20_000,
				Measure:          80_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			ws[i] = sumIPC(res)
		}
		return ws[1] / ws[0]
	}
	one := gain(1)
	many := gain(32)
	if one > 1.02 {
		t.Errorf("SARP with 1 subarray should be ~REFpb, got ratio %.3f", one)
	}
	if many <= one {
		t.Errorf("SARP gain should grow with subarrays: 1->%.3f, 32->%.3f", one, many)
	}
}

func TestAdjustTimingHook(t *testing.T) {
	adjusted := false
	_, err := Run(Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindREFpb,
		Warmup:    1000,
		Measure:   2000,
		AdjustTiming: func(p *timing.Params) {
			p.TFAW = 10
			p.TRRD = 2
			adjusted = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !adjusted {
		t.Error("AdjustTiming hook never invoked")
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	if _, err := Run(Config{Workload: workload.Workload{Name: "empty"}}); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestWithDefaults(t *testing.T) {
	cfg := (Config{Workload: smallWorkload()}).WithDefaults()
	if cfg.Channels != 2 || cfg.SubarraysPerBank != 8 ||
		cfg.Density != timing.Gb8 || cfg.Retention != timing.Retention32ms {
		t.Errorf("defaults diverge from Table 1: %+v", cfg)
	}
	if cfg.Sched.ReadQueueCap != 64 || cfg.Sched.WriteLow != 32 {
		t.Errorf("scheduler defaults diverge from Table 1: %+v", cfg.Sched)
	}
}
