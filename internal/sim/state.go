package sim

import (
	"errors"
	"fmt"

	"dsarp/internal/cache"
	"dsarp/internal/cpu"
	"dsarp/internal/snap"
)

// CanSnapshot reports whether this system's configuration supports
// snapshotting: every attached refresh policy must serialize (all the
// stock mechanisms do; ad-hoc Config.Policy closures may not) and the
// protocol checker must be off — checker state does not round-trip, and a
// resumed checked run would verify against a hole.
func (s *System) CanSnapshot() bool {
	if s.cfg.Check {
		return false
	}
	for _, ctrl := range s.ctrls {
		if _, ok := ctrl.Policy().(snap.Codec); !ok {
			return false
		}
	}
	return true
}

// Snapshot serializes the complete mutable machine state — cores (trace
// generator rng included), cache slices (MSHR chains), DRAM devices,
// controllers (queues and in-flight FIFOs), refresh policies, the engine's
// saturation counters, and the measurement baseline — into a versioned,
// hash-framed snap container. Restoring it with RestoreSystem under the
// same Config (Measure aside) yields a machine that produces bit-identical
// results to one that never stopped. Panics if CanSnapshot is false.
func (s *System) Snapshot() []byte {
	w := snap.NewWriter()
	w.Section("meta")
	w.I64(s.now)
	w.I64(s.stepped)
	w.I64(s.nextID)
	w.Int(s.loopSat)
	w.Int(s.loopBlind)
	w.Int(len(s.devs))
	w.Int(len(s.cores))
	w.Bool(s.inMeasure)
	w.I64(s.startStepped)
	if s.inMeasure {
		w.Section("run")
		appendWindow(w, &s.start)
	}
	for ch, d := range s.devs {
		w.Section(fmt.Sprintf("dev%d", ch))
		d.AppendState(w)
	}
	for i, c := range s.cores {
		w.Section(fmt.Sprintf("core%d", i))
		c.AppendState(w)
	}
	for i, sl := range s.slices {
		w.Section(fmt.Sprintf("slice%d", i))
		sl.AppendState(w)
	}
	for ch, ctrl := range s.ctrls {
		w.Section(fmt.Sprintf("ctrl%d", ch))
		ctrl.AppendState(w)
	}
	for ch, ctrl := range s.ctrls {
		pol, ok := ctrl.Policy().(snap.Codec)
		if !ok {
			panic(fmt.Sprintf("sim: policy %T does not serialize; check CanSnapshot before Snapshot", ctrl.Policy()))
		}
		w.Section(fmt.Sprintf("policy%d", ch))
		pol.AppendState(w)
	}
	return w.Finish()
}

// RestoreSystem rebuilds a system from cfg exactly as NewSystem would,
// then overwrites its mutable state from a snapshot taken by a system of
// the same configuration. Restore order matters: devices first (the
// controllers' queue replay reads their open rows), then cores, slices
// (waiter callbacks resolve against the cores), controllers (completion
// callbacks resolve against the slices), and finally the policies. A
// version-mismatched snapshot fails with snap.ErrVersion; a checked config
// is refused outright.
func RestoreSystem(cfg Config, data []byte) (*System, error) {
	cfg = cfg.WithDefaults()
	if cfg.Check {
		return nil, errors.New("sim: cannot restore into a checked run: checker state is not serialized")
	}
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	r, err := snap.NewReader(data)
	if err != nil {
		return nil, err
	}
	if err := r.Section("meta"); err != nil {
		return nil, err
	}
	s.now = r.I64()
	s.stepped = r.I64()
	s.nextID = r.I64()
	s.loopSat = r.Int()
	s.loopBlind = r.Int()
	nDevs := r.Int()
	nCores := r.Int()
	s.inMeasure = r.Bool()
	s.startStepped = r.I64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nDevs != len(s.devs) || nCores != len(s.cores) {
		return nil, fmt.Errorf("sim: snapshot shape %d channels / %d cores, config builds %d / %d",
			nDevs, nCores, len(s.devs), len(s.cores))
	}
	if s.inMeasure {
		if err := r.Section("run"); err != nil {
			return nil, err
		}
		loadWindow(r, &s.start, nCores)
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	for ch, d := range s.devs {
		if err := r.Section(fmt.Sprintf("dev%d", ch)); err != nil {
			return nil, err
		}
		if err := d.LoadState(r); err != nil {
			return nil, err
		}
	}
	for i, c := range s.cores {
		if err := r.Section(fmt.Sprintf("core%d", i)); err != nil {
			return nil, err
		}
		if err := c.LoadState(r); err != nil {
			return nil, err
		}
	}
	for i, sl := range s.slices {
		if err := r.Section(fmt.Sprintf("slice%d", i)); err != nil {
			return nil, err
		}
		if err := sl.LoadState(r, s.cores[i].CompletionFor); err != nil {
			return nil, err
		}
	}
	lineBytes := uint64(s.cfg.Cache.LineBytes)
	resolve := func(coreID int, tag uint64) (func(now int64), error) {
		if coreID < 0 || coreID >= len(s.slices) {
			return nil, fmt.Errorf("sim: request names core %d of %d", coreID, len(s.slices))
		}
		return s.slices[coreID].FillCallback(tag / lineBytes)
	}
	for ch, ctrl := range s.ctrls {
		if err := r.Section(fmt.Sprintf("ctrl%d", ch)); err != nil {
			return nil, err
		}
		if err := ctrl.LoadState(r, resolve); err != nil {
			return nil, err
		}
	}
	for ch, ctrl := range s.ctrls {
		pol, ok := ctrl.Policy().(snap.Codec)
		if !ok {
			return nil, fmt.Errorf("sim: policy %T does not serialize", ctrl.Policy())
		}
		if err := r.Section(fmt.Sprintf("policy%d", ch)); err != nil {
			return nil, err
		}
		if err := pol.LoadState(r); err != nil {
			return nil, err
		}
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	s.keepLoop = true
	return s, nil
}

// appendWindow serializes the measurement baseline captured at the warmup
// boundary: the cumulative per-core, per-slice, DRAM, and controller
// counters result() subtracts from the end-of-run totals.
func appendWindow(w *snap.Writer, sn *snapshot) {
	for _, cs := range sn.cores {
		for _, v := range []int64{cs.Retired, cs.CPUCycles, cs.Loads, cs.Stores, cs.MemStallBeat} {
			w.I64(v)
		}
	}
	for _, cc := range sn.cache {
		for _, v := range []int64{cc.Accesses, cc.Hits, cc.Misses, cc.MSHRMerges, cc.Writebacks} {
			w.I64(v)
		}
	}
	d := &sn.dram
	for _, v := range []int64{d.Commands, d.Acts, d.Pres, d.Reads, d.Writes, d.RefABs, d.RefPBs} {
		w.I64(v)
	}
	q := &sn.sched
	for _, v := range []int64{
		q.ReadsServed, q.WritesServed, q.ReadLatencySum, q.WriteLatencySum,
		q.DemandSlots, q.RefreshSlots, q.ForwardedReads, q.MergedWrites,
		q.ReadQueueFullStalls, q.WriteQueueFullStalls,
		q.WriteModeEntries, q.WriteModeCycles, q.OpportunisticDrain,
	} {
		w.I64(v)
	}
}

func loadWindow(r *snap.Reader, sn *snapshot, nCores int) {
	sn.cores = make([]cpu.Stats, nCores)
	for i := range sn.cores {
		cs := &sn.cores[i]
		for _, p := range []*int64{&cs.Retired, &cs.CPUCycles, &cs.Loads, &cs.Stores, &cs.MemStallBeat} {
			*p = r.I64()
		}
	}
	sn.cache = make([]cache.Stats, nCores)
	for i := range sn.cache {
		cc := &sn.cache[i]
		for _, p := range []*int64{&cc.Accesses, &cc.Hits, &cc.Misses, &cc.MSHRMerges, &cc.Writebacks} {
			*p = r.I64()
		}
	}
	d := &sn.dram
	for _, p := range []*int64{&d.Commands, &d.Acts, &d.Pres, &d.Reads, &d.Writes, &d.RefABs, &d.RefPBs} {
		*p = r.I64()
	}
	q := &sn.sched
	for _, p := range []*int64{
		&q.ReadsServed, &q.WritesServed, &q.ReadLatencySum, &q.WriteLatencySum,
		&q.DemandSlots, &q.RefreshSlots, &q.ForwardedReads, &q.MergedWrites,
		&q.ReadQueueFullStalls, &q.WriteQueueFullStalls,
		&q.WriteModeEntries, &q.WriteModeCycles, &q.OpportunisticDrain,
	} {
		*p = r.I64()
	}
}
