package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/snap"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// runCheckpointed runs cfg collecting every snapshot, asserts the
// checkpointed Result is byte-identical (SteppedCycles included) to the
// plain run's, and returns the plain result plus the captured snapshots.
func runCheckpointed(t *testing.T, name string, cfg Config, every int64) (Result, []int64, [][]byte) {
	t.Helper()
	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s: plain run: %v", name, err)
	}
	var cycles []int64
	var snaps [][]byte
	ck, err := RunWithCheckpoints(cfg, every, func(cycle int64, data []byte) {
		cycles = append(cycles, cycle)
		snaps = append(snaps, data)
	})
	if err != nil {
		t.Fatalf("%s: checkpointed run: %v", name, err)
	}
	if !reflect.DeepEqual(plain, ck) {
		t.Errorf("%s: checkpointing perturbed the run:\n plain: %+v\n ckpt:  %+v", name, plain, ck)
	}
	if len(snaps) == 0 {
		t.Fatalf("%s: no snapshots captured", name)
	}
	if cycles[0] != cfg.Warmup {
		t.Errorf("%s: first snapshot at cycle %d, want warmup boundary %d", name, cycles[0], cfg.Warmup)
	}
	return plain, cycles, snaps
}

// resumeAll resumes from every captured snapshot and requires each resumed
// Result to be byte-identical to the cold run's — SteppedCycles included
// when the engines match.
func resumeAll(t *testing.T, name string, cfg Config, want Result, cycles []int64, snaps [][]byte) {
	t.Helper()
	for i, data := range snaps {
		got, err := ResumeRun(cfg, data, 0, nil)
		if err != nil {
			t.Fatalf("%s: resume from cycle %d: %v", name, cycles[i], err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: resume from cycle %d diverged:\n cold:    %+v\n resumed: %+v",
				name, cycles[i], want, got)
		}
	}
}

// TestResumeBitExactAllMechanisms snapshots every mechanism at the warmup
// boundary and at periodic mid-measure checkpoints, resumes from each, and
// requires byte-equal Results — the correctness bar for checkpoint reuse.
func TestResumeBitExactAllMechanisms(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation resume matrix")
	}
	for _, k := range core.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Workload:  smallWorkload(),
				Mechanism: k,
				Density:   timing.Gb32,
				Seed:      7,
				Warmup:    8_000,
				Measure:   30_000,
			}
			want, cycles, snaps := runCheckpointed(t, k.String(), cfg, 7_000)
			resumeAll(t, k.String(), cfg, want, cycles, snaps)
		})
	}
}

// TestResumeBitExactSaturated pins resume correctness where the event
// engine leans on its saturation fallback: intensive many-core configs
// whose snapshots routinely land inside blind windows.
func TestResumeBitExactSaturated(t *testing.T) {
	if testing.Short() {
		t.Skip("saturated resume runs")
	}
	lib := workload.Library()
	wl := workload.Workload{Name: "sat", Benchmarks: lib[:8]}
	for _, k := range []core.Kind{core.KindDSARP, core.KindDARP, core.KindREFpb} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Workload:  wl,
				Mechanism: k,
				Density:   timing.Gb8,
				Seed:      3,
				Warmup:    6_000,
				Measure:   24_000,
				Channels:  1,
			}
			want, cycles, snaps := runCheckpointed(t, k.String(), cfg, 5_000)
			resumeAll(t, k.String(), cfg, want, cycles, snaps)
		})
	}
}

// TestResumeCycleEngine covers the plain stepper: snapshot and resume
// under EngineCycle must be byte-exact too.
func TestResumeCycleEngine(t *testing.T) {
	cfg := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindDSARP,
		Density:   timing.Gb32,
		Engine:    EngineCycle,
		Seed:      11,
		Warmup:    5_000,
		Measure:   15_000,
	}
	want, cycles, snaps := runCheckpointed(t, "cycle", cfg, 4_000)
	resumeAll(t, "cycle", cfg, want, cycles, snaps)
}

// TestResumeCrossEngine snapshots under one engine and restores under the
// other. The machine state is engine-independent, so the Results must
// match up to SteppedCycles (the equivalence-matrix convention).
func TestResumeCrossEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine resume runs")
	}
	base := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindDSARP,
		Density:   timing.Gb32,
		Seed:      9,
		Warmup:    5_000,
		Measure:   20_000,
	}
	for _, dir := range []struct {
		name     string
		from, to Engine
	}{
		{"event_to_cycle", EngineEvent, EngineCycle},
		{"cycle_to_event", EngineCycle, EngineEvent},
	} {
		dir := dir
		t.Run(dir.name, func(t *testing.T) {
			cfgFrom, cfgTo := base, base
			cfgFrom.Engine, cfgTo.Engine = dir.from, dir.to
			want, err := Run(cfgTo)
			if err != nil {
				t.Fatalf("cold %v run: %v", dir.to, err)
			}
			var snaps [][]byte
			if _, err := RunWithCheckpoints(cfgFrom, 8_000, func(_ int64, d []byte) {
				snaps = append(snaps, d)
			}); err != nil {
				t.Fatalf("checkpointed %v run: %v", dir.from, err)
			}
			for i, data := range snaps {
				got, err := ResumeRun(cfgTo, data, 0, nil)
				if err != nil {
					t.Fatalf("resume %d: %v", i, err)
				}
				want.SteppedCycles, got.SteppedCycles = 0, 0
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s: resume %d diverged:\n cold:    %+v\n resumed: %+v",
						dir.name, i, want, got)
				}
			}
		})
	}
}

// TestResumeMeasureExtension reuses a warmup-boundary snapshot taken under
// a short measurement window for a longer one: the snapshot is agnostic to
// Measure, so the extended resumed run must equal an extended cold run.
func TestResumeMeasureExtension(t *testing.T) {
	cfg := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindDARP,
		Density:   timing.Gb32,
		Seed:      4,
		Warmup:    5_000,
		Measure:   10_000,
	}
	var boundary []byte
	if _, err := RunWithCheckpoints(cfg, 0, func(cycle int64, d []byte) {
		if cycle == cfg.Warmup {
			boundary = d
		}
	}); err != nil {
		t.Fatalf("short run: %v", err)
	}
	long := cfg
	long.Measure = 25_000
	want, err := Run(long)
	if err != nil {
		t.Fatalf("cold long run: %v", err)
	}
	got, err := ResumeRun(long, boundary, 0, nil)
	if err != nil {
		t.Fatalf("extended resume: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("measure extension diverged:\n cold:    %+v\n resumed: %+v", want, got)
	}
}

// TestResumeCheckpointChainEquality requires a resumed run to emit the
// exact snapshot byte streams the cold run emitted after the resume point:
// checkpoint schedules must be identical whether armed cold or on resume.
func TestResumeCheckpointChainEquality(t *testing.T) {
	cfg := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindDSARP,
		Density:   timing.Gb32,
		Seed:      2,
		Warmup:    4_000,
		Measure:   20_000,
	}
	const every = 4_500
	var coldCycles []int64
	var coldSnaps [][]byte
	if _, err := RunWithCheckpoints(cfg, every, func(c int64, d []byte) {
		coldCycles = append(coldCycles, c)
		coldSnaps = append(coldSnaps, d)
	}); err != nil {
		t.Fatal(err)
	}
	if len(coldSnaps) < 3 {
		t.Fatalf("want >= 3 checkpoints, got %d at %v", len(coldSnaps), coldCycles)
	}
	var resCycles []int64
	var resSnaps [][]byte
	if _, err := ResumeRun(cfg, coldSnaps[1], every, func(c int64, d []byte) {
		resCycles = append(resCycles, c)
		resSnaps = append(resSnaps, d)
	}); err != nil {
		t.Fatal(err)
	}
	wantCycles := coldCycles[2:]
	if !reflect.DeepEqual(resCycles, wantCycles) {
		t.Fatalf("resumed checkpoint cycles %v, cold emitted %v", resCycles, wantCycles)
	}
	for i := range resSnaps {
		if !bytes.Equal(resSnaps[i], coldSnaps[2+i]) {
			t.Errorf("checkpoint at cycle %d differs between cold and resumed run", resCycles[i])
		}
	}
}

// TestResumeFuzzRandomCycle snapshots at a random mid-measure cycle
// (exercising arbitrary engine positions, blind windows included) by
// scheduling a one-off checkpoint there, then diffs the resumed Result
// against the cold run's.
func TestResumeFuzzRandomCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz resume runs")
	}
	rng := rand.New(rand.NewSource(20260807))
	kinds := core.Kinds()
	for i := 0; i < 8; i++ {
		cores := 2 + rng.Intn(7)
		var wl workload.Workload
		if rng.Intn(2) == 0 {
			wl = workload.IntensiveMixes(1, cores, rng.Int63())[0]
		} else {
			wl = workload.Mixes(1, cores, rng.Int63())[0]
		}
		k := kinds[rng.Intn(len(kinds))]
		seed := rng.Int63n(1 << 20)
		cfg := Config{
			Workload:  wl,
			Mechanism: k,
			Density:   timing.Gb32,
			Seed:      seed,
			Warmup:    5_000,
			Measure:   20_000,
		}
		// A prime-ish random interval puts the first mid-measure checkpoint
		// at an arbitrary engine position.
		every := 3_000 + rng.Int63n(9_000)
		name := fmt.Sprintf("draw%d_%s_%s_seed%d_every%d", i, k, wl.Name, seed, every)
		t.Run(name, func(t *testing.T) {
			want, cycles, snaps := runCheckpointed(t, name, cfg, every)
			// Resume only from the last (deepest) snapshot: the full matrix
			// is covered by the dedicated tests above.
			resumeAll(t, name, cfg, want, cycles[len(cycles)-1:], snaps[len(snaps)-1:])
		})
	}
}

// TestRestoreRefusesMismatch pins the refusal paths: corrupt payloads,
// version skew, checked configs, and wrong-shape configs never restore.
func TestRestoreRefusesMismatch(t *testing.T) {
	cfg := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindREFab,
		Density:   timing.Gb32,
		Seed:      1,
		Warmup:    2_000,
		Measure:   4_000,
	}
	var boundary []byte
	if _, err := RunWithCheckpoints(cfg, 0, func(_ int64, d []byte) { boundary = d }); err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreSystem(cfg, boundary); err != nil {
		t.Fatalf("clean restore failed: %v", err)
	}

	checked := cfg
	checked.Check = true
	if _, err := RestoreSystem(checked, boundary); err == nil {
		t.Error("restore into a checked config must be refused")
	}

	bad := append([]byte(nil), boundary...)
	bad[len(bad)-1] ^= 0xff
	if _, err := RestoreSystem(cfg, bad); err == nil {
		t.Error("corrupt payload must be refused")
	}

	// Version skew: rewrite the header's version string in place.
	skewed := bytes.Replace(boundary, []byte(snap.Version), []byte("dsarp-snap-v0"), 1)
	if _, err := RestoreSystem(cfg, skewed); err == nil {
		t.Error("version-skewed snapshot must be refused")
	} else if !isVersionErr(err) {
		t.Errorf("version skew reported as %v, want snap.ErrVersion", err)
	}

	wrongShape := cfg
	wrongShape.Channels = 1
	if _, err := RestoreSystem(wrongShape, boundary); err == nil {
		t.Error("wrong-shape config must be refused")
	}
}

func isVersionErr(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == snap.ErrVersion {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// TestCanSnapshot pins the unsupported configurations: checked runs and
// ad-hoc policies fall back to plain (checkpoint-free) runs.
func TestCanSnapshot(t *testing.T) {
	cfg := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindREFab,
		Density:   timing.Gb32,
		Seed:      1,
		Warmup:    1_000,
		Measure:   2_000,
		Check:     true,
	}
	fired := false
	if _, err := RunWithCheckpoints(cfg, 500, func(int64, []byte) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("checked run must not emit snapshots")
	}
}

// BenchmarkSnapshotRoundTrip measures the serialize+restore cost of a
// warmed-up DSARP system — the per-checkpoint overhead a resumable run
// pays on top of simulation proper.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	cfg := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindDSARP,
		Density:   timing.Gb32,
		Seed:      7,
		Warmup:    8_000,
		Measure:   30_000,
	}
	cfg = cfg.WithDefaults()
	s, err := NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.RunTo(cfg.Warmup)
	data := s.Snapshot()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data = s.Snapshot()
		if _, err := RestoreSystem(cfg, data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGoldenSnapshotBytes pins the snapshot container byte-for-byte
// against testdata/golden.snap: the same discipline the golden tables
// apply to simulator behavior, applied to the snapshot layout. If this
// fails, the serialized layout (or the simulated state it captures)
// changed — regenerate the fixture with
//
//	DSARP_UPDATE_SNAP_GOLDEN=1 go test ./internal/sim -run TestGoldenSnapshotBytes
//
// AND bump snap.Version in the same change, or every warm store's
// snapshots would restore into a machine they no longer describe.
// scripts/check-schema-bump.sh fails CI when the fixture changes without
// the version bump.
func TestGoldenSnapshotBytes(t *testing.T) {
	cfg := Config{
		Workload:  smallWorkload(),
		Mechanism: core.KindDSARP,
		Density:   timing.Gb32,
		Seed:      7,
		Warmup:    8_000,
		Measure:   30_000,
	}
	cfg = cfg.WithDefaults()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RunTo(cfg.Warmup)
	got := s.Snapshot()

	path := filepath.Join("testdata", "golden.snap")
	if os.Getenv("DSARP_UPDATE_SNAP_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes) — bump snap.Version in the same change", path, len(got))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot fixture (regenerate with DSARP_UPDATE_SNAP_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot bytes drifted from testdata/golden.snap (got %d bytes, want %d): "+
			"the layout or captured state changed — regenerate the fixture AND bump snap.Version",
			len(got), len(want))
	}
	// The pinned fixture must keep restoring: layout stability is only
	// useful if old snapshots actually load.
	if _, err := RestoreSystem(cfg, want); err != nil {
		t.Fatalf("golden snapshot no longer restores: %v", err)
	}
}
