package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// runBothEngines executes cfg under the cycle stepper and the clock-skipping
// event engine and asserts the Results are identical bit for bit (modulo the
// engines' own SteppedCycles accounting, which is what distinguishes them).
// It returns the event-engine result for callers that want the skip rate.
func runBothEngines(t *testing.T, name string, cfg Config) Result {
	t.Helper()
	cfg.Engine = EngineCycle
	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s: cycle engine: %v", name, err)
	}
	cfg.Engine = EngineEvent
	got, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s: event engine: %v", name, err)
	}
	if want.SteppedCycles != want.MeasuredCycles {
		t.Errorf("%s: cycle engine stepped %d of %d cycles; it must never skip",
			name, want.SteppedCycles, want.MeasuredCycles)
	}
	ev := got
	want.SteppedCycles, got.SteppedCycles = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: engines diverged:\n cycle: %+v\n event: %+v", name, want, got)
	}
	return ev
}

// TestEngineEquivalenceAllMechanisms runs the full matrix of the paper's 13
// mechanism configurations under both engines and requires byte-equal
// Results: same IPC, MPKI, per-core stats, DRAM command counts, controller
// stats (latency sums included), and energy.
func TestEngineEquivalenceAllMechanisms(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation equivalence matrix")
	}
	for _, k := range core.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			runBothEngines(t, k.String(), Config{
				Workload:  smallWorkload(),
				Mechanism: k,
				Density:   timing.Gb32,
				Seed:      7,
				Warmup:    8_000,
				Measure:   30_000,
			})
		})
	}
}

// TestEngineEquivalenceSweepPoints covers the evaluation's sensitivity-sweep
// configurations: the Table 4 tFAW/tRRD points, the Table 5 subarray counts,
// the Table 6 64 ms retention, the D4 open-row ablation, and a single-channel
// system.
func TestEngineEquivalenceSweepPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation equivalence sweep")
	}
	base := func() Config {
		return Config{
			Workload:  smallWorkload(),
			Mechanism: core.KindDSARP,
			Density:   timing.Gb32,
			Seed:      5,
			Warmup:    6_000,
			Measure:   24_000,
		}
	}
	cases := map[string]func(*Config){
		"tfaw5": func(c *Config) {
			c.AdjustTiming = func(p *timing.Params) { p.TFAW = 5; p.TRRD = 1 }
		},
		"tfaw30": func(c *Config) {
			c.AdjustTiming = func(p *timing.Params) { p.TFAW = 30; p.TRRD = 6 }
		},
		"subs1":       func(c *Config) { c.SubarraysPerBank = 1 },
		"subs64":      func(c *Config) { c.SubarraysPerBank = 64 },
		"retention64": func(c *Config) { c.Retention = timing.Retention64ms },
		"openrow":     func(c *Config) { c.OpenRow = true },
		"1channel":    func(c *Config) { c.Channels = 1 },
		"checker": func(c *Config) {
			c.Check = true
			c.Mechanism = core.KindDARP
		},
	}
	for name, mod := range cases {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := base()
			mod(&cfg)
			runBothEngines(t, name, cfg)
		})
	}
}

// TestEngineEquivalenceFuzz drives both engines over seeded random
// configurations — mechanism x density x workload intensity x channel count —
// and requires identical Results for every draw. Any divergence means a
// NextEvent implementation overshot a real event.
func TestEngineEquivalenceFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation fuzz")
	}
	const draws = 12
	rng := rand.New(rand.NewSource(20260730))
	kinds := core.Kinds()
	densities := []timing.Density{timing.Gb8, timing.Gb16, timing.Gb32}
	for i := 0; i < draws; i++ {
		cfg := Config{
			Mechanism: kinds[rng.Intn(len(kinds))],
			Density:   densities[rng.Intn(len(densities))],
			Channels:  1 + rng.Intn(2),
			Seed:      rng.Int63n(1 << 30),
			Warmup:    2_000 + rng.Int63n(4_000),
			Measure:   10_000 + rng.Int63n(15_000),
		}
		cores := 2 + rng.Intn(3)
		switch rng.Intn(3) {
		case 0: // all-intensive
			cfg.Workload = workload.IntensiveMixes(1, cores, rng.Int63())[0]
		case 1: // idle-heavy: non-intensive benchmarks only
			lib := workload.NonIntensive()
			wl := workload.Workload{Name: fmt.Sprintf("fuzz-light%d", i)}
			for c := 0; c < cores; c++ {
				wl.Benchmarks = append(wl.Benchmarks, lib[rng.Intn(len(lib))])
			}
			cfg.Workload = wl
		default: // mixed category
			mixes := workload.Mixes(1, cores, rng.Int63())
			cfg.Workload = mixes[rng.Intn(len(mixes))]
		}
		name := fmt.Sprintf("draw%02d_%v_%v_ch%d_%s",
			i, cfg.Mechanism, cfg.Density, cfg.Channels, cfg.Workload.Name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runBothEngines(t, name, cfg)
		})
	}
}

// TestEngineEquivalenceSaturated pins the stepper-fallback regime: all-
// intensive workloads keep nearly every cycle event-bearing, so the event
// engine spends most of its time in selective stepping and the blind-window
// fallback — exactly the paths the saturation-hot-path optimizations
// (incremental FR-FCFS candidate registers, SoA DRAM timing state, in-Tick
// core fast-forward) rewrite. Both engines must stay byte-equal across the
// refresh mechanisms with the most per-cycle machinery, at 8-Gb and 32-Gb
// densities, one- and two-channel, and under the open-row ablation.
func TestEngineEquivalenceSaturated(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation saturated equivalence matrix")
	}
	base := func(cores int, seed int64) Config {
		return Config{
			Workload:  workload.IntensiveMixes(1, cores, seed)[0],
			Mechanism: core.KindDSARP,
			Density:   timing.Gb32,
			Seed:      seed,
			Warmup:    6_000,
			Measure:   30_000,
		}
	}
	cases := map[string]func() Config{
		"dsarp_4core": func() Config { return base(4, 21) },
		"dsarp_8core": func() Config { return base(8, 22) },
		"darp_4core": func() Config {
			c := base(4, 23)
			c.Mechanism = core.KindDARP
			return c
		},
		"refpb_4core": func() Config {
			c := base(4, 24)
			c.Mechanism = core.KindREFpb
			return c
		},
		"sarppb_4core": func() Config {
			c := base(4, 25)
			c.Mechanism = core.KindSARPpb
			return c
		},
		"dsarp_8gb": func() Config {
			c := base(4, 26)
			c.Density = timing.Gb8
			return c
		},
		"dsarp_1channel": func() Config {
			c := base(4, 27)
			c.Channels = 1
			return c
		},
		"dsarp_openrow": func() Config {
			c := base(4, 28)
			c.OpenRow = true
			return c
		},
		"dsarp_checker": func() Config {
			c := base(4, 29)
			c.Check = true
			return c
		},
	}
	for name, mk := range cases {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := runBothEngines(t, name, mk())
			if res.SkipRate() < 0.5 {
				t.Errorf("%s: skip rate %.2f — this config is not saturated enough to pin the stepper fallback",
					name, res.SkipRate())
			}
		})
	}
}

// TestEventEngineSkipsIdleHeavy pins the point of the event engine: on a
// workload dominated by compute (non-intensive benchmarks), most cycles are
// provably eventless and must be skipped, not stepped.
func TestEventEngineSkipsIdleHeavy(t *testing.T) {
	lib := workload.NonIntensive()
	res := runBothEngines(t, "idle-heavy", Config{
		Workload:  workload.Workload{Name: "idleheavy", Benchmarks: lib[len(lib)-4:]},
		Mechanism: core.KindREFab,
		Density:   timing.Gb32,
		Seed:      11,
		Warmup:    5_000,
		Measure:   30_000,
	})
	if res.SkipRate() > 0.5 {
		t.Errorf("idle-heavy skip rate %.2f: event engine stepped %d of %d cycles, want < 50%%",
			res.SkipRate(), res.SteppedCycles, res.MeasuredCycles)
	}
}
