package sim

import (
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// BenchmarkStep measures the raw simulator throughput (DRAM cycles per
// second of host time) for an 8-core system under DSARP — the cost that
// bounds how large an experiment campaign can run.
func BenchmarkStep(b *testing.B) {
	wl := workload.IntensiveMixes(1, 8, 1)[0]
	s, err := NewSystem(Config{
		Workload:  wl,
		Mechanism: core.KindDSARP,
		Density:   timing.Gb32,
		Seed:      1,
	}.WithDefaults())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkRunPerMechanism measures a short end-to-end run per mechanism.
func BenchmarkRunPerMechanism(b *testing.B) {
	wl := workload.IntensiveMixes(1, 4, 1)[0]
	for _, k := range []core.Kind{core.KindNoRef, core.KindREFab, core.KindREFpb, core.KindDSARP} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(Config{
					Workload:  wl,
					Mechanism: k,
					Density:   timing.Gb32,
					Seed:      1,
					Warmup:    5_000,
					Measure:   20_000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngines compares the cycle stepper against the clock-skipping
// event engine across workload intensities; the frac_simulated metric is
// the fraction of cycles the engine actually simulated (1.0 = no skipping).
func BenchmarkEngines(b *testing.B) {
	lib := workload.NonIntensive()
	cases := []struct {
		name string
		wl   workload.Workload
	}{
		{"alone", workload.Workload{Name: "alone", Benchmarks: lib[len(lib)-1:]}},
		{"idleheavy", workload.Workload{Name: "idleheavy", Benchmarks: lib[len(lib)-4:]}},
		{"intensive", workload.IntensiveMixes(1, 4, 1)[0]},
	}
	for _, tc := range cases {
		for _, eng := range []Engine{EngineCycle, EngineEvent} {
			b.Run(tc.name+"/"+eng.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := Run(Config{
						Workload:  tc.wl,
						Mechanism: core.KindREFab,
						Density:   timing.Gb32,
						Seed:      1,
						Warmup:    10_000,
						Measure:   100_000,
						Engine:    eng,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.SkipRate(), "frac_simulated")
				}
			})
		}
	}
}
