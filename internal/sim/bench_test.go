package sim

import (
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// BenchmarkStep measures the raw simulator throughput (DRAM cycles per
// second of host time) for an 8-core system under DSARP — the cost that
// bounds how large an experiment campaign can run.
func BenchmarkStep(b *testing.B) {
	wl := workload.IntensiveMixes(1, 8, 1)[0]
	s, err := NewSystem(Config{
		Workload:  wl,
		Mechanism: core.KindDSARP,
		Density:   timing.Gb32,
		Seed:      1,
	}.WithDefaults())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkRunPerMechanism measures a short end-to-end run per mechanism.
func BenchmarkRunPerMechanism(b *testing.B) {
	wl := workload.IntensiveMixes(1, 4, 1)[0]
	for _, k := range []core.Kind{core.KindNoRef, core.KindREFab, core.KindREFpb, core.KindDSARP} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(Config{
					Workload:  wl,
					Mechanism: k,
					Density:   timing.Gb32,
					Seed:      1,
					Warmup:    5_000,
					Measure:   20_000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
