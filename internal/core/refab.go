package core

import (
	"math"

	"dsarp/internal/dram"
	"dsarp/internal/sched"
	"dsarp/internal/timing"
)

// AllBank is the commodity DDR baseline: one REFab per rank every tREFIab
// (paper §2.2.1). When a refresh comes due the policy blocks demand to the
// rank, drains open banks with precharges, and issues the REFab as soon as
// the device accepts it. Rank phases are staggered so the two ranks of a
// channel do not refresh simultaneously.
//
// Paired with a SARP-enabled device this policy is the paper's SARPab
// configuration: the rank keeps serving accesses to non-refreshing
// subarrays during tRFCab.
type AllBank struct {
	v       sched.View
	ranks   int
	banks   int
	next    []int64 // next nominal refresh time per rank
	due     []bool
	refRows int // rows per refresh op (scaled down under FGR)
}

// NewAllBank builds the REFab policy over a controller view. seed offsets
// the refresh timer phase so independent channels decorrelate. Under an FGR
// timing mode (Fig. 16) the same scheduler runs at the scaled 2x/4x rate
// with proportionally fewer rows restored per command.
func NewAllBank(v sched.View, seed int64) *AllBank {
	g := v.Dev().Geometry()
	p := &AllBank{
		v:     v,
		ranks: g.Ranks,
		banks: g.Banks,
		next:  make([]int64, g.Ranks),
		due:   make([]bool, g.Ranks),
	}
	switch v.Timing().Mode {
	case timing.RefFGR2x:
		p.refRows = max(1, g.RowsPerRef/2)
	case timing.RefFGR4x:
		p.refRows = max(1, g.RowsPerRef/4)
	}
	stagger := int64(v.Timing().TREFIab) / int64(g.Ranks)
	base := phaseOffset(seed, stagger)
	for r := 0; r < g.Ranks; r++ {
		p.next[r] = base + int64(r)*stagger
	}
	return p
}

// Name implements sched.RefreshPolicy.
func (p *AllBank) Name() string {
	switch {
	case p.v.Dev().SARP():
		return "SARPab"
	case p.v.Timing().Mode == timing.RefFGR2x:
		return "FGR2x"
	case p.v.Timing().Mode == timing.RefFGR4x:
		return "FGR4x"
	default:
		return "REFab"
	}
}

// RankBlocked implements sched.RefreshPolicy: demand is held while a rank
// drains for a due refresh. With SARP there is no need to drain — the rank
// stays accessible during refresh — so nothing is blocked.
func (p *AllBank) RankBlocked(rank int) bool { return !p.v.Dev().SARP() && p.due[rank] }

// BankBlocked implements sched.RefreshPolicy.
func (p *AllBank) BankBlocked(int, int) bool { return false }

// NextDeadline implements sched.RefreshPolicy. A rank with a due refresh is
// active only while it drains open banks or could actually issue; once the
// rank is fully precharged the exact earliest-REFab bound names the cycle
// the wait ends (post-drain tRP, a still-running refresh when the schedule
// has fallen behind). SARP devices keep the conservative per-cycle answer —
// their refresh legality depends on subarray state.
func (p *AllBank) NextDeadline(now int64) int64 {
	ev := int64(math.MaxInt64)
	dev := p.v.Dev()
	for r := 0; r < p.ranks; r++ {
		if now >= p.next[r] && !p.due[r] {
			return now // due flag flips this cycle
		}
		if !p.due[r] {
			if p.next[r] < ev {
				ev = p.next[r]
			}
			continue
		}
		if dev.SARP() {
			// While a refresh occupies the rank every REFab is rejected,
			// and only a subarray-conflicting open row gets drained.
			busy := dev.RefreshBusyUntil(r)
			if now >= busy || sarpConflictOpen(dev, r, -1) {
				return now
			}
			if busy < ev {
				ev = busy
			}
			continue
		}
		open := false
		for b := 0; b < p.banks; b++ {
			if dev.OpenRow(r, b) != dram.NoRow {
				open = true
				break
			}
		}
		if open {
			return now // draining
		}
		e := dev.EarliestREFab(r)
		if e <= now {
			return now
		}
		if e < ev {
			ev = e
		}
	}
	return ev
}

// Skip implements sched.RefreshPolicy: no per-cycle accounting.
func (p *AllBank) Skip(int64, int64) {}

// setDue updates a rank's due flag, bumping the blocked epoch on change.
func (p *AllBank) setDue(r int, v bool) {
	if p.due[r] != v {
		p.due[r] = v
		p.v.NoteBlockedChanged()
	}
}

// Tick implements sched.RefreshPolicy.
func (p *AllBank) Tick(now int64, _ bool) bool {
	tREFI := int64(p.v.Timing().TREFIab)
	dev := p.v.Dev()
	for r := 0; r < p.ranks; r++ {
		if now >= p.next[r] {
			p.setDue(r, true)
		}
		if !p.due[r] {
			continue
		}
		cmd := dram.Cmd{Kind: dram.CmdREFab, Rank: r, RefRows: p.refRows}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			p.next[r] += tREFI
			p.setDue(r, now >= p.next[r]) // back-to-back if we fell behind
			return true
		}
		if p.drainRank(r, now) {
			return true
		}
	}
	return false
}

// drainRank issues one precharge toward making the rank refreshable. With
// SARP only banks whose open row sits in the to-be-refreshed subarray stand
// in the way; everything else keeps serving during the refresh.
func (p *AllBank) drainRank(rank int, now int64) bool {
	dev := p.v.Dev()
	g := dev.Geometry()
	for b := 0; b < g.Banks; b++ {
		open := dev.OpenRow(rank, b)
		if open == dram.NoRow {
			continue
		}
		if dev.SARP() && g.SubarrayOf(open) != dev.RefreshUnit(rank).PeekSubarray(b) {
			continue
		}
		cmd := dram.Cmd{Kind: dram.CmdPRE, Rank: rank, Bank: b}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			return true
		}
	}
	return false
}
