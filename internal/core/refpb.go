package core

import (
	"math"

	"dsarp/internal/dram"
	"dsarp/internal/sched"
)

// PerBank is the LPDDR per-bank refresh baseline (paper §2.2.2): one REFpb
// every tREFIpb = tREFIab/8, delivered to banks in a strict sequential
// round-robin order dictated by the DRAM-internal refresh unit. The
// controller has no say in bank selection: when a refresh comes due, the
// round-robin bank is drained and refreshed even if it has pending demand —
// exactly the inflexibility DARP removes.
//
// Paired with a SARP-enabled device this is the paper's SARPpb
// configuration.
type PerBank struct {
	v     sched.View
	ranks int
	banks int
	next  []int64 // per-rank next nominal refresh time
	owedN []int64 // per-rank refreshes due but not yet issued
}

// NewPerBank builds the round-robin REFpb policy over a controller view.
// seed offsets the refresh timer phase so independent channels decorrelate.
func NewPerBank(v sched.View, seed int64) *PerBank {
	g := v.Dev().Geometry()
	p := &PerBank{
		v:     v,
		ranks: g.Ranks,
		banks: g.Banks,
		next:  make([]int64, g.Ranks),
		owedN: make([]int64, g.Ranks),
	}
	// Stagger rank schedules half a tREFIpb apart so the two ranks' refresh
	// pulses interleave, as independent per-rank refresh timers would.
	stagger := int64(v.Timing().TREFIpb) / int64(g.Ranks)
	base := phaseOffset(seed, stagger)
	for r := 0; r < g.Ranks; r++ {
		p.next[r] = base + int64(r)*stagger
	}
	return p
}

// Name implements sched.RefreshPolicy.
func (p *PerBank) Name() string {
	if p.v.Dev().SARP() {
		return "SARPpb"
	}
	return "REFpb"
}

// RankBlocked implements sched.RefreshPolicy.
func (p *PerBank) RankBlocked(int) bool { return false }

// BankBlocked implements sched.RefreshPolicy: the round-robin target bank is
// held while its refresh is pending (no SARP: the whole bank is tied up, so
// queued demand would only delay the mandatory refresh).
func (p *PerBank) BankBlocked(rank, bank int) bool {
	if p.v.Dev().SARP() {
		return false
	}
	return p.owedN[rank] > 0 && p.v.Dev().RefreshUnit(rank).PeekBank() == bank
}

// NextDeadline implements sched.RefreshPolicy. A rank with owed refreshes
// is only genuinely active when its round-robin bank needs draining or the
// refresh could actually issue; while an earlier refresh still occupies the
// rank (or the bank's own timing holds the REFpb off) every attempt is
// provably rejected and the whole wait is skippable.
func (p *PerBank) NextDeadline(now int64) int64 {
	ev := int64(math.MaxInt64)
	dev := p.v.Dev()
	for r := 0; r < p.ranks; r++ {
		if now >= p.next[r] {
			return now // owed count accrues this cycle
		}
		if p.next[r] < ev {
			ev = p.next[r]
		}
		if p.owedN[r] == 0 {
			continue
		}
		bank := dev.RefreshUnit(r).PeekBank()
		if dev.SARP() {
			// All REFpb to the rank fail while any refresh is in progress;
			// the drain only applies to a subarray-conflicting open row.
			busy := dev.RefreshBusyUntil(r)
			if now >= busy || sarpConflictOpen(dev, r, bank) {
				return now
			}
			if busy < ev {
				ev = busy
			}
			continue
		}
		if open := dev.OpenRow(r, bank); open != dram.NoRow {
			return now // draining the round-robin bank
		}
		e := dev.EarliestREFpb(r, bank)
		if e <= now {
			return now
		}
		if e < ev {
			ev = e
		}
	}
	return ev
}

// Skip implements sched.RefreshPolicy: no per-cycle accounting.
func (p *PerBank) Skip(int64, int64) {}

// Tick implements sched.RefreshPolicy.
func (p *PerBank) Tick(now int64, _ bool) bool {
	tREFIpb := int64(p.v.Timing().TREFIpb)
	dev := p.v.Dev()
	for r := 0; r < p.ranks; r++ {
		for now >= p.next[r] {
			if p.owedN[r] == 0 {
				p.v.NoteBlockedChanged() // bank block engages
			}
			p.owedN[r]++
			p.next[r] += tREFIpb
		}
		if p.owedN[r] == 0 {
			continue
		}
		bank := dev.RefreshUnit(r).PeekBank()
		cmd := dram.Cmd{Kind: dram.CmdREFpb, Rank: r, Bank: bank}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			p.owedN[r]--
			p.v.NoteBlockedChanged() // owed count or round-robin bank changed
			return true
		}
		if p.drainBank(r, bank, now) {
			return true
		}
	}
	return false
}

// drainBank precharges the round-robin target bank if its open row blocks
// the refresh.
func (p *PerBank) drainBank(rank, bank int, now int64) bool {
	dev := p.v.Dev()
	open := dev.OpenRow(rank, bank)
	if open == dram.NoRow {
		return false
	}
	if dev.SARP() && dev.Geometry().SubarrayOf(open) != dev.RefreshUnit(rank).PeekSubarray(bank) {
		return false // SARP: the open row does not conflict with the refresh
	}
	cmd := dram.Cmd{Kind: dram.CmdPRE, Rank: rank, Bank: bank}
	if dev.CanIssue(cmd, now) {
		p.v.IssueCmd(cmd, now)
		return true
	}
	return false
}
