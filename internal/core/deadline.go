package core

import (
	"math"

	"dsarp/internal/dram"
)

// Shared NextDeadline building blocks. The contract these serve — a lower
// bound that never misses an event — is safety-critical for the
// clock-skipping engine's bit-exactness, so the reasoning lives here once
// instead of being copied into each policy.

// refabProbeDeadline bounds a policy that probes CanIssue(REFab) on rank
// every cycle but does not drain open rows (Elastic's released-but-unforced
// refresh, Adaptive's idle-rank 1x refresh). On a SARP device legality
// depends on subarray state, so the answer is a conservative "now". With
// any bank open the probe stays rejected until demand closes the rank —
// which takes a controller tick the engine already treats as an event — so
// the policy has no self-deadline (MaxInt64). With the rank precharged the
// exact earliest-REFab bound is returned; a value <= now means the probe
// could succeed this cycle and the caller must answer now.
func refabProbeDeadline(dev *dram.Device, rank, banks int, now int64) int64 {
	if dev.SARP() {
		return now
	}
	for b := 0; b < banks; b++ {
		if dev.OpenRow(rank, b) != dram.NoRow {
			return math.MaxInt64
		}
	}
	return dev.EarliestREFab(rank)
}

// sarpConflictOpen reports whether an open row conflicts with the subarray
// its pending refresh targets — i.e. a SARP-aware drain loop would be
// issuing (or retrying) a precharge right now. bank >= 0 checks only that
// bank (per-bank refresh); bank < 0 checks the whole rank (all-bank).
func sarpConflictOpen(dev *dram.Device, rank, bank int) bool {
	g := dev.Geometry()
	unit := dev.RefreshUnit(rank)
	if bank >= 0 {
		open := dev.OpenRow(rank, bank)
		return open != dram.NoRow && g.SubarrayOf(open) == unit.PeekSubarray(bank)
	}
	for b := 0; b < g.Banks; b++ {
		if open := dev.OpenRow(rank, b); open != dram.NoRow && g.SubarrayOf(open) == unit.PeekSubarray(b) {
			return true
		}
	}
	return false
}
