package core

import (
	"math"

	"dsarp/internal/dram"
	"dsarp/internal/sched"
	"dsarp/internal/timing"
)

// Adaptive implements adaptive refresh (AR) from Mukundan et al., ISCA 2013,
// the DDR4 baseline of the paper's Fig. 16. AR dynamically switches between
// the 1x (standard REFab) and 4x fine-granularity refresh modes: a due
// refresh is postponed while the rank is busy; when the rank is idle a full
// 1x refresh is issued, and when the postponement budget runs out while the
// rank is still busy the backlog is paid down with short 4x-granularity
// commands so each individual lockout is smaller.
//
// Since 4x commands carry a worse latency-per-row ratio (tRFCab shrinks by
// only 1.63x at 4x rate [13]), AR lands slightly below REFab overall —
// matching the paper's observation that AR "performs slightly worse than
// REFab (within 1%)".
type Adaptive struct {
	v     sched.View
	ranks int
	banks int
	next  []int64 // per-rank next nominal 1x refresh time
	owedN []int64 // per-rank postponed 1x refreshes
	// quarters is the per-rank count of outstanding 4x sub-commands for a 1x
	// refresh being paid down at 4x granularity.
	quarters []int
	forced   []bool

	dur4x  int // 4x command latency: tRFCab / 1.63
	rows4x int
}

// NewAdaptive builds the AR policy over a controller view; seed offsets the
// refresh timer phase so independent channels decorrelate. The view's
// timing parameters must be the standard (1x) set.
func NewAdaptive(v sched.View, seed int64) *Adaptive {
	g := v.Dev().Geometry()
	tp := v.Timing()
	p := &Adaptive{
		v:        v,
		ranks:    g.Ranks,
		banks:    g.Banks,
		next:     make([]int64, g.Ranks),
		owedN:    make([]int64, g.Ranks),
		quarters: make([]int, g.Ranks),
		forced:   make([]bool, g.Ranks),
		dur4x:    timing.NsToCycles(timing.CyclesToNs(tp.TRFCab) / 1.63),
		rows4x:   max(1, g.RowsPerRef/4),
	}
	stagger := int64(tp.TREFIab) / int64(g.Ranks)
	base := phaseOffset(seed, stagger)
	for r := 0; r < g.Ranks; r++ {
		p.next[r] = base + int64(r)*stagger
	}
	return p
}

// Name implements sched.RefreshPolicy.
func (p *Adaptive) Name() string { return "AR" }

// RankBlocked implements sched.RefreshPolicy.
func (p *Adaptive) RankBlocked(rank int) bool { return p.forced[rank] }

// BankBlocked implements sched.RefreshPolicy.
func (p *Adaptive) BankBlocked(int, int) bool { return false }

// setForced updates a rank's forced flag, bumping the blocked epoch on
// change.
func (p *Adaptive) setForced(r int, v bool) {
	if p.forced[r] != v {
		p.forced[r] = v
		p.v.NoteBlockedChanged()
	}
}

func (p *Adaptive) rankIdle(rank int) bool { return p.v.PendingRankDemand(rank) == 0 }

// NextDeadline implements sched.RefreshPolicy. The policy probes the device
// every cycle while paying down a 4x backlog, while a refresh is overdue, or
// while an idle rank has owed refreshes; the only quiescent states are "no
// debt" and "busy rank with slack", both of which hold until the rank's 1x
// timer fires.
func (p *Adaptive) NextDeadline(now int64) int64 {
	ev := int64(math.MaxInt64)
	for r := 0; r < p.ranks; r++ {
		if p.quarters[r] > 0 {
			return now
		}
		if p.owedN[r] < maxFlex && now >= p.next[r] {
			return now // owed count accrues this cycle
		}
		if p.owedN[r] == 0 {
			if p.forced[r] {
				return now // Tick clears the stale forced flag (epoch bump)
			}
			if p.next[r] < ev {
				ev = p.next[r]
			}
			continue
		}
		if p.owedN[r] >= maxFlex {
			return now // overdue: draining or switching to 4x granularity
		}
		if p.rankIdle(r) {
			// An idle rank probes CanIssue(REFab) every cycle, but with the
			// refresh not overdue it never drains; refabProbeDeadline names
			// the first cycle the probe could succeed.
			e := refabProbeDeadline(p.v.Dev(), r, p.banks, now)
			if e <= now {
				return now
			}
			if e < ev {
				ev = e
			}
		}
		if p.next[r] < ev {
			ev = p.next[r] // overdue flips at the timer
		}
	}
	return ev
}

// Skip implements sched.RefreshPolicy: no per-cycle accounting.
func (p *Adaptive) Skip(int64, int64) {}

// Tick implements sched.RefreshPolicy.
func (p *Adaptive) Tick(now int64, _ bool) bool {
	tREFI := int64(p.v.Timing().TREFIab)
	dev := p.v.Dev()
	for r := 0; r < p.ranks; r++ {
		for now >= p.next[r] && p.owedN[r] < maxFlex {
			p.owedN[r]++
			p.next[r] += tREFI
		}
		if p.owedN[r] == 0 && p.quarters[r] == 0 {
			p.setForced(r, false)
			continue
		}

		// Paying down a forced refresh at 4x granularity.
		if p.quarters[r] > 0 {
			cmd := dram.Cmd{Kind: dram.CmdREFab, Rank: r, RefDur: p.dur4x, RefRows: p.rows4x}
			if dev.CanIssue(cmd, now) {
				p.v.IssueCmd(cmd, now)
				p.quarters[r]--
				if p.quarters[r] == 0 {
					p.setForced(r, p.owedN[r] >= maxFlex)
				}
				return true
			}
			if p.drainRank(r, now) {
				return true
			}
			continue
		}

		overdue := p.owedN[r] >= maxFlex || (p.owedN[r] > 0 && now >= p.next[r])
		if p.rankIdle(r) {
			// Idle rank: standard 1x refresh.
			cmd := dram.Cmd{Kind: dram.CmdREFab, Rank: r}
			if dev.CanIssue(cmd, now) {
				p.v.IssueCmd(cmd, now)
				p.owedN[r]--
				return true
			}
			if overdue && p.drainRank(r, now) {
				return true
			}
			continue
		}
		if overdue {
			// Busy rank out of slack: switch to 4x mode for this refresh so
			// each lockout is shorter.
			p.setForced(r, true)
			p.owedN[r]--
			p.quarters[r] = 4
			if p.drainRank(r, now) {
				return true
			}
		}
	}
	return false
}

func (p *Adaptive) drainRank(rank int, now int64) bool {
	dev := p.v.Dev()
	for b := 0; b < p.banks; b++ {
		if dev.OpenRow(rank, b) == dram.NoRow {
			continue
		}
		cmd := dram.Cmd{Kind: dram.CmdPRE, Rank: rank, Bank: b}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			return true
		}
	}
	return false
}
