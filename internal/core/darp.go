package core

import (
	"math"

	"dsarp/internal/dram"
	"dsarp/internal/sched"
	"dsarp/internal/snap"
)

// DARP implements Dynamic Access Refresh Parallelization (paper §4.2), the
// first of the paper's two mechanisms. It schedules per-bank refreshes from
// the memory controller with two components:
//
//  1. Out-of-order per-bank refresh (Fig. 8): at each tREFIpb slot the
//     nominal round-robin bank R is refreshed only if it is idle; otherwise
//     the refresh is postponed (up to 8 per bank, per the erratum's
//     0 <= ref_credit <= 8 rule) and idle banks are refreshed instead in
//     otherwise-empty command slots, either catching up postponed refreshes
//     or pulling future ones in (up to 8 ahead).
//  2. Write-refresh parallelization (Algorithm 1): while the controller
//     drains a write batch, keep a refresh in flight on the bank with the
//     fewest pending demand requests, hiding refresh latency behind writes.
//
// Paired with a SARP-enabled device this is the paper's DSARP.
type DARP struct {
	v    sched.View
	dev  *dram.Device // v.Dev(), cached: immutable for the policy's lifetime
	slab []int        // v.PendingDemandSlab(), cached: stable per the View contract
	// ctl is v's concrete type when it is the stock controller (the only
	// implementation outside tests): the per-cycle queries — zero epoch,
	// rank demand, write mode — dispatch directly and inline instead of
	// through the interface.
	ctl    *sched.Controller
	opts   DARPOptions
	rng    *snap.Rand // counts its draws so snapshots can replay the stream
	scheds []*bankSchedule
	forced [][]bool // rank x bank: refresh overdue, demand held
	slotAt []int64  // per rank: start of the next unobserved tREFIpb slot
	ranks  int
	banks  int
	elig   []int // scratch buffer for write-mode bank selection

	// Cached pull-in eligibility: the per-rank lists of banks that are
	// demand-free and past their pull-in threshold — the candidate set of
	// Fig. 8's idle-bank refresh, consumed by Tick's pickIdleBank,
	// NextDeadline's step-4 deadline, and Skip's rng replay. Valid while
	// the controller's demand epoch is unchanged, no refresh has been
	// recorded, and now is before the next pull-in crossing (eligJoin).
	eligValid bool
	eligEpoch uint64
	eligJoin  int64
	eligList  [][]int

	// Cached write-mode pick failure: while wmValid and the zero epoch is
	// unchanged, pickWriteModeBank(r) is known to find no candidate before
	// wmNextAt[r], so the per-cycle writeback sweep skips the bank scan.
	// Only the no-candidate outcome is cached — it depends solely on credit
	// thresholds (time crossings), refresh records, and queue emptiness;
	// the min-pending selection itself depends on exact queue depths and is
	// never cached. Invalidated by any recorded refresh (tryRefresh) and by
	// demand zero crossings.
	wmValid     bool
	wmZeroEpoch uint64
	wmNextAt    []int64
}

// DARPOptions toggle DARP components for the paper's §6.1.2 breakdown and
// the DESIGN.md ablations.
type DARPOptions struct {
	// WriteRefresh enables write-refresh parallelization (off = the
	// out-of-order-only configuration of §6.1.2).
	WriteRefresh bool
	// RandomWritePick is ablation D2: pick a random bank instead of the
	// min-pending bank during writeback mode.
	RandomWritePick bool
	// GreedyIdlePick is ablation D5: among idle banks pick the one with the
	// largest refresh debt instead of a random one.
	GreedyIdlePick bool
	// MaxPostpone is ablation D1: the postpone/pull-in bound (0 = the
	// erratum-compliant 8). The paper's original, pre-erratum rule
	// effectively allowed 16 — which violates the JEDEC 9*tREFIpb ceiling,
	// observable with the checker's VerifyRetention.
	MaxPostpone int
}

// NewDARP builds a DARP policy over a controller view. seed drives the
// random idle-bank selection of Fig. 8 (step 3) deterministically.
func NewDARP(v sched.View, opts DARPOptions, seed int64) *DARP {
	g := v.Dev().Geometry()
	ctl, _ := v.(*sched.Controller)
	p := &DARP{
		v:      v,
		dev:    v.Dev(),
		slab:   v.PendingDemandSlab(),
		ctl:    ctl,
		opts:   opts,
		rng:    snap.NewRand(seed),
		scheds: make([]*bankSchedule, g.Ranks),
		forced: make([][]bool, g.Ranks),
		slotAt: make([]int64, g.Ranks),
		ranks:  g.Ranks,
		banks:  g.Banks,
	}
	base := phaseOffset(seed, int64(v.Timing().TREFIpb))
	for r := 0; r < g.Ranks; r++ {
		p.scheds[r] = newBankSchedule(g.Banks, int64(v.Timing().TREFIpb), int64(opts.MaxPostpone), base)
		p.forced[r] = make([]bool, g.Banks)
	}
	return p
}

// zeroEpoch, rankDemand, and writeMode are the per-cycle View queries,
// routed through the concrete controller when available (nil-check plus an
// inlinable direct call instead of interface dispatch).
func (p *DARP) zeroEpoch() uint64 {
	if p.ctl != nil {
		return p.ctl.DemandZeroEpoch()
	}
	return p.v.DemandZeroEpoch()
}

func (p *DARP) rankDemand(r int) int {
	if p.ctl != nil {
		return p.ctl.PendingRankDemand(r)
	}
	return p.v.PendingRankDemand(r)
}

func (p *DARP) writeMode() bool {
	if p.ctl != nil {
		return p.ctl.WriteMode()
	}
	return p.v.WriteMode()
}

// Name implements sched.RefreshPolicy.
func (p *DARP) Name() string {
	switch {
	case p.dev.SARP():
		return "DSARP"
	case !p.opts.WriteRefresh:
		return "DARP-ooo"
	default:
		return "DARP"
	}
}

// RankBlocked implements sched.RefreshPolicy.
func (p *DARP) RankBlocked(int) bool { return false }

// BankBlocked implements sched.RefreshPolicy: a bank is held only when it
// has exhausted its postponement credit and must refresh now.
func (p *DARP) BankBlocked(rank, bank int) bool { return p.forced[rank][bank] }

// setForced updates a bank's forced flag, bumping the controller's blocked
// epoch on change.
func (p *DARP) setForced(r, b int, v bool) {
	if p.forced[r][b] != v {
		p.forced[r][b] = v
		p.v.NoteBlockedChanged()
	}
}

// Tick implements sched.RefreshPolicy, following the decision flow of the
// paper's Fig. 8 with Algorithm 1 layered on top during writeback mode.
func (p *DARP) Tick(now int64, demandReady bool) bool {
	dev := p.dev

	// 1. Mandatory refreshes: banks out of postponement credit. The bank is
	// blocked from demand, drained, and refreshed as soon as possible. While
	// every bank still has credit (now < minForcedAt) the whole sweep is a
	// no-op: any stale forced flag would imply a bank whose credit is still
	// exhausted, which would put minForcedAt in the past.
	for r := 0; r < p.ranks; r++ {
		sch := p.scheds[r]
		if now < sch.minForcedAt {
			continue
		}
		for b := 0; b < p.banks; b++ {
			if !sch.mustRefresh(b, now) {
				p.setForced(r, b, false)
				continue
			}
			p.setForced(r, b, true)
			if p.tryRefresh(r, b, now) {
				p.setForced(r, b, sch.mustRefresh(b, now))
				return true
			}
			if p.drain(r, b, now) {
				return true
			}
		}
	}

	// 2. Write-refresh parallelization (Algorithm 1): during writeback mode
	// keep one refresh in flight, on the bank with the fewest pending
	// demand requests (its delay least extends the drain).
	if p.opts.WriteRefresh && p.writeMode() {
		if ze := p.zeroEpoch(); !p.wmValid || p.wmZeroEpoch != ze {
			if p.wmNextAt == nil {
				p.wmNextAt = make([]int64, p.ranks)
			}
			for r := range p.wmNextAt {
				p.wmNextAt[r] = math.MinInt64
			}
			p.wmValid, p.wmZeroEpoch = true, ze
		}
		for r := 0; r < p.ranks; r++ {
			if now < p.wmNextAt[r] {
				continue // a failed pick proved no candidate exists yet
			}
			if now < dev.PBRefBusyUntil(r) || dev.RankRefreshing(r, now) {
				continue
			}
			b, ok := p.pickWriteModeBank(r, now)
			if !ok {
				p.wmNextAt[r] = p.wmEligBound(r, now)
				continue
			}
			if p.tryRefresh(r, b, now) {
				return true
			}
		}
	}

	// 3. Out-of-order per-bank refresh (Fig. 8). At a tREFIpb slot boundary
	// the nominal bank R is refreshed immediately if idle; a busy R is
	// postponed (debt accrues passively in the schedule).
	for r := 0; r < p.ranks; r++ {
		sch := p.scheds[r]
		if now >= p.slotAt[r] {
			p.slotAt[r] = (now/sch.tREFIpb + 1) * sch.tREFIpb
			b := sch.slotBank(now)
			if sch.owed(b, now) > 0 && p.slab[r*p.banks+b] == 0 && p.tryRefresh(r, b, now) {
				return true
			}
		}
	}

	// Otherwise, refresh an idle bank only in command slots demand cannot
	// use ("Can issue a demand request?" -> No). The pick must run before
	// the busy check — its rng draw is part of the replayed sequence — but
	// any REFpb is guaranteed illegal while a refresh occupies the rank, so
	// the cheaper RefreshBusyUntil read replaces a doomed CanIssue.
	if demandReady {
		return false
	}
	p.eligCache(now) // once for all ranks; the picks below read the lists
	for r := 0; r < p.ranks; r++ {
		if b, ok := p.pickIdleBank(r, now); ok && now >= dev.RefreshBusyUntil(r) &&
			p.tryRefresh(r, b, now) {
			return true
		}
	}
	return false
}

// NextDeadline implements sched.RefreshPolicy. Inside a skip window demand
// is never issuable, so the idle-bank refresh step of Fig. 8 runs every
// cycle — and it consumes one rng draw per rank with a pull-in-eligible
// bank. Those draws are still skippable while a refresh is in progress on
// the rank: every REFpb the pick could attempt is guaranteed illegal until
// RefreshBusyUntil, the eligible set cannot change (pull-in credit only
// crosses thresholds, demand is frozen), and Skip replays the draws
// verbatim. The deadline is the earliest of: a bank running out of
// postponement credit, a tREFIpb slot boundary, a refresh window ending
// with an eligible bank waiting, or a bank newly gaining pull-in
// eligibility — with writeback mode pinning the policy to cycle stepping.
func (p *DARP) NextDeadline(now int64) int64 {
	ev := int64(math.MaxInt64)
	for r := range p.scheds {
		// Step 1: mandatory refreshes once a bank's credit runs out.
		if now >= p.scheds[r].minForcedAt {
			return now
		}
		if p.scheds[r].minForcedAt < ev {
			ev = p.scheds[r].minForcedAt
		}
		// Step 3: tREFIpb slot boundaries update slotAt and may refresh.
		if now >= p.slotAt[r] {
			return now
		}
		if p.slotAt[r] < ev {
			ev = p.slotAt[r]
		}
	}
	// Step 2: write-refresh parallelization only acts on a rank whose
	// previous refresh has completed — while every rank is still busy the
	// sweep touches nothing (the min-pending pick runs only after the
	// rank clears), so the next action is the earliest completion.
	dev := p.dev
	if p.opts.WriteRefresh && p.writeMode() {
		for r := range p.scheds {
			busy := dev.RefreshBusyUntil(r)
			if now >= busy {
				return now
			}
			if busy < ev {
				ev = busy
			}
		}
	}
	// Step 4: idle-bank selection.
	p.eligCache(now)
	for r := range p.scheds {
		if len(p.eligList[r]) == 0 {
			continue
		}
		busyUntil := dev.RefreshBusyUntil(r)
		if now >= busyUntil {
			return now // a picked refresh could actually issue
		}
		if busyUntil < ev {
			ev = busyUntil
		}
	}
	if p.eligJoin < ev {
		ev = p.eligJoin // a bank joins the eligible set here
	}
	return ev
}

// eligCache (re)derives the per-rank pull-in-eligible bank counts. The
// cache is exact, not heuristic: the counts can only change when a bank's
// or rank's queued demand crosses empty <-> nonempty (the zero epoch — the
// counts themselves don't matter, only which are zero), a refresh is
// recorded (pull-in thresholds move), or the clock reaches the next pull-in
// crossing — all of which invalidate it.
func (p *DARP) eligCache(now int64) {
	ep := p.zeroEpoch()
	if p.eligValid && p.eligEpoch == ep && now < p.eligJoin {
		return
	}
	if p.eligList == nil {
		p.eligList = make([][]int, len(p.scheds))
		for r := range p.eligList {
			p.eligList[r] = make([]int, 0, p.banks)
		}
	}
	join := int64(math.MaxInt64)
	slab := p.slab
	for r := range p.scheds {
		sch := p.scheds[r]
		rankIdle := p.rankDemand(r) == 0
		elig := p.eligList[r][:0]
		base := r * p.banks
		for b := 0; b < p.banks; b++ {
			if !rankIdle && slab[base+b] != 0 {
				continue
			}
			if now >= sch.pullOkAt[b] {
				elig = append(elig, b)
			} else if sch.pullOkAt[b] < join {
				join = sch.pullOkAt[b]
			}
		}
		p.eligList[r] = elig
	}
	p.eligJoin = join
	p.eligEpoch = ep
	p.eligValid = true
}

// Skip implements sched.RefreshPolicy. Refresh debt accrues passively
// through the bank schedules' absolute-time thresholds; the one per-cycle
// effect to replay is the idle-bank pick of Fig. 8 step 3, which draws from
// the rng once per rank with a non-empty eligible set — NextDeadline only
// grants windows in which those sets are constant and every pick's refresh
// attempt is rejected by the in-progress refresh.
func (p *DARP) Skip(from, to int64) {
	if p.opts.GreedyIdlePick {
		return // deterministic pick: rejected attempts touch no state
	}
	p.eligCache(from)
	any := false
	for _, elig := range p.eligList {
		if len(elig) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	for u := from; u < to; u++ {
		for _, elig := range p.eligList {
			if len(elig) > 0 {
				p.rng.Intn(len(elig))
			}
		}
	}
}

// tryRefresh issues REFpb to (rank, bank) if the device accepts it.
func (p *DARP) tryRefresh(rank, bank int, now int64) bool {
	cmd := dram.Cmd{Kind: dram.CmdREFpb, Rank: rank, Bank: bank}
	if !p.dev.CanIssue(cmd, now) {
		return false
	}
	p.v.IssueCmd(cmd, now)
	p.scheds[rank].record(bank)
	p.eligValid = false // pull-in thresholds moved
	p.wmValid = false
	return true
}

// wmEligBound returns a cycle before which pickWriteModeBank(rank) cannot
// find a candidate, given it just failed at now and no refresh is recorded
// and no queue crosses empty in between (both invalidate the cache). Each
// failing bank's earliest possible eligibility is bounded below by a pure
// time threshold: its pull-in crossing if its credit disallows a pull-in,
// else — the bank had queued demand and no refresh debt — the next nominal
// slot where its debt turns positive.
func (p *DARP) wmEligBound(rank int, now int64) int64 {
	sch := p.scheds[rank]
	bound := int64(math.MaxInt64)
	for b := 0; b < p.banks; b++ {
		var lb int64
		if !sch.canPullIn(b, now) {
			lb = sch.pullOkAt[b]
		} else {
			lb = sch.phase[b] + sch.issued[b]*sch.period
		}
		if lb < bound {
			bound = lb
		}
	}
	return bound
}

// drain precharges a bank that must refresh but has an open row in the way.
func (p *DARP) drain(rank, bank int, now int64) bool {
	dev := p.dev
	open := dev.OpenRow(rank, bank)
	if open == dram.NoRow {
		return false
	}
	if dev.SARP() && dev.Geometry().SubarrayOf(open) != dev.RefreshUnit(rank).PeekSubarray(bank) {
		return false
	}
	cmd := dram.Cmd{Kind: dram.CmdPRE, Rank: rank, Bank: bank}
	if dev.CanIssue(cmd, now) {
		p.v.IssueCmd(cmd, now)
		return true
	}
	return false
}

// pickWriteModeBank selects the refresh candidate during writeback mode:
// the bank with the lowest pending demand whose credit allows a pull-in.
func (p *DARP) pickWriteModeBank(rank int, now int64) (int, bool) {
	sch := p.scheds[rank]
	if p.opts.RandomWritePick {
		elig := p.elig[:0]
		for b := 0; b < p.banks; b++ {
			if sch.canPullIn(b, now) {
				elig = append(elig, b)
			}
		}
		p.elig = elig
		if len(elig) == 0 {
			return 0, false
		}
		return elig[p.rng.Intn(len(elig))], true
	}
	best, bestPending, found := 0, 0, false
	slab := p.slab
	for b := 0; b < p.banks; b++ {
		if !sch.canPullIn(b, now) {
			continue
		}
		pend := slab[rank*p.banks+b]
		// A bank with queued demand only qualifies when it actually owes a
		// refresh: pulling future refreshes onto draining banks delays the
		// writes and stretches the writeback period, the exact effect
		// Algorithm 1's min-pending choice is meant to minimize.
		if pend > 0 && sch.owed(b, now) <= 0 {
			continue
		}
		if !found || pend < bestPending {
			best, bestPending, found = b, pend, true
		}
	}
	return best, found
}

// pickIdleBank selects a bank with no pending demand whose credit allows a
// refresh (postponed catch-up first by construction of owed, or a pull-in).
// The candidate set comes from the eligibility cache, which tracks exactly
// this condition and rebuilds in ascending bank order, so the rng draw is
// identical to an inline scan. The caller must have run eligCache(now).
func (p *DARP) pickIdleBank(rank int, now int64) (int, bool) {
	elig := p.eligList[rank]
	if len(elig) == 0 {
		return 0, false
	}
	if p.opts.GreedyIdlePick {
		sch := p.scheds[rank]
		best := elig[0]
		for _, b := range elig[1:] {
			if sch.owed(b, now) > sch.owed(best, now) {
				best = b
			}
		}
		return best, true
	}
	return elig[p.rng.Intn(len(elig))], true
}

// Owed exposes a bank's current refresh debt (tests and diagnostics).
func (p *DARP) Owed(rank, bank int, now int64) int64 { return p.scheds[rank].owed(bank, now) }
