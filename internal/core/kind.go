package core

import (
	"fmt"

	"dsarp/internal/sched"
	"dsarp/internal/timing"
)

// Kind names a complete refresh mechanism: a scheduling policy plus whether
// the DRAM device runs with the SARP modification and which timing mode it
// needs. These are the seven mechanisms of the paper's evaluation (§6) plus
// the FGR/AR baselines of Fig. 16 and the DARP breakdown of §6.1.2.
type Kind int

const (
	// KindNoRef is the ideal refresh-free baseline.
	KindNoRef Kind = iota
	// KindREFab is commodity all-bank refresh.
	KindREFab
	// KindREFpb is LPDDR round-robin per-bank refresh.
	KindREFpb
	// KindElastic is elastic refresh (Stuecheli et al., MICRO 2010).
	KindElastic
	// KindDARPOoO is DARP with only its out-of-order component (§6.1.2).
	KindDARPOoO
	// KindDARP is full DARP: out-of-order + write-refresh parallelization.
	KindDARP
	// KindSARPab is all-bank refresh on a SARP-enabled device.
	KindSARPab
	// KindSARPpb is per-bank refresh on a SARP-enabled device.
	KindSARPpb
	// KindDSARP is DARP + SARPpb, the paper's combined mechanism.
	KindDSARP
	// KindFGR2x is DDR4 fine granularity refresh at 2x rate.
	KindFGR2x
	// KindFGR4x is DDR4 fine granularity refresh at 4x rate.
	KindFGR4x
	// KindAR is adaptive refresh (Mukundan et al., ISCA 2013).
	KindAR
	// KindPause is refresh pausing (Nair et al., HPCA 2013), the §7
	// related mechanism, included as an extension baseline.
	KindPause
)

var kindNames = map[Kind]string{
	KindNoRef:   "NoREF",
	KindREFab:   "REFab",
	KindREFpb:   "REFpb",
	KindElastic: "Elastic",
	KindDARPOoO: "DARP-ooo",
	KindDARP:    "DARP",
	KindSARPab:  "SARPab",
	KindSARPpb:  "SARPpb",
	KindDSARP:   "DSARP",
	KindFGR2x:   "FGR2x",
	KindFGR4x:   "FGR4x",
	KindAR:      "AR",
	KindPause:   "Pause",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a mechanism name (as printed by String) to its Kind.
func ParseKind(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mechanism %q", name)
}

// Kinds returns all mechanisms in evaluation order.
func Kinds() []Kind {
	return []Kind{KindNoRef, KindREFab, KindREFpb, KindElastic, KindDARPOoO,
		KindDARP, KindSARPab, KindSARPpb, KindDSARP, KindFGR2x, KindFGR4x,
		KindAR, KindPause}
}

// SARP reports whether the mechanism requires the SARP DRAM modification.
func (k Kind) SARP() bool {
	return k == KindSARPab || k == KindSARPpb || k == KindDSARP
}

// RefMode returns the timing mode the mechanism's parameter set needs.
func (k Kind) RefMode() timing.RefMode {
	switch k {
	case KindNoRef:
		return timing.RefNone
	case KindFGR2x:
		return timing.RefFGR2x
	case KindFGR4x:
		return timing.RefFGR4x
	case KindREFpb, KindSARPpb, KindDARP, KindDARPOoO, KindDSARP:
		return timing.RefPB
	default:
		return timing.RefAB
	}
}

// New constructs the mechanism's scheduling policy over a controller view.
// seed feeds DARP's randomized idle-bank selection.
func New(k Kind, v sched.View, seed int64) sched.RefreshPolicy {
	switch k {
	case KindNoRef:
		return sched.NoRefresh{}
	case KindREFab, KindSARPab, KindFGR2x, KindFGR4x:
		return NewAllBank(v, seed)
	case KindREFpb, KindSARPpb:
		return NewPerBank(v, seed)
	case KindElastic:
		return NewElastic(v, seed)
	case KindDARPOoO:
		return NewDARP(v, DARPOptions{WriteRefresh: false}, seed)
	case KindDARP, KindDSARP:
		return NewDARP(v, DARPOptions{WriteRefresh: true}, seed)
	case KindAR:
		return NewAdaptive(v, seed)
	case KindPause:
		return NewPausing(v, seed)
	default:
		panic(fmt.Sprintf("core: unknown kind %d", int(k)))
	}
}
