package core

import (
	"dsarp/internal/snap"
)

// This file implements snap.Codec for every refresh policy. A policy
// serializes only what its constructor cannot rederive: timer positions,
// postponement debt, forced/blocked flags, and (for DARP) the rng draw
// count and per-bank issue counters. Derived caches — DARP's pull-in
// eligibility lists and write-mode pick bounds — are dropped on restore:
// rebuilding them is exact, draws no randomness, and feeds no NextDeadline
// answer, so a restored run re-derives identical values. LoadState never
// calls NoteBlockedChanged: the controller's blocked epoch is restored to
// the cold run's exact value after the replayed queue rebuild, and the
// flags loaded here are the ones that epoch already accounts for.

func appendI64s(w *snap.Writer, vs []int64) {
	for _, v := range vs {
		w.I64(v)
	}
}

func loadI64s(r *snap.Reader, vs []int64) {
	for i := range vs {
		vs[i] = r.I64()
	}
}

func appendBools(w *snap.Writer, vs []bool) {
	for _, v := range vs {
		w.Bool(v)
	}
}

func loadBools(r *snap.Reader, vs []bool) {
	for i := range vs {
		vs[i] = r.Bool()
	}
}

// AppendState implements snap.Codec.
func (p *AllBank) AppendState(w *snap.Writer) {
	appendI64s(w, p.next)
	appendBools(w, p.due)
}

// LoadState implements snap.Codec.
func (p *AllBank) LoadState(r *snap.Reader) error {
	loadI64s(r, p.next)
	loadBools(r, p.due)
	return r.Err()
}

// AppendState implements snap.Codec.
func (p *PerBank) AppendState(w *snap.Writer) {
	appendI64s(w, p.next)
	appendI64s(w, p.owedN)
}

// LoadState implements snap.Codec.
func (p *PerBank) LoadState(r *snap.Reader) error {
	loadI64s(r, p.next)
	loadI64s(r, p.owedN)
	return r.Err()
}

// AppendState implements snap.Codec. The idle-time averages are float64
// and serialize as IEEE-754 bits, so restore is bit-exact.
func (p *Elastic) AppendState(w *snap.Writer) {
	appendI64s(w, p.next)
	appendI64s(w, p.owedN)
	appendI64s(w, p.idleRun)
	for _, v := range p.avgIdle {
		w.F64(v)
	}
	appendBools(w, p.forced)
}

// LoadState implements snap.Codec.
func (p *Elastic) LoadState(r *snap.Reader) error {
	loadI64s(r, p.next)
	loadI64s(r, p.owedN)
	loadI64s(r, p.idleRun)
	for i := range p.avgIdle {
		p.avgIdle[i] = r.F64()
	}
	loadBools(r, p.forced)
	return r.Err()
}

// AppendState implements snap.Codec.
func (p *Adaptive) AppendState(w *snap.Writer) {
	appendI64s(w, p.next)
	appendI64s(w, p.owedN)
	for _, v := range p.quarters {
		w.Int(v)
	}
	appendBools(w, p.forced)
}

// LoadState implements snap.Codec.
func (p *Adaptive) LoadState(r *snap.Reader) error {
	loadI64s(r, p.next)
	loadI64s(r, p.owedN)
	for i := range p.quarters {
		p.quarters[i] = r.Int()
	}
	loadBools(r, p.forced)
	return r.Err()
}

// AppendState implements snap.Codec.
func (p *Pausing) AppendState(w *snap.Writer) {
	appendI64s(w, p.next)
	appendI64s(w, p.owedN)
	for _, v := range p.segs {
		w.Int(v)
	}
	appendBools(w, p.force)
}

// LoadState implements snap.Codec.
func (p *Pausing) LoadState(r *snap.Reader) error {
	loadI64s(r, p.next)
	loadI64s(r, p.owedN)
	for i := range p.segs {
		p.segs[i] = r.Int()
	}
	loadBools(r, p.force)
	return r.Err()
}

// AppendState implements snap.Codec. The bank schedules' credit thresholds
// are functions of the issue counters and the construction-time phases, so
// only the counters travel; LoadState rederives the thresholds.
func (p *DARP) AppendState(w *snap.Writer) {
	w.U64(p.rng.Draws())
	for _, sch := range p.scheds {
		appendI64s(w, sch.issued)
	}
	for _, row := range p.forced {
		appendBools(w, row)
	}
	appendI64s(w, p.slotAt)
}

// LoadState implements snap.Codec.
func (p *DARP) LoadState(r *snap.Reader) error {
	p.rng.Restore(r.U64())
	for _, sch := range p.scheds {
		loadI64s(r, sch.issued)
		for b := range sch.issued {
			sch.recalcThresholds(b)
		}
		sch.recalcMinForced()
	}
	for _, row := range p.forced {
		loadBools(r, row)
	}
	loadI64s(r, p.slotAt)
	p.eligValid = false
	p.wmValid = false
	return r.Err()
}
