package core

import (
	"math"

	"dsarp/internal/dram"
	"dsarp/internal/sched"
)

// Elastic implements elastic refresh (Stuecheli et al., MICRO 2010), the
// refresh-scheduling baseline the paper compares against in §6.1.1 and §7.
// An all-bank refresh that comes due is postponed while the rank is serving
// demand; a postponed refresh is released once the rank has been idle long
// enough that the predicted idle period can absorb tRFCab. The idle-time
// threshold shrinks as more refreshes pile up (the "elastic" part), and at
// the JEDEC limit of 8 postponed refreshes the refresh is forced.
//
// As the paper observes (§7), the scheme fades when average rank idle
// periods are shorter than tRFCab — exactly the memory-intensive, high-
// density cases the evaluation stresses — so it tracks REFab closely there.
type Elastic struct {
	v     sched.View
	ranks int
	banks int
	next  []int64 // per-rank next nominal refresh time
	owedN []int64 // per-rank postponed refresh count

	idleRun []int64 // consecutive idle cycles per rank
	avgIdle []float64
	forced  []bool
}

// NewElastic builds the elastic refresh policy over a controller view.
// seed offsets the refresh timer phase so independent channels decorrelate.
func NewElastic(v sched.View, seed int64) *Elastic {
	g := v.Dev().Geometry()
	p := &Elastic{
		v:       v,
		ranks:   g.Ranks,
		banks:   g.Banks,
		next:    make([]int64, g.Ranks),
		owedN:   make([]int64, g.Ranks),
		idleRun: make([]int64, g.Ranks),
		avgIdle: make([]float64, g.Ranks),
		forced:  make([]bool, g.Ranks),
	}
	stagger := int64(v.Timing().TREFIab) / int64(g.Ranks)
	base := phaseOffset(seed, stagger)
	for r := 0; r < g.Ranks; r++ {
		p.next[r] = base + int64(r)*stagger
		p.avgIdle[r] = float64(v.Timing().TRFCab) // optimistic prior
	}
	return p
}

// Name implements sched.RefreshPolicy.
func (p *Elastic) Name() string { return "Elastic" }

// RankBlocked implements sched.RefreshPolicy.
func (p *Elastic) RankBlocked(rank int) bool { return p.forced[rank] }

// BankBlocked implements sched.RefreshPolicy.
func (p *Elastic) BankBlocked(int, int) bool { return false }

// setForced updates a rank's forced flag, bumping the blocked epoch on
// change.
func (p *Elastic) setForced(r int, v bool) {
	if p.forced[r] != v {
		p.forced[r] = v
		p.v.NoteBlockedChanged()
	}
}

// rankIdle reports whether the rank has no queued demand.
func (p *Elastic) rankIdle(rank int) bool { return p.v.PendingRankDemand(rank) == 0 }

// threshold is the idle-run length required before releasing a postponed
// refresh; it relaxes linearly toward zero as the postponement budget is
// consumed.
func (p *Elastic) threshold(rank int) int64 {
	n := p.owedN[rank]
	if n >= maxFlex {
		return 0
	}
	return int64(p.avgIdle[rank] * float64(maxFlex-n) / float64(maxFlex))
}

// NextDeadline implements sched.RefreshPolicy. Outside of a skip window the
// policy is active whenever a timer fires, a rank is forced, or a postponed
// refresh could be released; the idle-time predictor's idleRun counter grows
// by one per elided Tick (replayed by Skip), so the release point of a
// postponed refresh on an idle rank is a straight-line extrapolation.
func (p *Elastic) NextDeadline(now int64) int64 {
	ev := int64(math.MaxInt64)
	for r := 0; r < p.ranks; r++ {
		if p.owedN[r] < maxFlex {
			if now >= p.next[r] {
				return now // owed count accrues this cycle
			}
			if p.next[r] < ev {
				ev = p.next[r]
			}
		}
		if p.owedN[r] == 0 {
			continue
		}
		if p.owedN[r] >= maxFlex || p.forced[r] {
			return now // forced: probing CanIssue/drain every cycle
		}
		if p.rankIdle(r) {
			// Tick at cycle u sees idleRun[r] + (u-now+1); release when it
			// reaches the threshold.
			need := p.threshold(r) - p.idleRun[r] - 1
			if need > 0 {
				if now+need < ev {
					ev = now + need
				}
				continue
			}
			// Released but not forced: the policy probes CanIssue(REFab)
			// every cycle without draining; refabProbeDeadline names the
			// first cycle the probe could succeed.
			e := refabProbeDeadline(p.v.Dev(), r, p.banks, now)
			if e <= now {
				return now
			}
			if e < ev {
				ev = e
			}
		}
	}
	return ev
}

// Skip implements sched.RefreshPolicy: each elided Tick would have extended
// the idle run of every idle rank by one cycle. (A busy rank's idle run was
// already folded into the moving average and zeroed by the last real Tick,
// and rank idleness cannot change inside a skip window.)
func (p *Elastic) Skip(from, to int64) {
	for r := 0; r < p.ranks; r++ {
		if p.rankIdle(r) {
			p.idleRun[r] += to - from
		}
	}
}

// Tick implements sched.RefreshPolicy.
func (p *Elastic) Tick(now int64, _ bool) bool {
	tREFI := int64(p.v.Timing().TREFIab)
	dev := p.v.Dev()
	issuedSlot := false
	for r := 0; r < p.ranks; r++ {
		for now >= p.next[r] && p.owedN[r] < maxFlex {
			p.owedN[r]++
			p.next[r] += tREFI
		}
		idle := p.rankIdle(r)
		if idle {
			p.idleRun[r]++
		} else {
			if p.idleRun[r] > 0 {
				// End of an idle period: fold it into the moving average
				// the idle-time predictor uses.
				const alpha = 0.25
				p.avgIdle[r] = (1-alpha)*p.avgIdle[r] + alpha*float64(p.idleRun[r])
			}
			p.idleRun[r] = 0
		}
		if issuedSlot || p.owedN[r] == 0 {
			continue
		}

		p.setForced(r, p.owedN[r] >= maxFlex || now >= p.next[r])
		release := p.forced[r] || (idle && p.idleRun[r] >= p.threshold(r))
		if !release {
			continue
		}
		cmd := dram.Cmd{Kind: dram.CmdREFab, Rank: r}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			p.owedN[r]--
			p.setForced(r, false)
			issuedSlot = true
			continue
		}
		if p.forced[r] && p.drainRank(r, now) {
			issuedSlot = true
		}
	}
	return issuedSlot
}

func (p *Elastic) drainRank(rank int, now int64) bool {
	dev := p.v.Dev()
	for b := 0; b < p.banks; b++ {
		if dev.OpenRow(rank, b) == dram.NoRow {
			continue
		}
		cmd := dram.Cmd{Kind: dram.CmdPRE, Rank: rank, Bank: b}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			return true
		}
	}
	return false
}
