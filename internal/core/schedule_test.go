package core

import (
	"testing"
	"testing/quick"
)

func TestScheduleDueAndOwed(t *testing.T) {
	s := newBankSchedule(4, 100, 0, 0) // period 400; bank b phase = b*100
	if got := s.due(0, 0); got != 1 {
		t.Errorf("due(0, 0) = %d, want 1 (slot at phase 0)", got)
	}
	if got := s.due(1, 0); got != 0 {
		t.Errorf("due(1, 0) = %d, want 0 (phase 100)", got)
	}
	if got := s.due(0, 399); got != 1 {
		t.Errorf("due(0, 399) = %d, want 1", got)
	}
	if got := s.due(0, 400); got != 2 {
		t.Errorf("due(0, 400) = %d, want 2", got)
	}
	s.record(0)
	if got := s.owed(0, 450); got != 1 {
		t.Errorf("owed = %d, want 1", got)
	}
}

func TestScheduleFlexBounds(t *testing.T) {
	s := newBankSchedule(2, 10, 0, 0) // default flex 8, period 20
	// Never refreshed: debt grows until mustRefresh at 8.
	now := int64(7*20 + 1) // 8 slots passed for bank 0
	if !s.mustRefresh(0, now) {
		t.Errorf("owed = %d at %d: mustRefresh should trigger at 8", s.owed(0, now), now)
	}
	if s.canPostpone(0, now) {
		t.Error("canPostpone at the flex limit")
	}
	// Pull-in bound: 8 refreshes ahead is the ceiling.
	s2 := newBankSchedule(2, 10, 0, 0)
	for i := 0; i < 9; i++ {
		s2.record(1)
	}
	if s2.canPullIn(1, 0) {
		t.Errorf("owed = %d: pull-in beyond -8 allowed", s2.owed(1, 0))
	}
}

func TestScheduleCustomFlex(t *testing.T) {
	s := newBankSchedule(1, 10, 16, 0)
	now := int64(9 * 10) // 10 slots due
	if s.mustRefresh(0, now) {
		t.Error("flex 16 should allow 10 postponed refreshes")
	}
}

func TestSchedulePhaseOffset(t *testing.T) {
	s := newBankSchedule(2, 10, 0, 5)
	if got := s.due(0, 4); got != 0 {
		t.Errorf("due before offset phase = %d, want 0", got)
	}
	if got := s.due(0, 5); got != 1 {
		t.Errorf("due at offset phase = %d, want 1", got)
	}
}

func TestScheduleSlotBank(t *testing.T) {
	s := newBankSchedule(4, 100, 0, 0)
	cases := []struct {
		now  int64
		want int
	}{{0, 0}, {99, 0}, {100, 1}, {399, 3}, {400, 0}}
	for _, c := range cases {
		if got := s.slotBank(c.now); got != c.want {
			t.Errorf("slotBank(%d) = %d, want %d", c.now, got, c.want)
		}
	}
}

func TestScheduleOwedNeverNegativeOfDueProperty(t *testing.T) {
	// Property: with refreshes recorded exactly when owed > 0, debt stays
	// in [0, 1] — the schedule is self-consistent.
	f := func(steps uint8) bool {
		s := newBankSchedule(3, 7, 0, 0)
		for now := int64(0); now < int64(steps)*7; now += 3 {
			for b := 0; b < 3; b++ {
				if s.owed(b, now) > 0 {
					s.record(b)
				}
				if o := s.owed(b, now); o < 0 || o > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseOffsetDeterministicAndBounded(t *testing.T) {
	f := func(seed int64, mod uint16) bool {
		m := int64(mod)
		got := phaseOffset(seed, m)
		if m <= 0 {
			return got == 0
		}
		return got >= 0 && got < m && got == phaseOffset(seed, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if phaseOffset(1, 1000) == phaseOffset(2, 1000) &&
		phaseOffset(3, 1000) == phaseOffset(4, 1000) {
		t.Error("adjacent seeds collide suspiciously often")
	}
}
