package core

import (
	"math"

	"dsarp/internal/dram"
	"dsarp/internal/sched"
)

// Pausing implements refresh pausing (Nair et al., HPCA 2013), the related
// mechanism the paper discusses in §7: an all-bank refresh is broken into
// per-row segments with a "refresh pausing point" after each, so the
// controller can interrupt a refresh to serve pending demand and resume it
// afterwards.
//
// The paper argues pausing is hard to realize because real devices refresh
// multiple rows in parallel; it is included here as an additional
// comparison point (exp.PausingComparison), not as part of the paper's own
// figures. Each nominal REFab becomes Segments sub-commands of tRFCab/
// Segments cycles; between segments demand flows freely, and a segment is
// issued only when its rank has no pending demand — unless the whole
// refresh is overdue (the postponement budget is spent), in which case
// segments are forced back to back.
type Pausing struct {
	v     sched.View
	ranks int
	banks int
	next  []int64 // per-rank next nominal refresh time
	owedN []int64 // per-rank refreshes due (in whole-REFab units)
	segs  []int   // per-rank remaining segments of the in-progress refresh
	force []bool

	segments int
	segDur   int
	segRows  int
}

// PauseSegments is the number of pausing points per refresh: one per row
// of the standard 8-row refresh op.
const PauseSegments = 8

// NewPausing builds the refresh pausing policy over a controller view.
func NewPausing(v sched.View, seed int64) *Pausing {
	g := v.Dev().Geometry()
	tp := v.Timing()
	segs := PauseSegments
	if g.RowsPerRef < segs {
		segs = g.RowsPerRef
	}
	p := &Pausing{
		v:        v,
		ranks:    g.Ranks,
		banks:    g.Banks,
		next:     make([]int64, g.Ranks),
		owedN:    make([]int64, g.Ranks),
		segs:     make([]int, g.Ranks),
		force:    make([]bool, g.Ranks),
		segments: segs,
		segDur:   max(1, tp.TRFCab/segs),
		segRows:  max(1, g.RowsPerRef/segs),
	}
	stagger := int64(tp.TREFIab) / int64(g.Ranks)
	base := phaseOffset(seed, stagger)
	for r := 0; r < g.Ranks; r++ {
		p.next[r] = base + int64(r)*stagger
	}
	return p
}

// Name implements sched.RefreshPolicy.
func (p *Pausing) Name() string { return "Pause" }

// RankBlocked implements sched.RefreshPolicy: demand is held only when the
// refresh can no longer be postponed or paused.
func (p *Pausing) RankBlocked(rank int) bool { return p.force[rank] }

// BankBlocked implements sched.RefreshPolicy.
func (p *Pausing) BankBlocked(int, int) bool { return false }

// setForce updates a rank's force flag, bumping the blocked epoch on change.
func (p *Pausing) setForce(r int, v bool) {
	if p.force[r] != v {
		p.force[r] = v
		p.v.NoteBlockedChanged()
	}
}

func (p *Pausing) rankIdle(rank int) bool { return p.v.PendingRankDemand(rank) == 0 }

// NextDeadline implements sched.RefreshPolicy. The one quiescent state with
// refresh work outstanding is the pausing point itself: segments remain,
// demand is pending, and the refresh is not forced — which holds until the
// rank's timer fires (accruing debt and possibly forcing). Everything else
// (starting a refresh, issuing a segment to an idle rank, draining when
// forced) probes the device every cycle.
func (p *Pausing) NextDeadline(now int64) int64 {
	ev := int64(math.MaxInt64)
	for r := 0; r < p.ranks; r++ {
		if p.owedN[r] < maxFlex && now >= p.next[r] {
			return now // owed count accrues this cycle
		}
		if p.owedN[r] == 0 && p.segs[r] == 0 {
			if p.force[r] {
				return now // Tick clears the stale force flag (epoch bump)
			}
			if p.next[r] < ev {
				ev = p.next[r]
			}
			continue
		}
		if p.segs[r] == 0 {
			return now // a new refresh starts (owed consumed, segments armed)
		}
		forced := p.owedN[r] >= maxFlex || (p.owedN[r] > 0 && now >= p.next[r])
		if forced || p.force[r] || p.rankIdle(r) {
			return now
		}
		if p.next[r] < ev {
			ev = p.next[r] // paused: resumes when idle or forced at the timer
		}
	}
	return ev
}

// Skip implements sched.RefreshPolicy: no per-cycle accounting.
func (p *Pausing) Skip(int64, int64) {}

// Tick implements sched.RefreshPolicy.
func (p *Pausing) Tick(now int64, _ bool) bool {
	tREFI := int64(p.v.Timing().TREFIab)
	dev := p.v.Dev()
	for r := 0; r < p.ranks; r++ {
		for now >= p.next[r] && p.owedN[r] < maxFlex {
			p.owedN[r]++
			p.next[r] += tREFI
		}
		if p.owedN[r] == 0 && p.segs[r] == 0 {
			p.setForce(r, false)
			continue
		}
		// Forced when the budget is exhausted: finish segments back to back.
		p.setForce(r, p.owedN[r] >= maxFlex || (p.owedN[r] > 0 && now >= p.next[r]))
		if p.segs[r] == 0 {
			// Start a new refresh (consume one owed REFab).
			p.owedN[r]--
			p.segs[r] = p.segments
		}
		// Pause: while demand is pending and we are not forced, yield the
		// slot — this is the refresh pausing point.
		if !p.force[r] && !p.rankIdle(r) {
			continue
		}
		cmd := dram.Cmd{Kind: dram.CmdREFab, Rank: r, RefDur: p.segDur, RefRows: p.segRows}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			p.segs[r]--
			return true
		}
		if p.force[r] && p.drainRank(r, now) {
			return true
		}
	}
	return false
}

func (p *Pausing) drainRank(rank int, now int64) bool {
	dev := p.v.Dev()
	for b := 0; b < p.banks; b++ {
		if dev.OpenRow(rank, b) == dram.NoRow {
			continue
		}
		cmd := dram.Cmd{Kind: dram.CmdPRE, Rank: rank, Bank: b}
		if dev.CanIssue(cmd, now) {
			p.v.IssueCmd(cmd, now)
			return true
		}
	}
	return false
}
