package core

import (
	"math/rand"
	"testing"

	"dsarp/internal/dram"
	"dsarp/internal/sched"
	"dsarp/internal/timing"
)

// The core tests wire a real device + controller + policy and drive them
// with synthetic demand, then assert on scheduling behavior and the
// retention invariant. The geometry is scaled down (32 rows/bank, 1 row per
// refresh op) so full refresh rotations complete within a short run.

func testGeom() dram.Geometry {
	return dram.Geometry{Ranks: 2, Banks: 8, SubarraysPerBank: 4, RowsPerBank: 32,
		ColumnsPerRow: 8, RowsPerRef: 1}
}

type rig struct {
	dev  *dram.Device
	ctrl *sched.Controller
	tp   timing.Params
	now  int64
	rng  *rand.Rand
	done int
}

func newRig(t *testing.T, k Kind, seed int64) *rig {
	t.Helper()
	tp := timing.DDR3(timing.Config{Density: timing.Gb8, Mode: k.RefMode()})
	dev, err := dram.New(testGeom(), tp, dram.Options{SARP: k.SARP(), Check: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := sched.NewController(dev, sched.DefaultConfig(), nil)
	ctrl.SetPolicy(New(k, ctrl, seed))
	return &rig{dev: dev, ctrl: ctrl, tp: tp, rng: rand.New(rand.NewSource(seed))}
}

// step advances one cycle, injecting demand with probability loadPct/100.
func (r *rig) step(loadPct int) {
	if r.rng.Intn(100) < loadPct {
		g := r.dev.Geometry()
		a := dram.Addr{
			Rank: r.rng.Intn(g.Ranks),
			Bank: r.rng.Intn(g.Banks),
			Row:  r.rng.Intn(g.RowsPerBank),
			Col:  r.rng.Intn(g.ColumnsPerRow),
		}
		if r.rng.Intn(4) == 0 {
			r.ctrl.EnqueueWrite(&sched.Request{IsWrite: true, Addr: a}, r.now)
		} else {
			r.ctrl.EnqueueRead(&sched.Request{Addr: a, OnComplete: func(int64) { r.done++ }}, r.now)
		}
	}
	r.ctrl.Tick(r.now)
	r.now++
}

func (r *rig) run(cycles int64, loadPct int) {
	for i := int64(0); i < cycles; i++ {
		r.step(loadPct)
	}
}

// rotationCycles is how long one full refresh rotation takes: each bank
// receives one op per 8*tREFIpb, and needs RowsPerBank/RowsPerRef ops.
func (r *rig) rotationCycles() int64 {
	g := r.dev.Geometry()
	return int64(g.RefOpsPerRotation()) * int64(r.tp.TREFIpb) * 8
}

// --- Retention invariant across every mechanism ---

func TestRetentionInvariantAllMechanisms(t *testing.T) {
	for _, k := range Kinds() {
		if k == KindNoRef {
			continue // the ideal baseline intentionally drops refresh
		}
		k := k
		t.Run(k.String(), func(t *testing.T) {
			r := newRig(t, k, 11)
			rotation := r.rotationCycles()
			r.run(2*rotation+int64(r.tp.TREFIab)*16, 40)
			// Allowed gap: one rotation plus the JEDEC 8-refresh
			// postponement slack, plus scheduling latitude of a tREFI.
			maxGap := rotation + 9*int64(r.tp.TREFIab)
			ck := r.dev.Checker()
			if v := ck.VerifyRetention(r.now, maxGap); v != 0 {
				t.Fatalf("%d retention violations (gap > %d): %v", v, maxGap, ck.Err())
			}
			if err := ck.Err(); err != nil {
				t.Fatalf("protocol violations: %v", err)
			}
		})
	}
}

// --- Refresh rate: every mechanism issues the nominal number of ops ---

func TestRefreshRateMatchesNominal(t *testing.T) {
	cases := []struct {
		k Kind
		// op weight: how many REFab-equivalents one command is worth.
		perBank bool
	}{
		{KindREFab, false}, {KindREFpb, true}, {KindElastic, false},
		{KindDARP, true}, {KindSARPpb, true}, {KindDSARP, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.k.String(), func(t *testing.T) {
			r := newRig(t, c.k, 3)
			cycles := int64(r.tp.TREFIab) * 64
			r.run(cycles, 30)
			g := r.dev.Geometry()
			st := r.dev.Stats()
			// Nominal: one REFab per rank per tREFIab, or 8x REFpb.
			wantAB := cycles / int64(r.tp.TREFIab) * int64(g.Ranks)
			got := st.RefABs
			want := wantAB
			if c.perBank {
				got = st.RefPBs
				want = wantAB * int64(g.Banks)
			}
			// Postponement/pull-in flexibility allows +-8 ops per bank.
			slack := int64(16 * g.Ranks * g.Banks)
			if got < want-slack || got > want+slack {
				t.Errorf("refresh ops = %d, want %d +- %d", got, want, slack)
			}
		})
	}
}

// --- REFpb baseline: strict round-robin order ---

func TestPerBankRoundRobinOrder(t *testing.T) {
	r := newRig(t, KindREFpb, 5)
	r.run(int64(r.tp.TREFIab)*4, 50)
	// After N ops the device-internal pointer has advanced N mod banks; the
	// unit's per-bank issued counts can differ by at most one in RR order.
	g := r.dev.Geometry()
	for rank := 0; rank < g.Ranks; rank++ {
		u := r.dev.RefreshUnit(rank)
		hi, lo := int64(0), int64(1<<62)
		for b := 0; b < g.Banks; b++ {
			n := u.Issued(b)
			hi = max(hi, n)
			lo = min(lo, n)
		}
		if hi-lo > 1 {
			t.Errorf("rank %d: round-robin issued counts spread %d..%d", rank, lo, hi)
		}
	}
}

// --- DARP behavior ---

func TestDARPPostponesBusyBankAndCatchesUp(t *testing.T) {
	r := newRig(t, KindDARP, 7)
	// Saturate bank 0 of rank 0 with reads; leave other banks idle.
	g := r.dev.Geometry()
	for i := int64(0); i < int64(r.tp.TREFIab)*20; i++ {
		if i%20 == 0 {
			a := dram.Addr{Bank: 0, Row: r.rng.Intn(g.RowsPerBank), Col: 0}
			r.ctrl.EnqueueRead(&sched.Request{Addr: a}, r.now)
		}
		r.ctrl.Tick(r.now)
		r.now++
	}
	u := r.dev.RefreshUnit(0)
	// Idle banks must not starve, and the busy bank must still be refreshed
	// at a rate within the postponement bound.
	nominal := r.now / (int64(r.tp.TREFIpb) * 8)
	if got := u.Issued(0); got < nominal-9 {
		t.Errorf("busy bank refreshed %d times, nominal %d: postponement bound broken", got, nominal)
	}
	for b := 1; b < g.Banks; b++ {
		if got := u.Issued(b); got < nominal-1 {
			t.Errorf("idle bank %d refreshed %d times, nominal %d", b, got, nominal)
		}
	}
	if err := r.dev.Checker().Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDARPOwedNeverExceedsFlex(t *testing.T) {
	r := newRig(t, KindDARP, 9)
	darp := r.ctrl.Policy().(*DARP)
	g := r.dev.Geometry()
	for i := int64(0); i < 40_000; i++ {
		r.step(80)
		for rank := 0; rank < g.Ranks; rank++ {
			for b := 0; b < g.Banks; b++ {
				if owed := darp.Owed(rank, b, r.now); owed > maxFlex || owed < -maxFlex {
					t.Fatalf("cycle %d: bank %d/%d owed %d outside [-8, 8]", r.now, rank, b, owed)
				}
			}
		}
	}
}

func TestDARPWriteRefreshFiresInWritebackMode(t *testing.T) {
	r := newRig(t, KindDARP, 13)
	g := r.dev.Geometry()
	// Flood writes to force writeback mode, then count refreshes issued
	// while it is active.
	refBefore := r.dev.Stats().RefPBs
	sawWriteMode := false
	for i := 0; i < 30_000; i++ {
		a := dram.Addr{
			Rank: r.rng.Intn(g.Ranks), Bank: r.rng.Intn(g.Banks),
			Row: r.rng.Intn(g.RowsPerBank), Col: r.rng.Intn(g.ColumnsPerRow),
		}
		r.ctrl.EnqueueWrite(&sched.Request{IsWrite: true, Addr: a}, r.now)
		r.ctrl.Tick(r.now)
		r.now++
		sawWriteMode = sawWriteMode || r.ctrl.WriteMode()
	}
	if !sawWriteMode {
		t.Fatal("write flood never triggered writeback mode")
	}
	if r.dev.Stats().RefPBs == refBefore {
		t.Error("write-refresh parallelization issued no refreshes under a write flood")
	}
}

func TestDARPDeterministicForSeed(t *testing.T) {
	run := func() (int64, int64) {
		r := newRig(t, KindDSARP, 21)
		r.run(30_000, 60)
		st := r.dev.Stats()
		return st.Commands, st.RefPBs
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
}

// --- Elastic ---

func TestElasticPostponesUnderLoadIssuesWhenIdle(t *testing.T) {
	r := newRig(t, KindElastic, 17)
	// Phase 1: heavy load for a few tREFI — elastic should lag the nominal
	// refresh schedule.
	heavy := int64(r.tp.TREFIab) * 6
	r.run(heavy, 95)
	nominal := heavy / int64(r.tp.TREFIab) * 2 // 2 ranks
	lagged := r.dev.Stats().RefABs
	if lagged >= nominal {
		t.Logf("note: elastic did not lag under load (got %d, nominal %d)", lagged, nominal)
	}
	// Phase 2: idle — elastic must catch up completely.
	r.run(int64(r.tp.TREFIab)*10, 0)
	finalNominal := r.now / int64(r.tp.TREFIab) * 2
	if got := r.dev.Stats().RefABs; got < finalNominal-2*8 {
		t.Errorf("elastic never caught up: %d ops, nominal %d", got, finalNominal)
	}
	if err := r.dev.Checker().Err(); err != nil {
		t.Fatal(err)
	}
}

// --- FGR / AR ---

func TestFGRRatesScale(t *testing.T) {
	base := newRig(t, KindREFab, 23)
	two := newRig(t, KindFGR2x, 23)
	cycles := int64(base.tp.TREFIab) * 32
	base.run(cycles, 20)
	two.run(cycles, 20)
	b, tw := base.dev.Stats().RefABs, two.dev.Stats().RefABs
	if tw < b*3/2 {
		t.Errorf("FGR2x issued %d ops vs 1x %d; want ~2x", tw, b)
	}
}

func TestAdaptiveIssuesQuartersUnderLoad(t *testing.T) {
	r := newRig(t, KindAR, 29)
	r.run(int64(r.tp.TREFIab)*40, 90)
	st := r.dev.Stats()
	if st.RefABs == 0 {
		t.Fatal("AR issued no refreshes")
	}
	if err := r.dev.Checker().Err(); err != nil {
		t.Fatal(err)
	}
}

// --- Kind plumbing ---

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
}

func TestKindProperties(t *testing.T) {
	if !KindDSARP.SARP() || !KindSARPab.SARP() || !KindSARPpb.SARP() {
		t.Error("SARP kinds misreport SARP()")
	}
	if KindDARP.SARP() || KindREFpb.SARP() {
		t.Error("non-SARP kinds misreport SARP()")
	}
	if KindNoRef.RefMode() != timing.RefNone {
		t.Error("NoRef mode")
	}
	if KindDSARP.RefMode() != timing.RefPB {
		t.Error("DSARP should use per-bank timing")
	}
	if KindFGR4x.RefMode() != timing.RefFGR4x {
		t.Error("FGR4x mode")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, k := range Kinds() {
		r := newRig(t, k, 1)
		if got := r.ctrl.Policy().Name(); got != k.String() {
			t.Errorf("policy for %v names itself %q", k, got)
		}
	}
}
